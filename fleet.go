package advdiag

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"advdiag/internal/mathx"
	rt "advdiag/internal/runtime"
)

// ErrFleetSaturated is returned by TrySubmit when the routed shard's
// bounded queue is full: explicit backpressure for callers that would
// rather shed load (or route elsewhere) than block.
var ErrFleetSaturated = errors.New("advdiag: fleet shard queue is full")

// ErrFleetClosed is the sentinel a closed Fleet returns from Submit,
// TrySubmit and a second Close.
var ErrFleetClosed = errors.New("advdiag: fleet is closed")

// Fleet is a sharded multi-platform dispatcher: N shards, each a
// designed Platform with its own worker pool and bounded input queue,
// behind one routing front door. It is the scale-out layer above the
// Lab — where a Lab serves one platform, a Fleet multiplexes
// heterogeneous panel traffic across many (possibly different)
// platforms, the way a clinical integration layer multiplexes assay
// requests across backend analyzers.
//
// Determinism: every accepted sample gets a fleet-wide submission
// index, and its noise stream is seeded from the fleet seed and that
// index alone (runtime.SampleSeed — the same derivation a Lab uses).
// Which shard runs a sample, how many shards exist, and which routing
// policy chose the shard therefore never influence the result: for the
// same submission sequence, a Fleet of identical platforms is
// byte-identical to a single Lab, at any shard count, under any
// Router. The index is the fleet's lifetime acceptance counter (like a
// Lab's streaming Submit counter), so the k-th sample ever accepted
// matches the k-th sample of the Lab run — a second RunPanels batch on
// a reused Fleet continues the sequence rather than restarting at 0
// the way Lab.RunPanels does; compare whole submission histories (or
// use a fresh Fleet per comparison).
//
// The contract survives topology changes: AddShard and RemoveShard
// reshape the fleet under live load, so "byte-identical to one fixed
// Lab run" relaxes to the replay-checkable per-sample invariant —
// given a result's submission index and sample, ReplayPanel recomputes
// it bit-identically on any shard of any topology, because the seed
// carries the determinism and the seed never depends on where (or
// after how many reroutes) the sample actually ran.
//
// Backpressure: each shard's queue is bounded. Submit blocks until the
// routed shard has room (natural backpressure for pipelines);
// TrySubmit returns ErrFleetSaturated instead of blocking (explicit
// load-shedding for latency-sensitive front ends). Rejections are
// counted in FleetStats.
//
// Lifecycle: Drain waits for everything accepted so far to finish
// (keep consuming Results); Close stops intake, drains, and closes
// Results. Both are safe under concurrent submissions.
type Fleet struct {
	shards  []*fleetShard
	router  Router
	seed    uint64
	workers int
	depth   int
	// failThreshold / restoreThreshold are the circuit breaker's
	// consecutive-probe counts: that many probe failures in a row open a
	// healthy shard's breaker, that many known-good probes in a row
	// close a quarantined shard's breaker and restore it. Immutable
	// after construction (see WithFleetProbePolicy).
	failThreshold    int
	restoreThreshold int
	// probeSeed seeds every probe panel. Probes live outside the
	// submission-index seed sequence, so probing never perturbs serving
	// results.
	probeSeed uint64

	results  chan PanelOutcome
	mresults chan MonitorOutcome
	workWG   sync.WaitGroup // shard worker goroutines

	mu        sync.Mutex
	cond      *sync.Cond // broadcast when completed advances
	submitted int
	completed int
	rejected  uint64
	routeErrs uint64
	// Monitor counters, separate from the panel counters above: panel
	// seeds derive from the panel submission index, so monitor traffic
	// must never advance it.
	msubmitted int
	mcompleted int
	mrejected  uint64
	faultPlan  *FaultPlan
	closed     bool
	submitWG   sync.WaitGroup // Submits between closed-check and enqueue
	first      time.Time
	last       time.Time
	// events is the lifecycle history ring (capacity fleetEventCap);
	// eventSeq counts everything ever recorded, so eventSeq%cap is the
	// next write position once the ring is full.
	events   []FleetEvent
	eventSeq int
}

// fleetShard is one backend: a Lab over its platform plus the shard's
// dispatch state.
type fleetShard struct {
	index   int
	lab     *Lab
	targets []string
	queue   chan fleetJob
	// fault is the shard's armed fault state; nil is the healthy fast
	// path (one atomic load per job).
	fault atomic.Pointer[shardFaultState]
	// quarantined removes the shard from the router's view; guarded by
	// the Fleet mutex.
	quarantined bool
	// removed marks a shard retired by RemoveShard: out of the routing
	// view forever, workers shutting down, index kept (never reused) so
	// stats, replay and operator timelines stay stable. Guarded by the
	// Fleet mutex.
	removed bool
	// retired is set by the retire goroutine once the removed shard's
	// queue has been closed; Close must not close it again. Guarded by
	// the Fleet mutex (and ordered before Close's read by submitWG).
	retired bool
	// handoffs counts in-flight deliveries aimed at this shard — a
	// Submit or reroute that routed here under the lock but enqueues
	// outside it. RemoveShard waits for them before closing the queue.
	handoffs sync.WaitGroup
	// breaker is the shard's circuit-breaker position; probeFails /
	// probeGoods its consecutive probe counters; restores how often the
	// breaker closed again automatically. All guarded by the Fleet
	// mutex.
	breaker    BreakerState
	probeFails int
	probeGoods int
	restores   uint64
	// probeSample (every target at probeConcMM) and probeGood (its
	// healthy fingerprint) are fixed at shard construction.
	probeSample map[string]float64
	probeGood   uint64
	// stalled holds jobs a dead shard's workers dequeued but must not
	// run — a hung instrument keeping its accepted work. Guarded by the
	// Fleet mutex; drained by Quarantine or run in place after
	// ClearFaults.
	stalled []fleetJob
	// sched is the shard's instrument-timeline position counter:
	// assigned at routing time, so back-to-back cycles follow arrival
	// order on the shard.
	sched int
	// pending counts samples accepted for this shard and not yet
	// delivered to Results (queued + executing). It is guarded by the
	// Fleet mutex and updated at accept/complete time, so the router's
	// load snapshot never loses sight of a job in the dequeue window.
	pending int
	// routed counts everything ever enqueued.
	routed atomic.Uint64
}

// fleetJob carries one routed sample: seedIdx is the fleet-wide
// submission index (the determinism anchor), schedIdx the per-shard
// instrument slot. When monitor is non-nil the job is a monitoring
// acquisition instead: seedIdx is then the monitor acceptance index
// (ordering only — the request carries its own seed) and schedIdx is
// unused, because monitor campaigns live on a virtual timeline, not
// the shard's back-to-back instrument schedule.
type fleetJob struct {
	seedIdx, schedIdx int
	sample            Sample
	monitor           *MonitorRequest
}

// shardFaultState is the compiled, immutable fault configuration a
// shard's workers consult before each job. It is swapped atomically as
// a whole: workers either see the previous state or the next, never a
// torn mix. nil means healthy.
type shardFaultState struct {
	// fouling perturbs the analog chain of matching electrodes
	// (FaultFouledElectrode).
	fouling *rt.Fouling
	// dead parks dequeued jobs instead of running them
	// (FaultDeadShard).
	dead bool
	// delay stalls each job before it runs (FaultSlowShard).
	delay time.Duration
	// flaky stalls jobs that land on down slots of a seeded duty cycle
	// (FaultFlakyShard).
	flaky *flakyState
	// lifted is closed when the dead fault lifts (quarantine, clear, or
	// fleet close); parked workers resume from it.
	lifted chan struct{}
}

// flakyState is a FaultFlakyShard's compiled duty cycle: a shared slot
// counter — jobs and health probes draw from the same sequence, so the
// breaker sees the same intermittency the traffic does — mapped onto a
// period of down-then-up slots, phase-shifted by the fault seed.
type flakyState struct {
	period, down, offset uint64
	n                    atomic.Uint64
}

// downNow consumes one slot and reports whether it is a down slot.
func (fk *flakyState) downNow() bool {
	slot := fk.n.Add(1) - 1
	return (fk.offset+slot)%fk.period < fk.down
}

// BreakerState is a shard's circuit-breaker position, surfaced in
// FleetShardStats.
type BreakerState int

const (
	// BreakerClosed is the healthy position: the shard is in the routing
	// view and serves traffic.
	BreakerClosed BreakerState = iota
	// BreakerOpen means consecutive probe failures — or a quarantine
	// verdict from the Diagnoser or an operator — tripped the breaker:
	// the shard is out of the routing view and sees probe traffic only.
	BreakerOpen
	// BreakerHalfOpen means an open shard's probes have started matching
	// its known-good fingerprint again: still out of the routing view,
	// but restoreThreshold consecutive matches away from being restored.
	BreakerHalfOpen
)

// String names the breaker position.
func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(b))
	}
}

// MarshalJSON encodes the position as its String form — what the
// operator-facing stats JSON wants.
func (b BreakerState) MarshalJSON() ([]byte, error) { return json.Marshal(b.String()) }

// UnmarshalJSON decodes the String form.
func (b *BreakerState) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "closed":
		*b = BreakerClosed
	case "open":
		*b = BreakerOpen
	case "half-open":
		*b = BreakerHalfOpen
	default:
		return fmt.Errorf("advdiag: unknown breaker state %q", s)
	}
	return nil
}

// Fleet lifecycle event kinds, as recorded in the history ring. They
// mirror the wire package's DiagnosisEvent vocabulary.
const (
	EventShardAdded   = "shard_added"
	EventShardRemoved = "shard_removed"
	EventQuarantined  = "quarantined"
	EventProbed       = "probed"
	EventRestored     = "restored"
)

// FleetEvent is one timestamped entry of the fleet's lifecycle
// history: topology changes, quarantine verdicts, probe transitions,
// automatic restores. The fleet keeps the most recent fleetEventCap
// entries; the Diagnoser attaches them to every Diagnosis, so
// GET /v1/diagnosis serves an operator timeline.
type FleetEvent struct {
	At     time.Time
	Kind   string
	Shard  int
	Detail string
}

// fleetEventCap bounds the history ring.
const fleetEventCap = 256

// recordEventLocked appends one event to the history ring (callers
// hold f.mu).
func (f *Fleet) recordEventLocked(kind string, shard int, detail string) {
	ev := FleetEvent{At: time.Now(), Kind: kind, Shard: shard, Detail: detail}
	if len(f.events) < fleetEventCap {
		f.events = append(f.events, ev)
	} else {
		f.events[f.eventSeq%fleetEventCap] = ev
	}
	f.eventSeq++
}

// Events returns the lifecycle history, oldest first — at most the
// most recent fleetEventCap entries.
func (f *Fleet) Events() []FleetEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FleetEvent, 0, len(f.events))
	if f.eventSeq > len(f.events) {
		start := f.eventSeq % fleetEventCap
		out = append(out, f.events[start:]...)
		out = append(out, f.events[:start]...)
	} else {
		out = append(out, f.events...)
	}
	return out
}

// FleetOption customizes a Fleet.
type FleetOption func(*Fleet)

// WithFleetRouter selects the routing policy (default
// LeastLoadedRouter).
func WithFleetRouter(r Router) FleetOption {
	return func(f *Fleet) { f.router = r }
}

// WithFleetWorkers sets each shard's worker count (default 1). Worker
// count changes wall-clock time only, never results.
func WithFleetWorkers(n int) FleetOption {
	return func(f *Fleet) { f.workers = n }
}

// WithFleetQueueDepth bounds each shard's input queue (default
// 2×workers, minimum 1). A fuller queue means more buffering before
// Submit blocks or TrySubmit rejects.
func WithFleetQueueDepth(n int) FleetOption {
	return func(f *Fleet) { f.depth = n }
}

// WithFleetSeed sets the base noise seed per-sample streams derive
// from (default: the first platform's seed). A Lab with the same seed
// over the same platform produces byte-identical results.
func WithFleetSeed(seed uint64) FleetOption {
	return func(f *Fleet) { f.seed = seed }
}

// WithFleetFaultPlan arms a replayable fault plan at construction —
// the fleet starts life already degraded, which is how the scenario
// tests create a sick shard on purpose. See FaultPlan and
// Fleet.InjectFaults.
func WithFleetFaultPlan(plan FaultPlan) FleetOption {
	return func(f *Fleet) { f.faultPlan = &plan }
}

// WithFleetProbePolicy sets the circuit breaker's consecutive-probe
// thresholds: a healthy shard's breaker opens (quarantining it) after
// failures probe failures in a row, and a quarantined shard is
// restored after restores consecutive probe panels matching its
// known-good fingerprint. Both default to 3; values below 1 clamp
// to 1. See Fleet.ProbeShards.
func WithFleetProbePolicy(failures, restores int) FleetOption {
	return func(f *Fleet) {
		f.failThreshold = failures
		f.restoreThreshold = restores
	}
}

// NewFleet builds a dispatcher over the given designed platforms (one
// shard each — they may serve different target panels) and starts the
// shard workers. Every shard's calibration cache is warmed here, so
// the serving path only ever reads it.
func NewFleet(platforms []*Platform, opts ...FleetOption) (*Fleet, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("advdiag: NewFleet needs at least one platform")
	}
	for i, p := range platforms {
		if p == nil || p.inner == nil {
			return nil, fmt.Errorf("advdiag: NewFleet shard %d: platform is not designed", i)
		}
	}
	f := &Fleet{router: LeastLoadedRouter{}, seed: platforms[0].seed, workers: 1,
		failThreshold: 3, restoreThreshold: 3}
	for _, opt := range opts {
		opt(f)
	}
	if f.workers < 1 {
		f.workers = 1
	}
	if f.depth < 1 {
		f.depth = 2 * f.workers
	}
	if f.router == nil {
		f.router = LeastLoadedRouter{}
	}
	if f.failThreshold < 1 {
		f.failThreshold = 1
	}
	if f.restoreThreshold < 1 {
		f.restoreThreshold = 1
	}
	f.probeSeed = mathx.Mix64(f.seed ^ mathx.SplitmixGamma)
	f.cond = sync.NewCond(&f.mu)
	f.results = make(chan PanelOutcome, len(platforms)*f.depth)
	f.mresults = make(chan MonitorOutcome, len(platforms)*f.depth)
	// Build every shard before starting any worker: a construction
	// failure on a later shard must not leak goroutines blocked on the
	// earlier shards' queues.
	for i, p := range platforms {
		lab, err := NewLab(p, WithLabWorkers(f.workers), WithLabSeed(f.seed))
		if err != nil {
			return nil, fmt.Errorf("advdiag: NewFleet shard %d: %w", i, err)
		}
		sh := &fleetShard{
			index:   i,
			lab:     lab,
			targets: p.Targets(),
			queue:   make(chan fleetJob, f.depth),
		}
		if err := f.probeBaseline(sh); err != nil {
			return nil, fmt.Errorf("advdiag: NewFleet shard %d probe baseline: %w", i, err)
		}
		f.shards = append(f.shards, sh)
	}
	for _, sh := range f.shards {
		for w := 0; w < f.workers; w++ {
			f.workWG.Add(1)
			go f.shardWorker(sh)
		}
	}
	if f.faultPlan != nil {
		if err := f.InjectFaults(*f.faultPlan); err != nil {
			f.Close() //nolint:errcheck // construction bail-out
			return nil, err
		}
	}
	return f, nil
}

// Shards reports the shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// shardWorker executes routed jobs for one shard until its queue
// closes, consulting the shard's fault state before each job. The
// healthy path costs one atomic nil-check, and opportunistically
// coalesces whatever compatible panel jobs are already queued into one
// bounded batch over a shared executor scratch: the drain is
// non-blocking (a worker never waits for a batch to fill), stops at
// monitor jobs and at fault states that need per-job handling, and
// preserves queue order, so submission indices — and with them every
// panel's noise stream — are untouched.
func (f *Fleet) shardWorker(sh *fleetShard) {
	defer f.workWG.Done()
	jobs := make([]fleetJob, 0, labBatchMax)
	for job := range sh.queue {
		fs := sh.fault.Load()
		if job.monitor != nil || !batchableFault(fs) {
			f.dispatchJob(sh, job)
			continue
		}
		jobs = append(jobs[:0], job)
		var (
			tail    fleetJob // monitor job that ended the drain
			hasTail bool
			closed  bool
		)
	drain:
		for len(jobs) < labBatchMax {
			select {
			case next, ok := <-sh.queue:
				if !ok {
					closed = true
					break drain
				}
				if next.monitor != nil {
					tail, hasTail = next, true
					break drain
				}
				jobs = append(jobs, next)
			default:
				break drain
			}
		}
		f.runJobBatch(sh, jobs, fs)
		if hasTail {
			f.dispatchJob(sh, tail)
		}
		if closed {
			return
		}
	}
}

// batchableFault reports whether a shard's fault state allows coalesced
// execution: healthy shards and fouled-electrode shards batch (fouling
// is a pure per-panel signal perturbation), while dead, flaky and slow
// shards need dispatchJob's per-job park/stall/delay handling.
func batchableFault(fs *shardFaultState) bool {
	return fs == nil || (!fs.dead && fs.flaky == nil && fs.delay == 0)
}

// runJobBatch executes a coalesced run of panel jobs under one fault
// snapshot and delivers the outcomes in submission order. Fault states
// injected mid-batch take effect from the next dequeue, exactly as a
// fault injected mid-panel waits for the next job on the per-job path.
func (f *Fleet) runJobBatch(sh *fleetShard, jobs []fleetJob, fs *shardFaultState) {
	var fouling *rt.Fouling
	if fs != nil {
		fouling = fs.fouling
	}
	if len(jobs) == 1 {
		f.runJob(sh, jobs[0], fouling)
		return
	}
	lj := make([]labBatchJob, len(jobs))
	for i, j := range jobs {
		lj[i] = labBatchJob{seedIdx: j.seedIdx, schedIdx: j.schedIdx, sample: j.sample}
	}
	outs := make([]PanelOutcome, len(jobs))
	sh.lab.runBatch(lj, fouling, outs)
	for i := range outs {
		outs[i].Shard = sh.index
		f.results <- outs[i]
		f.complete(sh, false)
	}
}

// dispatchJob runs, parks, or stalls one dequeued job according to the
// shard's fault state.
func (f *Fleet) dispatchJob(sh *fleetShard, job fleetJob) {
	for {
		fs := sh.fault.Load()
		if fs != nil && fs.dead {
			f.parkJob(sh, fs, job)
			return
		}
		if fs != nil && fs.flaky != nil && fs.flaky.downNow() {
			if f.stallJob(sh, fs, job) {
				return
			}
			// The fault state changed between the slot draw and the
			// stall — re-evaluate against the current state.
			continue
		}
		if fs != nil && fs.delay > 0 {
			time.Sleep(fs.delay)
		}
		var fouling *rt.Fouling
		if fs != nil {
			fouling = fs.fouling
		}
		f.runJob(sh, job, fouling)
		return
	}
}

// stallJob holds a job that hit a flaky shard's down slot. Unlike a
// dead shard's parkJob, the worker does not block: the job joins the
// stalled list (rescued by Quarantine, RemoveShard, or ClearFaults —
// never lost) and the worker moves on, because a flaky shard still
// serves its up slots. Returns false when the fault state changed
// under the stall, in which case the caller re-evaluates: ClearFaults
// reroutes the stalled list it collected under the same lock, so
// parking against a stale state would orphan the job.
func (f *Fleet) stallJob(sh *fleetShard, fs *shardFaultState, job fleetJob) bool {
	f.mu.Lock()
	if sh.quarantined || sh.removed {
		// The shard's backlog was already drained: hand the straggler to
		// the reroute path.
		moves, fails := f.rerouteLocked(sh, []fleetJob{job})
		f.mu.Unlock()
		f.deliver(moves, fails)
		return true
	}
	if sh.fault.Load() != fs {
		f.mu.Unlock()
		return false
	}
	sh.stalled = append(sh.stalled, job)
	f.mu.Unlock()
	return true
}

// runJob executes one routed job on its shard and delivers the outcome.
func (f *Fleet) runJob(sh *fleetShard, job fleetJob, fouling *rt.Fouling) {
	if job.monitor != nil {
		out := sh.lab.runMonitor(job.seedIdx, *job.monitor)
		out.Shard = sh.index
		f.mresults <- out
		f.complete(sh, true)
		return
	}
	out := sh.lab.runIndexed(job.seedIdx, job.schedIdx, job.sample, fouling)
	out.Shard = sh.index
	f.results <- out
	f.complete(sh, false)
}

// parkJob holds a job a dead shard's worker dequeued: the job joins the
// shard's stalled list and the worker blocks until the fault lifts —
// a hung instrument that keeps its accepted work. Quarantine reroutes
// the stalled list to siblings; ClearFaults (and Close) release the
// workers to run whatever is still parked themselves.
func (f *Fleet) parkJob(sh *fleetShard, fs *shardFaultState, job fleetJob) {
	f.mu.Lock()
	if sh.quarantined || sh.removed {
		// Quarantine or removal already drained this shard: hand the
		// straggler to the reroute path instead of parking it forever.
		moves, fails := f.rerouteLocked(sh, []fleetJob{job})
		f.mu.Unlock()
		f.deliver(moves, fails)
		return
	}
	sh.stalled = append(sh.stalled, job)
	f.mu.Unlock()

	<-fs.lifted
	// The fault lifted. Quarantine empties the stalled list before
	// closing the channel, so anything still here was released by
	// ClearFaults or Close and belongs to this (no longer dead) shard.
	f.mu.Lock()
	jobs := sh.stalled
	sh.stalled = nil
	f.mu.Unlock()
	for _, j := range jobs {
		f.runJob(sh, j, nil)
	}
}

// complete records one finished job (taking the fleet mutex itself).
func (f *Fleet) complete(sh *fleetShard, monitor bool) {
	f.mu.Lock()
	sh.pending--
	f.completeLocked(monitor)
	f.mu.Unlock()
}

// completeLocked advances the completion counters and wakes Drain
// (callers hold f.mu).
func (f *Fleet) completeLocked(monitor bool) {
	now := time.Now()
	if monitor {
		f.mcompleted++
	} else {
		f.completed++
	}
	if f.last.Before(now) {
		f.last = now
	}
	f.cond.Broadcast()
}

// snapshotLocked builds the router's view (callers hold f.mu).
func (f *Fleet) snapshotLocked() []ShardInfo {
	view := make([]ShardInfo, len(f.shards))
	for i, sh := range f.shards {
		// pending covers queued + executing; whatever is not in the
		// queue right now is on a worker (or about to be — either way
		// it is load the router must see).
		ql := len(sh.queue)
		inflight := sh.pending - ql
		if inflight < 0 {
			inflight = 0
		}
		view[i] = ShardInfo{
			Index:    i,
			Targets:  sh.targets,
			QueueLen: ql,
			QueueCap: f.depth,
			InFlight: inflight,
			Load:     float64(sh.pending) / float64(f.depth+f.workers),
		}
	}
	return view
}

// routeViewLocked is the router's view: the current snapshot minus
// quarantined and removed shards. Filtering here — instead of flagging
// ShardInfo — keeps every Router topology-aware for free: a policy
// that never heard of quarantine or removal simply cannot pick a shard
// it cannot see. With no routable shard left the view is empty and
// routers answer ErrNoShard. Callers hold f.mu.
func (f *Fleet) routeViewLocked() []ShardInfo {
	view := f.snapshotLocked()
	healthy := view[:0]
	for i, sh := range f.shards {
		if !sh.quarantined && !sh.removed {
			healthy = append(healthy, view[i])
		}
	}
	return healthy
}

// route runs the router on the current view and validates its answer.
// Callers hold f.mu.
func (f *Fleet) routeLocked(s Sample) (*fleetShard, error) {
	idx, err := f.router.Route(s, f.routeViewLocked())
	if err != nil {
		f.routeErrs++
		return nil, err
	}
	if idx < 0 || idx >= len(f.shards) {
		f.routeErrs++
		return nil, fmt.Errorf("advdiag: router returned shard %d outside [0,%d)", idx, len(f.shards))
	}
	if f.shards[idx].quarantined || f.shards[idx].removed {
		f.routeErrs++
		return nil, fmt.Errorf("advdiag: router returned unroutable (quarantined or removed) shard %d", idx)
	}
	return f.shards[idx], nil
}

// Submit routes one sample and enqueues it on its shard, blocking
// while that shard's queue is full (backpressure). It returns the
// router's error for unroutable samples and ErrFleetClosed after
// Close. Consume Results concurrently.
func (f *Fleet) Submit(s Sample) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFleetClosed
	}
	sh, err := f.routeLocked(s)
	if err != nil {
		f.mu.Unlock()
		return err
	}
	job := f.acceptLocked(sh, s)
	f.submitWG.Add(1)
	sh.handoffs.Add(1)
	f.mu.Unlock()

	defer f.submitWG.Done()
	sh.queue <- job
	sh.handoffs.Done()
	return nil
}

// TrySubmit is Submit without blocking: when the routed shard's queue
// is full it returns ErrFleetSaturated (counted in FleetStats) and the
// sample is not accepted.
func (f *Fleet) TrySubmit(s Sample) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFleetClosed
	}
	sh, err := f.routeLocked(s)
	if err != nil {
		return err
	}
	select {
	case sh.queue <- f.acceptLocked(sh, s):
		return nil
	default:
		// Roll back the acceptance: the sample never entered the
		// queue, so neither the submission index nor the shard slot
		// may advance (a later Lab comparison would desync).
		f.submitted--
		sh.sched--
		sh.pending--
		sh.routed.Add(^uint64(0))
		f.rejected++
		return ErrFleetSaturated
	}
}

// acceptLocked assigns the fleet-wide submission index and the shard's
// instrument slot for one accepted sample (callers hold f.mu).
func (f *Fleet) acceptLocked(sh *fleetShard, s Sample) fleetJob {
	if f.first.IsZero() {
		f.first = time.Now()
	}
	job := fleetJob{seedIdx: f.submitted, schedIdx: sh.sched, sample: s}
	f.submitted++
	sh.sched++
	sh.pending++
	sh.routed.Add(1)
	return job
}

// monitorRoutingSample is the router's view of a monitor request: the
// campaign ID keys consistent-hash routing (same campaign → same
// shard, the patient→instrument affinity longitudinal tracking wants)
// and the target keys panel-type affinity.
func monitorRoutingSample(req MonitorRequest) Sample {
	return Sample{ID: req.ID, Concentrations: map[string]float64{req.Target: req.ConcentrationMM}}
}

// acceptMonitorLocked assigns the monitor acceptance index for one
// accepted request (callers hold f.mu). Monitors never advance the
// shard's instrument slot counter: campaigns run on a virtual
// timeline, and panel schedule positions must not depend on monitor
// traffic.
func (f *Fleet) acceptMonitorLocked(sh *fleetShard, req MonitorRequest) fleetJob {
	if f.first.IsZero() {
		f.first = time.Now()
	}
	job := fleetJob{seedIdx: f.msubmitted, monitor: &req}
	f.msubmitted++
	sh.pending++
	sh.routed.Add(1)
	return job
}

// SubmitMonitor routes one monitoring acquisition and enqueues it on
// its shard, blocking while that shard's queue is full. Monitors share
// the shard queues and workers with panel traffic but keep their own
// acceptance counter and Results channel; because every monitor
// carries its own seed, interleaving with panels (or other monitors)
// never changes any result. Consume MonitorResults concurrently.
func (f *Fleet) SubmitMonitor(req MonitorRequest) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFleetClosed
	}
	sh, err := f.routeLocked(monitorRoutingSample(req))
	if err != nil {
		f.mu.Unlock()
		return err
	}
	job := f.acceptMonitorLocked(sh, req)
	f.submitWG.Add(1)
	sh.handoffs.Add(1)
	f.mu.Unlock()

	defer f.submitWG.Done()
	sh.queue <- job
	sh.handoffs.Done()
	return nil
}

// TrySubmitMonitor is SubmitMonitor without blocking: when the routed
// shard's queue is full it returns ErrFleetSaturated (counted in
// FleetStats.MonitorsRejected) and the request is not accepted.
func (f *Fleet) TrySubmitMonitor(req MonitorRequest) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFleetClosed
	}
	sh, err := f.routeLocked(monitorRoutingSample(req))
	if err != nil {
		return err
	}
	select {
	case sh.queue <- f.acceptMonitorLocked(sh, req):
		return nil
	default:
		// Roll back the acceptance — the request never entered the
		// queue.
		f.msubmitted--
		sh.pending--
		sh.routed.Add(^uint64(0))
		f.mrejected++
		return ErrFleetSaturated
	}
}

// MonitorResults returns the merged monitor output channel. Outcomes
// arrive in completion order, each tagged with its acceptance Index,
// campaign ID and Tick, and the Shard that ran it; Close closes the
// channel once every accepted request has been measured. The channel
// has a single-consumer contract: a Server's monitor collector or one
// MonitorScheduler, never both.
func (f *Fleet) MonitorResults() <-chan MonitorOutcome { return f.mresults }

// Results returns the merged output channel. Outcomes arrive in
// completion order, each tagged with its fleet-wide Index and the
// Shard that ran it; Close closes the channel once every accepted
// sample has been measured.
func (f *Fleet) Results() <-chan PanelOutcome { return f.results }

// Drain blocks until every sample accepted before the call has been
// measured and delivered to Results. Submissions may continue from
// other goroutines; Drain tracks the count it observed at entry. The
// caller must keep consuming Results (or rely on its buffering) while
// draining. Note that a shard held dead by FaultDeadShard never
// completes its jobs: Drain then blocks until the shard is quarantined
// (rerouting its backlog) or the fault is cleared.
func (f *Fleet) Drain() {
	f.mu.Lock()
	target, mtarget := f.submitted, f.msubmitted
	for f.completed < target || f.mcompleted < mtarget {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Close stops intake, waits for in-flight panels, and closes Results.
// The first Close returns nil; later ones return ErrFleetClosed.
// Like Drain, Close requires Results to keep being consumed (or to
// have buffer room) while the queues empty.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFleetClosed
	}
	f.closed = true
	// Lift every fault before shutting the queues: workers parked by a
	// dead fault must wake, run the work they were holding, and observe
	// the queue close — otherwise workWG.Wait would hang on them.
	shards := f.shards
	for _, sh := range shards {
		f.liftFaultLocked(sh)
	}
	f.mu.Unlock()

	// Wait out Submits caught between their closed-check and the queue
	// handoff (reroute deliveries and retire goroutines count too),
	// then shut the shard queues down. A removed shard's retire
	// goroutine closed its queue itself — retired is ordered before
	// this read by the retire goroutine's submitWG registration.
	f.submitWG.Wait()
	for _, sh := range shards {
		if !sh.retired {
			close(sh.queue)
		}
	}
	f.workWG.Wait()
	close(f.results)
	close(f.mresults)
	return nil
}

// InjectFault arms one fault on its target shard at run time. Faults
// of different kinds compose on a shard (a shard can be fouled and
// slow at once); re-injecting a kind replaces the earlier instance.
// Injection is atomic per shard: workers observe either the previous
// fault state or the new one, never a torn mix.
func (f *Fleet) InjectFault(ft Fault) error {
	if err := ft.Validate(len(f.shards)); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFleetClosed
	}
	if f.shards[ft.Shard].removed {
		return fmt.Errorf("advdiag: fault targets removed shard %d", ft.Shard)
	}
	f.injectLocked(ft)
	return nil
}

// InjectFaults arms a whole plan, validating every fault before arming
// any — a plan takes effect completely or not at all.
func (f *Fleet) InjectFaults(plan FaultPlan) error {
	if err := plan.Validate(len(f.shards)); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrFleetClosed
	}
	for _, ft := range plan.Faults {
		if f.shards[ft.Shard].removed {
			return fmt.Errorf("advdiag: fault targets removed shard %d", ft.Shard)
		}
	}
	for _, ft := range plan.Faults {
		f.injectLocked(ft)
	}
	return nil
}

// injectLocked compiles one fault into its shard's state (callers hold
// f.mu). Copy-on-write: the previous state object stays intact for any
// worker that already loaded it.
func (f *Fleet) injectLocked(ft Fault) {
	sh := f.shards[ft.Shard]
	ns := &shardFaultState{}
	if prev := sh.fault.Load(); prev != nil {
		*ns = *prev
	}
	switch ft.Kind {
	case FaultFouledElectrode:
		ns.fouling = &rt.Fouling{Target: ft.Target, Severity: ft.Severity, Seed: ft.Seed}
	case FaultSlowShard:
		ns.delay = ft.Delay
	case FaultDeadShard:
		ns.dead = true
		if ns.lifted == nil {
			ns.lifted = make(chan struct{})
		}
	case FaultFlakyShard:
		down := int(math.Round(ft.Severity * float64(ft.Period)))
		if down < 1 {
			down = 1
		}
		if down > ft.Period-1 {
			down = ft.Period - 1
		}
		ns.flaky = &flakyState{
			period: uint64(ft.Period),
			down:   uint64(down),
			offset: mathx.Mix64(ft.Seed) % uint64(ft.Period),
		}
	}
	sh.fault.Store(ns)
}

// liftFaultLocked clears a shard's fault state, waking workers parked
// by a dead fault (callers hold f.mu).
func (f *Fleet) liftFaultLocked(sh *fleetShard) {
	fs := sh.fault.Swap(nil)
	if fs != nil && fs.lifted != nil {
		close(fs.lifted)
	}
}

// liftForQuarantineLocked is the fault lift Quarantine applies
// (callers hold f.mu). Dead, fouled and slow faults are cleared: a
// dead fault parks workers that must wake to stay able to serve
// stragglers already in a Submit handoff, and a fouled or slow fault
// would distort or delay the straggler that still completes here. A
// flaky fault persists through quarantine — its down slots never run
// a job in place (stallJob reroutes off a quarantined shard) and its
// up slots run healthy, so keeping it is fingerprint-safe — and it
// keeps the shard demonstrably broken, so health probes hold the
// breaker open until ClearFaults actually heals the hardware rather
// than restoring the shard the moment its breaker opens.
func (f *Fleet) liftForQuarantineLocked(sh *fleetShard) {
	fs := sh.fault.Load()
	if fs == nil {
		return
	}
	if fs.flaky == nil {
		f.liftFaultLocked(sh)
		return
	}
	// Same flakyState pointer: the duty-cycle slot counter keeps
	// advancing across the quarantine, like the real intermittent
	// hardware it models.
	sh.fault.Store(&shardFaultState{flaky: fs.flaky})
	if fs.lifted != nil {
		close(fs.lifted)
	}
}

// ClearFaults lifts every injected fault: fouled electrodes heal, slow
// shards speed back up, dead shards' workers wake and run the jobs
// they were holding (healthy — the fault is gone), and jobs stalled by
// a flaky shard's down slots are rerouted (often back to the very
// shard, now healthy — no worker is waiting on them, so they must
// travel through the reroute path rather than run in place).
// Quarantine decisions are not reversed; quarantine is a routing-layer
// verdict, not a fault — health probes lift it once the shard proves
// itself (see ProbeShards).
func (f *Fleet) ClearFaults() {
	f.mu.Lock()
	var moves []rerouteMove
	var fails []rerouteFail
	for _, sh := range f.shards {
		fs := sh.fault.Load()
		hadDead := fs != nil && fs.dead
		f.liftFaultLocked(sh)
		// A dead shard's parked workers own the stalled list — they wake
		// on the lifted channel and run it in place. Quarantined and
		// removed shards were drained already. Anything else stalled
		// (flaky down-slot jobs) has no owner, so reroute it here.
		if !hadDead && !sh.quarantined && !sh.removed && len(sh.stalled) > 0 {
			jobs := sh.stalled
			sh.stalled = nil
			mv, fl := f.rerouteLocked(sh, jobs)
			moves = append(moves, mv...)
			fails = append(fails, fl...)
		}
	}
	f.mu.Unlock()
	f.deliver(moves, fails)
}

// Quarantine removes one shard from every router's view and reroutes
// its backlog — queued jobs plus any jobs its workers were holding
// under a dead fault — to the surviving shards. A rerouted panel keeps
// its fleet submission index, so its noise stream (and therefore its
// fingerprint) is unchanged: quarantine loses zero panels. Jobs no
// surviving shard can serve complete with an error outcome instead of
// vanishing, so Drain and batches never hang on them. Dead, fouled and
// slow faults on the shard are lifted (its workers must stay able to
// serve stragglers already in a Submit handoff — such a job still
// completes on this shard, healthy); a flaky fault persists, keeping
// the shard demonstrably broken under quarantine so health probes only
// restore it once ClearFaults heals it (see liftForQuarantineLocked).
// Quarantining an already-quarantined shard is a no-op; with every
// shard quarantined routers see an empty fleet and new submissions
// fail with ErrNoShard.
//
// Quarantine may block delivering rerouted jobs when every surviving
// queue is full (the same backpressure a Submit obeys) — keep
// consuming Results, as with Submit.
func (f *Fleet) Quarantine(shard int) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFleetClosed
	}
	if shard < 0 || shard >= len(f.shards) {
		f.mu.Unlock()
		return fmt.Errorf("advdiag: quarantine shard %d outside [0,%d)", shard, len(f.shards))
	}
	sh := f.shards[shard]
	if sh.removed {
		f.mu.Unlock()
		return fmt.Errorf("advdiag: quarantine removed shard %d", shard)
	}
	if sh.quarantined {
		f.mu.Unlock()
		return nil
	}
	sh.quarantined = true
	// Every quarantine opens the breaker — whether it came from probe
	// failures, a Diagnoser conviction, or an operator — so health
	// probes can restore any quarantined shard once it proves healthy.
	sh.breaker = BreakerOpen
	sh.probeGoods = 0
	sh.probeFails = 0
	// Collect the backlog: parked work first (it was accepted first),
	// then whatever is still queued. Workers mid-park that have not yet
	// taken the lock will see quarantined and reroute their own job.
	jobs := sh.stalled
	sh.stalled = nil
drain:
	for {
		select {
		case j := <-sh.queue:
			jobs = append(jobs, j)
		default:
			break drain
		}
	}
	f.liftForQuarantineLocked(sh)
	moves, fails := f.rerouteLocked(sh, jobs)
	f.recordEventLocked(EventQuarantined, shard, fmt.Sprintf("breaker open, %d backlog jobs rerouted", len(jobs)))
	f.mu.Unlock()
	f.deliver(moves, fails)
	return nil
}

// Quarantined reports the quarantined shard indices, in order.
func (f *Fleet) Quarantined() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int
	for _, sh := range f.shards {
		if sh.quarantined {
			out = append(out, sh.index)
		}
	}
	return out
}

// AddShard grows the fleet by one shard over the given designed
// platform, at run time and under live load. The new shard takes the
// next index (indices are stable for the fleet's lifetime — removal
// never renumbers), starts its workers immediately, and joins the
// routing view with a closed breaker. Determinism is unaffected: noise
// seeds derive from the fleet-wide submission index alone, so a sample
// routed to the new shard produces exactly the panel it would have
// produced anywhere else (see ReplayPanel).
func (f *Fleet) AddShard(p *Platform) (int, error) {
	if p == nil || p.inner == nil {
		return 0, fmt.Errorf("advdiag: AddShard: platform is not designed")
	}
	lab, err := NewLab(p, WithLabWorkers(f.workers), WithLabSeed(f.seed))
	if err != nil {
		return 0, fmt.Errorf("advdiag: AddShard: %w", err)
	}
	sh := &fleetShard{
		lab:     lab,
		targets: p.Targets(),
		queue:   make(chan fleetJob, f.depth),
	}
	if err := f.probeBaseline(sh); err != nil {
		return 0, fmt.Errorf("advdiag: AddShard probe baseline: %w", err)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrFleetClosed
	}
	sh.index = len(f.shards)
	f.shards = append(f.shards, sh)
	// Starting workers under the same mutex Close takes to set closed
	// orders this workWG.Add strictly before Close's workWG.Wait.
	for w := 0; w < f.workers; w++ {
		f.workWG.Add(1)
		go f.shardWorker(sh)
	}
	f.recordEventLocked(EventShardAdded, sh.index, "targets "+strings.Join(sh.targets, ","))
	f.mu.Unlock()
	return sh.index, nil
}

// RemoveShard retires one shard at run time and under live load: the
// shard leaves the routing view immediately, its backlog (queued jobs
// plus anything stalled under a fault) is rerouted to siblings with
// submission indices — and therefore fingerprints — preserved, and its
// workers shut down once every in-flight handoff has landed. Zero
// panels are lost; jobs no surviving shard can serve complete with
// error outcomes instead of vanishing. The index is never reused: the
// shard stays in FleetStats (marked Removed) and ReplayPanel still
// accepts it, so operator timelines and replay checks survive the
// topology change. Removing the last routable shard is allowed —
// submissions then fail with ErrNoShard until AddShard grows the fleet
// again.
//
// Like Quarantine, RemoveShard may block delivering rerouted jobs when
// every surviving queue is full — keep consuming Results.
func (f *Fleet) RemoveShard(shard int) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrFleetClosed
	}
	if shard < 0 || shard >= len(f.shards) {
		f.mu.Unlock()
		return fmt.Errorf("advdiag: remove shard %d outside [0,%d)", shard, len(f.shards))
	}
	sh := f.shards[shard]
	if sh.removed {
		f.mu.Unlock()
		return fmt.Errorf("advdiag: shard %d is already removed", shard)
	}
	sh.removed = true
	jobs := sh.stalled
	sh.stalled = nil
drain:
	for {
		select {
		case j := <-sh.queue:
			jobs = append(jobs, j)
		default:
			break drain
		}
	}
	f.liftFaultLocked(sh)
	moves, fails := f.rerouteLocked(sh, jobs)
	f.recordEventLocked(EventShardRemoved, shard, fmt.Sprintf("%d backlog jobs rerouted", len(jobs)))
	// The retire goroutine registers on submitWG so Close cannot shut
	// the fleet down between the drain above and the queue close below.
	f.submitWG.Add(1)
	go f.retireShard(sh)
	f.mu.Unlock()
	f.deliver(moves, fails)
	return nil
}

// retireShard closes a removed shard's queue once every straggler
// handoff — a Submit or reroute delivery that routed here before the
// removal — has landed. The shard's workers drain whatever those
// stragglers enqueued (running it healthy, exactly like quarantine
// stragglers) and exit on the close.
func (f *Fleet) retireShard(sh *fleetShard) {
	defer f.submitWG.Done()
	sh.handoffs.Wait()
	f.mu.Lock()
	sh.retired = true
	f.mu.Unlock()
	close(sh.queue)
}

// Removed reports the removed shard indices, in order.
func (f *Fleet) Removed() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int
	for _, sh := range f.shards {
		if sh.removed {
			out = append(out, sh.index)
		}
	}
	return out
}

// ReplayPanel recomputes the panel a sample produced (or would
// produce) at a given fleet submission index, on the chosen shard's
// platform, healthy and outside the serving path. Because noise
// streams derive from the fleet seed and the submission index alone,
// the replay is bit-identical to the served outcome no matter which
// shard — on which topology, after how many reroutes — actually ran
// it: this is the replay-checkable determinism contract that survives
// AddShard and RemoveShard. Removed shards stay replayable, and on a
// fleet of identical platforms any shard verifies any result. Replays
// never touch shard statistics or the fault harness.
func (f *Fleet) ReplayPanel(shard, index int, s Sample) (PanelResult, error) {
	f.mu.Lock()
	if shard < 0 || shard >= len(f.shards) {
		n := len(f.shards)
		f.mu.Unlock()
		return PanelResult{}, fmt.Errorf("advdiag: replay on shard %d outside [0,%d)", shard, n)
	}
	sh := f.shards[shard]
	f.mu.Unlock()
	if index < 0 {
		return PanelResult{}, fmt.Errorf("advdiag: replay index %d is negative", index)
	}
	p, err := sh.lab.p.exec.RunFouled(s.Concentrations, rt.SampleSeed(f.seed, index), nil)
	if err != nil {
		return PanelResult{}, err
	}
	return panelResult(p), nil
}

// probeConcMM is the concentration every probe panel measures each
// target at — well inside every assay's linear range.
const probeConcMM = 1.0

// probeBaseline fixes the shard's probe panel (every target at
// probeConcMM) and records its known-good fingerprint by running it
// healthy through the platform executor directly — bypassing the Lab
// so probe traffic never perturbs the serving-path statistics the
// Diagnoser watches.
func (f *Fleet) probeBaseline(sh *fleetShard) error {
	sample := make(map[string]float64, len(sh.targets))
	for _, t := range sh.targets {
		sample[t] = probeConcMM
	}
	sh.probeSample = sample
	p, err := sh.lab.p.exec.RunFouled(sample, f.probeSeed, nil)
	if err != nil {
		return err
	}
	sh.probeGood = panelResult(p).Fingerprint()
	return nil
}

// probeOnce runs one probe panel on the shard through the fault
// harness and reports whether the result matches the shard's
// known-good fingerprint. Probes consume a flaky fault's slot sequence
// (an intermittent shard fails probes intermittently, like its
// traffic), fail on a dead shard, and see fouling exactly as real jobs
// do — but skip a slow shard's delay, because slowness changes timing,
// never results, and probes judge correctness.
func (f *Fleet) probeOnce(sh *fleetShard) bool {
	fs := sh.fault.Load()
	if fs != nil {
		if fs.dead {
			return false
		}
		if fs.flaky != nil && fs.flaky.downNow() {
			return false
		}
	}
	var fouling *rt.Fouling
	if fs != nil {
		fouling = fs.fouling
	}
	p, err := sh.lab.p.exec.RunFouled(sh.probeSample, f.probeSeed, fouling)
	if err != nil {
		return false
	}
	return panelResult(p).Fingerprint() == sh.probeGood
}

// ProbeShards runs one health-probe sweep over every shard that is not
// removed, quarantined or healthy alike, and advances each breaker on
// the outcome:
//
//   - a healthy shard failing its probe counts toward the failure
//     threshold; reaching it opens the breaker, quarantining the shard
//     exactly as Fleet.Quarantine would (backlog rerouted losslessly);
//   - a quarantined shard whose probe matches its known-good
//     fingerprint moves to half-open (probe traffic only) and, after
//     restoreThreshold consecutive matches, is restored — quarantine
//     lifted, breaker closed, back in the routing view with no manual
//     un-quarantine call;
//   - one failed probe on a quarantined shard re-opens the breaker and
//     resets the restore progress.
//
// ProbeShards returns the indices of shards restored by this sweep.
// StartHealthProbes runs sweeps on a ticker; tests may call
// ProbeShards directly for deterministic stepping.
func (f *Fleet) ProbeShards() []int {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	shards := make([]*fleetShard, 0, len(f.shards))
	for _, sh := range f.shards {
		if !sh.removed {
			shards = append(shards, sh)
		}
	}
	f.mu.Unlock()

	var restored []int
	var trip []int
	for _, sh := range shards {
		healthy := f.probeOnce(sh)
		f.mu.Lock()
		if f.closed || sh.removed {
			f.mu.Unlock()
			continue
		}
		switch {
		case sh.quarantined && healthy:
			sh.breaker = BreakerHalfOpen
			sh.probeGoods++
			if sh.probeGoods >= f.restoreThreshold {
				sh.quarantined = false
				sh.breaker = BreakerClosed
				sh.probeGoods = 0
				sh.probeFails = 0
				sh.restores++
				restored = append(restored, sh.index)
				f.recordEventLocked(EventRestored, sh.index, fmt.Sprintf("%d consecutive known-good probes, breaker closed", f.restoreThreshold))
			} else {
				f.recordEventLocked(EventProbed, sh.index, fmt.Sprintf("known-good probe %d/%d, breaker half-open", sh.probeGoods, f.restoreThreshold))
			}
		case sh.quarantined: // quarantined, probe failed
			if sh.breaker == BreakerHalfOpen {
				f.recordEventLocked(EventProbed, sh.index, "probe failed, breaker re-opened")
			}
			sh.breaker = BreakerOpen
			sh.probeGoods = 0
		case healthy:
			sh.probeFails = 0
		default: // healthy shard, probe failed
			sh.probeFails++
			f.recordEventLocked(EventProbed, sh.index, fmt.Sprintf("probe failure %d/%d", sh.probeFails, f.failThreshold))
			if sh.probeFails >= f.failThreshold {
				trip = append(trip, sh.index)
			}
		}
		f.mu.Unlock()
	}
	for _, idx := range trip {
		// Quarantine re-checks state under the lock; a shard that was
		// quarantined, removed, or closed in the meantime is a no-op or
		// benign error.
		f.Quarantine(idx) //nolint:errcheck // racing removal/close is benign
	}
	return restored
}

// StartHealthProbes runs ProbeShards every interval until the returned
// stop function is called. Stop blocks until the loop exits and is
// safe to call more than once. Probing a closed fleet is a no-op, but
// stop the loop before Close to avoid pointless sweeps.
func (f *Fleet) StartHealthProbes(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				f.ProbeShards()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(quit) })
		<-done
	}
}

// rerouteMove is one planned reassignment of a quarantined shard's
// job; rerouteFail one job no surviving shard can serve.
type rerouteMove struct {
	to  *fleetShard
	job fleetJob
}

type rerouteFail struct {
	job  fleetJob
	from int
	err  error
}

// rerouteLocked plans new homes for a quarantined shard's backlog
// (callers hold f.mu; deliver executes the plan outside the lock).
// Moved jobs keep their seed index — determinism travels with the job
// — but take a fresh instrument slot on their destination's timeline.
func (f *Fleet) rerouteLocked(from *fleetShard, jobs []fleetJob) ([]rerouteMove, []rerouteFail) {
	var moves []rerouteMove
	var fails []rerouteFail
	for _, job := range jobs {
		rs := job.sample
		if job.monitor != nil {
			rs = monitorRoutingSample(*job.monitor)
		}
		to, err := f.routeLocked(rs)
		from.pending--
		if err != nil {
			fails = append(fails, rerouteFail{job: job, from: from.index, err: err})
			continue
		}
		to.pending++
		to.routed.Add(1)
		if job.monitor == nil {
			job.schedIdx = to.sched
			to.sched++
		}
		// Deliveries race with Close the same way accepted Submits do:
		// registering on submitWG (and the destination's handoff count)
		// before releasing the lock keeps the destination queue open
		// until the handoff lands.
		f.submitWG.Add(1)
		to.handoffs.Add(1)
		moves = append(moves, rerouteMove{to: to, job: job})
	}
	return moves, fails
}

// deliver executes a reroute plan outside the fleet lock: moved jobs
// enqueue on their new shards (blocking when those queues are full)
// and unservable jobs complete with error outcomes.
func (f *Fleet) deliver(moves []rerouteMove, fails []rerouteFail) {
	for _, mv := range moves {
		mv.to.queue <- mv.job
		mv.to.handoffs.Done()
		f.submitWG.Done()
	}
	for _, fl := range fails {
		if fl.job.monitor != nil {
			f.mresults <- MonitorOutcome{
				Index: fl.job.seedIdx,
				ID:    fl.job.monitor.ID,
				Tick:  fl.job.monitor.Tick,
				Shard: fl.from,
				Err:   fmt.Errorf("advdiag: rerouting from quarantined shard %d: %w", fl.from, fl.err),
			}
		} else {
			f.results <- PanelOutcome{
				Index: fl.job.seedIdx,
				ID:    fl.job.sample.ID,
				Shard: fl.from,
				Err:   fmt.Errorf("advdiag: rerouting from quarantined shard %d: %w", fl.from, fl.err),
			}
		}
		f.mu.Lock()
		f.completeLocked(fl.job.monitor != nil)
		f.mu.Unlock()
	}
}

// RunPanels routes and measures a batch, returning one outcome per
// sample in sample order. Per-sample failures land in the outcome's
// Err: a sample rejected before acceptance (unroutable, or the fleet
// closed) carries Index and Shard -1, while one that failed during
// measurement carries its real submission Index and Shard. Successful
// outcomes carry their fleet-wide submission Index.
//
// RunPanels drives the same Submit/Results machinery as streaming and
// owns the Results channel for its duration: it must not run
// concurrently with Submit, TrySubmit, another RunPanels, or a
// Results consumer. When switching from streaming to a batch, first
// Drain and consume every streamed outcome — any outcome still
// undelivered on Results when RunPanels starts belongs to no batch
// sample and is discarded.
func (f *Fleet) RunPanels(samples []Sample) []PanelOutcome {
	out := make([]PanelOutcome, len(samples))
	f.mu.Lock()
	base := f.submitted
	f.mu.Unlock()

	// The k-th accepted sample gets submission index base+k (RunPanels
	// is the only submitter, per the contract above); accepted[k] maps
	// it back to its batch position. The collector goroutine reads the
	// slice concurrently with the submit loop's appends, hence the
	// mutex.
	var posMu sync.Mutex
	var accepted []int
	place := func(o PanelOutcome) {
		off := o.Index - base
		posMu.Lock()
		ok := off >= 0 && off < len(accepted)
		pos := 0
		if ok {
			pos = accepted[off]
		}
		posMu.Unlock()
		if ok {
			out[pos] = o
		}
	}

	// Drain Results while submitting so bounded queues and the results
	// buffer cannot deadlock the batch. quit fires after Drain, when
	// every outcome of this batch has already been sent; the final
	// non-blocking loop empties what is still buffered.
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case o, ok := <-f.results:
				if !ok {
					return
				}
				place(o)
			case <-quit:
				for {
					select {
					case o, ok := <-f.results:
						if !ok {
							return
						}
						place(o)
					default:
						return
					}
				}
			}
		}
	}()

	for i, s := range samples {
		// Record the mapping before Submit: the outcome can race ahead
		// of Submit's return. Roll back when the sample is not
		// accepted.
		posMu.Lock()
		accepted = append(accepted, i)
		posMu.Unlock()
		if err := f.Submit(s); err != nil {
			posMu.Lock()
			accepted = accepted[:len(accepted)-1]
			posMu.Unlock()
			out[i] = PanelOutcome{Index: -1, ID: s.ID, Shard: -1, Err: err}
		}
	}
	f.Drain()
	close(quit)
	<-done
	return out
}

// FleetStats is an aggregate snapshot of the dispatcher and its
// shards.
type FleetStats struct {
	// Shards holds one entry per shard, in index order.
	Shards []FleetShardStats
	// Submitted counts accepted samples; Completed the measured
	// subset; Rejected the TrySubmit load-shed count; RouteErrors the
	// samples no shard could serve.
	Submitted, Completed, Rejected, RouteErrors uint64
	// MonitorsSubmitted/MonitorsCompleted/MonitorsRejected are the same
	// counters for monitoring acquisitions, which keep their own
	// acceptance sequence (RouteErrors covers both kinds).
	MonitorsSubmitted, MonitorsCompleted, MonitorsRejected uint64
	// PanelsPerSecond is fleet-wide throughput: completed panels over
	// the wall-clock span from first acceptance to last completion.
	PanelsPerSecond float64
	// WallSeconds is that span.
	WallSeconds float64
	// CacheHitRate aggregates every shard's calibration-cache
	// counters.
	CacheHitRate float64
}

// FleetShardStats is one shard's slice of the snapshot.
type FleetShardStats struct {
	// Index is the shard number; Targets its panel.
	Index int
	// Targets lists the species the shard's platform measures.
	Targets []string
	// Lab is the shard's service-layer snapshot (panels/sec, cache hit
	// rate, schedule-derived timing).
	Lab LabStats
	// QueueLen/QueueCap/InFlight describe the dispatch state at
	// snapshot time; Routed counts everything ever enqueued here.
	QueueLen, QueueCap, InFlight int
	Routed                       uint64
	// Quarantined marks a shard removed from the routing view (see
	// Fleet.Quarantine); it receives no new work.
	Quarantined bool
	// Breaker is the shard's circuit-breaker position (see ProbeShards);
	// ProbeFailures/ProbeGoods are its consecutive probe counters and
	// Restores counts automatic un-quarantines.
	Breaker       BreakerState
	ProbeFailures int
	ProbeGoods    int
	Restores      uint64
	// Removed marks a shard retired by RemoveShard — kept in the
	// snapshot so indices stay stable.
	Removed bool
}

// String renders the snapshot as a small report.
func (s FleetStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d shards, %d submitted / %d completed (%d rejected, %d unroutable), %.1f panels/s, cache %.0f%% hit\n",
		len(s.Shards), s.Submitted, s.Completed, s.Rejected, s.RouteErrors, s.PanelsPerSecond, 100*s.CacheHitRate)
	if s.MonitorsSubmitted > 0 || s.MonitorsCompleted > 0 || s.MonitorsRejected > 0 {
		fmt.Fprintf(&b, "  monitors: %d submitted / %d completed (%d rejected)\n",
			s.MonitorsSubmitted, s.MonitorsCompleted, s.MonitorsRejected)
	}
	for _, sh := range s.Shards {
		mark := ""
		switch {
		case sh.Removed:
			mark = " REMOVED"
		case sh.Quarantined:
			mark = fmt.Sprintf(" QUARANTINED breaker=%s", sh.Breaker)
		case sh.Breaker != BreakerClosed:
			mark = fmt.Sprintf(" breaker=%s", sh.Breaker)
		}
		fmt.Fprintf(&b, "  shard %d [%s]:%s %d routed, queue %d/%d, %d in flight, %.1f panels/s, cache %.0f%% hit\n",
			sh.Index, strings.Join(sh.Targets, ","), mark, sh.Routed, sh.QueueLen, sh.QueueCap, sh.InFlight,
			sh.Lab.PanelsPerSecond, 100*sh.Lab.CacheHitRate)
	}
	return b.String()
}

// Stats returns the current aggregate counters.
func (f *Fleet) Stats() FleetStats {
	f.mu.Lock()
	st := FleetStats{
		Submitted:         uint64(f.submitted),
		Completed:         uint64(f.completed),
		Rejected:          f.rejected,
		RouteErrors:       f.routeErrs,
		MonitorsSubmitted: uint64(f.msubmitted),
		MonitorsCompleted: uint64(f.mcompleted),
		MonitorsRejected:  f.mrejected,
	}
	if !f.first.IsZero() && f.last.After(f.first) {
		st.WallSeconds = f.last.Sub(f.first).Seconds()
	}
	// Capture the shard slice together with the view: AddShard may grow
	// f.shards concurrently, and the per-shard flags must match the
	// same snapshot the view describes.
	shards := f.shards
	view := f.snapshotLocked()
	type shardFlags struct {
		quarantined, removed bool
		breaker              BreakerState
		probeFails           int
		probeGoods           int
		restores             uint64
	}
	flags := make([]shardFlags, len(shards))
	for i, sh := range shards {
		flags[i] = shardFlags{
			quarantined: sh.quarantined,
			removed:     sh.removed,
			breaker:     sh.breaker,
			probeFails:  sh.probeFails,
			probeGoods:  sh.probeGoods,
			restores:    sh.restores,
		}
	}
	f.mu.Unlock()
	if st.WallSeconds > 0 {
		st.PanelsPerSecond = float64(st.Completed) / st.WallSeconds
	}
	var hits, lookups uint64
	for i, sh := range shards {
		ls := sh.lab.Stats()
		hits += ls.CacheHits
		lookups += ls.CacheHits + ls.CacheMisses
		st.Shards = append(st.Shards, FleetShardStats{
			Index:         sh.index,
			Targets:       sh.targets,
			Lab:           ls,
			QueueLen:      view[i].QueueLen,
			QueueCap:      f.depth,
			InFlight:      view[i].InFlight,
			Routed:        sh.routed.Load(),
			Quarantined:   flags[i].quarantined,
			Breaker:       flags[i].breaker,
			ProbeFailures: flags[i].probeFails,
			ProbeGoods:    flags[i].probeGoods,
			Restores:      flags[i].restores,
			Removed:       flags[i].removed,
		})
	}
	if lookups > 0 {
		// Shards sharing one Platform also share its cache counters,
		// so the absolute sums may count the same platform N times;
		// the rate is unaffected.
		st.CacheHitRate = float64(hits) / float64(lookups)
	}
	return st
}
