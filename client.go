package advdiag

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"advdiag/wire"
)

// Client talks to a Server over HTTP, speaking the wire format. It is
// the remote twin of a Lab's batch API: RunPanel/RunPanels/StreamPanels
// return the same PanelOutcome values a local Lab produces — including
// byte-identical PanelResult fingerprints, because both wire codecs
// are lossless for float64 and the server preserves submission order.
//
// Batch and stream panel traffic negotiates its codec: by default the
// client probes the server once (GET /healthz) and moves to the binary
// framing when the server advertises it, falling back to JSON against
// servers that do not — see WireCodec. Either way the decoded
// outcomes are identical.
//
// A Client is safe for concurrent use; it holds no per-request state
// beyond the cached codec probe.
type Client struct {
	base  string
	hc    *http.Client
	codec WireCodec
	// binProbe caches the one-time negotiation probe: 0 unprobed,
	// 1 server advertises binary, -1 JSON only.
	binProbe atomic.Int32
}

// WireCodec selects the encoding of the client's batch and stream
// panel traffic.
type WireCodec int

const (
	// CodecAuto (the default) probes the server once and uses the
	// binary codec when the server advertises it, JSON otherwise.
	CodecAuto WireCodec = iota
	// CodecJSON forces the JSON/NDJSON shapes.
	CodecJSON
	// CodecBinary forces the binary framing without probing (requests
	// against a JSON-only server will be refused with 400).
	CodecBinary
)

// ClientOption customizes a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the transport (timeouts, TLS, proxies,
// or an httptest server's client). Default: http.DefaultClient.
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithWireCodec pins the panel-traffic codec instead of negotiating —
// CodecJSON for maximum compatibility, CodecBinary for benchmarking
// the binary path explicitly.
func WithWireCodec(codec WireCodec) ClientOption {
	return func(c *Client) { c.codec = codec }
}

// NewClient builds a client for the server at baseURL (scheme://host[:port],
// no trailing path).
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL reports the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// remoteError maps an HTTP error response to the package's sentinel
// errors where one exists, so remote and local callers handle
// saturation and shutdown identically:
//
//	429 → ErrFleetSaturated    503 → ErrServerDraining
func remoteError(status int, body []byte) error {
	msg := strings.TrimSpace(string(body))
	switch status {
	case http.StatusTooManyRequests:
		return fmt.Errorf("advdiag: server %s: %w", msg, ErrFleetSaturated)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("advdiag: server %s: %w", msg, ErrServerDraining)
	default:
		return fmt.Errorf("advdiag: server returned %d: %s", status, msg)
	}
}

func (c *Client) post(ctx context.Context, path, contentType string, body io.Reader) (*http.Response, error) {
	return c.postAccept(ctx, path, contentType, "", body)
}

// postAccept is post with an explicit Accept header for the endpoints
// that negotiate their response codec.
func (c *Client) postAccept(ctx context.Context, path, contentType, accept string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	return c.hc.Do(req)
}

// useBinary decides the codec for one batch/stream call. In CodecAuto
// mode the first call probes GET /healthz and caches whether the
// server advertises the binary framing; a probe that fails outright
// (server unreachable) conservatively reports JSON without caching, so
// the next call probes again.
func (c *Client) useBinary(ctx context.Context) bool {
	switch c.codec {
	case CodecJSON:
		return false
	case CodecBinary:
		return true
	}
	if v := c.binProbe.Load(); v != 0 {
		return v > 0
	}
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // probe body is decorative
	resp.Body.Close()
	v := int32(-1)
	if resp.Header.Get("X-Advdiag-Binary") == "1" {
		v = 1
	}
	c.binProbe.Store(v)
	return v > 0
}

// responseIsBinary reports whether the server answered in the binary
// framing (response-side negotiation is by Content-Type, so a client
// that asked for binary still decodes a JSON answer correctly).
func responseIsBinary(resp *http.Response) bool {
	ct := resp.Header.Get("Content-Type")
	return ct == wire.BinaryMediaType || strings.HasPrefix(ct, wire.BinaryMediaType+";")
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

func (c *Client) del(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

// Health checks GET /healthz: nil while the server accepts work.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return remoteError(resp.StatusCode, body)
	}
	return nil
}

// Stats fetches the server's aggregate snapshot: the fleet counters
// plus, when the server runs an attached scheduler, its population-
// campaign stats (the FleetStats fields are promoted, so existing
// callers read them unchanged).
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return ServerStats{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ServerStats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return ServerStats{}, remoteError(resp.StatusCode, body)
	}
	var st ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		return ServerStats{}, fmt.Errorf("advdiag: stats: %w", err)
	}
	return st, nil
}

// Diagnosis fetches GET /v1/diagnosis: the server's current automated
// root-cause verdict. Every call also advances the server-side
// diagnoser by one observation, so a client polling this method is
// what drives rate-anomaly detection (stalls, saturation) — and, with
// auto-quarantine on, what triggers the quarantine itself.
func (c *Client) Diagnosis(ctx context.Context) (Diagnosis, error) {
	resp, err := c.get(ctx, "/v1/diagnosis")
	if err != nil {
		return Diagnosis{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return Diagnosis{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return Diagnosis{}, remoteError(resp.StatusCode, body)
	}
	wd, err := wire.UnmarshalDiagnosis(body)
	if err != nil {
		return Diagnosis{}, fmt.Errorf("advdiag: diagnosis: %w", err)
	}
	return diagnosisFromWire(wd), nil
}

// AddShard grows the served fleet by one shard measuring the given
// targets, at run time and under live load (POST /v1/shards). The
// server designs the platform with the fleet's own seed, so on an
// identical-target fleet the new shard produces bit-identical results
// to its siblings. Returns the new shard's index.
func (c *Client) AddShard(ctx context.Context, targets []string) (int, error) {
	data, err := wire.MarshalShardRequest(wire.ShardRequest{Targets: targets})
	if err != nil {
		return 0, err
	}
	resp, err := c.post(ctx, "/v1/shards", "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, remoteError(resp.StatusCode, body)
	}
	wr, err := wire.UnmarshalShardResponse(body)
	if err != nil {
		return 0, err
	}
	return wr.Shard, nil
}

// RemoveShard retires one shard of the served fleet at run time
// (DELETE /v1/shards/{id}). Success means the shard left routing and
// its backlog was rerouted to siblings with zero panels lost.
func (c *Client) RemoveShard(ctx context.Context, shard int) error {
	resp, err := c.del(ctx, fmt.Sprintf("/v1/shards/%d", shard))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return remoteError(resp.StatusCode, body)
	}
	return nil
}

// RunPanel submits one sample and waits for its outcome. A saturated
// fleet surfaces as ErrFleetSaturated (check with errors.Is and back
// off); a draining server as ErrServerDraining. A per-sample
// measurement failure comes back inside the outcome's Err, exactly as
// it would from a local Lab.
func (c *Client) RunPanel(ctx context.Context, s Sample) (PanelOutcome, error) {
	data, err := wire.MarshalSample(toWireSample(s))
	if err != nil {
		return PanelOutcome{}, err
	}
	resp, err := c.post(ctx, "/v1/panels", "application/json", bytes.NewReader(data))
	if err != nil {
		return PanelOutcome{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return PanelOutcome{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return PanelOutcome{}, remoteError(resp.StatusCode, body)
	}
	wo, err := wire.UnmarshalOutcome(body)
	if err != nil {
		return PanelOutcome{}, err
	}
	return outcomeFromWire(wo), nil
}

// RunPanels submits a batch and returns one outcome per sample in
// request order — the remote counterpart of Lab.RunPanels. Per-sample
// failures (including samples shed by backpressure mid-batch) land in
// the outcome's Err; a batch rejected wholesale maps to the sentinel
// errors like RunPanel. The codec follows the client's WireCodec
// setting (binary frames when negotiated, JSON otherwise); the decoded
// outcomes are identical either way.
func (c *Client) RunPanels(ctx context.Context, samples []Sample) ([]PanelOutcome, error) {
	contentType, accept := "application/json", ""
	var data []byte
	if c.useBinary(ctx) {
		contentType, accept = wire.BinaryMediaType, wire.BinaryMediaType
		for i, s := range samples {
			frame, err := wire.MarshalSampleBinary(toWireSample(s))
			if err != nil {
				return nil, fmt.Errorf("advdiag: batch sample %d: %w", i, err)
			}
			data = append(data, frame...)
		}
	} else {
		elems := make([]json.RawMessage, len(samples))
		for i, s := range samples {
			// Per-element MarshalSample keeps client-side validation
			// consistent with RunPanel/StreamPanels: a bad sample errors
			// here with the wire message instead of travelling to the
			// server (or failing opaquely inside json.Marshal on NaN).
			e, err := wire.MarshalSample(toWireSample(s))
			if err != nil {
				return nil, fmt.Errorf("advdiag: batch sample %d: %w", i, err)
			}
			elems[i] = e
		}
		var err error
		if data, err = json.Marshal(elems); err != nil {
			return nil, err
		}
	}
	resp, err := c.postAccept(ctx, "/v1/panels/batch", contentType, accept, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError(resp.StatusCode, body)
	}
	var wos []wire.Outcome
	if responseIsBinary(resp) {
		br := bytes.NewReader(body)
		for {
			frame, err := wire.ReadBinaryFrame(br, maxOutcomeBytes)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("advdiag: batch response: %w", err)
			}
			wo, err := wire.UnmarshalOutcomeBinary(frame)
			if err != nil {
				return nil, err
			}
			wos = append(wos, wo)
		}
	} else {
		if err := json.Unmarshal(body, &wos); err != nil {
			return nil, fmt.Errorf("advdiag: batch response: %w", err)
		}
		for i := range wos {
			if err := wos[i].Validate(); err != nil {
				return nil, err
			}
		}
	}
	if len(wos) != len(samples) {
		return nil, fmt.Errorf("advdiag: batch response has %d outcomes for %d samples", len(wos), len(samples))
	}
	out := make([]PanelOutcome, len(wos))
	for i, wo := range wos {
		out[i] = outcomeFromWire(wo)
	}
	return out, nil
}

// StreamPanels submits samples over the NDJSON streaming endpoint and
// invokes fn for each outcome as the server reports it, in completion
// order. seq is the outcome's position in the submitted slice. fn runs
// on the caller's goroutine; StreamPanels returns after the server
// closes the stream (every sample answered) or the context ends.
func (c *Client) StreamPanels(ctx context.Context, samples []Sample, fn func(seq int, o PanelOutcome)) error {
	binReq := c.useBinary(ctx)
	contentType, accept := "application/x-ndjson", ""
	if binReq {
		contentType, accept = wire.BinaryMediaType, wire.BinaryMediaType
	}
	lines := make([][]byte, len(samples))
	for i, s := range samples {
		var data []byte
		var err error
		if binReq {
			data, err = wire.MarshalSampleBinary(toWireSample(s))
		} else {
			if data, err = wire.MarshalSample(toWireSample(s)); err == nil {
				data = append(data, '\n')
			}
		}
		if err != nil {
			return err
		}
		lines[i] = data
	}
	// Stream the body through a pipe instead of buffering it: the
	// server answers in completion order while the request is still
	// being written, so a client that finishes uploading before reading
	// deadlocks against the server's bounded outcome queue once the
	// cohort outgrows the transport buffers. Frames are coalesced
	// through a bufio.Writer so the wire sees few large chunks instead
	// of one pipe rendezvous (and one TCP segment) per sample — the
	// writer goroutine still overlaps the response reads below, so the
	// backpressure story is unchanged.
	pr, pw := io.Pipe()
	go func() {
		bw := bufio.NewWriterSize(pw, 32*1024)
		for _, line := range lines {
			if _, err := bw.Write(line); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			pw.CloseWithError(err)
			return
		}
		pw.Close()
	}()
	resp, err := c.postAccept(ctx, "/v1/panels/stream", contentType, accept, pr)
	if err != nil {
		pr.Close() //nolint:errcheck // unblocks the writer goroutine
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return remoteError(resp.StatusCode, body)
	}
	n := 0
	if responseIsBinary(resp) {
		br := bufio.NewReaderSize(resp.Body, 64*1024)
		for {
			frame, err := wire.ReadBinaryFrame(br, maxOutcomeBytes)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			wo, err := wire.UnmarshalOutcomeBinary(frame)
			if err != nil {
				return err
			}
			fn(wo.Seq, outcomeFromWire(wo))
			n++
		}
	} else {
		sc := bufio.NewScanner(resp.Body)
		// An outcome line is strictly larger than the sample it answers
		// (it echoes the ID and adds the result), so the response buffer
		// must be sized above the request-line bound.
		sc.Buffer(make([]byte, 64*1024), maxOutcomeBytes)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			wo, err := wire.UnmarshalOutcome(line)
			if err != nil {
				return err
			}
			fn(wo.Seq, outcomeFromWire(wo))
			n++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if n != len(samples) {
		return fmt.Errorf("advdiag: stream answered %d of %d samples", n, len(samples))
	}
	return nil
}

// ErrMonitorPending is the sentinel GetMonitor returns while accepted
// acquisitions for the campaign are still in flight and none has
// completed yet (HTTP 202) — poll again shortly.
var ErrMonitorPending = errors.New("advdiag: monitor outcome pending")

// RunMonitor submits one monitoring acquisition and waits for its
// outcome — the remote twin of Lab.RunMonitor. Saturation surfaces as
// ErrFleetSaturated, a draining server as ErrServerDraining; a
// measurement failure comes back inside the outcome's Err. Because the
// request carries its own noise seed, the returned trace is
// byte-identical to a local run of the same request (the wire format
// is lossless for float64) — MonitorResult.Fingerprint proves it.
func (c *Client) RunMonitor(ctx context.Context, req MonitorRequest) (MonitorOutcome, error) {
	data, err := wire.MarshalMonitorRequest(toWireMonitorRequest(req))
	if err != nil {
		return MonitorOutcome{}, err
	}
	resp, err := c.post(ctx, "/v1/monitors", "application/json", bytes.NewReader(data))
	if err != nil {
		return MonitorOutcome{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return MonitorOutcome{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MonitorOutcome{}, remoteError(resp.StatusCode, body)
	}
	wo, err := wire.UnmarshalMonitorOutcome(body)
	if err != nil {
		return MonitorOutcome{}, err
	}
	return monitorOutcomeFromWire(wo), nil
}

// GetMonitor fetches the latest completed outcome stored for a
// campaign ID. ErrMonitorPending means acquisitions are in flight but
// none has completed; any other non-200 (including an unknown or
// evicted ID) is an error.
func (c *Client) GetMonitor(ctx context.Context, id string) (MonitorOutcome, error) {
	resp, err := c.get(ctx, "/v1/monitors/"+id)
	if err != nil {
		return MonitorOutcome{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return MonitorOutcome{}, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusAccepted:
		return MonitorOutcome{}, fmt.Errorf("advdiag: %s: %w", strings.TrimSpace(string(body)), ErrMonitorPending)
	default:
		return MonitorOutcome{}, remoteError(resp.StatusCode, body)
	}
	wo, err := wire.UnmarshalMonitorOutcome(body)
	if err != nil {
		return MonitorOutcome{}, err
	}
	return monitorOutcomeFromWire(wo), nil
}

// MonitorBackend adapts the client into the MonitorScheduler's backend
// interface, so one scheduler drives a remote labserve exactly as it
// drives an in-process Fleet. Each submission runs as its own
// goroutine POSTing /v1/monitors (the endpoint is synchronous); a 429
// is retried with backoff until the server accepts — the remote twin
// of Fleet.SubmitMonitor's blocking backpressure — and any other
// transport or server error is delivered as a failed outcome, never
// lost. The context cancels in-flight requests.
//
// Both SubmitMonitor and TrySubmitMonitor accept immediately (the
// queueing happens server-side), so a scheduler over this backend
// never counts sheds locally; the server's rejected counter holds
// them.
func (c *Client) MonitorBackend(ctx context.Context) MonitorBackend {
	return &clientMonitorBackend{c: c, ctx: ctx, results: make(chan MonitorOutcome, 256)}
}

type clientMonitorBackend struct {
	c       *Client
	ctx     context.Context
	results chan MonitorOutcome
}

func (b *clientMonitorBackend) SubmitMonitor(req MonitorRequest) error {
	go func() {
		backoff := 5 * time.Millisecond
		for {
			out, err := b.c.RunMonitor(b.ctx, req)
			if errors.Is(err, ErrFleetSaturated) {
				select {
				case <-time.After(backoff):
				case <-b.ctx.Done():
					err = b.ctx.Err()
					b.results <- MonitorOutcome{Index: -1, ID: req.ID, Tick: req.Tick, Shard: -1, Err: err}
					return
				}
				if backoff *= 2; backoff > 200*time.Millisecond {
					backoff = 200 * time.Millisecond
				}
				continue
			}
			if err != nil {
				out = MonitorOutcome{Index: -1, ID: req.ID, Tick: req.Tick, Shard: -1, Err: err}
			}
			b.results <- out
			return
		}
	}()
	return nil
}

func (b *clientMonitorBackend) TrySubmitMonitor(req MonitorRequest) error {
	return b.SubmitMonitor(req)
}

func (b *clientMonitorBackend) MonitorResults() <-chan MonitorOutcome { return b.results }

// --- wire bridge -----------------------------------------------------
//
// The conversions between the root types and their wire twins. The
// structs are field-for-field identical, so these cannot change any
// bit the PanelResult fingerprint hashes (pinned by
// TestWireBridgeFingerprint).

func toWireSample(s Sample) wire.Sample {
	return wire.Sample{Schema: wire.SchemaVersion, ID: s.ID, Concentrations: s.Concentrations}
}

func sampleFromWire(ws wire.Sample) Sample {
	return Sample{ID: ws.ID, Concentrations: ws.Concentrations}
}

func toWireResult(pr PanelResult) wire.PanelResult {
	out := wire.PanelResult{Schema: wire.SchemaVersion, PanelSeconds: pr.PanelSeconds}
	if len(pr.Readings) > 0 {
		out.Readings = make([]wire.Reading, len(pr.Readings))
		for i, r := range pr.Readings {
			out.Readings[i] = wire.Reading(r)
		}
	}
	return out
}

func resultFromWire(wr wire.PanelResult) PanelResult {
	out := PanelResult{PanelSeconds: wr.PanelSeconds}
	if len(wr.Readings) > 0 {
		out.Readings = make([]TargetReading, len(wr.Readings))
		for i, r := range wr.Readings {
			out.Readings[i] = TargetReading(r)
		}
	}
	return out
}

// toWireOutcome renders a service outcome for the wire; seq is the
// sample's position within the request being answered.
func toWireOutcome(seq int, o PanelOutcome) wire.Outcome {
	wo := wire.Outcome{
		Schema:                wire.SchemaVersion,
		Seq:                   seq,
		Index:                 o.Index,
		ID:                    o.ID,
		Shard:                 o.Shard,
		ScheduledStartSeconds: o.ScheduledStartSeconds,
		WallSeconds:           o.WallSeconds,
	}
	if o.Err != nil {
		wo.Error = o.Err.Error()
	} else {
		res := toWireResult(o.Result)
		wo.Result = &res
	}
	return wo
}

// errorOutcome is the wire form of a sample that never entered the
// fleet (parse failure, backpressure shed, draining server).
func errorOutcome(seq int, id string, err error) wire.Outcome {
	return wire.Outcome{Schema: wire.SchemaVersion, Seq: seq, Index: -1, ID: id, Shard: -1, Error: err.Error()}
}

func outcomeFromWire(wo wire.Outcome) PanelOutcome {
	out := PanelOutcome{
		Index:                 wo.Index,
		ID:                    wo.ID,
		Shard:                 wo.Shard,
		ScheduledStartSeconds: wo.ScheduledStartSeconds,
		WallSeconds:           wo.WallSeconds,
	}
	if wo.Error != "" {
		out.Err = errors.New(wo.Error)
	} else if wo.Result != nil {
		out.Result = resultFromWire(*wo.Result)
	}
	return out
}

func toWireMonitorRequest(r MonitorRequest) wire.MonitorRequest {
	out := wire.MonitorRequest{
		Schema:          wire.SchemaVersion,
		ID:              r.ID,
		Tick:            r.Tick,
		Target:          r.Target,
		ConcentrationMM: r.ConcentrationMM,
		DurationSeconds: r.DurationSeconds,
		BaselineSeconds: r.BaselineSeconds,
		AgeHours:        r.AgeHours,
		Polymer:         r.Polymer,
		Seed:            r.Seed,
	}
	if len(r.Injections) > 0 {
		out.Injections = make([]wire.Injection, len(r.Injections))
		for i, inj := range r.Injections {
			out.Injections[i] = wire.Injection(inj)
		}
	}
	return out
}

func monitorRequestFromWire(wr wire.MonitorRequest) MonitorRequest {
	out := MonitorRequest{
		ID:              wr.ID,
		Tick:            wr.Tick,
		Target:          wr.Target,
		ConcentrationMM: wr.ConcentrationMM,
		DurationSeconds: wr.DurationSeconds,
		BaselineSeconds: wr.BaselineSeconds,
		AgeHours:        wr.AgeHours,
		Polymer:         wr.Polymer,
		Seed:            wr.Seed,
	}
	if len(wr.Injections) > 0 {
		out.Injections = make([]InjectionEvent, len(wr.Injections))
		for i, inj := range wr.Injections {
			out.Injections[i] = InjectionEvent(inj)
		}
	}
	return out
}

func toWireMonitorResult(mr MonitorResult) wire.MonitorResult {
	return wire.MonitorResult{
		Schema:            wire.SchemaVersion,
		TimesSeconds:      mr.TimesSeconds,
		CurrentsMicroAmps: mr.CurrentsMicroAmps,
		T90Seconds:        mr.T90Seconds,
		TransientSeconds:  mr.TransientSeconds,
		BaselineMicroAmps: mr.BaselineMicroAmps,
		SteadyMicroAmps:   mr.SteadyMicroAmps,
		Settled:           mr.Settled,
		StepMicroAmps:     mr.StepMicroAmps,
		EstimatedMM:       mr.EstimatedMM,
	}
}

func monitorResultFromWire(wr wire.MonitorResult) MonitorResult {
	return MonitorResult{
		TimesSeconds:      wr.TimesSeconds,
		CurrentsMicroAmps: wr.CurrentsMicroAmps,
		T90Seconds:        wr.T90Seconds,
		TransientSeconds:  wr.TransientSeconds,
		BaselineMicroAmps: wr.BaselineMicroAmps,
		SteadyMicroAmps:   wr.SteadyMicroAmps,
		Settled:           wr.Settled,
		StepMicroAmps:     wr.StepMicroAmps,
		EstimatedMM:       wr.EstimatedMM,
	}
}

func toWireMonitorOutcome(o MonitorOutcome) wire.MonitorOutcome {
	wo := wire.MonitorOutcome{
		Schema:      wire.SchemaVersion,
		Index:       o.Index,
		ID:          o.ID,
		Tick:        o.Tick,
		Shard:       o.Shard,
		WallSeconds: o.WallSeconds,
	}
	if o.Err != nil {
		wo.Error = o.Err.Error()
	} else {
		res := toWireMonitorResult(o.Result)
		wo.Result = &res
	}
	return wo
}

func monitorOutcomeFromWire(wo wire.MonitorOutcome) MonitorOutcome {
	out := MonitorOutcome{
		Index:       wo.Index,
		ID:          wo.ID,
		Tick:        wo.Tick,
		Shard:       wo.Shard,
		WallSeconds: wo.WallSeconds,
	}
	if wo.Error != "" {
		out.Err = errors.New(wo.Error)
	} else if wo.Result != nil {
		out.Result = monitorResultFromWire(*wo.Result)
	}
	return out
}
