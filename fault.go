package advdiag

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"time"

	"advdiag/internal/mathx"
)

// FaultKind enumerates the injectable fault classes a FaultPlan can arm
// on a Fleet. Every fault is deterministic — seeded where it draws
// randomness, replayable by construction — which is what makes the
// diagnosis layer provable in ordinary tests instead of flaky chaos
// runs.
type FaultKind int

const (
	// FaultFouledElectrode perturbs the targeted shard's analog
	// acquisition chain the way a film degraded by adsorbed matrix
	// proteins would: sensitivity drops and the signal turns noisy, so
	// the shard keeps serving panels whose concentration estimates have
	// silently drifted. The perturbation is seeded per (fault seed,
	// sample seed, target) — see internal/runtime.Fouling.
	FaultFouledElectrode FaultKind = iota + 1
	// FaultDeadShard hangs the shard's workers: accepted jobs park
	// instead of running, the bounded queue backs up, and nothing
	// completes — a crashed or wedged instrument. The held work is not
	// lost: Quarantine reroutes it to siblings (same seed indices, so
	// fingerprints are unchanged) and ClearFaults releases the workers
	// to run it in place.
	FaultDeadShard
	// FaultSlowShard delays every job on the shard by Delay before it
	// runs — a degraded instrument that still answers. Results are
	// unchanged (the delay never touches the measurement), only timing.
	FaultSlowShard
	// FaultFlakyShard makes the shard intermittently fail: work arriving
	// during a down slot of a seeded duty cycle stalls (held, not lost —
	// exactly like a dead shard's backlog) while up-slot work runs
	// normally. Severity is the down fraction of each Period-slot cycle
	// and Seed phases the cycle, so the failure pattern replays bit for
	// bit. This is the fault class circuit breakers exist for: health
	// probes draw from the same slot sequence, so a flaky shard fails
	// probes intermittently too, exercising the open/half-open dance.
	FaultFlakyShard
)

// String names the kind for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultFouledElectrode:
		return "fouled_electrode"
	case FaultDeadShard:
		return "dead_shard"
	case FaultSlowShard:
		return "slow_shard"
	case FaultFlakyShard:
		return "flaky_shard"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one injectable failure, aimed at one shard. Faults on the
// same shard compose (a shard can be fouled and slow at once); a fault
// of the same kind injected again replaces the earlier one.
type Fault struct {
	// Kind selects the failure class.
	Kind FaultKind
	// Shard is the target shard index.
	Shard int
	// Target restricts a FaultFouledElectrode to the electrode(s)
	// measuring one species; empty fouls every electrode on the shard.
	Target string
	// Severity scales a FaultFouledElectrode in (0,1]: the expected
	// sensitivity-loss fraction and the relative noise amplitude. For a
	// FaultFlakyShard it is the duty cycle's down fraction in (0,1).
	Severity float64
	// Delay is a FaultSlowShard's per-job stall.
	Delay time.Duration
	// Period is a FaultFlakyShard's duty-cycle length in slots (jobs +
	// probes); each cycle is round(Severity×Period) down slots followed
	// by up slots, phase-shifted by Seed. Minimum 2, so every cycle has
	// at least one slot of each kind.
	Period int
	// Seed is the fault's own deterministic stream; two injections with
	// equal seeds perturb identically.
	Seed uint64
}

// Validate checks the fault against the model and a fleet of the given
// shard count.
func (ft Fault) Validate(shards int) error {
	if ft.Shard < 0 || ft.Shard >= shards {
		return fmt.Errorf("advdiag: fault targets shard %d outside [0,%d)", ft.Shard, shards)
	}
	switch ft.Kind {
	case FaultFouledElectrode:
		if math.IsNaN(ft.Severity) || math.IsInf(ft.Severity, 0) || ft.Severity <= 0 || ft.Severity > 1 {
			return fmt.Errorf("advdiag: fouling severity %g outside (0,1]", ft.Severity)
		}
	case FaultDeadShard:
	case FaultSlowShard:
		if ft.Delay <= 0 {
			return fmt.Errorf("advdiag: slow-shard fault needs a positive delay, got %v", ft.Delay)
		}
	case FaultFlakyShard:
		if math.IsNaN(ft.Severity) || ft.Severity <= 0 || ft.Severity >= 1 {
			return fmt.Errorf("advdiag: flaky duty cycle %g outside (0,1)", ft.Severity)
		}
		if ft.Period < 2 {
			return fmt.Errorf("advdiag: flaky period %d below the 2-slot minimum", ft.Period)
		}
	default:
		return fmt.Errorf("advdiag: unknown fault kind %d", int(ft.Kind))
	}
	return nil
}

// FaultPlan is a replayable set of faults: inject the same plan into
// two fleets with the same traffic and the failures — and therefore the
// diagnoses — are identical. Arm it at construction with
// WithFleetFaultPlan or at run time with Fleet.InjectFaults; a fleet
// with no plan pays one atomic nil-check per job.
type FaultPlan struct {
	Faults []Fault
}

// Validate checks every fault in the plan against a fleet of the given
// shard count.
func (p FaultPlan) Validate(shards int) error {
	for i, ft := range p.Faults {
		if err := ft.Validate(shards); err != nil {
			return fmt.Errorf("advdiag: fault %d: %w", i, err)
		}
	}
	return nil
}

// MalformedClient is the wire-level fault injector: a deliberately
// broken client that sends deterministic corrupt payloads at a Server,
// so wire-error diagnosis is provable in CI without hand-rolled HTTP in
// every test. The i-th payload is drawn from the seeded stream —
// truncated JSON, unknown fields, schema-version skew, non-finite or
// negative concentrations, unknown species — and the same seed replays
// the same corruption sequence bit for bit.
type MalformedClient struct {
	// BaseURL addresses the server (scheme://host[:port], no trailing
	// path).
	BaseURL string
	// Seed fixes the corruption sequence.
	Seed uint64
	// HTTPClient substitutes the transport (default
	// http.DefaultClient).
	HTTPClient *http.Client
}

// malformedPayloads are the corruption shapes Send cycles through; each
// must be refused by the wire layer's strict decoding with HTTP 400.
var malformedPayloads = []string{
	`{"schema":1,"concentrations":`,                       // truncated JSON
	`{"schema":1,"surprise":true,"concentrations":{}}`,    // unknown field
	`{"schema":99,"concentrations":{"glucose":1}}`,        // version skew
	`{"schema":1,"concentrations":{"glucose":-3}}`,        // negative concentration
	`{"schema":1,"concentrations":{"unobtainium":1}}`,     // unregistered species
	`{"schema":1,"concentrations":{"glucose":1e309}}`,     // overflows to +Inf
	`{"schema":1,"concentrations":{"glucose":1}}trailing`, // trailing garbage
	`not json at all`, // no JSON framing
}

// Payload returns the i-th corrupt request body of the seeded sequence.
func (mc *MalformedClient) Payload(i int) []byte {
	rng := mathx.NewRNG(mathx.Mix64(mc.Seed) + uint64(i))
	return []byte(malformedPayloads[rng.Uint64()%uint64(len(malformedPayloads))])
}

// Send posts n corrupt payloads to POST /v1/panels and reports how many
// the server refused with HTTP 400 — a correct server refuses all of
// them at the wire boundary, before anything reaches the fleet.
func (mc *MalformedClient) Send(ctx context.Context, n int) (refused int, err error) {
	hc := mc.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	base := strings.TrimRight(mc.BaseURL, "/")
	for i := 0; i < n; i++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/panels", bytes.NewReader(mc.Payload(i)))
		if err != nil {
			return refused, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hc.Do(req)
		if err != nil {
			return refused, err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // body content is irrelevant
		resp.Body.Close()              //nolint:errcheck // read-only body
		if resp.StatusCode == http.StatusBadRequest {
			refused++
		}
	}
	return refused, nil
}
