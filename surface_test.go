package advdiag_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"advdiag"
)

func TestFaultKindString(t *testing.T) {
	cases := map[advdiag.FaultKind]string{
		advdiag.FaultFouledElectrode: "fouled_electrode",
		advdiag.FaultDeadShard:       "dead_shard",
		advdiag.FaultSlowShard:       "slow_shard",
		advdiag.FaultKind(99):        "FaultKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestFaultValidate(t *testing.T) {
	bad := []advdiag.Fault{
		{Kind: advdiag.FaultDeadShard, Shard: -1},
		{Kind: advdiag.FaultDeadShard, Shard: 2},
		{Kind: advdiag.FaultFouledElectrode, Shard: 0, Severity: 0},
		{Kind: advdiag.FaultFouledElectrode, Shard: 0, Severity: 1.5},
		{Kind: advdiag.FaultFouledElectrode, Shard: 0, Severity: math.NaN()},
		{Kind: advdiag.FaultFouledElectrode, Shard: 0, Severity: math.Inf(1)},
		{Kind: advdiag.FaultSlowShard, Shard: 0},
		{Kind: advdiag.FaultKind(42), Shard: 0},
	}
	for _, ft := range bad {
		if err := ft.Validate(2); err == nil {
			t.Errorf("fault %+v accepted", ft)
		}
	}
	good := []advdiag.Fault{
		{Kind: advdiag.FaultFouledElectrode, Shard: 0, Target: "glucose", Severity: 1},
		{Kind: advdiag.FaultDeadShard, Shard: 1},
		{Kind: advdiag.FaultSlowShard, Shard: 1, Delay: time.Millisecond},
	}
	for _, ft := range good {
		if err := ft.Validate(2); err != nil {
			t.Errorf("fault %+v rejected: %v", ft, err)
		}
	}
	plan := advdiag.FaultPlan{Faults: []advdiag.Fault{good[0], {Kind: advdiag.FaultSlowShard, Shard: 0}}}
	if err := plan.Validate(2); err == nil || !strings.Contains(err.Error(), "fault 1") {
		t.Fatalf("plan validation did not name the offending fault: %v", err)
	}
	if err := (advdiag.FaultPlan{Faults: good}).Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedClientPayloadDeterminism(t *testing.T) {
	a := advdiag.MalformedClient{Seed: 5}
	b := advdiag.MalformedClient{Seed: 5}
	for i := 0; i < 8; i++ {
		pa, pb := a.Payload(i), b.Payload(i)
		if len(pa) == 0 || !bytes.Equal(pa, pb) {
			t.Fatalf("payload %d not deterministic: %q vs %q", i, pa, pb)
		}
	}
}

// TestInjectFaultLive: runtime injection (as opposed to a construction
// plan) arms faults on a serving fleet — a slow shard delays but does
// not corrupt, composed faults coexist, and a closed fleet refuses.
func TestInjectFaultLive(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2), advdiag.WithFleetWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultKind(9), Shard: 0}); err == nil {
		t.Fatal("unknown fault kind injected")
	}
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultSlowShard, Shard: 0, Delay: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultFouledElectrode, Shard: 0, Target: "glucose", Severity: 0.9, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	outs := fleet.RunPanels(mixedCohort(8))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("sample %d under slow+fouled shard: %v", i, o.Err)
		}
	}
	fleet.ClearFaults()
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fleet.InjectFault(advdiag.Fault{Kind: advdiag.FaultDeadShard, Shard: 0}); !errors.Is(err, advdiag.ErrFleetClosed) {
		t.Fatalf("closed fleet accepted an injection: %v", err)
	}
}

// TestFleetSeedOption: WithFleetSeed overrides the platform seed, and
// equal seeds reproduce equal fingerprints.
func TestFleetSeedOption(t *testing.T) {
	samples := mixedCohort(6)
	run := func(seed uint64) []uint64 {
		fleet, err := advdiag.NewFleet(fleetPlatforms(t, 1), advdiag.WithFleetSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close() //nolint:errcheck // drained by RunPanels
		return fingerprints(t, fleet.RunPanels(samples))
	}
	a, b, c := run(123), run(123), run(124)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d: same fleet seed diverged", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different fleet seeds produced identical panels")
	}

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Shards() != 3 {
		t.Fatalf("Shards() = %d", fleet.Shards())
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLabWorkersAccessor(t *testing.T) {
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if lab.Workers() != 3 {
		t.Fatalf("Workers() = %d", lab.Workers())
	}
}

// TestDiagnoserOptionClamps: out-of-range tuning clamps to sane
// minima instead of disabling the detector.
func TestDiagnoserOptionClamps(t *testing.T) {
	d := advdiag.NewDiagnoser(nil,
		advdiag.WithDiagWindow(1),
		advdiag.WithDiagMinEstimates(0),
		advdiag.WithDiagFoulingThreshold(0.3),
		advdiag.WithDiagStallConfirmations(0),
		advdiag.WithDiagAutoQuarantine(false))
	// The clamped diagnoser must still function end to end.
	d.Observe(advdiag.ServerStats{})
	d.Observe(advdiag.ServerStats{})
	if got := d.Diagnose(); got.Status != advdiag.StatusHealthy {
		t.Fatalf("clamped diagnoser: %+v", got)
	}

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close() //nolint:errcheck // nothing submitted
	d.Bind(fleet)
	if got := d.Diagnose(); len(got.QuarantinedShards) != 0 {
		t.Fatalf("bound diagnoser invented a quarantine: %+v", got)
	}
}

func TestDiagnosisString(t *testing.T) {
	d := advdiag.Diagnosis{
		Status:            advdiag.StatusDegraded,
		Snapshots:         4,
		QuarantinedShards: []int{1},
		Findings: []advdiag.Finding{
			{Class: advdiag.ClassSensorFouling, Shard: 1, Target: "glucose", Severity: 0.6,
				Quarantined: true, Evidence: "recovery 0.55 vs 0.98"},
			{Class: advdiag.ClassQueueSaturation, Shard: -1, Severity: 0.2},
		},
	}
	s := d.String()
	for _, want := range []string{"degraded", "shard 1/glucose", "fleet", "queue_saturation"} {
		if !strings.Contains(s, want) {
			t.Fatalf("diagnosis report %q lacks %q", s, want)
		}
	}
}

func TestServerAccessorsAndSchedulerOption(t *testing.T) {
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p})
	if err != nil {
		t.Fatal(err)
	}
	refFleet, err := advdiag.NewFleet([]*advdiag.Platform{p})
	if err != nil {
		t.Fatal(err)
	}
	defer refFleet.Close() //nolint:errcheck // scheduler backend only
	ms, err := advdiag.NewMonitorScheduler(refFleet)
	if err != nil {
		t.Fatal(err)
	}
	d := advdiag.NewDiagnoser(fleet)
	srv, err := advdiag.NewServer(fleet, advdiag.WithServerScheduler(ms), advdiag.WithServerDiagnoser(d))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck // nothing submitted
	if srv.Diagnoser() != d {
		t.Fatal("Diagnoser() does not return the attached diagnoser")
	}
	if srv.Stats().Scheduler == nil {
		t.Fatal("scheduler stats not merged into the snapshot")
	}
	if s := ms.Stats().String(); !strings.Contains(s, "scheduler:") {
		t.Fatalf("scheduler stats render %q", s)
	}
}

func TestPlatformSurface(t *testing.T) {
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	mt := p.MonitorTargets()
	if len(mt) == 0 || len(mt) >= len(p.Targets()) {
		t.Fatalf("monitorable %v of %v: the CV target must not qualify", mt, p.Targets())
	}
	if cs := p.CostSummary(); !strings.Contains(cs, "panel") {
		t.Fatalf("cost summary %q", cs)
	}
	res, err := p.RunPanel(map[string]float64{"glucose": 1, "benzphetamine": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	// benzphetamine is a CV assay, so its reading renders a peak
	// potential; glucose (CA) must not.
	if !strings.Contains(s, "Panel (") || !strings.Contains(s, "glucose") ||
		!strings.Contains(s, "benzphetamine") || !strings.Contains(s, "peak") {
		t.Fatalf("panel report %q missing expected sections", s)
	}
}

func TestDesignPlatformExploreOptions(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"},
		advdiag.WithPlatformSeed(13),
		advdiag.WithSamplePeriod(600),
		advdiag.WithExploreWorkers(2),
		advdiag.WithExploreBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Targets(); len(got) != 1 || got[0] != "glucose" {
		t.Fatalf("targets %v", got)
	}
}

func TestSensorOptionsAndFOMString(t *testing.T) {
	s, err := advdiag.NewSensor("glucose", advdiag.WithNanostructuredElectrode(), advdiag.WithChopper())
	if err != nil {
		t.Fatal(err)
	}
	i, err := s.MeasureSteadyState(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if i <= 0 {
		t.Fatalf("steady-state current %g µA", i)
	}
	// The CV quantification path: a drug target is served by cyclic
	// voltammetry, where the peak current comes from template
	// decomposition instead of a settled level.
	cv, err := advdiag.NewSensor("benzphetamine")
	if err != nil {
		t.Fatal(err)
	}
	ic, err := cv.MeasureSteadyState(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ic == 0 {
		t.Fatal("CV peak current is zero")
	}
	rep := advdiag.FOMReport{Target: "glucose", Probe: "GOx", SensitivityPaper: 1.1,
		LODMicroMolar: 4, LinearLoMM: 0.1, LinearHiMM: 10, R2: 0.999}
	if rs := rep.String(); !strings.Contains(rs, "glucose") || !strings.Contains(rs, "LOD") {
		t.Fatalf("FOM row %q", rs)
	}
}

// TestClientErrorSurfaces: every client method must surface transport-
// and decode-level failures instead of fabricating results.
func TestClientErrorSurfaces(t *testing.T) {
	ctx := context.Background()
	sample := advdiag.Sample{ID: "s", Concentrations: map[string]float64{"glucose": 1}}
	mreq := advdiag.MonitorRequest{ID: "m", Target: "glucose", ConcentrationMM: 1}

	check := func(t *testing.T, c *advdiag.Client) {
		t.Helper()
		if err := c.Health(ctx); err == nil {
			t.Error("Health reported healthy")
		}
		if _, err := c.Stats(ctx); err == nil {
			t.Error("Stats returned a snapshot")
		}
		if _, err := c.Diagnosis(ctx); err == nil {
			t.Error("Diagnosis returned a verdict")
		}
		if _, err := c.RunPanel(ctx, sample); err == nil {
			t.Error("RunPanel returned an outcome")
		}
		if _, err := c.RunPanels(ctx, []advdiag.Sample{sample}); err == nil {
			t.Error("RunPanels returned outcomes")
		}
		if err := c.StreamPanels(ctx, []advdiag.Sample{sample}, func(int, advdiag.PanelOutcome) {}); err == nil {
			t.Error("StreamPanels streamed")
		}
		if _, err := c.RunMonitor(ctx, mreq); err == nil {
			t.Error("RunMonitor returned an outcome")
		}
		if _, err := c.GetMonitor(ctx, "m"); err == nil {
			t.Error("GetMonitor returned an outcome")
		}
	}

	t.Run("http 500", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		defer ts.Close()
		check(t, advdiag.NewClient(ts.URL))
	})
	t.Run("garbage 200", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Write([]byte("{not json")) //nolint:errcheck // test stub
		}))
		defer ts.Close()
		c := advdiag.NewClient(ts.URL)
		if _, err := c.Stats(ctx); err == nil {
			t.Error("Stats decoded garbage")
		}
		if _, err := c.Diagnosis(ctx); err == nil {
			t.Error("Diagnosis decoded garbage")
		}
		if _, err := c.RunPanel(ctx, sample); err == nil {
			t.Error("RunPanel decoded garbage")
		}
		if _, err := c.GetMonitor(ctx, "m"); err == nil {
			t.Error("GetMonitor decoded garbage")
		}
	})
	t.Run("unreachable", func(t *testing.T) {
		check(t, advdiag.NewClient("http://127.0.0.1:1"))
	})
}

// TestClientMonitorBackendRetry: the scheduler-facing monitor backend
// must absorb transient saturation (429) with backoff and retry, and
// surface a hard failure as an errored outcome carrying the campaign
// ID and tick — never as a lost acquisition.
func TestClientMonitorBackendRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1, 2:
			http.Error(w, `{"error":"fleet saturated"}`, http.StatusTooManyRequests)
		default:
			http.Error(w, `{"error":"instrument fire"}`, http.StatusInternalServerError)
		}
	}))
	defer ts.Close()
	b := advdiag.NewClient(ts.URL).MonitorBackend(context.Background())
	req := advdiag.MonitorRequest{ID: "m-retry", Tick: 3, Target: "glucose", ConcentrationMM: 1}
	if err := b.SubmitMonitor(req); err != nil {
		t.Fatal(err)
	}
	o := <-b.MonitorResults()
	if o.Err == nil || o.ID != "m-retry" || o.Tick != 3 || o.Shard != -1 {
		t.Fatalf("outcome after retries = %+v, want errored outcome for m-retry tick 3", o)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two saturated retries, one failure)", got)
	}
}

// TestClientMonitorBackendCancel: cancelling the backend's context
// while it is backing off from saturation must deliver a cancellation
// outcome instead of retrying forever.
func TestClientMonitorBackendCancel(t *testing.T) {
	fired := make(chan struct{}, 16)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case fired <- struct{}{}:
		default:
		}
		http.Error(w, `{"error":"fleet saturated"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := advdiag.NewClient(ts.URL).MonitorBackend(ctx)
	req := advdiag.MonitorRequest{ID: "m-cancel", Target: "glucose", ConcentrationMM: 1}
	if err := b.TrySubmitMonitor(req); err != nil {
		t.Fatal(err)
	}
	<-fired // at least one saturated round trip happened
	cancel()
	o := <-b.MonitorResults()
	if !errors.Is(o.Err, context.Canceled) || o.ID != "m-cancel" {
		t.Fatalf("outcome after cancel = %+v, want context.Canceled for m-cancel", o)
	}
}
