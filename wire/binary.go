package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary codec: a length-prefixed binary rendering of the same schema
// the JSON codec speaks, for the serving hot path (streaming and batch
// panel traffic), where JSON encode/decode dominates the per-panel
// service cost.
//
// A message is one frame:
//
//	frame   := u32le payloadLen | payload
//	payload := u16le schema | u8 kind | body
//
// All integers are little-endian; float64 fields travel as their IEEE
// 754 bit pattern (math.Float64bits), so the codec is lossless by
// construction — Decode(Encode(x)) reproduces every bit of every
// numeric field, which is what keeps PanelResult fingerprints intact
// across the wire. Strings are u32le byte length + UTF-8 bytes; maps
// encode in sorted key order so equal values encode to equal bytes.
//
// The compatibility policy matches the JSON codec exactly: the schema
// version is a closed contract, decoding is strict — an unknown
// version, an unknown message kind, a truncated body, or trailing
// bytes after a complete body are all errors, never a guess.
const (
	// BinaryMediaType is the HTTP content type of the binary codec;
	// servers advertise it and clients request it by this name.
	BinaryMediaType = "application/x-advdiag-binary"

	binKindSample  = 1
	binKindOutcome = 2

	// binFrameOverhead is the fixed frame cost: the u32 length prefix
	// plus the u16 schema and u8 kind of the payload header.
	binFrameOverhead = 4 + 2 + 1
)

// MarshalSampleBinary encodes one sample as a binary frame, stamping
// the schema version when the zero value was left in place and
// validating first (the same contract as MarshalSample).
//
//advdiag:hotpath
func MarshalSampleBinary(s Sample) ([]byte, error) {
	if s.Schema == 0 {
		s.Schema = SchemaVersion
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	buf := beginFrame(binKindSample, binFrameOverhead+16+len(s.ID)+24*len(s.Concentrations))
	buf = appendBinString(buf, s.ID)
	buf = appendBinConcs(buf, s.Concentrations)
	return endFrame(buf), nil
}

// UnmarshalSampleBinary strictly decodes one complete sample frame:
// version skew, a foreign message kind, truncation and trailing bytes
// are all errors, and the decoded sample passes the same runtime
// validation as its JSON twin.
//
//advdiag:hotpath
func UnmarshalSampleBinary(data []byte) (Sample, error) {
	r, err := openFrame(data, binKindSample)
	if err != nil {
		//advdiag:allow hot-fmt corrupt-frame error path: a frame that decodes pays no fmt cost
		return Sample{}, fmt.Errorf("wire: sample: %w", err)
	}
	var s Sample
	s.Schema = SchemaVersion
	s.ID = r.str()
	s.Concentrations = r.concs()
	if err := r.close(); err != nil {
		//advdiag:allow hot-fmt corrupt-frame error path: a frame that decodes pays no fmt cost
		return Sample{}, fmt.Errorf("wire: sample: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Sample{}, err
	}
	return s, nil
}

// MarshalOutcomeBinary encodes one outcome as a binary frame, stamping
// schema versions left at zero and validating first (the same contract
// as MarshalOutcome).
//
//advdiag:hotpath
func MarshalOutcomeBinary(o Outcome) ([]byte, error) {
	if o.Schema == 0 {
		o.Schema = SchemaVersion
	}
	if o.Result != nil && o.Result.Schema == 0 {
		cp := *o.Result
		cp.Schema = SchemaVersion
		o.Result = &cp
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	n := binFrameOverhead + 3*8 + 8 + len(o.ID) + 8 + len(o.Error) + 1 + 16
	if o.Result != nil {
		n += 12 + 60*len(o.Result.Readings)
	}
	buf := beginFrame(binKindOutcome, n)
	buf = appendBinInt(buf, o.Seq)
	buf = appendBinInt(buf, o.Index)
	buf = appendBinString(buf, o.ID)
	buf = appendBinInt(buf, o.Shard)
	buf = appendBinString(buf, o.Error)
	if o.Result == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		buf = appendBinFloat(buf, o.Result.PanelSeconds)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.Result.Readings)))
		for _, rd := range o.Result.Readings {
			buf = appendBinString(buf, rd.Target)
			buf = appendBinString(buf, rd.WE)
			buf = appendBinString(buf, rd.Probe)
			buf = appendBinFloat(buf, rd.MeasuredMicroAmps)
			buf = appendBinFloat(buf, rd.EstimatedMM)
			buf = appendBinFloat(buf, rd.TrueMM)
			buf = appendBinFloat(buf, rd.PeakMV)
		}
	}
	buf = appendBinFloat(buf, o.ScheduledStartSeconds)
	buf = appendBinFloat(buf, o.WallSeconds)
	return endFrame(buf), nil
}

// UnmarshalOutcomeBinary strictly decodes one complete outcome frame
// (the binary twin of UnmarshalOutcome).
//
//advdiag:hotpath
func UnmarshalOutcomeBinary(data []byte) (Outcome, error) {
	r, err := openFrame(data, binKindOutcome)
	if err != nil {
		//advdiag:allow hot-fmt corrupt-frame error path: a frame that decodes pays no fmt cost
		return Outcome{}, fmt.Errorf("wire: outcome: %w", err)
	}
	var o Outcome
	o.Schema = SchemaVersion
	o.Seq = r.int()
	o.Index = r.int()
	o.ID = r.str()
	o.Shard = r.int()
	o.Error = r.str()
	switch r.u8() {
	case 0:
	case 1:
		res := PanelResult{Schema: SchemaVersion, PanelSeconds: r.f64()}
		n := int(r.u32())
		if r.err == nil && n > r.remaining()/(3*4+4*8) {
			//advdiag:allow hot-fmt corrupt-frame error path: a frame that decodes pays no fmt cost
			r.fail(fmt.Errorf("reading count %d exceeds the remaining payload", n))
		}
		if r.err == nil && n > 0 {
			res.Readings = make([]Reading, n)
			for i := range res.Readings {
				res.Readings[i] = Reading{
					Target:            r.str(),
					WE:                r.str(),
					Probe:             r.str(),
					MeasuredMicroAmps: r.f64(),
					EstimatedMM:       r.f64(),
					TrueMM:            r.f64(),
					PeakMV:            r.f64(),
				}
			}
		}
		o.Result = &res
	default:
		//advdiag:allow hot-fmt corrupt-frame error path: a frame that decodes pays no fmt cost
		r.fail(fmt.Errorf("bad result-presence byte"))
	}
	o.ScheduledStartSeconds = r.f64()
	o.WallSeconds = r.f64()
	if err := r.close(); err != nil {
		//advdiag:allow hot-fmt corrupt-frame error path: a frame that decodes pays no fmt cost
		return Outcome{}, fmt.Errorf("wire: outcome: %w", err)
	}
	if err := o.Validate(); err != nil {
		return Outcome{}, err
	}
	return o, nil
}

// ReadBinaryFrame reads one complete frame (length prefix included)
// from r, refusing payloads above max bytes. At a clean frame boundary
// it returns io.EOF; a stream that ends mid-frame is an
// io.ErrUnexpectedEOF-wrapped truncation error. The returned slice is
// ready for UnmarshalSampleBinary / UnmarshalOutcomeBinary.
func ReadBinaryFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("wire: frame payload of %d bytes exceeds the %d-byte bound", n, max)
	}
	frame := make([]byte, 4+int(n))
	copy(frame, hdr[:])
	if _, err := io.ReadFull(r, frame[4:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return frame, nil
}

// --- encoding helpers ------------------------------------------------

// beginFrame starts a frame buffer with the length prefix left blank
// and the payload header written; sizeHint pre-sizes the allocation.
func beginFrame(kind byte, sizeHint int) []byte {
	buf := make([]byte, 4, sizeHint)
	buf = binary.LittleEndian.AppendUint16(buf, SchemaVersion)
	return append(buf, kind)
}

// endFrame backfills the length prefix.
func endFrame(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	return buf
}

func appendBinString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBinFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendBinInt(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
}

func appendBinConcs(buf []byte, concs map[string]float64) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(concs)))
	names := make([]string, 0, len(concs))
	for name := range concs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf = appendBinString(buf, name)
		buf = appendBinFloat(buf, concs[name])
	}
	return buf
}

// --- decoding helpers ------------------------------------------------

// binReader walks one frame's payload with sticky error tracking:
// after the first failure every accessor returns a zero value, and
// close reports the failure (or trailing bytes).
type binReader struct {
	buf []byte
	err error
}

// openFrame checks the length prefix against the data, the schema
// version, and the message kind, and positions a reader at the body.
func openFrame(data []byte, kind byte) (*binReader, error) {
	if len(data) < binFrameOverhead {
		return nil, fmt.Errorf("binary frame of %d bytes is shorter than a frame header", len(data))
	}
	if n := binary.LittleEndian.Uint32(data); int64(n) != int64(len(data)-4) {
		return nil, fmt.Errorf("binary frame length %d does not match the %d payload bytes present", n, len(data)-4)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != SchemaVersion {
		return nil, fmt.Errorf("binary schema %d, this decoder speaks %d", v, SchemaVersion)
	}
	if k := data[6]; k != kind {
		return nil, fmt.Errorf("binary message kind %d, want %d", k, kind)
	}
	return &binReader{buf: data[binFrameOverhead:]}, nil
}

func (r *binReader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *binReader) remaining() int { return len(r.buf) }

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.fail(fmt.Errorf("truncated payload: need %d bytes, have %d", n, len(r.buf)))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *binReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) int() int {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return int(int64(binary.LittleEndian.Uint64(b)))
}

func (r *binReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *binReader) str() string {
	n := r.u32()
	if r.err == nil && int64(n) > int64(r.remaining()) {
		r.fail(fmt.Errorf("truncated string: %d bytes declared, %d present", n, r.remaining()))
		return ""
	}
	return string(r.take(int(n)))
}

func (r *binReader) concs() map[string]float64 {
	n := int(r.u32())
	if r.err == nil && n > r.remaining()/12 {
		r.fail(fmt.Errorf("concentration count %d exceeds the remaining payload", n))
		return nil
	}
	if r.err != nil {
		return nil
	}
	out := make(map[string]float64, n)
	prev := ""
	for i := 0; i < n; i++ {
		name := r.str()
		v := r.f64()
		if r.err != nil {
			return nil
		}
		// Keys must arrive in strictly increasing order — the only
		// order the encoder emits — so every value has exactly one
		// valid encoding (and duplicates are impossible).
		if i > 0 && name <= prev {
			r.fail(fmt.Errorf("concentration keys out of canonical order (%q after %q)", name, prev))
			return nil
		}
		prev = name
		out[name] = v
	}
	return out
}

// close reports the first decode failure, or trailing bytes after a
// complete body — the binary counterpart of the JSON codec's "trailing
// data after JSON value".
func (r *binReader) close() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("trailing %d bytes after binary value", len(r.buf))
	}
	return nil
}
