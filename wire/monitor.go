package wire

import (
	"fmt"

	"encoding/json"

	"advdiag/internal/runtime"
)

// Injection is one concentration step scheduled during a monitoring
// acquisition — the wire twin of advdiag.InjectionEvent.
type Injection struct {
	// AtSeconds is the injection time from the start of the trace.
	AtSeconds float64 `json:"at_s"`
	// DeltaMM is the concentration step in mM.
	DeltaMM float64 `json:"delta_mm"`
}

// MonitorRequest is one continuous-monitoring acquisition on the wire:
// the JSON shape POST /v1/monitors ingests, twin of the root package's
// MonitorRequest.
type MonitorRequest struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// ID names the campaign the acquisition belongs to; Tick is its
	// 0-based index within the campaign.
	ID   string `json:"id,omitempty"`
	Tick int    `json:"tick"`
	// Target is the monitored metabolite; ConcentrationMM the standing
	// concentration presented in the chamber.
	Target          string  `json:"target"`
	ConcentrationMM float64 `json:"concentration_mm"`
	// DurationSeconds is the trace length (0 selects the protocol
	// default); BaselineSeconds, when positive, runs the two-phase
	// protocol.
	DurationSeconds float64 `json:"duration_s"`
	BaselineSeconds float64 `json:"baseline_s,omitempty"`
	// Injections are concentration steps during the run.
	Injections []Injection `json:"injections,omitempty"`
	// AgeHours is the film age at acquisition time; Polymer applies the
	// paper's §III polymer stabilization.
	AgeHours float64 `json:"age_hours,omitempty"`
	Polymer  bool    `json:"polymer,omitempty"`
	// Seed fixes the acquisition's noise stream. It travels with the
	// request (content-derived, never index-derived), which is what
	// makes remote cohort runs byte-identical to local ones.
	Seed uint64 `json:"seed"`
}

// MonitorResult is one monitoring trace with its analysis on the wire —
// field-for-field the root package's MonitorResult.
type MonitorResult struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// TimesSeconds and CurrentsMicroAmps are the recorded series over
	// the full run.
	TimesSeconds      []float64 `json:"times_s"`
	CurrentsMicroAmps []float64 `json:"currents_ua"`
	// The analysis fields describe the first-injection segment (see the
	// root package's MonitorResult for the exact contract).
	T90Seconds        float64 `json:"t90_s"`
	TransientSeconds  float64 `json:"transient_s"`
	BaselineMicroAmps float64 `json:"baseline_ua"`
	SteadyMicroAmps   float64 `json:"steady_ua"`
	Settled           bool    `json:"settled"`
	// StepMicroAmps is the baseline-subtracted step current;
	// EstimatedMM its inversion through the factory calibration.
	StepMicroAmps float64 `json:"step_ua"`
	EstimatedMM   float64 `json:"estimated_mm"`
}

// MonitorOutcome is the service's answer to one monitor request: the
// response body of POST /v1/monitors and GET /v1/monitors/{id}.
type MonitorOutcome struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Index is the fleet-wide monitor acceptance index (-1 when the
	// request never entered a fleet). It orders outcomes only — a
	// monitor's noise seed travels in its request.
	Index int `json:"index"`
	// ID and Tick echo the request.
	ID   string `json:"id,omitempty"`
	Tick int    `json:"tick"`
	// Shard is the fleet shard that ran the acquisition (-1 when
	// rejected).
	Shard int `json:"shard"`
	// Error is the per-request failure, empty on success.
	Error string `json:"error,omitempty"`
	// Result is the trace, present only when Error is empty.
	Result *MonitorResult `json:"result,omitempty"`
	// WallSeconds is the simulation cost.
	WallSeconds float64 `json:"wall_s"`
}

// Validate checks the request against the schema and the execution
// runtime's monitor contract, so a request that decodes is a request a
// platform will accept (assuming it serves the target at all).
func (r *MonitorRequest) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("wire: monitor request schema %d, this server speaks %d", r.Schema, SchemaVersion)
	}
	inj := make([]runtime.Injection, len(r.Injections))
	for i, v := range r.Injections {
		inj[i] = runtime.Injection{AtSeconds: v.AtSeconds, DeltaMM: v.DeltaMM}
	}
	spec := runtime.MonitorSpec{
		Target:          r.Target,
		ConcentrationMM: r.ConcentrationMM,
		DurationSeconds: r.DurationSeconds,
		BaselineSeconds: r.BaselineSeconds,
		Injections:      inj,
		AgeHours:        r.AgeHours,
		Polymer:         r.Polymer,
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}

// Validate checks the result's schema and that every numeric field and
// series element is finite (JSON cannot carry NaN or ±Inf).
func (r *MonitorResult) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("wire: monitor result schema %d, this decoder speaks %d", r.Schema, SchemaVersion)
	}
	for _, s := range [...][]float64{r.TimesSeconds, r.CurrentsMicroAmps} {
		for i, v := range s {
			if !isFinite(v) {
				return fmt.Errorf("wire: monitor series point %d is non-finite (%g)", i, v)
			}
		}
	}
	for _, v := range [...]float64{r.T90Seconds, r.TransientSeconds, r.BaselineMicroAmps, r.SteadyMicroAmps, r.StepMicroAmps, r.EstimatedMM} {
		if !isFinite(v) {
			return fmt.Errorf("wire: monitor result has non-finite field %g", v)
		}
	}
	return nil
}

// Validate checks the outcome's schema and, when a result is present,
// the result.
func (o *MonitorOutcome) Validate() error {
	if o.Schema != SchemaVersion {
		return fmt.Errorf("wire: monitor outcome schema %d, this decoder speaks %d", o.Schema, SchemaVersion)
	}
	if o.Result != nil {
		if err := o.Result.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// MarshalMonitorRequest encodes the request, stamping the schema
// version when the zero value was left in place and validating first.
func MarshalMonitorRequest(r MonitorRequest) ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// UnmarshalMonitorRequest strictly decodes one monitor request: unknown
// fields, a mismatched schema version, and specs the runtime would
// refuse are all errors.
func UnmarshalMonitorRequest(data []byte) (MonitorRequest, error) {
	var r MonitorRequest
	if err := strictUnmarshal(data, &r); err != nil {
		return MonitorRequest{}, fmt.Errorf("wire: monitor request: %w", err)
	}
	if err := r.Validate(); err != nil {
		return MonitorRequest{}, err
	}
	return r, nil
}

// MarshalMonitorResult encodes the result, stamping the schema version
// when the zero value was left in place and validating first.
func MarshalMonitorResult(r MonitorResult) ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// UnmarshalMonitorResult strictly decodes one monitor result.
func UnmarshalMonitorResult(data []byte) (MonitorResult, error) {
	var r MonitorResult
	if err := strictUnmarshal(data, &r); err != nil {
		return MonitorResult{}, fmt.Errorf("wire: monitor result: %w", err)
	}
	if err := r.Validate(); err != nil {
		return MonitorResult{}, err
	}
	return r, nil
}

// MarshalMonitorOutcome encodes one outcome, stamping schema versions
// left at zero (the outcome's and its result's) and validating first.
func MarshalMonitorOutcome(o MonitorOutcome) ([]byte, error) {
	if o.Schema == 0 {
		o.Schema = SchemaVersion
	}
	if o.Result != nil && o.Result.Schema == 0 {
		cp := *o.Result
		cp.Schema = SchemaVersion
		o.Result = &cp
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(o)
}

// UnmarshalMonitorOutcome strictly decodes one monitor outcome.
func UnmarshalMonitorOutcome(data []byte) (MonitorOutcome, error) {
	var o MonitorOutcome
	if err := strictUnmarshal(data, &o); err != nil {
		return MonitorOutcome{}, fmt.Errorf("wire: monitor outcome: %w", err)
	}
	if err := o.Validate(); err != nil {
		return MonitorOutcome{}, err
	}
	return o, nil
}
