package wire

import (
	"encoding/json"
	"fmt"
)

// Diagnosis classes: the failure modes the fleet diagnoser can name.
// Each class is a closed vocabulary item — decoders reject anything
// else, so a report that decodes is a report the dashboard can chart.
const (
	// ClassSensorFouling is an analog-chain fault: one shard's estimates
	// for a target drifted away from its siblings' with elevated noise —
	// the signature of a fouled electrode film.
	ClassSensorFouling = "sensor_fouling"
	// ClassShardStall is a liveness fault: a shard holds pending work
	// across consecutive observations without completing any of it.
	ClassShardStall = "shard_stall"
	// ClassQueueSaturation is a capacity fault: the fleet is shedding
	// load (TrySubmit rejections) while its shards stay live.
	ClassQueueSaturation = "queue_saturation"
	// ClassWireErrors is a boundary fault: clients are sending payloads
	// the strict wire layer refuses.
	ClassWireErrors = "wire_errors"
	// ClassDrain reports the server refusing intake because it is
	// draining — expected during shutdown, anomalous outside it.
	ClassDrain = "drain"
)

// Diagnosis statuses.
const (
	// StatusHealthy means no finding survived the diagnoser's
	// thresholds.
	StatusHealthy = "healthy"
	// StatusDegraded means at least one finding did.
	StatusDegraded = "degraded"
)

// diagnosisClasses is the closed class vocabulary Validate enforces.
var diagnosisClasses = map[string]bool{
	ClassSensorFouling:   true,
	ClassShardStall:      true,
	ClassQueueSaturation: true,
	ClassWireErrors:      true,
	ClassDrain:           true,
}

// DiagnosisFinding is one classified anomaly in a fleet diagnosis.
type DiagnosisFinding struct {
	// Class is the failure mode (one of the Class… constants).
	Class string `json:"class"`
	// Shard is the implicated shard index, or -1 for fleet-wide
	// findings (saturation, wire errors, drain).
	Shard int `json:"shard"`
	// Target is the implicated species for sensor-level findings.
	Target string `json:"target,omitempty"`
	// Severity grades the finding in [0,1] — 1 is the worst the
	// diagnoser can express for the class.
	Severity float64 `json:"severity"`
	// Quarantined reports that the diagnoser (or an operator) has
	// already removed the shard from routing over this finding.
	Quarantined bool `json:"quarantined,omitempty"`
	// Evidence is the human-readable trail: the numbers that crossed a
	// threshold, for the operator reading the report.
	Evidence string `json:"evidence,omitempty"`
}

// Diagnosis is the response body of GET /v1/diagnosis: the diagnoser's
// current explanation of the fleet's health.
type Diagnosis struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Status is healthy or degraded.
	Status string `json:"status"`
	// Snapshots counts the observations the verdict rests on; a young
	// diagnoser (fewer than two) cannot see rate anomalies yet.
	Snapshots int `json:"snapshots"`
	// QuarantinedShards lists every shard currently out of routing.
	QuarantinedShards []int `json:"quarantined_shards,omitempty"`
	// Findings are the classified anomalies, worst first.
	Findings []DiagnosisFinding `json:"findings,omitempty"`
}

// Validate checks the finding against the closed vocabulary and value
// ranges.
func (f *DiagnosisFinding) Validate() error {
	if !diagnosisClasses[f.Class] {
		return fmt.Errorf("wire: unknown diagnosis class %q", f.Class)
	}
	if f.Shard < -1 {
		return fmt.Errorf("wire: diagnosis finding shard %d below -1", f.Shard)
	}
	if !isFinite(f.Severity) || f.Severity < 0 || f.Severity > 1 {
		return fmt.Errorf("wire: diagnosis severity %g outside [0,1]", f.Severity)
	}
	return nil
}

// Validate checks the diagnosis schema, status, and every finding.
func (d *Diagnosis) Validate() error {
	if d.Schema != SchemaVersion {
		return fmt.Errorf("wire: diagnosis schema %d, this decoder speaks %d", d.Schema, SchemaVersion)
	}
	if d.Status != StatusHealthy && d.Status != StatusDegraded {
		return fmt.Errorf("wire: unknown diagnosis status %q", d.Status)
	}
	if d.Snapshots < 0 {
		return fmt.Errorf("wire: diagnosis snapshot count %d is negative", d.Snapshots)
	}
	for i, q := range d.QuarantinedShards {
		if q < 0 {
			return fmt.Errorf("wire: quarantined shard entry %d is negative (%d)", i, q)
		}
	}
	for i := range d.Findings {
		if err := d.Findings[i].Validate(); err != nil {
			return fmt.Errorf("wire: finding %d: %w", i, err)
		}
	}
	return nil
}

// MarshalDiagnosis encodes one diagnosis, stamping the schema version
// when the zero value was left in place and validating first.
func MarshalDiagnosis(d Diagnosis) ([]byte, error) {
	if d.Schema == 0 {
		d.Schema = SchemaVersion
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// UnmarshalDiagnosis strictly decodes one diagnosis: unknown fields, a
// mismatched schema version, classes or statuses outside the closed
// vocabulary, and out-of-range severities are all errors.
func UnmarshalDiagnosis(data []byte) (Diagnosis, error) {
	var d Diagnosis
	if err := strictUnmarshal(data, &d); err != nil {
		return Diagnosis{}, fmt.Errorf("wire: diagnosis: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Diagnosis{}, err
	}
	return d, nil
}
