package wire

import (
	"encoding/json"
	"fmt"
	"time"
)

// Diagnosis classes: the failure modes the fleet diagnoser can name.
// Each class is a closed vocabulary item — decoders reject anything
// else, so a report that decodes is a report the dashboard can chart.
const (
	// ClassSensorFouling is an analog-chain fault: one shard's estimates
	// for a target drifted away from its siblings' with elevated noise —
	// the signature of a fouled electrode film.
	ClassSensorFouling = "sensor_fouling"
	// ClassShardStall is a liveness fault: a shard holds pending work
	// across consecutive observations without completing any of it.
	ClassShardStall = "shard_stall"
	// ClassQueueSaturation is a capacity fault: the fleet is shedding
	// load (TrySubmit rejections) while its shards stay live.
	ClassQueueSaturation = "queue_saturation"
	// ClassWireErrors is a boundary fault: clients are sending payloads
	// the strict wire layer refuses.
	ClassWireErrors = "wire_errors"
	// ClassDrain reports the server refusing intake because it is
	// draining — expected during shutdown, anomalous outside it.
	ClassDrain = "drain"
)

// Diagnosis statuses.
const (
	// StatusHealthy means no finding survived the diagnoser's
	// thresholds.
	StatusHealthy = "healthy"
	// StatusDegraded means at least one finding did.
	StatusDegraded = "degraded"
)

// diagnosisClasses is the closed class vocabulary Validate enforces.
var diagnosisClasses = map[string]bool{
	ClassSensorFouling:   true,
	ClassShardStall:      true,
	ClassQueueSaturation: true,
	ClassWireErrors:      true,
	ClassDrain:           true,
}

// Lifecycle event kinds: the fleet history entries a diagnosis can
// carry. Closed vocabulary, like the classes.
const (
	// EventShardAdded records a runtime AddShard.
	EventShardAdded = "shard_added"
	// EventShardRemoved records a runtime RemoveShard.
	EventShardRemoved = "shard_removed"
	// EventQuarantined records a shard leaving the routing view (breaker
	// opened by probes, a diagnoser conviction, or an operator).
	EventQuarantined = "quarantined"
	// EventProbed records a health-probe transition on a shard (failure
	// progress toward the breaker opening, or restore progress on a
	// quarantined shard).
	EventProbed = "probed"
	// EventRestored records an automatic un-quarantine: enough
	// consecutive known-good probes closed the breaker.
	EventRestored = "restored"
)

// diagnosisEvents is the closed event-kind vocabulary.
var diagnosisEvents = map[string]bool{
	EventShardAdded:   true,
	EventShardRemoved: true,
	EventQuarantined:  true,
	EventProbed:       true,
	EventRestored:     true,
}

// DiagnosisEvent is one timestamped fleet lifecycle event in a
// diagnosis history.
type DiagnosisEvent struct {
	// At is the event time in RFC 3339 format with nanoseconds.
	At string `json:"at"`
	// Kind is the event kind (one of the Event… constants).
	Kind string `json:"kind"`
	// Shard is the shard the event concerns.
	Shard int `json:"shard"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail,omitempty"`
}

// Validate checks the event against the closed vocabulary and parses
// its timestamp.
func (e *DiagnosisEvent) Validate() error {
	if _, err := time.Parse(time.RFC3339Nano, e.At); err != nil {
		return fmt.Errorf("wire: diagnosis event time: %w", err)
	}
	if !diagnosisEvents[e.Kind] {
		return fmt.Errorf("wire: unknown diagnosis event kind %q", e.Kind)
	}
	if e.Shard < 0 {
		return fmt.Errorf("wire: diagnosis event shard %d is negative", e.Shard)
	}
	return nil
}

// DiagnosisFinding is one classified anomaly in a fleet diagnosis.
type DiagnosisFinding struct {
	// Class is the failure mode (one of the Class… constants).
	Class string `json:"class"`
	// Shard is the implicated shard index, or -1 for fleet-wide
	// findings (saturation, wire errors, drain).
	Shard int `json:"shard"`
	// Target is the implicated species for sensor-level findings.
	Target string `json:"target,omitempty"`
	// Severity grades the finding in [0,1] — 1 is the worst the
	// diagnoser can express for the class.
	Severity float64 `json:"severity"`
	// Quarantined reports that the diagnoser (or an operator) has
	// already removed the shard from routing over this finding.
	Quarantined bool `json:"quarantined,omitempty"`
	// Evidence is the human-readable trail: the numbers that crossed a
	// threshold, for the operator reading the report.
	Evidence string `json:"evidence,omitempty"`
}

// Diagnosis is the response body of GET /v1/diagnosis: the diagnoser's
// current explanation of the fleet's health.
type Diagnosis struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Status is healthy or degraded.
	Status string `json:"status"`
	// Snapshots counts the observations the verdict rests on; a young
	// diagnoser (fewer than two) cannot see rate anomalies yet.
	Snapshots int `json:"snapshots"`
	// QuarantinedShards lists every shard currently out of routing.
	QuarantinedShards []int `json:"quarantined_shards,omitempty"`
	// Findings are the classified anomalies, worst first.
	Findings []DiagnosisFinding `json:"findings,omitempty"`
	// History is the fleet's lifecycle timeline, oldest first — shards
	// added and removed, quarantines, probe transitions, automatic
	// restores. Optional, so schema 1 stays backward compatible.
	History []DiagnosisEvent `json:"history,omitempty"`
}

// Validate checks the finding against the closed vocabulary and value
// ranges.
func (f *DiagnosisFinding) Validate() error {
	if !diagnosisClasses[f.Class] {
		return fmt.Errorf("wire: unknown diagnosis class %q", f.Class)
	}
	if f.Shard < -1 {
		return fmt.Errorf("wire: diagnosis finding shard %d below -1", f.Shard)
	}
	if !isFinite(f.Severity) || f.Severity < 0 || f.Severity > 1 {
		return fmt.Errorf("wire: diagnosis severity %g outside [0,1]", f.Severity)
	}
	return nil
}

// Validate checks the diagnosis schema, status, and every finding.
func (d *Diagnosis) Validate() error {
	if d.Schema != SchemaVersion {
		return fmt.Errorf("wire: diagnosis schema %d, this decoder speaks %d", d.Schema, SchemaVersion)
	}
	if d.Status != StatusHealthy && d.Status != StatusDegraded {
		return fmt.Errorf("wire: unknown diagnosis status %q", d.Status)
	}
	if d.Snapshots < 0 {
		return fmt.Errorf("wire: diagnosis snapshot count %d is negative", d.Snapshots)
	}
	for i, q := range d.QuarantinedShards {
		if q < 0 {
			return fmt.Errorf("wire: quarantined shard entry %d is negative (%d)", i, q)
		}
	}
	for i := range d.Findings {
		if err := d.Findings[i].Validate(); err != nil {
			return fmt.Errorf("wire: finding %d: %w", i, err)
		}
	}
	for i := range d.History {
		if err := d.History[i].Validate(); err != nil {
			return fmt.Errorf("wire: history event %d: %w", i, err)
		}
	}
	return nil
}

// MarshalDiagnosis encodes one diagnosis, stamping the schema version
// when the zero value was left in place and validating first.
func MarshalDiagnosis(d Diagnosis) ([]byte, error) {
	if d.Schema == 0 {
		d.Schema = SchemaVersion
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(d)
}

// UnmarshalDiagnosis strictly decodes one diagnosis: unknown fields, a
// mismatched schema version, classes or statuses outside the closed
// vocabulary, and out-of-range severities are all errors.
func UnmarshalDiagnosis(data []byte) (Diagnosis, error) {
	var d Diagnosis
	if err := strictUnmarshal(data, &d); err != nil {
		return Diagnosis{}, fmt.Errorf("wire: diagnosis: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Diagnosis{}, err
	}
	return d, nil
}
