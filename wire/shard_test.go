package wire

import (
	"reflect"
	"strings"
	"testing"
)

func TestShardRequestRoundTrip(t *testing.T) {
	r := ShardRequest{Targets: []string{"glucose", "benzphetamine"}, Seed: 42}
	data, err := MarshalShardRequest(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalShardRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Schema = SchemaVersion
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed the request:\n%+v\nvs\n%+v", r, back)
	}
	// Zero seed stays omitted on the wire — "use the fleet's seed".
	data, err = MarshalShardRequest(ShardRequest{Targets: []string{"glucose"}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "seed") {
		t.Fatalf("zero seed serialized explicitly: %s", data)
	}
}

func TestShardResponseRoundTrip(t *testing.T) {
	r := ShardResponse{Shard: 3}
	data, err := MarshalShardResponse(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalShardResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Schema = SchemaVersion
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed the response:\n%+v\nvs\n%+v", r, back)
	}
}

func TestShardStrictDecoding(t *testing.T) {
	reqCases := []struct {
		name, payload, wantErr string
	}{
		{"no targets", `{"schema":1,"targets":[]}`, "no targets"},
		{"missing targets", `{"schema":1}`, "no targets"},
		{"empty target", `{"schema":1,"targets":["glucose",""]}`, "target 1 is empty"},
		{"schema skew", `{"schema":2,"targets":["glucose"]}`, "schema 2"},
		{"unknown field", `{"schema":1,"targets":["glucose"],"workers":4}`, "unknown field"},
		{"truncated", `{"schema":1,"targets":["glu`, "unexpected"},
	}
	for _, tc := range reqCases {
		t.Run("request/"+tc.name, func(t *testing.T) {
			_, err := UnmarshalShardRequest([]byte(tc.payload))
			if err == nil {
				t.Fatalf("decoder accepted %s", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	respCases := []struct {
		name, payload, wantErr string
	}{
		{"negative shard", `{"schema":1,"shard":-1}`, "negative"},
		{"schema skew", `{"schema":2,"shard":0}`, "schema 2"},
		{"unknown field", `{"schema":1,"shard":0,"extra":1}`, "unknown field"},
	}
	for _, tc := range respCases {
		t.Run("response/"+tc.name, func(t *testing.T) {
			_, err := UnmarshalShardResponse([]byte(tc.payload))
			if err == nil {
				t.Fatalf("decoder accepted %s", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// Marshal validates too: an empty request must be refused at encode
	// time, not shipped for the server to reject.
	if _, err := MarshalShardRequest(ShardRequest{}); err == nil {
		t.Fatal("encoder accepted a request naming no targets")
	}
}
