package wire

import (
	"encoding/json"
	"fmt"
)

// ShardRequest is the request body of POST /v1/shards: grow the served
// fleet by one shard measuring the given targets. The server designs
// the platform; the client only names the panel.
type ShardRequest struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Targets are the species the new shard's panel must measure.
	Targets []string `json:"targets"`
	// Seed optionally pins the platform design seed; zero means the
	// server uses the fleet's own seed (identical-platform shards, the
	// configuration under which every result replays on every shard).
	Seed uint64 `json:"seed,omitempty"`
}

// ShardResponse answers a successful POST /v1/shards with the new
// shard's index — stable for the fleet's lifetime, never reused.
type ShardResponse struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Shard is the new shard's index.
	Shard int `json:"shard"`
}

// Validate checks the request's schema and target list.
func (r *ShardRequest) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("wire: shard request schema %d, this decoder speaks %d", r.Schema, SchemaVersion)
	}
	if len(r.Targets) == 0 {
		return fmt.Errorf("wire: shard request names no targets")
	}
	for i, t := range r.Targets {
		if t == "" {
			return fmt.Errorf("wire: shard request target %d is empty", i)
		}
	}
	return nil
}

// Validate checks the response's schema and shard index.
func (r *ShardResponse) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("wire: shard response schema %d, this decoder speaks %d", r.Schema, SchemaVersion)
	}
	if r.Shard < 0 {
		return fmt.Errorf("wire: shard response index %d is negative", r.Shard)
	}
	return nil
}

// MarshalShardRequest encodes one shard request, stamping the schema
// version when the zero value was left in place and validating first.
func MarshalShardRequest(r ShardRequest) ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// UnmarshalShardRequest strictly decodes one shard request.
func UnmarshalShardRequest(data []byte) (ShardRequest, error) {
	var r ShardRequest
	if err := strictUnmarshal(data, &r); err != nil {
		return ShardRequest{}, fmt.Errorf("wire: shard request: %w", err)
	}
	if err := r.Validate(); err != nil {
		return ShardRequest{}, err
	}
	return r, nil
}

// MarshalShardResponse encodes one shard response, stamping the schema
// version when the zero value was left in place and validating first.
func MarshalShardResponse(r ShardResponse) ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// UnmarshalShardResponse strictly decodes one shard response.
func UnmarshalShardResponse(data []byte) (ShardResponse, error) {
	var r ShardResponse
	if err := strictUnmarshal(data, &r); err != nil {
		return ShardResponse{}, fmt.Errorf("wire: shard response: %w", err)
	}
	if err := r.Validate(); err != nil {
		return ShardResponse{}, err
	}
	return r, nil
}
