package wire

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"advdiag/internal/mathx"
)

// randMonitorResult builds a deterministic pseudo-random monitor result
// whose floats exercise the full double range — the values a lossless
// wire format must carry.
func randMonitorResult(seed uint64, points int) MonitorResult {
	rng := mathx.NewRNG(seed)
	gnarly := func() float64 {
		switch rng.Uint64() % 5 {
		case 0:
			return math.Copysign(5e-324*float64(1+rng.Uint64()%1000), rng.Float64()-0.5)
		case 1:
			return math.Copysign(1e307*rng.Float64(), rng.Float64()-0.5)
		case 2:
			return math.Copysign(0, rng.Float64()-0.5) // ±0
		default:
			return (rng.Float64() - 0.5) * 100
		}
	}
	r := MonitorResult{
		Schema:            SchemaVersion,
		T90Seconds:        gnarly(),
		TransientSeconds:  gnarly(),
		BaselineMicroAmps: gnarly(),
		SteadyMicroAmps:   gnarly(),
		Settled:           rng.Uint64()%2 == 0,
		StepMicroAmps:     gnarly(),
		EstimatedMM:       gnarly(),
	}
	for i := 0; i < points; i++ {
		r.TimesSeconds = append(r.TimesSeconds, gnarly())
		r.CurrentsMicroAmps = append(r.CurrentsMicroAmps, gnarly())
	}
	return r
}

// TestMonitorResultRoundTripExact: decode(encode(x)) must reproduce
// every bit of every field and series element — the property the
// monitor-smoke fingerprint diff rests on.
func TestMonitorResultRoundTripExact(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := randMonitorResult(seed, int(seed%9))
		data, err := MarshalMonitorResult(r)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := UnmarshalMonitorResult(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("seed %d: round trip changed the result:\n%+v\nvs\n%+v", seed, r, back)
		}
		for i := range r.TimesSeconds {
			if math.Float64bits(r.TimesSeconds[i]) != math.Float64bits(back.TimesSeconds[i]) ||
				math.Float64bits(r.CurrentsMicroAmps[i]) != math.Float64bits(back.CurrentsMicroAmps[i]) {
				t.Fatalf("seed %d point %d: series bits changed", seed, i)
			}
		}
	}
}

func TestMonitorRequestRoundTrip(t *testing.T) {
	r := MonitorRequest{
		ID:              "patient-042",
		Tick:            7,
		Target:          "glucose",
		ConcentrationMM: 5.5,
		DurationSeconds: 30,
		BaselineSeconds: 5,
		Injections:      []Injection{{AtSeconds: 10, DeltaMM: 2.5}, {AtSeconds: 20, DeltaMM: 1.0}},
		AgeHours:        168,
		Polymer:         true,
		Seed:            0xdeadbeefcafe,
	}
	data, err := MarshalMonitorRequest(r) // zero Schema is stamped
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMonitorRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	r.Schema = SchemaVersion
	if !reflect.DeepEqual(r, back) {
		t.Fatalf("round trip changed the request:\n%+v\nvs\n%+v", r, back)
	}
}

func TestMonitorOutcomeRoundTrip(t *testing.T) {
	res := randMonitorResult(3, 6)
	o := MonitorOutcome{Index: 17, ID: "p-1", Tick: 3, Shard: 2, Result: &res, WallSeconds: 0.004}
	data, err := MarshalMonitorOutcome(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMonitorOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	o.Schema = SchemaVersion
	if !reflect.DeepEqual(o, back) {
		t.Fatalf("round trip changed the outcome:\n%+v\nvs\n%+v", o, back)
	}

	// Error outcomes carry no result.
	e := MonitorOutcome{Index: -1, ID: "p-2", Shard: -1, Error: "fleet saturated"}
	data, err = MarshalMonitorOutcome(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err = UnmarshalMonitorOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Error != e.Error || back.Result != nil || back.Index != -1 {
		t.Fatalf("error outcome round trip: %+v", back)
	}
}

// TestMonitorStrictDecoding pins the monitor boundary's rejections:
// version skew, unknown fields, and requests the runtime would refuse.
func TestMonitorStrictDecoding(t *testing.T) {
	cases := []struct {
		name, payload, want string
		decode              func(string) error
	}{
		{"request schema skew", `{"schema":2,"tick":0,"target":"glucose","concentration_mm":5,"duration_s":30,"seed":1}`, "schema 2",
			func(p string) error { _, err := UnmarshalMonitorRequest([]byte(p)); return err }},
		{"request unknown field", `{"schema":1,"tick":0,"target":"glucose","concentration_mm":5,"duration_s":30,"seed":1,"priority":9}`, "unknown field",
			func(p string) error { _, err := UnmarshalMonitorRequest([]byte(p)); return err }},
		{"request unknown species", `{"schema":1,"tick":0,"target":"unobtainium","concentration_mm":5,"duration_s":30,"seed":1}`, "unknown species",
			func(p string) error { _, err := UnmarshalMonitorRequest([]byte(p)); return err }},
		{"request negative duration", `{"schema":1,"tick":0,"target":"glucose","concentration_mm":5,"duration_s":-1,"seed":1}`, "negative",
			func(p string) error { _, err := UnmarshalMonitorRequest([]byte(p)); return err }},
		{"request baseline swallows trace", `{"schema":1,"tick":0,"target":"glucose","concentration_mm":5,"duration_s":30,"baseline_s":30,"seed":1}`, "swallows",
			func(p string) error { _, err := UnmarshalMonitorRequest([]byte(p)); return err }},
		{"request injection past end", `{"schema":1,"tick":0,"target":"glucose","concentration_mm":5,"duration_s":30,"injections":[{"at_s":31,"delta_mm":1}],"seed":1}`, "past",
			func(p string) error { _, err := UnmarshalMonitorRequest([]byte(p)); return err }},
		{"result schema skew", `{"schema":7,"times_s":[],"currents_ua":[],"t90_s":0,"transient_s":0,"baseline_ua":0,"steady_ua":0,"settled":true,"step_ua":0,"estimated_mm":0}`, "schema 7",
			func(p string) error { _, err := UnmarshalMonitorResult([]byte(p)); return err }},
		{"outcome schema skew", `{"schema":0,"index":0,"tick":0,"shard":0,"wall_s":0}`, "schema 0",
			func(p string) error { _, err := UnmarshalMonitorOutcome([]byte(p)); return err }},
		{"outcome trailing data", `{"schema":1,"index":0,"tick":0,"shard":0,"wall_s":0} {"x":1}`, "trailing",
			func(p string) error { _, err := UnmarshalMonitorOutcome([]byte(p)); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.decode(tc.payload)
			if err == nil {
				t.Fatalf("payload %s must fail to decode", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzMonitorRequest: every request MarshalMonitorRequest accepts must
// decode back identically, and arbitrary inputs must never panic the
// strict decoder or the runtime validation it delegates to.
func FuzzMonitorRequest(f *testing.F) {
	f.Add("patient-001", "glucose", 5.5, 30.0, 5.0, 10.0, 2.5, 24.0, uint64(1))
	f.Add("", "lactate", 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(0))
	f.Add("p", "glutamate", 0.1, 4.0, 1.0, 3.9, -0.05, 8760.0, uint64(math.MaxUint64))

	f.Fuzz(func(t *testing.T, id, target string, mm, dur, base, injAt, injDelta, age float64, seed uint64) {
		// json.Marshal coerces invalid UTF-8 to U+FFFD; byte-exact
		// round-tripping is only promised for valid strings.
		if !utf8.ValidString(id) || !utf8.ValidString(target) {
			t.Skip()
		}
		r := MonitorRequest{
			ID:              id,
			Target:          target,
			ConcentrationMM: mm,
			DurationSeconds: dur,
			BaselineSeconds: base,
			Injections:      []Injection{{AtSeconds: injAt, DeltaMM: injDelta}},
			AgeHours:        age,
			Seed:            seed,
		}
		data, err := MarshalMonitorRequest(r)
		if err != nil {
			// Unknown species / non-finite / out-of-contract values are
			// correctly refused; nothing more to check.
			return
		}
		back, err := UnmarshalMonitorRequest(data)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output %s: %v", data, err)
		}
		r.Schema = SchemaVersion
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("round trip changed the request:\n%+v\nvs\n%+v", r, back)
		}
	})
}
