package wire

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestDiagnosisRoundTrip(t *testing.T) {
	d := Diagnosis{
		Status:            StatusDegraded,
		Snapshots:         9,
		QuarantinedShards: []int{1, 3},
		Findings: []DiagnosisFinding{
			{Class: ClassSensorFouling, Shard: 1, Target: "glucose", Severity: 0.62,
				Quarantined: true, Evidence: "recovery 0.55 vs sibling median 0.98"},
			{Class: ClassShardStall, Shard: 3, Severity: 1, Quarantined: true,
				Evidence: "7 panels pending, no completions across 4 consecutive observations"},
			{Class: ClassQueueSaturation, Shard: -1, Severity: 0.3},
			{Class: ClassWireErrors, Shard: -1, Severity: 0.1},
			{Class: ClassDrain, Shard: -1, Severity: 0.25},
		},
		History: []DiagnosisEvent{
			{At: "2026-08-07T09:15:04.000000001Z", Kind: EventShardAdded, Shard: 2, Detail: "targets glucose"},
			{At: "2026-08-07T09:15:05.5Z", Kind: EventProbed, Shard: 1, Detail: "probe failure 2/3"},
			{At: "2026-08-07T09:15:06Z", Kind: EventQuarantined, Shard: 1, Detail: "breaker open, 4 backlog jobs rerouted"},
			{At: "2026-08-07T09:15:08Z", Kind: EventShardRemoved, Shard: 3},
			{At: "2026-08-07T09:15:09Z", Kind: EventRestored, Shard: 1, Detail: "3 consecutive known-good probes, breaker closed"},
		},
	}
	data, err := MarshalDiagnosis(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDiagnosis(data)
	if err != nil {
		t.Fatal(err)
	}
	d.Schema = SchemaVersion
	if !reflect.DeepEqual(d, back) {
		t.Fatalf("round trip changed the diagnosis:\n%+v\nvs\n%+v", d, back)
	}
}

func TestDiagnosisStrictDecoding(t *testing.T) {
	cases := []struct {
		name, payload, wantErr string
	}{
		{"unknown field", `{"schema":1,"status":"healthy","snapshots":0,"surprise":true}`, "unknown field"},
		{"schema skew", `{"schema":2,"status":"healthy","snapshots":0}`, "schema 2"},
		{"bad status", `{"schema":1,"status":"on fire","snapshots":0}`, "unknown diagnosis status"},
		{"bad class", `{"schema":1,"status":"degraded","snapshots":1,"findings":[{"class":"gremlins","shard":0,"severity":0.5}]}`, "unknown diagnosis class"},
		{"severity range", `{"schema":1,"status":"degraded","snapshots":1,"findings":[{"class":"shard_stall","shard":0,"severity":1.5}]}`, "severity"},
		{"shard below -1", `{"schema":1,"status":"degraded","snapshots":1,"findings":[{"class":"shard_stall","shard":-2,"severity":0.5}]}`, "below -1"},
		{"negative snapshots", `{"schema":1,"status":"healthy","snapshots":-1}`, "negative"},
		{"negative quarantine entry", `{"schema":1,"status":"healthy","snapshots":0,"quarantined_shards":[-1]}`, "negative"},
		{"bad event kind", `{"schema":1,"status":"healthy","snapshots":0,"history":[{"at":"2026-08-07T09:15:06Z","kind":"exploded","shard":0}]}`, "unknown diagnosis event kind"},
		{"bad event time", `{"schema":1,"status":"healthy","snapshots":0,"history":[{"at":"yesterday","kind":"probed","shard":0}]}`, "event time"},
		{"negative event shard", `{"schema":1,"status":"healthy","snapshots":0,"history":[{"at":"2026-08-07T09:15:06Z","kind":"probed","shard":-1}]}`, "negative"},
		{"truncated", `{"schema":1,"status":"healthy"`, "unexpected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalDiagnosis([]byte(tc.payload))
			if err == nil {
				t.Fatalf("decoder accepted %s", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestMarshalDiagnosisRejectsInvalid(t *testing.T) {
	for _, d := range []Diagnosis{
		{Status: "fine", Snapshots: 1},
		{Status: StatusDegraded, Snapshots: 1, Findings: []DiagnosisFinding{{Class: "nope", Shard: 0, Severity: 0.5}}},
		{Status: StatusDegraded, Snapshots: 1, Findings: []DiagnosisFinding{{Class: ClassDrain, Shard: -1, Severity: math.NaN()}}},
	} {
		if _, err := MarshalDiagnosis(d); err == nil {
			t.Fatalf("encoder accepted invalid diagnosis %+v", d)
		}
	}
}

// FuzzDiagnosisRoundTrip: anything the encoder emits the strict
// decoder must accept and reproduce exactly; out-of-contract values
// must be refused at encode time, never silently reshaped.
func FuzzDiagnosisRoundTrip(f *testing.F) {
	f.Add("degraded", "sensor_fouling", "glucose", "recovery 0.5 vs 0.98", 1, 0.62, 3, true, 2)
	f.Add("healthy", "", "", "", -1, 0.0, 0, false, 0)
	f.Add("degraded", "wire_errors", "", "9 refused", -1, 1.0, 12, false, -3)
	f.Fuzz(func(t *testing.T, status, class, target, evidence string, shard int, severity float64, snapshots int, quarantined bool, qshard int) {
		if !utf8.ValidString(target) || !utf8.ValidString(evidence) {
			t.Skip() // json.Marshal coerces invalid UTF-8 to U+FFFD
		}
		d := Diagnosis{Status: status, Snapshots: snapshots}
		if qshard != 0 {
			d.QuarantinedShards = []int{qshard}
		}
		if class != "" {
			d.Findings = []DiagnosisFinding{{
				Class: class, Shard: shard, Target: target,
				Severity: severity, Quarantined: quarantined, Evidence: evidence,
			}}
		}
		data, err := MarshalDiagnosis(d)
		if err != nil {
			return // out-of-contract values correctly refused
		}
		back, err := UnmarshalDiagnosis(data)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output %s: %v", data, err)
		}
		d.Schema = SchemaVersion
		if !reflect.DeepEqual(d, back) {
			t.Fatalf("round trip changed the diagnosis:\n%+v\nvs\n%+v", d, back)
		}
	})
}
