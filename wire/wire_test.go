package wire

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"

	"advdiag/internal/mathx"
)

// randResult builds a deterministic pseudo-random panel result whose
// floats exercise the full double range (subnormals, huge magnitudes,
// negative zero) — the values a lossless wire format must carry.
func randResult(seed uint64, readings int) PanelResult {
	rng := mathx.NewRNG(seed)
	gnarly := func() float64 {
		switch rng.Uint64() % 5 {
		case 0:
			return math.Copysign(5e-324*float64(1+rng.Uint64()%1000), rng.Float64()-0.5)
		case 1:
			return math.Copysign(1e307*rng.Float64(), rng.Float64()-0.5)
		case 2:
			return math.Copysign(0, rng.Float64()-0.5) // ±0
		default:
			return (rng.Float64() - 0.5) * 100
		}
	}
	r := PanelResult{Schema: SchemaVersion, PanelSeconds: 90 * rng.Float64()}
	for i := 0; i < readings; i++ {
		r.Readings = append(r.Readings, Reading{
			Target:            "target-" + string(rune('a'+i%26)),
			WE:                "we" + string(rune('0'+i%10)),
			Probe:             "probe µ/1A2", // unicode survives JSON
			MeasuredMicroAmps: gnarly(),
			EstimatedMM:       gnarly(),
			TrueMM:            gnarly(),
			PeakMV:            gnarly(),
		})
	}
	return r
}

// TestResultRoundTripExact: decode(encode(x)) must reproduce every bit
// of every field across the double range — the property the serving
// layer's fingerprint guarantee rests on.
func TestResultRoundTripExact(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := randResult(seed, int(seed%7))
		data, err := MarshalResult(r)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := UnmarshalResult(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(r, back) {
			t.Fatalf("seed %d: round trip changed the result:\n%+v\nvs\n%+v", seed, r, back)
		}
		for i := range r.Readings {
			for f, pair := range map[string][2]float64{
				"measured": {r.Readings[i].MeasuredMicroAmps, back.Readings[i].MeasuredMicroAmps},
				"est":      {r.Readings[i].EstimatedMM, back.Readings[i].EstimatedMM},
				"true":     {r.Readings[i].TrueMM, back.Readings[i].TrueMM},
				"peak":     {r.Readings[i].PeakMV, back.Readings[i].PeakMV},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("seed %d reading %d %s: bits %x vs %x", seed, i, f, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
				}
			}
		}
	}
}

func TestSampleRoundTrip(t *testing.T) {
	s := Sample{ID: "patient-007", Concentrations: map[string]float64{"glucose": 5.5, "lactate": 1.25}}
	data, err := MarshalSample(s) // zero Schema is stamped
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSample(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.ID != s.ID || !reflect.DeepEqual(back.Concentrations, s.Concentrations) {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	res := randResult(3, 4)
	o := Outcome{Seq: 2, Index: 17, ID: "p-1", Shard: 1, Result: &res, ScheduledStartSeconds: 180, WallSeconds: 0.002}
	data, err := MarshalOutcome(o)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	o.Schema = SchemaVersion
	if !reflect.DeepEqual(o, back) {
		t.Fatalf("round trip changed the outcome:\n%+v\nvs\n%+v", o, back)
	}

	// Error outcomes carry no result.
	e := Outcome{Seq: 0, Index: -1, Shard: -1, Error: "fleet saturated"}
	data, err = MarshalOutcome(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err = UnmarshalOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Error != e.Error || back.Result != nil || back.Index != -1 {
		t.Fatalf("error outcome round trip: %+v", back)
	}
}

// TestStrictDecoding pins every rejection the boundary owes its
// callers: version skew, unknown fields, trailing data, and payloads
// the execution runtime would refuse.
func TestStrictDecoding(t *testing.T) {
	cases := []struct {
		name, payload, want string
		decode              func(string) error
	}{
		{"sample schema skew", `{"schema":2,"concentrations":{"glucose":5}}`, "schema 2",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"sample schema missing", `{"concentrations":{"glucose":5}}`, "schema 0",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"sample unknown field", `{"schema":1,"concentrations":{"glucose":5},"priority":9}`, "unknown field",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"sample trailing data", `{"schema":1,"concentrations":{"glucose":5}} {"x":1}`, "trailing",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"sample unknown species", `{"schema":1,"concentrations":{"unobtainium":5}}`, "unknown species",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"sample negative concentration", `{"schema":1,"concentrations":{"glucose":-1}}`, "negative",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"sample unphysical concentration", `{"schema":1,"concentrations":{"glucose":1e30}}`, "bound",
			func(p string) error { _, err := UnmarshalSample([]byte(p)); return err }},
		{"result schema skew", `{"schema":7,"readings":[],"panel_seconds":90}`, "schema 7",
			func(p string) error { _, err := UnmarshalResult([]byte(p)); return err }},
		{"result unknown field", `{"schema":1,"readings":[],"panel_seconds":90,"lab":"x"}`, "unknown field",
			func(p string) error { _, err := UnmarshalResult([]byte(p)); return err }},
		{"outcome schema skew", `{"schema":0,"seq":0,"index":0,"shard":0}`, "schema 0",
			func(p string) error { _, err := UnmarshalOutcome([]byte(p)); return err }},
		{"outcome result schema skew", `{"schema":1,"seq":0,"index":0,"shard":0,"result":{"schema":2,"readings":[],"panel_seconds":1},"scheduled_start_s":0,"wall_s":0}`, "schema 2",
			func(p string) error { _, err := UnmarshalOutcome([]byte(p)); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.decode(tc.payload)
			if err == nil {
				t.Fatalf("payload %s must fail to decode", tc.payload)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMarshalRejectsNonFinite: NaN/Inf cannot travel as JSON; the
// validator must say so up front instead of failing deep inside
// json.Marshal.
func TestMarshalRejectsNonFinite(t *testing.T) {
	r := PanelResult{Readings: []Reading{{Target: "glucose", EstimatedMM: math.NaN()}}, PanelSeconds: 90}
	if _, err := MarshalResult(r); err == nil || !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("NaN reading must fail marshal, got %v", err)
	}
	r = PanelResult{PanelSeconds: math.Inf(1)}
	if _, err := MarshalResult(r); err == nil {
		t.Fatal("Inf panel_seconds must fail marshal")
	}
	s := Sample{Concentrations: map[string]float64{"glucose": math.NaN()}}
	if _, err := MarshalSample(s); err == nil {
		t.Fatal("NaN concentration must fail marshal")
	}
	bad := PanelResult{PanelSeconds: math.Inf(-1)}
	if _, err := MarshalOutcome(Outcome{Index: 1, Result: &bad}); err == nil {
		t.Fatal("non-finite result inside an outcome must fail marshal")
	}
}

// FuzzSampleRoundTrip: every sample MarshalSample accepts must decode
// back identically, and arbitrary bytes must never panic the strict
// decoder.
func FuzzSampleRoundTrip(f *testing.F) {
	f.Add("patient-001", "glucose", 5.5, "lactate", 1.0)
	f.Add("", "benzphetamine", 0.8, "", 0.0)
	f.Add("p", "cholesterol", 5e-324, "glutamate", 99999.0)

	f.Fuzz(func(t *testing.T, id, spec1 string, mm1 float64, spec2 string, mm2 float64) {
		// json.Marshal coerces invalid UTF-8 to U+FFFD; byte-exact
		// round-tripping is only promised for valid strings.
		if !utf8.ValidString(id) {
			t.Skip()
		}
		s := Sample{ID: id, Concentrations: map[string]float64{}}
		if spec1 != "" {
			s.Concentrations[spec1] = mm1
		}
		if spec2 != "" {
			s.Concentrations[spec2] = mm2
		}
		data, err := MarshalSample(s)
		if err != nil {
			// Unknown species / non-finite / out-of-bound values are
			// correctly refused; nothing more to check.
			return
		}
		back, err := UnmarshalSample(data)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output %s: %v", data, err)
		}
		if back.ID != s.ID || len(back.Concentrations) != len(s.Concentrations) {
			t.Fatalf("round trip changed the sample: %+v vs %+v", back, s)
		}
		for k, v := range s.Concentrations {
			if math.Float64bits(back.Concentrations[k]) != math.Float64bits(v) {
				t.Fatalf("concentration %q: %g vs %g", k, back.Concentrations[k], v)
			}
		}
	})
}

// FuzzResultRoundTrip drives the lossless-float property from
// arbitrary bit patterns: any finite float64 placed in a result field
// must survive encode→decode bit-for-bit.
func FuzzResultRoundTrip(f *testing.F) {
	f.Add("glucose", uint64(0x3ff0000000000000), uint64(1), uint64(0x7fefffffffffffff), uint64(0x8000000000000001))
	f.Add("", uint64(0), uint64(0x8000000000000000), uint64(0x0010000000000000), uint64(42))

	f.Fuzz(func(t *testing.T, target string, b1, b2, b3, b4 uint64) {
		if !utf8.ValidString(target) {
			t.Skip()
		}
		vals := [4]float64{math.Float64frombits(b1), math.Float64frombits(b2), math.Float64frombits(b3), math.Float64frombits(b4)}
		finite := true
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				finite = false
			}
		}
		r := PanelResult{
			Readings:     []Reading{{Target: target, WE: "we1", Probe: "p", MeasuredMicroAmps: vals[0], EstimatedMM: vals[1], TrueMM: vals[2], PeakMV: vals[3]}},
			PanelSeconds: 90,
		}
		data, err := MarshalResult(r)
		if !finite {
			if err == nil {
				t.Fatalf("non-finite result %v must fail marshal", vals)
			}
			return
		}
		if err != nil {
			t.Fatalf("finite result failed marshal: %v", err)
		}
		back, err := UnmarshalResult(data)
		if err != nil {
			t.Fatalf("decoder rejected its own encoder's output %s: %v", data, err)
		}
		got := back.Readings[0]
		for i, g := range [4]float64{got.MeasuredMicroAmps, got.EstimatedMM, got.TrueMM, got.PeakMV} {
			if math.Float64bits(g) != math.Float64bits(vals[i]) {
				t.Fatalf("field %d: bits %x vs %x", i, math.Float64bits(g), math.Float64bits(vals[i]))
			}
		}
		if got.Target != target {
			t.Fatalf("target: %q vs %q", got.Target, target)
		}
	})
}
