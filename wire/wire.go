// Package wire is the versioned ingest/egress format of the advdiag
// service boundary: the JSON shapes in which samples enter the
// platform and panel results leave it, over HTTP, files, or queues.
//
// Every message carries an explicit schema version. Version 1 is the
// current (and first) schema; decoding rejects any other version, any
// unknown field, and any payload that fails the same validation the
// execution runtime applies (see internal/runtime.ValidateSample), so
// a payload that decodes is a payload the platform will accept.
//
// The format is lossless for float64: encoding/json renders floats in
// their shortest exact form, so Decode(Encode(x)) reproduces every bit
// of every numeric field. The serving layer's end-to-end determinism
// guarantee (client-submitted batches fingerprint-identical to local
// runs) rests on this; FuzzResultRoundTrip and the fingerprint
// property tests in the root package pin it.
//
// Compatibility policy: a schema version is a closed contract — any
// field addition, removal, or change of meaning bumps SchemaVersion,
// and decoding is strict (unknown fields are errors), so version skew
// is always detected at the boundary instead of surfacing later as a
// silently dropped or misread field. Servers answer a version they do
// not speak with HTTP 400 and the wire error message, never a silent
// reinterpretation.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"advdiag/internal/runtime"
)

// SchemaVersion is the wire schema this package encodes and the only
// version it accepts when decoding.
const SchemaVersion = 1

// Sample is one specimen submitted for a panel: the wire twin of
// advdiag.Sample plus the schema version.
type Sample struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// ID labels the sample in results and routes consistent-hash
	// fleets; it carries no other semantics.
	ID string `json:"id,omitempty"`
	// Concentrations maps species name → mM. The runtime validation
	// contract applies: finite, non-negative, physically plausible,
	// registered species.
	Concentrations map[string]float64 `json:"concentrations"`
}

// Reading is one assay result inside a panel result — field-for-field
// the root package's TargetReading.
type Reading struct {
	Target            string  `json:"target"`
	WE                string  `json:"we"`
	Probe             string  `json:"probe"`
	MeasuredMicroAmps float64 `json:"measured_ua"`
	EstimatedMM       float64 `json:"estimated_mm"`
	TrueMM            float64 `json:"true_mm"`
	PeakMV            float64 `json:"peak_mv"`
}

// PanelResult is one full multi-target acquisition on the wire.
type PanelResult struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Readings per target, in schedule order.
	Readings []Reading `json:"readings"`
	// PanelSeconds is the scheduled panel time.
	PanelSeconds float64 `json:"panel_seconds"`
}

// Outcome is the service's per-sample answer: either a result or an
// error, plus the identifiers that tie it back to the submission. It
// is the NDJSON line type of the streaming endpoints and the element
// type of batch responses.
type Outcome struct {
	// Schema is the wire schema version (SchemaVersion).
	Schema int `json:"schema"`
	// Seq is the sample's position within the request that submitted
	// it (line number for streams, array index for batches).
	Seq int `json:"seq"`
	// Index is the fleet-wide submission index that seeded the panel's
	// noise stream, or -1 when the sample was never accepted.
	Index int `json:"index"`
	// ID echoes the sample ID.
	ID string `json:"id,omitempty"`
	// Shard is the fleet shard that ran the panel (-1 when rejected).
	Shard int `json:"shard"`
	// Error is the per-sample failure, empty on success.
	Error string `json:"error,omitempty"`
	// Result is the panel, present only when Error is empty.
	Result *PanelResult `json:"result,omitempty"`
	// ScheduledStartSeconds is the panel's start on its shard's
	// instrument timeline; WallSeconds the simulation cost.
	ScheduledStartSeconds float64 `json:"scheduled_start_s"`
	WallSeconds           float64 `json:"wall_s"`
}

// Validate checks the sample against the schema and the execution
// runtime's input contract, so a sample that decodes is a sample the
// platform will accept.
func (s *Sample) Validate() error {
	if s.Schema != SchemaVersion {
		return fmt.Errorf("wire: sample schema %d, this server speaks %d", s.Schema, SchemaVersion)
	}
	if err := runtime.ValidateSample(s.Concentrations); err != nil {
		return fmt.Errorf("wire: %w", err)
	}
	return nil
}

// Validate checks the result's schema and that every numeric field is
// finite (JSON cannot carry NaN or ±Inf, so encoding would fail late
// and uselessly without this).
func (r *PanelResult) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("wire: result schema %d, this decoder speaks %d", r.Schema, SchemaVersion)
	}
	if !isFinite(r.PanelSeconds) {
		return fmt.Errorf("wire: result panel_seconds %g is not finite", r.PanelSeconds)
	}
	for i, rd := range r.Readings {
		for _, v := range [...]float64{rd.MeasuredMicroAmps, rd.EstimatedMM, rd.TrueMM, rd.PeakMV} {
			if !isFinite(v) {
				return fmt.Errorf("wire: reading %d (%s): non-finite field %g", i, rd.Target, v)
			}
		}
	}
	return nil
}

// Validate checks the outcome's schema and, when a result is present,
// the result.
func (o *Outcome) Validate() error {
	if o.Schema != SchemaVersion {
		return fmt.Errorf("wire: outcome schema %d, this decoder speaks %d", o.Schema, SchemaVersion)
	}
	if o.Result != nil {
		if err := o.Result.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// MarshalSample encodes the sample, stamping the schema version when
// the zero value was left in place and validating first.
func MarshalSample(s Sample) ([]byte, error) {
	if s.Schema == 0 {
		s.Schema = SchemaVersion
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// UnmarshalSample strictly decodes one sample: unknown fields, a
// mismatched schema version, and concentrations the runtime would
// refuse are all errors.
func UnmarshalSample(data []byte) (Sample, error) {
	var s Sample
	if err := strictUnmarshal(data, &s); err != nil {
		return Sample{}, fmt.Errorf("wire: sample: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Sample{}, err
	}
	return s, nil
}

// MarshalResult encodes the result, stamping the schema version when
// the zero value was left in place and validating first.
func MarshalResult(r PanelResult) ([]byte, error) {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// UnmarshalResult strictly decodes one panel result.
func UnmarshalResult(data []byte) (PanelResult, error) {
	var r PanelResult
	if err := strictUnmarshal(data, &r); err != nil {
		return PanelResult{}, fmt.Errorf("wire: result: %w", err)
	}
	if err := r.Validate(); err != nil {
		return PanelResult{}, err
	}
	return r, nil
}

// MarshalOutcome encodes one outcome, stamping schema versions left at
// zero (the outcome's and its result's) and validating first.
func MarshalOutcome(o Outcome) ([]byte, error) {
	if o.Schema == 0 {
		o.Schema = SchemaVersion
	}
	if o.Result != nil && o.Result.Schema == 0 {
		cp := *o.Result
		cp.Schema = SchemaVersion
		o.Result = &cp
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(o)
}

// UnmarshalOutcome strictly decodes one outcome (one NDJSON line of a
// streaming response, or one element of a batch response).
func UnmarshalOutcome(data []byte) (Outcome, error) {
	var o Outcome
	if err := strictUnmarshal(data, &o); err != nil {
		return Outcome{}, fmt.Errorf("wire: outcome: %w", err)
	}
	if err := o.Validate(); err != nil {
		return Outcome{}, err
	}
	return o, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// garbage — the wire contract is exact, not "ignore what you don't
// know" (schema evolution happens by version bump, never by silently
// dropped fields).
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second Decode must see EOF: NDJSON framing hands us exactly
	// one value per line.
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
