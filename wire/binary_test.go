package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestBinarySampleRoundTrip(t *testing.T) {
	s := Sample{ID: "patient-007", Concentrations: map[string]float64{"glucose": 5.5, "lactate": 1.25}}
	data, err := MarshalSampleBinary(s) // zero Schema is stamped
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSampleBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.ID != s.ID || !reflect.DeepEqual(back.Concentrations, s.Concentrations) {
		t.Fatalf("round trip: %+v", back)
	}
	// Equal samples encode to equal bytes (sorted key order).
	again, err := MarshalSampleBinary(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("binary sample encoding is not canonical")
	}
}

// TestBinaryOutcomeRoundTripExact: decode(encode(x)) through the binary
// codec must reproduce every bit of every field across the double range
// — the same lossless property TestResultRoundTripExact pins for JSON.
func TestBinaryOutcomeRoundTripExact(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		res := randResult(seed, int(seed%7))
		o := Outcome{Seq: int(seed), Index: int(seed) * 3, ID: "p-µ/1", Shard: 2, Result: &res,
			ScheduledStartSeconds: 415 * float64(seed), WallSeconds: 0.25}
		data, err := MarshalOutcomeBinary(o)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := UnmarshalOutcomeBinary(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		o.Schema = SchemaVersion
		if !reflect.DeepEqual(o, back) {
			t.Fatalf("seed %d: round trip changed the outcome:\n%+v\nvs\n%+v", seed, o, back)
		}
		for i := range res.Readings {
			for f, pair := range map[string][2]float64{
				"measured": {res.Readings[i].MeasuredMicroAmps, back.Result.Readings[i].MeasuredMicroAmps},
				"est":      {res.Readings[i].EstimatedMM, back.Result.Readings[i].EstimatedMM},
				"true":     {res.Readings[i].TrueMM, back.Result.Readings[i].TrueMM},
				"peak":     {res.Readings[i].PeakMV, back.Result.Readings[i].PeakMV},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("seed %d reading %d %s: bits %x vs %x", seed, i, f, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
				}
			}
		}
	}

	// Error outcomes carry no result; negative indices survive.
	e := Outcome{Seq: 4, Index: -1, Shard: -1, Error: "fleet saturated"}
	data, err := MarshalOutcomeBinary(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalOutcomeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Error != e.Error || back.Result != nil || back.Index != -1 || back.Shard != -1 {
		t.Fatalf("error outcome round trip: %+v", back)
	}
}

// TestBinaryStrictDecoding pins the binary boundary's rejections:
// version skew, foreign message kinds, truncation at every byte,
// trailing bytes, and frame-length lies.
func TestBinaryStrictDecoding(t *testing.T) {
	s := Sample{Concentrations: map[string]float64{"glucose": 5}}
	good, err := MarshalSampleBinary(s)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(mut func([]byte) []byte) []byte {
		cp := append([]byte(nil), good...)
		return mut(cp)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"version skew", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], 9)
			return b
		}), "schema 9"},
		{"foreign kind", mutate(func(b []byte) []byte {
			b[6] = binKindOutcome
			return b
		}), "kind"},
		{"unknown kind", mutate(func(b []byte) []byte {
			b[6] = 0xEE
			return b
		}), "kind"},
		{"length lie", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b, uint32(len(b)+7))
			return b
		}), "length"},
		{"trailing bytes", mutate(func(b []byte) []byte {
			b = append(b, 0xAB)
			binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
			return b
		}), "trailing"},
		{"empty", nil, "shorter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalSampleBinary(tc.data)
			if err == nil {
				t.Fatal("mutated frame must fail to decode")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Truncation at every prefix must error (never panic, never
	// succeed) once the frame length is made consistent again.
	for cut := 5; cut < len(good); cut++ {
		frame := append([]byte(nil), good[:cut]...)
		binary.LittleEndian.PutUint32(frame, uint32(cut-4))
		if _, err := UnmarshalSampleBinary(frame); err == nil {
			t.Fatalf("truncation to %d bytes must fail", cut)
		}
	}

	// Non-canonical key order is refused: every sample has exactly one
	// valid binary encoding.
	buf0 := beginFrame(binKindSample, 64)
	buf0 = appendBinString(buf0, "")
	buf0 = binary.LittleEndian.AppendUint32(buf0, 2)
	buf0 = appendBinString(buf0, "lactate")
	buf0 = appendBinFloat(buf0, 1)
	buf0 = appendBinString(buf0, "glucose")
	buf0 = appendBinFloat(buf0, 5)
	if _, err := UnmarshalSampleBinary(endFrame(buf0)); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Fatalf("out-of-order keys must fail binary decode, got %v", err)
	}

	// Runtime validation applies to decoded samples exactly as it does
	// to JSON ones.
	bad := Sample{Schema: SchemaVersion, Concentrations: map[string]float64{"unobtainium": 5}}
	buf := beginFrame(binKindSample, 64)
	buf = appendBinString(buf, bad.ID)
	buf = appendBinConcs(buf, bad.Concentrations)
	if _, err := UnmarshalSampleBinary(endFrame(buf)); err == nil || !strings.Contains(err.Error(), "unknown species") {
		t.Fatalf("unknown species must fail binary decode, got %v", err)
	}
}

// TestReadBinaryFrame pins the stream framing: frames reassemble one by
// one, a clean end is io.EOF, a mid-frame end is a truncation error,
// and the size bound rejects oversized payloads before allocation.
func TestReadBinaryFrame(t *testing.T) {
	s1, err := MarshalSampleBinary(Sample{ID: "a", Concentrations: map[string]float64{"glucose": 5}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := MarshalSampleBinary(Sample{ID: "b", Concentrations: map[string]float64{"lactate": 1}})
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(append(append([]byte(nil), s1...), s2...))
	f1, err := ReadBinaryFrame(r, 1<<20)
	if err != nil || !bytes.Equal(f1, s1) {
		t.Fatalf("frame 1: %v", err)
	}
	f2, err := ReadBinaryFrame(r, 1<<20)
	if err != nil || !bytes.Equal(f2, s2) {
		t.Fatalf("frame 2: %v", err)
	}
	if _, err := ReadBinaryFrame(r, 1<<20); err != io.EOF {
		t.Fatalf("clean stream end must be io.EOF, got %v", err)
	}

	if _, err := ReadBinaryFrame(bytes.NewReader(s1[:len(s1)-3]), 1<<20); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("mid-frame end must be a truncation error, got %v", err)
	}
	if _, err := ReadBinaryFrame(bytes.NewReader(s1[:2]), 1<<20); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("mid-header end must be a truncation error, got %v", err)
	}
	if _, err := ReadBinaryFrame(bytes.NewReader(s1), 8); err == nil || !strings.Contains(err.Error(), "bound") {
		t.Fatalf("oversized frame must be refused, got %v", err)
	}
}

// FuzzBinaryRoundTrip: arbitrary bytes must never panic the strict
// binary decoder, and everything it does accept must re-encode to the
// identical frame (the encoding is canonical).
func FuzzBinaryRoundTrip(f *testing.F) {
	if s, err := MarshalSampleBinary(Sample{ID: "p", Concentrations: map[string]float64{"glucose": 5.5}}); err == nil {
		f.Add(s)
	}
	res := randResult(7, 3)
	if o, err := MarshalOutcomeBinary(Outcome{Seq: 1, Index: 2, ID: "x", Shard: 0, Result: &res}); err == nil {
		f.Add(o)
	}
	if e, err := MarshalOutcomeBinary(Outcome{Index: -1, Shard: -1, Error: "boom"}); err == nil {
		f.Add(e)
	}
	f.Add([]byte{3, 0, 0, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := UnmarshalSampleBinary(data); err == nil {
			if !utf8.ValidString(s.ID) {
				return // invalid UTF-8 re-encodes byte-identically anyway, but stay conservative
			}
			again, err := MarshalSampleBinary(s)
			if err != nil {
				t.Fatalf("encoder rejected its own decoder's output: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("sample re-encode differs:\n%x\nvs\n%x", data, again)
			}
		}
		if o, err := UnmarshalOutcomeBinary(data); err == nil {
			again, err := MarshalOutcomeBinary(o)
			if err != nil {
				t.Fatalf("encoder rejected its own decoder's output: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("outcome re-encode differs:\n%x\nvs\n%x", data, again)
			}
		}
	})
}
