package advdiag

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"

	"advdiag/internal/mathx"
)

// ErrNoShard is returned by routers (and therefore by Fleet.Submit)
// when no shard can serve a sample — e.g. the affinity router saw a
// panel type no shard's platform measures.
var ErrNoShard = errors.New("advdiag: no shard can serve this sample")

// ShardInfo is the read-only snapshot of one shard a Router sees when
// placing a sample.
type ShardInfo struct {
	// Index identifies the shard (0-based, stable for the Fleet's
	// lifetime).
	Index int
	// Targets are the sorted species names the shard's platform panel
	// measures.
	Targets []string
	// QueueLen and QueueCap describe the shard's bounded input queue;
	// InFlight counts panels currently executing on its workers.
	QueueLen, QueueCap, InFlight int
	// Load is the shard's fractional occupancy — accepted-but-
	// undelivered samples over (QueueCap+workers). Usually in [0,1],
	// but it can transiently exceed 1 while accepted Submits are still
	// blocked on the queue handoff. Routers must tolerate degenerate
	// values (>1, NaN, ±Inf, negatives) without panicking — FuzzRouter
	// feeds them on purpose.
	Load float64
}

// Router places one sample onto one shard. Route returns the chosen
// shard index, or an error when no shard qualifies; it must never
// panic, whatever the sample or the shard view look like. Routers are
// called under the Fleet's submission lock and must not call back into
// the Fleet.
//
// Three policies are built in:
//
//	AffinityRouter{}    panel-type affinity — the shard whose panel
//	                    covers the most of the sample's species
//	LeastLoadedRouter{} lowest fractional occupancy
//	HashRouter{}        consistent-hash by Sample.ID — the same
//	                    patient always lands on the same shard, and
//	                    resizing the fleet moves only ~1/N of keys
type Router interface {
	Route(s Sample, shards []ShardInfo) (int, error)
}

// safeLoad maps degenerate load values (NaN, -Inf) to +Inf so a
// corrupted or fuzzed snapshot can only make a shard less attractive,
// never crash a comparison.
func safeLoad(l float64) float64 {
	if math.IsNaN(l) || l < 0 {
		return math.Inf(1)
	}
	return l
}

// LeastLoadedRouter routes every sample to the shard with the lowest
// fractional occupancy, breaking ties toward the lowest index. The
// zero value is ready to use.
type LeastLoadedRouter struct{}

// Route implements Router.
func (LeastLoadedRouter) Route(_ Sample, shards []ShardInfo) (int, error) {
	if len(shards) == 0 {
		return 0, ErrNoShard
	}
	best, bestLoad := -1, math.Inf(1)
	for _, sh := range shards {
		if l := safeLoad(sh.Load); best == -1 || l < bestLoad {
			best, bestLoad = sh.Index, l
		}
	}
	return best, nil
}

// AffinityRouter routes by panel-type affinity: the shard whose target
// panel covers the largest number of the sample's species wins; among
// equally-covering shards the least loaded (then lowest index) wins.
// A sample with species no shard measures at all — an unknown panel
// type — is rejected with ErrNoShard. An empty sample (no
// concentrations) matches every shard and falls back to least-loaded.
// The zero value is ready to use.
type AffinityRouter struct{}

// Route implements Router.
func (AffinityRouter) Route(s Sample, shards []ShardInfo) (int, error) {
	if len(shards) == 0 {
		return 0, ErrNoShard
	}
	if len(s.Concentrations) == 0 {
		return LeastLoadedRouter{}.Route(s, shards)
	}
	best, bestCover, bestLoad := -1, 0, math.Inf(1)
	for _, sh := range shards {
		cover := 0
		for _, t := range sh.Targets {
			if _, ok := s.Concentrations[t]; ok {
				cover++
			}
		}
		if cover == 0 {
			continue
		}
		l := safeLoad(sh.Load)
		if cover > bestCover || (cover == bestCover && l < bestLoad) {
			best, bestCover, bestLoad = sh.Index, cover, l
		}
	}
	if best == -1 {
		return 0, fmt.Errorf("%w: none of %d shards measures any of the sample's species", ErrNoShard, len(shards))
	}
	return best, nil
}

// hashVnodes is the number of virtual nodes per shard on the hash
// ring; enough for an even spread at small shard counts without making
// ring construction noticeable.
const hashVnodes = 64

// mix64 finalizes a raw FNV hash with the splitmix64 avalanche
// (mathx.Mix64). FNV-1a over short, similar strings ("patient-001",
// "patient-002", …) leaves the high bits strongly correlated — without
// this step every key lands in one narrow arc of the ring and a single
// shard takes all the traffic.
func mix64(z uint64) uint64 { return mathx.Mix64(z) }

// HashRouter is a consistent-hash-by-patient router: Sample.ID hashes
// onto a ring of virtual nodes, so the same ID always routes to the
// same shard (stable patient→instrument affinity, e.g. for longitudinal
// drift tracking), and changing the shard set remaps only ~1/N of IDs.
// Virtual nodes are named by the shard's real Index, so the ring for a
// view is a function of which shards are in it, not how many: adding a
// shard steals keys only for the newcomer, and removing one (by
// RemoveShard or quarantine) reassigns only the keys that sat on its
// virtual nodes — every other key keeps its shard exactly. The zero
// value is ready to use; rings are built lazily per view signature and
// cached.
type HashRouter struct {
	mu    sync.Mutex
	rings map[string]hashRing
}

// hashRing is a sorted list of (point, shard-index) pairs.
type hashRing struct {
	points []uint64
	shards []int
}

// ringSignature keys the ring cache by the view's shard-index set.
func ringSignature(shards []ShardInfo) string {
	var b strings.Builder
	for _, sh := range shards {
		fmt.Fprintf(&b, "%d,", sh.Index)
	}
	return b.String()
}

// buildRing hashes hashVnodes virtual nodes per shard, named by the
// shard's real index — the property that keeps remapping minimal
// across topology changes.
func buildRing(indices []int) hashRing {
	type node struct {
		point uint64
		shard int
	}
	nodes := make([]node, 0, len(indices)*hashVnodes)
	for _, s := range indices {
		for v := 0; v < hashVnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "shard-%d-vnode-%d", s, v)
			nodes = append(nodes, node{point: mix64(h.Sum64()), shard: s})
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].point < nodes[j].point })
	r := hashRing{points: make([]uint64, len(nodes)), shards: make([]int, len(nodes))}
	for i, nd := range nodes {
		r.points[i] = nd.point
		r.shards[i] = nd.shard
	}
	return r
}

// ring returns the cached ring for the view, building it on first use.
func (hr *HashRouter) ring(shards []ShardInfo) hashRing {
	sig := ringSignature(shards)
	hr.mu.Lock()
	defer hr.mu.Unlock()
	if hr.rings == nil {
		hr.rings = map[string]hashRing{}
	}
	r, ok := hr.rings[sig]
	if !ok {
		indices := make([]int, len(shards))
		for i, sh := range shards {
			indices[i] = sh.Index
		}
		r = buildRing(indices)
		hr.rings[sig] = r
	}
	return r
}

// Route implements Router. The returned index is the chosen shard's
// real Index — views need not be dense, so the router keeps working
// across quarantines and runtime Add/RemoveShard.
func (hr *HashRouter) Route(s Sample, shards []ShardInfo) (int, error) {
	n := len(shards)
	if n == 0 {
		return 0, ErrNoShard
	}
	if n == 1 {
		return shards[0].Index, nil
	}
	h := fnv.New64a()
	h.Write([]byte(s.ID))
	key := mix64(h.Sum64())
	r := hr.ring(shards)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[i], nil
}
