package advdiag

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"advdiag/internal/core"
	rt "advdiag/internal/runtime"
)

// MaxSampleConcentrationMM bounds accepted sample concentrations (see
// runtime.ValidateSample): pure water is 5.5e4 mM, so no aqueous sample
// can reach this.
const MaxSampleConcentrationMM = rt.MaxSampleConcentrationMM

// Platform is a synthesized multi-target sensing platform: the outcome
// of the paper's design-space exploration, ready to run full panels.
type Platform struct {
	inner   *core.Platform
	seed    uint64
	explore core.ExploreOptions
	// exec is the shared panel-execution engine (internal/runtime): it
	// owns sample validation, seeding, the calibration cache and panel
	// assembly. RunPanel, the Lab and the Fleet all delegate to it.
	exec *rt.Executor
}

// PlatformOption customizes platform design.
type PlatformOption func(*core.Requirements, *Platform)

// WithInterferents declares matrix species (e.g. "dopamine") present in
// every sample.
func WithInterferents(names ...string) PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.Interferents = append(r.Interferents, names...) }
}

// WithSamplePeriod requires one full panel at least every given number
// of seconds.
func WithSamplePeriod(seconds float64) PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.SamplePeriod = seconds }
}

// WithCDSBlank adds an enzyme-free working electrode for correlated
// double sampling.
func WithCDSBlank() PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.WithBlankCDS = true }
}

// WithPlatformSeed fixes the noise seed used by panel runs.
func WithPlatformSeed(seed uint64) PlatformOption {
	return func(_ *core.Requirements, p *Platform) { p.seed = seed }
}

// WithExploreWorkers sets the design-space exploration concurrency; 0
// (the default) uses one worker per available CPU. The chosen design
// is identical at any worker count — only the wall-clock time changes.
func WithExploreWorkers(n int) PlatformOption {
	return func(_ *core.Requirements, p *Platform) { p.explore.Workers = n }
}

// WithExploreBudget caps how many design points the exploration
// evaluates (in deterministic enumeration order); 0 explores the whole
// space.
func WithExploreBudget(n int) PlatformOption {
	return func(_ *core.Requirements, p *Platform) { p.explore.Budget = n }
}

// WithReplicas replicates the full sensor set k times (the paper's §II
// sensor array): replicate readings are averaged, cutting uncorrelated
// blank noise by √k at the cost of k× electrode area and panel time.
func WithReplicas(k int) PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.Replicas = k }
}

// DesignPlatform explores the design space for the given targets and
// synthesizes the cheapest feasible candidate — the workflow of the
// paper's §III platform example.
func DesignPlatform(targets []string, opts ...PlatformOption) (*Platform, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("advdiag: a platform needs at least one target")
	}
	req := core.Requirements{}
	for _, t := range targets {
		req.Targets = append(req.Targets, core.TargetSpec{Species: t})
	}
	p := &Platform{seed: 1}
	for _, opt := range opts {
		opt(&req, p)
	}
	best, err := core.BestWith(req, p.explore)
	if err != nil {
		return nil, err
	}
	inner, err := core.Synthesize(best)
	if err != nil {
		return nil, err
	}
	p.inner = inner
	p.exec = rt.NewExecutor(inner, p.seed)
	return p, nil
}

// Describe returns the platform's block inventory and wiring as text
// (the paper's Fig. 2/Fig. 4 content).
func (p *Platform) Describe() string { return p.inner.Design.ASCII() }

// DOT returns the Graphviz rendering of the platform netlist.
func (p *Platform) DOT() string { return p.inner.Design.DOT() }

// Schedule returns the panel acquisition timeline.
func (p *Platform) Schedule() string { return p.inner.Plan.String() }

// WorkingElectrodes lists the WE names in schedule order.
func (p *Platform) WorkingElectrodes() []string {
	var out []string
	for _, ep := range p.inner.Candidate.Electrodes {
		out = append(out, ep.Name)
	}
	return out
}

// Targets returns the sorted species names this platform's panel
// measures (blank electrodes excluded). The Fleet's affinity router
// matches samples against it.
func (p *Platform) Targets() []string { return p.exec.Targets() }

// MonitorTargets returns the sorted species names this platform can
// continuously monitor: the subset of Targets served by a
// chronoamperometric (oxidase) electrode. Monitor campaigns against
// any other target fail inside their outcome.
func (p *Platform) MonitorTargets() []string { return p.exec.MonitorTargets() }

// CostSummary reports the platform budget.
func (p *Platform) CostSummary() string {
	c := p.inner.Candidate
	return fmt.Sprintf("%s; panel %.0f s, %.1f samples/h", c.Budget, c.PanelTime, c.Throughput())
}

// Violations lists advisory warnings from the design evaluation.
func (p *Platform) Violations() []string {
	var out []string
	for _, v := range p.inner.Candidate.Violations {
		out = append(out, v.String())
	}
	return out
}

// TargetReading is one panel result.
type TargetReading struct {
	// Target is the molecule.
	Target string
	// WE names the electrode that produced the reading.
	WE string
	// Probe is the assay used.
	Probe string
	// MeasuredMicroAmps is the raw signal (steady-state current for
	// chronoamperometry, baseline-corrected peak height for CV).
	MeasuredMicroAmps float64
	// EstimatedMM is the concentration estimate in mM from the factory
	// calibration.
	EstimatedMM float64
	// TrueMM is the sample's actual concentration (known in simulation).
	TrueMM float64
	// PeakMV is the detected peak potential for CV readings (0 for CA).
	PeakMV float64
}

// String renders the reading.
func (r TargetReading) String() string {
	s := fmt.Sprintf("%-14s %-5s %-18s  %8.4g µA → %7.3g mM (true %.3g mM)",
		r.Target, r.WE, r.Probe, r.MeasuredMicroAmps, r.EstimatedMM, r.TrueMM)
	if r.PeakMV != 0 {
		s += fmt.Sprintf("  [peak %+.0f mV]", r.PeakMV)
	}
	return s
}

// PanelResult is one full multi-target acquisition.
type PanelResult struct {
	// Readings per target, in schedule order.
	Readings []TargetReading
	// PanelSeconds is the scheduled panel time.
	PanelSeconds float64
}

// panelResult converts the runtime package's panel into the public
// type. runtime.Reading and TargetReading are field-for-field
// identical, so the conversion cannot change any bit the Fingerprint
// hashes.
func panelResult(p rt.Panel) PanelResult {
	out := PanelResult{PanelSeconds: p.PanelSeconds}
	if len(p.Readings) > 0 {
		out.Readings = make([]TargetReading, len(p.Readings))
		for i, r := range p.Readings {
			out.Readings[i] = TargetReading(r)
		}
	}
	return out
}

// String renders the panel like a report table.
func (pr PanelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Panel (%.0f s):\n", pr.PanelSeconds)
	for _, r := range pr.Readings {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// Fingerprint hashes the result exactly: every label and the raw
// float64 bit pattern of every numeric field feed an FNV-1a stream.
// Equal fingerprints mean byte-identical results — the determinism
// tests and cmd/labbench use this to prove panel results do not depend
// on the Lab worker count or the Fleet shard count.
func (pr PanelResult) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	str := func(s string) { word(uint64(len(s))); h.Write([]byte(s)) }
	f(pr.PanelSeconds)
	word(uint64(len(pr.Readings)))
	for _, r := range pr.Readings {
		str(r.Target)
		str(r.WE)
		str(r.Probe)
		f(r.MeasuredMicroAmps)
		f(r.EstimatedMM)
		f(r.TrueMM)
		f(r.PeakMV)
	}
	return h.Sum64()
}

// RunPanel measures one sample: sample maps target names to
// concentrations in mM. Every chamber receives the same sample (the
// platform's fluidics distribute it). Concentrations must be finite,
// non-negative and below MaxSampleConcentrationMM, and every species
// must be registered; anything else is an error before the instrument
// is touched. For batches or streaming use a Lab; for multi-platform
// dispatch use a Fleet — both run the same execution engine and share
// this platform's calibration cache.
func (p *Platform) RunPanel(sample map[string]float64) (PanelResult, error) {
	res, err := p.exec.Run(sample, p.seed)
	if err != nil {
		return PanelResult{}, err
	}
	return panelResult(res), nil
}

// ExploreDesigns runs the full design-space exploration and returns a
// human-readable summary line per candidate (feasible first) plus the
// Pareto-front subset. Individual design points that fail to evaluate
// do not abort the exploration: the surviving candidates are returned
// together with the joined per-choice failures (each a
// *core.ChoiceError), so callers with a non-nil error still get every
// healthy design.
func ExploreDesigns(targets []string, opts ...PlatformOption) (all []string, pareto []string, err error) {
	req := core.Requirements{}
	for _, t := range targets {
		req.Targets = append(req.Targets, core.TargetSpec{Species: t})
	}
	p := &Platform{}
	for _, opt := range opts {
		opt(&req, p)
	}
	cands, err := core.ExploreWith(req, p.explore)
	for _, c := range cands {
		all = append(all, c.Summary())
	}
	for _, c := range core.ParetoFront(cands) {
		pareto = append(pareto, c.Summary())
	}
	return all, pareto, err
}
