package advdiag

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"advdiag/internal/analysis"
	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// Platform is a synthesized multi-target sensing platform: the outcome
// of the paper's design-space exploration, ready to run full panels.
type Platform struct {
	inner   *core.Platform
	seed    uint64
	explore core.ExploreOptions
	// calib memoizes the per-electrode calibration state shared by
	// RunPanel and every Lab over this platform.
	calib *calibCache
}

// PlatformOption customizes platform design.
type PlatformOption func(*core.Requirements, *Platform)

// WithInterferents declares matrix species (e.g. "dopamine") present in
// every sample.
func WithInterferents(names ...string) PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.Interferents = append(r.Interferents, names...) }
}

// WithSamplePeriod requires one full panel at least every given number
// of seconds.
func WithSamplePeriod(seconds float64) PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.SamplePeriod = seconds }
}

// WithCDSBlank adds an enzyme-free working electrode for correlated
// double sampling.
func WithCDSBlank() PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.WithBlankCDS = true }
}

// WithPlatformSeed fixes the noise seed used by panel runs.
func WithPlatformSeed(seed uint64) PlatformOption {
	return func(_ *core.Requirements, p *Platform) { p.seed = seed }
}

// WithExploreWorkers sets the design-space exploration concurrency; 0
// (the default) uses one worker per available CPU. The chosen design
// is identical at any worker count — only the wall-clock time changes.
func WithExploreWorkers(n int) PlatformOption {
	return func(_ *core.Requirements, p *Platform) { p.explore.Workers = n }
}

// WithExploreBudget caps how many design points the exploration
// evaluates (in deterministic enumeration order); 0 explores the whole
// space.
func WithExploreBudget(n int) PlatformOption {
	return func(_ *core.Requirements, p *Platform) { p.explore.Budget = n }
}

// WithReplicas replicates the full sensor set k times (the paper's §II
// sensor array): replicate readings are averaged, cutting uncorrelated
// blank noise by √k at the cost of k× electrode area and panel time.
func WithReplicas(k int) PlatformOption {
	return func(r *core.Requirements, _ *Platform) { r.Replicas = k }
}

// DesignPlatform explores the design space for the given targets and
// synthesizes the cheapest feasible candidate — the workflow of the
// paper's §III platform example.
func DesignPlatform(targets []string, opts ...PlatformOption) (*Platform, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("advdiag: a platform needs at least one target")
	}
	req := core.Requirements{}
	for _, t := range targets {
		req.Targets = append(req.Targets, core.TargetSpec{Species: t})
	}
	p := &Platform{seed: 1}
	for _, opt := range opts {
		opt(&req, p)
	}
	best, err := core.BestWith(req, p.explore)
	if err != nil {
		return nil, err
	}
	inner, err := core.Synthesize(best)
	if err != nil {
		return nil, err
	}
	p.inner = inner
	p.calib = newCalibCache(p)
	return p, nil
}

// Describe returns the platform's block inventory and wiring as text
// (the paper's Fig. 2/Fig. 4 content).
func (p *Platform) Describe() string { return p.inner.Design.ASCII() }

// DOT returns the Graphviz rendering of the platform netlist.
func (p *Platform) DOT() string { return p.inner.Design.DOT() }

// Schedule returns the panel acquisition timeline.
func (p *Platform) Schedule() string { return p.inner.Plan.String() }

// WorkingElectrodes lists the WE names in schedule order.
func (p *Platform) WorkingElectrodes() []string {
	var out []string
	for _, ep := range p.inner.Candidate.Electrodes {
		out = append(out, ep.Name)
	}
	return out
}

// CostSummary reports the platform budget.
func (p *Platform) CostSummary() string {
	c := p.inner.Candidate
	return fmt.Sprintf("%s; panel %.0f s, %.1f samples/h", c.Budget, c.PanelTime, c.Throughput())
}

// Violations lists advisory warnings from the design evaluation.
func (p *Platform) Violations() []string {
	var out []string
	for _, v := range p.inner.Candidate.Violations {
		out = append(out, v.String())
	}
	return out
}

// TargetReading is one panel result.
type TargetReading struct {
	// Target is the molecule.
	Target string
	// WE names the electrode that produced the reading.
	WE string
	// Probe is the assay used.
	Probe string
	// MeasuredMicroAmps is the raw signal (steady-state current for
	// chronoamperometry, baseline-corrected peak height for CV).
	MeasuredMicroAmps float64
	// EstimatedMM is the concentration estimate in mM from the factory
	// calibration.
	EstimatedMM float64
	// TrueMM is the sample's actual concentration (known in simulation).
	TrueMM float64
	// PeakMV is the detected peak potential for CV readings (0 for CA).
	PeakMV float64
}

// String renders the reading.
func (r TargetReading) String() string {
	s := fmt.Sprintf("%-14s %-5s %-18s  %8.4g µA → %7.3g mM (true %.3g mM)",
		r.Target, r.WE, r.Probe, r.MeasuredMicroAmps, r.EstimatedMM, r.TrueMM)
	if r.PeakMV != 0 {
		s += fmt.Sprintf("  [peak %+.0f mV]", r.PeakMV)
	}
	return s
}

// PanelResult is one full multi-target acquisition.
type PanelResult struct {
	// Readings per target, in schedule order.
	Readings []TargetReading
	// PanelSeconds is the scheduled panel time.
	PanelSeconds float64
}

// String renders the panel like a report table.
func (pr PanelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Panel (%.0f s):\n", pr.PanelSeconds)
	for _, r := range pr.Readings {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	return b.String()
}

// Fingerprint hashes the result exactly: every label and the raw
// float64 bit pattern of every numeric field feed an FNV-1a stream.
// Equal fingerprints mean byte-identical results — the determinism
// tests and cmd/labbench use this to prove panel results do not depend
// on the Lab worker count.
func (pr PanelResult) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	f := func(v float64) { word(math.Float64bits(v)) }
	str := func(s string) { word(uint64(len(s))); h.Write([]byte(s)) }
	f(pr.PanelSeconds)
	word(uint64(len(pr.Readings)))
	for _, r := range pr.Readings {
		str(r.Target)
		str(r.WE)
		str(r.Probe)
		f(r.MeasuredMicroAmps)
		f(r.EstimatedMM)
		f(r.TrueMM)
		f(r.PeakMV)
	}
	return h.Sum64()
}

// RunPanel measures one sample: sample maps target names to
// concentrations in mM. Every chamber receives the same sample (the
// platform's fluidics distribute it). Concentrations must be finite,
// non-negative and below MaxSampleConcentrationMM, and every species
// must be registered; anything else is an error before the instrument
// is touched. For batches or streaming
// use a Lab, which runs panels concurrently and shares this platform's
// calibration cache.
func (p *Platform) RunPanel(sample map[string]float64) (PanelResult, error) {
	return p.runPanelSeeded(sample, p.seed)
}

// runPanelSeeded is the shared panel executor behind RunPanel and the
// Lab: one measurement engine (and so one noise stream) per call, all
// calibration state served from the platform cache. Two calls with the
// same sample and seed produce byte-identical results on any goroutine.
func (p *Platform) runPanelSeeded(sample map[string]float64, seed uint64) (PanelResult, error) {
	if err := validateSample(sample); err != nil {
		return PanelResult{}, err
	}
	cand := p.inner.Candidate

	// Build per-chamber solutions holding the full sample.
	names := make([]string, 0, len(sample))
	for name := range sample {
		names = append(names, name)
	}
	sort.Strings(names)
	solutions := map[string]*cell.Solution{}
	for _, ch := range cand.Chambers {
		sol := cell.NewSolution()
		for _, name := range names {
			sol.Set(name, phys.MilliMolar(sample[name]))
		}
		solutions[ch] = sol
	}
	c, err := p.inner.Instantiate(solutions)
	if err != nil {
		return PanelResult{}, err
	}
	eng, err := measure.NewEngine(c, seed)
	if err != nil {
		return PanelResult{}, err
	}

	var out PanelResult
	out.PanelSeconds = cand.PanelTime
	for _, ep := range cand.Electrodes {
		if ep.Blank {
			continue
		}
		cal, err := p.calib.forElectrode(ep)
		if err != nil {
			return PanelResult{}, err
		}
		chain, err := p.inner.ChainFor(ep.Name, eng.RNG())
		if err != nil {
			return PanelResult{}, err
		}
		switch ep.Technique {
		case enzyme.Chronoamperometry:
			// Two-phase protocol: buffer baseline, then the sample. The
			// baseline-subtracted step cancels run offsets and direct-
			// oxidizer interferent currents.
			res, err := eng.RunCA(ep.Name, chain, measure.Chronoamperometry{
				Duration:      ep.ProtocolTime,
				BaselinePhase: core.CABaselinePhase,
			})
			if err != nil {
				return PanelResult{}, err
			}
			a := ep.Assays[0]
			step := res.StepCurrent()
			est := cal.invertCA(step)
			out.Readings = append(out.Readings, TargetReading{
				Target:            a.Target.Name,
				WE:                ep.Name,
				Probe:             a.Probe,
				MeasuredMicroAmps: step.MicroAmps(),
				EstimatedMM:       est.MilliMolar(),
				TrueMM:            sample[a.Target.Name],
			})
		case enzyme.CyclicVoltammetry:
			// The cached basis replaces the per-sample diffusion
			// simulations: the linearity of the diffusion problem makes
			// scaled unit flux traces exact, and it is what makes panel
			// throughput independent of the solver's cost.
			res, err := eng.RunCVWithBasis(ep.Name, chain, cal.proto, cal.basis)
			if err != nil {
				return PanelResult{}, err
			}
			// Quantify by template decomposition (exact for the linear
			// diffusion problem) against the cached unit templates;
			// report the detected peak potential when the peak is
			// prominent enough to stand alone.
			fit, err := analysis.FitCVComponents(res.Voltammogram, cal.templates, cal.nuisances...)
			if err != nil {
				return PanelResult{}, fmt.Errorf("advdiag: %s: %w", ep.Name, err)
			}
			for _, a := range ep.Assays {
				b := a.Binding
				amp := fit.Amplitudes[a.Target.Name]
				height := amp * cal.unitPeak[a.Target.Name]
				est := invertEffective(b, amp)
				peakMV := 0.0
				if pk, err := analysis.PeakNear(res.Voltammogram, b.PeakPotential, phys.MilliVolts(80), 0); err == nil {
					peakMV = pk.Potential.MilliVolts()
				}
				out.Readings = append(out.Readings, TargetReading{
					Target:            a.Target.Name,
					WE:                ep.Name,
					Probe:             a.Probe,
					MeasuredMicroAmps: height * 1e6,
					EstimatedMM:       est.MilliMolar(),
					TrueMM:            sample[a.Target.Name],
					PeakMV:            peakMV,
				})
			}
		}
	}
	out.Readings = mergeReplicas(out.Readings)
	return out, nil
}

// mergeReplicas averages replicate readings of the same target (array
// platforms measure each target on several electrodes). Single readings
// pass through unchanged.
func mergeReplicas(in []TargetReading) []TargetReading {
	counts := map[string]int{}
	for _, r := range in {
		counts[r.Target]++
	}
	merged := map[string]*TargetReading{}
	var order []string
	for _, r := range in {
		if counts[r.Target] == 1 {
			continue
		}
		m, ok := merged[r.Target]
		if !ok {
			cp := r
			cp.WE = r.WE + "+"
			merged[r.Target] = &cp
			order = append(order, r.Target)
			continue
		}
		m.MeasuredMicroAmps += r.MeasuredMicroAmps
		m.EstimatedMM += r.EstimatedMM
	}
	var out []TargetReading
	seen := map[string]bool{}
	for _, r := range in {
		if counts[r.Target] == 1 {
			out = append(out, r)
			continue
		}
		if seen[r.Target] {
			continue
		}
		seen[r.Target] = true
		m := merged[r.Target]
		n := float64(counts[r.Target])
		m.MeasuredMicroAmps /= n
		m.EstimatedMM /= n
		m.WE = fmt.Sprintf("%s(×%d)", m.WE, counts[r.Target])
		out = append(out, *m)
	}
	return out
}

// invertEffective converts a fitted effective concentration back to a
// bulk concentration (saturation inversion: C = x·Km/(Km−x)).
func invertEffective(b *enzyme.Binding, x float64) phys.Concentration {
	if x <= 0 {
		return 0
	}
	km := float64(b.Km)
	if x >= 0.99*km {
		x = 0.99 * km
	}
	return phys.Concentration(x * km / (km - x))
}

// ExploreDesigns runs the full design-space exploration and returns a
// human-readable summary line per candidate (feasible first) plus the
// Pareto-front subset. Individual design points that fail to evaluate
// do not abort the exploration: the surviving candidates are returned
// together with the joined per-choice failures (each a
// *core.ChoiceError), so callers with a non-nil error still get every
// healthy design.
func ExploreDesigns(targets []string, opts ...PlatformOption) (all []string, pareto []string, err error) {
	req := core.Requirements{}
	for _, t := range targets {
		req.Targets = append(req.Targets, core.TargetSpec{Species: t})
	}
	p := &Platform{}
	for _, opt := range opts {
		opt(&req, p)
	}
	cands, err := core.ExploreWith(req, p.explore)
	for _, c := range cands {
		all = append(all, c.Summary())
	}
	for _, c := range core.ParetoFront(cands) {
		pareto = append(pareto, c.Summary())
	}
	return all, pareto, err
}
