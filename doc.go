// Package advdiag is an open reproduction of "An Integrated Platform for
// Advanced Diagnostics" (De Micheli, Ghoreishizadeh, Boero, Valgimigli,
// Carrara — DATE 2011): platform-based design of integrated multi-target
// electrochemical biosensors, together with the full simulation substrate
// needed to evaluate such platforms without a wet lab.
//
// The package offers three entry points:
//
//   - Sensor: one functionalized working electrode with its acquisition
//     chain. Supports chronoamperometry (oxidase probes: glucose,
//     lactate, glutamate, cholesterol) and cyclic voltammetry
//     (cytochrome P450 probes for drug compounds), calibration runs and
//     figure-of-merit extraction (LOD, sensitivity, linear range,
//     response time).
//
//   - Platform: the paper's contribution. Given a list of target
//     molecules, the design-space explorer chooses probes, sensor
//     structure (shared chamber, per-technique, per-electrode), readout
//     classes and multiplexing, prunes infeasible configurations with
//     the paper's §II rules, and synthesizes the best candidate into a
//     simulatable multi-electrode platform with a netlist and an
//     acquisition schedule.
//
//   - Explore: the raw design-space exploration, returning every scored
//     candidate and the area/power/latency Pareto front.
//
//   - Lab: the run-time service over a designed Platform. It caches the
//     per-electrode calibration state once (keyed by sensor construction
//     and seed) and executes panels concurrently — RunPanels for
//     batches, Submit/Results for streams — with deterministic
//     per-sample seeding, per-panel timing from the acquisition
//     schedule, and aggregate throughput/cache statistics.
//
//   - Fleet: the scale-out dispatcher over many Platforms. Each shard
//     is a platform with its own worker pool and bounded queue; a
//     pluggable Router (panel-type affinity, least-loaded, or
//     consistent-hash by patient) places each sample, Submit blocks on
//     backpressure while TrySubmit sheds load with ErrFleetSaturated,
//     and FleetStats aggregates the per-shard service counters.
//
//   - Server and Client: the network front door over a Fleet and its
//     Go twin, speaking the versioned JSON wire format of the
//     advdiag/wire package. Backpressure maps to HTTP 429 (TrySubmit,
//     never a blocked handler), SIGTERM drains gracefully via
//     cmd/labserve, and batches submitted through the client return
//     PanelResult fingerprints byte-identical to a local Lab.
//
//   - FaultPlan and Diagnoser: the fault-injection harness and the
//     automated fleet diagnosis over it. Deterministic, replayable
//     faults (fouled electrode, dead shard, slow shard — plus the
//     wire-level MalformedClient) degrade a Fleet on purpose;
//     the Diagnoser watches stats snapshots and panel outcomes,
//     classifies what is wrong (sensor fouling vs shard stall vs
//     queue saturation vs wire errors vs drain), quarantines convicted
//     shards — their backlog reroutes to siblings with fingerprints
//     intact — and serves the verdict on GET /v1/diagnosis.
//
//   - MonitorScheduler: population-scale longitudinal monitoring. It
//     multiplexes thousands of recurring MonitorCampaigns — calibrate,
//     read on a cadence, recalibrate on schedule or when the rolling
//     drift detector fires — over one MonitorBackend (a Fleet, or a
//     Client across the HTTP boundary) in virtual time, and reports
//     one CampaignReport per campaign with a topology-independent
//     cohort fingerprint.
//
// # Architecture
//
// The execution stack is layered over one engine; every layer above
// internal/runtime is an adapter, never a re-implementation:
//
//	┌──────────────────────────────────────────┐
//	│   advdiag.MonitorScheduler (campaigns)   │
//	│ virtual time ▸ drift detection ▸ recals  │
//	└──────────────────┬───────────────────────┘
//	                   │ MonitorBackend (a Fleet, or a Client over HTTP)
//	┌──────────────────▼───────────────────────┐
//	│      advdiag.Server (HTTP front door)    │
//	│  wire format ▸ 429 backpressure ▸ drain  │
//	└──────────────────┬───────────────────────┘
//	                   │ TrySubmit / Results
//	┌──────────────────▼───────────────────────┐
//	│            advdiag.Fleet                 │
//	│  Router ▸ shard queues ▸ FleetStats      │
//	└───────┬──────────┬──────────┬────────────┘
//	        │ shard 0  │ shard 1  │ shard N-1
//	┌───────▼──┐  ┌────▼─────┐  ┌─▼────────┐
//	│ advdiag. │  │ advdiag. │  │ advdiag. │
//	│   Lab    │  │   Lab    │  │   Lab    │
//	│ batching · streaming · stats · timing │
//	└───────┬──────────┬──────────┬─────────┘
//	        └──────────┼──────────┘
//	┌──────────────────▼───────────────────────┐
//	│        internal/runtime.Executor         │
//	│ validation · seeding · calibration cache │
//	│     · panel assembly · monitor traces    │
//	└──────────────────────────────────────────┘
//
// Platform.RunPanel is the zero-concurrency adapter over the same
// Executor (it runs with the raw platform seed); a Lab is one shard's
// worth of service; a Fleet multiplexes samples across shards without
// ever touching execution logic. Because a Lab or Fleet sample's noise
// stream is seeded from the base seed and its submission index alone
// (runtime.SampleSeed), the two serving layers are bit-for-bit
// interchangeable: a Lab at any worker count and a Fleet at any shard
// count under any router produce identical PanelResult.Fingerprint
// values for the same submission sequence (indices count from the
// service's first accepted sample; see Fleet's determinism note for
// reused dispatchers).
//
// Use a Lab when one platform design serves all traffic and a single
// machine's worker pool is enough. Use a Fleet when traffic mixes
// panel types that belong on different platform designs (route by
// AffinityRouter), when one instrument's throughput ceiling is the
// bottleneck (identical shards behind LeastLoadedRouter), or when
// per-patient affinity matters for longitudinal tracking (HashRouter).
//
// # Serving panels over HTTP
//
// The Server publishes a Fleet on the network; the Client consumes it.
// Samples and results travel in the advdiag/wire package's versioned
// JSON (schema version 1, strict decoding: unknown fields, version
// skew, and concentrations the runtime would refuse are all HTTP 400
// before anything reaches the fleet):
//
//	POST /v1/panels        one wire.Sample         → one wire.Outcome
//	POST /v1/panels/batch  [wire.Sample, …]        → [wire.Outcome, …] (request order)
//	POST /v1/panels/stream NDJSON wire.Sample      → NDJSON wire.Outcome (completion order)
//	POST /v1/monitors      one wire.MonitorRequest → one wire.MonitorOutcome
//	GET  /v1/monitors/{id} latest stored outcome for a campaign (202 while pending)
//	GET  /v1/stats         ServerStats as JSON (fleet counters + scheduler snapshot)
//	GET  /v1/diagnosis     wire.Diagnosis: classified findings + quarantine set
//	GET  /healthz          200 while serving, 503 while draining
//
// Backpressure is explicit: every submission uses Fleet.TrySubmit, so
// a saturated shard queue is HTTP 429 (ErrFleetSaturated through the
// Client) rather than a blocked handler, and every reject is counted
// in /v1/stats. The wire format is lossless for float64, so results
// fetched through the Client carry fingerprints byte-identical to a
// local Lab run of the same batch. cmd/labserve is the deployable
// front door (graceful SIGTERM drain); examples/remote shows the whole
// boundary in one process.
//
// Beside JSON, the batch and stream endpoints speak a length-prefixed
// binary framing (advdiag/wire's MarshalSampleBinary and friends,
// media type application/x-advdiag-binary): each frame is a u32
// little-endian payload length, the u16 schema version, a one-byte
// message kind, and the fields in fixed order with float64 bits
// verbatim — lossless by construction and roughly 4x faster to move
// than JSON NDJSON with the kernel out of the loop (cmd/labload
// measures it). The encoding is canonical (concentration keys sorted,
// one valid byte string per message) and decoding is as strict as
// JSON's: version skew, unknown kinds, truncation, length lies and
// non-canonical key order all error. Negotiation is symmetric and
// per-direction: the server advertises support with an
// X-Advdiag-Binary response header (on /healthz and the panel
// endpoints), the request body's codec is declared by Content-Type,
// and the response codec is requested by Accept. The Client's default
// CodecAuto probes /healthz once and upgrades when the server
// advertises; against an older JSON-only server it stays on JSON
// silently (WithWireCodec forces either codec).
//
// # Fault injection and automated diagnosis
//
// The diagnosis loop sits beside the serving path, never in it: the
// Server feeds the Diagnoser what it already has (a stats snapshot on
// each GET /v1/diagnosis, panel outcomes as the collector sees them),
// and
// the Diagnoser acts back on the Fleet only when it convicts:
//
//	            GET /v1/diagnosis
//	                   │ Observe(Stats) ▸ Diagnose
//	┌──────────────────▼───────────────────────┐
//	│            advdiag.Diagnoser             │
//	│ recovery-ratio rings ▸ counter deltas    │
//	│ classify: sensor_fouling │ shard_stall   │
//	│   queue_saturation │ wire_errors │ drain │
//	└──────────────────┬───────────────────────┘
//	                   │ Quarantine(shard) on conviction
//	┌──────────────────▼───────────────────────┐
//	│ advdiag.Fleet — per-shard fault state    │
//	│ FaultPlan ▸ InjectFault ▸ ClearFaults    │
//	└──────────────────────────────────────────┘
//
// Faults are first-class and deterministic. A FaultPlan armed at
// construction (WithFleetFaultPlan) or injected live (InjectFault)
// perturbs exactly what its seed says: a FaultFouledElectrode draws
// its per-panel sensitivity loss and noise from (fault seed, sample
// seed, target) inside internal/runtime, so two fleets with the same
// plan and traffic fail identically — which is what makes every
// diagnosis scenario an ordinary table test instead of a flaky chaos
// run. A healthy fleet pays one atomic nil-check per job.
//
// Quarantine removes a shard from the routing view (every Router is
// quarantine-aware for free — it simply cannot pick a shard it cannot
// see) and reroutes the shard's parked and queued work to siblings.
// Rerouted jobs keep their fleet submission indices, so their noise
// streams — and therefore their PanelResult fingerprints — are
// byte-identical to an unfaulted run: quarantine loses no panels and
// changes no bits. The scenario suite (diagnosis_test.go) proves each
// classification under -race; cmd/labserve -diag-smoke proves the
// whole loop over a real TCP connection in CI.
//
// # Self-healing lifecycle
//
// The Fleet's topology is elastic at run time: AddShard grows it under
// live load (the new shard takes the next index and joins the routing
// view immediately), RemoveShard retires a shard (its backlog drains
// to siblings, its index is never reused, and it stays in FleetStats
// marked Removed). The determinism contract that survives all of this
// is replay-checkability rather than topology-independence of the
// whole batch: every sample's noise seed derives from (fleet seed,
// submission index) alone — internal/runtime.SampleSeed — so
// Fleet.ReplayPanel recomputes any result bit-identically on any
// shard of any topology, past or present. The HashRouter keeps its
// side of the bargain by naming virtual nodes after real shard
// indices: adding or removing a shard remaps only the keys that
// gained or lost their shard.
//
// Health probes close the loop that quarantine opens. Each sweep
// (ProbeShards, or StartHealthProbes on a ticker) runs a cheap seeded
// probe panel per shard through the fault harness and compares its
// fingerprint against the shard's known-good baseline, driving a
// per-shard circuit breaker:
//
//	         consecutive probe failures ≥ failThreshold
//	┌────────┐            (breaker opens)             ┌────────────┐
//	│ CLOSED │ ─────────────────────────────────────▸ │    OPEN    │
//	│serving │                                        │quarantined │
//	└────────┘                                        └────────────┘
//	     ▲                                              │        ▲
//	     │ known-good probes                 known-good │        │ probe
//	     │ ≥ restoreThreshold                     probe │        │ fails
//	     │ (automatic un-quarantine)                    ▼        │
//	     │                                          ┌──────────────┐
//	     └───────────────────────────────────────── │  HALF-OPEN   │
//	                                                │ probes only  │
//	                                                └──────────────┘
//
// A convicted-then-cleared shard therefore restores itself: once
// ClearFaults heals the hardware, restoreThreshold consecutive
// known-good probes close the breaker with no manual un-quarantine
// call. (A flaky fault deliberately persists through quarantine so
// the breaker keeps seeing it; dead, fouled and slow faults are
// lifted at quarantine so stragglers complete healthy.) Every
// transition lands in a timestamped event ring (Fleet.Events) served
// with GET /v1/diagnosis; POST /v1/shards and DELETE /v1/shards/{id}
// expose the topology over HTTP; and a fouling conviction also flags
// the attached MonitorScheduler's campaigns for forced recalibration
// (ForceRecal). cmd/labserve -elastic-smoke proves the whole
// lifecycle — breaker trip, live remove+add, automatic restore,
// replay verification — over a real TCP connection in CI.
//
// # Population-scale monitoring
//
// A MonitorRequest is one continuous chronoamperometric acquisition on
// an aged film — optionally two-phase (baseline first, sample after)
// and with Fig. 3-style injections — executed by Lab.RunMonitor, the
// Fleet's monitor lanes (SubmitMonitor/MonitorResults: separate
// counters and result channel, so panel seeding is untouched), or
// Client.RunMonitor across HTTP. Sensor.Monitor and the longterm drift
// model are thin adapters over the same internal/runtime analysis.
//
// The monitor determinism contract is stronger than the panel one: a
// tick's noise seed derives from the campaign's identity alone
// (MonitorSeed: base seed, campaign ID, tick index) and travels in the
// request, so a MonitorScheduler cohort's fingerprint is
// byte-identical at any worker count, shard count, submission
// interleaving, or across the HTTP boundary. examples/population
// proves it on a 10,000-campaign cohort; cmd/labserve -monitor-smoke
// proves it across a real TCP connection in CI.
//
// All public values use the paper's units: mM for concentrations, mV for
// potentials, µA for currents, µA/(mM·cm²) for sensitivities, seconds
// for time. The internal simulator works in SI.
//
// Everything is deterministic: every stochastic element (thermal and
// flicker noise) derives from the seed passed at construction.
//
// # Concurrency
//
// The design-space exploration runs on a bounded worker pool (one
// worker per CPU by default; see core.ExploreOptions and the
// WithExploreWorkers platform option). Duplicate structures are priced
// once via memoization, and results are collected in enumeration order,
// so the candidate ranking is byte-identical at any worker count. The
// E1–E16 paper experiments (internal/experiments) likewise run
// concurrently through their registry's RunAll.
//
// The one concurrency rule on the measurement layer: a measure.Engine
// and its RNG belong to a single goroutine. Concurrent workloads build
// one engine per goroutine, each with its own seed — engines are cheap
// and two engines with equal seeds produce bit-identical streams. The
// Lab applies the rule at run time: every panel execution builds its
// own engine, seeded from the sample index, so batch and streaming
// results are byte-identical at any worker count.
//
// # Performance
//
// The per-sample hot path is engineered to be allocation-free in steady
// state and to avoid redundant physics:
//
//   - internal/diffusion integrates Fick's second law with an
//     unconditionally stable Crank–Nicolson scheme on an exponentially
//     graded mesh — one prefactored tridiagonal solve per external
//     sample (see mathx.SolveTridiag) instead of stability-bound
//     explicit substeps, validated against the Cottrell and
//     Randles–Ševčík analytic results at tighter tolerance than the
//     explicit scheme it replaced.
//
//   - The measurement loops (measure.RunCA, measure.RunCV) hoist all
//     loop-invariant work — species lookups, cross-talk and interferent
//     classification, efficiency sigmoids, concentration timelines —
//     out of the per-timestep code; a timestep allocates nothing.
//
//   - The diffusion problem is linear in bulk concentration, so the
//     panel path never re-simulates it per sample: the calibration
//     cache precomputes each voltammetric electrode's unit flux basis
//     (measure.CVFluxBasis) once, and panels scale it by the sample's
//     effective concentration (measure.RunCVWithBasis).
//
//   - Panels run through a batched kernel: the runtime Executor's
//     RunBatch amortises per-panel setup across a slice of samples
//     using pooled scratch arenas (sync.Pool), Lab chunks its queue
//     through it, and Fleet shards opportunistically coalesce queued
//     compatible jobs into bounded batches (at most 16) without
//     reordering submission indices — the per-panel seed derivation
//     and ReplayPanel's bit-identical replay contract are untouched.
//
// Retention contract: everything a run returns (trace series, panel
// readings) is freshly allocated and caller-owned; results never alias
// engine scratch and remain valid after later runs on the same engine.
// A CVBasis is immutable after construction and safe for concurrent
// readers.
//
// # Static analysis
//
// The contracts above are machine-enforced by the project's own
// analyzer suite, internal/lint, fronted by cmd/labvet ("go run
// ./cmd/labvet ./..."). Determinism rules ban wall-clock reads,
// math/rand, and order-sensitive map iteration in the kernel packages
// (internal/runtime, internal/measure, internal/diffusion,
// internal/analog, wire); hot-path rules keep //advdiag:hotpath
// functions free of fmt calls, escaping closures, and grow-from-nil
// appends; wire-parity rules require every exported wire field in the
// JSON twin and both binary codec directions; lifecycle rules encode
// the two-lock serving design (no blocking Submit or channel send
// under a mutex) and the one-engine-per-goroutine rule. Violations
// that are intentionally safe carry an "//advdiag:allow <rule>
// <reason>" directive — the reason is mandatory and checked. See the
// README's "Static analysis: labvet" section for the rule table.
//
// BENCH_PR9.json at the repository root records the tracked performance
// baseline: single-worker and fleet panels/sec, fleet allocs/panel, the
// Fig. 1–4 benchmark costs (cmd/labbench -json regenerates that half,
// -baseline auto diffs against it), and a "labload" section with
// per-codec request-latency percentiles and wire-isolated codec
// throughput (cmd/labload -json regenerates that half, -baseline diffs
// p99 and wire panels/sec). BENCH_PR3.json is the pre-batching PR 3
// baseline, kept for history.
package advdiag
