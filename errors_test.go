package advdiag_test

import (
	"math"
	"strings"
	"testing"

	"advdiag"
)

// TestMonitorErrorPaths covers every documented failure mode of
// Sensor.Monitor: wrong technique, non-positive duration, and an empty
// injection list.
func TestMonitorErrorPaths(t *testing.T) {
	cv, err := advdiag.NewSensor("benzphetamine")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cv.Monitor(60, advdiag.InjectionEvent{AtSeconds: 10, DeltaMM: 1}); err == nil {
		t.Fatal("monitoring a CV (non-oxidase) sensor must fail")
	}

	ca, err := advdiag.NewSensor("glucose")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0, -5} {
		if _, err := ca.Monitor(d, advdiag.InjectionEvent{AtSeconds: 1, DeltaMM: 1}); err == nil {
			t.Fatalf("duration %g must fail", d)
		}
	}
	if _, err := ca.Monitor(60); err == nil {
		t.Fatal("monitoring without injections must fail")
	}
}

// TestDesignPlatformErrorPaths: the design entry point must reject an
// empty target list and unknown targets with errors, not panics or
// degenerate platforms.
func TestDesignPlatformErrorPaths(t *testing.T) {
	if _, err := advdiag.DesignPlatform(nil); err == nil {
		t.Fatal("nil target list must fail")
	}
	if _, err := advdiag.DesignPlatform([]string{}); err == nil {
		t.Fatal("empty target list must fail")
	}
	if _, err := advdiag.DesignPlatform([]string{"unobtainium"}); err == nil {
		t.Fatal("unknown target must fail")
	}
	if _, err := advdiag.DesignPlatform([]string{"glucose", "unobtainium"}); err == nil {
		t.Fatal("one unknown target must fail the whole design")
	}
}

// TestRunPanelRejectsInvalidSamples pins the validation contract shared
// by RunPanel and the Lab: non-finite, negative, or unregistered
// concentrations are errors before any simulation runs.
func TestRunPanelRejectsInvalidSamples(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]map[string]float64{
		"NaN":        {"glucose": math.NaN()},
		"+Inf":       {"glucose": math.Inf(1)},
		"-Inf":       {"glucose": math.Inf(-1)},
		"negative":   {"glucose": -0.5},
		"unknown":    {"glucose": 1, "unobtainium": 2},
		"unphysical": {"glucose": 2 * advdiag.MaxSampleConcentrationMM},
	}
	for name, sample := range cases {
		if _, err := p.RunPanel(sample); err == nil {
			t.Errorf("%s sample must fail", name)
		}
	}
	// The same contract through the Lab: the failure is per-sample.
	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	outs := lab.RunPanels([]advdiag.Sample{
		{ID: "good", Concentrations: map[string]float64{"glucose": 2}},
		{ID: "bad", Concentrations: map[string]float64{"glucose": math.NaN()}},
	})
	if outs[0].Err != nil {
		t.Fatalf("good sample failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "finite") {
		t.Fatalf("bad sample err = %v", outs[1].Err)
	}
}

// TestRunPanelAcceptsInterferents: registered non-target species
// (dopamine is the paper's §III caveat) are valid sample constituents,
// not validation errors.
func TestRunPanelAcceptsInterferents(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunPanel(map[string]float64{"glucose": 2, "dopamine": 0.05}); err != nil {
		t.Fatalf("dopamine-spiked sample must run: %v", err)
	}
}
