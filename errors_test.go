package advdiag_test

import (
	"math"
	"strings"
	"testing"

	"advdiag"
)

// TestMonitorErrorPaths covers the documented failure modes of
// Sensor.Monitor: wrong technique and non-positive duration. An empty
// injection list is NOT an error — see TestMonitorBaselineOnly.
func TestMonitorErrorPaths(t *testing.T) {
	cv, err := advdiag.NewSensor("benzphetamine")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cv.Monitor(60, advdiag.InjectionEvent{AtSeconds: 10, DeltaMM: 1}); err == nil {
		t.Fatal("monitoring a CV (non-oxidase) sensor must fail")
	}

	ca, err := advdiag.NewSensor("glucose")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{-0.5, -5} {
		if _, err := ca.Monitor(d, advdiag.InjectionEvent{AtSeconds: 1, DeltaMM: 1}); err == nil {
			t.Fatalf("duration %g must fail", d)
		}
	}
	if _, err := ca.Monitor(-1); err == nil {
		t.Fatal("negative duration must fail even without injections")
	}
	// Zero duration is not an error: it selects the protocol default.
	if res, err := ca.Monitor(0, advdiag.InjectionEvent{AtSeconds: 5, DeltaMM: 1}); err != nil {
		t.Fatalf("zero duration must select the default: %v", err)
	} else if last := res.TimesSeconds[len(res.TimesSeconds)-1]; last < 59 {
		t.Fatalf("default-duration run ends at %g s", last)
	}
}

// TestMonitorBaselineOnly: a zero-injection run records the blank/drift
// trace — the way a deployed sensor logs its noise floor — instead of
// erroring out.
func TestMonitorBaselineOnly(t *testing.T) {
	ca, err := advdiag.NewSensor("glucose", advdiag.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ca.Monitor(60)
	if err != nil {
		t.Fatalf("baseline-only monitoring must run: %v", err)
	}
	if len(res.TimesSeconds) == 0 || len(res.TimesSeconds) != len(res.CurrentsMicroAmps) {
		t.Fatalf("trace not recorded: %d times, %d currents", len(res.TimesSeconds), len(res.CurrentsMicroAmps))
	}
	if got := res.TimesSeconds[len(res.TimesSeconds)-1]; got < 59 {
		t.Fatalf("trace ends at %g s, want ≥ 59", got)
	}
	if res.BaselineMicroAmps != res.SteadyMicroAmps {
		t.Fatalf("baseline %g ≠ steady %g on a flat run", res.BaselineMicroAmps, res.SteadyMicroAmps)
	}
	if res.T90Seconds != 0 || res.TransientSeconds != 0 {
		t.Fatalf("no-injection run reported transients: T90=%g, transient=%g", res.T90Seconds, res.TransientSeconds)
	}
	if !res.Settled {
		t.Fatal("a blank trace is settled by definition")
	}
}

// TestDesignPlatformErrorPaths: the design entry point must reject an
// empty target list and unknown targets with errors, not panics or
// degenerate platforms.
func TestDesignPlatformErrorPaths(t *testing.T) {
	if _, err := advdiag.DesignPlatform(nil); err == nil {
		t.Fatal("nil target list must fail")
	}
	if _, err := advdiag.DesignPlatform([]string{}); err == nil {
		t.Fatal("empty target list must fail")
	}
	if _, err := advdiag.DesignPlatform([]string{"unobtainium"}); err == nil {
		t.Fatal("unknown target must fail")
	}
	if _, err := advdiag.DesignPlatform([]string{"glucose", "unobtainium"}); err == nil {
		t.Fatal("one unknown target must fail the whole design")
	}
}

// TestRunPanelRejectsInvalidSamples pins the validation contract shared
// by RunPanel and the Lab: non-finite, negative, or unregistered
// concentrations are errors before any simulation runs.
func TestRunPanelRejectsInvalidSamples(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]map[string]float64{
		"NaN":        {"glucose": math.NaN()},
		"+Inf":       {"glucose": math.Inf(1)},
		"-Inf":       {"glucose": math.Inf(-1)},
		"negative":   {"glucose": -0.5},
		"unknown":    {"glucose": 1, "unobtainium": 2},
		"unphysical": {"glucose": 2 * advdiag.MaxSampleConcentrationMM},
	}
	for name, sample := range cases {
		if _, err := p.RunPanel(sample); err == nil {
			t.Errorf("%s sample must fail", name)
		}
	}
	// The same contract through the Lab: the failure is per-sample.
	lab, err := advdiag.NewLab(p, advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	outs := lab.RunPanels([]advdiag.Sample{
		{ID: "good", Concentrations: map[string]float64{"glucose": 2}},
		{ID: "bad", Concentrations: map[string]float64{"glucose": math.NaN()}},
	})
	if outs[0].Err != nil {
		t.Fatalf("good sample failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "finite") {
		t.Fatalf("bad sample err = %v", outs[1].Err)
	}
}

// TestRunPanelAcceptsInterferents: registered non-target species
// (dopamine is the paper's §III caveat) are valid sample constituents,
// not validation errors.
func TestRunPanelAcceptsInterferents(t *testing.T) {
	p, err := advdiag.DesignPlatform([]string{"glucose"}, advdiag.WithPlatformSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunPanel(map[string]float64{"glucose": 2, "dopamine": 0.05}); err != nil {
		t.Fatalf("dopamine-spiked sample must run: %v", err)
	}
}
