package advdiag_test

import (
	"math"
	"strings"
	"testing"

	"advdiag"
)

// TestMonitorMultiInjection pins the multi-injection segment contract:
// the recorded series covers the full run, but every analysis field
// describes the FIRST injection's segment only (the trace truncated at
// the second injection time).
func TestMonitorMultiInjection(t *testing.T) {
	cases := []struct {
		name       string
		duration   float64
		injections []advdiag.InjectionEvent
	}{
		{"two steps", 240, []advdiag.InjectionEvent{
			{AtSeconds: 20, DeltaMM: 1.5}, {AtSeconds: 120, DeltaMM: 1.5}}},
		{"three steps", 420, []advdiag.InjectionEvent{
			{AtSeconds: 20, DeltaMM: 1.5}, {AtSeconds: 160, DeltaMM: 1.5}, {AtSeconds: 300, DeltaMM: 1.5}}},
		{"staircase with unequal steps", 300, []advdiag.InjectionEvent{
			{AtSeconds: 30, DeltaMM: 0.5}, {AtSeconds: 160, DeltaMM: 2.5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Monitor(tc.duration, tc.injections...)
			if err != nil {
				t.Fatal(err)
			}
			// The recorded series spans the full run, later injections
			// included.
			last := res.TimesSeconds[len(res.TimesSeconds)-1]
			if last < tc.duration-1 {
				t.Fatalf("trace ends at %g s, duration %g s", last, tc.duration)
			}
			// Analysis is confined to the first-injection segment: both
			// times count from the first injection and must land before
			// the second one.
			window := tc.injections[1].AtSeconds - tc.injections[0].AtSeconds
			if res.T90Seconds <= 0 || res.T90Seconds >= window {
				t.Fatalf("t90 %g s outside the first segment window (0, %g)", res.T90Seconds, window)
			}
			if res.TransientSeconds <= 0 || res.TransientSeconds >= window {
				t.Fatalf("transient %g s outside the first segment window (0, %g)", res.TransientSeconds, window)
			}
			if !res.Settled {
				t.Fatal("first segment must settle before the second injection")
			}
			if res.SteadyMicroAmps <= res.BaselineMicroAmps {
				t.Fatalf("first step must raise the current: baseline %g, steady %g µA",
					res.BaselineMicroAmps, res.SteadyMicroAmps)
			}
			// Later injections keep stepping the current past the first
			// segment's steady level — SteadyMicroAmps is NOT the final
			// trace level.
			final := res.CurrentsMicroAmps[len(res.CurrentsMicroAmps)-1]
			if final <= res.SteadyMicroAmps {
				t.Fatalf("final current %g µA must exceed first-segment steady %g µA", final, res.SteadyMicroAmps)
			}
			if got := res.StepMicroAmps; math.Abs(got-(res.SteadyMicroAmps-res.BaselineMicroAmps)) > 1e-12 {
				t.Fatalf("hand-held step current %g µA, want steady−baseline %g µA",
					got, res.SteadyMicroAmps-res.BaselineMicroAmps)
			}
		})
	}
}

// TestMonitorMultiInjectionPrefixInvariance: adding a second injection
// must not change what happened BEFORE it — the recorded trace prefix
// and the pre-injection baseline are bit-identical. The derived
// t90/transient/steady numbers are NOT invariant by contract: the
// analyzer's smoothing window and steady-state tail both scale with
// the analyzed segment's length, which the truncation point sets.
func TestMonitorMultiInjectionPrefixInvariance(t *testing.T) {
	run := func(injections ...advdiag.InjectionEvent) *advdiag.MonitorResult {
		s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Monitor(240, injections...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(advdiag.InjectionEvent{AtSeconds: 20, DeltaMM: 2})
	double := run(advdiag.InjectionEvent{AtSeconds: 20, DeltaMM: 2},
		advdiag.InjectionEvent{AtSeconds: 150, DeltaMM: 2})
	if single.BaselineMicroAmps != double.BaselineMicroAmps {
		t.Fatalf("baseline changed with a later injection: %g vs %g µA",
			single.BaselineMicroAmps, double.BaselineMicroAmps)
	}
	// The recorded traces are bit-identical up to the second injection.
	for i, tv := range double.TimesSeconds {
		if tv >= 150 {
			break
		}
		if single.TimesSeconds[i] != tv || single.CurrentsMicroAmps[i] != double.CurrentsMicroAmps[i] {
			t.Fatalf("trace prefix diverges at point %d (t=%g s)", i, tv)
		}
	}
}

// TestMonitorInjectionValidation: malformed injections are rejected
// before anything reaches the solver, with errors naming the offense.
func TestMonitorInjectionValidation(t *testing.T) {
	s, err := advdiag.NewSensor("glucose")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		duration float64
		inj      []advdiag.InjectionEvent
		want     string
	}{
		{"NaN time", 60, []advdiag.InjectionEvent{{AtSeconds: math.NaN(), DeltaMM: 1}}, "finite time"},
		{"infinite time", 60, []advdiag.InjectionEvent{{AtSeconds: math.Inf(1), DeltaMM: 1}}, "finite time"},
		{"negative time", 60, []advdiag.InjectionEvent{{AtSeconds: -3, DeltaMM: 1}}, "before the trace"},
		{"past the end", 60, []advdiag.InjectionEvent{{AtSeconds: 61, DeltaMM: 1}}, "past"},
		{"past the default duration", 0, []advdiag.InjectionEvent{{AtSeconds: 75, DeltaMM: 1}}, "past"},
		{"NaN delta", 60, []advdiag.InjectionEvent{{AtSeconds: 10, DeltaMM: math.NaN()}}, "finite concentration"},
		{"infinite delta", 60, []advdiag.InjectionEvent{{AtSeconds: 10, DeltaMM: math.Inf(-1)}}, "finite concentration"},
		{"second injection bad", 120, []advdiag.InjectionEvent{
			{AtSeconds: 10, DeltaMM: 1}, {AtSeconds: 130, DeltaMM: 1}}, "injection 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Monitor(tc.duration, tc.inj...)
			if err == nil {
				t.Fatal("invalid injection must be rejected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// A boundary injection exactly at the trace end is legal.
	if _, err := s.Monitor(60, advdiag.InjectionEvent{AtSeconds: 60, DeltaMM: 1}); err != nil {
		t.Fatalf("injection at the trace end must be accepted: %v", err)
	}
}
