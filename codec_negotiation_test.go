package advdiag_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"advdiag"
	"advdiag/wire"
)

// TestCodecMatrixDeterminism drives the same cohort through every
// client codec setting on both the batch and stream endpoints: JSON,
// forced binary, and auto-negotiation must all reproduce the local
// Lab's fingerprints bit-for-bit.
func TestCodecMatrixDeterminism(t *testing.T) {
	samples := mixedCohort(10)
	local := localFingerprints(t, samples)

	for _, codec := range []struct {
		name string
		c    advdiag.WireCodec
	}{{"json", advdiag.CodecJSON}, {"binary", advdiag.CodecBinary}, {"auto", advdiag.CodecAuto}} {
		t.Run(codec.name, func(t *testing.T) {
			_, client := newTestServer(t, 2, advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(32))
			client = advdiag.NewClient(client.BaseURL(), advdiag.WithWireCodec(codec.c))

			outs, err := client.RunPanels(context.Background(), samples)
			if err != nil {
				t.Fatal(err)
			}
			for i, o := range outs {
				if o.Err != nil {
					t.Fatalf("batch sample %d: %v", i, o.Err)
				}
				if fp := o.Result.Fingerprint(); fp != local[i] {
					t.Fatalf("batch sample %d: fingerprint %x != local %x", i, fp, local[i])
				}
			}

			seen := 0
			err = client.StreamPanels(context.Background(), samples, func(seq int, o advdiag.PanelOutcome) {
				if o.Err != nil {
					t.Errorf("stream sample %d: %v", seq, o.Err)
					return
				}
				// Stream samples land after the batch, so the noise seed
				// differs; determinism is pinned by the matrix all
				// answering (fingerprint equality across codecs is
				// covered by the batch path above and the server
				// determinism tests).
				seen++
			})
			if err != nil {
				t.Fatal(err)
			}
			if seen != len(samples) {
				t.Fatalf("stream answered %d of %d", seen, len(samples))
			}
		})
	}
}

// legacyJSONOnly wraps a modern server handler to impersonate a server
// from before the binary codec existed: it never advertises binary,
// and it answers a binary request body the way a JSON parser would —
// 400.
func legacyJSONOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, wire.BinaryMediaType) {
			http.Error(w, "wire: batch: invalid character", http.StatusBadRequest)
			return
		}
		r.Header.Del("Accept") // a legacy server ignores the media type anyway
		h.ServeHTTP(&headerStripper{ResponseWriter: w}, r)
	})
}

// headerStripper removes the binary advertisement before headers hit
// the wire.
type headerStripper struct{ http.ResponseWriter }

func (s *headerStripper) WriteHeader(code int) {
	s.Header().Del("X-Advdiag-Binary")
	s.ResponseWriter.WriteHeader(code)
}

func (s *headerStripper) Write(b []byte) (int, error) {
	s.Header().Del("X-Advdiag-Binary")
	return s.ResponseWriter.Write(b)
}

func (s *headerStripper) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestBinaryFallbackJSONOnlyServer: an auto-negotiating client against
// a server that never heard of the binary codec must silently use JSON
// and still reproduce local fingerprints; a client with binary forced
// must surface the server's rejection instead of corrupting anything.
func TestBinaryFallbackJSONOnlyServer(t *testing.T) {
	samples := mixedCohort(6)
	srv, _ := newTestServer(t, 1, advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(16))
	legacy := httptest.NewServer(legacyJSONOnly(srv))
	defer legacy.Close()

	auto := advdiag.NewClient(legacy.URL, advdiag.WithHTTPClient(legacy.Client()))
	outs, err := auto.RunPanels(context.Background(), samples)
	if err != nil {
		t.Fatalf("auto client against JSON-only server: %v", err)
	}
	local := localFingerprints(t, samples)
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("sample %d: %v", i, o.Err)
		}
		if fp := o.Result.Fingerprint(); fp != local[i] {
			t.Fatalf("sample %d: fingerprint %x != local %x", i, fp, local[i])
		}
	}
	got := 0
	if err := auto.StreamPanels(context.Background(), samples, func(int, advdiag.PanelOutcome) { got++ }); err != nil {
		t.Fatalf("auto stream against JSON-only server: %v", err)
	}
	if got != len(samples) {
		t.Fatalf("stream answered %d of %d", got, len(samples))
	}

	forced := advdiag.NewClient(legacy.URL, advdiag.WithHTTPClient(legacy.Client()), advdiag.WithWireCodec(advdiag.CodecBinary))
	if _, err := forced.RunPanels(context.Background(), samples); err == nil {
		t.Fatal("forced-binary client must fail against a JSON-only server")
	}
}

// TestBinaryWireStrictHTTP pins the strict binary boundary over live
// HTTP: schema skew and truncation on the batch endpoint are 400 with
// the wire message, and a torn stream frame comes back as an in-band
// error outcome without killing the already-accepted samples.
func TestBinaryWireStrictHTTP(t *testing.T) {
	_, client := newTestServer(t, 1, advdiag.WithFleetWorkers(1), advdiag.WithFleetQueueDepth(8))
	base := client.BaseURL()
	good, err := wire.MarshalSampleBinary(wire.Sample{ID: "p-1", Concentrations: map[string]float64{"glucose": 5}})
	if err != nil {
		t.Fatal(err)
	}

	post := func(t *testing.T, path string, body []byte) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", wire.BinaryMediaType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	t.Run("batch schema skew", func(t *testing.T) {
		skew := append([]byte(nil), good...)
		binary.LittleEndian.PutUint16(skew[4:], 9)
		resp, body := post(t, "/v1/panels/batch", skew)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "schema 9") {
			t.Fatalf("want 400 schema error, got %d %q", resp.StatusCode, body)
		}
	})

	t.Run("batch truncation", func(t *testing.T) {
		resp, body := post(t, "/v1/panels/batch", good[:len(good)-3])
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "truncated") {
			t.Fatalf("want 400 truncation error, got %d %q", resp.StatusCode, body)
		}
	})

	t.Run("stream torn frame", func(t *testing.T) {
		// One good frame, then a torn one: the good sample answers, the
		// tear is an in-band error outcome on the NDJSON response.
		body := append(append([]byte(nil), good...), good[:7]...)
		resp, data := post(t, "/v1/panels/stream", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream status %d", resp.StatusCode)
		}
		lines := 0
		sawErr := false
		sawResult := false
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if line == "" {
				continue
			}
			wo, err := wire.UnmarshalOutcome([]byte(line))
			if err != nil {
				t.Fatalf("line %q: %v", line, err)
			}
			lines++
			if wo.Error != "" && strings.Contains(wo.Error, "truncated") {
				sawErr = true
			}
			if wo.Result != nil {
				sawResult = true
			}
		}
		if lines != 2 || !sawErr || !sawResult {
			t.Fatalf("want one result + one truncation outcome, got %d lines (err=%v result=%v): %q",
				lines, sawErr, sawResult, data)
		}
	})
}
