package signalproc

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/mathx"
)

func TestMovingAverageConstant(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	out := MovingAverage(xs, 3)
	for i, v := range out {
		if v != 5 {
			t.Fatalf("sample %d: %g", i, v)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	rng := mathx.NewRNG(3)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Norm()
	}
	out := MovingAverage(xs, 9)
	if r := mathx.StdDev(out) / mathx.StdDev(xs); r > 0.45 {
		t.Fatalf("MA(9) noise ratio %g, want ≈1/3", r)
	}
}

func TestMovingAverageWidthOne(t *testing.T) {
	xs := []float64{1, 2, 3}
	out := MovingAverage(xs, 1)
	for i := range xs {
		if out[i] != xs[i] {
			t.Fatal("width 1 must copy")
		}
	}
}

func TestLowPassDC(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 2
	}
	out := LowPass(xs, 0.3)
	if math.Abs(out[99]-2) > 1e-9 {
		t.Fatalf("DC must pass: %g", out[99])
	}
}

func TestDerivativeLinear(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 3 * float64(i) * 0.1
	}
	d, err := Derivative(xs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if math.Abs(v-3) > 1e-9 {
			t.Fatalf("derivative[%d] = %g, want 3", i, v)
		}
	}
	if _, err := Derivative([]float64{1}, 0.1); err != ErrTooShort {
		t.Fatal("single sample must fail")
	}
}

func TestDetrendRemovesLine(t *testing.T) {
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 4 + 0.5*float64(i)
	}
	out := Detrend(xs)
	for i, v := range out {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("detrended[%d] = %g", i, v)
		}
	}
}

func gaussian(center, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		x := (float64(i) - center) / width
		out[i] = math.Exp(-x * x)
	}
	return out
}

func TestFindPeaksSingle(t *testing.T) {
	ys := gaussian(50, 8, 101)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	peaks := FindPeaks(xs, ys, 0.1)
	if len(peaks) != 1 {
		t.Fatalf("found %d peaks, want 1", len(peaks))
	}
	if math.Abs(peaks[0].X-50) > 0.5 {
		t.Fatalf("peak at %g, want 50", peaks[0].X)
	}
	if math.Abs(peaks[0].Y-1) > 0.01 {
		t.Fatalf("peak height %g, want 1", peaks[0].Y)
	}
}

func TestFindPeaksTwoSeparated(t *testing.T) {
	n := 201
	ys := make([]float64, n)
	g1 := gaussian(60, 8, n)
	g2 := gaussian(140, 8, n)
	for i := range ys {
		ys[i] = g1[i] + 0.4*g2[i]
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	peaks := FindPeaks(xs, ys, 0.05)
	if len(peaks) != 2 {
		t.Fatalf("found %d peaks, want 2", len(peaks))
	}
	// Sorted by prominence: big one first.
	if math.Abs(peaks[0].X-60) > 1 || math.Abs(peaks[1].X-140) > 1 {
		t.Fatalf("peaks at %g, %g", peaks[0].X, peaks[1].X)
	}
}

func TestFindPeaksProminenceFilter(t *testing.T) {
	n := 201
	ys := make([]float64, n)
	g1 := gaussian(60, 8, n)
	g2 := gaussian(140, 8, n)
	for i := range ys {
		ys[i] = g1[i] + 0.02*g2[i]
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	peaks := FindPeaks(xs, ys, 0.05)
	if len(peaks) != 1 {
		t.Fatalf("prominence filter failed: %d peaks", len(peaks))
	}
}

func TestFindPeaksSubSampleRefinement(t *testing.T) {
	// A peak centred between samples must be located sub-sample.
	n := 101
	ys := make([]float64, n)
	for i := range ys {
		x := (float64(i) - 50.4) / 6
		ys[i] = math.Exp(-x * x)
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	peaks := FindPeaks(xs, ys, 0.1)
	if len(peaks) != 1 {
		t.Fatalf("%d peaks", len(peaks))
	}
	if math.Abs(peaks[0].X-50.4) > 0.1 {
		t.Fatalf("refined position %g, want 50.4", peaks[0].X)
	}
}

func TestAnalyzeStepFirstOrder(t *testing.T) {
	// Noise-free first-order response: t90 = τ·ln(10).
	tau := 13.0
	dt := 0.1
	n := 1200
	times := make([]float64, n)
	vals := make([]float64, n)
	t0 := 10.0
	for i := range times {
		times[i] = float64(i) * dt
		if times[i] >= t0 {
			vals[i] = 1 - math.Exp(-(times[i]-t0)/tau)
		}
	}
	resp, err := AnalyzeStep(times, vals, t0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := tau * math.Ln10
	if math.Abs(resp.T90-want) > 1.5 {
		t.Fatalf("t90 = %g, want ≈%g", resp.T90, want)
	}
	if math.Abs(resp.Baseline) > 1e-9 {
		t.Fatalf("baseline %g", resp.Baseline)
	}
	if math.Abs(resp.Steady-1) > 0.02 {
		t.Fatalf("steady %g", resp.Steady)
	}
	if !resp.Settled {
		t.Fatal("long first-order trace must settle")
	}
	// Transient time (max derivative) is right after the stimulus.
	if resp.TTransient > 3*dt+2 {
		t.Fatalf("transient time %g, want ≈0", resp.TTransient)
	}
}

func TestAnalyzeStepNoisy(t *testing.T) {
	// With noise of 10 % of the step, smoothing must keep t90 within
	// ~15 % of truth.
	rng := mathx.NewRNG(17)
	tau := 13.0
	dt := 0.1
	n := 1200
	times := make([]float64, n)
	vals := make([]float64, n)
	t0 := 10.0
	for i := range times {
		times[i] = float64(i) * dt
		if times[i] >= t0 {
			vals[i] = 1 - math.Exp(-(times[i]-t0)/tau)
		}
		vals[i] += rng.NormScaled(0.10)
	}
	resp, err := AnalyzeStep(times, vals, t0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := tau * math.Ln10
	if math.Abs(resp.T90-want)/want > 0.15 {
		t.Fatalf("noisy t90 = %g, want ≈%g", resp.T90, want)
	}
}

func TestAnalyzeStepTooShort(t *testing.T) {
	if _, err := AnalyzeStep([]float64{1, 2}, []float64{1, 2}, 0, 0.2); err != ErrTooShort {
		t.Fatal("short input must fail")
	}
}

// Property: moving average preserves the mean.
func TestMovingAverageMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
			xs[i] = v
		}
		// Width 1 exactly preserves everything (identity check).
		out := MovingAverage(xs, 1)
		for i := range out {
			if out[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
