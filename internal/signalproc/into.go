package signalproc

import "sort"

// This file holds the scratch-buffer variants of the package's hot
// routines. Each XInto function computes exactly what X computes —
// same arithmetic, same ordering — but writes into a caller-owned
// buffer (grown only when too small) instead of allocating, so the
// per-panel analysis loops can run allocation-free.

// MovingAverageInto is MovingAverage writing into dst. The returned
// slice aliases dst's backing array when it has capacity for the input.
func MovingAverageInto(dst, xs []float64, width int) []float64 {
	dst = growFloats(dst, len(xs))
	if width <= 1 {
		copy(dst, xs)
		return dst
	}
	half := width / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		dst[i] = s / float64(hi-lo+1)
	}
	return dst
}

// DetrendInto is Detrend writing into dst.
func DetrendInto(dst, ys []float64) []float64 {
	dst = growFloats(dst, len(ys))
	if len(ys) < 2 {
		copy(dst, ys)
		return dst
	}
	slope := (ys[len(ys)-1] - ys[0]) / float64(len(ys)-1)
	for i := range ys {
		dst[i] = ys[i] - (ys[0] + slope*float64(i))
	}
	return dst
}

// FindPeaksInto is FindPeaks appending into dst[:0]. The detection,
// deduplication and prominence ordering are identical to FindPeaks
// (including the unstable sort's tie behaviour — it is the same sort).
func FindPeaksInto(dst []Peak, xs, ys []float64, minProminence float64) []Peak {
	dst = dst[:0]
	if len(xs) != len(ys) || len(ys) < 3 {
		return dst
	}
	if cap(dst) == 0 {
		// A voltammogram rarely carries more than a handful of real
		// peaks; one up-front allocation replaces the cold append ramp.
		dst = make([]Peak, 0, 16)
	}
	for i := 1; i < len(ys)-1; i++ {
		if !(ys[i] > ys[i-1] && ys[i] >= ys[i+1]) {
			continue
		}
		prom := prominence(ys, i)
		if prom < minProminence {
			continue
		}
		x, y := refine(xs, ys, i)
		dst = append(dst, Peak{Index: i, X: x, Y: y, Prominence: prom})
	}
	dst = dedupeInPlace(xs, dst)
	sort.Slice(dst, func(i, j int) bool { return dst[i].Prominence > dst[j].Prominence })
	return dst
}

// dedupeInPlace performs dedupe's plateau-twin merge without the output
// allocation: each peak is compared against the already-kept prefix,
// exactly as dedupe compares against its growing output slice.
func dedupeInPlace(xs []float64, peaks []Peak) []Peak {
	if len(peaks) < 2 {
		return peaks
	}
	dx := 0.0
	if len(xs) > 1 {
		dx = xs[1] - xs[0]
		if dx < 0 {
			dx = -dx
		}
	}
	kept := 0
	for _, p := range peaks {
		dup := false
		for _, q := range peaks[:kept] {
			d := p.X - q.X
			if d < 0 {
				d = -d
			}
			if d <= dx {
				dup = true
				break
			}
		}
		if !dup {
			peaks[kept] = p
			kept++
		}
	}
	return peaks[:kept]
}

// growFloats returns dst resized to n samples, reallocating only when
// the capacity is insufficient.
func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}
