package signalproc

import (
	"sort"
)

// Peak is one detected local extremum in a sampled curve.
type Peak struct {
	// Index is the sample index of the extremum.
	Index int
	// X and Y are the abscissa and curve value at the extremum (after
	// parabolic refinement).
	X, Y float64
	// Prominence is the height of the peak above the higher of the two
	// flanking valleys (absolute value).
	Prominence float64
}

// FindPeaks locates local maxima of ys (with abscissas xs) whose
// prominence is at least minProminence, sorted by descending
// prominence. Positions are refined by parabolic interpolation through
// the three samples around each maximum, so peak potentials can be
// located to better than the sample spacing.
//
// To find minima (cathodic reduction peaks, which are negative currents
// under the IUPAC convention), negate ys first.
func FindPeaks(xs, ys []float64, minProminence float64) []Peak {
	if len(xs) != len(ys) || len(ys) < 3 {
		return nil
	}
	var peaks []Peak
	for i := 1; i < len(ys)-1; i++ {
		if !(ys[i] > ys[i-1] && ys[i] >= ys[i+1]) {
			continue
		}
		prom := prominence(ys, i)
		if prom < minProminence {
			continue
		}
		x, y := refine(xs, ys, i)
		peaks = append(peaks, Peak{Index: i, X: x, Y: y, Prominence: prom})
	}
	// Merge plateau twins: identical refined X within half a sample.
	peaks = dedupe(xs, peaks)
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Prominence > peaks[j].Prominence })
	return peaks
}

// prominence computes the classic topographic prominence of the peak at
// index i: descend on both sides to the lowest point before a higher
// peak (or the series edge) and take the height above the higher of the
// two minima.
func prominence(ys []float64, i int) float64 {
	leftMin := ys[i]
	for j := i - 1; j >= 0; j-- {
		if ys[j] > ys[i] {
			break
		}
		if ys[j] < leftMin {
			leftMin = ys[j]
		}
	}
	rightMin := ys[i]
	for j := i + 1; j < len(ys); j++ {
		if ys[j] > ys[i] {
			break
		}
		if ys[j] < rightMin {
			rightMin = ys[j]
		}
	}
	base := leftMin
	if rightMin > base {
		base = rightMin
	}
	return ys[i] - base
}

// refine fits a parabola through (i-1, i, i+1) and returns the vertex.
func refine(xs, ys []float64, i int) (x, y float64) {
	y0, y1, y2 := ys[i-1], ys[i], ys[i+1]
	denom := y0 - 2*y1 + y2
	if denom == 0 {
		return xs[i], ys[i]
	}
	delta := 0.5 * (y0 - y2) / denom
	if delta > 1 {
		delta = 1
	}
	if delta < -1 {
		delta = -1
	}
	dx := 0.0
	if i+1 < len(xs) {
		dx = xs[i+1] - xs[i]
	}
	return xs[i] + delta*dx, y1 - 0.25*(y0-y2)*delta
}

func dedupe(xs []float64, peaks []Peak) []Peak {
	if len(peaks) < 2 {
		return peaks
	}
	dx := 0.0
	if len(xs) > 1 {
		dx = xs[1] - xs[0]
		if dx < 0 {
			dx = -dx
		}
	}
	var out []Peak
	for _, p := range peaks {
		dup := false
		for _, q := range out {
			d := p.X - q.X
			if d < 0 {
				d = -d
			}
			if d <= dx {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
