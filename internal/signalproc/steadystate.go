package signalproc

import (
	"advdiag/internal/mathx"
)

// StepResponse summarizes a transient that settles toward a steady
// state after a stimulus (paper §II-B and Fig. 3).
type StepResponse struct {
	// Baseline is the pre-stimulus level.
	Baseline float64
	// Steady is the settled level (mean of the final tail).
	Steady float64
	// T90 is the time (from the stimulus) to reach 90 % of the step,
	// the paper's "steady-state response time".
	T90 float64
	// TTransient is the time (from the stimulus) at which the first
	// derivative of the signal is maximal, the paper's "transient
	// response time".
	TTransient float64
	// Settled reports whether the tail is flat enough to be considered
	// steady (tail slope below 1 %/tail-length of the step).
	Settled bool
}

// AnalyzeStep characterizes a step response. times/values are the
// sampled signal, stimulusTime the moment the analyte was added.
// tailFrac is the final fraction of the series treated as steady state
// (e.g. 0.2).
func AnalyzeStep(times, values []float64, stimulusTime, tailFrac float64) (StepResponse, error) {
	if len(times) != len(values) || len(values) < 8 {
		return StepResponse{}, ErrTooShort
	}
	var resp StepResponse

	// Baseline: mean of samples strictly before the stimulus.
	var pre []float64
	for i, t := range times {
		if t < stimulusTime {
			pre = append(pre, values[i])
		}
	}
	if len(pre) == 0 {
		resp.Baseline = values[0]
	} else {
		resp.Baseline = mathx.Mean(pre)
	}

	// Steady state: mean of the final tail.
	n := int(float64(len(values)) * tailFrac)
	if n < 2 {
		n = 2
	}
	tail := values[len(values)-n:]
	tailTimes := times[len(times)-n:]
	resp.Steady = mathx.Mean(tail)

	step := resp.Steady - resp.Baseline
	if step == 0 {
		resp.Settled = true
		return resp, nil
	}

	// Settled check: the tail should drift by less than 2 % of the step.
	fit, err := mathx.FitLinear(tailTimes, tail)
	if err == nil {
		drift := fit.Slope * (tailTimes[len(tailTimes)-1] - tailTimes[0])
		resp.Settled = abs(drift) < 0.02*abs(step)
	}

	// t90: first crossing of baseline + 0.9·step after the stimulus.
	// The raw trace carries the blank noise of the sensor, which biases
	// threshold crossings early; smooth with a centered window (~2.5 %
	// of the record) before timing, as an experimenter would.
	level := resp.Baseline + 0.9*step
	var post []float64
	var postT []float64
	for i, t := range times {
		if t >= stimulusTime {
			post = append(post, values[i])
			postT = append(postT, t)
		}
	}
	if w := len(post) / 40; w >= 3 {
		if w%2 == 0 {
			w++
		}
		if w > 51 {
			w = 51
		}
		post = MovingAverage(post, w)
	}
	if len(post) >= 2 {
		if tc, err := mathx.CrossingTime(postT, post, level); err == nil {
			resp.T90 = tc - stimulusTime
		}
		// Transient response time: max |dV/dt| after the stimulus.
		dt := postT[1] - postT[0]
		if d, err := Derivative(post, dt); err == nil {
			maxI, maxD := 0, 0.0
			for i, v := range d {
				if a := abs(v); a > maxD {
					maxD, maxI = a, i
				}
			}
			resp.TTransient = postT[maxI] - stimulusTime
		}
	}
	return resp, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
