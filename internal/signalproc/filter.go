// Package signalproc provides the digital signal processing applied to
// digitized acquisition traces: smoothing, baseline estimation, peak
// detection for voltammograms, derivative and steady-state analysis for
// chronoamperometric transients.
package signalproc

import (
	"errors"
)

// ErrTooShort is returned when a routine is given fewer samples than it
// needs.
var ErrTooShort = errors.New("signalproc: series too short")

// MovingAverage smooths xs with a centered window of the given odd
// width. Edges use the available partial window. Width ≤ 1 returns a
// copy.
func MovingAverage(xs []float64, width int) []float64 {
	out := make([]float64, len(xs))
	if width <= 1 {
		copy(out, xs)
		return out
	}
	half := width / 2
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(xs)-1 {
			hi = len(xs) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += xs[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out
}

// LowPass applies a one-pole IIR low-pass with smoothing factor alpha in
// (0,1]; alpha=1 passes the input through.
func LowPass(xs []float64, alpha float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 {
		return out
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	out[0] = xs[0]
	for i := 1; i < len(xs); i++ {
		out[i] = out[i-1] + alpha*(xs[i]-out[i-1])
	}
	return out
}

// Derivative returns the centered finite-difference derivative of ys
// with respect to uniformly spaced samples dt apart. Endpoints use
// one-sided differences.
func Derivative(ys []float64, dt float64) ([]float64, error) {
	if len(ys) < 2 || dt <= 0 {
		return nil, ErrTooShort
	}
	out := make([]float64, len(ys))
	out[0] = (ys[1] - ys[0]) / dt
	out[len(ys)-1] = (ys[len(ys)-1] - ys[len(ys)-2]) / dt
	for i := 1; i < len(ys)-1; i++ {
		out[i] = (ys[i+1] - ys[i-1]) / (2 * dt)
	}
	return out, nil
}

// Detrend subtracts a straight line through the first and last samples;
// a cheap baseline removal for voltammogram branches whose background
// (double-layer charging) is approximately linear in potential.
func Detrend(ys []float64) []float64 {
	out := make([]float64, len(ys))
	if len(ys) < 2 {
		copy(out, ys)
		return out
	}
	slope := (ys[len(ys)-1] - ys[0]) / float64(len(ys)-1)
	for i := range ys {
		out[i] = ys[i] - (ys[0] + slope*float64(i))
	}
	return out
}
