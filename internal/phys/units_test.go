package phys

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestUnitConstructorsRoundTrip(t *testing.T) {
	if got := MilliVolts(650).MilliVolts(); math.Abs(got-650) > 1e-9 {
		t.Errorf("mV round trip: %g", got)
	}
	if got := MicroAmps(10).MicroAmps(); math.Abs(got-10) > 1e-9 {
		t.Errorf("µA round trip: %g", got)
	}
	if got := NanoAmps(10).NanoAmps(); math.Abs(got-10) > 1e-9 {
		t.Errorf("nA round trip: %g", got)
	}
	if got := MicroMolar(575).MicroMolar(); math.Abs(got-575) > 1e-9 {
		t.Errorf("µM round trip: %g", got)
	}
	if got := SquareMillimetres(0.23).SquareMillimetres(); math.Abs(got-0.23) > 1e-12 {
		t.Errorf("mm² round trip: %g", got)
	}
	if got := MilliVoltsPerSecond(20).MilliVoltsPerSecond(); math.Abs(got-20) > 1e-9 {
		t.Errorf("mV/s round trip: %g", got)
	}
}

func TestConcentrationIdentity(t *testing.T) {
	// 1 mol/m³ == 1 mM: the deliberate unit identity the package doc
	// promises.
	c := MilliMolar(2.5)
	if float64(c) != 2.5 {
		t.Fatalf("mol/m³ vs mM identity broken: %g", float64(c))
	}
}

func TestPaperSensitivityConversion(t *testing.T) {
	// 1 µA/(mM·cm²) = 1e-6 A / (1 mol/m³ · 1e-4 m²) = 1e-2 A·m/mol.
	s := PaperSensitivity(27.7)
	if math.Abs(float64(s)-0.277) > 1e-12 {
		t.Fatalf("paper sensitivity SI value: %g", float64(s))
	}
	if math.Abs(s.Paper()-27.7) > 1e-9 {
		t.Fatalf("paper unit round trip: %g", s.Paper())
	}
}

func TestAreaConversions(t *testing.T) {
	a := SquareCentimetres(1)
	if math.Abs(float64(a)-1e-4) > 1e-15 {
		t.Fatalf("1 cm² = %g m²", float64(a))
	}
	if math.Abs(a.SquareMillimetres()-100) > 1e-9 {
		t.Fatalf("1 cm² = %g mm²", a.SquareMillimetres())
	}
}

func TestStringFormatting(t *testing.T) {
	cases := []struct {
		s    string
		want string
	}{
		{MilliVolts(650).String(), "mV"},
		{NanoAmps(12).String(), "nA"},
		{Voltage(0).String(), "0 V"},
		{MicroAmps(3).String(), "µA"},
	}
	for _, c := range cases {
		if !strings.Contains(c.s, c.want) {
			t.Errorf("%q does not mention %q", c.s, c.want)
		}
	}
}

func TestThermalVoltage(t *testing.T) {
	vt := StandardThermalVoltage()
	// RT/F at 25 °C ≈ 25.69 mV.
	if math.Abs(vt.MilliVolts()-25.69) > 0.05 {
		t.Fatalf("thermal voltage %g mV", vt.MilliVolts())
	}
}

func TestThermalVoltageScaling(t *testing.T) {
	if ThermalVoltage(2*StandardTemperature) != 2*StandardThermalVoltage() {
		t.Fatal("thermal voltage must scale linearly with T")
	}
}

// Property: unit round trips are exact for all finite values.
func TestRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return MilliVolts(x).MilliVolts() == x || math.Abs(MilliVolts(x).MilliVolts()-x) < 1e-9*math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
