package phys

// Physical constants (CODATA values, SI units).
const (
	// Faraday is the Faraday constant in C/mol.
	Faraday = 96485.33212
	// GasConstant is the molar gas constant in J/(mol·K).
	GasConstant = 8.314462618
	// Boltzmann is the Boltzmann constant in J/K.
	Boltzmann = 1.380649e-23
	// StandardTemperature is the cell temperature assumed throughout the
	// platform, in kelvin (25 °C, the paper's ambient).
	StandardTemperature = 298.15
	// ElectronCharge is the elementary charge in coulombs.
	ElectronCharge = 1.602176634e-19
)

// ThermalVoltage returns RT/F at temperature T (kelvin), the natural
// voltage scale of every electrochemical expression (≈25.69 mV at 25 °C).
func ThermalVoltage(temperatureK float64) Voltage {
	return Voltage(GasConstant * temperatureK / Faraday)
}

// StandardThermalVoltage is RT/F at StandardTemperature.
func StandardThermalVoltage() Voltage {
	return ThermalVoltage(StandardTemperature)
}
