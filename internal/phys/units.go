// Package phys provides the physical quantities, units and constants used
// throughout the advdiag platform.
//
// All quantities are stored in SI units: volts, amperes, seconds, square
// metres, and mol/m³ for concentration. The mol/m³ choice is deliberate:
// 1 mol/m³ == 1 mmol/L (mM), the unit the paper reports concentrations in,
// so paper values can be read off directly while the arithmetic stays SI.
package phys

import (
	"fmt"
	"math"
)

// Voltage is an electric potential in volts.
type Voltage float64

// Current is an electric current in amperes.
type Current float64

// Concentration is an amount concentration in mol/m³ (numerically equal
// to mM, the paper's unit).
type Concentration float64

// Area is a surface area in square metres.
type Area float64

// Duration is a time span in seconds. (Distinct from time.Duration to keep
// the solver arithmetic in plain float64 seconds.)
type Duration float64

// Diffusivity is a diffusion coefficient in m²/s.
type Diffusivity float64

// Capacitance is an electric capacitance in farads.
type Capacitance float64

// Resistance is an electric resistance in ohms.
type Resistance float64

// Power is a power in watts.
type Power float64

// SweepRate is a potential scan rate in V/s.
type SweepRate float64

// Sensitivity is a calibration-curve slope in A·m/mol: current per unit
// concentration (mol/m³) per unit electrode area (m²). One paper unit,
// 1 µA·mM⁻¹·cm⁻², equals 1e-2 A·m/mol.
type Sensitivity float64

// Convenience constructors mirroring the paper's units.

// MilliVolts returns a Voltage from a value in mV.
func MilliVolts(mv float64) Voltage { return Voltage(mv * 1e-3) }

// MicroAmps returns a Current from a value in µA.
func MicroAmps(ua float64) Current { return Current(ua * 1e-6) }

// NanoAmps returns a Current from a value in nA.
func NanoAmps(na float64) Current { return Current(na * 1e-9) }

// MilliMolar returns a Concentration from a value in mM.
func MilliMolar(mm float64) Concentration { return Concentration(mm) }

// MicroMolar returns a Concentration from a value in µM.
func MicroMolar(um float64) Concentration { return Concentration(um * 1e-3) }

// SquareMillimetres returns an Area from a value in mm².
func SquareMillimetres(mm2 float64) Area { return Area(mm2 * 1e-6) }

// SquareCentimetres returns an Area from a value in cm².
func SquareCentimetres(cm2 float64) Area { return Area(cm2 * 1e-4) }

// MilliVoltsPerSecond returns a SweepRate from a value in mV/s.
func MilliVoltsPerSecond(mvs float64) SweepRate { return SweepRate(mvs * 1e-3) }

// PaperSensitivity returns a Sensitivity from the paper's unit,
// µA/(mM·cm²).
func PaperSensitivity(uaPermMPercm2 float64) Sensitivity {
	return Sensitivity(uaPermMPercm2 * 1e-2)
}

// Accessors converting back to the paper's units.

// MilliVolts reports v in mV.
func (v Voltage) MilliVolts() float64 { return float64(v) * 1e3 }

// MicroAmps reports i in µA.
func (i Current) MicroAmps() float64 { return float64(i) * 1e6 }

// NanoAmps reports i in nA.
func (i Current) NanoAmps() float64 { return float64(i) * 1e9 }

// MilliMolar reports c in mM.
func (c Concentration) MilliMolar() float64 { return float64(c) }

// MicroMolar reports c in µM.
func (c Concentration) MicroMolar() float64 { return float64(c) * 1e3 }

// SquareMillimetres reports a in mm².
func (a Area) SquareMillimetres() float64 { return float64(a) * 1e6 }

// SquareCentimetres reports a in cm².
func (a Area) SquareCentimetres() float64 { return float64(a) * 1e4 }

// MilliVoltsPerSecond reports r in mV/s.
func (r SweepRate) MilliVoltsPerSecond() float64 { return float64(r) * 1e3 }

// Paper reports s in the paper's unit, µA/(mM·cm²).
func (s Sensitivity) Paper() float64 { return float64(s) * 1e2 }

// String implementations format quantities with engineering prefixes so
// reports read like the paper.

func (v Voltage) String() string       { return engFormat(float64(v), "V") }
func (i Current) String() string       { return engFormat(float64(i), "A") }
func (c Concentration) String() string { return engFormat(float64(c)*1e-3, "M") }
func (a Area) String() string          { return fmt.Sprintf("%.3g mm²", a.SquareMillimetres()) }
func (r SweepRate) String() string     { return fmt.Sprintf("%.3g mV/s", r.MilliVoltsPerSecond()) }
func (s Sensitivity) String() string   { return fmt.Sprintf("%.3g µA/(mM·cm²)", s.Paper()) }
func (d Duration) String() string      { return fmt.Sprintf("%.3g s", float64(d)) }

// engFormat renders x with an SI prefix (p..M) and the given unit symbol.
func engFormat(x float64, unit string) string {
	if x == 0 {
		return "0 " + unit
	}
	ax := math.Abs(x)
	type pref struct {
		scale float64
		sym   string
	}
	prefixes := []pref{
		{1e6, "M"}, {1e3, "k"}, {1, ""}, {1e-3, "m"},
		{1e-6, "µ"}, {1e-9, "n"}, {1e-12, "p"},
	}
	for _, p := range prefixes {
		if ax >= p.scale {
			return fmt.Sprintf("%.4g %s%s", x/p.scale, p.sym, unit)
		}
	}
	return fmt.Sprintf("%.4g p%s", x/1e-12, unit)
}
