package cell

import (
	"testing"

	"advdiag/internal/phys"
)

// TestSamplerMatchesAt drives a Sampler and Solution.At over the same
// timeline and demands bit-identical results, including the
// floor-at-zero of over-withdrawn species and out-of-order queries.
func TestSamplerMatchesAt(t *testing.T) {
	sol := NewSolution().
		Set("glucose", phys.MilliMolar(2)).
		Inject(10, "glucose", phys.MilliMolar(1)).
		Inject(20, "glucose", phys.MilliMolar(-5)). // floors at zero
		Inject(30, "glucose", phys.MilliMolar(2)).
		Inject(15, "lactate", phys.MilliMolar(1))

	times := []float64{0, 5, 9.999, 10, 10.5, 19, 20, 25, 30, 31, 100}
	for _, species := range []string{"glucose", "lactate", "unknown"} {
		sm := sol.Sampler(species)
		for _, tm := range times {
			if got, want := sm.At(tm), sol.At(species, tm); got != want {
				t.Fatalf("%s at t=%g: sampler %v, At %v", species, tm, got, want)
			}
		}
		// Rewind: a query before the previous one must still be exact.
		for i := len(times) - 1; i >= 0; i-- {
			tm := times[i]
			if got, want := sm.At(tm), sol.At(species, tm); got != want {
				t.Fatalf("%s rewound to t=%g: sampler %v, At %v", species, tm, got, want)
			}
		}
	}
}

// TestSamplerAllocFree pins the hot-path property the measurement loops
// rely on: advancing a sampler allocates nothing.
func TestSamplerAllocFree(t *testing.T) {
	sol := NewSolution().
		Set("glucose", phys.MilliMolar(2)).
		Inject(5, "glucose", phys.MilliMolar(1))
	sm := sol.Sampler("glucose")
	tm := 0.0
	if allocs := testing.AllocsPerRun(500, func() {
		tm += 0.05
		sm.At(tm)
	}); allocs != 0 {
		t.Fatalf("Sampler.At allocates %.0f objects per call, want 0", allocs)
	}
}

// TestSpeciesCache checks the incrementally maintained species list
// stays sorted, deduplicated, and isolated from caller mutation.
func TestSpeciesCache(t *testing.T) {
	sol := NewSolution().
		Set("lactate", 1).
		Set("glucose", 1).
		Inject(1, "aminopyrine", 1).
		Inject(2, "lactate", 1). // duplicate name via injection
		Set("glucose", 2)        // duplicate name via Set
	want := []string{"aminopyrine", "glucose", "lactate"}
	got := sol.Species()
	if len(got) != len(want) {
		t.Fatalf("Species() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Species() = %v, want %v", got, want)
		}
	}
	// The returned slice is a copy.
	got[0] = "mutated"
	if again := sol.Species(); again[0] != "aminopyrine" {
		t.Fatal("Species() must return a copy, caller mutation leaked")
	}
}
