package cell

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

func we(t *testing.T, name, target string) *electrode.Electrode {
	t.Helper()
	assays := enzyme.AssaysFor(target)
	if len(assays) == 0 {
		t.Fatalf("no assay for %s", target)
	}
	return electrode.NewWorking(name, electrode.CNT, assays[0])
}

func validCell(t *testing.T) *Cell {
	t.Helper()
	return NewSingleChamber(NewSolution(),
		we(t, "WE1", "glucose"), we(t, "WE2", "lactate"),
		electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
}

func TestSolutionInitialAndInjections(t *testing.T) {
	s := NewSolution().Set("glucose", phys.MilliMolar(1))
	s.Inject(10, "glucose", phys.MilliMolar(2))
	s.Inject(20, "glucose", phys.MilliMolar(-5)) // over-dilution floors at 0

	cases := []struct{ t, want float64 }{
		{0, 1}, {9.99, 1}, {10, 3}, {15, 3}, {20, 0}, {100, 0},
	}
	for _, c := range cases {
		if got := s.At("glucose", c.t).MilliMolar(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if s.At("lactate", 50) != 0 {
		t.Error("unknown species must read 0")
	}
}

func TestSolutionInjectionOrdering(t *testing.T) {
	s := NewSolution()
	s.Inject(20, "x", 1)
	s.Inject(10, "x", 1) // added out of order
	if got := s.At("x", 15).MilliMolar(); got != 1 {
		t.Fatalf("At(15) = %g, want 1 (injections must sort by time)", got)
	}
	if got := s.At("x", 25).MilliMolar(); got != 2 {
		t.Fatalf("At(25) = %g, want 2", got)
	}
}

func TestSolutionSpecies(t *testing.T) {
	s := NewSolution().Set("b", 1).Set("a", 1)
	s.Inject(1, "c", 1)
	names := s.Species()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("species %v", names)
	}
}

func TestCellValidate(t *testing.T) {
	if err := validCell(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCellValidateRejects(t *testing.T) {
	re := electrode.NewReference("RE1")
	ce := electrode.NewCounter("CE1")
	w := we(t, "WE1", "glucose")

	noWE := NewSingleChamber(NewSolution(), re, ce)
	if err := noWE.Validate(); err == nil {
		t.Error("chamber without WE must fail")
	}
	noRE := NewSingleChamber(NewSolution(), w, ce)
	if err := noRE.Validate(); err == nil {
		t.Error("chamber without RE must fail")
	}
	twoRE := NewSingleChamber(NewSolution(), we(t, "WEx", "glucose"), re, electrode.NewReference("RE2"), ce)
	if err := twoRE.Validate(); err == nil {
		t.Error("two reference electrodes must fail")
	}
	dup := NewSingleChamber(NewSolution(), we(t, "WE1", "glucose"), we(t, "WE1", "lactate"), re, ce)
	if err := dup.Validate(); err == nil {
		t.Error("duplicate electrode names must fail")
	}
	bad := validCell(t)
	bad.Crosstalk = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("crosstalk ≥ 1 must fail")
	}
}

func TestWorkingElectrodes(t *testing.T) {
	c := validCell(t)
	wes := c.WorkingElectrodes()
	if len(wes) != 2 || wes[0].Name != "WE1" || wes[1].Name != "WE2" {
		t.Fatalf("WEs: %v", wes)
	}
}

func TestNeighbours(t *testing.T) {
	c := validCell(t)
	nb, err := c.Neighbours("WE1")
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 1 || nb[0].Name != "WE2" {
		t.Fatalf("neighbours of WE1: %v", nb)
	}
}

func TestMultiChamberIsolation(t *testing.T) {
	c := &Cell{
		Crosstalk: DefaultCrosstalk,
		Chambers: []*Chamber{
			{Name: "ch1", Solution: NewSolution(), Electrodes: []*electrode.Electrode{
				we(t, "WE1", "glucose"), electrode.NewReference("RE1"), electrode.NewCounter("CE1")}},
			{Name: "ch2", Solution: NewSolution(), Electrodes: []*electrode.Electrode{
				we(t, "WE2", "lactate"), electrode.NewReference("RE2"), electrode.NewCounter("CE2")}},
		},
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	nb, err := c.Neighbours("WE1")
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 0 {
		t.Fatal("electrodes in separate chambers must not be neighbours")
	}
	ch, err := c.ChamberOf("WE2")
	if err != nil || ch.Name != "ch2" {
		t.Fatalf("ChamberOf(WE2) = %v, %v", ch, err)
	}
}

func TestFindWE(t *testing.T) {
	c := validCell(t)
	if _, err := c.FindWE("WE2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FindWE("RE1"); err == nil {
		t.Fatal("reference electrode must not be findable as WE")
	}
	if _, err := c.FindWE("nope"); err == nil {
		t.Fatal("unknown electrode must fail")
	}
}

// Property: solution concentration is non-negative at all times under
// arbitrary injection sequences.
func TestSolutionNonNegativeProperty(t *testing.T) {
	f := func(deltas []int8, times []uint8) bool {
		s := NewSolution()
		n := len(deltas)
		if len(times) < n {
			n = len(times)
		}
		for i := 0; i < n; i++ {
			s.Inject(float64(times[i]), "x", phys.Concentration(deltas[i]))
		}
		for tq := 0.0; tq < 300; tq += 7 {
			if s.At("x", tq) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
