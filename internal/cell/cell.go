// Package cell assembles electrodes into electrochemical cells: one or
// more chambers, each holding a solution with time-varying composition,
// a set of working electrodes, and the reference/counter pair they share
// (paper §II: single sensors, n+2-electrode multi-target sensors, and
// arrays with or without separate chambers).
package cell

import (
	"fmt"
	"math"
	"sort"

	"advdiag/internal/electrode"
	"advdiag/internal/phys"
)

// Injection is a step change of one species' bulk concentration at a
// given time (sample addition into the measurement chamber, paper
// Fig. 3).
type Injection struct {
	// Time is the injection instant in seconds from experiment start.
	Time float64
	// Species is the species name.
	Species string
	// Delta is the concentration step (may be negative for dilution,
	// but the running total is floored at zero).
	Delta phys.Concentration
}

// Solution is the bulk liquid of one chamber: initial concentrations
// plus a time-ordered list of injections.
type Solution struct {
	initial    map[string]phys.Concentration
	injections []Injection
	// names is the sorted species list, maintained incrementally by Set
	// and Inject so the read paths (Species, Sampler construction) never
	// re-sort.
	names []string
}

// NewSolution returns an empty solution (all concentrations zero).
func NewSolution() *Solution {
	return &Solution{initial: make(map[string]phys.Concentration)}
}

// Reset empties the solution in place — no initial concentrations, no
// injections — while keeping the allocated map and slices for reuse. A
// reset solution is indistinguishable from NewSolution() to every read
// path, which is what lets batched panel runners rebuild per-sample
// solutions without reallocating.
func (s *Solution) Reset() {
	clear(s.initial)
	s.injections = s.injections[:0]
	s.names = s.names[:0]
}

// noteSpecies records a species name in the sorted name cache.
func (s *Solution) noteSpecies(species string) {
	i := sort.SearchStrings(s.names, species)
	if i < len(s.names) && s.names[i] == species {
		return
	}
	s.names = append(s.names, "")
	copy(s.names[i+1:], s.names[i:])
	s.names[i] = species
}

// Set fixes the initial concentration of a species.
func (s *Solution) Set(species string, c phys.Concentration) *Solution {
	if c < 0 {
		c = 0
	}
	s.initial[species] = c
	s.noteSpecies(species)
	return s
}

// Inject schedules a concentration step. Injections may be added in any
// order; they are sorted internally.
func (s *Solution) Inject(t float64, species string, delta phys.Concentration) *Solution {
	s.injections = append(s.injections, Injection{Time: t, Species: species, Delta: delta})
	sort.SliceStable(s.injections, func(i, j int) bool { return s.injections[i].Time < s.injections[j].Time })
	s.noteSpecies(species)
	return s
}

// At returns the bulk concentration of a species at time t.
func (s *Solution) At(species string, t float64) phys.Concentration {
	c := s.initial[species]
	for _, inj := range s.injections {
		if inj.Time > t {
			break
		}
		if inj.Species == species {
			c += inj.Delta
			if c < 0 {
				c = 0
			}
		}
	}
	return c
}

// Species returns every species name mentioned by the solution, sorted.
// The list is maintained incrementally by Set/Inject; the returned
// slice is a copy the caller may keep or mutate.
func (s *Solution) Species() []string {
	return append([]string(nil), s.names...)
}

// Sampler is an O(1)-per-call view of one species' concentration
// timeline. Where Solution.At pays a map lookup plus a scan of the full
// injection list on every call, a Sampler resolves the map once at
// construction and walks its private injection cursor forward as time
// advances — the fast path the per-timestep measurement loops use.
//
// At calls with non-decreasing t are O(1); a time before the previous
// call rewinds the cursor (O(k) in the species' injection count), so a
// Sampler is correct for any call pattern and merely fastest for the
// monotone one. A Sampler belongs to one goroutine.
type Sampler struct {
	initial phys.Concentration
	steps   []Injection // this species only, time-ordered
	idx     int
	cur     phys.Concentration
	lastT   float64
}

// Sampler builds the single-species cursor for the given species name.
// The zero concentration timeline of an unknown species is itself valid
// (every concentration is 0), mirroring Solution.At.
func (s *Solution) Sampler(species string) *Sampler {
	sm := &Sampler{initial: s.initial[species]}
	for _, inj := range s.injections {
		if inj.Species == species {
			sm.steps = append(sm.steps, inj)
		}
	}
	sm.rewind()
	return sm
}

// rewind resets the cursor to t = −∞.
func (sm *Sampler) rewind() {
	sm.idx = 0
	sm.cur = sm.initial
	sm.lastT = math.Inf(-1)
}

// At returns the species concentration at time t, matching
// Solution.At exactly (including the floor-at-zero of the running
// total after each injection).
func (sm *Sampler) At(t float64) phys.Concentration {
	if t < sm.lastT {
		sm.rewind()
	}
	sm.lastT = t
	for sm.idx < len(sm.steps) && sm.steps[sm.idx].Time <= t {
		sm.cur += sm.steps[sm.idx].Delta
		if sm.cur < 0 {
			sm.cur = 0
		}
		sm.idx++
	}
	return sm.cur
}

// Chamber is one fluidic volume with its electrodes.
type Chamber struct {
	// Name identifies the chamber ("main", "ch1"...).
	Name string
	// Solution is the chamber liquid.
	Solution *Solution
	// Electrodes lists every electrode wetted by the chamber.
	Electrodes []*electrode.Electrode
}

// WorkingElectrodes returns the chamber's WEs in declaration order.
func (ch *Chamber) WorkingElectrodes() []*electrode.Electrode {
	var out []*electrode.Electrode
	for _, e := range ch.Electrodes {
		if e.Role == electrode.Working {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks the chamber holds a legal electrode set: at least one
// WE, exactly one RE, exactly one CE.
func (ch *Chamber) Validate() error {
	if ch.Name == "" {
		return fmt.Errorf("cell: chamber with empty name")
	}
	if ch.Solution == nil {
		return fmt.Errorf("cell: chamber %s has no solution", ch.Name)
	}
	var nWE, nRE, nCE int
	for _, e := range ch.Electrodes {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("cell: chamber %s: %w", ch.Name, err)
		}
		switch e.Role {
		case electrode.Working:
			nWE++
		case electrode.Reference:
			nRE++
		case electrode.Counter:
			nCE++
		}
	}
	if nWE < 1 {
		return fmt.Errorf("cell: chamber %s has no working electrode", ch.Name)
	}
	if nRE != 1 {
		return fmt.Errorf("cell: chamber %s needs exactly one reference electrode, has %d", ch.Name, nRE)
	}
	if nCE != 1 {
		return fmt.Errorf("cell: chamber %s needs exactly one counter electrode, has %d", ch.Name, nCE)
	}
	return nil
}

// DefaultCrosstalk is the fraction of a neighbouring working electrode's
// H₂O₂ production that appears as parasitic current on a co-chambered
// electrode. The paper argues this is small ("the diffusion coefficient
// of H₂O₂ is really low, [so] we can assume negligible cross-talk");
// 1 % is our default for adjacent electrodes in a shared chamber.
const DefaultCrosstalk = 0.01

// Cell is the whole bio-interface: one or more chambers. Electrodes in
// different chambers never interact chemically.
type Cell struct {
	// Chambers lists the fluidic volumes.
	Chambers []*Chamber
	// Crosstalk is the co-chamber H₂O₂ leakage coefficient; zero means
	// ideal isolation, DefaultCrosstalk is the physical default.
	Crosstalk float64
}

// NewSingleChamber builds the common case: every electrode in one shared
// chamber (the paper's Fig. 4 demonstrator).
func NewSingleChamber(sol *Solution, electrodes ...*electrode.Electrode) *Cell {
	return &Cell{
		Chambers:  []*Chamber{{Name: "main", Solution: sol, Electrodes: electrodes}},
		Crosstalk: DefaultCrosstalk,
	}
}

// Validate checks all chambers and name uniqueness across the cell.
func (c *Cell) Validate() error {
	if len(c.Chambers) == 0 {
		return fmt.Errorf("cell: no chambers")
	}
	if c.Crosstalk < 0 || c.Crosstalk >= 1 {
		return fmt.Errorf("cell: crosstalk coefficient %g outside [0,1)", c.Crosstalk)
	}
	seenCh := map[string]bool{}
	seenEl := map[string]bool{}
	for _, ch := range c.Chambers {
		if seenCh[ch.Name] {
			return fmt.Errorf("cell: duplicate chamber name %q", ch.Name)
		}
		seenCh[ch.Name] = true
		if err := ch.Validate(); err != nil {
			return err
		}
		for _, e := range ch.Electrodes {
			if seenEl[e.Name] {
				return fmt.Errorf("cell: duplicate electrode name %q", e.Name)
			}
			seenEl[e.Name] = true
		}
	}
	return nil
}

// WorkingElectrodes returns every WE across all chambers in order.
func (c *Cell) WorkingElectrodes() []*electrode.Electrode {
	var out []*electrode.Electrode
	for _, ch := range c.Chambers {
		out = append(out, ch.WorkingElectrodes()...)
	}
	return out
}

// ChamberOf returns the chamber containing the named electrode.
func (c *Cell) ChamberOf(name string) (*Chamber, error) {
	for _, ch := range c.Chambers {
		for _, e := range ch.Electrodes {
			if e.Name == name {
				return ch, nil
			}
		}
	}
	return nil, fmt.Errorf("cell: no chamber holds electrode %q", name)
}

// FindWE returns the named working electrode. It scans in place (the
// measurement engine resolves electrodes by name on every run, so this
// lookup must not build the filtered list WorkingElectrodes returns).
func (c *Cell) FindWE(name string) (*electrode.Electrode, error) {
	for _, ch := range c.Chambers {
		for _, e := range ch.Electrodes {
			if e.Role == electrode.Working && e.Name == name {
				return e, nil
			}
		}
	}
	return nil, fmt.Errorf("cell: no working electrode %q", name)
}

// Neighbours returns the other working electrodes sharing a chamber with
// the named one — the candidates for chemical cross-talk.
func (c *Cell) Neighbours(name string) ([]*electrode.Electrode, error) {
	ch, err := c.ChamberOf(name)
	if err != nil {
		return nil, err
	}
	var out []*electrode.Electrode
	for _, e := range ch.WorkingElectrodes() {
		if e.Name != name {
			out = append(out, e)
		}
	}
	return out, nil
}

// String summarizes the cell.
func (c *Cell) String() string {
	nWE := len(c.WorkingElectrodes())
	return fmt.Sprintf("Cell[%d chamber(s), %d WE]", len(c.Chambers), nWE)
}
