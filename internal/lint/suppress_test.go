package lint_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"advdiag/internal/lint"
)

// TestReportJSONRoundTrip pins the -json schema: a report survives
// marshal/unmarshal bit-identically, including the optional fix.
func TestReportJSONRoundTrip(t *testing.T) {
	in := lint.Report{
		Version: lint.ReportVersion,
		Findings: []lint.Finding{
			{
				Rule:     lint.RuleDetMapRange,
				Severity: lint.SeverityError,
				File:     "internal/runtime/calibration.go",
				Line:     269,
				Col:      2,
				Message:  "order-sensitive range over map sample",
				Fix:      &lint.Fix{Start: 120, End: 180, Replacement: "sorted loop"},
			},
			{
				Rule:     lint.RuleAllowStale,
				Severity: lint.SeverityWarning,
				File:     "wire/binary.go",
				Line:     10,
				Col:      1,
				Message:  "advdiag:allow det-time suppresses nothing",
			},
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out lint.Report
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
	// The field names are the schema; a rename is a breaking change.
	for _, key := range []string{`"version"`, `"findings"`, `"rule"`, `"severity"`, `"file"`, `"line"`, `"col"`, `"message"`, `"fix"`, `"start"`, `"end"`, `"replacement"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("report JSON missing key %s in %s", key, data)
		}
	}
	// A finding without a fix must omit the key entirely.
	solo, err := json.Marshal(in.Findings[1])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(solo), `"fix"`) {
		t.Errorf("fix-less finding serialized a fix key: %s", solo)
	}
}

// TestKnownRule pins the suppressible rule set: every analyzer ID is
// known, the allow-* machinery IDs are not suppressible, and junk is
// rejected.
func TestKnownRule(t *testing.T) {
	for _, r := range lint.Rules() {
		if !lint.KnownRule(r.ID) {
			t.Errorf("KnownRule(%q) = false for a listed analyzer", r.ID)
		}
	}
	for _, id := range []string{lint.RuleAllowStale, lint.RuleAllowEmptyReason, lint.RuleAllowUnknownRule, "det-tyme", ""} {
		if lint.KnownRule(id) {
			t.Errorf("KnownRule(%q) = true, want false", id)
		}
	}
}
