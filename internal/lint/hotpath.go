package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The hotpath analyzers back the AllocsPerRun ceilings with a
// compile-time gate. A function annotated //advdiag:hotpath (the
// directive goes in, or directly below, the doc comment) declares
// itself allocation-bounded: per-call fmt formatting, escaping
// closures, and grow-from-nil appends in loops are exactly the three
// allocation patterns past PRs removed from RunCA/RunCV and the codec,
// and the annotation keeps them from creeping back.

// HotpathDirective is the annotation that opts a function into the
// hot-path rules.
const HotpathDirective = "//advdiag:hotpath"

// hotFuncs returns the declared functions annotated //advdiag:hotpath.
func hotFuncs(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if strings.TrimSpace(c.Text) == HotpathDirective {
					out = append(out, fd)
					break
				}
			}
		}
	}
	return out
}

// checkHotFmt flags direct calls into package fmt from annotated
// functions. Even the error-path ones count: the rule is mechanical,
// and a call that genuinely runs only on a cold path carries an
// //advdiag:allow hot-fmt directive saying so.
func checkHotFmt(p *Package, _ *Config) []Finding {
	var out []Finding
	for _, fd := range hotFuncs(p) {
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				out = append(out, p.finding(sel.Pos(),
					"fmt.%s in hot-path function %s: fmt allocates on every call; preformat the string or use strconv",
					sel.Sel.Name, name))
			}
			return true
		})
	}
	return out
}

// checkHotClosure flags function literals in annotated functions
// except immediately-invoked ones (func(){...}() compiles without an
// allocation when it does not escape; a literal that is stored,
// passed, returned, deferred, or launched does escape and allocates
// its context).
func checkHotClosure(p *Package, _ *Config) []Finding {
	var out []Finding
	for _, fd := range hotFuncs(p) {
		name := fd.Name.Name
		immediate := map[*ast.FuncLit]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if lit, ok := call.Fun.(*ast.FuncLit); ok {
					immediate[lit] = true
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || immediate[lit] {
				return true
			}
			out = append(out, p.finding(lit.Pos(),
				"escaping closure in hot-path function %s: the context allocates per call; hoist it to a method or pass explicit arguments",
				name))
			return true
		})
	}
	return out
}

// checkHotAppend flags append-in-a-loop onto a slice the function
// declared as nil (var s []T, s := []T{}, s := []T(nil)) without later
// preallocation — the grow path reallocates log(n) times per call
// where a make(T, 0, n) costs one.
func checkHotAppend(p *Package, _ *Config) []Finding {
	var out []Finding
	for _, fd := range hotFuncs(p) {
		name := fd.Name.Name
		fresh := freshNilSlices(p, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			ast.Inspect(body, func(n ast.Node) bool {
				st, ok := n.(*ast.AssignStmt)
				if !ok || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
					return true
				}
				lhs, ok := st.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := call.Fun.(*ast.Ident)
				if !ok || fn.Name != "append" || p.Info.Uses[fn] != types.Universe.Lookup("append") {
					return true
				}
				if v, ok := p.Info.Uses[lhs].(*types.Var); ok && fresh[v] {
					out = append(out, p.finding(st.Pos(),
						"append onto fresh nil slice %s in a loop inside hot-path function %s: preallocate with make(%s, 0, n)",
						lhs.Name, name, v.Type().String()))
				}
				return true
			})
			return true
		})
	}
	return out
}

// freshNilSlices collects the slice variables fd declares with no
// backing array — var s []T (no initializer), s := []T{}, s := []T(nil)
// — that the function never re-points at real storage. A later
// s = make([]T, 0, n) (or any assignment other than appending to
// itself) clears the fresh-nil status: the declaration was just
// scoping, the capacity decision happens at the make.
func freshNilSlices(p *Package, fd *ast.FuncDecl) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	mark := func(id *ast.Ident) {
		if v, ok := p.Info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				fresh[v] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if emptySliceExpr(p, n.Rhs[0]) {
				mark(id)
			}
		}
		return true
	})
	// Second pass: an assignment that re-points the variable at real
	// storage (anything but an empty-slice value or a self-append)
	// clears it.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
			return true
		}
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		var v *types.Var
		if u, ok := p.Info.Uses[id].(*types.Var); ok {
			v = u
		} else if d, ok := p.Info.Defs[id].(*types.Var); ok {
			v = d
		}
		if v == nil || !fresh[v] {
			return true
		}
		if emptySliceExpr(p, st.Rhs[0]) || isSelfAppend(p, st) {
			return true
		}
		delete(fresh, v)
		return true
	})
	return fresh
}

// isSelfAppend reports whether st is x = append(x, ...).
func isSelfAppend(p *Package, st *ast.AssignStmt) bool {
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 1 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || p.Info.Uses[fn] != types.Universe.Lookup("append") {
		return false
	}
	lhs, ok := st.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	return ok && dst.Name == lhs.Name
}

// emptySliceExpr reports whether e is a zero-capacity slice value:
// []T{} or []T(nil).
func emptySliceExpr(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		if len(e.Elts) != 0 {
			return false
		}
		tv, ok := p.Info.Types[e]
		if !ok {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice
	case *ast.CallExpr: // []T(nil) conversion
		if len(e.Args) != 1 {
			return false
		}
		if id, ok := e.Args[0].(*ast.Ident); !ok || id.Name != "nil" {
			return false
		}
		tv, ok := p.Info.Types[e.Fun]
		if !ok || !tv.IsType() {
			return false
		}
		_, isSlice := tv.Type.Underlying().(*types.Slice)
		return isSlice
	}
	return false
}
