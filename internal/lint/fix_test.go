package lint_test

import (
	"go/format"
	"os"
	"path/filepath"
	"testing"

	"advdiag/internal/lint"
)

// TestApplyFixesSmoke is the labvet -fix smoke test: copy the fixes
// testdata package to a scratch directory, apply every suggested fix,
// and verify the result is gofmt-clean and resolves the findings.
func TestApplyFixesSmoke(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixes", "fixes.go"))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	file := filepath.Join(scratch, "fixes.go")
	if err := os.WriteFile(file, src, 0o644); err != nil {
		t.Fatal(err)
	}

	const importPath = "scratch/fixes"
	cfg := &lint.Config{Kernel: []string{importPath}}
	load := func() []lint.Finding {
		loader, err := lint.NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(scratch, importPath)
		if err != nil {
			t.Fatal(err)
		}
		return lint.Run([]*lint.Package{pkg}, cfg)
	}

	findings := load()
	var fixes, mapRanges int
	for _, f := range findings {
		if f.Fix != nil {
			fixes++
		}
		if f.Rule == lint.RuleDetMapRange {
			mapRanges++
		}
	}
	if mapRanges != 2 {
		t.Fatalf("det-maprange findings = %d, want 2 (KeyOnly and KeyValue): %+v", mapRanges, findings)
	}
	// Both map ranges and the empty-reason allow carry mechanical fixes.
	if fixes != 3 {
		t.Fatalf("findings with fixes = %d, want 3: %+v", fixes, findings)
	}

	changed, err := lint.ApplyFixes(findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != file {
		t.Fatalf("ApplyFixes changed %v, want [%s]", changed, file)
	}

	fixed, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	formatted, err := format.Source(fixed)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v\n%s", err, fixed)
	}
	if string(formatted) != string(fixed) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", fixed)
	}

	// Re-linting the fixed copy: the sorted-range rewrites resolve both
	// det-maprange findings, and the appended TODO reason resolves the
	// allow-empty-reason error. Nothing error-severity remains.
	after := load()
	if lint.HasErrors(after) {
		t.Errorf("error findings remain after fixes: %+v", after)
	}
	for _, f := range after {
		if f.Rule == lint.RuleDetMapRange {
			t.Errorf("det-maprange still fires after the sorted-range fix: %+v", f)
		}
	}
}

// TestApplyFixesSkipsOverlap pins the overlap policy: of two fixes
// touching the same bytes, the first (in position order) wins and the
// second is skipped rather than corrupting the file.
func TestApplyFixesSkipsOverlap(t *testing.T) {
	scratch := t.TempDir()
	file := filepath.Join(scratch, "f.go")
	orig := "package p\n\nvar x = 1\n"
	if err := os.WriteFile(file, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := []lint.Finding{
		{File: file, Fix: &lint.Fix{Start: 19, End: 20, Replacement: "2"}},
		{File: file, Fix: &lint.Fix{Start: 19, End: 20, Replacement: "3"}},
	}
	if _, err := lint.ApplyFixes(findings); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if want := "package p\n\nvar x = 2\n"; string(got) != want {
		t.Errorf("ApplyFixes wrote %q, want %q", got, want)
	}
}
