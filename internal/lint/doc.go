// Package lint is the advdiag static-analysis suite behind cmd/labvet:
// stdlib-only analyzers (go/parser, go/types, and the compiler's
// source importer — no dependency beyond the toolchain) that
// mechanically enforce the repository's contracts.
//
// Four analyzer families, eleven rules:
//
//   - determinism (det-time, det-rand, det-maprange): kernel packages
//     listed in Config.Kernel must compute results as a pure function
//     of design and seed, so Fleet.ReplayPanel can recompute any
//     outcome bit-identically.
//   - hotpath (hot-fmt, hot-closure, hot-append): functions annotated
//     //advdiag:hotpath must not reintroduce the per-call allocation
//     patterns the AllocsPerRun ceilings were won by removing.
//   - wire-parity (wire-json, wire-bin-encode, wire-bin-decode): every
//     exported field of a wire struct appears in the JSON twin and, if
//     the struct takes part in the binary codec, in both the encoder
//     and the decoder.
//   - lifecycle (life-locked-submit, life-engine-capture): no blocking
//     Submit or channel send while holding a mutex (the serving
//     layer's two-lock design), and no measure.Engine captured by a
//     goroutine-spawning closure (one engine per goroutine).
//
// Suppression grammar, placed on the offending line or the line
// directly above:
//
//	//advdiag:allow <rule-id> <reason...>
//
// The reason is mandatory (allow-empty-reason is an error), the rule
// ID must exist (allow-unknown-rule), and a directive that no longer
// suppresses anything warns (allow-stale).
//
// Entry points: NewLoader/Load/LoadDir parse and type-check packages,
// Run executes every rule and applies suppressions, ApplyFixes applies
// the mechanical edits some findings carry, and Report is the
// versioned JSON document labvet -json emits. Golden tests under
// testdata/src pin each rule's firing and non-firing cases with
// expectation comments.
package lint
