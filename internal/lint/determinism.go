package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// The determinism analyzers enforce the replay contract on kernel
// packages (Config.Kernel): every bit of a panel result must be a pure
// function of the design and the seed, so Fleet.ReplayPanel can
// recompute any outcome bit-identically on any topology. Wall-clock
// reads, the process-global math/rand source, and order-sensitive map
// iteration each break that silently — tests catch them only when a
// golden trace happens to cover the poisoned path.

// checkDetTime flags selections of time.Now, time.Since, and
// time.Until in kernel packages.
func checkDetTime(p *Package, cfg *Config) []Finding {
	if !cfg.isKernel(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since", "Until":
				out = append(out, p.finding(sel.Pos(),
					"time.%s in kernel package %s: results must be a pure function of design and seed; take timing from the schedule plan or a caller-passed timestamp",
					sel.Sel.Name, p.Types.Name()))
			}
			return true
		})
	}
	return out
}

// checkDetRand flags math/rand (and math/rand/v2) imports in kernel
// packages — one finding per import spec. The package-global source
// those packages front is process-seeded; kernel randomness must come
// from mathx.RNG streams seeded via runtime.SampleSeed.
func checkDetRand(p *Package, cfg *Config) []Finding {
	if !cfg.isKernel(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.finding(imp.Pos(),
					"%s imported in kernel package %s: use a mathx.RNG seeded from runtime.SampleSeed so noise streams replay",
					path, p.Types.Name()))
			}
		}
	}
	return out
}

// checkDetMapRange flags order-sensitive map iteration in kernel
// packages. A range over a map is clean only when every statement in
// its body is order-independent by construction:
//
//   - the key-collect idiom: s = append(s, k) of the key alone (the
//     caller sorts s before using it);
//   - a store into another map indexed by the loop key: m2[k] = expr;
//   - a delete from another map keyed by the loop key: delete(m2, k).
//
// Everything else — writes to accumulator variables, early returns,
// calls that observe the iteration — sees Go's randomized map order
// and is flagged. Bodies that are order-independent for a reason the
// analyzer cannot see (a commutative reduction, a min-key selection)
// carry an //advdiag:allow det-maprange directive whose reason states
// the argument.
func checkDetMapRange(p *Package, cfg *Config) []Finding {
	if !cfg.isKernel(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.mapRangeBodyIsOrderFree(rng) {
				return true
			}
			fnd := p.finding(rng.Pos(),
				"order-sensitive range over map %s in kernel package %s: collect the keys, sort them, and range the sorted slice",
				exprString(p, rng.X), p.Types.Name())
			if fix, ok := p.sortedRangeFix(f, rng); ok {
				fnd.Fix = fix
			}
			out = append(out, fnd)
			return true
		})
	}
	return out
}

// mapRangeBodyIsOrderFree reports whether every statement of the range
// body is one of the sanctioned order-independent forms.
func (p *Package) mapRangeBodyIsOrderFree(rng *ast.RangeStmt) bool {
	keyName := ""
	if id, ok := rng.Key.(*ast.Ident); ok {
		keyName = id.Name
	}
	if keyName == "" || keyName == "_" {
		// No usable key: nothing in the body can be keyed by it, so
		// any body statement is order-suspect.
		return len(rng.Body.List) == 0
	}
	for _, st := range rng.Body.List {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if !p.orderFreeAssign(st, keyName) {
				return false
			}
		case *ast.ExprStmt:
			// delete(m2, k)
			call, ok := st.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "delete" || p.Info.Uses[id] != types.Universe.Lookup("delete") {
				return false
			}
			if arg, ok := call.Args[1].(*ast.Ident); !ok || arg.Name != keyName {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// orderFreeAssign recognizes the two sanctioned assignment forms
// inside a map-range body: appending the loop key to a slice, and
// storing into a map indexed by the loop key.
func (p *Package) orderFreeAssign(st *ast.AssignStmt, keyName string) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	// m2[k] = expr
	if idx, ok := st.Lhs[0].(*ast.IndexExpr); ok {
		if id, ok := idx.Index.(*ast.Ident); ok && id.Name == keyName {
			if tv, ok := p.Info.Types[idx.X]; ok {
				_, isMap := tv.Type.Underlying().(*types.Map)
				return isMap
			}
		}
		return false
	}
	// s = append(s, k) — s may be a plain variable or a field
	// (scratch.names); what matters is that the destination and the
	// assignee are the same storage and only the key is appended.
	switch st.Lhs[0].(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || p.Info.Uses[fn] != types.Universe.Lookup("append") {
		return false
	}
	if exprString(p, call.Args[0]) != exprString(p, st.Lhs[0]) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == keyName
}

// exprString renders a (small) expression for messages.
func exprString(p *Package, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(p, e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(p, e.Fun) + "(...)"
	default:
		return "expression"
	}
}
