package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The lifecycle analyzers encode two concurrency contracts that cost
// real debugging time before they were written down:
//
//   - the two-lock design of the serving layer (PR 5): a goroutine
//     holding a mutex must not block on a shard queue — blocking
//     Submit and bare channel sends park the lock holder, and every
//     other path through that lock parks behind it. Release first, or
//     use TrySubmit / a select with a default arm.
//   - one-engine-per-goroutine (PR 1): a measure.Engine owns its RNG
//     stream; capturing one in a goroutine-spawning closure interleaves
//     noise draws and destroys reproducibility even when the race
//     detector sees nothing.

// checkLifeLockedSubmit walks each function body in source order
// tracking which mutexes are held (x.Lock() acquires, x.Unlock()
// releases, defer x.Unlock() holds to function exit; branches that end
// in return/panic do not leak their lock state into the fall-through
// path) and flags blocking operations under a held lock: calls to
// methods named Submit, and channel sends outside a select that has a
// default arm.
func checkLifeLockedSubmit(p *Package, _ *Config) []Finding {
	var out []Finding
	walkFuncBodies(p, func(body *ast.BlockStmt) {
		w := &lockWalker{p: p}
		w.block(body, map[string]bool{})
		out = append(out, w.findings...)
	})
	return out
}

// walkFuncBodies visits every function body in the package — declared
// functions and function literals alike, each analyzed with fresh lock
// state (a literal runs on whatever goroutine calls it; the rule is
// about the lexical hold within one body).
func walkFuncBodies(p *Package, visit func(*ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					visit(n.Body)
				}
			case *ast.FuncLit:
				visit(n.Body)
			}
			return true
		})
	}
}

type lockWalker struct {
	p        *Package
	findings []Finding
}

// block processes stmts in order against held and returns the exit
// state (nil when every path out of the block terminates).
func (w *lockWalker) block(b *ast.BlockStmt, held map[string]bool) map[string]bool {
	return w.stmts(b.List, held)
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, st := range list {
		held = w.stmt(st, held)
		if held == nil {
			return nil
		}
	}
	return held
}

// stmt processes one statement, returning the fall-through lock state
// (nil when the statement always terminates the enclosing flow).
func (w *lockWalker) stmt(st ast.Stmt, held map[string]bool) map[string]bool {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return w.block(st, held)
	case *ast.ExprStmt:
		w.exprOps(st.X, held)
		return held
	case *ast.AssignStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.DeclStmt:
		ast.Inspect(st, w.opInspector(held))
		if _, ok := st.(*ast.ReturnStmt); ok {
			return nil
		}
		return held
	case *ast.SendStmt:
		ast.Inspect(st.Value, w.opInspector(held))
		if len(held) > 0 {
			w.flagSend(st, held)
		}
		return held
	case *ast.DeferStmt:
		// defer x.Unlock() pins the lock to function exit: the state
		// simply stays held for the remaining statements, which is
		// what we want to check. Other deferred calls are inspected
		// for operations (their bodies run with the lock still held
		// whenever the defer was registered under it).
		if recv, name, ok := w.mutexMethod(st.Call); ok && (name == "Unlock" || name == "RUnlock") {
			_ = recv
			return held
		}
		ast.Inspect(st.Call, w.opInspector(held))
		return held
	case *ast.IfStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
			if held == nil {
				return nil
			}
		}
		ast.Inspect(st.Cond, w.opInspector(held))
		thenExit := w.block(st.Body, copyState(held))
		var elseExit map[string]bool
		if st.Else != nil {
			elseExit = w.stmt(st.Else, copyState(held))
		} else {
			elseExit = held
		}
		return mergeStates(thenExit, elseExit)
	case *ast.ForStmt:
		if st.Init != nil {
			held = w.stmt(st.Init, held)
		}
		if held == nil {
			return nil
		}
		if st.Cond != nil {
			ast.Inspect(st.Cond, w.opInspector(held))
		}
		w.block(st.Body, copyState(held))
		return held
	case *ast.RangeStmt:
		ast.Inspect(st.X, w.opInspector(held))
		w.block(st.Body, copyState(held))
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault && len(held) > 0 {
				w.flagSend(send, held)
			}
			w.stmts(cc.Body, copyState(held))
		}
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		ast.Inspect(st, w.opInspector(held))
		return held
	case *ast.BranchStmt:
		return nil
	case *ast.GoStmt:
		// The spawned body runs with its own (empty) lock state and is
		// visited by walkFuncBodies; launching it does not block.
		return held
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	default:
		return held
	}
}

// exprOps scans one expression for lock transitions and blocking
// operations, mutating held in place.
func (w *lockWalker) exprOps(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, w.opInspector(held))
}

// opInspector returns an ast.Inspect callback that applies lock
// transitions and flags Submit calls under a held lock. Function
// literals are skipped (they run elsewhere; walkFuncBodies covers
// them).
func (w *lockWalker) opInspector(held map[string]bool) func(ast.Node) bool {
	return func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := w.mutexMethod(call); ok {
			switch name {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Submit" && len(held) > 0 {
			w.findings = append(w.findings, w.p.finding(call.Pos(),
				"blocking %s.Submit while holding %s: a full queue parks this lock holder and everything behind it; release the lock first or use TrySubmit",
				exprString(w.p, sel.X), heldNames(held)))
		}
		return true
	}
}

func (w *lockWalker) flagSend(st *ast.SendStmt, held map[string]bool) {
	w.findings = append(w.findings, w.p.finding(st.Pos(),
		"blocking send on %s while holding %s: a full channel parks this lock holder; release the lock first or send under a select with a default arm",
		exprString(w.p, st.Chan), heldNames(held)))
}

// mutexMethod reports whether call is x.Lock/Unlock/RLock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver's source form as
// the lock identity.
func (w *lockWalker) mutexMethod(call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := w.p.Info.Types[sel.X]
	if !okT {
		return "", "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", "", false
	}
	return exprString(w.p, sel.X), sel.Sel.Name, true
}

func copyState(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k := range held {
		cp[k] = true
	}
	return cp
}

// mergeStates joins the exit states of two branches: nil (terminated)
// branches contribute nothing; two live branches merge conservatively
// by union, so a lock released on only one path still counts as held.
func mergeStates(a, b map[string]bool) map[string]bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := copyState(a)
	for k := range b {
		out[k] = true
	}
	return out
}

// heldNames renders the held-lock set for messages, sorted for
// deterministic output.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// Tiny set; insertion sort keeps this dependency-free of sort for
	// no reason — use lexicographic selection.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, ", ")
}

// checkLifeEngineCapture flags closures that run on another goroutine
// (the operand of a go statement, or an argument to the conc package's
// pool primitives) and capture a measure.Engine declared outside the
// closure.
func checkLifeEngineCapture(p *Package, _ *Config) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var lits []*ast.FuncLit
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
			case *ast.CallExpr:
				if !callsConcPackage(p, n) {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						lits = append(lits, lit)
					}
				}
			default:
				return true
			}
			for _, lit := range lits {
				out = append(out, p.engineCaptures(lit)...)
			}
			return true
		})
	}
	return out
}

// callsConcPackage reports whether call invokes a function of the
// module's goroutine-pool package (import path ending in
// internal/conc), whose primitives run their function arguments on
// worker goroutines.
func callsConcPackage(p *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := p.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "internal/conc")
}

// engineCaptures reports each identifier inside lit that refers to a
// measure.Engine (value or pointer) declared outside the literal.
func (p *Package) engineCaptures(lit *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if !isMeasureEngine(v.Type()) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared (or a parameter) inside the literal
		}
		out = append(out, p.finding(id.Pos(),
			"measure.Engine %q captured by a goroutine-spawning closure: an Engine and its RNG stream belong to one goroutine — build one per goroutine (NewEngine is cheap)",
			id.Name))
		return true
	})
	return out
}

func isMeasureEngine(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/measure")
}
