package lint

import (
	"strconv"
	"strings"
)

// Suppression: a finding is silenced by an //advdiag:allow directive
// naming its rule, placed on the offending line as a trailing comment
// or on the line directly above it:
//
//	//advdiag:allow det-maprange selects the smallest key, order-independent
//	for name, mm := range sample { ... }
//
// The grammar is
//
//	//advdiag:allow <rule-id> <reason...>
//
// and the reason is mandatory: an allow that does not say why it is
// safe is itself an error (allow-empty-reason) — suppressions are
// reviewed arguments, not mute buttons. A directive naming a rule the
// suite does not know is an error (allow-unknown-rule), and a
// directive that no longer suppresses anything is a warning
// (allow-stale) so dead annotations get cleaned up when the code they
// excused is gone.

// AllowDirective is the comment prefix of a suppression.
const AllowDirective = "//advdiag:allow"

// allow is one parsed directive.
type allow struct {
	file   string
	line   int
	rule   string
	reason string
	// endCol/endOffset locate the end of the comment text, where the
	// empty-reason fix appends a placeholder.
	pos  Finding // position carrier for reporting on the directive itself
	used bool
	end  int // byte offset of the comment's end in its file
}

// parseAllows collects every //advdiag:allow directive in the package.
func parseAllows(p *Package) []*allow {
	var out []*allow
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, AllowDirective)
				if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
					continue // some other advdiag:allowX token, not ours
				}
				fields := strings.Fields(rest)
				a := &allow{}
				if len(fields) > 0 {
					a.rule = fields[0]
				}
				if len(fields) > 1 {
					a.reason = strings.Join(fields[1:], " ")
				}
				pos := p.Fset.Position(c.Pos())
				a.file = pos.Filename
				a.line = pos.Line
				a.pos = p.finding(c.Pos(), "")
				a.end = p.Fset.Position(c.End()).Offset
				out = append(out, a)
			}
		}
	}
	return out
}

// applySuppressions filters pf through the package's allow directives
// and appends the directive findings (unknown rule, empty reason,
// stale). A directive suppresses findings of its rule on its own line
// and on the line directly below (the two placements the grammar
// allows); a directive with problems still suppresses, so one mistake
// surfaces as one finding rather than two.
func applySuppressions(p *Package, pf []Finding) []Finding {
	allows := parseAllows(p)
	if len(allows) == 0 {
		return pf
	}
	var kept []Finding
	for _, f := range pf {
		suppressed := false
		for _, a := range allows {
			if a.rule == f.Rule && a.file == f.File && (a.line == f.Line || a.line == f.Line-1) {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, a := range allows {
		switch {
		case a.rule == "":
			f := a.pos
			f.Rule = RuleAllowUnknownRule
			f.Severity = SeverityError
			f.Message = "advdiag:allow names no rule: write //advdiag:allow <rule-id> <reason>"
			kept = append(kept, f)
		case !KnownRule(a.rule):
			f := a.pos
			f.Rule = RuleAllowUnknownRule
			f.Severity = SeverityError
			f.Message = "advdiag:allow names unknown rule " + strconv.Quote(a.rule) + ": run labvet -rules for the rule table"
			kept = append(kept, f)
		case a.reason == "":
			f := a.pos
			f.Rule = RuleAllowEmptyReason
			f.Severity = SeverityError
			f.Message = "advdiag:allow " + a.rule + " has no reason: a suppression must say why the flagged pattern is safe"
			f.Fix = &Fix{Start: a.end, End: a.end, Replacement: " TODO: justify this suppression"}
			kept = append(kept, f)
		case !a.used:
			f := a.pos
			f.Rule = RuleAllowStale
			f.Severity = SeverityWarning
			f.Message = "advdiag:allow " + a.rule + " suppresses nothing: the rule no longer fires here — delete the directive"
			kept = append(kept, f)
		}
	}
	return kept
}
