package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// The wire-parity analyzers keep the three renderings of every wire
// struct — the JSON twin, the binary encoder, and the binary decoder —
// field-complete. A field added to a struct but forgotten in one codec
// is exactly the schema skew the wire package's strictness exists to
// prevent; these rules turn it from a production bug into a build
// break.

// wireStruct is one exported struct of a wire package.
type wireStruct struct {
	name   string
	fields []wireField
}

type wireField struct {
	name    string
	pos     ast.Node
	jsonTag string // the json struct tag value, "" when absent
	hasTag  bool
}

// wireStructs collects the exported struct types of p with their
// exported, named fields (embedded fields are out of the wire idiom
// and ignored).
func wireStructs(p *Package) []wireStruct {
	var out []wireStruct
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				ws := wireStruct{name: ts.Name.Name}
				for _, fld := range st.Fields.List {
					for _, name := range fld.Names {
						if !name.IsExported() {
							continue
						}
						wf := wireField{name: name.Name, pos: name}
						if fld.Tag != nil {
							tag := reflect.StructTag(strings.Trim(fld.Tag.Value, "`"))
							wf.jsonTag, wf.hasTag = tag.Lookup("json")
						}
						ws.fields = append(ws.fields, wf)
					}
				}
				out = append(out, ws)
			}
		}
	}
	return out
}

// checkWireJSON requires a json tag with a real name on every exported
// field of every exported wire struct: the JSON twin is the reference
// rendering, and an untagged (or json:"-") field silently falls out of
// it.
func checkWireJSON(p *Package, cfg *Config) []Finding {
	if !cfg.isWire(p.Path) {
		return nil
	}
	var out []Finding
	for _, ws := range wireStructs(p) {
		for _, f := range ws.fields {
			name, _, _ := strings.Cut(f.jsonTag, ",")
			if !f.hasTag || name == "" || name == "-" {
				out = append(out, p.finding(f.pos.Pos(),
					"exported wire field %s.%s has no json twin: give it a json:\"name\" tag (schema changes bump SchemaVersion, they never drop fields)",
					ws.name, f.name))
			}
		}
	}
	return out
}

// binaryRefs walks every function of p whose name matches the given
// prefix and the Binary suffix (Marshal*Binary for encoders,
// Unmarshal*Binary for decoders) and records which struct fields the
// codec touches: plain selector expressions (o.Shard, on either side
// of an assignment) and keyed composite literals (Reading{Target: ...})
// both count. It also returns the set of struct names with a dedicated
// top-level codec function (Marshal<S>Binary), which participate even
// if the implementation were to touch none of their fields.
func binaryRefs(p *Package, prefix string) (refs map[string]map[string]bool, roots map[string]bool) {
	refs = map[string]map[string]bool{}
	roots = map[string]bool{}
	mark := func(typeName, field string) {
		m := refs[typeName]
		if m == nil {
			m = map[string]bool{}
			refs[typeName] = m
		}
		m[field] = true
	}
	localStruct := func(t types.Type) (string, bool) {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != p.Types {
			return "", false
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return "", false
		}
		return named.Obj().Name(), true
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, "Binary") {
				continue
			}
			if s := strings.TrimSuffix(strings.TrimPrefix(name, prefix), "Binary"); s != "" {
				roots[s] = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					sel, ok := p.Info.Selections[n]
					if !ok || sel.Kind() != types.FieldVal {
						return true
					}
					if tn, ok := localStruct(sel.Recv()); ok {
						mark(tn, n.Sel.Name)
					}
				case *ast.CompositeLit:
					tv, ok := p.Info.Types[n]
					if !ok {
						return true
					}
					tn, ok := localStruct(tv.Type)
					if !ok {
						return true
					}
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if key, ok := kv.Key.(*ast.Ident); ok {
								mark(tn, key.Name)
							}
						}
					}
				}
				return true
			})
		}
	}
	return refs, roots
}

// checkWireBinEncode flags exported fields of binary-codec structs the
// encoder never writes. A struct is under the binary contract when a
// Marshal<S>Binary function exists for it or any Marshal*Binary
// function touches its fields (nested structs like Reading are encoded
// inline by their parent's function).
func checkWireBinEncode(p *Package, cfg *Config) []Finding {
	return checkWireBinary(p, cfg, "Marshal", "wire-bin-encode",
		"field %s.%s is missing from the binary encoder: every exported field must be written by a Marshal*Binary function (and the decoder must read it back in the same order)")
}

// checkWireBinDecode is checkWireBinEncode's decoder half.
func checkWireBinDecode(p *Package, cfg *Config) []Finding {
	return checkWireBinary(p, cfg, "Unmarshal", "wire-bin-decode",
		"field %s.%s is missing from the binary decoder: a frame that encodes it would decode skewed — read it back in encoder order")
}

func checkWireBinary(p *Package, cfg *Config, prefix, _ string, format string) []Finding {
	if !cfg.isWire(p.Path) {
		return nil
	}
	refs, roots := binaryRefs(p, prefix)
	var out []Finding
	for _, ws := range wireStructs(p) {
		if !roots[ws.name] && len(refs[ws.name]) == 0 {
			continue // JSON-only struct: no binary contract
		}
		for _, f := range ws.fields {
			if !refs[ws.name][f.name] {
				out = append(out, p.finding(f.pos.Pos(), format, ws.name, f.name))
			}
		}
	}
	return out
}
