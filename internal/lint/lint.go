package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Severity grades a finding. Errors fail the build (labvet exits
// nonzero); warnings print but pass — the only warning-severity rule
// is allow-stale, which flags suppressions that no longer suppress
// anything.
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Finding is one diagnostic: a rule violation at a position, with an
// optional mechanical fix.
type Finding struct {
	// Rule is the stable rule ID ("det-time", "wire-bin-decode", ...).
	Rule string `json:"rule"`
	// Severity is error or warning.
	Severity Severity `json:"severity"`
	// File is the path of the offending file (as the loader saw it).
	File string `json:"file"`
	// Line and Col are 1-based.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message states the violation and, where one exists, the
	// sanctioned alternative.
	Message string `json:"message"`
	// Fix, when present, is a byte-range replacement that mechanically
	// resolves the finding (applied by labvet -fix).
	Fix *Fix `json:"fix,omitempty"`
}

// Fix is a suggested edit: replace File[Start:End) with Replacement.
// Offsets are byte offsets into the file the finding names.
type Fix struct {
	Start       int    `json:"start"`
	End         int    `json:"end"`
	Replacement string `json:"replacement"`
}

// Report is the JSON document labvet -json emits: a versioned envelope
// so CI consumers can detect schema drift the same way the wire
// package does.
type Report struct {
	// Version is the report schema version (ReportVersion).
	Version int `json:"version"`
	// Findings in file/line order, suppressions already applied.
	Findings []Finding `json:"findings"`
}

// ReportVersion is the labvet JSON report schema version.
const ReportVersion = 1

// Config scopes the analyzers. Rules that bind specific layers
// (determinism → kernel packages, wire-parity → wire packages) match
// on exact import paths listed here; annotation-driven and universal
// rules ignore it.
type Config struct {
	// Kernel lists the import paths under the determinism contract:
	// replay-checkable packages where wall-clock time, the global
	// math/rand source, and order-sensitive map iteration are banned.
	Kernel []string
	// Wire lists the import paths under the wire-parity contract:
	// every exported struct field must appear in the JSON twin and,
	// when the struct takes part in the binary codec, in both the
	// binary encoder and decoder.
	Wire []string
}

// DefaultConfig is the advdiag tree's contract: the five kernel
// packages whose outputs feed PanelResult fingerprints, and the wire
// package. Keep this list in step with the "Static analysis" section
// of the README.
func DefaultConfig() *Config {
	return &Config{
		Kernel: []string{
			"advdiag/internal/runtime",
			"advdiag/internal/measure",
			"advdiag/internal/diffusion",
			"advdiag/internal/analog",
			"advdiag/wire",
		},
		Wire: []string{"advdiag/wire"},
	}
}

func (c *Config) isKernel(path string) bool { return contains(c.Kernel, path) }
func (c *Config) isWire(path string) bool   { return contains(c.Wire, path) }

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Rule is one analyzer: a stable ID, a one-line contract statement,
// and the check.
type Rule struct {
	// ID is the stable identifier used in findings and
	// //advdiag:allow directives.
	ID string
	// Doc is the one-line contract the rule enforces.
	Doc string
	// Severity of the rule's findings.
	Severity Severity
	check    func(p *Package, cfg *Config) []Finding
}

// Rules returns every analyzer in the suite, in reporting order. The
// allow-* rules are not listed: they are produced by the suppression
// pass itself (see Run), not by a per-package check.
func Rules() []Rule {
	return []Rule{
		{ID: RuleDetTime, Severity: SeverityError, check: checkDetTime,
			Doc: "kernel packages must not read wall-clock time (time.Now/Since/Until); timing comes from the schedule plan"},
		{ID: RuleDetRand, Severity: SeverityError, check: checkDetRand,
			Doc: "kernel packages must not use math/rand; randomness flows from runtime.SampleSeed-seeded mathx.RNG streams"},
		{ID: RuleDetMapRange, Severity: SeverityError, check: checkDetMapRange,
			Doc: "kernel packages must not iterate maps order-sensitively; collect keys, sort, then range the slice"},
		{ID: RuleHotFmt, Severity: SeverityError, check: checkHotFmt,
			Doc: "//advdiag:hotpath functions must not call fmt.* (each call allocates); preformat or use strconv"},
		{ID: RuleHotClosure, Severity: SeverityError, check: checkHotClosure,
			Doc: "//advdiag:hotpath functions must not create escaping closures; only immediately-invoked literals are free"},
		{ID: RuleHotAppend, Severity: SeverityError, check: checkHotAppend,
			Doc: "//advdiag:hotpath functions must not grow a fresh nil slice in a loop; preallocate with make(T, 0, n)"},
		{ID: RuleWireJSON, Severity: SeverityError, check: checkWireJSON,
			Doc: "exported fields of exported wire structs must carry a json tag — the JSON twin is not optional"},
		{ID: RuleWireBinEncode, Severity: SeverityError, check: checkWireBinEncode,
			Doc: "every exported field of a binary-codec wire struct must be written by a Marshal*Binary function"},
		{ID: RuleWireBinDecode, Severity: SeverityError, check: checkWireBinDecode,
			Doc: "every exported field of a binary-codec wire struct must be read back by an Unmarshal*Binary function"},
		{ID: RuleLifeLockedSubmit, Severity: SeverityError, check: checkLifeLockedSubmit,
			Doc: "no blocking Submit call or channel send while holding a mutex; release first or use TrySubmit/select-default"},
		{ID: RuleLifeEngineCapture, Severity: SeverityError, check: checkLifeEngineCapture,
			Doc: "measure.Engine values must not be captured by goroutine-spawning closures; build one Engine per goroutine"},
	}
}

// Rule IDs. The allow-* IDs belong to the suppression machinery and
// cannot themselves be suppressed.
const (
	RuleDetTime           = "det-time"
	RuleDetRand           = "det-rand"
	RuleDetMapRange       = "det-maprange"
	RuleHotFmt            = "hot-fmt"
	RuleHotClosure        = "hot-closure"
	RuleHotAppend         = "hot-append"
	RuleWireJSON          = "wire-json"
	RuleWireBinEncode     = "wire-bin-encode"
	RuleWireBinDecode     = "wire-bin-decode"
	RuleLifeLockedSubmit  = "life-locked-submit"
	RuleLifeEngineCapture = "life-engine-capture"
	RuleAllowEmptyReason  = "allow-empty-reason"
	RuleAllowUnknownRule  = "allow-unknown-rule"
	RuleAllowStale        = "allow-stale"
)

// KnownRule reports whether id names a suppressible analyzer rule.
func KnownRule(id string) bool {
	for _, r := range Rules() {
		if r.ID == id {
			return true
		}
	}
	return false
}

// Run executes every analyzer over every package, applies the
// //advdiag:allow suppressions, and returns the surviving findings in
// file/line/column/rule order. Directive problems (unknown rule, empty
// reason, stale allow) are appended as findings of the allow-* rules.
func Run(pkgs []*Package, cfg *Config) []Finding {
	var all []Finding
	for _, p := range pkgs {
		var pf []Finding
		for _, r := range Rules() {
			for _, f := range r.check(p, cfg) {
				f.Rule = r.ID
				f.Severity = r.Severity
				pf = append(pf, f)
			}
		}
		all = append(all, applySuppressions(p, pf)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return all
}

// HasErrors reports whether any finding is error-severity (the labvet
// exit-code criterion).
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == SeverityError {
			return true
		}
	}
	return false
}

// finding builds a Finding (rule and severity are stamped by Run) at
// the given position.
func (p *Package) finding(pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// fileOf returns the *ast.File containing pos.
func (p *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
