// Package fixes is golden testdata for labvet -fix: the fix smoke test
// copies it to a scratch directory, applies every suggested fix, and
// asserts the result is gofmt-clean and lint-clean. The package must
// already import "sort" — the sorted-range fix refuses to invent
// imports.
package fixes

import "sort"

// KeyOnly iterates a map order-sensitively; the fix rewrites it to the
// collect-sort-range idiom.
func KeyOnly(m map[string]int) int {
	total := 0
	for k := range m { // want det-maprange "order-sensitive range over map m"
		total += len(k) + m[k]
	}
	return total
}

// KeyValue also binds the value; the fix rebinds it from the map by
// key inside the sorted loop.
func KeyValue(m map[string]int) []string {
	var out []string
	for k, v := range m { // want det-maprange "order-sensitive range over map m"
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Allowed suppresses its finding but gives no reason; the fix appends
// a TODO placeholder to the directive.
func Allowed(m map[string]int) int {
	n := 0
	// want-below allow-empty-reason "has no reason"
	//advdiag:allow det-maprange
	for range m {
		n++
	}
	return n
}
