// Package hotpath is golden testdata for the hot-* analyzers: the
// //advdiag:hotpath annotation opts a function into the rules, and the
// unannotated twins prove the rules stay out of cold code.
package hotpath

import (
	"fmt"
	"strconv"
)

//advdiag:hotpath
func HotFormat(n int) string {
	return fmt.Sprintf("%d", n) // want hot-fmt "fmt.Sprintf in hot-path function HotFormat"
}

// ColdFormat is unannotated; fmt is fine off the hot path.
func ColdFormat(n int) string { return fmt.Sprintf("%d", n) }

//advdiag:hotpath
func HotStrconv(n int) string { return strconv.Itoa(n) }

//advdiag:hotpath
func HotClosure(xs []int) func() int {
	total := 0
	for _, x := range xs {
		total += x
	}
	f := func() int { return total } // want hot-closure "escaping closure in hot-path function HotClosure"
	return f
}

//advdiag:hotpath
func HotImmediate(n int) int {
	// An immediately-invoked literal does not allocate a context.
	return func() int { return n * 2 }()
}

//advdiag:hotpath
func HotGrow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x) // want hot-append "append onto fresh nil slice out"
	}
	return out
}

//advdiag:hotpath
func HotPrealloc(xs []int) []int {
	var out []int
	out = make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// ColdGrow is unannotated; growing from nil is fine off the hot path.
func ColdGrow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
