// Package wireparity is golden testdata for the wire-* analyzers. The
// test harness registers it as a wire package: every exported struct
// needs a complete JSON twin, and structs with a binary codec need
// every exported field written by Marshal*Binary and read back by
// Unmarshal*Binary.
package wireparity

import "encoding/binary"

// Good has all three renderings complete: clean.
type Good struct {
	Schema int     `json:"schema"`
	Value  float64 `json:"value"`
}

func MarshalGoodBinary(g Good) []byte {
	buf := make([]byte, 0, 16)
	buf = appendU64(buf, uint64(g.Schema))
	buf = appendF64(buf, g.Value)
	return buf
}

func UnmarshalGoodBinary(data []byte) Good {
	var g Good
	g.Schema = int(readU64(data))
	g.Value = readF64(data[8:])
	return g
}

// Untagged is missing its JSON twin on one field.
type Untagged struct {
	Named   int `json:"named"`
	Missing int // want wire-json "exported wire field Untagged.Missing has no json twin"
}

// Hidden tags a field out of the JSON twin, which the contract forbids.
type Hidden struct {
	Kept    int `json:"kept"`
	Dropped int `json:"-"` // want wire-json "exported wire field Hidden.Dropped has no json twin"
}

// Skewed has an encoder that writes both fields but a decoder that
// reads only one — the classic schema-skew bug.
type Skewed struct {
	A int `json:"a"`
	B int `json:"b"` // want wire-bin-decode "field Skewed.B is missing from the binary decoder"
}

func MarshalSkewedBinary(s Skewed) []byte {
	buf := make([]byte, 0, 16)
	buf = appendU64(buf, uint64(s.A))
	buf = appendU64(buf, uint64(s.B))
	return buf
}

func UnmarshalSkewedBinary(data []byte) Skewed {
	var s Skewed
	s.A = int(readU64(data))
	return s
}

// Half has an encoder that forgot a field the decoder expects.
type Half struct {
	A int `json:"a"`
	B int `json:"b"` // want wire-bin-encode "field Half.B is missing from the binary encoder"
}

func MarshalHalfBinary(h Half) []byte {
	return appendU64(nil, uint64(h.A))
}

func UnmarshalHalfBinary(data []byte) Half {
	return Half{A: int(readU64(data)), B: int(readU64(data[8:]))}
}

// JSONOnly has no binary codec at all; only the json-tag rule applies,
// and it is satisfied: clean.
type JSONOnly struct {
	A int `json:"a"`
	B int `json:"b"`
}

func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, uint64(int64(v)))
}
func readU64(b []byte) uint64  { return binary.BigEndian.Uint64(b) }
func readF64(b []byte) float64 { return float64(int64(binary.BigEndian.Uint64(b))) }
