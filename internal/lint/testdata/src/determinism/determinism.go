// Package determinism is golden testdata for the det-* analyzers. The
// test harness registers this package as a kernel package; each
// "want" comment names the rule and a message substring expected on
// its line, and functions without wants prove the non-firing cases.
package determinism

import (
	"math/rand" // want det-rand "math/rand imported in kernel package"
	"sort"
	"time"
)

// Timing reads the wall clock two ways; both selections fire.
func Timing() (time.Time, time.Duration) {
	now := time.Now()    // want det-time "time.Now in kernel package"
	d := time.Since(now) // want det-time "time.Since in kernel package"
	return now, d
}

// Epoch constructs a fixed timestamp: time.Date is pure and allowed.
func Epoch() time.Time {
	return time.Date(2011, 3, 14, 0, 0, 0, 0, time.UTC)
}

// GlobalRand keeps the flagged import used; the rule fires on the
// import spec, not on each call site.
func GlobalRand() int { return rand.Int() }

// SumValues accumulates in iteration order: flagged.
func SumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want det-maprange "order-sensitive range over map m"
		sum += v
	}
	return sum
}

// SortedKeys is the sanctioned key-collect idiom: clean.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert stores into another map keyed by the loop key: clean.
func Invert(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k := range m {
		out[k] = -m[k]
	}
	return out
}

// Prune deletes by the loop key: clean.
func Prune(m, dead map[string]float64) {
	for k := range dead {
		delete(m, k)
	}
}

// MaxValue is a commutative reduction the analyzer cannot prove
// order-free; the allow directive (with a reason) suppresses it.
func MaxValue(m map[string]float64) float64 {
	best := 0.0
	//advdiag:allow det-maprange commutative max reduction, the result is order-independent
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
