// Package suppress is golden testdata for the //advdiag:allow
// machinery. The harness registers it as a kernel package so det-time
// gives the directives something to suppress. Directive findings land
// on the directive's own line; since a line comment cannot carry a
// second comment, those expectations use the want-below form on the
// line above.
package suppress

import "time"

// Suppressed documents its wall-clock read; the directive is used and
// well-formed, so nothing fires.
func Suppressed() time.Time {
	//advdiag:allow det-time timestamp feeds the operator log only, never a result
	return time.Now()
}

// TrailingSuppressed uses the same-line placement of the grammar.
func TrailingSuppressed() time.Time {
	return time.Now() //advdiag:allow det-time operator-log timestamp, not part of any result
}

// WrongRule names a rule the suite does not know: the directive cannot
// suppress, so the underlying finding also survives.
func WrongRule() time.Time {
	// want-below allow-unknown-rule "names unknown rule"
	//advdiag:allow det-tyme misspelled on purpose
	return time.Now() // want det-time "time.Now in kernel package"
}

// EmptyReason suppresses (one mistake, one finding) but the missing
// reason is itself an error.
func EmptyReason() time.Time {
	// want-below allow-empty-reason "has no reason"
	//advdiag:allow det-time
	return time.Now()
}

// Stale keeps a directive for code that no longer trips the rule.
func Stale() time.Time {
	// want-below allow-stale "suppresses nothing"
	//advdiag:allow det-time the wall-clock read moved to the caller
	return time.Date(2011, 3, 14, 0, 0, 0, 0, time.UTC)
}
