// Package lifecycle is golden testdata for the life-* analyzers: the
// two-lock serving contract (no blocking Submit or channel send while
// holding a mutex) and the one-engine-per-goroutine rule (no
// measure.Engine captured by a goroutine-spawning closure).
package lifecycle

import (
	"sync"

	"advdiag/internal/conc"
	"advdiag/internal/measure"
)

// Inner stands in for a shard queue.
type Inner struct{}

func (i *Inner) Submit(v int) error    { return nil }
func (i *Inner) TrySubmit(v int) error { return nil }

// Queue exercises the locked-submit rule.
type Queue struct {
	mu    sync.Mutex
	ch    chan int
	inner *Inner
}

// LockedSubmit blocks on Submit with the mutex held: flagged.
func (q *Queue) LockedSubmit(v int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inner.Submit(v) // want life-locked-submit "blocking q.inner.Submit while holding q.mu"
}

// ReleasedSubmit releases on every path before submitting: clean.
func (q *Queue) ReleasedSubmit(v int) error {
	q.mu.Lock()
	if q.inner == nil {
		q.mu.Unlock()
		return nil
	}
	q.mu.Unlock()
	return q.inner.Submit(v)
}

// LockedTrySubmit holds the lock over the non-blocking variant: clean.
func (q *Queue) LockedTrySubmit(v int) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.inner.TrySubmit(v)
}

// LockedSend sends on a bare channel with the lock held: flagged.
func (q *Queue) LockedSend(v int) {
	q.mu.Lock()
	q.ch <- v // want life-locked-submit "blocking send on q.ch while holding q.mu"
	q.mu.Unlock()
}

// GuardedSend sends under a select with a default arm: clean.
func (q *Queue) GuardedSend(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// UnlockedSend drops the lock before the send: clean.
func (q *Queue) UnlockedSend(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

// EngineGo captures an engine in a go-statement closure: flagged.
func EngineGo(e *measure.Engine) {
	done := make(chan struct{})
	go func() {
		_ = e.RNG() // want life-engine-capture "captured by a goroutine-spawning closure"
		close(done)
	}()
	<-done
}

// EnginePool captures an engine in a conc pool closure: flagged.
func EnginePool(e *measure.Engine) {
	conc.ForEach(4, 2, func(i int) {
		_ = e.RNG() // want life-engine-capture "captured by a goroutine-spawning closure"
	})
}

// EnginePerGoroutine builds one engine inside each closure: clean.
func EnginePerGoroutine(mk func(seed uint64) *measure.Engine) {
	conc.ForEach(4, 2, func(i int) {
		e := mk(uint64(i))
		_ = e.RNG()
	})
}

// EngineLocal passes an engine to an ordinary (same-goroutine)
// closure: clean — the rule binds goroutine-spawning call sites only.
func EngineLocal(e *measure.Engine, apply func(func())) {
	apply(func() { _ = e.RNG() })
}
