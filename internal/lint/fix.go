package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/types"
	"os"
	"sort"
	"strconv"
)

// Mechanical fixes. Two rules are mechanical enough to repair without
// judgment and emit suggested edits: det-maprange in its key-only (or
// key/value over a string-keyed map) form rewrites to the
// collect-sort-range idiom, and allow-empty-reason appends a TODO
// placeholder so the build break points at exactly the text to write.
// labvet -fix applies them and reformats each touched file with gofmt
// semantics, so an applied fix is always gofmt-clean.

// sortedRangeFix builds the collect-sort-range rewrite for a flagged
// map range when the mechanical preconditions hold: an identifier (or
// field selector) map operand with string keys, a named key variable,
// and a file that already imports "sort". The original body moves into
// the sorted loop verbatim; a value variable, when present, is rebound
// from the map by key.
func (p *Package) sortedRangeFix(f *ast.File, rng *ast.RangeStmt) (*Fix, bool) {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil, false
	}
	switch rng.X.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return nil, false // re-evaluating the operand must be free
	}
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return nil, false
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return nil, false
	}
	if basic, ok := m.Key().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil, false
	}
	if !importsPath(f, "sort") {
		return nil, false
	}
	src, err := os.ReadFile(p.Fset.Position(f.Pos()).Filename)
	if err != nil {
		return nil, false
	}
	text := func(n ast.Node) string {
		return string(src[p.Fset.Position(n.Pos()).Offset:p.Fset.Position(n.End()).Offset])
	}
	keysName := freshName(f, "keys")
	if keysName == "" {
		return nil, false
	}
	mapSrc, bodySrc := text(rng.X), text(rng.Body)
	valueBind := ""
	if rng.Value != nil {
		v, ok := rng.Value.(*ast.Ident)
		if !ok {
			return nil, false
		}
		if v.Name != "_" {
			valueBind = fmt.Sprintf("%s := %s[%s]\n", v.Name, mapSrc, key.Name)
		}
	}
	// The replacement nests the original body (brace-delimited) after
	// the optional value rebinding; ApplyFixes reformats, so layout
	// here only needs to parse.
	repl := fmt.Sprintf(
		"%s := make([]string, 0, len(%s))\nfor %s := range %s {\n%s = append(%s, %s)\n}\nsort.Strings(%s)\nfor _, %s := range %s {\n%s%s\n}",
		keysName, mapSrc,
		key.Name, mapSrc,
		keysName, keysName, key.Name,
		keysName,
		key.Name, keysName,
		valueBind, bodySrc)
	return &Fix{
		Start:       p.Fset.Position(rng.Pos()).Offset,
		End:         p.Fset.Position(rng.End()).Offset,
		Replacement: repl,
	}, true
}

func importsPath(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if v, err := strconv.Unquote(imp.Path.Value); err == nil && v == path {
			return true
		}
	}
	return false
}

// freshName returns base if no identifier in the file uses it, else
// base1, base2, ... up to a small bound ("" when everything collides —
// the caller then emits no fix rather than a shadowing one).
func freshName(f *ast.File, base string) string {
	taken := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			taken[id.Name] = true
		}
		return true
	})
	if !taken[base] {
		return base
	}
	for i := 1; i <= 9; i++ {
		cand := base + strconv.Itoa(i)
		if !taken[cand] {
			return cand
		}
	}
	return ""
}

// ApplyFixes applies every suggested fix in findings to the files they
// name, reformats each touched file (gofmt semantics, so gofmt -l
// stays clean), and writes the results back. Overlapping fixes within
// one file are applied first-come in position order; later overlapping
// ones are skipped and reported. It returns the files it rewrote.
func ApplyFixes(findings []Finding) (changed []string, err error) {
	byFile := map[string][]Fix{}
	for _, f := range findings {
		if f.Fix != nil {
			byFile[f.File] = append(byFile[f.File], *f.Fix)
		}
	}
	files := make([]string, 0, len(byFile))
	for file := range byFile {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		fixes := byFile[file]
		sort.Slice(fixes, func(i, j int) bool { return fixes[i].Start < fixes[j].Start })
		src, err := os.ReadFile(file)
		if err != nil {
			return changed, err
		}
		var out []byte
		pos := 0
		for _, fx := range fixes {
			if fx.Start < pos || fx.End > len(src) || fx.End < fx.Start {
				continue // overlaps an applied fix (or is malformed): skip
			}
			out = append(out, src[pos:fx.Start]...)
			out = append(out, fx.Replacement...)
			pos = fx.End
		}
		out = append(out, src[pos:]...)
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return changed, fmt.Errorf("lint: fixed %s does not parse (fix bug): %w", file, ferr)
		}
		info, err := os.Stat(file)
		if err != nil {
			return changed, err
		}
		if err := os.WriteFile(file, formatted, info.Mode().Perm()); err != nil {
			return changed, err
		}
		changed = append(changed, file)
	}
	return changed, nil
}
