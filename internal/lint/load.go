package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit every analyzer
// operates on. Only non-test files are loaded — the contracts labvet
// enforces (determinism, hot-path allocation, wire strictness) bind
// production code; tests exercise them.
type Package struct {
	// Path is the import path ("advdiag/internal/measure").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the resolution results analyzers query.
	Info *types.Info
}

// Loader parses and type-checks packages of one module using nothing
// outside the standard library: module-local imports resolve by path
// mapping under the module root, standard-library imports through the
// compiler's source importer. One Loader caches every package it has
// checked, so loading ./... type-checks each package (and each stdlib
// dependency) exactly once.
type Loader struct {
	// Fset is shared by every package this loader touches, so
	// positions from different packages are comparable.
	Fset *token.FileSet

	// ModuleRoot is the absolute directory containing go.mod;
	// ModulePath the module path it declares.
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a loader rooted at the module containing dir (dir
// itself or the nearest parent with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from
	// GOROOT/src; with cgo off, packages like net select their pure-Go
	// fallbacks, which is all the type information analyzers need.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: root,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and reads its
// module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
	}
}

// Load resolves the given patterns ("./...", a package directory, or a
// module-rooted import path) and returns the matched packages in
// deterministic path order. Directories named testdata, hidden
// directories, and directories with no non-test Go files are skipped
// by pattern expansion (an explicit LoadDir can still reach them).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = l.ModuleRoot
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.ModuleRoot, pat)
		}
		if !recursive {
			dirs[pat] = true
			continue
		}
		err := filepath.WalkDir(pat, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != pat && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				dirs[p] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	pkgs := make([]*Package, 0, len(sorted))
	for _, d := range sorted {
		rel, err := filepath.Rel(l.ModuleRoot, d)
		if err != nil {
			return nil, fmt.Errorf("lint: %s is outside module %s", d, l.ModuleRoot)
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the single package in dir under the
// given import path, which need not live under the module root. Tests
// use it to check testdata packages (which pattern expansion skips on
// purpose) and scratch copies in temporary directories.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(importPath, abs)
}

// loadPath loads a module-local package by import path.
func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
	return l.check(path, dir)
}

// check parses the non-test files of dir and type-checks them as
// importPath, caching the result.
func (l *Loader) check(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", importPath, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %s (%s) has no non-test Go files", importPath, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer: importFunc(func(path string) (*types.Package, error) {
			if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
				pkg, err := l.loadPath(path)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return l.std.Import(path)
		}),
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importFunc adapts a function to types.Importer.
type importFunc func(path string) (*types.Package, error)

func (f importFunc) Import(path string) (*types.Package, error) { return f(path) }
