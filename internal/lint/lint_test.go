package lint_test

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"advdiag/internal/lint"
)

// The golden tests load each testdata package and compare the analyzer
// output against "want" expectation comments in the sources:
//
//	code()            // want <rule-id> "message substring"
//	// want-below <rule-id> "message substring"
//	//advdiag:allow ...
//
// The plain form expects a finding of that rule on its own line; the
// want-below form expects it on the next line (used for findings that
// land on //advdiag:allow directives, which cannot carry a trailing
// comment of their own). Every want must be matched by a finding and
// every finding by a want.

var wantRe = regexp.MustCompile(`want(-below)?\s+(\S+)\s+"([^"]*)"`)

type want struct {
	file    string
	line    int
	rule    string
	substr  string
	matched bool
}

// testdataPkg loads internal/lint/testdata/src/<name> and returns its
// findings plus the parsed want expectations.
func testdataPkg(t *testing.T, name string, cfg func(importPath string) *lint.Config) ([]lint.Finding, []*want) {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	importPath := "advdiag/internal/lint/testdata/src/" + name
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				w := &want{file: pos.Filename, line: pos.Line, rule: m[2], substr: m[3]}
				if m[1] == "-below" {
					w.line++
				}
				wants = append(wants, w)
			}
		}
	}
	return lint.Run([]*lint.Package{pkg}, cfg(importPath)), wants
}

// checkGolden matches findings against wants one-to-one.
func checkGolden(t *testing.T, findings []lint.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == f.File && w.line == f.Line && w.rule == f.Rule && strings.Contains(f.Message, w.substr) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d: %s [%s]", f.File, f.Line, f.Message, f.Rule)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding: want %s %q at %s:%d", w.rule, w.substr, w.file, w.line)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	findings, wants := testdataPkg(t, "determinism", func(path string) *lint.Config {
		return &lint.Config{Kernel: []string{path}}
	})
	checkGolden(t, findings, wants)
}

func TestHotpathGolden(t *testing.T) {
	// The hot-* rules are annotation-driven: no config scoping needed.
	findings, wants := testdataPkg(t, "hotpath", func(string) *lint.Config {
		return &lint.Config{}
	})
	checkGolden(t, findings, wants)
}

func TestWireParityGolden(t *testing.T) {
	findings, wants := testdataPkg(t, "wireparity", func(path string) *lint.Config {
		return &lint.Config{Wire: []string{path}}
	})
	checkGolden(t, findings, wants)
}

func TestLifecycleGolden(t *testing.T) {
	// The life-* rules are universal: no config scoping needed.
	findings, wants := testdataPkg(t, "lifecycle", func(string) *lint.Config {
		return &lint.Config{}
	})
	checkGolden(t, findings, wants)
}

func TestSuppressGolden(t *testing.T) {
	findings, wants := testdataPkg(t, "suppress", func(path string) *lint.Config {
		return &lint.Config{Kernel: []string{path}}
	})
	checkGolden(t, findings, wants)
	// The stale allow must be the only warning: it reports but does not
	// fail the build.
	for _, f := range findings {
		if f.Rule == lint.RuleAllowStale && f.Severity != lint.SeverityWarning {
			t.Errorf("allow-stale severity = %s, want warning", f.Severity)
		}
	}
}

// TestDefaultConfigPathsExist pins the contract lists to real packages
// so a rename cannot silently drop a package out of the contracts.
func TestDefaultConfigPathsExist(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	cfg := lint.DefaultConfig()
	for _, path := range append(append([]string{}, cfg.Kernel...), cfg.Wire...) {
		if _, err := loader.Load(strings.TrimPrefix(path, "advdiag/")); err != nil {
			t.Errorf("config path %s does not load: %v", path, err)
		}
	}
}
