package longterm

import (
	"fmt"
	"math"

	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// Prober performs timed two-phase readings on one aging film: the
// measurement half of a long-term campaign, extracted so schedulers can
// drive many films without the closed Campaign.Run loop. Each call
// advances an internal seed counter, so a Prober reproduces the exact
// noise sequence of the historical campaign loop when driven in the
// same order; it is not safe for concurrent use.
type Prober struct {
	target  string
	assay   enzyme.Assay
	nano    electrode.Nanostructure
	polymer bool
	seed    uint64
}

// NewProber builds a prober for the target's chronoamperometric assay.
func NewProber(target string, polymer bool, seed uint64) (*Prober, error) {
	var assay enzyme.Assay
	found := false
	for _, a := range enzyme.AssaysFor(target) {
		if a.Technique == enzyme.Chronoamperometry {
			assay, found = a, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("longterm: no chronoamperometric probe for %q", target)
	}
	nano := electrode.Bare
	if assay.Perf().NanostructureGain > 1 {
		nano = electrode.CNT
	}
	return &Prober{target: target, assay: assay, nano: nano, polymer: polymer, seed: seed}, nil
}

// MeasureAt runs one two-phase reading at the given film age and
// returns the baseline-subtracted current. The film ages between calls
// only through the ageHours argument — every reading builds a fresh
// cell, as the historical campaign loop did.
func (p *Prober) MeasureAt(ageHours, concMM float64) (phys.Current, error) {
	we := electrode.NewWorking("WE1", p.nano, p.assay)
	we.Func.PolymerStabilized = p.polymer
	we.Func.AgeSeconds = ageHours * 3600
	sol := cell.NewSolution().Set(p.target, phys.MilliMolar(concMM))
	cl := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	p.seed++
	eng, err := measure.NewEngine(cl, p.seed)
	if err != nil {
		return 0, err
	}
	plan := core.ElectrodePlan{Name: "WE1", Nano: p.nano, Assays: []enzyme.Assay{p.assay},
		Specs: []core.TargetSpec{{Species: p.target}}, Technique: p.assay.Technique}
	if err := plan.PlanCurrents(); err != nil {
		return 0, err
	}
	rc, err := core.SelectReadout(plan.MaxCurrent, plan.ResRequired)
	if err != nil {
		return 0, err
	}
	chain := rc.NewChain(nil, eng.RNG())
	res, err := eng.RunCA("WE1", chain, measure.Chronoamperometry{
		Duration: 90, BaselinePhase: 15,
	})
	if err != nil {
		return 0, err
	}
	return res.StepCurrent(), nil
}

// DefaultDriftWindow and DefaultDriftThresholdPct are the rolling
// drift-detection defaults: flag when this many consecutive readings
// all exceed the threshold magnitude of relative error.
const (
	DefaultDriftWindow       = 3
	DefaultDriftThresholdPct = 10.0
)

// Tracker is the calibration-and-drift model of one monitored film,
// independent of how readings are produced: feed it calibration
// currents and reading currents in time order and it maintains the
// one-point slope, the per-reading error, the drift summary, and a
// rolling drift flag. Campaign.Run drives it from a Prober; the
// population scheduler drives it from monitor results arriving off a
// Fleet.
type Tracker struct {
	// TrueMM is the known concentration presented at every reading and
	// calibration (the one-point standard).
	TrueMM float64
	// DriftWindow and DriftThresholdPct configure the rolling drift
	// detector; zero values select the defaults.
	DriftWindow       int
	DriftThresholdPct float64

	slope      float64 // A per mM, from the most recent calibration
	calibrated bool
	lastRecal  float64
	recals     int

	readings   []Reading
	maxErrPct  float64
	overStreak int // consecutive readings past the drift threshold
	drifted    bool
}

// NewTracker builds a tracker for a film monitored at trueMM.
func NewTracker(trueMM float64) *Tracker { return &Tracker{TrueMM: trueMM} }

func (tr *Tracker) window() int {
	if tr.DriftWindow > 0 {
		return tr.DriftWindow
	}
	return DefaultDriftWindow
}

func (tr *Tracker) threshold() float64 {
	if tr.DriftThresholdPct > 0 {
		return tr.DriftThresholdPct
	}
	return DefaultDriftThresholdPct
}

// Recalibrate installs a fresh one-point slope from the reference
// current measured at atHours against the known standard (TrueMM). The
// rolling drift streak resets — recalibration is the corrective action
// the flag requests.
func (tr *Tracker) Recalibrate(atHours float64, ref phys.Current) error {
	if tr.TrueMM <= 0 {
		return fmt.Errorf("longterm: cannot calibrate against a %g mM standard", tr.TrueMM)
	}
	tr.slope = float64(ref) / tr.TrueMM
	tr.calibrated = true
	tr.lastRecal = atHours
	tr.recals++
	tr.overStreak = 0
	return nil
}

// Reading converts one measured current into a concentration estimate
// using the slope from the most recent calibration, records it, and
// updates the drift summary. Film decay since the last recalibration
// appears as a negative bias — the drift the rolling detector flags.
func (tr *Tracker) Reading(atHours float64, i phys.Current) (Reading, error) {
	if !tr.calibrated {
		return Reading{}, fmt.Errorf("longterm: reading at %g h before any calibration", atHours)
	}
	if tr.slope <= 0 || math.IsNaN(tr.slope) || math.IsInf(tr.slope, 0) {
		return Reading{}, fmt.Errorf("longterm: degenerate calibration slope %g", tr.slope)
	}
	est := float64(i) / tr.slope
	errPct := (est - tr.TrueMM) / tr.TrueMM * 100
	r := Reading{
		AtHours:         atHours,
		EstimateMM:      est,
		ErrorPct:        errPct,
		SinceRecalHours: atHours - tr.lastRecal,
	}
	tr.readings = append(tr.readings, r)
	if a := math.Abs(errPct); a > tr.maxErrPct {
		tr.maxErrPct = a
	}
	if math.Abs(errPct) > tr.threshold() {
		tr.overStreak++
		if tr.overStreak >= tr.window() {
			tr.drifted = true
		}
	} else {
		tr.overStreak = 0
	}
	return r, nil
}

// NeedsRecal reports whether the rolling drift detector currently
// demands a recalibration: the last window() readings all exceeded the
// error threshold. Recalibrate clears it.
func (tr *Tracker) NeedsRecal() bool { return tr.overStreak >= tr.window() }

// Recals counts calibrations performed (including the initial one).
func (tr *Tracker) Recals() int { return tr.recals }

// LastRecalHours is the time of the most recent calibration.
func (tr *Tracker) LastRecalHours() float64 { return tr.lastRecal }

// DriftFlagged reports whether the rolling detector ever fired over the
// tracker's life (it stays set even after a recalibration clears the
// streak — a campaign that drifted once is a campaign to review).
func (tr *Tracker) DriftFlagged() bool { return tr.drifted }

// Result summarizes everything recorded so far.
func (tr *Tracker) Result() *Result {
	out := &Result{
		Readings:     tr.readings,
		MaxErrorPct:  tr.maxErrPct,
		Recals:       tr.recals,
		DriftFlagged: tr.drifted,
	}
	if n := len(tr.readings); n > 0 {
		out.FinalErrorPct = tr.readings[n-1].ErrorPct
	}
	return out
}
