// Package longterm simulates the long-term monitoring campaigns that
// motivate the paper's §I (implantable sensors, the 100 h GlucoMen Day,
// >1 year implants of ref [3]): enzyme films lose sensitivity as they
// age, so readings drift between recalibrations, and polymer
// stabilization (paper §III) slows the decay.
package longterm

import (
	"fmt"
)

// Campaign describes one long-term deployment.
type Campaign struct {
	// Target is the monitored metabolite (chronoamperometric probes
	// only — continuous monitoring is the oxidase use case).
	Target string
	// SampleMM is the true concentration presented at every reading.
	SampleMM float64
	// DurationHours is the deployment length.
	DurationHours float64
	// SampleEveryHours is the reading interval.
	SampleEveryHours float64
	// RecalEveryHours is the recalibration interval; 0 means calibrate
	// once at deployment and never again.
	RecalEveryHours float64
	// Polymer applies the paper's §III polymer stabilization.
	Polymer bool
	// Seed fixes the noise streams.
	Seed uint64
}

// WithDefaults fills unset fields with the 100 h GlucoMen-style
// campaign.
func (c Campaign) WithDefaults() Campaign {
	if c.Target == "" {
		c.Target = "glucose"
	}
	if c.SampleMM == 0 {
		c.SampleMM = 2
	}
	if c.DurationHours == 0 {
		c.DurationHours = 100
	}
	if c.SampleEveryHours == 0 {
		c.SampleEveryHours = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Reading is one timed measurement of the campaign.
type Reading struct {
	// AtHours is the reading time since deployment.
	AtHours float64
	// EstimateMM is the concentration estimate using the slope from the
	// most recent calibration.
	EstimateMM float64
	// ErrorPct is the relative error vs the true sample.
	ErrorPct float64
	// SinceRecalHours is the film age accumulated since the last
	// recalibration.
	SinceRecalHours float64
}

// Result summarizes a campaign.
type Result struct {
	// Readings in time order.
	Readings []Reading
	// MaxErrorPct and FinalErrorPct summarize the drift.
	MaxErrorPct, FinalErrorPct float64
	// Recals counts calibrations performed (including the initial one).
	Recals int
	// DriftFlagged reports whether the rolling drift detector (see
	// Tracker) ever fired during the campaign.
	DriftFlagged bool
}

// Run executes the campaign: at each reading the electrode's film age
// advances; estimates use the calibration slope measured at the most
// recent recalibration, so sensitivity decay since then appears as a
// negative reading bias — the drift the paper's stability measures
// fight.
//
// Run is a thin loop over the package's reusable halves: a Prober
// produces the timed readings (one fresh cell per measurement, the
// noise seed advancing per call) and a Tracker maintains the one-point
// calibration slope and the drift summary. Schedulers that multiplex
// many campaigns drive the same two components directly.
func (c Campaign) Run() (*Result, error) {
	c = c.WithDefaults()
	if c.SampleEveryHours <= 0 || c.DurationHours <= 0 {
		return nil, fmt.Errorf("longterm: non-positive campaign timing")
	}
	p, err := NewProber(c.Target, c.Polymer, c.Seed)
	if err != nil {
		return nil, err
	}
	tr := NewTracker(c.SampleMM)

	// calibrate measures the working-point slope (A per mM) with a
	// single standard at the monitored concentration — the one-point
	// field recalibration continuous monitors perform (it avoids the
	// Michaelis–Menten linearization bias a two-point cal would carry).
	calibrate := func(ageHours float64) error {
		ref, err := p.MeasureAt(ageHours, c.SampleMM)
		if err != nil {
			return err
		}
		return tr.Recalibrate(ageHours, ref)
	}

	if err := calibrate(0); err != nil {
		return nil, err
	}
	for t := c.SampleEveryHours; t <= c.DurationHours+1e-9; t += c.SampleEveryHours {
		if c.RecalEveryHours > 0 && t-tr.LastRecalHours() >= c.RecalEveryHours {
			if err := calibrate(t); err != nil {
				return nil, err
			}
		}
		i, err := p.MeasureAt(t, c.SampleMM)
		if err != nil {
			return nil, err
		}
		if _, err := tr.Reading(t, i); err != nil {
			return nil, err
		}
	}
	return tr.Result(), nil
}
