// Package longterm simulates the long-term monitoring campaigns that
// motivate the paper's §I (implantable sensors, the 100 h GlucoMen Day,
// >1 year implants of ref [3]): enzyme films lose sensitivity as they
// age, so readings drift between recalibrations, and polymer
// stabilization (paper §III) slows the decay.
package longterm

import (
	"fmt"
	"math"

	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// Campaign describes one long-term deployment.
type Campaign struct {
	// Target is the monitored metabolite (chronoamperometric probes
	// only — continuous monitoring is the oxidase use case).
	Target string
	// SampleMM is the true concentration presented at every reading.
	SampleMM float64
	// DurationHours is the deployment length.
	DurationHours float64
	// SampleEveryHours is the reading interval.
	SampleEveryHours float64
	// RecalEveryHours is the recalibration interval; 0 means calibrate
	// once at deployment and never again.
	RecalEveryHours float64
	// Polymer applies the paper's §III polymer stabilization.
	Polymer bool
	// Seed fixes the noise streams.
	Seed uint64
}

// WithDefaults fills unset fields with the 100 h GlucoMen-style
// campaign.
func (c Campaign) WithDefaults() Campaign {
	if c.Target == "" {
		c.Target = "glucose"
	}
	if c.SampleMM == 0 {
		c.SampleMM = 2
	}
	if c.DurationHours == 0 {
		c.DurationHours = 100
	}
	if c.SampleEveryHours == 0 {
		c.SampleEveryHours = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Reading is one timed measurement of the campaign.
type Reading struct {
	// AtHours is the reading time since deployment.
	AtHours float64
	// EstimateMM is the concentration estimate using the slope from the
	// most recent calibration.
	EstimateMM float64
	// ErrorPct is the relative error vs the true sample.
	ErrorPct float64
	// SinceRecalHours is the film age accumulated since the last
	// recalibration.
	SinceRecalHours float64
}

// Result summarizes a campaign.
type Result struct {
	// Readings in time order.
	Readings []Reading
	// MaxErrorPct and FinalErrorPct summarize the drift.
	MaxErrorPct, FinalErrorPct float64
	// Recals counts calibrations performed (including the initial one).
	Recals int
}

// Run executes the campaign: at each reading the electrode's film age
// advances; estimates use the calibration slope measured at the most
// recent recalibration, so sensitivity decay since then appears as a
// negative reading bias — the drift the paper's stability measures
// fight.
func (c Campaign) Run() (*Result, error) {
	c = c.WithDefaults()
	var assay enzyme.Assay
	found := false
	for _, a := range enzyme.AssaysFor(c.Target) {
		if a.Technique == enzyme.Chronoamperometry {
			assay, found = a, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("longterm: no chronoamperometric probe for %q", c.Target)
	}
	if c.SampleEveryHours <= 0 || c.DurationHours <= 0 {
		return nil, fmt.Errorf("longterm: non-positive campaign timing")
	}

	nano := electrode.Bare
	if assay.Perf().NanostructureGain > 1 {
		nano = electrode.CNT
	}

	// measureAt runs one two-phase reading at the given film age and
	// returns the baseline-subtracted current.
	seed := c.Seed
	measureAt := func(ageHours float64, concMM float64) (phys.Current, error) {
		we := electrode.NewWorking("WE1", nano, assay)
		we.Func.PolymerStabilized = c.Polymer
		we.Func.AgeSeconds = ageHours * 3600
		sol := cell.NewSolution().Set(c.Target, phys.MilliMolar(concMM))
		cl := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		seed++
		eng, err := measure.NewEngine(cl, seed)
		if err != nil {
			return 0, err
		}
		plan := core.ElectrodePlan{Name: "WE1", Nano: nano, Assays: []enzyme.Assay{assay},
			Specs: []core.TargetSpec{{Species: c.Target}}, Technique: assay.Technique}
		if err := plan.PlanCurrents(); err != nil {
			return 0, err
		}
		rc, err := core.SelectReadout(plan.MaxCurrent, plan.ResRequired)
		if err != nil {
			return 0, err
		}
		chain := rc.NewChain(nil, eng.RNG())
		res, err := eng.RunCA("WE1", chain, measure.Chronoamperometry{
			Duration: 90, BaselinePhase: 15,
		})
		if err != nil {
			return 0, err
		}
		return res.StepCurrent(), nil
	}

	// calibrate measures the working-point slope (A per mM) with a
	// single standard at the monitored concentration — the one-point
	// field recalibration continuous monitors perform (it avoids the
	// Michaelis–Menten linearization bias a two-point cal would carry).
	calibrate := func(ageHours float64) (float64, error) {
		ref, err := measureAt(ageHours, c.SampleMM)
		if err != nil {
			return 0, err
		}
		return float64(ref) / c.SampleMM, nil
	}

	out := &Result{}
	slope, err := calibrate(0)
	if err != nil {
		return nil, err
	}
	out.Recals = 1
	lastRecal := 0.0

	for t := c.SampleEveryHours; t <= c.DurationHours+1e-9; t += c.SampleEveryHours {
		if c.RecalEveryHours > 0 && t-lastRecal >= c.RecalEveryHours {
			slope, err = calibrate(t)
			if err != nil {
				return nil, err
			}
			lastRecal = t
			out.Recals++
		}
		i, err := measureAt(t, c.SampleMM)
		if err != nil {
			return nil, err
		}
		est := float64(i) / slope
		errPct := (est - c.SampleMM) / c.SampleMM * 100
		out.Readings = append(out.Readings, Reading{
			AtHours:         t,
			EstimateMM:      est,
			ErrorPct:        errPct,
			SinceRecalHours: t - lastRecal,
		})
		if a := math.Abs(errPct); a > out.MaxErrorPct {
			out.MaxErrorPct = a
		}
	}
	if n := len(out.Readings); n > 0 {
		out.FinalErrorPct = out.Readings[n-1].ErrorPct
	}
	return out, nil
}
