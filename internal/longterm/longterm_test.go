package longterm

import (
	"math"
	"testing"
)

func TestCampaignDriftWithoutRecal(t *testing.T) {
	// 100 h without recalibration: the film loses ≈ 1−exp(−100/120) ≈
	// 57 %/τ... with τ = 120 h the sensitivity drops ~57 %? No: τ =
	// 5 days = 120 h, so exp(−100/120) ≈ 0.43 loss — the readings drift
	// low by tens of percent.
	res, err := Campaign{DurationHours: 100, SampleEveryHours: 20, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Readings) != 5 {
		t.Fatalf("%d readings", len(res.Readings))
	}
	if res.Recals != 1 {
		t.Fatalf("%d recals, want the initial one only", res.Recals)
	}
	if res.FinalErrorPct > -20 {
		t.Fatalf("final drift %+.1f %%, want strong negative bias", res.FinalErrorPct)
	}
	// Drift must grow with age (monotone within noise).
	first := res.Readings[0].ErrorPct
	last := res.Readings[len(res.Readings)-1].ErrorPct
	if last >= first {
		t.Fatalf("drift must worsen with age: %+.1f%% → %+.1f%%", first, last)
	}
}

func TestRecalibrationBoundsDrift(t *testing.T) {
	noRecal, err := Campaign{DurationHours: 100, SampleEveryHours: 20, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	recal, err := Campaign{DurationHours: 100, SampleEveryHours: 20, RecalEveryHours: 20, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if recal.Recals < 4 {
		t.Fatalf("%d recals", recal.Recals)
	}
	if recal.MaxErrorPct >= noRecal.MaxErrorPct {
		t.Fatalf("recalibration must bound drift: %.1f%% vs %.1f%%",
			recal.MaxErrorPct, noRecal.MaxErrorPct)
	}
	if recal.MaxErrorPct > 25 {
		t.Fatalf("20 h recalibration still drifts %.1f%%", recal.MaxErrorPct)
	}
}

func TestPolymerStabilization(t *testing.T) {
	plain, err := Campaign{DurationHours: 100, SampleEveryHours: 25, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Campaign{DurationHours: 100, SampleEveryHours: 25, Polymer: true, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The ×10 stability gain must cut the drift dramatically.
	if math.Abs(poly.FinalErrorPct) > math.Abs(plain.FinalErrorPct)/3 {
		t.Fatalf("polymer drift %+.1f%% vs plain %+.1f%%", poly.FinalErrorPct, plain.FinalErrorPct)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Target: "benzphetamine"}).Run(); err == nil {
		t.Fatal("CV-only target must fail (no continuous monitoring)")
	}
	if _, err := (Campaign{DurationHours: -1, SampleEveryHours: 1}).Run(); err == nil {
		t.Fatal("negative duration must fail")
	}
}
