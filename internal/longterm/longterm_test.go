package longterm

import (
	"math"
	"testing"
)

func TestCampaignDriftWithoutRecal(t *testing.T) {
	// 100 h without recalibration: the film loses ≈ 1−exp(−100/120) ≈
	// 57 %/τ... with τ = 120 h the sensitivity drops ~57 %? No: τ =
	// 5 days = 120 h, so exp(−100/120) ≈ 0.43 loss — the readings drift
	// low by tens of percent.
	res, err := Campaign{DurationHours: 100, SampleEveryHours: 20, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Readings) != 5 {
		t.Fatalf("%d readings", len(res.Readings))
	}
	if res.Recals != 1 {
		t.Fatalf("%d recals, want the initial one only", res.Recals)
	}
	if res.FinalErrorPct > -20 {
		t.Fatalf("final drift %+.1f %%, want strong negative bias", res.FinalErrorPct)
	}
	// Drift must grow with age (monotone within noise).
	first := res.Readings[0].ErrorPct
	last := res.Readings[len(res.Readings)-1].ErrorPct
	if last >= first {
		t.Fatalf("drift must worsen with age: %+.1f%% → %+.1f%%", first, last)
	}
}

func TestRecalibrationBoundsDrift(t *testing.T) {
	noRecal, err := Campaign{DurationHours: 100, SampleEveryHours: 20, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	recal, err := Campaign{DurationHours: 100, SampleEveryHours: 20, RecalEveryHours: 20, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if recal.Recals < 4 {
		t.Fatalf("%d recals", recal.Recals)
	}
	if recal.MaxErrorPct >= noRecal.MaxErrorPct {
		t.Fatalf("recalibration must bound drift: %.1f%% vs %.1f%%",
			recal.MaxErrorPct, noRecal.MaxErrorPct)
	}
	if recal.MaxErrorPct > 25 {
		t.Fatalf("20 h recalibration still drifts %.1f%%", recal.MaxErrorPct)
	}
}

func TestPolymerStabilization(t *testing.T) {
	plain, err := Campaign{DurationHours: 100, SampleEveryHours: 25, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Campaign{DurationHours: 100, SampleEveryHours: 25, Polymer: true, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The ×10 stability gain must cut the drift dramatically.
	if math.Abs(poly.FinalErrorPct) > math.Abs(plain.FinalErrorPct)/3 {
		t.Fatalf("polymer drift %+.1f%% vs plain %+.1f%%", poly.FinalErrorPct, plain.FinalErrorPct)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Target: "benzphetamine"}).Run(); err == nil {
		t.Fatal("CV-only target must fail (no continuous monitoring)")
	}
	if _, err := (Campaign{DurationHours: -1, SampleEveryHours: 1}).Run(); err == nil {
		t.Fatal("negative duration must fail")
	}
}

// TestCampaignTimingEdges is the table of timing edge cases the thin
// Campaign.Run loop must keep honoring now that it delegates to
// Prober/Tracker: a recalibration cadence longer than the deployment
// never fires mid-run, and a sampling interval equal to the duration
// yields exactly one reading.
func TestCampaignTimingEdges(t *testing.T) {
	cases := []struct {
		name         string
		c            Campaign
		wantReadings int
		wantRecals   int
	}{
		{
			name:         "recal cadence longer than deployment",
			c:            Campaign{DurationHours: 40, SampleEveryHours: 10, RecalEveryHours: 100, Seed: 3},
			wantReadings: 4,
			wantRecals:   1, // only the deployment calibration
		},
		{
			name:         "sampling interval equals duration",
			c:            Campaign{DurationHours: 48, SampleEveryHours: 48, Seed: 3},
			wantReadings: 1,
			wantRecals:   1,
		},
		{
			name:         "recal cadence equals sampling interval",
			c:            Campaign{DurationHours: 60, SampleEveryHours: 20, RecalEveryHours: 20, Seed: 3},
			wantReadings: 3,
			wantRecals:   4, // deployment + one before every reading
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := tc.c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Readings) != tc.wantReadings {
				t.Fatalf("%d readings, want %d", len(res.Readings), tc.wantReadings)
			}
			if res.Recals != tc.wantRecals {
				t.Fatalf("%d recals, want %d", res.Recals, tc.wantRecals)
			}
			last := res.Readings[len(res.Readings)-1]
			if last.AtHours != tc.c.DurationHours {
				t.Fatalf("last reading at %g h, want %g", last.AtHours, tc.c.DurationHours)
			}
		})
	}
}

// TestPolymerDriftOrdering: at every shared reading time, the
// polymer-stabilized film's error magnitude must stay at or below the
// plain film's — the §III stabilization claim holds pointwise, not
// just at the end of the campaign.
func TestPolymerDriftOrdering(t *testing.T) {
	plain, err := Campaign{DurationHours: 100, SampleEveryHours: 20, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	poly, err := Campaign{DurationHours: 100, SampleEveryHours: 20, Polymer: true, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Readings) != len(poly.Readings) {
		t.Fatalf("reading counts differ: %d vs %d", len(plain.Readings), len(poly.Readings))
	}
	for i := range plain.Readings {
		pe := math.Abs(plain.Readings[i].ErrorPct)
		ye := math.Abs(poly.Readings[i].ErrorPct)
		if ye > pe {
			t.Fatalf("reading %d (t=%g h): polymer error %.2f%% exceeds plain %.2f%%",
				i, plain.Readings[i].AtHours, ye, pe)
		}
	}
	if poly.DriftFlagged && !plain.DriftFlagged {
		t.Fatal("polymer campaign drift-flagged while the plain one was not")
	}
}
