package schedule

import (
	"math"
	"strings"
	"testing"

	"advdiag/internal/enzyme"
)

func TestBuildLayout(t *testing.T) {
	p, err := Build(0.05, 30,
		Slot{WE: "WE1", Technique: enzyme.Chronoamperometry, Duration: 60},
		Slot{WE: "WE2", Technique: enzyme.CyclicVoltammetry, Duration: 65},
	)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Slots[0].Start-0.05) > 1e-12 {
		t.Fatalf("first slot at %g", p.Slots[0].Start)
	}
	if math.Abs(p.Slots[1].Start-60.10) > 1e-9 {
		t.Fatalf("second slot at %g", p.Slots[1].Start)
	}
	if math.Abs(p.PanelTime()-125.10) > 1e-9 {
		t.Fatalf("panel time %g", p.PanelTime())
	}
	if math.Abs(p.CycleTime()-155.10) > 1e-9 {
		t.Fatalf("cycle time %g", p.CycleTime())
	}
}

func TestThroughput(t *testing.T) {
	p, err := Build(0, 30, Slot{WE: "WE1", Technique: enzyme.Chronoamperometry, Duration: 60})
	if err != nil {
		t.Fatal(err)
	}
	// 90 s cycle → 40 samples/hour.
	if math.Abs(p.Throughput()-40) > 1e-9 {
		t.Fatalf("throughput %g", p.Throughput())
	}
}

func TestBuildRejects(t *testing.T) {
	if _, err := Build(0, 0); err == nil {
		t.Error("no slots must fail")
	}
	if _, err := Build(-1, 0, Slot{WE: "a", Duration: 1}); err == nil {
		t.Error("negative settle must fail")
	}
	if _, err := Build(0, 0, Slot{WE: "", Duration: 1}); err == nil {
		t.Error("empty WE must fail")
	}
	if _, err := Build(0, 0, Slot{WE: "a", Duration: 0}); err == nil {
		t.Error("zero duration must fail")
	}
	if _, err := Build(0, 0, Slot{WE: "a", Duration: 1}, Slot{WE: "a", Duration: 1}); err == nil {
		t.Error("duplicate electrode must fail")
	}
}

func TestString(t *testing.T) {
	p, _ := Build(0.05, 30, Slot{WE: "WE1", Technique: enzyme.Chronoamperometry, Duration: 60})
	s := p.String()
	for _, frag := range []string{"WE1", "chronoamperometry", "samples/h"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
}
