package schedule

import (
	"math"
	"testing"

	"advdiag/internal/enzyme"
)

// FuzzSchedule drives schedule.Build with arbitrary settle/recovery
// times and up to three slots. The contract under test: Build never
// panics, and a nil error implies a numerically sane plan — finite,
// ordered start times, finite throughput.
func FuzzSchedule(f *testing.F) {
	f.Add(0.05, 30.0, "WE1", 90.0, "WE2", 70.0, "WE3", 70.0)
	f.Add(0.0, 0.0, "WE1", 1.0, "", 0.0, "", 0.0)
	f.Add(math.NaN(), 30.0, "WE1", 90.0, "WE2", 70.0, "", 0.0)
	f.Add(0.05, math.Inf(1), "WE1", 90.0, "", 0.0, "", 0.0)
	f.Add(0.05, 30.0, "WE1", math.NaN(), "", 0.0, "", 0.0)
	f.Add(0.05, 30.0, "WE1", math.Inf(1), "WE1", 1.0, "", 0.0)
	f.Add(-0.05, 30.0, "WE1", 90.0, "", 0.0, "", 0.0)
	f.Add(0.05, 30.0, "WE1", 90.0, "WE1", 90.0, "", 0.0)
	f.Add(1.0, 1.0, "WE1", 1e308, "WE2", 1e308, "", 0.0) // finite operands, overflowing sum

	f.Fuzz(func(t *testing.T, settle, recovery float64,
		we1 string, d1 float64, we2 string, d2 float64, we3 string, d3 float64) {
		var slots []Slot
		for _, s := range []struct {
			we string
			d  float64
		}{{we1, d1}, {we2, d2}, {we3, d3}} {
			if s.we == "" && s.d == 0 {
				continue // unused tail slot
			}
			slots = append(slots, Slot{WE: s.we, Technique: enzyme.Chronoamperometry, Duration: s.d})
		}
		plan, err := Build(settle, recovery, slots...)
		if err != nil {
			return
		}
		if len(plan.Slots) != len(slots) {
			t.Fatalf("plan has %d slots for %d inputs", len(plan.Slots), len(slots))
		}
		pt, ct := plan.PanelTime(), plan.CycleTime()
		if math.IsNaN(pt) || math.IsInf(pt, 0) || pt <= 0 {
			t.Fatalf("accepted inputs produced panel time %g", pt)
		}
		if ct < pt || math.IsNaN(ct) || math.IsInf(ct, 0) {
			t.Fatalf("cycle time %g below panel time %g", ct, pt)
		}
		if thr := plan.Throughput(); math.IsNaN(thr) || math.IsInf(thr, 0) || thr < 0 {
			t.Fatalf("throughput %g", thr)
		}
		last := 0.0
		for i, s := range plan.Slots {
			if s.Start < last {
				t.Fatalf("slot %d starts at %g before %g", i, s.Start, last)
			}
			last = s.Start + s.Duration
		}
		if plan.String() == "" {
			t.Fatal("empty rendering")
		}
	})
}
