// Package schedule plans multiplexed acquisition across the working
// electrodes of a platform: in the paper's demonstrator the five WEs
// share one readout through a multiplexer and are activated
// sequentially (§III), so panel time and sample throughput (§II-B)
// follow from the per-channel protocol durations, the mux settling
// time, and the sensor recovery time.
package schedule

import (
	"fmt"
	"math"
	"strings"

	"advdiag/internal/enzyme"
)

// Slot is one scheduled measurement on one working electrode.
type Slot struct {
	// WE names the electrode.
	WE string
	// Technique is the protocol family run in this slot.
	Technique enzyme.Technique
	// Duration is the protocol time in seconds (excluding settling).
	Duration float64
	// Start is the slot's start time within the panel, filled by Build.
	Start float64
}

// Plan is a full panel acquisition schedule.
type Plan struct {
	// Slots in execution order.
	Slots []Slot
	// MuxSettle is the dead time inserted before each slot when a
	// multiplexer switches the channel (zero for dedicated readouts).
	MuxSettle float64
	// Recovery is the sensor recovery time appended after the panel
	// before the next sample can be measured (paper §II-B: throughput
	// accounts for transient response plus recovery).
	Recovery float64
}

// Build lays out the slots sequentially, filling start times, and
// returns the plan.
func Build(muxSettle, recovery float64, slots ...Slot) (*Plan, error) {
	if !isFiniteNonNeg(muxSettle) || !isFiniteNonNeg(recovery) {
		return nil, fmt.Errorf("schedule: settle and recovery times must be finite and non-negative (got %g, %g)", muxSettle, recovery)
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("schedule: no slots")
	}
	seen := map[string]bool{}
	t := 0.0
	out := make([]Slot, len(slots))
	for i, s := range slots {
		if s.WE == "" {
			return nil, fmt.Errorf("schedule: slot %d has no electrode", i)
		}
		if s.Duration <= 0 || math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) {
			return nil, fmt.Errorf("schedule: slot %d (%s) has invalid duration %g", i, s.WE, s.Duration)
		}
		if seen[s.WE] {
			return nil, fmt.Errorf("schedule: electrode %s scheduled twice", s.WE)
		}
		seen[s.WE] = true
		t += muxSettle
		s.Start = t
		t += s.Duration
		out[i] = s
	}
	// Each operand is finite, but the accumulated timeline can still
	// overflow; an accepted plan must have finite panel and cycle times.
	if math.IsInf(t, 1) || math.IsInf(t+recovery, 1) {
		return nil, fmt.Errorf("schedule: timeline overflows (total %g s + recovery %g s)", t, recovery)
	}
	return &Plan{Slots: out, MuxSettle: muxSettle, Recovery: recovery}, nil
}

// isFiniteNonNeg reports whether v is a usable non-negative time.
func isFiniteNonNeg(v float64) bool {
	return v >= 0 && !math.IsInf(v, 1)
}

// PanelTime is the active acquisition time: settling plus protocol
// durations for every slot.
func (p *Plan) PanelTime() float64 {
	if len(p.Slots) == 0 {
		return 0
	}
	last := p.Slots[len(p.Slots)-1]
	return last.Start + last.Duration
}

// CycleTime is the full sample-to-sample period: panel time plus
// recovery.
func (p *Plan) CycleTime() float64 {
	return p.PanelTime() + p.Recovery
}

// Throughput returns samples per hour (the paper's §II-B metric).
func (p *Plan) Throughput() float64 {
	ct := p.CycleTime()
	if ct <= 0 {
		return 0
	}
	return 3600 / ct
}

// String renders the timeline.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Panel schedule (settle %.3gs, recovery %.3gs):\n", p.MuxSettle, p.Recovery)
	for _, s := range p.Slots {
		fmt.Fprintf(&b, "  %8.1fs  %-6s %-22s %6.1fs\n", s.Start, s.WE, s.Technique, s.Duration)
	}
	fmt.Fprintf(&b, "  panel %.1fs, cycle %.1fs, %.1f samples/h", p.PanelTime(), p.CycleTime(), p.Throughput())
	return b.String()
}
