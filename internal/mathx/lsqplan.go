package mathx

import "math"

// elimOp is one recorded row elimination: row r of the augmented system
// gets rhs[r] -= f·rhs[col] during the replay.
type elimOp struct {
	row int
	f   float64
}

// LSQPlan is a prefactored least-squares problem: the design matrix D
// of LeastSquares, normalized, squared into the normal equations,
// ridge-stabilized and LU-factored once, so repeated solves against new
// observation vectors y cost only the Dᵀy assembly and a triangular
// replay. The replay applies the exact row operations (same pivots,
// same multipliers, same order) SolveLinear would perform on the
// right-hand side, so Solve is bit-identical to
// LeastSquares(cols, y) — the batched panel kernel depends on that.
//
// The normalized columns, the factored normal matrix and the recorded
// eliminations live in flat backings (row views sliced out of one
// allocation each) because every calibrated electrode builds a plan.
//
// A plan is immutable after construction and safe for concurrent
// Solve calls when each caller passes its own scratch.
type LSQPlan struct {
	k, m    int
	scale   []float64
	norm    [][]float64 // k row views over one k*m backing
	pivots  []int       // column → pivot row swapped in at that step
	elims   []elimOp    // recorded eliminations, grouped by column
	elimOff []int       // column → offset of its group in elims
	upper   [][]float64 // the final upper-triangular factor (k*k backing)
}

// NewLSQPlan factors the design matrix given column-wise (cols[k][i] is
// row i of column k), mirroring LeastSquares's normalization, normal-
// equation assembly, ridge and elimination arithmetic exactly.
func NewLSQPlan(cols [][]float64) (*LSQPlan, error) {
	k := len(cols)
	if k == 0 {
		return nil, ErrSingular
	}
	m := len(cols[0])
	for _, c := range cols {
		if len(c) != m {
			return nil, ErrSingular
		}
	}
	p := &LSQPlan{k: k, m: m}
	p.scale = make([]float64, k)
	p.norm = make([][]float64, k)
	normBack := make([]float64, k*m)
	for i, c := range cols {
		s := RMS(c)
		if s == 0 {
			s = 1
		}
		p.scale[i] = s
		nc := normBack[i*m : (i+1)*m : (i+1)*m]
		for r := range c {
			nc[r] = c[r] / s
		}
		p.norm[i] = nc
	}
	ata := make([][]float64, k)
	ataBack := make([]float64, k*k)
	for i := 0; i < k; i++ {
		ata[i] = ataBack[i*k : (i+1)*k : (i+1)*k]
		for j := 0; j < k; j++ {
			s := 0.0
			for r := 0; r < m; r++ {
				s += p.norm[i][r] * p.norm[j][r]
			}
			ata[i][j] = s
		}
	}
	for i := 0; i < k; i++ {
		ata[i][i] += 1e-12 * float64(m)
	}
	// Factor, recording the pivot swaps and elimination multipliers in
	// the order SolveLinear applies them to the right-hand side. Row
	// swaps exchange the row views; the backing stays put.
	p.pivots = make([]int, k)
	p.elims = make([]elimOp, 0, k*(k-1)/2)
	p.elimOff = make([]int, k+1)
	for col := 0; col < k; col++ {
		pivot := col
		best := math.Abs(ata[col][col])
		for r := col + 1; r < k; r++ {
			if v := math.Abs(ata[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		ata[col], ata[pivot] = ata[pivot], ata[col]
		p.pivots[col] = pivot
		for r := col + 1; r < k; r++ {
			f := ata[r][col] / ata[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				ata[r][c] -= f * ata[col][c]
			}
			p.elims = append(p.elims, elimOp{row: r, f: f})
		}
		p.elimOff[col+1] = len(p.elims)
	}
	p.upper = ata
	return p, nil
}

// K reports the number of fitted columns; M the number of rows.
func (p *LSQPlan) K() int { return p.k }

// M reports the number of rows each observation vector must have.
func (p *LSQPlan) M() int { return p.m }

// Solve computes the least-squares coefficients for observation y,
// bit-identical to LeastSquares(cols, y) on the plan's columns. rhs and
// x are optional scratch slices (grown as needed); the returned slice
// aliases x's backing array when it is large enough, so a zero-alloc
// caller passes two reusable k-length buffers.
func (p *LSQPlan) Solve(y []float64, rhs, x []float64) ([]float64, error) {
	if len(y) != p.m {
		return nil, ErrSingular
	}
	if cap(rhs) < p.k {
		rhs = make([]float64, p.k)
	}
	rhs = rhs[:p.k]
	for i := 0; i < p.k; i++ {
		s := 0.0
		ni := p.norm[i]
		for r := 0; r < p.m; r++ {
			s += ni[r] * y[r]
		}
		rhs[i] = s
	}
	// Replay the recorded row operations on the right-hand side.
	for col := 0; col < p.k; col++ {
		if pv := p.pivots[col]; pv != col {
			rhs[col], rhs[pv] = rhs[pv], rhs[col]
		}
		for _, op := range p.elims[p.elimOff[col]:p.elimOff[col+1]] {
			rhs[op.row] -= op.f * rhs[col]
		}
	}
	if cap(x) < p.k {
		x = make([]float64, p.k)
	}
	x = x[:p.k]
	for i := p.k - 1; i >= 0; i-- {
		s := rhs[i]
		for c := i + 1; c < p.k; c++ {
			s -= p.upper[i][c] * x[c]
		}
		x[i] = s / p.upper[i][i]
	}
	for i := range x {
		x[i] /= p.scale[i]
	}
	return x, nil
}
