package mathx

import (
	"math"
	"testing"
)

// denseFromBands builds the dense matrix for cross-checking against
// SolveLinear.
func denseFromBands(lower, diag, upper []float64) [][]float64 {
	n := len(diag)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		a[i][i] = diag[i]
		if i > 0 {
			a[i][i-1] = lower[i-1]
		}
		if i < n-1 {
			a[i][i+1] = upper[i]
		}
	}
	return a
}

func TestSolveTridiagMatchesDense(t *testing.T) {
	lower := []float64{-1, -0.5, -2, -1}
	diag := []float64{4, 5, 4.5, 6, 3}
	upper := []float64{-0.5, -1, -1.5, -0.25}
	rhs := []float64{1, -2, 3, 0.5, 7}

	got, err := SolveTridiag(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveLinear(denseFromBands(lower, diag, upper), rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("x[%d] = %g, dense solver says %g", i, got[i], want[i])
		}
	}
}

func TestSolveTridiagSingleUnknown(t *testing.T) {
	x, err := SolveTridiag(nil, []float64{2}, nil, []float64{6})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 {
		t.Fatalf("x = %g, want 3", x[0])
	}
}

func TestSolveTridiagDiffusionOperator(t *testing.T) {
	// A Crank–Nicolson-shaped operator (1+2r on the diagonal, −r off
	// it) applied to a known vector must be inverted exactly.
	const n, r = 64, 0.8
	lower := make([]float64, n-1)
	upper := make([]float64, n-1)
	diag := make([]float64, n)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 1 + 2*r
		want[i] = math.Sin(float64(i) / 3)
	}
	for i := 0; i < n-1; i++ {
		lower[i], upper[i] = -r, -r
	}
	// rhs = A·want.
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = diag[i] * want[i]
		if i > 0 {
			rhs[i] += lower[i-1] * want[i-1]
		}
		if i < n-1 {
			rhs[i] += upper[i] * want[i+1]
		}
	}
	got, err := SolveTridiag(lower, diag, upper, rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-11 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestTridiagReuseAndInPlace(t *testing.T) {
	lower := []float64{-1, -1}
	diag := []float64{3, 3, 3}
	upper := []float64{-1, -1}
	tri, err := NewTridiag(lower, diag, upper)
	if err != nil {
		t.Fatal(err)
	}
	if tri.N() != 3 {
		t.Fatalf("N = %d, want 3", tri.N())
	}
	// Two sequential solves with different right-hand sides, the second
	// in place, must both match the one-shot solver.
	for _, rhs := range [][]float64{{1, 0, 0}, {2, -1, 5}} {
		want, err := SolveTridiag(lower, diag, upper, rhs)
		if err != nil {
			t.Fatal(err)
		}
		x := append([]float64(nil), rhs...)
		if err := tri.Solve(x, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-14 {
				t.Fatalf("in-place x[%d] = %g, want %g", i, x[i], want[i])
			}
		}
	}
}

func TestTridiagSolveAllocFree(t *testing.T) {
	n := 128
	lower := make([]float64, n-1)
	upper := make([]float64, n-1)
	diag := make([]float64, n)
	rhs := make([]float64, n)
	x := make([]float64, n)
	for i := range diag {
		diag[i] = 4
		rhs[i] = float64(i)
	}
	for i := range lower {
		lower[i], upper[i] = -1, -1
	}
	tri, err := NewTridiag(lower, diag, upper)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := tri.Solve(rhs, x); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("Tridiag.Solve allocates %.0f objects per call, want 0", allocs)
	}
}

func TestTridiagErrors(t *testing.T) {
	if _, err := NewTridiag(nil, nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := NewTridiag([]float64{1}, []float64{1, 1, 1}, []float64{1, 1}); err == nil {
		t.Fatal("band length mismatch accepted")
	}
	// Zero pivot (singular).
	if _, err := NewTridiag([]float64{1}, []float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("zero leading pivot accepted")
	}
	if _, err := SolveTridiag([]float64{2}, []float64{1, 2}, []float64{1}, []float64{1, 1}); err == nil {
		t.Fatal("singular elimination accepted")
	}
	tri, err := NewTridiag([]float64{-1}, []float64{2, 2}, []float64{-1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tri.Solve([]float64{1}, []float64{0, 0}); err == nil {
		t.Fatal("rhs length mismatch accepted")
	}
}
