package mathx

import "errors"

// ErrBadTridiag is returned for structurally invalid tridiagonal
// systems (mismatched band lengths or an empty diagonal).
var ErrBadTridiag = errors.New("mathx: invalid tridiagonal system")

// SolveTridiag solves the tridiagonal system
//
//	diag[0]·x[0]  + upper[0]·x[1]                      = rhs[0]
//	lower[i-1]·x[i-1] + diag[i]·x[i] + upper[i]·x[i+1] = rhs[i]
//	lower[n-2]·x[n-2] + diag[n-1]·x[n-1]               = rhs[n-1]
//
// by the Thomas algorithm (Gaussian elimination without pivoting —
// exact for the diagonally dominant systems an implicit diffusion
// discretization produces). lower and upper have n−1 entries, diag and
// rhs have n. The inputs are not modified; the solution is returned in
// a fresh slice. Hot paths that solve the same matrix repeatedly should
// factor once with NewTridiag and call Solve with caller-owned scratch.
func SolveTridiag(lower, diag, upper, rhs []float64) ([]float64, error) {
	t, err := NewTridiag(lower, diag, upper)
	if err != nil {
		return nil, err
	}
	x := make([]float64, len(diag))
	if err := t.Solve(rhs, x); err != nil {
		return nil, err
	}
	return x, nil
}

// Tridiag is a prefactored tridiagonal matrix: the Thomas forward
// elimination is done once at construction, so each Solve is a single
// O(n) sweep over the right-hand side with zero allocations. One
// factored matrix may serve any number of sequential Solve calls (it is
// read-only after construction, so concurrent readers are safe).
type Tridiag struct {
	lower []float64 // original sub-diagonal (n−1)
	cp    []float64 // upper[i] / (pivot i) — eliminated super-diagonal
	inv   []float64 // 1 / (pivot i) — reciprocal pivots
}

// NewTridiag factors the matrix given by its three bands. It fails on
// band length mismatches and on zero pivots (the matrix is then
// singular or needs pivoting — not the case for diffusion operators,
// which are strictly diagonally dominant).
func NewTridiag(lower, diag, upper []float64) (*Tridiag, error) {
	n := len(diag)
	if n == 0 || len(lower) != n-1 || len(upper) != n-1 {
		return nil, ErrBadTridiag
	}
	t := &Tridiag{
		lower: append([]float64(nil), lower...),
		cp:    make([]float64, n-1),
		inv:   make([]float64, n),
	}
	piv := diag[0]
	if piv == 0 {
		return nil, ErrSingular
	}
	t.inv[0] = 1 / piv
	for i := 1; i < n; i++ {
		t.cp[i-1] = upper[i-1] * t.inv[i-1]
		piv = diag[i] - lower[i-1]*t.cp[i-1]
		if piv == 0 {
			return nil, ErrSingular
		}
		t.inv[i] = 1 / piv
	}
	return t, nil
}

// N returns the system size.
func (t *Tridiag) N() int { return len(t.inv) }

// Solve writes the solution of T·x = rhs into x. rhs and x must both
// have length N; they may alias (in-place solve). Solve allocates
// nothing.
func (t *Tridiag) Solve(rhs, x []float64) error {
	n := len(t.inv)
	if len(rhs) != n || len(x) != n {
		return ErrBadTridiag
	}
	// Forward sweep: dp[i] = (rhs[i] − lower[i−1]·dp[i−1]) / pivot[i],
	// stored in x.
	x[0] = rhs[0] * t.inv[0]
	for i := 1; i < n; i++ {
		x[i] = (rhs[i] - t.lower[i-1]*x[i-1]) * t.inv[i]
	}
	// Back substitution.
	for i := n - 2; i >= 0; i-- {
		x[i] -= t.cp[i] * x[i+1]
	}
	return nil
}
