package mathx

import (
	"errors"
	"math"
)

// LinearFit holds the result of an ordinary least-squares fit
// y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// Residuals holds y_i - (Slope·x_i + Intercept) for each input point.
	Residuals []float64
	// MaxAbsResidual is the largest |residual|.
	MaxAbsResidual float64
}

// ErrBadFit is returned when a regression is requested on degenerate data
// (fewer than two points, or zero x-variance).
var ErrBadFit = errors.New("mathx: degenerate regression input")

// FitLinear performs ordinary least squares of y on x.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) || len(x) < 2 {
		return LinearFit{}, ErrBadFit
	}
	n := float64(len(x))
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrBadFit
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	fit := LinearFit{Slope: slope, Intercept: intercept}
	fit.Residuals = make([]float64, len(x))
	ssRes := 0.0
	for i := range x {
		r := y[i] - (slope*x[i] + intercept)
		fit.Residuals[i] = r
		ssRes += r * r
		if a := math.Abs(r); a > fit.MaxAbsResidual {
			fit.MaxAbsResidual = a
		}
	}
	if syy > 0 {
		fit.R2 = 1 - ssRes/syy
	} else {
		fit.R2 = 1
	}
	_ = n
	return fit, nil
}

// Eval returns Slope·x + Intercept.
func (f LinearFit) Eval(x float64) float64 { return f.Slope*x + f.Intercept }
