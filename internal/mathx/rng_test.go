package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %g too far from 0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %g too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %g too far from 1", variance)
	}
}

func TestNormScaled(t *testing.T) {
	r := NewRNG(17)
	const n = 100000
	var sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormScaled(3.0)
		sumSq += v * v
	}
	sd := math.Sqrt(sumSq / n)
	if math.Abs(sd-3) > 0.1 {
		t.Fatalf("scaled std %g, want ≈3", sd)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	child := r.Split()
	// The child stream must not simply replay the parent.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split stream mirrors parent (%d collisions)", same)
	}
}

func TestNormScaledZeroSigmaProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		return r.NormScaled(0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
