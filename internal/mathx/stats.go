package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics helpers given no data.
var ErrEmpty = errors.New("mathx: empty data")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
// It returns 0 for fewer than two points.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// RMS returns the root-mean-square of xs, or 0 for empty input.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ss := 0.0
	for _, x := range xs {
		ss += x * x
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs. It returns ErrEmpty for
// empty input.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It returns ErrEmpty for empty
// input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], nil
	}
	if p >= 100 {
		return sorted[len(sorted)-1], nil
	}
	pos := p / 100 * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i], nil
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac, nil
}

// MaxAbs returns the largest absolute value in xs, or 0 for empty input.
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
