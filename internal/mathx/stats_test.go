package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %g, want ≈2.138 (sample)", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of single value should be 0")
	}
	if StdDev(nil) != 0 {
		t.Error("StdDev of nil should be 0")
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %g", got)
	}
	if RMS(nil) != 0 {
		t.Error("RMS of nil should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Fatalf("MinMax = %g, %g, %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g (err %v)", c.p, got, c.want, err)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("want ErrEmpty for empty input")
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{-3, 2, 1}); got != 3 {
		t.Errorf("MaxAbs = %g, want 3", got)
	}
	if MaxAbs(nil) != 0 {
		t.Error("MaxAbs of nil should be 0")
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		lo, hi, _ := MinMax(xs)
		m := Mean(xs)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: standard deviation is translation invariant.
func TestStdDevTranslationProperty(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		if len(xs) < 2 || math.Abs(shift) > 1e6 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		a, b := StdDev(xs), StdDev(shifted)
		return ApproxEqual(a, b, 1e-6, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
