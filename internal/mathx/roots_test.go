package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBisect(t *testing.T) {
	got, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-10)
	if err != nil || math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Fatalf("Bisect sqrt2 = %.12f (err %v)", got, err)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	got, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-10)
	if err != nil || got != 0 {
		t.Fatalf("endpoint root: %g, %v", got, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10); err != ErrNoRoot {
		t.Fatal("no sign change must be ErrNoRoot")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestTrapezoid(t *testing.T) {
	// ∫0..1 x dx = 0.5 exactly for the trapezoid rule on a line.
	xs := []float64{0, 0.25, 0.5, 0.75, 1}
	ys := append([]float64(nil), xs...)
	if got := Trapezoid(xs, ys); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Trapezoid = %g, want 0.5", got)
	}
	if Trapezoid(xs[:1], ys[:1]) != 0 {
		t.Error("single point integrates to 0")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solution %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Fatal("singular system must fail")
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Leading zero forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(a, []float64{3, 7})
	if err != nil || x[0] != 7 || x[1] != 3 {
		t.Fatalf("pivoted solve: %v, %v", x, err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// y = 2·c0 + 3·c1 with orthogonal columns.
	c0 := []float64{1, 0, 1, 0}
	c1 := []float64{0, 1, 0, 1}
	y := []float64{2, 3, 2, 3}
	x, err := LeastSquares([][]float64{c0, c1}, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 || math.Abs(x[1]-3) > 1e-6 {
		t.Fatalf("LS solution %v", x)
	}
}

func TestLeastSquaresScaleInvariance(t *testing.T) {
	// Wildly different column scales must not break the solve (the
	// template-fit regression scenario).
	n := 50
	c0 := make([]float64, n)
	c1 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		c0[i] = 1e-9 * math.Sin(float64(i))
		c1[i] = 1.0
		y[i] = 4e-9*math.Sin(float64(i)) + 2.0
	}
	x, err := LeastSquares([][]float64{c0, c1}, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-3 || math.Abs(x[1]-2) > 1e-6 {
		t.Fatalf("scale-mixed LS solution %v, want [4 2]", x)
	}
}

// Property: ApproxEqual is symmetric.
func TestApproxEqualSymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return ApproxEqual(a, b, 1e-6, 1e-9) == ApproxEqual(b, a, 1e-6, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
