package mathx

import (
	"errors"
	"math"
)

// ErrNoRoot is returned when a bracketing interval does not contain a
// sign change or iteration fails to converge.
var ErrNoRoot = errors.New("mathx: no root in bracket")

// Bisect finds x in [a, b] with f(x) ≈ 0 by bisection. f(a) and f(b)
// must have opposite signs. tol is the absolute x tolerance.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if fa*fb > 0 {
		return 0, ErrNoRoot
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (a + b)
		fm := f(mid)
		if fm == 0 || (b-a)/2 < tol {
			return mid, nil
		}
		if fa*fm < 0 {
			b, fb = mid, fm
		} else {
			a, fa = mid, fm
		}
	}
	return 0.5 * (a + b), nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Trapezoid integrates y over x with the trapezoidal rule. The slices
// must be equal length; fewer than two points integrates to zero.
func Trapezoid(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	s := 0.0
	for i := 1; i < len(x); i++ {
		s += 0.5 * (y[i] + y[i-1]) * (x[i] - x[i-1])
	}
	return s
}

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute tolerance abs near zero).
func ApproxEqual(a, b, rel, abs float64) bool {
	d := math.Abs(a - b)
	if d <= abs {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= rel*m
}
