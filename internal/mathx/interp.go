package mathx

import "errors"

// ErrOutOfRange is returned when interpolating outside the sample domain.
var ErrOutOfRange = errors.New("mathx: abscissa outside sample domain")

// Interp1 linearly interpolates y(x) given samples (xs, ys) with xs
// strictly increasing. Queries outside [xs[0], xs[last]] return
// ErrOutOfRange.
func Interp1(xs, ys []float64, x float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, ErrBadFit
	}
	if x < xs[0] || x > xs[len(xs)-1] {
		return 0, ErrOutOfRange
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	if xs[hi] == xs[lo] {
		return ys[lo], nil
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo]*(1-t) + ys[hi]*t, nil
}

// CrossingTime returns the first abscissa at which ys crosses the given
// level (rising if ys starts below it, falling otherwise), linearly
// interpolated between samples. It returns ErrOutOfRange if the series
// never crosses the level.
func CrossingTime(xs, ys []float64, level float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, ErrBadFit
	}
	rising := ys[0] < level
	for i := 1; i < len(ys); i++ {
		crossed := (rising && ys[i] >= level) || (!rising && ys[i] <= level)
		if !crossed {
			continue
		}
		if ys[i] == ys[i-1] {
			return xs[i], nil
		}
		t := (level - ys[i-1]) / (ys[i] - ys[i-1])
		return xs[i-1] + t*(xs[i]-xs[i-1]), nil
	}
	return 0, ErrOutOfRange
}
