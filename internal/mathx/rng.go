// Package mathx provides the small numerical toolkit the simulator is
// built on: a deterministic random source, descriptive statistics, linear
// regression, interpolation, and root finding. Everything is stdlib-only
// and allocation-conscious so it can sit inside inner simulation loops.
package mathx

import "math"

// RNG is a deterministic pseudo-random generator (splitmix64 core with a
// xorshift finalizer). Every stochastic element of the simulator takes an
// explicit *RNG so experiments are reproducible bit-for-bit.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian variate from the Box–Muller
	// transform; spareOK marks it valid.
	spare   float64
	spareOK bool
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// SplitmixGamma is the splitmix64 stream increment (the golden-ratio
// constant).
const SplitmixGamma = 0x9E3779B97F4A7C15

// Reset rewinds the generator to the exact state NewRNG(seed) would
// produce, discarding any cached Box–Muller spare. Batched runners use
// it to reuse one allocation across many deterministic streams.
func (r *RNG) Reset(seed uint64) {
	r.state = seed
	r.spare = 0
	r.spareOK = false
}

// Mix64 is the splitmix64 avalanche finalizer: a bijective mix whose
// output bits all depend on all input bits. It is the shared scrambler
// behind the RNG stream, per-sample seed derivation, and hash-ring
// point spreading (raw FNV of short similar strings leaves high bits
// correlated).
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += SplitmixGamma
	return Mix64(r.state)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// NormScaled returns a normal variate with the given standard deviation.
func (r *RNG) NormScaled(sigma float64) float64 {
	return sigma * r.Norm()
}

// Split returns a new generator whose stream is independent of r's
// continued use; it is seeded from r's stream. Useful for giving each
// noise source in the analog chain its own stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
