package mathx

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular linear system")

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting. A is modified in place (pass a copy to preserve it); b is
// not modified. Intended for the small (≤ ~10 unknown) systems of the
// template-fitting code.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, ErrSingular
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, ErrSingular
		}
	}
	rhs := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for c := i + 1; c < n; c++ {
			s -= a[i][c] * x[c]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// LeastSquares solves min ‖D·x − y‖² via the normal equations DᵀD·x =
// Dᵀy. D is given column-wise: cols[k][i] is row i of column k. All
// columns must have len(y) rows.
func LeastSquares(cols [][]float64, y []float64) ([]float64, error) {
	k := len(cols)
	if k == 0 {
		return nil, ErrSingular
	}
	m := len(y)
	for _, c := range cols {
		if len(c) != m {
			return nil, ErrSingular
		}
	}
	// Columns can differ by many orders of magnitude (ampere-scale
	// templates next to a constant-one background column), so normalize
	// each to unit RMS before forming the normal equations.
	scale := make([]float64, k)
	norm := make([][]float64, k)
	for i, c := range cols {
		s := RMS(c)
		if s == 0 {
			s = 1
		}
		scale[i] = s
		nc := make([]float64, m)
		for r := range c {
			nc[r] = c[r] / s
		}
		norm[i] = nc
	}
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := 0; i < k; i++ {
		ata[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			s := 0.0
			for r := 0; r < m; r++ {
				s += norm[i][r] * norm[j][r]
			}
			ata[i][j] = s
		}
		s := 0.0
		for r := 0; r < m; r++ {
			s += norm[i][r] * y[r]
		}
		atb[i] = s
	}
	// A whisper of Tikhonov regularization keeps nearly collinear
	// columns (e.g. two CV templates with coincident peak potentials)
	// from blowing up the solve. It must stay tiny: the ridge couples
	// components, and fitted amplitudes can span nine orders of
	// magnitude across columns.
	for i := 0; i < k; i++ {
		ata[i][i] += 1e-12 * float64(m)
	}
	x, err := SolveLinear(ata, atb)
	if err != nil {
		return nil, err
	}
	for i := range x {
		x[i] /= scale[i]
	}
	return x, nil
}
