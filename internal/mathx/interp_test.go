package mathx

import (
	"math"
	"testing"
)

func TestInterp1(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{0, 10, 20, 40}
	cases := []struct{ x, want float64 }{
		{0, 0}, {0.5, 5}, {1, 10}, {3, 30}, {4, 40},
	}
	for _, c := range cases {
		got, err := Interp1(xs, ys, c.x)
		if err != nil || math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interp1(%g) = %g (err %v), want %g", c.x, got, err, c.want)
		}
	}
	if _, err := Interp1(xs, ys, -1); err != ErrOutOfRange {
		t.Error("below-range query must fail")
	}
	if _, err := Interp1(xs, ys, 5); err != ErrOutOfRange {
		t.Error("above-range query must fail")
	}
	if _, err := Interp1([]float64{1}, []float64{1}, 1); err != ErrBadFit {
		t.Error("single-point input must fail")
	}
}

func TestCrossingTimeRising(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 2, 3, 4}
	got, err := CrossingTime(xs, ys, 2.5)
	if err != nil || math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("CrossingTime = %g (err %v), want 2.5", got, err)
	}
}

func TestCrossingTimeFalling(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{10, 8, 4, 0}
	got, err := CrossingTime(xs, ys, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1 || got > 2 {
		t.Fatalf("falling crossing at %g, want within (1,2)", got)
	}
}

func TestCrossingTimeNever(t *testing.T) {
	if _, err := CrossingTime([]float64{0, 1}, []float64{0, 1}, 5); err != ErrOutOfRange {
		t.Error("uncrossed level must fail")
	}
}
