package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := make([]float64, len(x))
	for i, xi := range x {
		y[i] = 2.5*xi - 1.0
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2.5) > 1e-12 || math.Abs(fit.Intercept+1.0) > 1e-12 {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %g for exact line", fit.R2)
	}
	if fit.MaxAbsResidual > 1e-12 {
		t.Errorf("residual %g on exact line", fit.MaxAbsResidual)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); err != ErrBadFit {
		t.Error("single point should be ErrBadFit")
	}
	if _, err := FitLinear([]float64{1, 1, 1}, []float64{1, 2, 3}); err != ErrBadFit {
		t.Error("zero x-variance should be ErrBadFit")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err != ErrBadFit {
		t.Error("length mismatch should be ErrBadFit")
	}
}

func TestFitLinearResiduals(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{0, 1, 2, 4} // last point off by 1 from y=x... roughly
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.Residuals) != len(x) {
		t.Fatalf("residual count %d", len(fit.Residuals))
	}
	// Residuals of an OLS fit sum to zero.
	sum := 0.0
	for _, r := range fit.Residuals {
		sum += r
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("residual sum %g, want 0", sum)
	}
}

func TestEval(t *testing.T) {
	f := LinearFit{Slope: 3, Intercept: -2}
	if f.Eval(4) != 10 {
		t.Errorf("Eval(4) = %g", f.Eval(4))
	}
}

// Property: fitting y = a·x + b recovers a and b for any sane a, b.
func TestFitLinearRecoveryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.Abs(a) > 1e6 || math.Abs(b) > 1e6 {
			return true
		}
		x := []float64{-2, -1, 0, 1, 2, 5}
		y := make([]float64, len(x))
		for i, xi := range x {
			y[i] = a*xi + b
		}
		fit, err := FitLinear(x, y)
		if err != nil {
			return false
		}
		return ApproxEqual(fit.Slope, a, 1e-9, 1e-9) && ApproxEqual(fit.Intercept, b, 1e-9, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
