package analog

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/phys"
)

func TestIFCFrequencyLaw(t *testing.T) {
	c := DefaultIFC()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// f = I/(C·Vth): 1 nA through 1 pF·0.5 V → 2 kHz.
	f := c.Frequency(phys.NanoAmps(1))
	if math.Abs(f-2000) > 1e-6 {
		t.Fatalf("f = %g Hz, want 2000", f)
	}
	// Linear in current.
	if f2 := c.Frequency(phys.NanoAmps(2)); math.Abs(f2/f-2) > 1e-12 {
		t.Fatal("frequency must be linear in current")
	}
}

func TestIFCResolutionAndRange(t *testing.T) {
	c := DefaultIFC()
	// One count over 100 ms = 5 pA.
	if got := float64(c.Resolution()); math.Abs(got-5e-12) > 1e-18 {
		t.Fatalf("resolution %g A", got)
	}
	// 10 MHz × 0.5 pC = 5 µA full scale.
	if got := c.RangeCurrent().MicroAmps(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("range %g µA", got)
	}
	// Longer gate buys resolution linearly.
	c2 := DefaultIFC()
	c2.GateTime = 1.0
	if r := float64(c2.Resolution()) / float64(c.Resolution()); math.Abs(r-0.1) > 1e-12 {
		t.Fatal("resolution must scale with 1/gate")
	}
}

func TestIFCConvertAccuracy(t *testing.T) {
	c := DefaultIFC()
	c.Reset()
	in := phys.NanoAmps(3.21)
	// Averaged over many gates, the phase-carrying counter recovers the
	// input exactly (the residue never discards charge).
	sum := 0.0
	const gates = 50
	for k := 0; k < gates; k++ {
		sum += float64(c.Convert(in))
	}
	avg := sum / gates
	if math.Abs(avg-float64(in))/float64(in) > 1e-3 {
		t.Fatalf("averaged estimate %g vs %g", avg, float64(in))
	}
}

func TestIFCSignHandling(t *testing.T) {
	c := DefaultIFC()
	c.Reset()
	neg := c.Convert(phys.NanoAmps(-5))
	if neg >= 0 {
		t.Fatal("negative current must convert to a negative estimate")
	}
}

func TestIFCSaturatesAtMaxRate(t *testing.T) {
	c := DefaultIFC()
	c.Reset()
	over := phys.MicroAmps(50) // 10× the 5 µA range
	got := c.Convert(over)
	if float64(got) > float64(c.RangeCurrent())*1.001 {
		t.Fatalf("estimate %v beyond range %v", got, c.RangeCurrent())
	}
}

func TestIFCQuantizationWithinOneCount(t *testing.T) {
	// A single gate is accurate to one count.
	c := DefaultIFC()
	f := func(raw uint32) bool {
		c.Reset()
		i := phys.Current(float64(raw%100000) * 1e-12) // 0..100 nA
		got := c.Convert(i)
		return math.Abs(float64(got-i)) <= float64(c.Resolution())+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
