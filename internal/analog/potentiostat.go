package analog

import (
	"fmt"

	"advdiag/internal/phys"
)

// Potentiostat models the control amplifier that keeps the working-vs-
// reference potential at the programmed value (paper Fig. 1): a finite
// loop gain and input offset make the actual cell potential deviate
// slightly from the target, and a compliance limit bounds the current it
// can source through the counter electrode.
type Potentiostat struct {
	// LoopGain is the DC gain of the control loop (dimensionless).
	LoopGain float64
	// Offset is the input-referred offset voltage.
	Offset phys.Voltage
	// Compliance is the maximum counter-electrode current magnitude.
	Compliance phys.Current
	// MaxDrive is the maximum voltage the loop can force on the cell.
	MaxDrive phys.Voltage
}

// DefaultPotentiostat returns the catalog potentiostat used by the
// platform: 100 dB loop gain, 0.2 mV offset, 1 mA compliance, ±1.5 V
// drive (covers the paper's −750…+700 mV window with margin).
func DefaultPotentiostat() *Potentiostat {
	return &Potentiostat{
		LoopGain:   1e5,
		Offset:     phys.MilliVolts(0.2),
		Compliance: phys.MicroAmps(1000),
		MaxDrive:   phys.Voltage(1.5),
	}
}

// Validate checks the parameters.
func (p *Potentiostat) Validate() error {
	if p.LoopGain <= 1 {
		return fmt.Errorf("analog: potentiostat loop gain must exceed 1, got %g", p.LoopGain)
	}
	if p.Compliance <= 0 {
		return fmt.Errorf("analog: potentiostat compliance must be positive")
	}
	if p.MaxDrive <= 0 {
		return fmt.Errorf("analog: potentiostat max drive must be positive")
	}
	return nil
}

// Apply returns the actual cell potential produced for a programmed
// target: target·A/(1+A) + offset, clamped to the drive range.
func (p *Potentiostat) Apply(target phys.Voltage) phys.Voltage {
	actual := phys.Voltage(float64(target)*p.LoopGain/(1+p.LoopGain)) + p.Offset
	if actual > p.MaxDrive {
		actual = p.MaxDrive
	}
	if actual < -p.MaxDrive {
		actual = -p.MaxDrive
	}
	return actual
}

// ControlError returns |Apply(target) − target|, the static control
// accuracy at the given set point.
func (p *Potentiostat) ControlError(target phys.Voltage) phys.Voltage {
	e := p.Apply(target) - target
	if e < 0 {
		e = -e
	}
	return e
}

// WithinCompliance reports whether the potentiostat can source the given
// cell current.
func (p *Potentiostat) WithinCompliance(i phys.Current) bool {
	if i < 0 {
		i = -i
	}
	return i <= p.Compliance
}
