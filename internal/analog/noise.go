// Package analog simulates the electronic acquisition chain of the
// platform (paper Fig. 1 and Fig. 2): the potentiostat control loop,
// the transimpedance current readout, fixed and sweep voltage
// generators, the analog multiplexer, the ADC, and the noise phenomena
// (thermal and flicker) with their countermeasures (chopper
// stabilization and correlated double sampling).
package analog

import (
	"math"

	"advdiag/internal/mathx"
)

// WhiteNoise produces independent Gaussian samples — thermal (Johnson)
// noise folded into the sampling bandwidth.
type WhiteNoise struct {
	// Sigma is the per-sample standard deviation.
	Sigma float64
	rng   *mathx.RNG
}

// NewWhiteNoise returns a white source with per-sample deviation sigma.
func NewWhiteNoise(sigma float64, rng *mathx.RNG) *WhiteNoise {
	return &WhiteNoise{Sigma: sigma, rng: rng}
}

// Sample returns the next noise value.
func (w *WhiteNoise) Sample() float64 {
	if w.Sigma <= 0 {
		return 0
	}
	return w.rng.NormScaled(w.Sigma)
}

// FlickerNoise produces 1/f ("pink") noise via the Voss–McCartney
// multirate algorithm: rows of Gaussian values updated at halving rates
// sum to a spectrum within a fraction of a dB of 1/f over ~Rows octaves.
// Flicker noise dominates the low-frequency band where the biosensor
// signals live (paper §II-C), which is why chopping and CDS matter.
type FlickerNoise struct {
	// Sigma is the per-sample standard deviation of the summed output.
	Sigma float64
	rows  []float64
	count uint64
	rng   *mathx.RNG
}

// NewFlickerNoise returns a pink source with per-sample deviation sigma
// spread over the given number of octaves (rows); 16 covers any
// experiment length used here.
func NewFlickerNoise(sigma float64, rows int, rng *mathx.RNG) *FlickerNoise {
	if rows < 1 {
		rows = 16
	}
	f := &FlickerNoise{Sigma: sigma, rows: make([]float64, rows), rng: rng}
	for i := range f.rows {
		f.rows[i] = rng.Norm()
	}
	return f
}

// Sample returns the next noise value.
func (f *FlickerNoise) Sample() float64 {
	if f.Sigma <= 0 {
		return 0
	}
	f.count++
	// Update the row whose bit flipped (number of trailing zeros).
	n := f.count
	row := 0
	for n&1 == 0 && row < len(f.rows)-1 {
		n >>= 1
		row++
	}
	f.rows[row] = f.rng.Norm()
	sum := 0.0
	for _, v := range f.rows {
		sum += v
	}
	// Normalize: the sum of R unit rows has variance R.
	return f.Sigma * sum / math.Sqrt(float64(len(f.rows)))
}

// NoiseModel bundles the input-referred current noise of a readout
// channel.
type NoiseModel struct {
	white   *WhiteNoise
	flicker *FlickerNoise
	// flickerScale attenuates the flicker component; chopper
	// stabilization sets it well below one.
	flickerScale float64
}

// NewNoiseModel builds a channel noise model with the given per-sample
// white and flicker standard deviations (amperes, input-referred).
func NewNoiseModel(whiteSigma, flickerSigma float64, rng *mathx.RNG) *NoiseModel {
	return &NoiseModel{
		white:        NewWhiteNoise(whiteSigma, rng.Split()),
		flicker:      NewFlickerNoise(flickerSigma, 16, rng.Split()),
		flickerScale: 1,
	}
}

// Rebind re-derives the model's noise streams from rng exactly as
// NewNoiseModel would — same Split draws in the same order, same
// flicker row initialization — but into the existing allocations. After
// Rebind the model's future samples are bit-identical to those of a
// freshly constructed model handed the same rng state. The chopper
// setting is preserved.
func (n *NoiseModel) Rebind(rng *mathx.RNG) {
	n.white.rng.Reset(rng.Uint64())
	f := n.flicker
	f.rng.Reset(rng.Uint64())
	f.count = 0
	for i := range f.rows {
		f.rows[i] = f.rng.Norm()
	}
}

// ChopperSuppression is the flicker-noise attenuation a chopper
// amplifier achieves by translating the signal above the 1/f corner
// before amplification (paper §II-C).
const ChopperSuppression = 20.0

// EnableChopper turns chopper stabilization on or off.
func (n *NoiseModel) EnableChopper(on bool) {
	if on {
		n.flickerScale = 1 / ChopperSuppression
	} else {
		n.flickerScale = 1
	}
}

// Sample returns the next input-referred noise current.
func (n *NoiseModel) Sample() float64 {
	if n == nil {
		return 0
	}
	return n.white.Sample() + n.flickerScale*n.flicker.Sample()
}
