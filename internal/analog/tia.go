package analog

import (
	"fmt"
	"math"

	"advdiag/internal/phys"
)

// TIA is the transimpedance amplifier converting the working-electrode
// current to a voltage (paper Fig. 1): V = −I·Rf, with output
// saturation, a single-pole bandwidth limit, and input-referred current
// noise handled by the enclosing Chain.
type TIA struct {
	// Feedback is the transimpedance Rf.
	Feedback phys.Resistance
	// Saturation is the output swing limit (±Saturation).
	Saturation phys.Voltage
	// BandwidthHz is the −3 dB bandwidth of the stage.
	BandwidthHz float64
	// OutputOffset is the output-referred offset voltage.
	OutputOffset phys.Voltage

	// filter state (one-pole IIR, configured by Reset).
	state       float64
	alpha       float64
	initialized bool
}

// Validate checks the parameters.
func (t *TIA) Validate() error {
	if t.Feedback <= 0 {
		return fmt.Errorf("analog: TIA feedback must be positive")
	}
	if t.Saturation <= 0 {
		return fmt.Errorf("analog: TIA saturation must be positive")
	}
	if t.BandwidthHz <= 0 {
		return fmt.Errorf("analog: TIA bandwidth must be positive")
	}
	return nil
}

// Reset clears the filter state and fixes the sampling interval used for
// the bandwidth pole.
func (t *TIA) Reset(dt float64) {
	t.state = 0
	t.initialized = false
	if dt <= 0 || t.BandwidthHz <= 0 {
		t.alpha = 1
		return
	}
	// One-pole low-pass: alpha = dt/(tau+dt), tau = 1/(2π·f3dB).
	tau := 1 / (2 * math.Pi * t.BandwidthHz)
	t.alpha = dt / (tau + dt)
	if t.alpha > 1 {
		t.alpha = 1
	}
}

// Convert processes one current sample into the output voltage,
// applying the transimpedance, saturation and the bandwidth pole.
func (t *TIA) Convert(i phys.Current) phys.Voltage {
	v := -float64(i) * float64(t.Feedback)
	sat := float64(t.Saturation)
	if v > sat {
		v = sat
	}
	if v < -sat {
		v = -sat
	}
	if !t.initialized {
		t.state = v
		t.initialized = true
	} else {
		t.state += t.alpha * (v - t.state)
	}
	return phys.Voltage(t.state) + t.OutputOffset
}

// FullScaleCurrent returns the current magnitude that saturates the
// output: Saturation/Feedback.
func (t *TIA) FullScaleCurrent() phys.Current {
	return phys.Current(float64(t.Saturation) / float64(t.Feedback))
}

// Saturated reports whether |i| exceeds the linear input range.
func (t *TIA) Saturated(i phys.Current) bool {
	if i < 0 {
		i = -i
	}
	return i > t.FullScaleCurrent()
}

// Readout classes from the paper (§II-C): oxidase channels need
// ±10 µA range with 10 nA resolution; CYP channels ±100 µA with 100 nA.

// NewOxidaseTIA returns the catalog oxidase readout: Rf = 100 kΩ so
// ±10 µA maps to ±1 V.
func NewOxidaseTIA() *TIA {
	return &TIA{Feedback: 100e3, Saturation: 1.0, BandwidthHz: 100}
}

// NewCYPTIA returns the catalog CYP readout: Rf = 10 kΩ so ±100 µA maps
// to ±1 V.
func NewCYPTIA() *TIA {
	return &TIA{Feedback: 10e3, Saturation: 1.0, BandwidthHz: 100}
}
