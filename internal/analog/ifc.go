package analog

import (
	"fmt"
	"math"

	"advdiag/internal/phys"
)

// CurrentToFrequency is the time-based readout alternative the paper
// cites (§II-C: "Alternative approaches convert currents to the
// frequency domain [26], [27]"): the input current charges an
// integration capacitor to a threshold, the integrator resets and emits
// a pulse, and the pulse rate encodes the current:
//
//	f = I / (C_int · V_th)
//
// Counting pulses over a gate time T digitizes the current with one-
// count resolution C_int·V_th/T — resolution is bought with measurement
// time instead of amplifier gain, and there is no amplitude saturation
// until the pulse rate hits the counter's maximum.
type CurrentToFrequency struct {
	// Cint is the integration capacitance.
	Cint phys.Capacitance
	// Vth is the comparator threshold.
	Vth phys.Voltage
	// GateTime is the counting window per sample in seconds.
	GateTime float64
	// MaxRate is the maximum countable pulse rate (comparator/counter
	// speed limit) in Hz.
	MaxRate float64

	// phase carries the integrator residue between samples, so counts
	// accumulate exactly like the physical integrator.
	phase float64
}

// DefaultIFC returns the catalog converter: 1 pF, 0.5 V threshold,
// 100 ms gate, 10 MHz counter — 5 fA·s of charge per count, i.e. 5 pA
// resolution at the default gate.
func DefaultIFC() *CurrentToFrequency {
	return &CurrentToFrequency{Cint: 1e-12, Vth: 0.5, GateTime: 0.1, MaxRate: 10e6}
}

// Validate checks the converter parameters.
func (c *CurrentToFrequency) Validate() error {
	if c.Cint <= 0 || c.Vth <= 0 {
		return fmt.Errorf("analog: IFC needs positive Cint and Vth")
	}
	if c.GateTime <= 0 {
		return fmt.Errorf("analog: IFC needs a positive gate time")
	}
	if c.MaxRate <= 0 {
		return fmt.Errorf("analog: IFC needs a positive max rate")
	}
	return nil
}

// Reset clears the integrator residue.
func (c *CurrentToFrequency) Reset() { c.phase = 0 }

// ChargePerCount returns C_int·V_th, the charge quantum of one pulse.
func (c *CurrentToFrequency) ChargePerCount() float64 {
	return float64(c.Cint) * float64(c.Vth)
}

// Resolution returns the one-count current resolution at the configured
// gate time.
func (c *CurrentToFrequency) Resolution() phys.Current {
	return phys.Current(c.ChargePerCount() / c.GateTime)
}

// RangeCurrent returns the largest measurable current magnitude (the
// counter's max rate times the charge quantum).
func (c *CurrentToFrequency) RangeCurrent() phys.Current {
	return phys.Current(c.MaxRate * c.ChargePerCount())
}

// Frequency returns the ideal pulse rate for current i.
func (c *CurrentToFrequency) Frequency(i phys.Current) float64 {
	f := math.Abs(float64(i)) / c.ChargePerCount()
	if f > c.MaxRate {
		f = c.MaxRate
	}
	return f
}

// Convert counts pulses over one gate window for current i and returns
// the current estimate the digital side reconstructs (sign preserved:
// a real converter uses a bidirectional charge-balancing front end).
func (c *CurrentToFrequency) Convert(i phys.Current) phys.Current {
	f := c.Frequency(i)
	// Exact integrator behaviour: counts = floor(phase + f·T), with the
	// fractional charge carried into the next window.
	acc := c.phase + f*c.GateTime
	counts := math.Floor(acc)
	c.phase = acc - counts
	est := counts / c.GateTime * c.ChargePerCount()
	if i < 0 {
		est = -est
	}
	return phys.Current(est)
}

// CountsFor returns the pulse count for one gate window at current i
// without advancing the integrator (for sizing and tests).
func (c *CurrentToFrequency) CountsFor(i phys.Current) int {
	return int(math.Floor(c.Frequency(i) * c.GateTime))
}
