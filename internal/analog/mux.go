package analog

import (
	"fmt"

	"advdiag/internal/phys"
)

// Mux is the analog multiplexer that shares one readout channel among
// several working electrodes (paper §II-C and §III: "a multiplexer,
// which switches sequentially among the different working electrodes";
// cf. De Venuto et al. [23]).
type Mux struct {
	// Channels is the number of selectable inputs.
	Channels int
	// SettleTime is the dead time after switching before samples are
	// valid (switch settling plus readout recovery).
	SettleTime float64
	// Leakage is the off-channel leakage current each unselected input
	// injects into the selected one.
	Leakage phys.Current

	selected int
}

// DefaultMux returns the catalog multiplexer: 8 channels, 50 ms
// settling, 50 pA off-channel leakage.
func DefaultMux(channels int) *Mux {
	return &Mux{Channels: channels, SettleTime: 0.050, Leakage: phys.Current(50e-12)}
}

// Validate checks the parameters.
func (m *Mux) Validate() error {
	if m.Channels < 1 {
		return fmt.Errorf("analog: mux needs ≥1 channel, got %d", m.Channels)
	}
	if m.SettleTime < 0 {
		return fmt.Errorf("analog: negative mux settle time")
	}
	return nil
}

// Select switches to the given channel (0-based).
func (m *Mux) Select(ch int) error {
	if ch < 0 || ch >= m.Channels {
		return fmt.Errorf("analog: mux channel %d out of range [0,%d)", ch, m.Channels)
	}
	m.selected = ch
	return nil
}

// Selected returns the active channel.
func (m *Mux) Selected() int { return m.selected }

// Pass returns the current delivered to the readout when the selected
// input carries i: the signal plus aggregate off-channel leakage.
func (m *Mux) Pass(i phys.Current) phys.Current {
	return i + phys.Current(float64(m.Channels-1))*m.Leakage
}
