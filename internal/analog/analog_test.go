package analog

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

func TestPotentiostatAccuracy(t *testing.T) {
	p := DefaultPotentiostat()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// With 100 dB loop gain the static error at 650 mV is dominated by
	// the 0.2 mV offset.
	target := phys.MilliVolts(650)
	if e := p.ControlError(target); e.MilliVolts() > 0.25 {
		t.Fatalf("control error %g mV too large", e.MilliVolts())
	}
	// Drive clamps.
	if got := p.Apply(phys.Voltage(5)); got > p.MaxDrive {
		t.Fatalf("drive not clamped: %v", got)
	}
	if got := p.Apply(phys.Voltage(-5)); got < -p.MaxDrive {
		t.Fatalf("negative drive not clamped: %v", got)
	}
}

func TestPotentiostatCompliance(t *testing.T) {
	p := DefaultPotentiostat()
	if !p.WithinCompliance(phys.MicroAmps(999)) {
		t.Fatal("1 mA compliance must accept 999 µA")
	}
	if p.WithinCompliance(phys.MicroAmps(1001)) {
		t.Fatal("must reject beyond-compliance current")
	}
	if !p.WithinCompliance(phys.MicroAmps(-999)) {
		t.Fatal("compliance must be symmetric")
	}
}

func TestPotentiostatValidate(t *testing.T) {
	bad := &Potentiostat{LoopGain: 0.5, Compliance: 1, MaxDrive: 1}
	if err := bad.Validate(); err == nil {
		t.Fatal("loop gain ≤1 must fail")
	}
}

func TestTIAConversion(t *testing.T) {
	tia := NewOxidaseTIA()
	if err := tia.Validate(); err != nil {
		t.Fatal(err)
	}
	tia.Reset(0) // no bandwidth filtering
	// V = −I·Rf: +1 µA through 100 kΩ → −0.1 V.
	got := tia.Convert(phys.MicroAmps(1))
	if math.Abs(float64(got)+0.1) > 1e-12 {
		t.Fatalf("convert: %v", got)
	}
}

func TestTIASaturation(t *testing.T) {
	tia := NewOxidaseTIA()
	tia.Reset(0)
	got := tia.Convert(phys.MicroAmps(100)) // 10× full scale
	if math.Abs(float64(got)) > float64(tia.Saturation)+1e-12 {
		t.Fatalf("output beyond saturation: %v", got)
	}
	if !tia.Saturated(phys.MicroAmps(100)) {
		t.Fatal("Saturated must report overload")
	}
	if tia.Saturated(phys.MicroAmps(5)) {
		t.Fatal("5 µA is within the ±10 µA range")
	}
}

func TestTIAFullScaleCurrents(t *testing.T) {
	// The paper's two readout classes: ±10 µA and ±100 µA.
	if got := NewOxidaseTIA().FullScaleCurrent().MicroAmps(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("oxidase TIA full scale %g µA", got)
	}
	if got := NewCYPTIA().FullScaleCurrent().MicroAmps(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("CYP TIA full scale %g µA", got)
	}
}

func TestTIABandwidthPole(t *testing.T) {
	tia := &TIA{Feedback: 1e5, Saturation: 1, BandwidthHz: 1}
	tia.Reset(0.01)
	// The first sample initializes the filter state (no artificial
	// charging transient); a subsequent step must then follow the
	// one-pole response with tau = 1/(2π) s.
	tia.Convert(0)
	var out phys.Voltage
	for i := 0; i < 16; i++ { // 0.16 s ≈ tau
		out = tia.Convert(phys.MicroAmps(1))
	}
	want := -0.1 * (1 - math.Exp(-1))
	if math.Abs(float64(out)-want) > 0.01 {
		t.Fatalf("pole response %g, want ≈%g", float64(out), want)
	}
}

func TestDCSource(t *testing.T) {
	d := DCSource{Level: phys.MilliVolts(650), Hold: 60}
	if d.VoltageAt(0) != d.Level || d.VoltageAt(30) != d.Level {
		t.Fatal("DC source must hold its level")
	}
	if d.Duration() != 60 {
		t.Fatal("duration")
	}
}

func TestTriangleSweep(t *testing.T) {
	s := TriangleSweep{Start: phys.Voltage(0), Vertex: phys.Voltage(-0.5), Rate: phys.SweepRate(0.02), Cycles: 1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.HalfPeriod() != 25 {
		t.Fatalf("half period %g", s.HalfPeriod())
	}
	if s.Duration() != 50 {
		t.Fatalf("duration %g", s.Duration())
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0}, {12.5, -0.25}, {25, -0.5}, {37.5, -0.25}, {50, 0},
	}
	for _, c := range cases {
		if got := float64(s.VoltageAt(c.t)); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("V(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestTriangleSweepCycles(t *testing.T) {
	s := TriangleSweep{Start: 0.1, Vertex: -0.1, Rate: 0.02, Cycles: 3}
	if s.Duration() != 60 {
		t.Fatalf("3-cycle duration %g", s.Duration())
	}
	// Periodicity.
	if math.Abs(float64(s.VoltageAt(7)-s.VoltageAt(27))) > 1e-9 {
		t.Fatal("cycles must repeat")
	}
}

func TestTriangleSweepValidate(t *testing.T) {
	bad := []TriangleSweep{
		{Start: 0, Vertex: 0, Rate: 0.02, Cycles: 1},
		{Start: 0, Vertex: -1, Rate: 0, Cycles: 1},
		{Start: 0, Vertex: -1, Rate: 0.02, Cycles: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sweep %d accepted", i)
		}
	}
}

func TestCheckSweepRate(t *testing.T) {
	if err := CheckSweepRate(phys.MilliVoltsPerSecond(20)); err != nil {
		t.Fatalf("20 mV/s must pass: %v", err)
	}
	if err := CheckSweepRate(phys.MilliVoltsPerSecond(500)); err == nil {
		t.Fatal("500 mV/s must fail the cell limit")
	}
}

func TestMux(t *testing.T) {
	m := DefaultMux(5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := m.Select(4); err != nil {
		t.Fatal(err)
	}
	if m.Selected() != 4 {
		t.Fatal("selection lost")
	}
	if err := m.Select(5); err == nil {
		t.Fatal("out-of-range channel must fail")
	}
	// Leakage: 4 off-channels × 50 pA.
	got := m.Pass(phys.NanoAmps(10))
	want := 10e-9 + 4*50e-12
	if math.Abs(float64(got)-want) > 1e-15 {
		t.Fatalf("pass: %g, want %g", float64(got), want)
	}
}

func TestADCQuantization(t *testing.T) {
	a := DefaultADC()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	lsb := float64(a.LSB())
	// 12 bits over ±1 V → LSB ≈ 0.488 mV.
	if math.Abs(lsb-2.0/4096) > 1e-12 {
		t.Fatalf("LSB %g", lsb)
	}
	// Quantization error bounded by LSB/2 inside the range (the very
	// top code is clamped by two's-complement asymmetry, so stay below).
	for _, v := range []float64{0.1, -0.37, 0.995, 0} {
		q := float64(a.Quantize(phys.Voltage(v)))
		if math.Abs(q-v) > lsb/2+1e-15 {
			t.Errorf("quantize(%g) = %g: error exceeds LSB/2", v, q)
		}
	}
	// Clamping at the rails.
	if q := float64(a.Quantize(2.0)); q > 1.0 {
		t.Fatalf("positive rail not clamped: %g", q)
	}
	if q := float64(a.Quantize(-2.0)); q < -1.0-lsb {
		t.Fatalf("negative rail not clamped: %g", q)
	}
}

func TestADCCodeMonotoneProperty(t *testing.T) {
	a := DefaultADC()
	f := func(v1, v2 float64) bool {
		if math.IsNaN(v1) || math.IsNaN(v2) {
			return true
		}
		v1 = mathx.Clamp(v1, -2, 2)
		v2 = mathx.Clamp(v2, -2, 2)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return a.Code(phys.Voltage(v1)) <= a.Code(phys.Voltage(v2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWhiteNoiseStatistics(t *testing.T) {
	w := NewWhiteNoise(2.0, mathx.NewRNG(5))
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := w.Sample()
		sum += v
		sumSq += v * v
	}
	sd := math.Sqrt(sumSq/n - (sum/n)*(sum/n))
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("white noise σ = %g, want 2", sd)
	}
}

func TestFlickerNoiseSpectrum(t *testing.T) {
	// Pink noise must hold substantially more low-frequency energy than
	// white noise of the same per-sample σ. Compare the variance of
	// block means (a low-pass statistic).
	rng := mathx.NewRNG(9)
	pink := NewFlickerNoise(1, 16, rng.Split())
	white := NewWhiteNoise(1, rng.Split())
	const blocks = 200
	const blockLen = 256
	blockVar := func(sample func() float64) float64 {
		var means []float64
		for b := 0; b < blocks; b++ {
			s := 0.0
			for i := 0; i < blockLen; i++ {
				s += sample()
			}
			means = append(means, s/blockLen)
		}
		return mathx.StdDev(means)
	}
	pv := blockVar(pink.Sample)
	wv := blockVar(white.Sample)
	if pv < 3*wv {
		t.Fatalf("pink block-mean σ %g vs white %g: not enough low-frequency energy", pv, wv)
	}
}

func TestChopperSuppression(t *testing.T) {
	rng := mathx.NewRNG(11)
	n := NewNoiseModel(0, 1, rng)
	var rawSS float64
	const cnt = 20000
	for i := 0; i < cnt; i++ {
		v := n.Sample()
		rawSS += v * v
	}
	n2 := NewNoiseModel(0, 1, mathx.NewRNG(11))
	n2.EnableChopper(true)
	var chopSS float64
	for i := 0; i < cnt; i++ {
		v := n2.Sample()
		chopSS += v * v
	}
	ratio := math.Sqrt(rawSS / chopSS)
	if math.Abs(ratio-ChopperSuppression) > 1 {
		t.Fatalf("chopper suppression %g, want ≈%g", ratio, ChopperSuppression)
	}
}

func TestChainDigitizeRoundTrip(t *testing.T) {
	// With noise disabled the chain recovers the input current within
	// one ADC LSB through the nominal transimpedance.
	chain := NewOxidaseChain(nil, mathx.NewRNG(1))
	chain.Noise = nil
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	chain.Reset(0)
	in := phys.MicroAmps(3)
	var v phys.Voltage
	for i := 0; i < 5; i++ { // let the pole settle
		v = chain.Digitize(in)
	}
	got := chain.CurrentFromVoltage(v)
	if math.Abs(float64(got-in)) > float64(chain.ResolutionCurrent()) {
		t.Fatalf("round trip: %v -> %v", in, got)
	}
}

func TestChainRangeAndResolution(t *testing.T) {
	chain := NewOxidaseChain(nil, mathx.NewRNG(1))
	if got := chain.RangeCurrent().MicroAmps(); math.Abs(got-10) > 0.01 {
		t.Fatalf("oxidase chain range %g µA", got)
	}
	// Resolution ≈ 4.9 nA (12-bit LSB through 100 kΩ) — inside the
	// paper's 10 nA requirement.
	if got := chain.ResolutionCurrent().NanoAmps(); got > 10 {
		t.Fatalf("oxidase chain resolution %g nA exceeds the paper's 10 nA", got)
	}
	cyp := NewCYPChain(nil, mathx.NewRNG(1))
	if got := cyp.RangeCurrent().MicroAmps(); math.Abs(got-100) > 0.1 {
		t.Fatalf("CYP chain range %g µA", got)
	}
	if got := cyp.ResolutionCurrent().NanoAmps(); got > 100 {
		t.Fatalf("CYP chain resolution %g nA exceeds the paper's 100 nA", got)
	}
}

func TestChainValidateCatchesMissingStage(t *testing.T) {
	chain := NewOxidaseChain(nil, mathx.NewRNG(1))
	chain.Readout = nil
	if err := chain.Validate(); err == nil {
		t.Fatal("missing readout must fail validation")
	}
}
