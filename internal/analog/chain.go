package analog

import (
	"fmt"

	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

// Chain is one assembled acquisition channel (paper Fig. 2): voltage
// generator → potentiostat → cell → multiplexer → transimpedance
// readout → ADC, with the channel's input-referred noise model.
//
// The cell itself is simulated elsewhere; Chain turns the cell's
// faradaic current into the digitized voltage the platform records.
type Chain struct {
	// Pstat is the potential control loop.
	Pstat *Potentiostat
	// Mux is the electrode multiplexer (nil when each electrode has a
	// dedicated readout).
	Mux *Mux
	// Readout is the transimpedance stage.
	Readout *TIA
	// Converter is the ADC.
	Converter *ADC
	// Noise is the input-referred current noise of the channel (nil for
	// an ideal chain).
	Noise *NoiseModel
}

// NewOxidaseChain assembles the catalog chain for oxidase channels:
// ±10 µA readout, 12-bit ADC, white noise floor ≈2 nA per sample with a
// 10 nA flicker component (before chopping).
func NewOxidaseChain(mux *Mux, rng *mathx.RNG) *Chain {
	return &Chain{
		Pstat:     DefaultPotentiostat(),
		Mux:       mux,
		Readout:   NewOxidaseTIA(),
		Converter: DefaultADC(),
		Noise:     NewNoiseModel(2e-9, 10e-9, rng),
	}
}

// NewCYPChain assembles the paper-spec chain for CYP channels: ±100 µA
// readout, 12-bit ADC, white noise floor ≈20 nA with a 100 nA flicker
// component (before chopping). This class suits the cm²-scale electrodes
// of the cited CYP references; the platform's 0.23 mm² electrodes need
// the nano or pico classes below.
func NewCYPChain(mux *Mux, rng *mathx.RNG) *Chain {
	return &Chain{
		Pstat:     DefaultPotentiostat(),
		Mux:       mux,
		Readout:   NewCYPTIA(),
		Converter: DefaultADC(),
		Noise:     NewNoiseModel(20e-9, 100e-9, rng),
	}
}

// NewNanoChain assembles a high-gain chain for nA-scale currents:
// Rf = 1 MΩ (±1 µA full scale, ≈0.5 nA per LSB), 0.2 nA white and 1 nA
// flicker noise.
func NewNanoChain(mux *Mux, rng *mathx.RNG) *Chain {
	return &Chain{
		Pstat:     DefaultPotentiostat(),
		Mux:       mux,
		Readout:   &TIA{Feedback: 1e6, Saturation: 1.0, BandwidthHz: 100},
		Converter: DefaultADC(),
		Noise:     NewNoiseModel(0.2e-9, 1e-9, rng),
	}
}

// NewPicoChain assembles an electrometer-grade chain for sub-nA
// currents: Rf = 10 MΩ (±100 nA full scale, ≈50 pA per LSB), 20 pA
// white and 60 pA flicker noise. The multiplexed CYP channels of the
// 0.23 mm² platform land here.
func NewPicoChain(mux *Mux, rng *mathx.RNG) *Chain {
	return &Chain{
		Pstat:     DefaultPotentiostat(),
		Mux:       mux,
		Readout:   &TIA{Feedback: 10e6, Saturation: 1.0, BandwidthHz: 30},
		Converter: DefaultADC(),
		Noise:     NewNoiseModel(20e-12, 60e-12, rng),
	}
}

// Validate checks every stage.
func (c *Chain) Validate() error {
	if c.Pstat == nil || c.Readout == nil || c.Converter == nil {
		return fmt.Errorf("analog: chain missing a stage")
	}
	if err := c.Pstat.Validate(); err != nil {
		return err
	}
	if c.Mux != nil {
		if err := c.Mux.Validate(); err != nil {
			return err
		}
	}
	if err := c.Readout.Validate(); err != nil {
		return err
	}
	return c.Converter.Validate()
}

// Reset prepares the chain for a run sampled at interval dt.
func (c *Chain) Reset(dt float64) {
	c.Readout.Reset(dt)
}

// Rebind re-derives the chain's per-run random state from rng exactly
// as the chain constructors would (NewNoiseModel's two Split draws plus
// the flicker row fill), reusing every allocation. Every other stage is
// either pure (potentiostat, mux, ADC) or reset per run (TIA, via
// Reset), so a rebound chain behaves bit-identically to a newly
// constructed one consuming the same rng.
func (c *Chain) Rebind(rng *mathx.RNG) {
	if c.Noise != nil {
		c.Noise.Rebind(rng)
	}
}

// ApplyPotential returns the cell potential actually established for a
// programmed target.
func (c *Chain) ApplyPotential(target phys.Voltage) phys.Voltage {
	return c.Pstat.Apply(target)
}

// Digitize processes one cell-current sample through mux, noise, TIA and
// ADC, returning the recorded voltage.
func (c *Chain) Digitize(i phys.Current) phys.Voltage {
	if c.Mux != nil {
		i = c.Mux.Pass(i)
	}
	if c.Noise != nil {
		i += phys.Current(c.Noise.Sample())
	}
	v := c.Readout.Convert(i)
	return c.Converter.Quantize(v)
}

// CurrentFromVoltage inverts the nominal transimpedance, recovering the
// current estimate the digital side works with.
func (c *Chain) CurrentFromVoltage(v phys.Voltage) phys.Current {
	return phys.Current(-float64(v) / float64(c.Readout.Feedback))
}

// ResolutionCurrent returns the smallest current step the chain
// resolves: one ADC LSB through the transimpedance.
func (c *Chain) ResolutionCurrent() phys.Current {
	return phys.Current(float64(c.Converter.LSB()) / float64(c.Readout.Feedback))
}

// RangeCurrent returns the full-scale current of the chain.
func (c *Chain) RangeCurrent() phys.Current {
	fs := c.Readout.FullScaleCurrent()
	adcFS := phys.Current(float64(c.Converter.FullScale) / float64(c.Readout.Feedback))
	if adcFS < fs {
		return adcFS
	}
	return fs
}
