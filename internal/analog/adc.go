package analog

import (
	"fmt"
	"math"

	"advdiag/internal/phys"
)

// ADC digitizes the readout voltage (paper §II-C: the current readout
// translates the cell current "into a voltage that can be digitized
// through an ADC").
type ADC struct {
	// Bits is the resolution.
	Bits int
	// FullScale is the input range (±FullScale).
	FullScale phys.Voltage
	// SampleRate is the conversion rate in samples/s.
	SampleRate float64
}

// DefaultADC returns the catalog converter: 12 bits over ±1 V at
// 1 kS/s — enough for 10 nA steps on the 100 kΩ oxidase readout
// (LSB = 0.49 mV ≙ 4.9 nA) and 100 nA steps on the CYP readout.
func DefaultADC() *ADC {
	return &ADC{Bits: 12, FullScale: 1.0, SampleRate: 1000}
}

// Validate checks the parameters.
func (a *ADC) Validate() error {
	if a.Bits < 1 || a.Bits > 32 {
		return fmt.Errorf("analog: ADC bits %d outside [1,32]", a.Bits)
	}
	if a.FullScale <= 0 {
		return fmt.Errorf("analog: ADC full scale must be positive")
	}
	if a.SampleRate <= 0 {
		return fmt.Errorf("analog: ADC sample rate must be positive")
	}
	return nil
}

// LSB returns the quantization step.
func (a *ADC) LSB() phys.Voltage {
	return phys.Voltage(2 * float64(a.FullScale) / float64(uint64(1)<<uint(a.Bits)))
}

// Quantize converts v to the nearest code and back, clamping at the
// rails — the value the digital side of the platform actually sees.
func (a *ADC) Quantize(v phys.Voltage) phys.Voltage {
	fs := float64(a.FullScale)
	x := float64(v)
	if x > fs {
		x = fs
	}
	if x < -fs {
		x = -fs
	}
	lsb := float64(a.LSB())
	code := math.Round(x / lsb)
	maxCode := float64(uint64(1)<<uint(a.Bits-1)) - 1
	if code > maxCode {
		code = maxCode
	}
	if code < -maxCode-1 {
		code = -maxCode - 1
	}
	return phys.Voltage(code * lsb)
}

// Code returns the integer code for v (clamped two's-complement range).
func (a *ADC) Code(v phys.Voltage) int {
	lsb := float64(a.LSB())
	code := int(math.Round(mathClamp(float64(v), -float64(a.FullScale), float64(a.FullScale)) / lsb))
	maxCode := int(uint64(1)<<uint(a.Bits-1)) - 1
	if code > maxCode {
		code = maxCode
	}
	if code < -maxCode-1 {
		code = -maxCode - 1
	}
	return code
}

func mathClamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
