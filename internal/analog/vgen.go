package analog

import (
	"fmt"
	"math"

	"advdiag/internal/phys"
)

// Waveform is a programmed potential-vs-time profile fed to the
// potentiostat (paper §II-C: "a voltage generator that generates a fixed
// or variable voltage").
type Waveform interface {
	// VoltageAt returns the programmed potential at time t (seconds from
	// waveform start).
	VoltageAt(t float64) phys.Voltage
	// Duration returns the total waveform length in seconds.
	Duration() float64
}

// DCSource is the fixed potential used for chronoamperometry; the level
// is the enzyme's applied potential from Table I.
type DCSource struct {
	// Level is the programmed potential.
	Level phys.Voltage
	// Hold is how long the potential is held.
	Hold float64
}

// VoltageAt implements Waveform.
func (d DCSource) VoltageAt(float64) phys.Voltage { return d.Level }

// Duration implements Waveform.
func (d DCSource) Duration() float64 { return d.Hold }

// TriangleSweep is the cyclic-voltammetry waveform: a linear sweep from
// Start to Vertex and back, repeated Cycles times. For the reduction
// scans of Table II, Start sits above the expected peaks and Vertex
// below them, so the cathodic (forward) branch crosses every peak.
type TriangleSweep struct {
	// Start is the initial (and return) potential.
	Start phys.Voltage
	// Vertex is the turning potential.
	Vertex phys.Voltage
	// Rate is the sweep magnitude |dE/dt|.
	Rate phys.SweepRate
	// Cycles is the number of full triangles (≥1).
	Cycles int
}

// Validate checks the sweep parameters.
func (s TriangleSweep) Validate() error {
	if s.Rate <= 0 {
		return fmt.Errorf("analog: sweep rate must be positive")
	}
	if s.Start == s.Vertex {
		return fmt.Errorf("analog: degenerate sweep window")
	}
	if s.Cycles < 1 {
		return fmt.Errorf("analog: cycles must be ≥1, got %d", s.Cycles)
	}
	return nil
}

// HalfPeriod returns the single-branch sweep time |Vertex−Start|/Rate.
func (s TriangleSweep) HalfPeriod() float64 {
	return math.Abs(float64(s.Vertex-s.Start)) / float64(s.Rate)
}

// Duration implements Waveform.
func (s TriangleSweep) Duration() float64 {
	return 2 * s.HalfPeriod() * float64(s.Cycles)
}

// VoltageAt implements Waveform.
func (s TriangleSweep) VoltageAt(t float64) phys.Voltage {
	if t <= 0 {
		return s.Start
	}
	half := s.HalfPeriod()
	if half == 0 {
		return s.Start
	}
	period := 2 * half
	phase := math.Mod(t, period)
	if t >= s.Duration() {
		return s.Start
	}
	frac := phase / half
	if frac <= 1 {
		// Forward branch: Start → Vertex.
		return s.Start + phys.Voltage(frac)*(s.Vertex-s.Start)
	}
	// Return branch: Vertex → Start.
	return s.Vertex + phys.Voltage(frac-1)*(s.Start-s.Vertex)
}

// MaxCellSweepRate is the fastest potential variation the
// electrochemical cell tracks faithfully; beyond it the current peak no
// longer appears at the target's potential (paper §II-C cites about
// 20 mV/s, with degradation growing past ~50 mV/s).
var MaxCellSweepRate = phys.MilliVoltsPerSecond(50)

// CheckSweepRate returns an error when the sweep is too fast for
// faithful peak identification.
func CheckSweepRate(r phys.SweepRate) error {
	if r > MaxCellSweepRate {
		return fmt.Errorf("analog: sweep rate %v exceeds the cell limit %v", r, MaxCellSweepRate)
	}
	return nil
}
