package experiments

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// selectReadout wraps the explorer's catalog rule for the E8 report.
func selectReadout(maxI, resReq phys.Current) (string, error) {
	rc, err := core.SelectReadout(maxI, resReq)
	if err != nil {
		return "", err
	}
	return rc.Name, nil
}

// StructureAblation (E10) quantifies the paper's §II-A structural
// argument: measure the cross-talk error of a co-chambered oxidase pair
// versus isolated chambers, and the platform cost of each policy.
func StructureAblation() (*Result, error) {
	res := &Result{ID: "E10", Title: "§II-A sensor structures — cross-talk vs cost"}

	ag := enzyme.AssaysFor("glucose")[0]
	al := enzyme.AssaysFor("lactate")[0]

	// Glucose reading error caused by 2 mM lactate next door.
	runGlucose := func(shared bool) (float64, error) {
		weG := electrode.NewWorking("WEG", electrode.CNT, ag)
		weL := electrode.NewWorking("WEL", electrode.CNT, al)
		var c *cell.Cell
		solWith := cell.NewSolution().Set("glucose", phys.MilliMolar(1)).Set("lactate", phys.MilliMolar(2))
		if shared {
			c = cell.NewSingleChamber(solWith, weG, weL,
				electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		} else {
			solG := cell.NewSolution().Set("glucose", phys.MilliMolar(1))
			solL := cell.NewSolution().Set("lactate", phys.MilliMolar(2))
			c = &cell.Cell{Crosstalk: cell.DefaultCrosstalk, Chambers: []*cell.Chamber{
				{Name: "chG", Solution: solG, Electrodes: []*electrode.Electrode{
					weG, electrode.NewReference("RE1"), electrode.NewCounter("CE1")}},
				{Name: "chL", Solution: solL, Electrodes: []*electrode.Electrode{
					weL, electrode.NewReference("RE2"), electrode.NewCounter("CE2")}},
			}}
		}
		eng, err := measure.NewEngine(c, 23)
		if err != nil {
			return 0, err
		}
		chain := analog.NewNanoChain(nil, eng.RNG())
		chain.Noise = nil
		r, err := eng.RunCA("WEG", chain, measure.Chronoamperometry{Duration: 60})
		if err != nil {
			return 0, err
		}
		return float64(r.SteadyCurrent()), nil
	}
	iShared, err := runGlucose(true)
	if err != nil {
		return nil, err
	}
	iIsolated, err := runGlucose(false)
	if err != nil {
		return nil, err
	}
	crossErr := (iShared - iIsolated) / iIsolated * 100
	res.Rows = append(res.Rows, Row{
		Label:    "glucose reading with 2 mM lactate co-chambered",
		Paper:    "H₂O₂ cross-talk assumed negligible in a shared chamber",
		Measured: fmt.Sprintf("+%.2f %% signal error vs isolated chambers", crossErr),
	})
	res.metric("crosstalk_pct", crossErr)

	// Cost of the three chamber policies for the full panel.
	req := core.Requirements{Targets: []core.TargetSpec{
		{Species: "glucose"}, {Species: "lactate"}, {Species: "glutamate"},
		{Species: "benzphetamine"}, {Species: "aminopyrine"}, {Species: "cholesterol"},
	}}
	asn := map[string]enzyme.Assay{}
	for _, t := range req.Targets {
		asn[t.Species] = pickAssay(t.Species)
	}
	for _, policy := range []core.ChamberPolicy{core.SharedChamber, core.ChamberPerTechnique, core.ChamberPerElectrode} {
		cand, err := core.Evaluate(req, core.Choice{
			Assays: asn, GroupSameIsoform: true, Chambers: policy, Sharing: core.SharedMux,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Label:    policy.String(),
			Paper:    "separate chambers when reactions must be kept apart",
			Measured: fmt.Sprintf("%s (feasible=%v)", cand.Budget, cand.Feasible),
		})
		res.metric("area_"+policy.String(), cand.Budget.AreaMM2)
	}
	return res, nil
}

// pickAssay prefers oxidase routes for metabolites except cholesterol
// (the paper's own choice is CYP11A1).
func pickAssay(target string) enzyme.Assay {
	assays := enzyme.AssaysFor(target)
	if target == "cholesterol" {
		for _, a := range assays {
			if a.Probe == "CYP11A1" {
				return a
			}
		}
	}
	return assays[0]
}

// SweepRateLimit (E11) reproduces the §II-C sweep-rate discussion: as
// the rate rises past the cell limit, the quasi-reversible peak shifts
// away from the target's potential and identification degrades.
func SweepRateLimit() (*Result, error) {
	res := &Result{ID: "E11", Title: "§II-C sweep-rate limit — peak-position error vs rate"}
	a := pickAssay("benzphetamine")
	ref := 0.0
	for _, mvs := range []float64{20, 50, 100, 200, 500, 1000, 2000} {
		we := electrode.NewWorking("WE1", electrode.Bare, a)
		sol := cell.NewSolution().Set("benzphetamine", phys.MilliMolar(1))
		c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		eng, err := measure.NewEngine(c, 29)
		if err != nil {
			return nil, err
		}
		chain := analog.NewPicoChain(nil, eng.RNG())
		chain.Noise = nil
		start, vertex := measure.CVWindowFor(a.Binding.PeakPotential)
		r, err := eng.RunCV("WE1", chain, measure.CyclicVoltammetry{
			Start: start, Vertex: vertex,
			Rate:             phys.MilliVoltsPerSecond(mvs),
			AllowFastSweep:   true,
			NoFilmBackground: true, // isolate the electrode kinetics
		})
		if err != nil {
			return nil, err
		}
		// Cathodic minimum of the pre-ADC current on the forward branch
		// (the ADC's quantization plateaus would blur the argmin).
		minI, minV := 0.0, 0.0
		half := r.Potential.Len() / 2
		for i := 0; i < half; i++ {
			if r.Raw.Values[i] < minI {
				minI, minV = r.Raw.Values[i], r.Potential.Values[i]
			}
		}
		pos := minV*1e3 - a.Binding.PeakPotential.MilliVolts()
		if mvs == 20 {
			ref = pos // shifts are reported relative to the reference rate
		}
		shift := pos - ref
		status := "OK"
		if err := analog.CheckSweepRate(phys.MilliVoltsPerSecond(mvs)); err != nil {
			status = "beyond cell limit"
		}
		res.Rows = append(res.Rows, Row{
			Label:    fmt.Sprintf("%4.0f mV/s", mvs),
			Paper:    "peaks stay on target only for slow sweeps (~20 mV/s)",
			Measured: fmt.Sprintf("peak shift %+.0f mV vs 20 mV/s (%s)", shift, status),
		})
		res.metric(fmt.Sprintf("shift_%.0f", mvs), shift)
	}
	res.Notes = append(res.Notes,
		"the shift grows with rate through the quasi-reversible kinetics of the protein film (Matsuda–Ayabe):",
		"Λ = k⁰/√(D·f·v) falls below ~3 past a few hundred mV/s and the cathodic peak walks off the target potential")
	return res, nil
}

// MuxSharing (E12) quantifies the De Venuto multiplexing trade-off:
// shared-mux electronics versus dedicated per-electrode chains.
func MuxSharing() (*Result, error) {
	res := &Result{ID: "E12", Title: "§III multiplexing — shared mux vs dedicated chains"}
	req := core.Requirements{Targets: []core.TargetSpec{
		{Species: "glucose"}, {Species: "lactate"}, {Species: "glutamate"},
		{Species: "benzphetamine"}, {Species: "aminopyrine"}, {Species: "cholesterol"},
	}}
	asn := map[string]enzyme.Assay{}
	for _, t := range req.Targets {
		asn[t.Species] = pickAssay(t.Species)
	}
	for _, cfg := range []struct {
		sharing  core.ReadoutSharing
		chambers core.ChamberPolicy
		label    string
	}{
		{core.SharedMux, core.SharedChamber, "shared mux, shared chamber (Fig. 4)"},
		{core.DedicatedChains, core.SharedChamber, "dedicated chains, shared chamber"},
		{core.DedicatedChains, core.ChamberPerElectrode, "dedicated chains, isolated chambers (parallel)"},
	} {
		cand, err := core.Evaluate(req, core.Choice{
			Assays: asn, GroupSameIsoform: true, Chambers: cfg.chambers, Sharing: cfg.sharing,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Label:    cfg.label,
			Paper:    "share voltage generators and current readouts by multiplexing [23]",
			Measured: fmt.Sprintf("%s, panel %.0f s, %.1f samples/h", cand.Budget, cand.PanelTime, cand.Throughput()),
		})
		res.metric("panel_s_"+cfg.label, cand.PanelTime)
	}
	return res, nil
}
