package experiments

import (
	"fmt"
	"math"

	"advdiag"
	"advdiag/internal/core"
	"advdiag/internal/mathx"
)

// SensorArrays (E16) exercises the paper's §II array structures: a k-
// sensor array averages uncorrelated blank noise down by √k (tightening
// the effective LOD) and costs k× the bio-interface area and panel
// time. The experiment measures the reading scatter of 1-, 2- and
// 4-replica glucose arrays and the explorer's cost for each.
func SensorArrays() (*Result, error) {
	res := &Result{ID: "E16", Title: "§II sensor arrays — replicate averaging vs cost"}

	// Reading scatter: repeat a fixed-sample measurement across
	// independent sensors and average groups of k.
	const groups = 12
	scatter := func(k int) (float64, error) {
		var means []float64
		seed := uint64(100)
		for g := 0; g < groups; g++ {
			sum := 0.0
			for r := 0; r < k; r++ {
				seed++
				s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(seed))
				if err != nil {
					return 0, err
				}
				v, err := s.MeasureSteadyState(1.0)
				if err != nil {
					return 0, err
				}
				sum += v
			}
			means = append(means, sum/float64(k))
		}
		return mathx.StdDev(means), nil
	}
	sigma1, err := scatter(1)
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 2, 4} {
		sig, err := scatter(k)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Label:    fmt.Sprintf("reading scatter, %d-replica array", k),
			Paper:    "arrays of k such sensors (§II)",
			Measured: fmt.Sprintf("σ = %.4g µA (%.2f× the single sensor; ideal 1/√k = %.2f)", sig, sig/sigma1, 1/math.Sqrt(float64(k))),
		})
		res.metric(fmt.Sprintf("sigma_k%d", k), sig)
	}

	// Explorer cost of replicated platforms.
	for _, k := range []int{1, 2, 4} {
		req := core.Requirements{
			Targets:  []core.TargetSpec{{Species: "glucose"}, {Species: "lactate"}},
			Replicas: k,
		}
		// One explorer worker: the experiment runner's pool already
		// saturates the CPUs, so a nested fan-out only adds contention.
		best, err := core.BestWith(req, core.ExploreOptions{Workers: 1})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Label:    fmt.Sprintf("2-target platform ×%d replicas", k),
			Paper:    "straightforward extension to sensor arrays",
			Measured: fmt.Sprintf("%d WEs, %s, panel %.0f s", len(best.Electrodes), best.Budget, best.PanelTime),
		})
		res.metric(fmt.Sprintf("area_k%d", k), best.Budget.AreaMM2)
	}
	res.Notes = append(res.Notes,
		"replicate averaging buys measurement precision with bio-interface area — the array axis of the design space")
	return res, nil
}
