package experiments

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/longterm"
	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

// TimeBasedReadout (E13) exercises the paper's cited alternative readout
// (§II-C: "Alternative approaches convert currents to the frequency
// domain [26], [27]"): a current-to-frequency converter traded against
// the transimpedance classes on linearity, resolution and range.
func TimeBasedReadout() (*Result, error) {
	res := &Result{ID: "E13", Title: "§II-C alternative readout — current-to-frequency conversion"}

	ifc := analog.DefaultIFC()
	if err := ifc.Validate(); err != nil {
		return nil, err
	}

	// Linearity across four decades of current.
	var xs, ys []float64
	for _, na := range []float64{0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000} {
		ifc.Reset()
		// Average 10 gates, as the digital side would.
		sum := 0.0
		for k := 0; k < 10; k++ {
			sum += float64(ifc.Convert(phys.NanoAmps(na)))
		}
		xs = append(xs, na*1e-9)
		ys = append(ys, sum/10)
	}
	fit, err := mathx.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "IFC linearity, 50 pA – 1 µA",
		Paper:    "time-based potentiostats for ion-current measurement [27]",
		Measured: fmt.Sprintf("slope %.6f, R²=%.8f across 4.3 decades", fit.Slope, fit.R2),
	})
	res.metric("ifc_r2", fit.R2)

	// Resolution vs measurement time: the IFC buys resolution with gate
	// time instead of transimpedance.
	for _, gate := range []float64{0.01, 0.1, 1.0} {
		c := analog.DefaultIFC()
		c.GateTime = gate
		res.Rows = append(res.Rows, Row{
			Label:    fmt.Sprintf("IFC resolution @ %g s gate", gate),
			Paper:    "resolution bought with time, not gain",
			Measured: fmt.Sprintf("%v (range ±%v)", c.Resolution(), c.RangeCurrent()),
		})
	}

	// Head-to-head with the TIA classes at the platform's currents.
	tia := analog.NewOxidaseTIA()
	adc := analog.DefaultADC()
	tiaRes := float64(adc.LSB()) / float64(tia.Feedback)
	res.Rows = append(res.Rows, Row{
		Label: "vs ±10 µA TIA class",
		Paper: "TIA + ADC: fixed resolution per range",
		Measured: fmt.Sprintf("TIA+12-bit: %.3g nA; IFC @0.1 s: %.3g nA with no amplitude saturation below ±%v",
			tiaRes*1e9, float64(analog.DefaultIFC().Resolution())*1e9, analog.DefaultIFC().RangeCurrent()),
	})
	res.Notes = append(res.Notes,
		"dynamic range: the IFC covers 5 pA–5 µA (six decades) in one configuration, where the",
		"TIA catalog needs four switched gain classes — the integration advantage [26] cites")
	return res, nil
}

// LongTermDrift (E14) simulates the §I long-term-monitoring motivation:
// a 100 h glucose deployment with aging enzyme films, with and without
// the paper's §III polymer stabilization, and with field recalibration.
func LongTermDrift() (*Result, error) {
	res := &Result{ID: "E14", Title: "§I/§III long-term monitoring — film aging, polymers, recalibration"}
	cases := []struct {
		label string
		c     longterm.Campaign
	}{
		{"bare film, no recalibration", longterm.Campaign{Seed: 3}},
		{"bare film, recalibrate every 24 h", longterm.Campaign{RecalEveryHours: 24, Seed: 3}},
		{"polymer-stabilized, no recalibration", longterm.Campaign{Polymer: true, Seed: 3}},
	}
	for _, tc := range cases {
		r, err := tc.c.Run()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Row{
			Label:    tc.label,
			Paper:    "100 h monitoring (GlucoMen Day [7]); polymers for long-term stability [3]",
			Measured: fmt.Sprintf("max drift %.1f %%, final %.1f %%, %d calibrations", r.MaxErrorPct, r.FinalErrorPct, r.Recals),
		})
		res.metric("drift_"+tc.label, r.MaxErrorPct)
	}
	res.Notes = append(res.Notes,
		"film sensitivity decays with τ = 5 days (×10 with polymer); estimates use the slope from the last calibration,",
		"so decay since then appears as negative drift — recalibration or stabilization bounds it")
	return res, nil
}
