package experiments

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRegistryCoversE1ToE16(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("%d registered experiments, want 16", len(reg))
	}
	for i, e := range reg {
		want := fmt.Sprintf("E%d", i+1)
		if e.ID != want {
			t.Errorf("slot %d holds %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Lookup(%s) failed", e.ID)
		}
	}
	// Lookup is case-insensitive and trims.
	if e, ok := Lookup(" e7 "); !ok || e.ID != "E7" {
		t.Error("Lookup must be case-insensitive")
	}
	if _, ok := Lookup("E17"); ok {
		t.Error("Lookup must reject unknown ids")
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run([]string{"E99"}, 1); err == nil {
		t.Fatal("unknown id must fail")
	}
}

// TestRunConcurrentMatchesSerial runs a fast subset of experiments on
// one worker and on four and requires identical results: the registry
// contract is that every experiment owns its engines and seeds, so the
// numbers cannot depend on scheduling.
func TestRunConcurrentMatchesSerial(t *testing.T) {
	ids := []string{"E1", "E4", "E8", "E12", "E10"}
	serial, err := Run(ids, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(ids) || len(parallel) != len(ids) {
		t.Fatalf("result counts: serial %d, parallel %d, want %d", len(serial), len(parallel), len(ids))
	}
	for i := range ids {
		if serial[i].ID != ids[i] {
			t.Fatalf("slot %d holds %s, want %s (order must follow the request)", i, serial[i].ID, ids[i])
		}
		if parallel[i].ID != ids[i] {
			t.Fatalf("parallel slot %d holds %s, want %s", i, parallel[i].ID, ids[i])
		}
		if serial[i].String() != parallel[i].String() {
			t.Errorf("%s renders differently under concurrency", ids[i])
		}
		if !reflect.DeepEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Errorf("%s metrics diverge under concurrency:\nserial:   %v\nparallel: %v",
				ids[i], serial[i].Metrics, parallel[i].Metrics)
		}
	}
}

func TestRunAllShort(t *testing.T) {
	if testing.Short() {
		t.Skip("full E1–E16 sweep is slow")
	}
	results, err := RunAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 {
		t.Fatalf("%d results, want 16", len(results))
	}
	for i, r := range results {
		if want := fmt.Sprintf("E%d", i+1); r.ID != want {
			t.Errorf("slot %d holds %s, want %s", i, r.ID, want)
		}
	}
}
