package experiments

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/analysis"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// Interference (E15) quantifies the paper's §II-B selectivity property
// and its §II-C dopamine caveat: the enzyme rejects non-substrate
// metabolites, but direct oxidizers add current at any electrode held
// at an oxidizing potential — and the two-phase baseline-subtracted
// protocol removes exactly that contribution.
func Interference() (*Result, error) {
	res := &Result{ID: "E15", Title: "§II-B selectivity and §II-C direct-oxidizer interference"}
	assay := pickAssay("glucose")

	// run measures a glucose electrode in the given solution. Paired
	// comparisons reuse the same seed, so both runs see identical noise
	// and the difference isolates the chemistry — the controlled
	// experiment only a simulator can do exactly.
	run := func(sol *cell.Solution, baseline float64, seed uint64) (phys.Current, error) {
		we := electrode.NewWorking("WE1", electrode.CNT, assay)
		c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		eng, err := measure.NewEngine(c, seed)
		if err != nil {
			return 0, err
		}
		chain := analog.NewNanoChain(nil, eng.RNG())
		chain.Noise = nil
		r, err := eng.RunCA("WE1", chain, measure.Chronoamperometry{Duration: 90, BaselinePhase: baseline})
		if err != nil {
			return 0, err
		}
		return r.StepCurrent(), nil
	}

	// Enzymatic selectivity: lactate on a glucose electrode produces no
	// enzymatic current (glucose oxidase does not turn it over).
	gl1, err := run(cell.NewSolution().Set("glucose", phys.MilliMolar(1)), 0, 41)
	if err != nil {
		return nil, err
	}
	gl2, err := run(cell.NewSolution().Set("glucose", phys.MilliMolar(2)), 0, 41)
	if err != nil {
		return nil, err
	}
	la1, err := run(cell.NewSolution().Set("lactate", phys.MilliMolar(1)), 0, 43)
	if err != nil {
		return nil, err
	}
	la2, err := run(cell.NewSolution().Set("lactate", phys.MilliMolar(2)), 0, 43)
	if err != nil {
		return nil, err
	}
	sel, err := analysis.NewSelectivity("glucose", "lactate",
		float64(gl2-gl1)/1.0, float64(la2-la1)/1.0)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "enzymatic selectivity (glucose electrode vs lactate)",
		Paper:    "selectivity is principally a function of the recognition element (the enzyme)",
		Measured: sel.String(),
	})
	res.metric("selectivity_lactate", sel.Ratio)

	// Dopamine: a direct oxidizer adds current without any enzyme.
	base, err := run(cell.NewSolution().Set("glucose", phys.MilliMolar(1)), 0, 47)
	if err != nil {
		return nil, err
	}
	withDop, err := run(cell.NewSolution().Set("glucose", phys.MilliMolar(1)).Set("dopamine", phys.MilliMolar(0.1)), 0, 47)
	if err != nil {
		return nil, err
	}
	errPct := (float64(withDop) - float64(base)) / float64(base) * 100
	res.Rows = append(res.Rows, Row{
		Label:    "0.1 mM dopamine on a 1 mM glucose reading (single-phase)",
		Paper:    "dopamine oxidizes by applying a voltage to the WE even without any enzyme",
		Measured: fmt.Sprintf("%+.1f %% reading error", errPct),
	})
	res.metric("dopamine_err_pct", errPct)

	// The two-phase protocol measures the interferent during the buffer
	// baseline and subtracts it... but only if the interferent is in
	// the baseline matrix too. With the sample introducing both glucose
	// and dopamine, the step still carries the dopamine current — the
	// paper's point that the blank/baseline trick is "not helpful" for
	// direct oxidizers present in the sample itself.
	twoPhase, err := run(cell.NewSolution().
		Set("glucose", phys.MilliMolar(1)).
		Inject(15, "dopamine", phys.MilliMolar(0.1)), 15, 53) // arrives with the sample
	if err != nil {
		return nil, err
	}
	basePure, err := run(cell.NewSolution().Set("glucose", phys.MilliMolar(1)), 15, 53)
	if err != nil {
		return nil, err
	}
	resid := (float64(twoPhase) - float64(basePure)) / float64(basePure) * 100
	res.Rows = append(res.Rows, Row{
		Label:    "same, two-phase protocol (dopamine arrives with the sample)",
		Paper:    "the extra WE is not helpful in presence of molecules such as dopamine",
		Measured: fmt.Sprintf("%+.1f %% residual error — baseline subtraction cannot remove it", resid),
	})
	res.metric("dopamine_residual_pct", resid)
	res.Notes = append(res.Notes,
		"dopamine in the baseline matrix *would* cancel; dopamine arriving with the sample does not —",
		"selectivity against direct oxidizers must come from chemistry (membranes), not electronics")
	return res, nil
}
