package experiments

import (
	"math"
	"strings"
	"testing"
)

// These are the integration tests of the whole repository: every
// experiment must run end to end and land within the reproduction bands
// EXPERIMENTS.md claims.

func TestTableIExact(t *testing.T) {
	res, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"glucose_mV": 550, "lactate_mV": 650, "glutamate_mV": 600, "cholesterol_mV": 700,
	}
	for k, v := range want {
		if got := res.Metrics[k]; math.Abs(got-v) > 10.01 {
			t.Errorf("%s = %g, want %g ± 10", k, got, v)
		}
	}
}

func TestTableIIWithinTwoMillivolts(t *testing.T) {
	res, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"CYP1A2/clozapine_mV":     -265,
		"CYP3A4/erythromycin_mV":  -625,
		"CYP3A4/indinavir_mV":     -750,
		"CYP11A1/cholesterol_mV":  -400,
		"CYP2B4/benzphetamine_mV": -250,
		"CYP2B4/aminopyrine_mV":   -400,
		"CYP2B6/bupropion_mV":     -450,
		"CYP2B6/lidocaine_mV":     -450,
		"CYP2C9/torsemide_mV":     -19,
		"CYP2C9/diclofenac_mV":    -41,
		"CYP2E1/p-nitrophenol_mV": -300,
	}
	for k, v := range want {
		got, ok := res.Metrics[k]
		if !ok {
			t.Errorf("%s: peak not detected", k)
			continue
		}
		if math.Abs(got-v) > 5 {
			t.Errorf("%s = %g mV, want %g ± 5", k, got, v)
		}
	}
}

func TestTableIIIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full calibrations are slow")
	}
	res, err := TableIII()
	if err != nil {
		t.Fatal(err)
	}
	wantS := map[string]float64{
		"glucose_S": 27.7, "lactate_S": 40.1, "glutamate_S": 25.5,
		"benzphetamine_S": 0.28, "aminopyrine_S": 2.8, "cholesterol_S": 112,
	}
	for k, v := range wantS {
		got := res.Metrics[k]
		if math.Abs(got-v)/v > 0.20 {
			t.Errorf("%s = %g, paper %g (>20%% off)", k, got, v)
		}
	}
	// Sensitivity ordering preserved.
	m := res.Metrics
	if !(m["lactate_S"] > m["glucose_S"] && m["glucose_S"] > m["glutamate_S"]) {
		t.Error("oxidase sensitivity ordering broken")
	}
	if !(m["cholesterol_S"] > m["aminopyrine_S"] && m["aminopyrine_S"] > m["benzphetamine_S"]) {
		t.Error("CYP sensitivity ordering broken")
	}
	// Linear-range top within 25 %.
	if math.Abs(m["glucose_hi_mM"]-4)/4 > 0.25 {
		t.Errorf("glucose linear top %g, paper 4", m["glucose_hi_mM"])
	}
	// LOD within 2.5×.
	if m["glucose_LOD_uM"] < 575/2.5 || m["glucose_LOD_uM"] > 575*2.5 {
		t.Errorf("glucose LOD %g µM, paper 575", m["glucose_LOD_uM"])
	}
}

func TestFig1Quality(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["control_error_mV"] > 1 {
		t.Errorf("control error %g mV", res.Metrics["control_error_mV"])
	}
	if res.Metrics["tia_r2"] < 0.999999 {
		t.Errorf("TIA linearity R² %g", res.Metrics["tia_r2"])
	}
}

func TestFig3TimeResponse(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if t90 := res.Metrics["t90_s"]; t90 < 20 || t90 > 40 {
		t.Errorf("t90 = %g s, paper ≈30", t90)
	}
}

func TestFig4PanelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("full panel is slow")
	}
	res, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["WEs"] != 5 {
		t.Fatalf("%g WEs, want 5", res.Metrics["WEs"])
	}
	for _, k := range []string{"glucose_rel_err", "lactate_rel_err", "benzphetamine_rel_err",
		"aminopyrine_rel_err", "cholesterol_rel_err"} {
		if res.Metrics[k] > 0.30 {
			t.Errorf("%s = %.0f %%", k, res.Metrics[k]*100)
		}
	}
	// Glutamate reads near its LOD; allow a wider band.
	if res.Metrics["glutamate_rel_err"] > 0.60 {
		t.Errorf("glutamate_rel_err = %.0f %%", res.Metrics["glutamate_rel_err"]*100)
	}
}

func TestSweepRateMonotoneDegradation(t *testing.T) {
	res, err := SweepRateLimit()
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Metrics["shift_50"]
	fast := res.Metrics["shift_2000"]
	if math.Abs(slow) > 3 {
		t.Errorf("shift at 50 mV/s = %g mV, want ≈0", slow)
	}
	if fast > -15 {
		t.Errorf("shift at 2000 mV/s = %g mV, want strongly negative", fast)
	}
}

func TestNoiseAblationChopper(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrations are slow")
	}
	res, err := NoiseAblation()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["floor_chopped_nA"] >= res.Metrics["floor_plain_nA"] {
		t.Error("chopper must lower the noise floor")
	}
	if math.Abs(res.Metrics["cds_residual_mV"]) > 0.01 {
		t.Errorf("CDS residual %g mV", res.Metrics["cds_residual_mV"])
	}
}

func TestStructureAblationCrosstalkSmall(t *testing.T) {
	res, err := StructureAblation()
	if err != nil {
		t.Fatal(err)
	}
	x := res.Metrics["crosstalk_pct"]
	if x <= 0 || x > 5 {
		t.Errorf("cross-talk %g %%, want small but present", x)
	}
	if !(res.Metrics["area_shared-chamber"] < res.Metrics["area_chamber-per-electrode"]) {
		t.Error("chamber isolation must cost area")
	}
}

func TestTimeBasedReadoutLinearity(t *testing.T) {
	res, err := TimeBasedReadout()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["ifc_r2"] < 0.9999 {
		t.Errorf("IFC linearity R² %g", res.Metrics["ifc_r2"])
	}
}

func TestLongTermDriftOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are slow")
	}
	res, err := LongTermDrift()
	if err != nil {
		t.Fatal(err)
	}
	bare := res.Metrics["drift_bare film, no recalibration"]
	recal := res.Metrics["drift_bare film, recalibrate every 24 h"]
	poly := res.Metrics["drift_polymer-stabilized, no recalibration"]
	if !(recal < bare && poly < bare) {
		t.Errorf("drift ordering broken: bare %g, recal %g, polymer %g", bare, recal, poly)
	}
}

func TestResultRendering(t *testing.T) {
	res, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, frag := range []string{"E1", "paper:", "measured:", "glucose oxidase"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendering missing %q", frag)
		}
	}
}
