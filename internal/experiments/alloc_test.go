package experiments

import "testing"

// The allocation-regression tests pin the batched acquisition path's
// headline win (PR 9): routing the Fig. 2 chain and Fig. 4 panel
// assembly through the pooled scratch arenas cut their allocation
// bills by more than half versus the BENCH_PR3.json baseline (766 and
// 2102 allocs/op). The ceilings sit at the 50%-reduction acceptance
// line, with measured counts well below (≈370 and ≈748 on go1.24), so
// any change that re-introduces per-replica garbage fails here in
// plain `go test` rather than waiting for a bench diff. Counts are
// per-run and duration-independent — AllocsPerRun averages over full
// experiment executions.

func TestFig2AllocCeiling(t *testing.T) {
	if _, err := Fig2(); err != nil { // warm caches outside the count
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Fig2(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 383 {
		t.Fatalf("Fig. 2 acquisition chain allocates %.0f objects/run, want ≤ 383 (≤50%% of the PR 3 baseline's 766)", allocs)
	}
}

func TestFig4AllocCeiling(t *testing.T) {
	if _, err := Fig4(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Fig4(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1000 {
		t.Fatalf("Fig. 4 panel assembly allocates %.0f objects/run, want ≤ 1000 (the PR 3 baseline was 2102)", allocs)
	}
}
