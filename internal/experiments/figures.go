package experiments

import (
	"fmt"

	"advdiag"
	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/measure"
	"advdiag/internal/netlist"
	"advdiag/internal/phys"
)

// Fig1 exercises the paper's Fig. 1 block: a potentiostat holding the
// cell potential while a transimpedance amplifier converts the working-
// electrode current. Reports control accuracy and readout linearity.
func Fig1() (*Result, error) {
	res := &Result{ID: "E4", Title: "Fig. 1 — potentiostat and transimpedance readout"}

	pstat := analog.DefaultPotentiostat()
	worst := 0.0
	for mv := -750.0; mv <= 700; mv += 50 {
		e := pstat.ControlError(phys.MilliVolts(mv))
		if e.MilliVolts() > worst {
			worst = e.MilliVolts()
		}
	}
	res.Rows = append(res.Rows, Row{
		Label:    "potentiostat control error over −750…+700 mV",
		Paper:    "keeps RE/WE at the programmed potential",
		Measured: fmt.Sprintf("worst-case %.2f mV", worst),
	})
	res.metric("control_error_mV", worst)

	// TIA linearity: sweep −8…+8 µA through the ±10 µA readout and fit.
	tia := analog.NewOxidaseTIA()
	tia.Reset(0)
	var xs, ys []float64
	for ua := -8.0; ua <= 8.0; ua += 0.5 {
		xs = append(xs, ua)
		tia.Reset(0)
		ys = append(ys, float64(tia.Convert(phys.MicroAmps(ua))))
	}
	fit, err := mathx.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "TIA transfer (±10 µA class)",
		Paper:    "V = −I·Rf",
		Measured: fmt.Sprintf("slope %.4g V/µA, R²=%.6f", fit.Slope, fit.R2),
	})
	res.metric("tia_r2", fit.R2)

	// The structural diagram itself.
	d := netlist.New("fig1-potentiostat-tia")
	for _, blk := range []struct {
		name  string
		kind  netlist.BlockKind
		label string
	}{
		{"vgen", netlist.VoltageGenerator, "fixed/sweep"},
		{"pstat", netlist.Potentiostat, "control loop"},
		{"WE", netlist.WorkingElectrode, "functionalized"},
		{"RE", netlist.ReferenceElectrode, "Ag/AgCl"},
		{"CE", netlist.CounterElectrode, "Au"},
		{"tia", netlist.Readout, "transimpedance"},
		{"adc", netlist.ADC, "12-bit"},
		{"ctrl", netlist.Controller, ""},
	} {
		if err := d.AddBlock(blk.name, blk.kind, blk.label); err != nil {
			return nil, err
		}
	}
	for _, c := range [][]string{
		{"n_set", "vgen.out", "pstat.set"},
		{"n_re", "pstat.re", "RE.pin"},
		{"n_ce", "pstat.ce", "CE.pin"},
		{"n_we", "WE.pin", "tia.in"},
		{"n_out", "tia.out", "adc.in"},
		{"n_data", "adc.out", "ctrl.data"},
		{"n_prog", "ctrl.wave", "vgen.prog"},
	} {
		if err := d.Connect(c[0], c[1:]...); err != nil {
			return nil, err
		}
	}
	if err := d.Check(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "block diagram",
		Paper:    "potentiostat + TIA (Fig. 1)",
		Measured: fmt.Sprintf("%d blocks, %d nets, design rules pass", len(d.Blocks()), len(d.Nets())),
	})
	return res, nil
}

// Fig2 reproduces the Fig. 2 building-block diagram by synthesizing a
// two-target platform and running one acquisition through its full
// chain (vgen → potentiostat → cell → mux → readout → ADC).
func Fig2() (*Result, error) {
	res := &Result{ID: "E5", Title: "Fig. 2 — biosensing platform building blocks"}
	// One explorer worker: the experiment runner's pool already
	// saturates the CPUs, so a nested fan-out only adds contention.
	p, err := advdiag.DesignPlatform([]string{"glucose", "benzphetamine"},
		advdiag.WithPlatformSeed(3), advdiag.WithExploreWorkers(1))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "synthesized blocks",
		Paper:    "vgen, potentiostat, electrodes, mux, readout, ADC, control",
		Measured: p.CostSummary(),
	})
	panel, err := p.RunPanel(map[string]float64{"glucose": 2, "benzphetamine": 0.8})
	if err != nil {
		return nil, err
	}
	for _, r := range panel.Readings {
		res.Rows = append(res.Rows, Row{
			Label:    "panel " + r.Target,
			Paper:    fmt.Sprintf("true %.3g mM", r.TrueMM),
			Measured: fmt.Sprintf("%.3g mM (%.4g µA)", r.EstimatedMM, r.MeasuredMicroAmps),
		})
		res.metric("reading_"+r.Target+"_mM", r.EstimatedMM)
	}
	return res, nil
}

// Fig3 reproduces the glucose time-response figure: injection into the
// chamber, ~30 s to steady state.
func Fig3() (*Result, error) {
	res := &Result{ID: "E6", Title: "Fig. 3 — glucose biosensor time response"}
	s, err := advdiag.NewSensor("glucose", advdiag.WithSeed(5))
	if err != nil {
		return nil, err
	}
	mon, err := s.Monitor(150, advdiag.InjectionEvent{AtSeconds: 10, DeltaMM: 2})
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "steady-state response time (t90)",
		Paper:    "≈30 s to steady state after injection",
		Measured: fmt.Sprintf("%.1f s (settled=%v)", mon.T90Seconds, mon.Settled),
	})
	res.Rows = append(res.Rows, Row{
		Label:    "signal step",
		Paper:    "current rises to a plateau",
		Measured: fmt.Sprintf("%.4g → %.4g µA", mon.BaselineMicroAmps, mon.SteadyMicroAmps),
	})
	res.metric("t90_s", mon.T90Seconds)
	res.metric("steady_uA", mon.SteadyMicroAmps)
	// A coarse rendition of the curve for the report.
	for _, tq := range []float64{5, 15, 25, 40, 70, 120} {
		i := int(tq / (mon.TimesSeconds[1] - mon.TimesSeconds[0]))
		if i < len(mon.CurrentsMicroAmps) {
			res.Notes = append(res.Notes, fmt.Sprintf("I(%3.0f s) = %7.4f µA", tq, mon.CurrentsMicroAmps[i]))
		}
	}
	return res, nil
}

// Fig4 reproduces the five-electrode multi-panel demonstrator: design
// the platform for the paper's six targets, verify the structure, run a
// full multiplexed panel.
func Fig4() (*Result, error) {
	res := &Result{ID: "E7", Title: "Fig. 4 — five-WE multi-panel platform"}
	targets := []string{"glucose", "lactate", "glutamate", "benzphetamine", "aminopyrine", "cholesterol"}
	p, err := advdiag.DesignPlatform(targets,
		advdiag.WithPlatformSeed(9), advdiag.WithExploreWorkers(1))
	if err != nil {
		return nil, err
	}
	wes := p.WorkingElectrodes()
	res.Rows = append(res.Rows, Row{
		Label:    "bio-interface",
		Paper:    "5 working electrodes + shared RE/CE, multiplexed",
		Measured: fmt.Sprintf("%d WEs (%v), %s", len(wes), wes, p.CostSummary()),
	})
	res.metric("WEs", float64(len(wes)))
	sample := map[string]float64{
		"glucose": 2, "lactate": 1, "glutamate": 1,
		"benzphetamine": 0.8, "aminopyrine": 4, "cholesterol": 0.05,
	}
	panel, err := p.RunPanel(sample)
	if err != nil {
		return nil, err
	}
	for _, r := range panel.Readings {
		measured := fmt.Sprintf("%.3g mM via %s on %s", r.EstimatedMM, r.Probe, r.WE)
		if r.PeakMV != 0 {
			measured += fmt.Sprintf(" [peak %+.0f mV]", r.PeakMV)
		}
		res.Rows = append(res.Rows, Row{
			Label:    r.Target,
			Paper:    fmt.Sprintf("true %.3g mM", r.TrueMM),
			Measured: measured,
		})
		if r.TrueMM > 0 {
			res.metric(r.Target+"_rel_err", abs(r.EstimatedMM-r.TrueMM)/r.TrueMM)
		}
	}
	res.Notes = append(res.Notes,
		"benzphetamine and aminopyrine share the CYP2B4 electrode; heights separated by template decomposition")
	return res, nil
}

// ReadoutRequirements (E8) recomputes the paper's §II-C readout classes
// from simulated currents at the cited-literature electrode area
// (0.25 cm²) and at the platform's 0.23 mm² electrodes.
func ReadoutRequirements() (*Result, error) {
	res := &Result{ID: "E8", Title: "§II-C readout requirements (range / resolution)"}
	type probeCase struct {
		label string
		maxI  func(area phys.Area) float64
		res   func(area phys.Area) float64
		paper string
	}
	ox, err := enzyme.OxidaseByName("glucose oxidase")
	if err != nil {
		return nil, err
	}
	cyp, err := enzyme.CYPByIsoform("CYP2B4")
	if err != nil {
		return nil, err
	}
	bz, err := cyp.Find("benzphetamine")
	if err != nil {
		return nil, err
	}
	cases := []probeCase{
		{
			label: "oxidase channel (glucose)",
			maxI: func(a phys.Area) float64 {
				return ox.CurrentDensity(ox.Perf.LinearHi, ox.Applied, enzyme.CNTGain) * float64(a)
			},
			res: func(a phys.Area) float64 {
				return float64(ox.SensitivityAt(ox.Applied, enzyme.CNTGain)) * float64(a) * float64(ox.Perf.LOD) / 3
			},
			paper: "±10 µA range, 10 nA resolution",
		},
		{
			label: "CYP channel (benzphetamine)",
			maxI: func(a phys.Area) float64 {
				s := float64(bz.PeakSensitivityAt(phys.MilliVoltsPerSecond(20), 1)) * float64(a)
				return s * float64(bz.EffectiveConcentration(bz.Perf.LinearHi))
			},
			res: func(a phys.Area) float64 {
				return float64(bz.PeakSensitivityAt(phys.MilliVoltsPerSecond(20), 1)) * float64(a) * float64(bz.Perf.LOD) / 3
			},
			paper: "±100 µA range, 100 nA resolution",
		},
	}
	areas := []struct {
		name string
		a    phys.Area
	}{
		{"cited-electrode scale (0.05 cm²)", phys.SquareCentimetres(0.05)},
		{"platform area (0.23 mm²)", electrode.ReferenceArea},
	}
	for _, pc := range cases {
		for _, ar := range areas {
			maxI := phys.Current(pc.maxI(ar.a))
			resReq := phys.Current(pc.res(ar.a))
			measured := "no catalog class fits"
			// Inline readout selection mirroring the explorer's rule.
			if rc, err := selectReadout(maxI, resReq); err == nil {
				measured = fmt.Sprintf("%s (need ±%v at %v)", rc, maxI, resReq)
			}
			res.Rows = append(res.Rows, Row{
				Label:    pc.label + " @ " + ar.name,
				Paper:    pc.paper,
				Measured: measured,
			})
		}
	}
	res.Notes = append(res.Notes,
		"the paper's ±10 µA oxidase class is exactly what the cited-scale electrodes need;",
		"its ±100 µA CYP class is generous headroom — the µA-scale catalytic currents let the catalog pick tighter classes;",
		"the 0.23 mm² platform electrodes carry ~100× smaller currents and always select the high-gain classes")
	return res, nil
}

// NoiseAblation (E9) isolates the §II-C noise techniques: the channel's
// input-referred noise floor with and without chopper stabilization,
// the system-level glucose LOD (sensor-background-limited), and the
// offset removal of correlated double sampling.
func NoiseAblation() (*Result, error) {
	res := &Result{ID: "E9", Title: "§II-C noise techniques — ablation"}

	// Electronics-only noise floor: digitize a zero-current input.
	chainFloor := func(chopper bool) float64 {
		rng := mathx.NewRNG(13)
		ch := analog.NewOxidaseChain(nil, rng)
		ch.Noise.EnableChopper(chopper)
		ch.Reset(0.1)
		var vals []float64
		for i := 0; i < 4000; i++ {
			v := ch.Digitize(0)
			vals = append(vals, float64(ch.CurrentFromVoltage(v)))
		}
		return mathx.StdDev(vals)
	}
	floorPlain := chainFloor(false)
	floorChop := chainFloor(true)
	res.Rows = append(res.Rows, Row{
		Label:    "readout noise floor (±10 µA class)",
		Paper:    "flicker (1/f) dominates the low-frequency band",
		Measured: fmt.Sprintf("%.3g nA RMS plain → %.3g nA RMS chopped (×%.1f)", floorPlain*1e9, floorChop*1e9, floorPlain/floorChop),
	})
	res.metric("floor_plain_nA", floorPlain*1e9)
	res.metric("floor_chopped_nA", floorChop*1e9)

	// System-level LOD: sensor background dominates, so chopping barely
	// moves the glucose LOD — readout noise is already below the blank.
	grid := seq(0.25, 6.0, 0.25)
	plain, err := advdiag.NewSensor("glucose", advdiag.WithSeed(13))
	if err != nil {
		return nil, err
	}
	repPlain, err := plain.Calibrate(grid)
	if err != nil {
		return nil, err
	}
	chop, err := advdiag.NewSensor("glucose", advdiag.WithSeed(13), advdiag.WithChopper())
	if err != nil {
		return nil, err
	}
	repChop, err := chop.Calibrate(grid)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Row{
		Label:    "glucose LOD plain vs chopped",
		Paper:    "amplifier noise must be negligible vs the sensor",
		Measured: fmt.Sprintf("%.3g µM vs %.3g µM (sensor-background-limited)", repPlain.LODMicroMolar, repChop.LODMicroMolar),
	})
	res.metric("lod_plain_uM", repPlain.LODMicroMolar)
	res.metric("lod_chopper_uM", repChop.LODMicroMolar)

	// CDS: measure the drift/offset removal on a raw trace pair.
	a := enzyme.AssaysFor("glucose")[0]
	we := electrode.NewWorking("WE1", electrode.CNT, a)
	blank := electrode.NewBlankWorking("WEB")
	sol := cell.NewSolution().Set("glucose", phys.MilliMolar(1))
	c := cell.NewSingleChamber(sol, we, blank, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := measure.NewEngine(c, 17)
	if err != nil {
		return nil, err
	}
	mk := func() *analog.Chain {
		ch := analog.NewOxidaseChain(nil, eng.RNG())
		ch.Readout.OutputOffset = phys.MilliVolts(3) // correlated offset/drift
		return ch
	}
	sig, err := eng.RunCA("WE1", mk(), measure.Chronoamperometry{Duration: 60})
	if err != nil {
		return nil, err
	}
	bl, err := eng.RunCA("WEB", mk(), measure.Chronoamperometry{Potential: a.Oxidase.Applied, Duration: 60})
	if err != nil {
		return nil, err
	}
	cds, err := measure.ApplyCDS(sig.Recorded, bl.Recorded)
	if err != nil {
		return nil, err
	}
	rawOffset := mathx.Mean(bl.Recorded.Tail(0.2))
	residual := mathx.Mean(cds.Tail(0.2)) - mathx.Mean(sig.Recorded.Tail(0.2)) + rawOffset
	res.Rows = append(res.Rows, Row{
		Label:    "correlated double sampling",
		Paper:    "subtracting the enzyme-free WE removes correlated background",
		Measured: fmt.Sprintf("3 mV injected offset → %.3g mV residual after CDS", residual*1e3),
	})
	res.metric("cds_residual_mV", residual*1e3)
	return res, nil
}
