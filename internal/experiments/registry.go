package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"

	"advdiag/internal/conc"
)

// Experiment is one registered reproduction run (E1–E16).
type Experiment struct {
	// ID is the DESIGN.md experiment id ("E1"...).
	ID string
	// Title names the reproduced paper artifact.
	Title string
	// Run executes the experiment. Every experiment builds its own
	// sensors, cells and measure.Engine with a fixed seed, so runs are
	// independent, deterministic, and safe to execute concurrently.
	Run func() (*Result, error)
}

// registry lists every experiment in DESIGN.md order. It is populated
// once here and read-only afterwards, so concurrent runners may share
// it freely.
var registry = []Experiment{
	{"E1", "Table I — oxidase probes and applied potentials", TableI},
	{"E2", "Table II — CYP targets and reduction potentials", TableII},
	{"E3", "Table III — sensitivity / LOD / linear range", TableIII},
	{"E4", "Fig. 1 — potentiostat and transimpedance readout", Fig1},
	{"E5", "Fig. 2 — biosensing platform building blocks", Fig2},
	{"E6", "Fig. 3 — glucose biosensor time response", Fig3},
	{"E7", "Fig. 4 — five-WE multi-panel platform", Fig4},
	{"E8", "§II-C readout requirements (range / resolution)", ReadoutRequirements},
	{"E9", "§II-C noise techniques — ablation", NoiseAblation},
	{"E10", "§II-A sensor structures — cross-talk vs cost", StructureAblation},
	{"E11", "§II-C sweep-rate limit — peak-position error vs rate", SweepRateLimit},
	{"E12", "§III multiplexing — shared mux vs dedicated chains", MuxSharing},
	{"E13", "current-to-frequency (time-based) readout", TimeBasedReadout},
	{"E14", "long-term drift, stabilization and recalibration", LongTermDrift},
	{"E15", "enzymatic selectivity and direct-oxidizer interference", Interference},
	{"E16", "replicate sensor arrays — precision vs cost", SensorArrays},
}

// Registry returns the experiment table in DESIGN.md order.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds an experiment by its id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the named experiments on a bounded worker pool and
// returns their results in the requested order. workers < 1 defaults
// to runtime.GOMAXPROCS(0). A failing experiment does not stop the
// others: its slot is dropped from the results and its error (wrapped
// with the experiment id) is joined into the returned error.
func Run(ids []string, workers int) ([]*Result, error) {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown id %q (want E1..E%d)", id, len(registry))
		}
		exps[i] = e
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Slots indexed by request position keep the output order stable
	// whatever the completion order.
	results := make([]*Result, len(exps))
	fails := make([]error, len(exps))
	conc.ForEach(len(exps), workers, func(i int) {
		r, err := exps[i].Run()
		if err != nil {
			fails[i] = fmt.Errorf("%s: %w", exps[i].ID, err)
			return
		}
		results[i] = r
	})

	out := make([]*Result, 0, len(exps))
	var errs []error
	for i := range exps {
		if fails[i] != nil {
			errs = append(errs, fails[i])
			continue
		}
		out = append(out, results[i])
	}
	return out, errors.Join(errs...)
}

// RunAll executes every registered experiment concurrently (E1–E16)
// and returns the results in DESIGN.md order. workers < 1 defaults to
// runtime.GOMAXPROCS(0).
func RunAll(workers int) ([]*Result, error) {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return Run(ids, workers)
}
