// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation, plus the ablation studies DESIGN.md
// calls out (E1–E12). Each experiment returns a structured result with
// a text rendering; the root bench harness and cmd/experiments both run
// these, so EXPERIMENTS.md numbers come from exactly this code.
package experiments

import (
	"fmt"
	"strings"

	"advdiag"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	// Label identifies the row (probe, target, configuration).
	Label string
	// Paper is the published value(s).
	Paper string
	// Measured is the reproduced value(s).
	Measured string
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment id from DESIGN.md ("E1"...).
	ID string
	// Title names the paper artifact ("Table I — ...").
	Title string
	// Rows are the comparison lines.
	Rows []Row
	// Notes records deviations and their explanations.
	Notes []string
	// Metrics exposes headline numbers for benchmarks.
	Metrics map[string]float64
}

// String renders the result as a report section.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	labelW, paperW := 10, 10
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-*s  paper: %-*s  measured: %s\n", labelW, row.Label, paperW, row.Paper, row.Measured)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// TableI reproduces Table I: for each oxidase, scan the applied
// potential and report the lowest potential reaching 95 % of the
// H₂O₂-oxidation plateau; the paper's recommended potentials should
// come back out.
func TableI() (*Result, error) {
	res := &Result{ID: "E1", Title: "Table I — oxidase probes and applied potentials"}
	for _, o := range enzyme.Oxidases() {
		got := o.RecommendedPotential(phys.MilliVolts(10))
		res.Rows = append(res.Rows, Row{
			Label:    fmt.Sprintf("%s (%s)", o.Name, o.Target.Name),
			Paper:    fmt.Sprintf("%+.0f mV", o.Applied.MilliVolts()),
			Measured: fmt.Sprintf("%+.0f mV", got.MilliVolts()),
		})
		res.metric(o.Target.Name+"_mV", got.MilliVolts())
	}
	res.Notes = append(res.Notes,
		"measured = lowest potential reaching 95 % of the oxidation plateau, scanned in 10 mV steps")
	return res, nil
}

// TableII reproduces Table II: run a cyclic voltammogram for every
// isoform/substrate pair at 20 mV/s and report the detected cathodic
// peak potential.
func TableII() (*Result, error) {
	res := &Result{ID: "E2", Title: "Table II — CYP targets and reduction potentials"}
	for _, c := range enzyme.CYPs() {
		for _, bind := range c.Bindings {
			sensor, err := advdiag.NewSensor(bind.Substrate.Name, advdiag.WithProbe(c.Isoform), advdiag.WithSeed(7))
			if err != nil {
				return nil, err
			}
			// Mid-linear-range sample of the one substrate.
			conc := float64(bind.Perf.LinearLo+bind.Perf.LinearHi) / 2
			vg, err := sensor.RunVoltammetry(map[string]float64{bind.Substrate.Name: conc})
			if err != nil {
				return nil, err
			}
			measured := "no peak detected"
			for _, pk := range vg.Peaks {
				if abs(pk.PotentialMV-bind.PeakPotential.MilliVolts()) < 80 {
					measured = fmt.Sprintf("%+.0f mV (h=%.3g µA)", pk.PotentialMV, pk.HeightMicroAmps)
					res.metric(c.Isoform+"/"+bind.Substrate.Name+"_mV", pk.PotentialMV)
					break
				}
			}
			res.Rows = append(res.Rows, Row{
				Label:    fmt.Sprintf("%s / %s", c.Isoform, bind.Substrate.Name),
				Paper:    fmt.Sprintf("%+.0f mV", bind.PeakPotential.MilliVolts()),
				Measured: measured,
			})
		}
	}
	res.Notes = append(res.Notes,
		"CV at 20 mV/s on the cited electrode construction; peak located on the cathodic branch",
		"CYP2B6 senses bupropion and lidocaine at the same potential; each is scanned alone here")
	return res, nil
}

// tableIIIGrids holds the calibration grids per target (uniform, spanning
// below and above the published linear range so the detector has
// material on both sides).
func tableIIIGrids() map[string][]float64 {
	return map[string][]float64{
		"glucose":       seq(0.25, 6.0, 0.25),
		"lactate":       seq(0.25, 4.0, 0.25),
		"glutamate":     seq(0.25, 3.25, 0.25),
		"benzphetamine": seq(0.1, 2.0, 0.1),
		"aminopyrine":   seq(0.5, 12, 0.5),
		"cholesterol":   seq(0.01, 0.13, 0.005),
	}
}

func seq(lo, hi, step float64) []float64 {
	var out []float64
	for c := lo; c <= hi+1e-9; c += step {
		out = append(out, c)
	}
	return out
}

// tableIIIPaper holds the published Table III values.
var tableIIIPaper = map[string]struct {
	probe   string
	s       float64
	lodUM   float64
	lo, hi  float64
	comment string
}{
	"glucose":       {"glucose oxidase", 27.7, 575, 0.5, 4, ""},
	"lactate":       {"lactate oxidase", 40.1, 366, 0.5, 2.5, ""},
	"glutamate":     {"glutamate oxidase", 25.5, 1574, 0.5, 2, "paper's LOD exceeds its range floor"},
	"benzphetamine": {"CYP2B4", 0.28, 200, 0.2, 1.2, ""},
	"aminopyrine":   {"CYP2B4", 2.8, 400, 0.8, 8, ""},
	"cholesterol":   {"CYP11A1", 112, 0, 0.01, 0.08, "paper reports no LOD"},
}

// TableIII reproduces Table III: full-chain calibration per target on
// the 0.23 mm² platform electrodes with the cited constructions.
func TableIII() (*Result, error) {
	res := &Result{ID: "E3", Title: "Table III — sensitivity / LOD / linear range"}
	order := []string{"glucose", "lactate", "glutamate", "benzphetamine", "aminopyrine", "cholesterol"}
	grids := tableIIIGrids()
	for _, target := range order {
		paper := tableIIIPaper[target]
		sensor, err := advdiag.NewSensor(target, advdiag.WithProbe(paper.probe), advdiag.WithSeed(11))
		if err != nil {
			return nil, err
		}
		rep, err := sensor.Calibrate(grids[target])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", target, err)
		}
		lodPaper := "—"
		if paper.lodUM > 0 {
			lodPaper = fmt.Sprintf("%.0f µM", paper.lodUM)
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%s / %s", target, paper.probe),
			Paper: fmt.Sprintf("S=%.3g µA/(mM·cm²) LOD=%s linear %.3g–%.3g mM",
				paper.s, lodPaper, paper.lo, paper.hi),
			Measured: fmt.Sprintf("S=%.3g µA/(mM·cm²) LOD=%.3g µM linear %.3g–%.3g mM (R²=%.3f)",
				rep.SensitivityPaper, rep.LODMicroMolar, rep.LinearLoMM, rep.LinearHiMM, rep.R2),
		})
		res.metric(target+"_S", rep.SensitivityPaper)
		res.metric(target+"_LOD_uM", rep.LODMicroMolar)
		res.metric(target+"_hi_mM", rep.LinearHiMM)
		if paper.comment != "" {
			res.Notes = append(res.Notes, target+": "+paper.comment)
		}
	}
	res.Notes = append(res.Notes,
		"calibration: 12 blanks, 16 replicates per point, anchored at the lowest standard, eq. 5/6/7 analysis")
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
