package core

import (
	"fmt"
	"strings"

	"advdiag/internal/echem"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

// ChamberPolicy is the fluidic partitioning choice (paper §II: shared
// volume, separation by reaction family, or one chamber per sensor).
type ChamberPolicy int

const (
	// SharedChamber wets every electrode with the same sample volume
	// (the Fig. 4 demonstrator).
	SharedChamber ChamberPolicy = iota
	// ChamberPerTechnique separates chronoamperometric and voltammetric
	// sensors into two volumes.
	ChamberPerTechnique
	// ChamberPerElectrode isolates every working electrode (the paper's
	// "each sensor in an array must have its own chamber" case).
	ChamberPerElectrode
)

func (p ChamberPolicy) String() string {
	switch p {
	case SharedChamber:
		return "shared-chamber"
	case ChamberPerTechnique:
		return "chamber-per-technique"
	case ChamberPerElectrode:
		return "chamber-per-electrode"
	default:
		return fmt.Sprintf("ChamberPolicy(%d)", int(p))
	}
}

// ReadoutSharing is the electronics sharing choice (paper §II-A: "an
// issue is the ability to share hardware resources ... possibly by
// multiplexing", cf. De Venuto [23]).
type ReadoutSharing int

const (
	// SharedMux multiplexes every working electrode into shared readout
	// hardware.
	SharedMux ReadoutSharing = iota
	// DedicatedChains gives every working electrode its own readout and
	// converter.
	DedicatedChains
)

func (s ReadoutSharing) String() string {
	switch s {
	case SharedMux:
		return "shared-mux"
	case DedicatedChains:
		return "dedicated-chains"
	default:
		return fmt.Sprintf("ReadoutSharing(%d)", int(s))
	}
}

// Choice is one point of the structural design space.
type Choice struct {
	// Assays maps each target to the chosen probe option.
	Assays map[string]enzyme.Assay
	// GroupSameIsoform co-locates targets sharing a CYP isoform on one
	// working electrode (CYP2B4: benzphetamine + aminopyrine).
	GroupSameIsoform bool
	// Chambers is the fluidic partitioning.
	Chambers ChamberPolicy
	// Sharing is the electronics sharing policy.
	Sharing ReadoutSharing
}

// ElectrodePlan is one planned working electrode.
type ElectrodePlan struct {
	// Name is the instance name ("WE1").
	Name string
	// Nano is the chosen surface treatment (from the cited electrode
	// construction of the probe, keeping calibration valid).
	Nano electrode.Nanostructure
	// Assays lists the assays on this electrode (several for a grouped
	// CYP isoform).
	Assays []enzyme.Assay
	// Specs are the target envelopes covered here.
	Specs []TargetSpec
	// Technique is the protocol family.
	Technique enzyme.Technique
	// MaxCurrent is the largest expected signal magnitude.
	MaxCurrent phys.Current
	// ResRequired is the current resolution needed to resolve the LOD.
	ResRequired phys.Current
	// Readout is the selected catalog readout class.
	Readout ReadoutClass
	// ProtocolTime is the per-slot acquisition time in seconds.
	ProtocolTime float64
	// Blank marks the enzyme-free CDS electrode.
	Blank bool
}

// caProtocolTime is the chronoamperometry slot length: a 15 s buffer
// baseline (the zeroing phase) plus 75 s of response — two and a half
// 90 %-response times past the Fig. 3 transient, within ~1 % of steady
// state.
const caProtocolTime = 90.0

// CABaselinePhase is the buffer-only zeroing phase at the start of each
// chronoamperometric slot.
const CABaselinePhase = 15.0

// recoveryTime is the sensor recovery before the next sample (paper
// §II-B: throughput includes the time for the signal to return to its
// baseline).
const recoveryTime = 30.0

// cvMargin is the CV window margin around the expected peaks.
var cvMargin = phys.MilliVolts(250)

// defaultCVRate is the platform sweep rate (the paper's ~20 mV/s limit).
var defaultCVRate = phys.MilliVoltsPerSecond(20)

// PlanCurrents fills MaxCurrent, ResRequired and ProtocolTime from the
// plan's assays and target envelopes.
func (p *ElectrodePlan) PlanCurrents() error {
	area := electrode.ReferenceArea
	gain := p.Nano.Gain()
	switch p.Technique {
	case enzyme.Chronoamperometry:
		if len(p.Assays) != 1 {
			return fmt.Errorf("core: oxidase electrode %s must carry exactly one assay", p.Name)
		}
		ox := p.Assays[0].Oxidase
		maxC, lod := p.Specs[0].envelope(p.Assays[0])
		iMax := ox.CurrentDensity(maxC, ox.Applied, gain) * float64(area)
		sI := float64(ox.SensitivityAt(ox.Applied, gain)) * float64(area)
		p.MaxCurrent = phys.Current(iMax)
		p.ResRequired = phys.Current(sI * float64(lod) / 3)
		p.ProtocolTime = caProtocolTime
	case enzyme.CyclicVoltammetry:
		var total float64
		res := phys.Current(0)
		hi, lo := p.Assays[0].Binding.PeakPotential, p.Assays[0].Binding.PeakPotential
		for i, a := range p.Assays {
			b := a.Binding
			maxC, lod := p.Specs[i].envelope(a)
			sI := float64(b.PeakSensitivityAt(defaultCVRate, gain)) * float64(area)
			total += sI * float64(b.EffectiveConcentration(maxC))
			r := phys.Current(sI * float64(lod) / 3)
			if res == 0 || r < res {
				res = r
			}
			if b.PeakPotential > hi {
				hi = b.PeakPotential
			}
			if b.PeakPotential < lo {
				lo = b.PeakPotential
			}
		}
		// Capacitive background C·v rides on the faradaic signal.
		dl := echem.DoubleLayerFor(area, gain, electrode.DefaultSolutionResistance)
		total += float64(dl.SweepChargingCurrent(defaultCVRate))
		p.MaxCurrent = phys.Current(total)
		p.ResRequired = res
		window := float64(hi-lo) + 2*float64(cvMargin)
		p.ProtocolTime = 2 * window / float64(defaultCVRate)
	default:
		return fmt.Errorf("core: electrode %s has unknown technique", p.Name)
	}
	return nil
}

// Violation is one broken design rule.
type Violation struct {
	// Rule names the check ("peak-separation", "readout-range", ...).
	Rule string
	// Detail explains the failure.
	Detail string
	// Warning marks advisory findings that do not make the candidate
	// infeasible (e.g. CDS blank defeated by a direct oxidizer).
	Warning bool
}

func (v Violation) String() string {
	tag := "VIOLATION"
	if v.Warning {
		tag = "warning"
	}
	return fmt.Sprintf("[%s] %s: %s", tag, v.Rule, v.Detail)
}

// Candidate is one fully evaluated design point.
type Candidate struct {
	// Choice is the structural decision vector.
	Choice Choice
	// Electrodes are the planned working electrodes (including the CDS
	// blank when requested).
	Electrodes []ElectrodePlan
	// Chambers lists chamber names in order. Which chamber holds which
	// electrode is a pure function of the chamber policy — see
	// ChamberFor.
	Chambers []string
	// Feasible reports whether all hard rules passed.
	Feasible bool
	// Violations lists broken rules (hard and warnings).
	Violations []Violation
	// Budget is the total implementation cost.
	Budget Budget
	// PanelTime is the time to acquire one full panel in seconds.
	PanelTime float64
	// CycleTime is panel time plus recovery — the sample period floor.
	CycleTime float64
	// Parallel reports whether slots run concurrently.
	Parallel bool
	// key caches structuralKey(); see explore.go.
	key string
}

// ChamberFor returns the chamber name holding electrode i. Chamber
// membership is determined by the chamber policy alone, so it is
// computed on demand instead of being stored per candidate (the
// explorer builds thousands of candidates; a per-candidate map was the
// planning phase's largest allocation after the electrode plans).
func (c *Candidate) ChamberFor(i int) string {
	switch c.Choice.Chambers {
	case ChamberPerTechnique:
		if c.Electrodes[i].Technique == enzyme.Chronoamperometry {
			return "chamberCA"
		}
		return "chamberCV"
	case ChamberPerElectrode:
		return chamberName(i + 1)
	default: // SharedChamber
		return "chamber1"
	}
}

// Throughput returns panels per hour.
func (c *Candidate) Throughput() float64 {
	if c.CycleTime <= 0 {
		return 0
	}
	return 3600 / c.CycleTime
}

// Summary renders a one-line description for exploration reports.
func (c *Candidate) Summary() string {
	probes := make([]string, 0, len(c.Electrodes))
	for _, e := range c.Electrodes {
		if e.Blank {
			probes = append(probes, e.Name+":blank")
			continue
		}
		names := make([]string, 0, len(e.Assays))
		for _, a := range e.Assays {
			name := a.Target.Name
			// Disambiguate targets with several registered probes.
			if len(enzyme.AssaysFor(a.Target.Name)) > 1 {
				name += "@" + a.Probe
			}
			names = append(names, name)
		}
		probes = append(probes, fmt.Sprintf("%s:%s", e.Name, strings.Join(names, "+")))
	}
	status := "OK"
	if !c.Feasible {
		status = "infeasible"
	}
	return fmt.Sprintf("%-22s %-16s %d WE [%s] %s panel=%.0fs (%s)",
		c.Choice.Chambers, c.Choice.Sharing, len(c.Electrodes),
		strings.Join(probes, " "), c.Budget, c.PanelTime, status)
}
