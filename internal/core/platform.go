package core

import (
	"fmt"
	"strconv"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/netlist"
	"advdiag/internal/phys"
	"advdiag/internal/schedule"
)

// The synthesizer emits the same index-numbered block, net and pin
// names for every platform, so the common indices are interned once at
// init instead of Sprintf'd per candidate. tabName falls back to
// building the string for indices past the table (large replica
// counts).
func mkNameTab(pre, suf string) [16]string {
	var t [16]string
	for i := range t {
		t[i] = pre + strconv.Itoa(i+1) + suf
	}
	return t
}

func tabName(tab *[16]string, pre string, i int, suf string) string {
	if i >= 1 && i <= len(tab) {
		return tab[i-1]
	}
	return pre + strconv.Itoa(i) + suf
}

var (
	reNameTab      = mkNameTab("RE", "")
	ceNameTab      = mkNameTab("CE", "")
	pstatNameTab   = mkNameTab("pstat", "")
	vgenNameTab    = mkNameTab("vgen", "")
	readoutNameTab = mkNameTab("readout", "")
	adcNameTab     = mkNameTab("adc", "")
	netReTab       = mkNameTab("net_re", "")
	netCeTab       = mkNameTab("net_ce", "")
	netSetTab      = mkNameTab("net_set", "")
	netWeTab       = mkNameTab("net_we", "")
	netOutTab      = mkNameTab("net_out", "")
	netDataTab     = mkNameTab("net_data", "")
	netCtrlVgenTab = mkNameTab("net_ctrl_vgen", "")
	pstatRePinTab  = mkNameTab("pstat", ".re")
	pstatCePinTab  = mkNameTab("pstat", ".ce")
	pstatSetPinTab = mkNameTab("pstat", ".set")
	rePinTab       = mkNameTab("RE", ".pin")
	cePinTab       = mkNameTab("CE", ".pin")
	vgenOutTab     = mkNameTab("vgen", ".out")
	vgenProgTab    = mkNameTab("vgen", ".prog")
	muxInTab       = mkNameTab("mux1.in", "")
	readoutInTab   = mkNameTab("readout", ".in")
	readoutOutTab  = mkNameTab("readout", ".out")
	adcInTab       = mkNameTab("adc", ".in")
	adcOutTab      = mkNameTab("adc", ".out")
	wePinTab       = mkNameTab("WE", ".pin")
)

// wePin returns "<name>.pin" for the i-th working electrode, interned
// when the electrode carries the standard planner name.
func wePin(i int, name string) string {
	if i >= 1 && i <= len(wePinTab) && name == weName(i) {
		return wePinTab[i-1]
	}
	return name + ".pin"
}

// Platform is a synthesized design: the physical bio-interface plus the
// electronics plan, ready to instantiate into a simulatable cell.
type Platform struct {
	// Candidate is the design point this platform realizes.
	Candidate *Candidate
	// Electrodes holds every physical electrode (WEs, then per-chamber
	// RE/CE pairs).
	Electrodes []*electrode.Electrode
	// Design is the structural netlist (Fig. 2/Fig. 4 style).
	Design *netlist.Design
	// Plan is the panel acquisition schedule.
	Plan *schedule.Plan
}

// Synthesize turns a feasible candidate into a platform.
func Synthesize(cand *Candidate) (*Platform, error) {
	if !cand.Feasible {
		return nil, fmt.Errorf("core: cannot synthesize an infeasible candidate (%d violations)", len(cand.Violations))
	}
	p := &Platform{Candidate: cand}

	// --- Physical electrodes -------------------------------------------
	for _, ep := range cand.Electrodes {
		var we *electrode.Electrode
		if ep.Blank {
			we = electrode.NewBlankWorking(ep.Name)
		} else if len(ep.Assays) == 1 {
			we = electrode.NewWorking(ep.Name, ep.Nano, ep.Assays[0])
		} else {
			// Grouped CYP electrode: the electrode carries the isoform;
			// every binding of that isoform responds. Use the first
			// assay as representative — the measurement engine sweeps
			// all bindings with substrate present.
			we = electrode.NewWorking(ep.Name, ep.Nano, ep.Assays[0])
		}
		p.Electrodes = append(p.Electrodes, we)
	}
	for i := range cand.Chambers {
		p.Electrodes = append(p.Electrodes,
			electrode.NewReference(tabName(&reNameTab, "RE", i+1, "")),
			electrode.NewCounter(tabName(&ceNameTab, "CE", i+1, "")))
	}

	// --- Netlist ---------------------------------------------------------
	d, err := buildNetlist(cand)
	if err != nil {
		return nil, err
	}
	p.Design = d

	// --- Schedule ---------------------------------------------------------
	var slots []schedule.Slot
	for _, ep := range cand.Electrodes {
		slots = append(slots, schedule.Slot{WE: ep.Name, Technique: ep.Technique, Duration: ep.ProtocolTime})
	}
	settle := 0.01
	if cand.Choice.Sharing == SharedMux {
		settle = 0.05
	}
	plan, err := schedule.Build(settle, recoveryTime, slots...)
	if err != nil {
		return nil, err
	}
	p.Plan = plan
	return p, nil
}

// buildNetlist emits the structural design: per chamber a potentiostat
// with its RE/CE, the WEs routed (via mux or directly) to their readout
// class instances, readouts to the ADC(s), everything sequenced by the
// controller.
func buildNetlist(cand *Candidate) (*netlist.Design, error) {
	d := netlist.New(fmt.Sprintf("platform-%s-%s", cand.Choice.Chambers, cand.Choice.Sharing))
	add := func(name string, k netlist.BlockKind, label string) error {
		return d.AddBlock(name, k, label)
	}
	if err := add("ctrl", netlist.Controller, "sequencer"); err != nil {
		return nil, err
	}

	anyCV := false
	for _, ep := range cand.Electrodes {
		if ep.Technique == enzyme.CyclicVoltammetry {
			anyCV = true
		}
	}
	vg := SelectVGen(anyCV)

	// Chamber-side blocks.
	for i, ch := range cand.Chambers {
		n := i + 1
		if err := add(tabName(&pstatNameTab, "pstat", n, ""), netlist.Potentiostat, ch); err != nil {
			return nil, err
		}
		if err := add(tabName(&reNameTab, "RE", n, ""), netlist.ReferenceElectrode, ch); err != nil {
			return nil, err
		}
		if err := add(tabName(&ceNameTab, "CE", n, ""), netlist.CounterElectrode, ch); err != nil {
			return nil, err
		}
		if cand.Choice.Sharing == DedicatedChains || i == 0 {
			if cand.Choice.Sharing == DedicatedChains {
				if err := add(tabName(&vgenNameTab, "vgen", n, ""), netlist.VoltageGenerator, vg.Name); err != nil {
					return nil, err
				}
			}
		}
		if err := d.Connect(tabName(&netReTab, "net_re", n, ""), tabName(&pstatRePinTab, "pstat", n, ".re"), tabName(&rePinTab, "RE", n, ".pin")); err != nil {
			return nil, err
		}
		if err := d.Connect(tabName(&netCeTab, "net_ce", n, ""), tabName(&pstatCePinTab, "pstat", n, ".ce"), tabName(&cePinTab, "CE", n, ".pin")); err != nil {
			return nil, err
		}
	}
	if cand.Choice.Sharing == SharedMux {
		if err := add("vgen1", netlist.VoltageGenerator, vg.Name); err != nil {
			return nil, err
		}
	}
	// Wire generators to potentiostats.
	for i := range cand.Chambers {
		n := i + 1
		src := "vgen1.out"
		if cand.Choice.Sharing == DedicatedChains {
			src = tabName(&vgenOutTab, "vgen", n, ".out")
		}
		if err := d.Connect(tabName(&netSetTab, "net_set", n, ""), src, tabName(&pstatSetPinTab, "pstat", n, ".set")); err != nil {
			return nil, err
		}
	}

	// Working electrodes.
	chamberIdx := map[string]int{}
	for i, ch := range cand.Chambers {
		chamberIdx[ch] = i + 1
	}
	for _, ep := range cand.Electrodes {
		label := "blank"
		if !ep.Blank {
			label = ep.Assays[0].Probe
			if len(ep.Assays) > 1 {
				label += " (multi-target)"
			}
		}
		if err := add(ep.Name, netlist.WorkingElectrode, label); err != nil {
			return nil, err
		}
	}

	switch cand.Choice.Sharing {
	case SharedMux:
		if err := add("mux1", netlist.Multiplexer, fmt.Sprintf("%d ch", len(cand.Electrodes))); err != nil {
			return nil, err
		}
		classes := map[string]ReadoutClass{}
		for _, ep := range cand.Electrodes {
			if ep.Readout.Name != "" {
				classes[ep.Readout.Name] = ep.Readout
			}
		}
		ri := 0
		readoutOf := map[string]string{}
		for name := range classes {
			ri++
			inst := tabName(&readoutNameTab, "readout", ri, "")
			if err := add(inst, netlist.Readout, name); err != nil {
				return nil, err
			}
			readoutOf[name] = inst
		}
		if err := add("adc1", netlist.ADC, "12-bit"); err != nil {
			return nil, err
		}
		for i, ep := range cand.Electrodes {
			if err := d.Connect(tabName(&netWeTab, "net_we", i+1, ""), wePin(i+1, ep.Name), tabName(&muxInTab, "mux1.in", i+1, "")); err != nil {
				return nil, err
			}
		}
		for name, inst := range readoutOf {
			if err := d.Connect("net_mux_"+name, "mux1.out", inst+".in"); err != nil {
				return nil, err
			}
			if err := d.Connect("net_adc_"+name, inst+".out", "adc1.in"); err != nil {
				return nil, err
			}
		}
		if err := d.Connect("net_ctrl_mux", "ctrl.sel", "mux1.sel"); err != nil {
			return nil, err
		}
		if err := d.Connect("net_ctrl_adc", "ctrl.data", "adc1.out"); err != nil {
			return nil, err
		}
		if err := d.Connect("net_ctrl_vgen", "ctrl.wave", "vgen1.prog"); err != nil {
			return nil, err
		}
	case DedicatedChains:
		for i, ep := range cand.Electrodes {
			n := i + 1
			if err := add(tabName(&readoutNameTab, "readout", n, ""), netlist.Readout, ep.Readout.Name); err != nil {
				return nil, err
			}
			if err := add(tabName(&adcNameTab, "adc", n, ""), netlist.ADC, "12-bit"); err != nil {
				return nil, err
			}
			if err := d.Connect(tabName(&netWeTab, "net_we", n, ""), wePin(n, ep.Name), tabName(&readoutInTab, "readout", n, ".in")); err != nil {
				return nil, err
			}
			if err := d.Connect(tabName(&netOutTab, "net_out", n, ""), tabName(&readoutOutTab, "readout", n, ".out"), tabName(&adcInTab, "adc", n, ".in")); err != nil {
				return nil, err
			}
			if err := d.Connect(tabName(&netDataTab, "net_data", n, ""), tabName(&adcOutTab, "adc", n, ".out"), "ctrl.data"); err != nil {
				return nil, err
			}
		}
		for i := range cand.Chambers {
			n := i + 1
			if err := d.Connect(tabName(&netCtrlVgenTab, "net_ctrl_vgen", n, ""), "ctrl.wave", tabName(&vgenProgTab, "vgen", n, ".prog")); err != nil {
				return nil, err
			}
		}
	}
	if err := d.Check(); err != nil {
		return nil, fmt.Errorf("core: synthesized netlist fails checks: %w", err)
	}
	return d, nil
}

// Instantiate builds a simulatable cell from the platform. solutions
// maps chamber name → solution; missing chambers get an empty solution.
func (p *Platform) Instantiate(solutions map[string]*cell.Solution) (*cell.Cell, error) {
	cand := p.Candidate
	byName := map[string]*electrode.Electrode{}
	for _, e := range p.Electrodes {
		byName[e.Name] = e
	}
	c := &cell.Cell{Crosstalk: cell.DefaultCrosstalk}
	for i, chName := range cand.Chambers {
		sol := solutions[chName]
		if sol == nil {
			sol = cell.NewSolution()
		}
		ch := &cell.Chamber{Name: chName, Solution: sol}
		ch.Electrodes = make([]*electrode.Electrode, 0, len(cand.Electrodes)+2)
		for j, ep := range cand.Electrodes {
			if cand.ChamberFor(j) == chName {
				ch.Electrodes = append(ch.Electrodes, byName[ep.Name])
			}
		}
		ch.Electrodes = append(ch.Electrodes,
			byName[tabName(&reNameTab, "RE", i+1, "")], byName[tabName(&ceNameTab, "CE", i+1, "")])
		c.Chambers = append(c.Chambers, ch)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// ChainFor instantiates the acquisition chain serving the named working
// electrode (with the mux in the path under shared readout). A nil rng
// gets a default seed.
func (p *Platform) ChainFor(weName string, rng *mathx.RNG) (*analog.Chain, error) {
	if rng == nil {
		rng = mathx.NewRNG(1)
	}
	for _, ep := range p.Candidate.Electrodes {
		if ep.Name != weName {
			continue
		}
		if ep.Readout.Name == "" {
			return nil, fmt.Errorf("core: electrode %s has no readout assigned", weName)
		}
		var mux *analog.Mux
		if p.Candidate.Choice.Sharing == SharedMux {
			mux = analog.DefaultMux(len(p.Candidate.Electrodes))
		}
		return ep.Readout.NewChain(mux, rng), nil
	}
	return nil, fmt.Errorf("core: unknown working electrode %q", weName)
}

// ProtocolPotential returns the applied potential used on a CA
// electrode (the probe's Table I value).
func (p *Platform) ProtocolPotential(weName string) (phys.Voltage, error) {
	for _, ep := range p.Candidate.Electrodes {
		if ep.Name == weName {
			if ep.Blank {
				return phys.MilliVolts(650), nil // H₂O₂ oxidation potential
			}
			if ep.Technique != enzyme.Chronoamperometry {
				return 0, fmt.Errorf("core: %s is a CV electrode", weName)
			}
			return ep.Assays[0].Oxidase.Applied, nil
		}
	}
	return 0, fmt.Errorf("core: unknown working electrode %q", weName)
}
