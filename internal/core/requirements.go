package core

import (
	"fmt"

	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
	"advdiag/internal/species"
)

// TargetSpec is one molecule the platform must sense, with optional
// overrides of the measurement envelope.
type TargetSpec struct {
	// Species is the target name ("glucose", "benzphetamine", ...).
	Species string
	// MaxConcentration is the largest concentration the platform must
	// handle; zero defaults to the probe's published linear-range top.
	MaxConcentration phys.Concentration
	// RequiredLOD is the detection limit the application needs; zero
	// defaults to the probe's published LOD.
	RequiredLOD phys.Concentration
}

// Requirements is the input of the design-space exploration.
type Requirements struct {
	// Targets lists the panel.
	Targets []TargetSpec
	// Interferents are additional species present in the sample matrix
	// (e.g. dopamine) that constrain the design (§II-C: direct
	// oxidizers defeat the CDS blank).
	Interferents []string
	// SamplePeriod is the required time between successive panel
	// samples in seconds; zero means unconstrained.
	SamplePeriod float64
	// PeakSeparationMin is the smallest CV peak spacing that still
	// allows two targets on one electrode; zero defaults to 100 mV.
	PeakSeparationMin phys.Voltage
	// CrosstalkBudget is the acceptable ratio of co-chamber parasitic
	// current to the smallest meaningful signal; zero defaults to 0.5.
	CrosstalkBudget float64
	// WithBlankCDS requests an extra enzyme-free working electrode for
	// correlated double sampling.
	WithBlankCDS bool
	// Replicas replicates the full sensor set k times — the paper's
	// §II one-dimensional array of k sensors. Replicate readings
	// average down uncorrelated blank noise by √k at the cost of k×
	// the electrode area and panel time. 0 or 1 means a single set.
	Replicas int
}

// WithDefaults fills unset tuning knobs.
func (r Requirements) WithDefaults() Requirements {
	if r.PeakSeparationMin == 0 {
		r.PeakSeparationMin = phys.MilliVolts(100)
	}
	if r.CrosstalkBudget == 0 {
		r.CrosstalkBudget = 0.5
	}
	return r
}

// Validate checks the requirements against the registries.
func (r Requirements) Validate() error {
	if len(r.Targets) == 0 {
		return fmt.Errorf("core: no targets")
	}
	seen := map[string]bool{}
	for _, t := range r.Targets {
		if seen[t.Species] {
			return fmt.Errorf("core: duplicate target %q", t.Species)
		}
		seen[t.Species] = true
		if _, err := species.Lookup(t.Species); err != nil {
			return err
		}
		if len(enzyme.AssaysFor(t.Species)) == 0 {
			return fmt.Errorf("core: no registered probe senses %q", t.Species)
		}
		if t.MaxConcentration < 0 || t.RequiredLOD < 0 {
			return fmt.Errorf("core: negative envelope for %q", t.Species)
		}
	}
	for _, name := range r.Interferents {
		if _, err := species.Lookup(name); err != nil {
			return err
		}
	}
	if r.SamplePeriod < 0 {
		return fmt.Errorf("core: negative sample period")
	}
	if r.Replicas < 0 || r.Replicas > MuxChannels*4 {
		return fmt.Errorf("core: replicas %d outside [0, %d]", r.Replicas, MuxChannels*4)
	}
	return nil
}

// envelope resolves the measurement envelope of a target under a chosen
// assay: the maximum concentration and LOD the design must support.
func (t TargetSpec) envelope(a enzyme.Assay) (maxC, lod phys.Concentration) {
	perf := a.Perf()
	maxC = t.MaxConcentration
	if maxC == 0 {
		maxC = perf.LinearHi
	}
	lod = t.RequiredLOD
	if lod == 0 {
		lod = perf.LOD
	}
	if lod == 0 {
		// Probe publishes no LOD (cholesterol/CYP11A1): fall back to the
		// linear-range floor.
		lod = perf.LinearLo
	}
	return maxC, lod
}
