package core

import (
	"errors"
	"runtime"
	"sort"
	"testing"

	"advdiag/internal/enzyme"
)

// serialExplore is the reference implementation: the seed repo's plain
// nested-loop enumeration, kept here so the concurrent engine can be
// checked against it bit for bit.
func serialExplore(req Requirements) ([]*Candidate, []error) {
	req = req.WithDefaults()
	var out []*Candidate
	var errs []error
	for _, choice := range enumerateChoices(req, 0) {
		cand, err := Evaluate(req, choice)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, cand)
	}
	out = dedupeCandidates(out)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Budget.Cost != b.Budget.Cost {
			return a.Budget.Cost < b.Budget.Cost
		}
		if a.Budget.AreaMM2 != b.Budget.AreaMM2 {
			return a.Budget.AreaMM2 < b.Budget.AreaMM2
		}
		return a.PanelTime < b.PanelTime
	})
	return out, errs
}

// candidateFingerprint projects every externally observable field of a
// candidate for equality checks across explorer variants.
func candidateFingerprint(c *Candidate) string {
	s := c.Summary()
	for _, v := range c.Violations {
		s += "|" + v.String()
	}
	for _, e := range c.Electrodes {
		s += "|" + e.Name + "/" + e.Readout.Name
	}
	return s
}

func TestExploreCollectsChoiceErrors(t *testing.T) {
	req := Requirements{Targets: []TargetSpec{
		{Species: "glucose"}, {Species: "lactate"},
	}}.WithDefaults()
	choices := enumerateChoices(req, 0)
	// Poison the enumeration with a choice that cannot be planned: it
	// assigns no assay to lactate.
	poisoned := Choice{
		Assays:   map[string]enzyme.Assay{"glucose": enzyme.AssaysFor("glucose")[0]},
		Chambers: SharedChamber,
		Sharing:  SharedMux,
	}
	choices = append(choices, poisoned)

	cands, err := runExplore(req, choices, ExploreOptions{Workers: 4})
	if err == nil {
		t.Fatal("poisoned choice must surface an error")
	}
	var ce *ChoiceError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v does not wrap a *ChoiceError", err)
	}
	if ce.Choice.Assays["glucose"].Probe != "glucose oxidase" || len(ce.Choice.Assays) != 1 {
		t.Fatalf("ChoiceError carries the wrong choice: %+v", ce.Choice)
	}
	// All healthy candidates must survive the failure.
	want, _ := serialExplore(Requirements{Targets: req.Targets})
	if len(cands) != len(want) {
		t.Fatalf("%d candidates survived, want %d", len(cands), len(want))
	}
}

func TestEvaluateRejectsMissingAssay(t *testing.T) {
	req := Requirements{Targets: []TargetSpec{{Species: "glucose"}}}
	_, err := Evaluate(req, Choice{Assays: map[string]enzyme.Assay{}})
	if err == nil {
		t.Fatal("evaluating a choice with no assay must fail, not panic")
	}
}

func TestExploreBudget(t *testing.T) {
	req := fig4Targets()
	all := enumerateChoices(req.WithDefaults(), 0)
	if len(all) < 4 {
		t.Fatalf("space too small for the test: %d choices", len(all))
	}
	budget := 4
	got, err := ExploreWith(req, ExploreOptions{Budget: budget, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) > budget {
		t.Fatalf("budget %d produced %d candidates", budget, len(got))
	}
	// A budgeted run must equal the serial evaluation of the first
	// `budget` enumerated choices.
	want, err := runExplore(req.WithDefaults(), all[:budget], ExploreOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("budgeted run: %d candidates, want %d", len(got), len(want))
	}
	for i := range want {
		if candidateFingerprint(want[i]) != candidateFingerprint(got[i]) {
			t.Fatalf("budgeted candidate %d diverges", i)
		}
	}
}

func TestExploreTopK(t *testing.T) {
	req := fig4Targets()
	full, err := Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 3 {
		t.Fatalf("space too small: %d", len(full))
	}
	top, err := ExploreWith(req, ExploreOptions{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("TopK=3 returned %d", len(top))
	}
	for i := range top {
		if candidateFingerprint(top[i]) != candidateFingerprint(full[i]) {
			t.Fatalf("TopK candidate %d is not the full ranking's head", i)
		}
	}
}

func TestBestWithMatchesBest(t *testing.T) {
	req := fig4Targets()
	a, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BestWith(req, ExploreOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if candidateFingerprint(a) != candidateFingerprint(b) {
		t.Fatalf("BestWith diverges from Best:\n%s\n%s", a.Summary(), b.Summary())
	}
}

func TestParetoFrontEdgeCases(t *testing.T) {
	// Empty input.
	if front := ParetoFront(nil); len(front) != 0 {
		t.Fatalf("empty input gave %d front members", len(front))
	}
	// All infeasible: nothing qualifies.
	inf := []*Candidate{
		{Feasible: false, Budget: Budget{AreaMM2: 1, PowerUW: 1, Cost: 1}},
		{Feasible: false, Budget: Budget{AreaMM2: 2, PowerUW: 2, Cost: 2}},
	}
	if front := ParetoFront(inf); len(front) != 0 {
		t.Fatalf("all-infeasible input gave %d front members", len(front))
	}
	// Ties on every axis: no candidate dominates another, all stay.
	tie := func() *Candidate {
		return &Candidate{Feasible: true, Budget: Budget{AreaMM2: 5, PowerUW: 7, Cost: 3}, PanelTime: 11}
	}
	ties := []*Candidate{tie(), tie(), tie()}
	if front := ParetoFront(ties); len(front) != 3 {
		t.Fatalf("all-tied input kept %d of 3", len(front))
	}
	for _, a := range ties {
		for _, b := range ties {
			if a != b && dominates(a, b) {
				t.Fatal("a tie on every axis must not dominate")
			}
		}
	}
	// Strict domination still removes the loser.
	better := &Candidate{Feasible: true, Budget: Budget{AreaMM2: 1, PowerUW: 1, Cost: 1}, PanelTime: 1}
	worse := &Candidate{Feasible: true, Budget: Budget{AreaMM2: 2, PowerUW: 2, Cost: 2}, PanelTime: 2}
	front := ParetoFront([]*Candidate{worse, better})
	if len(front) != 1 || front[0] != better {
		t.Fatalf("domination filter broken: %d members", len(front))
	}
	// Infeasible candidates cannot dominate feasible ones off the front.
	infBetter := &Candidate{Feasible: false, Budget: Budget{AreaMM2: 0.1, PowerUW: 0.1, Cost: 0.1}, PanelTime: 0.1}
	front = ParetoFront([]*Candidate{worse, infBetter})
	if len(front) != 1 || front[0] != worse {
		t.Fatal("infeasible candidates must not dominate the front")
	}
}

// benchRequirements is a deliberately heavy requirement set: six
// targets (≥4), replicated sensors, so each Evaluate prices dozens of
// electrodes and the per-choice work dominates scheduling overhead.
func benchRequirements() Requirements {
	req := fig4Targets()
	req.Replicas = 8
	req.WithBlankCDS = true
	return req
}

func BenchmarkExploreSerial(b *testing.B) {
	req := benchRequirements()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExploreWith(req, ExploreOptions{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreParallel(b *testing.B) {
	req := benchRequirements()
	workers := runtime.NumCPU()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExploreWith(req, ExploreOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}
