package core

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

// TestExploreParallelSerialEquivalence pins the concurrent explorer's
// headline guarantee: for the same Requirements, the candidate ranking
// is identical to the plain serial enumeration (serialExplore in
// explore_test.go) at any worker count.
func TestExploreParallelSerialEquivalence(t *testing.T) {
	reqs := map[string]Requirements{
		"fig4":      fig4Targets(),
		"replicas":  {Targets: fig4Targets().Targets, Replicas: 3},
		"throttled": {Targets: fig4Targets().Targets, SamplePeriod: 120},
		"single":    {Targets: []TargetSpec{{Species: "cholesterol"}}},
	}
	for name, req := range reqs {
		want, refErrs := serialExplore(req)
		if len(refErrs) != 0 {
			t.Fatalf("%s: reference explorer errored: %v", name, refErrs)
		}
		for _, workers := range []int{1, 4, runtime.NumCPU()} {
			got, err := ExploreWith(req, ExploreOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d candidates, serial reference has %d",
					name, workers, len(got), len(want))
			}
			for i := range want {
				w, g := candidateFingerprint(want[i]), candidateFingerprint(got[i])
				if w != g {
					t.Fatalf("%s workers=%d: candidate %d diverges:\nserial:   %s\nparallel: %s",
						name, workers, i, w, g)
				}
			}
		}
	}
}

// fig4Targets is the paper's §III multi-panel: glucose, lactate,
// glutamate (oxidases), benzphetamine + aminopyrine (CYP2B4), and
// cholesterol.
func fig4Targets() Requirements {
	return Requirements{Targets: []TargetSpec{
		{Species: "glucose"}, {Species: "lactate"}, {Species: "glutamate"},
		{Species: "benzphetamine"}, {Species: "aminopyrine"}, {Species: "cholesterol"},
	}}
}

func TestBestRecoversFig4Demonstrator(t *testing.T) {
	best, err := Best(fig4Targets())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's own design: five working electrodes in one shared
	// chamber with a multiplexed readout, benzphetamine and aminopyrine
	// grouped on the CYP2B4 electrode.
	if len(best.Electrodes) != 5 {
		t.Fatalf("best has %d WEs, want 5 (Fig. 4)", len(best.Electrodes))
	}
	if best.Choice.Chambers != SharedChamber {
		t.Fatalf("best chambers %v, want shared", best.Choice.Chambers)
	}
	if best.Choice.Sharing != SharedMux {
		t.Fatalf("best sharing %v, want mux", best.Choice.Sharing)
	}
	var grouped *ElectrodePlan
	for i := range best.Electrodes {
		if len(best.Electrodes[i].Assays) == 2 {
			grouped = &best.Electrodes[i]
		}
	}
	if grouped == nil {
		t.Fatal("no dual-target electrode in the best design")
	}
	if grouped.Assays[0].Probe != "CYP2B4" {
		t.Fatalf("dual-target probe %s, want CYP2B4", grouped.Assays[0].Probe)
	}
}

func TestExploreEnumeratesBothCholesterolRoutes(t *testing.T) {
	cands, err := Explore(Requirements{Targets: []TargetSpec{{Species: "cholesterol"}}})
	if err != nil {
		t.Fatal(err)
	}
	probes := map[string]bool{}
	for _, c := range cands {
		for _, e := range c.Electrodes {
			for _, a := range e.Assays {
				probes[a.Probe] = true
			}
		}
	}
	if !probes["cholesterol oxidase"] || !probes["CYP11A1"] {
		t.Fatalf("expected both cholesterol probes in the space, got %v", probes)
	}
}

func TestPeakSeparationRule(t *testing.T) {
	// CYP2B6 senses bupropion and lidocaine at the same potential
	// (−450 mV): grouping them on one electrode must be infeasible.
	req := Requirements{Targets: []TargetSpec{
		{Species: "bupropion"}, {Species: "lidocaine"},
	}}
	grouped, err := Evaluate(req, Choice{
		Assays: map[string]enzyme.Assay{
			"bupropion": assayOf(t, "bupropion", "CYP2B6"),
			"lidocaine": assayOf(t, "lidocaine", "CYP2B6"),
		},
		GroupSameIsoform: true,
		Chambers:         SharedChamber,
		Sharing:          SharedMux,
	})
	if err != nil {
		t.Fatal(err)
	}
	if grouped.Feasible {
		t.Fatal("coincident peaks grouped on one electrode must be infeasible")
	}
	found := false
	for _, v := range grouped.Violations {
		if v.Rule == "peak-separation" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing peak-separation violation: %v", grouped.Violations)
	}
	// The explorer must still find a feasible design (separate WEs).
	best, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range best.Electrodes {
		if len(e.Assays) > 1 {
			t.Fatal("best design must not group coincident peaks")
		}
	}
}

func assayOf(t *testing.T, target, probe string) enzyme.Assay {
	t.Helper()
	for _, a := range enzyme.AssaysFor(target) {
		if a.Probe == probe {
			return a
		}
	}
	t.Fatalf("no %s assay via %s", target, probe)
	return enzyme.Assay{}
}

func TestBenzphetamineAminopyrineGroupingFeasible(t *testing.T) {
	// 150 mV separation ≥ the 100 mV default: grouping is allowed.
	req := Requirements{Targets: []TargetSpec{
		{Species: "benzphetamine"}, {Species: "aminopyrine"},
	}}
	cand, err := Evaluate(req, Choice{
		Assays: map[string]enzyme.Assay{
			"benzphetamine": assayOf(t, "benzphetamine", "CYP2B4"),
			"aminopyrine":   assayOf(t, "aminopyrine", "CYP2B4"),
		},
		GroupSameIsoform: true,
		Chambers:         SharedChamber,
		Sharing:          SharedMux,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cand.Feasible {
		t.Fatalf("CYP2B4 grouping must be feasible: %v", cand.Violations)
	}
	if len(cand.Electrodes) != 1 {
		t.Fatalf("grouped design has %d WEs, want 1", len(cand.Electrodes))
	}
	// A stricter separation requirement forbids it.
	req.PeakSeparationMin = phys.MilliVolts(200)
	strict, err := Evaluate(req, Choice{
		Assays: map[string]enzyme.Assay{
			"benzphetamine": assayOf(t, "benzphetamine", "CYP2B4"),
			"aminopyrine":   assayOf(t, "aminopyrine", "CYP2B4"),
		},
		GroupSameIsoform: true,
		Chambers:         SharedChamber,
		Sharing:          SharedMux,
	})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Feasible {
		t.Fatal("200 mV requirement must forbid the 150 mV pair")
	}
}

func TestSelectReadout(t *testing.T) {
	// Oxidase-class currents on a cm² electrode: the paper's ±10 µA /
	// 10 nA class.
	rc, err := SelectReadout(phys.MicroAmps(5), phys.NanoAmps(12))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Name != "readout-10uA" {
		t.Fatalf("selected %s, want readout-10uA", rc.Name)
	}
	// CYP-class currents on a large electrode: the ±100 µA class.
	rc2, err := SelectReadout(phys.MicroAmps(50), phys.NanoAmps(120))
	if err != nil {
		t.Fatal(err)
	}
	if rc2.Name != "readout-100uA" {
		t.Fatalf("selected %s, want readout-100uA", rc2.Name)
	}
	// Sub-nA currents on the 0.23 mm² platform: the electrometer class.
	rc3, err := SelectReadout(phys.NanoAmps(2), phys.Current(45e-12))
	if err != nil {
		t.Fatal(err)
	}
	if rc3.Name != "readout-100nA" {
		t.Fatalf("selected %s, want readout-100nA", rc3.Name)
	}
	// Impossible resolution.
	if _, err := SelectReadout(phys.MicroAmps(50), phys.Current(1e-12)); err == nil {
		t.Fatal("1 pA resolution must be unsatisfiable")
	}
}

func TestPaperReadoutClassesAtCitedAreas(t *testing.T) {
	// E8 logic: at the cited literature electrode areas (~0.25 cm²) the
	// explorer recovers the paper's two readout classes.
	area := phys.SquareCentimetres(0.25)
	ox, _ := enzyme.OxidaseByName("glucose oxidase")
	sI := float64(ox.SensitivityAt(ox.Applied, enzyme.CNTGain)) * float64(area)
	maxI := phys.Current(sI * 4)           // 4 mM top
	resReq := phys.Current(sI * 0.575 / 3) // LOD current / 3σ
	rc, err := SelectReadout(maxI, resReq)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Name != "readout-10uA" && rc.Name != "readout-100uA" {
		t.Fatalf("cited-area oxidase readout %s; paper names ±10 µA", rc.Name)
	}
}

func TestCrosstalkRuleTriggersOnTightBudget(t *testing.T) {
	req := fig4Targets()
	req.CrosstalkBudget = 1e-6 // absurdly tight
	cands, err := Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	// Shared-chamber candidates with multiple oxidases must now fail on
	// cross-talk, but per-electrode chambers still work.
	var sharedFeasible, isolatedFeasible bool
	for _, c := range cands {
		if !c.Feasible {
			continue
		}
		switch c.Choice.Chambers {
		case SharedChamber:
			sharedFeasible = true
		case ChamberPerElectrode:
			isolatedFeasible = true
		}
	}
	if sharedFeasible {
		t.Fatal("tight cross-talk budget must kill shared-chamber designs")
	}
	if !isolatedFeasible {
		t.Fatal("isolated chambers must survive any cross-talk budget")
	}
}

func TestThroughputRule(t *testing.T) {
	req := fig4Targets()
	req.SamplePeriod = 120 // two minutes per panel
	cands, err := Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Feasible && c.CycleTime > 120 {
			t.Fatalf("feasible candidate with cycle %g s violates the 120 s budget", c.CycleTime)
		}
	}
	best, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	// Only the parallel per-electrode arrays meet a 2-minute panel.
	if !best.Parallel {
		t.Fatalf("a 120 s sample period needs parallel acquisition, got %s", best.Summary())
	}
}

func TestInterferentWarnings(t *testing.T) {
	req := fig4Targets()
	req.Interferents = []string{"dopamine"}
	req.WithBlankCDS = true
	best, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	var direct, cds bool
	for _, v := range best.Violations {
		if !v.Warning {
			t.Fatalf("hard violation on a feasible design: %v", v)
		}
		if v.Rule == "direct-oxidizer" {
			direct = true
		}
		if v.Rule == "cds-blank" {
			cds = true
		}
	}
	if !direct || !cds {
		t.Fatalf("missing interferent warnings: %v", best.Violations)
	}
	// The CDS blank adds a sixth working electrode.
	if len(best.Electrodes) != 6 {
		t.Fatalf("CDS design has %d WEs, want 6", len(best.Electrodes))
	}
}

func TestParetoFront(t *testing.T) {
	cands, err := Explore(fig4Targets())
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(cands)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// No front member may dominate another.
	for _, a := range front {
		for _, b := range front {
			if a != b && dominates(a, b) {
				t.Fatalf("front member dominates another:\n%s\n%s", a.Summary(), b.Summary())
			}
		}
	}
	// The front must include both a cheap sequential and a fast parallel
	// design (the latency/cost trade-off of §II-A).
	var seqFound, parFound bool
	for _, c := range front {
		if c.Parallel {
			parFound = true
		} else {
			seqFound = true
		}
	}
	if !seqFound || !parFound {
		t.Fatal("front must span sequential and parallel designs")
	}
}

func TestBudgetMonotonicity(t *testing.T) {
	// More chambers must cost more (packaging + RE/CE + potentiostats).
	req := fig4Targets()
	choiceAt := func(p ChamberPolicy) *Candidate {
		asn := map[string]enzyme.Assay{}
		for _, tgt := range req.Targets {
			asn[tgt.Species] = enzyme.AssaysFor(tgt.Species)[0]
		}
		c, err := Evaluate(req, Choice{Assays: asn, GroupSameIsoform: true, Chambers: p, Sharing: SharedMux})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	shared := choiceAt(SharedChamber)
	perWE := choiceAt(ChamberPerElectrode)
	if perWE.Budget.AreaMM2 <= shared.Budget.AreaMM2 {
		t.Fatal("per-electrode chambers must cost more area")
	}
	if perWE.Budget.Cost <= shared.Budget.Cost {
		t.Fatal("per-electrode chambers must cost more")
	}
}

func TestMuxSharingCheaperThanDedicated(t *testing.T) {
	req := fig4Targets()
	asn := map[string]enzyme.Assay{}
	for _, tgt := range req.Targets {
		asn[tgt.Species] = enzyme.AssaysFor(tgt.Species)[0]
	}
	mux, err := Evaluate(req, Choice{Assays: asn, GroupSameIsoform: true, Chambers: SharedChamber, Sharing: SharedMux})
	if err != nil {
		t.Fatal(err)
	}
	ded, err := Evaluate(req, Choice{Assays: asn, GroupSameIsoform: true, Chambers: SharedChamber, Sharing: DedicatedChains})
	if err != nil {
		t.Fatal(err)
	}
	if mux.Budget.Cost >= ded.Budget.Cost {
		t.Fatalf("mux sharing (%v) must be cheaper than dedicated chains (%v) — De Venuto's point", mux.Budget, ded.Budget)
	}
	if mux.Budget.PowerUW >= ded.Budget.PowerUW {
		t.Fatal("mux sharing must use less power")
	}
}

func TestSynthesizePlatform(t *testing.T) {
	best, err := Best(fig4Targets())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Synthesize(best)
	if err != nil {
		t.Fatal(err)
	}
	// 5 WEs + RE + CE.
	if len(p.Electrodes) != 7 {
		t.Fatalf("%d physical electrodes, want 7", len(p.Electrodes))
	}
	if err := p.Design.Check(); err != nil {
		t.Fatalf("netlist check: %v", err)
	}
	if got := p.Plan.Throughput(); got <= 0 {
		t.Fatal("schedule must report positive throughput")
	}
	ascii := p.Design.ASCII()
	for _, frag := range []string{"mux", "potentiostat", "WE1", "readout"} {
		if !strings.Contains(ascii, frag) {
			t.Errorf("netlist ASCII missing %q", frag)
		}
	}
	// Chains instantiate for every WE.
	for _, ep := range best.Electrodes {
		chain, err := p.ChainFor(ep.Name, nil)
		if err != nil {
			t.Fatalf("ChainFor(%s): %v", ep.Name, err)
		}
		if err := chain.Validate(); err != nil {
			t.Fatalf("chain for %s invalid: %v", ep.Name, err)
		}
		if chain.Mux == nil {
			t.Fatalf("shared-mux design must put a mux into %s's chain", ep.Name)
		}
	}
	if _, err := p.ChainFor("nope", nil); err == nil {
		t.Fatal("unknown electrode must fail")
	}
}

func TestSynthesizeRejectsInfeasible(t *testing.T) {
	req := Requirements{Targets: []TargetSpec{
		{Species: "bupropion"}, {Species: "lidocaine"},
	}}
	cand, err := Evaluate(req, Choice{
		Assays: map[string]enzyme.Assay{
			"bupropion": assayOf(t, "bupropion", "CYP2B6"),
			"lidocaine": assayOf(t, "lidocaine", "CYP2B6"),
		},
		GroupSameIsoform: true,
		Chambers:         SharedChamber,
		Sharing:          SharedMux,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(cand); err == nil {
		t.Fatal("synthesizing an infeasible candidate must fail")
	}
}

func TestInstantiateCell(t *testing.T) {
	best, err := Best(fig4Targets())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Synthesize(best)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Instantiate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.WorkingElectrodes()); got != 5 {
		t.Fatalf("%d WEs in instantiated cell", got)
	}
}

func TestRequirementsValidate(t *testing.T) {
	if err := (Requirements{}).Validate(); err == nil {
		t.Error("empty targets must fail")
	}
	bad := Requirements{Targets: []TargetSpec{{Species: "unobtainium"}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown species must fail")
	}
	dup := Requirements{Targets: []TargetSpec{{Species: "glucose"}, {Species: "glucose"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate target must fail")
	}
	badInt := Requirements{Targets: []TargetSpec{{Species: "glucose"}}, Interferents: []string{"nope"}}
	if err := badInt.Validate(); err == nil {
		t.Error("unknown interferent must fail")
	}
	ok := Requirements{Targets: []TargetSpec{{Species: "glucose"}}}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBudgetArithmetic(t *testing.T) {
	a := Budget{1, 2, 3}
	b := Budget{10, 20, 30}
	sum := a.Add(b)
	if sum.AreaMM2 != 11 || sum.PowerUW != 22 || sum.Cost != 33 {
		t.Fatalf("sum %v", sum)
	}
	sc := a.Scale(2)
	if sc.AreaMM2 != 2 || sc.PowerUW != 4 || sc.Cost != 6 {
		t.Fatalf("scale %v", sc)
	}
}

func TestCandidateThroughput(t *testing.T) {
	c := &Candidate{CycleTime: 360}
	if math.Abs(c.Throughput()-10) > 1e-9 {
		t.Fatalf("throughput %g", c.Throughput())
	}
}

func TestDedupeRemovesEquivalentChamberPolicies(t *testing.T) {
	// With a single CA target, shared-chamber and per-technique and
	// per-electrode chambers coincide structurally; Explore must dedupe.
	cands, err := Explore(Requirements{Targets: []TargetSpec{{Species: "glucose"}}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, c := range cands {
		seen[c.structuralKey()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate structural key %q", k)
		}
	}
}

func TestReplicasArrays(t *testing.T) {
	req := Requirements{
		Targets:  []TargetSpec{{Species: "glucose"}, {Species: "lactate"}},
		Replicas: 3,
	}
	best, err := Best(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(best.Electrodes) != 6 {
		t.Fatalf("3× replica of 2 targets must give 6 WEs, got %d", len(best.Electrodes))
	}
	// Names must stay unique.
	seen := map[string]bool{}
	for _, e := range best.Electrodes {
		if seen[e.Name] {
			t.Fatalf("duplicate electrode name %s", e.Name)
		}
		seen[e.Name] = true
	}
	// Cost and panel time must exceed the single-set design.
	single, err := Best(Requirements{Targets: req.Targets})
	if err != nil {
		t.Fatal(err)
	}
	if best.Budget.AreaMM2 <= single.Budget.AreaMM2 {
		t.Fatal("replicas must cost area")
	}
	if best.PanelTime <= single.PanelTime {
		t.Fatal("sequential replicas must cost panel time")
	}
	// Synthesis must still produce a checkable netlist.
	p, err := Synthesize(best)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Design.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicasValidation(t *testing.T) {
	req := Requirements{Targets: []TargetSpec{{Species: "glucose"}}, Replicas: -1}
	if err := req.Validate(); err == nil {
		t.Fatal("negative replicas must fail")
	}
	req.Replicas = 1000
	if err := req.Validate(); err == nil {
		t.Fatal("absurd replica count must fail")
	}
}

func TestSynthesizeDedicatedChains(t *testing.T) {
	req := Requirements{Targets: []TargetSpec{{Species: "glucose"}, {Species: "benzphetamine"}}}
	asn := map[string]enzyme.Assay{
		"glucose":       enzyme.AssaysFor("glucose")[0],
		"benzphetamine": enzyme.AssaysFor("benzphetamine")[0],
	}
	cand, err := Evaluate(req, Choice{
		Assays: asn, Chambers: ChamberPerElectrode, Sharing: DedicatedChains,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cand.Feasible {
		t.Fatalf("dedicated/isolated design infeasible: %v", cand.Violations)
	}
	if !cand.Parallel {
		t.Fatal("isolated chambers + dedicated chains must run in parallel")
	}
	p, err := Synthesize(cand)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Design.Check(); err != nil {
		t.Fatal(err)
	}
	// Dedicated designs carry one readout and ADC per electrode.
	if n := len(p.Design.BlocksOf(netlistReadoutKind())); n != 2 {
		t.Fatalf("%d readouts, want 2", n)
	}
	// And no multiplexer.
	if n := len(p.Design.BlocksOf(netlistMuxKind())); n != 0 {
		t.Fatalf("%d muxes, want 0", n)
	}
	// Chains come back without a mux.
	chain, err := p.ChainFor(cand.Electrodes[0].Name, nil)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Mux != nil {
		t.Fatal("dedicated chain must not route through a mux")
	}
}
