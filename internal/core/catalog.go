// Package core implements the paper's contribution: platform-based
// design of integrated multi-target biosensors. The design space is
// restricted to a small catalog of parametrized components (this file);
// the explorer (explore.go) enumerates probe assignments, sensor
// structures and readout configurations for a set of target molecules,
// prunes infeasible candidates with the paper's §II rules, and scores
// the rest with an area/power/cost model.
package core

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

// Budget is the implementation cost of a component: silicon area,
// power, and a relative bill-of-materials cost unit.
type Budget struct {
	// AreaMM2 is silicon/substrate area in mm².
	AreaMM2 float64
	// PowerUW is the operating power in µW.
	PowerUW float64
	// Cost is a relative cost unit.
	Cost float64
}

// Add accumulates b2 into b.
func (b Budget) Add(b2 Budget) Budget {
	return Budget{b.AreaMM2 + b2.AreaMM2, b.PowerUW + b2.PowerUW, b.Cost + b2.Cost}
}

// Scale multiplies every component of the budget by k.
func (b Budget) Scale(k float64) Budget {
	return Budget{b.AreaMM2 * k, b.PowerUW * k, b.Cost * k}
}

// String renders the budget.
func (b Budget) String() string {
	return fmt.Sprintf("%.2f mm², %.0f µW, %.1f cost", b.AreaMM2, b.PowerUW, b.Cost)
}

// ReadoutClass is a catalog current-readout option (paper §II-C: the
// readout must cover the probe family's current range at the required
// resolution).
type ReadoutClass struct {
	// Name identifies the class.
	Name string
	// Range is the full-scale current (±Range).
	Range phys.Current
	// Resolution is the smallest resolvable current step.
	Resolution phys.Current
	// Feedback is the transimpedance.
	Feedback phys.Resistance
	// WhiteNoise and FlickerNoise are the per-sample input-referred
	// noise deviations in amperes.
	WhiteNoise, FlickerNoise float64
	// BandwidthHz is the stage bandwidth.
	BandwidthHz float64
	// Budget is the implementation cost.
	Budget Budget
}

// ReadoutClasses is the catalog, ordered by descending range. The
// 100 µA and 10 µA classes are the paper's two named requirements
// (§II-C); the nano and pico classes cover the small currents of the
// 0.23 mm² platform electrodes.
var ReadoutClasses = []ReadoutClass{
	{
		Name: "readout-100uA", Range: phys.MicroAmps(100), Resolution: phys.NanoAmps(100),
		Feedback: 10e3, WhiteNoise: 20e-9, FlickerNoise: 100e-9, BandwidthHz: 100,
		Budget: Budget{AreaMM2: 0.15, PowerUW: 150, Cost: 1.0},
	},
	{
		Name: "readout-10uA", Range: phys.MicroAmps(10), Resolution: phys.NanoAmps(10),
		Feedback: 100e3, WhiteNoise: 2e-9, FlickerNoise: 10e-9, BandwidthHz: 100,
		Budget: Budget{AreaMM2: 0.15, PowerUW: 120, Cost: 1.0},
	},
	{
		Name: "readout-1uA", Range: phys.MicroAmps(1), Resolution: phys.NanoAmps(1),
		Feedback: 1e6, WhiteNoise: 0.2e-9, FlickerNoise: 1e-9, BandwidthHz: 100,
		Budget: Budget{AreaMM2: 0.18, PowerUW: 100, Cost: 1.2},
	},
	{
		Name: "readout-100nA", Range: phys.NanoAmps(100), Resolution: phys.NanoAmps(0.1),
		Feedback: 10e6, WhiteNoise: 20e-12, FlickerNoise: 60e-12, BandwidthHz: 30,
		Budget: Budget{AreaMM2: 0.22, PowerUW: 80, Cost: 1.5},
	},
}

// rangeMargin is the headroom factor between the largest expected
// current and the chosen readout's full scale.
const rangeMargin = 1.5

// resolutionHeadroom relaxes the resolution rule on quantization-noise
// grounds: a step of q adds q/√12 RMS to the blank, so q ≤ 2.5·σ keeps
// the LOD degradation under ~25 % ( √(1+(2.5/√12)²) ≈ 1.24 ). resReq is
// the blank σ expressed as a current (S·LOD/3).
const resolutionHeadroom = 2.5

// SelectReadout returns the smallest-range catalog readout whose range
// covers maxI with margin and whose resolution keeps the LOD
// degradation within the headroom rule.
func SelectReadout(maxI, resReq phys.Current) (ReadoutClass, error) {
	if maxI < 0 {
		maxI = -maxI
	}
	var best *ReadoutClass
	for i := range ReadoutClasses {
		rc := &ReadoutClasses[i]
		if float64(rc.Range) >= rangeMargin*float64(maxI) &&
			float64(rc.Resolution) <= resolutionHeadroom*float64(resReq) {
			if best == nil || rc.Range < best.Range {
				best = rc
			}
		}
	}
	if best == nil {
		return ReadoutClass{}, fmt.Errorf("core: no catalog readout covers ±%v at %v resolution", maxI, resReq)
	}
	return *best, nil
}

// NewChain instantiates an acquisition chain of this class.
func (rc ReadoutClass) NewChain(mux *analog.Mux, rng *mathx.RNG) *analog.Chain {
	return &analog.Chain{
		Pstat:     analog.DefaultPotentiostat(),
		Mux:       mux,
		Readout:   &analog.TIA{Feedback: rc.Feedback, Saturation: 1.0, BandwidthHz: rc.BandwidthHz},
		Converter: analog.DefaultADC(),
		Noise:     analog.NewNoiseModel(rc.WhiteNoise, rc.FlickerNoise, rng),
	}
}

// VGenClass is a catalog voltage-generator option.
type VGenClass struct {
	// Name identifies the class.
	Name string
	// Sweep reports whether the generator can produce the CV triangle
	// (a sweep generator also covers fixed potentials).
	Sweep bool
	// Budget is the implementation cost.
	Budget Budget
}

// VGenClasses is the catalog: a trimmed DC reference and a DAC-based
// sweep generator.
var VGenClasses = []VGenClass{
	{Name: "vgen-dc", Sweep: false, Budget: Budget{AreaMM2: 0.02, PowerUW: 5, Cost: 0.2}},
	{Name: "vgen-sweep", Sweep: true, Budget: Budget{AreaMM2: 0.08, PowerUW: 30, Cost: 0.8}},
}

// SelectVGen returns the cheapest generator supporting the requested
// capability.
func SelectVGen(needSweep bool) VGenClass {
	if !needSweep {
		return VGenClasses[0]
	}
	return VGenClasses[1]
}

// Fixed catalog budgets for the remaining blocks.
var (
	// PotentiostatBudget is the control loop (one per chamber).
	PotentiostatBudget = Budget{AreaMM2: 0.10, PowerUW: 50, Cost: 1.0}
	// MuxBudget is an 8-channel analog multiplexer.
	MuxBudget = Budget{AreaMM2: 0.03, PowerUW: 2, Cost: 0.3}
	// ADCBudget is the 12-bit converter.
	ADCBudget = Budget{AreaMM2: 0.20, PowerUW: 100, Cost: 1.5}
	// ControllerBudget is the digital sequencer.
	ControllerBudget = Budget{AreaMM2: 0.50, PowerUW: 200, Cost: 2.0}
	// ElectrodeBudget is one 0.23 mm² electrode site (area counts the
	// pad and routing overhead on the bio-interface).
	ElectrodeBudget = Budget{AreaMM2: 0.35, PowerUW: 0, Cost: 0.1}
	// ChamberBudget is the packaging overhead of one fluidic chamber.
	ChamberBudget = Budget{AreaMM2: 2.0, PowerUW: 0, Cost: 0.5}
)

// MuxChannels is the catalog multiplexer width.
const MuxChannels = 8
