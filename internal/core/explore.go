package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"advdiag/internal/analog"
	"advdiag/internal/conc"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
	"advdiag/internal/species"
)

// ExploreOptions tunes the design-space exploration engine. The zero
// value explores the full space on one worker per available CPU.
type ExploreOptions struct {
	// Workers is the number of goroutines evaluating candidates;
	// values < 1 default to runtime.GOMAXPROCS(0). Regardless of the
	// worker count the candidate list is byte-identical to a serial
	// enumeration: results are collected in enumeration order before
	// deduplication and sorting.
	Workers int
	// Budget caps how many enumerated choices are evaluated, taken in
	// deterministic enumeration order; 0 means the whole space.
	Budget int
	// TopK truncates the sorted candidate list to its best K entries;
	// 0 keeps every candidate.
	TopK int
}

// withDefaults resolves the zero-value knobs.
func (o ExploreOptions) withDefaults() ExploreOptions {
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// ChoiceError records one design point whose evaluation failed. The
// exploration continues past it; callers get every failure alongside
// the surviving candidates.
type ChoiceError struct {
	// Choice is the offending design point.
	Choice Choice
	// Err is the underlying evaluation error.
	Err error
}

func (e *ChoiceError) Error() string {
	return fmt.Sprintf("core: evaluate %v/%v/group=%v: %v",
		e.Choice.Chambers, e.Choice.Sharing, e.Choice.GroupSameIsoform, e.Err)
}

func (e *ChoiceError) Unwrap() error { return e.Err }

// Explore enumerates the design space for the given requirements:
// every probe assignment × isoform grouping × chamber policy ×
// readout sharing, each evaluated against the feasibility rules and
// the cost model. Candidates are returned sorted: feasible first, then
// by cost, area, and panel time. Evaluation runs on a worker pool
// sized to the available CPUs; use ExploreWith to tune it.
func Explore(req Requirements) ([]*Candidate, error) {
	return ExploreWith(req, ExploreOptions{})
}

// ExploreWith is Explore with explicit engine options. When individual
// choices fail to evaluate, the surviving candidates are still
// returned, together with every failure joined into the error (each one
// a *ChoiceError). The returned ordering is independent of
// opts.Workers.
func ExploreWith(req Requirements, opts ExploreOptions) ([]*Candidate, error) {
	req = req.WithDefaults()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return runExplore(req, enumerateChoices(req, opts.Budget), opts)
}

// enumerateChoices lists the structural design space in deterministic
// order: probe assignment × isoform grouping × chamber policy ×
// readout sharing. budget > 0 stops the enumeration after that many
// choices — the result is the exact prefix of the unbounded
// enumeration, without materializing the rest of the space.
func enumerateChoices(req Requirements, budget int) []Choice {
	// Each assignment expands into 2 groupings × 3 chambers × 2
	// sharings, so only ⌈budget/12⌉ assignments can be reached.
	assignCap := 0
	if budget > 0 {
		assignCap = (budget + 11) / 12
	}
	assignments := enumerateAssays(req.Targets, assignCap)
	size := 12 * len(assignments)
	if budget > 0 && budget < size {
		size = budget
	}
	out := make([]Choice, 0, size)
	for _, asn := range assignments {
		for _, group := range []bool{true, false} {
			for _, chambers := range []ChamberPolicy{SharedChamber, ChamberPerTechnique, ChamberPerElectrode} {
				for _, sharing := range []ReadoutSharing{SharedMux, DedicatedChains} {
					if budget > 0 && len(out) == budget {
						return out
					}
					out = append(out, Choice{Assays: asn, GroupSameIsoform: group, Chambers: chambers, Sharing: sharing})
				}
			}
		}
	}
	return out
}

// Electrode and chamber names up to 32 come from fixed tables: the
// explorer stamps the same names onto every enumerated candidate, so
// building them with Sprintf per plan is the planning phase's single
// largest allocation source.
var weNameTab, chamberNameTab [32]string

func init() {
	for i := range weNameTab {
		weNameTab[i] = fmt.Sprintf("WE%d", i+1)
		chamberNameTab[i] = fmt.Sprintf("chamber%d", i+1)
	}
}

// weName returns "WE<i>" (1-based).
func weName(i int) string {
	if i >= 1 && i <= len(weNameTab) {
		return weNameTab[i-1]
	}
	return fmt.Sprintf("WE%d", i)
}

// chamberName returns "chamber<i>" (1-based).
func chamberName(i int) string {
	if i >= 1 && i <= len(chamberNameTab) {
		return chamberNameTab[i-1]
	}
	return fmt.Sprintf("chamber%d", i)
}

// memoEntry holds the one priced candidate for a structural key. The
// sync.Once guarantees duplicate structures are priced exactly once
// even when several workers reach the same key together.
type memoEntry struct {
	once sync.Once
	cand *Candidate
}

// runExplore evaluates the given choices on a bounded worker pool and
// assembles the deterministic candidate list. req must already carry
// its defaults; opts.Budget has already been applied by the
// enumeration, so only Workers and TopK are consumed here.
func runExplore(req Requirements, choices []Choice, opts ExploreOptions) ([]*Candidate, error) {
	opts = opts.withDefaults()

	// Slots indexed by enumeration position keep the output ordering
	// identical to the serial enumeration regardless of worker count.
	cands := make([]*Candidate, len(choices))
	fails := make([]error, len(choices))
	// structuralKey → *memoEntry. A plain mutex-guarded map: lookups are
	// brief, workers are few, and unlike sync.Map it needs no speculative
	// entry allocation or interface boxing per choice.
	var memoMu sync.Mutex
	memo := make(map[string]*memoEntry, len(choices))

	evaluate := func(i int) {
		choice := choices[i]
		cand, err := planCandidate(req, choice)
		if err != nil {
			fails[i] = &ChoiceError{Choice: choice, Err: err}
			return
		}
		key := cand.structuralKey()
		memoMu.Lock()
		entry := memo[key]
		if entry == nil {
			entry = &memoEntry{}
			memo[key] = entry
		}
		memoMu.Unlock()
		entry.once.Do(func() {
			priceCandidate(req, cand)
			entry.cand = cand
		})
		if entry.cand != cand {
			// Duplicate structure: reuse the priced fields (they are a
			// deterministic function of the structural key) and keep
			// only this slot's own Choice. The structural slices are
			// shared read-only from here on.
			cp := *entry.cand
			cp.Choice = choice
			cand = &cp
		}
		cands[i] = cand
	}

	conc.ForEach(len(choices), opts.Workers, evaluate)

	out := make([]*Candidate, 0, len(choices))
	var errs []error
	for i := range choices {
		if fails[i] != nil {
			errs = append(errs, fails[i])
			continue
		}
		out = append(out, cands[i])
	}
	out = dedupeCandidates(out)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Budget.Cost != b.Budget.Cost {
			return a.Budget.Cost < b.Budget.Cost
		}
		if a.Budget.AreaMM2 != b.Budget.AreaMM2 {
			return a.Budget.AreaMM2 < b.Budget.AreaMM2
		}
		return a.PanelTime < b.PanelTime
	})
	if opts.TopK > 0 && len(out) > opts.TopK {
		out = out[:opts.TopK]
	}
	return out, errors.Join(errs...)
}

// Best returns the cheapest feasible candidate.
func Best(req Requirements) (*Candidate, error) {
	return BestWith(req, ExploreOptions{})
}

// BestWith is Best with explicit exploration options. A feasible
// candidate is returned even when unrelated design points failed to
// evaluate; the per-choice failures only surface when nothing feasible
// remains.
func BestWith(req Requirements, opts ExploreOptions) (*Candidate, error) {
	cands, err := ExploreWith(req, opts)
	for _, c := range cands {
		if c.Feasible {
			return c, nil
		}
	}
	if err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("core: no feasible platform for the given requirements")
}

// enumerateAssays builds the cartesian product of per-target probe
// options. limit > 0 truncates every intermediate level to limit entries,
// which preserves the exact prefix of the unbounded product (each
// level's first limit elements derive only from the previous level's
// first limit) while keeping memory proportional to limit rather than the
// full product.
func enumerateAssays(targets []TargetSpec, limit int) []map[string]enzyme.Assay {
	result := []map[string]enzyme.Assay{{}}
	for _, t := range targets {
		options := enzyme.AssaysFor(t.Species)
		var next []map[string]enzyme.Assay
		for _, partial := range result {
			// The first option extends the partial in place — each map in
			// result is uniquely owned and discarded after this level, so
			// only the second and later options need copies (whose
			// t.Species entry is overwritten, making copy order
			// irrelevant). Single-option targets then build the whole
			// product copy-free.
			for oi, opt := range options {
				if limit > 0 && len(next) == limit {
					break
				}
				m := partial
				if oi > 0 {
					m = make(map[string]enzyme.Assay, len(partial)+1)
					for k, v := range partial {
						m[k] = v
					}
				}
				m[t.Species] = opt
				next = append(next, m)
			}
		}
		result = next
	}
	return result
}

// dedupeCandidates removes structurally identical candidates (e.g.
// chamber-per-technique equals shared-chamber when only one technique
// is present).
func dedupeCandidates(cands []*Candidate) []*Candidate {
	seen := make(map[string]bool, len(cands))
	out := make([]*Candidate, 0, len(cands))
	for _, c := range cands {
		key := c.structuralKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// structuralKey identifies the candidate's structure: everything the
// pricing phase depends on. The key is computed once and cached; a
// memo copy inherits the cache, which stays valid because copies share
// the same structure by construction.
func (c *Candidate) structuralKey() string {
	if c.key != "" {
		return c.key
	}
	// Assembled in a byte buffer: the final string conversion is the
	// only allocation (the buffer does not escape it).
	buf := make([]byte, 0, 160)
	buf = append(buf, c.Choice.Sharing.String()...)
	buf = append(buf, '|')
	buf = strconv.AppendBool(buf, c.Parallel)
	buf = append(buf, '|')
	for i := range c.Electrodes {
		e := &c.Electrodes[i]
		buf = append(buf, e.Name...)
		buf = append(buf, ':')
		for _, a := range e.Assays {
			buf = append(buf, a.Probe...)
			buf = append(buf, '/')
			buf = append(buf, a.Target.Name...)
			buf = append(buf, ',')
		}
		buf = append(buf, '@')
		buf = append(buf, c.ChamberFor(i)...)
		buf = append(buf, ';')
	}
	c.key = string(buf)
	return c.key
}

// Evaluate scores one structural choice against the requirements.
func Evaluate(req Requirements, choice Choice) (*Candidate, error) {
	req = req.WithDefaults()
	cand, err := planCandidate(req, choice)
	if err != nil {
		return nil, err
	}
	priceCandidate(req, cand)
	return cand, nil
}

// planCandidate runs the cheap structural phase of an evaluation:
// electrode planning, chamber partitioning, and the parallelism flag —
// everything structuralKey depends on. req must already carry its
// defaults.
func planCandidate(req Requirements, choice Choice) (*Candidate, error) {
	cand := &Candidate{Choice: choice, Feasible: true}
	plans, err := planElectrodes(req, choice)
	if err != nil {
		return nil, err
	}
	cand.Electrodes = plans
	assignChambers(cand)
	// Parallel operation needs isolated cells and dedicated electronics.
	cand.Parallel = choice.Chambers == ChamberPerElectrode && choice.Sharing == DedicatedChains
	return cand, nil
}

// priceCandidate runs the expensive phase on a planned candidate: the
// feasibility rules, readout selection, timing and the cost model. It
// is a deterministic function of (req, structural plan), which is what
// makes memoizing it by structuralKey sound.
func priceCandidate(req Requirements, cand *Candidate) {
	// --- Rule: CV peak separation on grouped electrodes ----------------
	for i := range cand.Electrodes {
		p := &cand.Electrodes[i]
		if p.Technique != enzyme.CyclicVoltammetry || len(p.Assays) < 2 {
			continue
		}
		minSep := phys.Voltage(math.Inf(1))
		for a := 0; a < len(p.Assays); a++ {
			for b := a + 1; b < len(p.Assays); b++ {
				d := p.Assays[a].Binding.PeakPotential - p.Assays[b].Binding.PeakPotential
				if d < 0 {
					d = -d
				}
				if d < minSep {
					minSep = d
				}
			}
		}
		if minSep < req.PeakSeparationMin {
			cand.fail("peak-separation", fmt.Sprintf(
				"electrode %s carries peaks %.0f mV apart (< %.0f mV): heights become inseparable",
				p.Name, minSep.MilliVolts(), req.PeakSeparationMin.MilliVolts()))
		}
	}

	// --- Rule: readout class selection ---------------------------------
	for i := range cand.Electrodes {
		p := &cand.Electrodes[i]
		if p.Blank {
			continue
		}
		rc, err := SelectReadout(p.MaxCurrent, p.ResRequired)
		if err != nil {
			cand.fail("readout-class", fmt.Sprintf("electrode %s: %v", p.Name, err))
			continue
		}
		p.Readout = rc
	}
	// Blank electrodes adopt the finest readout in use (they mimic the
	// sensing channel they correct).
	finest := ReadoutClass{}
	for _, p := range cand.Electrodes {
		if p.Blank || p.Readout.Name == "" {
			continue
		}
		if finest.Name == "" || p.Readout.Resolution < finest.Resolution {
			finest = p.Readout
		}
	}
	for i := range cand.Electrodes {
		if cand.Electrodes[i].Blank && finest.Name != "" {
			cand.Electrodes[i].Readout = finest
			cand.Electrodes[i].ProtocolTime = caProtocolTime
		}
	}

	// --- Rule: potentiostat drive covers the potential window ----------
	pstat := analog.DefaultPotentiostat()
	for _, p := range cand.Electrodes {
		for _, a := range p.Assays {
			var extremes []phys.Voltage
			if a.Technique == enzyme.Chronoamperometry {
				extremes = []phys.Voltage{a.Oxidase.Applied}
			} else {
				extremes = []phys.Voltage{a.Binding.PeakPotential + cvMargin, a.Binding.PeakPotential - cvMargin}
			}
			for _, e := range extremes {
				if e > pstat.MaxDrive || e < -pstat.MaxDrive {
					cand.fail("drive-range", fmt.Sprintf("potential %v outside the potentiostat drive ±%v", e, pstat.MaxDrive))
				}
			}
		}
	}

	// --- Rule: sweep rate ----------------------------------------------
	if err := analog.CheckSweepRate(defaultCVRate); err != nil {
		cand.fail("sweep-rate", err.Error())
	}

	// --- Rule: co-chamber oxidase cross-talk ----------------------------
	checkCrosstalk(req, cand)

	// --- Rule: direct-oxidizer interferents ----------------------------
	checkInterferents(req, cand)

	// --- Timing ----------------------------------------------------------
	computeTiming(req, cand)

	// --- Rule: throughput ------------------------------------------------
	if req.SamplePeriod > 0 && cand.CycleTime > req.SamplePeriod {
		cand.fail("throughput", fmt.Sprintf("cycle time %.0f s exceeds required sample period %.0f s",
			cand.CycleTime, req.SamplePeriod))
	}

	// --- Cost -------------------------------------------------------------
	computeBudget(cand)
}

func (c *Candidate) fail(rule, detail string) {
	c.Feasible = false
	c.Violations = append(c.Violations, Violation{Rule: rule, Detail: detail})
}

func (c *Candidate) warn(rule, detail string) {
	c.Violations = append(c.Violations, Violation{Rule: rule, Detail: detail, Warning: true})
}

// planElectrodes maps targets onto working electrodes according to the
// probe choices and grouping flag, replicating the full set for array
// requirements.
func planElectrodes(req Requirements, choice Choice) ([]ElectrodePlan, error) {
	set, err := planElectrodeSet(req, choice)
	if err != nil {
		return nil, err
	}
	replicas := req.Replicas
	if replicas < 1 {
		replicas = 1
	}
	if replicas == 1 {
		return set, nil
	}
	plans := make([]ElectrodePlan, 0, replicas*len(set))
	for r := 0; r < replicas; r++ {
		for _, p := range set {
			q := p
			q.Name = weName(len(plans) + 1)
			plans = append(plans, q)
		}
	}
	return plans, nil
}

// planElectrodeSet builds one un-replicated electrode set.
func planElectrodeSet(req Requirements, choice Choice) ([]ElectrodePlan, error) {
	plans := make([]ElectrodePlan, 0, len(req.Targets)+1)
	// Targets already covered, as a bitmask: requirements cap the target
	// count far below 64, and the mask keeps this per-choice planner off
	// the heap for its bookkeeping.
	var used uint64
	name := func() string { return weName(len(plans) + 1) }
	// Singleton Assays/Specs slices are carved from two shared chunks
	// (full slice expressions, so a grouping append copies out instead
	// of clobbering a sibling). The chunks never regrow: one slot per
	// target is an upper bound.
	assayChunk := make([]enzyme.Assay, 0, len(req.Targets))
	specChunk := make([]TargetSpec, 0, len(req.Targets))

	for i, t := range req.Targets {
		if used&(1<<uint(i)) != 0 {
			continue
		}
		a, ok := choice.Assays[t.Species]
		if !ok || (a.Oxidase == nil && a.CYP == nil) {
			return nil, fmt.Errorf("core: choice assigns no assay to target %q", t.Species)
		}
		nano := electrode.Bare
		if a.Perf().NanostructureGain > 1 {
			nano = electrode.CNT
		}
		k := len(assayChunk)
		assayChunk = append(assayChunk, a)
		specChunk = append(specChunk, t)
		plan := ElectrodePlan{
			Name:      name(),
			Nano:      nano,
			Assays:    assayChunk[k : k+1 : k+1],
			Specs:     specChunk[k : k+1 : k+1],
			Technique: a.Technique,
		}
		used |= 1 << uint(i)
		// Grouping: pull later targets sensed by the same CYP isoform
		// onto this electrode.
		if choice.GroupSameIsoform && a.Technique == enzyme.CyclicVoltammetry {
			for j := i + 1; j < len(req.Targets); j++ {
				if used&(1<<uint(j)) != 0 {
					continue
				}
				t2 := req.Targets[j]
				a2 := choice.Assays[t2.Species]
				if a2.Technique == enzyme.CyclicVoltammetry && a2.CYP == a.CYP {
					plan.Assays = append(plan.Assays, a2)
					plan.Specs = append(plan.Specs, t2)
					used |= 1 << uint(j)
				}
			}
		}
		if err := plan.PlanCurrents(); err != nil {
			return nil, err
		}
		plans = append(plans, plan)
	}
	if req.WithBlankCDS {
		plans = append(plans, ElectrodePlan{
			Name:      name(),
			Nano:      electrode.Bare,
			Technique: enzyme.Chronoamperometry,
			Blank:     true,
		})
	}
	return plans, nil
}

// Shared chamber lists for the policies with fixed layouts. Chamber
// slices are structural: read-only once assigned (memo copies already
// share them), so candidates can share these package singletons too.
var (
	sharedChamberList = []string{"chamber1"}
	chamberListCA     = []string{"chamberCA"}
	chamberListCV     = []string{"chamberCV"}
	chamberListCACV   = []string{"chamberCA", "chamberCV"}
)

// assignChambers builds the chamber list for the candidate's policy
// (per-electrode membership is computed on demand by ChamberFor).
func assignChambers(c *Candidate) {
	switch c.Choice.Chambers {
	case SharedChamber:
		c.Chambers = sharedChamberList
	case ChamberPerTechnique:
		haveCA, haveCV := false, false
		for _, p := range c.Electrodes {
			if p.Technique == enzyme.Chronoamperometry {
				haveCA = true
			} else {
				haveCV = true
			}
		}
		switch {
		case haveCA && haveCV:
			c.Chambers = chamberListCACV
		case haveCA:
			c.Chambers = chamberListCA
		case haveCV:
			c.Chambers = chamberListCV
		}
	case ChamberPerElectrode:
		c.Chambers = make([]string, 0, len(c.Electrodes))
		for i := range c.Electrodes {
			c.Chambers = append(c.Chambers, chamberName(i+1))
		}
	}
}

// checkCrosstalk applies the paper's §II-A co-chamber argument
// quantitatively: parasitic current from co-chambered oxidase
// neighbours must stay within the budgeted fraction of each sensor's
// smallest meaningful signal (its 3σ LOD current).
func checkCrosstalk(req Requirements, c *Candidate) {
	area := float64(electrode.ReferenceArea)
	for i := range c.Electrodes {
		p := &c.Electrodes[i]
		if p.Blank || p.Technique != enzyme.Chronoamperometry {
			continue
		}
		var parasitic float64
		for j := range c.Electrodes {
			q := &c.Electrodes[j]
			if i == j || q.Blank || q.Technique != enzyme.Chronoamperometry {
				continue
			}
			if c.ChamberFor(i) != c.ChamberFor(j) {
				continue
			}
			parasitic += 0.01 * float64(q.MaxCurrent) // cell.DefaultCrosstalk
		}
		if parasitic == 0 {
			continue
		}
		minSignal := 3 * float64(p.ResRequired) // the 3σ LOD current
		_ = area
		if parasitic > req.CrosstalkBudget*minSignal {
			c.fail("crosstalk", fmt.Sprintf(
				"electrode %s: co-chamber parasitic %.3g A exceeds %.0f%% of its LOD signal %.3g A",
				p.Name, parasitic, 100*req.CrosstalkBudget, minSignal))
		}
	}
}

// checkInterferents flags direct-oxidizer species in the matrix: they
// add current at any electrode held at an oxidizing potential, and they
// defeat the blank-electrode CDS correction (paper §II-C).
func checkInterferents(req Requirements, c *Candidate) {
	for _, name := range req.Interferents {
		sp, err := species.Lookup(name)
		if err != nil || !sp.DirectOxidizer {
			continue
		}
		hasCA := false
		for _, p := range c.Electrodes {
			if !p.Blank && p.Technique == enzyme.Chronoamperometry {
				hasCA = true
			}
		}
		if hasCA {
			c.warn("direct-oxidizer", fmt.Sprintf(
				"%s oxidizes directly at +%.0f mV; chronoamperometric channels see added current",
				name, sp.OxidationPotential.MilliVolts()))
		}
		if req.WithBlankCDS {
			c.warn("cds-blank", fmt.Sprintf(
				"%s also reacts at the enzyme-free blank, so CDS subtracts the interferent into the reading",
				name))
		}
	}
}

// computeTiming fills PanelTime/CycleTime from the Parallel flag set
// during planning.
func computeTiming(req Requirements, c *Candidate) {
	if c.Parallel {
		maxT := 0.0
		for _, p := range c.Electrodes {
			if p.ProtocolTime > maxT {
				maxT = p.ProtocolTime
			}
		}
		c.PanelTime = maxT
	} else {
		settle := 0.01
		if c.Choice.Sharing == SharedMux {
			settle = 0.05 // analog.DefaultMux settle
		}
		total := 0.0
		for _, p := range c.Electrodes {
			total += settle + p.ProtocolTime
		}
		c.PanelTime = total
	}
	c.CycleTime = c.PanelTime + recoveryTime
}

// computeBudget fills the cost model.
func computeBudget(c *Candidate) {
	var b Budget
	// Bio-interface: working electrodes plus RE+CE per chamber plus
	// chamber packaging.
	b = b.Add(ElectrodeBudget.Scale(float64(len(c.Electrodes))))
	b = b.Add(ElectrodeBudget.Scale(2 * float64(len(c.Chambers))))
	b = b.Add(ChamberBudget.Scale(float64(len(c.Chambers))))
	// One potentiostat per chamber.
	b = b.Add(PotentiostatBudget.Scale(float64(len(c.Chambers))))

	anyCV := false
	for _, p := range c.Electrodes {
		for _, a := range p.Assays {
			if a.Technique == enzyme.CyclicVoltammetry {
				anyCV = true
			}
		}
	}
	switch c.Choice.Sharing {
	case SharedMux:
		// One generator, muxes sized to the electrode count, one readout
		// instance per distinct class, one ADC.
		b = b.Add(SelectVGen(anyCV).Budget)
		nMux := (len(c.Electrodes) + MuxChannels - 1) / MuxChannels
		b = b.Add(MuxBudget.Scale(float64(nMux)))
		classes := map[string]ReadoutClass{}
		for _, p := range c.Electrodes {
			if p.Readout.Name != "" {
				classes[p.Readout.Name] = p.Readout
			}
		}
		for _, rc := range classes {
			b = b.Add(rc.Budget)
		}
		b = b.Add(ADCBudget)
	case DedicatedChains:
		// Readout + ADC per electrode; generator per chamber (electrodes
		// in one chamber share the solution potential).
		for _, p := range c.Electrodes {
			if p.Readout.Name != "" {
				b = b.Add(p.Readout.Budget)
			}
			b = b.Add(ADCBudget)
		}
		for range c.Chambers {
			b = b.Add(SelectVGen(anyCV).Budget)
		}
	}
	b = b.Add(ControllerBudget)
	c.Budget = b
}

// ParetoFront filters candidates to the (area, power, panel-time)
// Pareto-optimal feasible set.
func ParetoFront(cands []*Candidate) []*Candidate {
	var front []*Candidate
	for _, c := range cands {
		if !c.Feasible {
			continue
		}
		dominated := false
		for _, d := range cands {
			if d == c || !d.Feasible {
				continue
			}
			if dominates(d, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	return front
}

func dominates(a, b *Candidate) bool {
	notWorse := a.Budget.AreaMM2 <= b.Budget.AreaMM2 &&
		a.Budget.PowerUW <= b.Budget.PowerUW &&
		a.PanelTime <= b.PanelTime
	better := a.Budget.AreaMM2 < b.Budget.AreaMM2 ||
		a.Budget.PowerUW < b.Budget.PowerUW ||
		a.PanelTime < b.PanelTime
	return notWorse && better
}
