package core

import "advdiag/internal/netlist"

// Small indirections keep the test file readable.
func netlistReadoutKind() netlist.BlockKind { return netlist.Readout }
func netlistMuxKind() netlist.BlockKind     { return netlist.Multiplexer }
