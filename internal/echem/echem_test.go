package echem

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/phys"
)

func TestNernstEqualConcentrations(t *testing.T) {
	e, err := Nernst(phys.MilliVolts(-250), 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(e-phys.MilliVolts(-250))) > 1e-12 {
		t.Fatalf("equal concentrations must give E0, got %v", e)
	}
}

func TestNernstDecade(t *testing.T) {
	// A 10:1 O:R ratio shifts the potential by 59.2/n mV at 25 °C.
	e1, _ := Nernst(0, 1, 10, 1)
	if math.Abs(e1.MilliVolts()-59.2) > 0.3 {
		t.Fatalf("decade shift %g mV, want ≈59.2", e1.MilliVolts())
	}
	e2, _ := Nernst(0, 2, 10, 1)
	if math.Abs(e2.MilliVolts()-29.6) > 0.2 {
		t.Fatalf("n=2 decade shift %g mV, want ≈29.6", e2.MilliVolts())
	}
}

func TestNernstValidation(t *testing.T) {
	if _, err := Nernst(0, 0, 1, 1); err == nil {
		t.Error("n=0 must fail")
	}
	if _, err := Nernst(0, 1, 0, 1); err == nil {
		t.Error("zero concentration must fail")
	}
}

func TestButlerVolmerEquilibrium(t *testing.T) {
	bv := ButlerVolmer{E0: phys.MilliVolts(-100), N: 1, Alpha: 0.5, K0: 1e-5}
	// At E = E0 with equal surface concentrations the net flux is zero.
	if f := bv.FluxDensity(phys.MilliVolts(-100), 1, 1); math.Abs(f) > 1e-18 {
		t.Fatalf("non-zero flux at equilibrium: %g", f)
	}
}

func TestButlerVolmerDirection(t *testing.T) {
	bv := ButlerVolmer{E0: 0, N: 1, Alpha: 0.5, K0: 1e-5}
	// Negative overpotential drives reduction (positive net flux).
	if f := bv.FluxDensity(phys.MilliVolts(-200), 1, 1); f <= 0 {
		t.Fatalf("cathodic overpotential must reduce O, flux %g", f)
	}
	if f := bv.FluxDensity(phys.MilliVolts(+200), 1, 1); f >= 0 {
		t.Fatalf("anodic overpotential must oxidize R, flux %g", f)
	}
}

func TestButlerVolmerRateRatioIsNernstian(t *testing.T) {
	bv := ButlerVolmer{E0: 0, N: 1, Alpha: 0.5, K0: 1e-5}
	// kf/kb = exp(−n·f·(E−E0)) regardless of alpha.
	e := phys.MilliVolts(-77)
	kf, kb := bv.RateConstants(e)
	want := math.Exp(-float64(e) / float64(phys.StandardThermalVoltage()))
	if math.Abs(kf/kb-want) > 1e-9*want {
		t.Fatalf("kf/kb = %g, want %g", kf/kb, want)
	}
}

func TestButlerVolmerValidate(t *testing.T) {
	good := ButlerVolmer{E0: 0, N: 1, Alpha: 0.5, K0: 1e-5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ButlerVolmer{
		{N: 0, Alpha: 0.5, K0: 1e-5},
		{N: 1, Alpha: 0, K0: 1e-5},
		{N: 1, Alpha: 1.2, K0: 1e-5},
		{N: 1, Alpha: 0.5, K0: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v must fail validation", bad)
		}
	}
}

func TestSigmoidEfficiency(t *testing.T) {
	if got := SigmoidEfficiency(0, 0, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("η at E½ = %g, want 0.5", got)
	}
	// ln(19)·Vt/n past the half-wave gives 95 %.
	vt := float64(phys.StandardThermalVoltage())
	e := phys.Voltage(vt / 2 * math.Log(19))
	if got := SigmoidEfficiency(e, 0, 2); math.Abs(got-0.95) > 1e-9 {
		t.Fatalf("η = %g, want 0.95", got)
	}
	// Far past: saturates at 1.
	if got := SigmoidEfficiency(phys.Voltage(1), 0, 2); got < 0.9999 {
		t.Fatalf("η far past E½ = %g", got)
	}
}

func TestSigmoidMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 10 || math.Abs(b) > 10 {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return SigmoidEfficiency(phys.Voltage(lo), 0, 1) <= SigmoidEfficiency(phys.Voltage(hi), 0, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCottrell(t *testing.T) {
	// Hand-computed reference: n=1, A=1e-6 m², C=1 mol/m³, D=1e-9 m²/s,
	// t=1 s → I = F·1e-6·sqrt(1e-9/π).
	want := phys.Faraday * 1e-6 * math.Sqrt(1e-9/math.Pi)
	got, err := Cottrell(1, phys.Area(1e-6), 1, phys.Diffusivity(1e-9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-want) > 1e-12*want {
		t.Fatalf("Cottrell = %g, want %g", float64(got), want)
	}
	// t^{-1/2} decay.
	i4, _ := Cottrell(1, phys.Area(1e-6), 1, phys.Diffusivity(1e-9), 4)
	if math.Abs(float64(got)/float64(i4)-2) > 1e-9 {
		t.Fatal("Cottrell must decay as t^-1/2")
	}
	if _, err := Cottrell(1, 1e-6, 1, 1e-9, 0); err == nil {
		t.Error("t=0 must fail")
	}
}

func TestRandlesSevcik(t *testing.T) {
	// Reference value: n=1, A=1 m², C=1 mol/m³, D=1e-9, v=0.1 V/s.
	arg := phys.Faraday * 0.1 * 1e-9 / (phys.GasConstant * phys.StandardTemperature)
	want := 0.4463 * phys.Faraday * math.Sqrt(arg)
	got, err := RandlesSevcik(1, 1, 1, phys.Diffusivity(1e-9), phys.SweepRate(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-want) > 1e-9*want {
		t.Fatalf("RS = %g, want %g", float64(got), want)
	}
	// Ip ∝ sqrt(v).
	i2, _ := RandlesSevcik(1, 1, 1, phys.Diffusivity(1e-9), phys.SweepRate(0.4))
	if math.Abs(float64(i2)/float64(got)-2) > 1e-9 {
		t.Fatal("RS must scale as sqrt(v)")
	}
	if _, err := RandlesSevcik(0, 1, 1, 1e-9, 0.1); err == nil {
		t.Error("n=0 must fail")
	}
}

func TestReversiblePeakShift(t *testing.T) {
	// −28.5/n mV at 25 °C.
	if got := ReversiblePeakShift(1).MilliVolts(); math.Abs(got+28.5) > 0.2 {
		t.Fatalf("peak shift %g mV", got)
	}
	if got := ReversiblePeakShift(2).MilliVolts(); math.Abs(got+14.25) > 0.1 {
		t.Fatalf("n=2 peak shift %g mV", got)
	}
}

func TestDoubleLayer(t *testing.T) {
	dl := DoubleLayerFor(phys.SquareMillimetres(0.23), 1, 1000)
	// 0.23 mm² × 20 µF/cm² = 46 nF.
	if math.Abs(float64(dl.C)-46e-9) > 1e-12 {
		t.Fatalf("C = %g F, want 46 nF", float64(dl.C))
	}
	// Charging current decays with τ = RsC.
	i0 := dl.ChargingCurrent(phys.Voltage(0.5), 0)
	iTau := dl.ChargingCurrent(phys.Voltage(0.5), dl.TimeConstant())
	if math.Abs(float64(iTau)/float64(i0)-math.Exp(-1)) > 1e-9 {
		t.Fatal("charging current must decay exponentially")
	}
	// Sweep charging: I = C·v.
	if got := dl.SweepChargingCurrent(phys.MilliVoltsPerSecond(20)); math.Abs(float64(got)-46e-9*0.02) > 1e-15 {
		t.Fatalf("sweep charging %g", float64(got))
	}
	// Nanostructuring grows the double layer with microscopic area.
	dl5 := DoubleLayerFor(phys.SquareMillimetres(0.23), 5, 1000)
	if math.Abs(float64(dl5.C)/float64(dl.C)-5) > 1e-9 {
		t.Fatal("gain must scale capacitance")
	}
}
