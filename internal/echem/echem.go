// Package echem implements the governing equations of amperometric
// electrochemistry used by the cell simulator: the Nernst equation,
// Butler–Volmer electrode kinetics, the Cottrell transient, the
// Randles–Ševčík peak-current relation, and double-layer charging.
//
// These are the textbook relations (Bard & Faulkner, "Electrochemical
// Methods") that the physical electrodes in the paper obey; implementing
// them — rather than looking answers up — is what lets CV peak positions
// and chronoamperometric transients emerge from simulation.
package echem

import (
	"fmt"
	"math"

	"advdiag/internal/phys"
)

// Nernst returns the equilibrium electrode potential for the couple
// O + n·e⁻ ⇌ R with formal potential e0 and surface concentrations
// cO, cR (both must be positive).
func Nernst(e0 phys.Voltage, n int, cO, cR phys.Concentration) (phys.Voltage, error) {
	if n <= 0 {
		return 0, fmt.Errorf("echem: electron count must be positive, got %d", n)
	}
	if cO <= 0 || cR <= 0 {
		return 0, fmt.Errorf("echem: Nernst needs positive concentrations, got O=%v R=%v", cO, cR)
	}
	vt := float64(phys.StandardThermalVoltage())
	return e0 + phys.Voltage(vt/float64(n)*math.Log(float64(cO)/float64(cR))), nil
}

// ButlerVolmer describes heterogeneous electron-transfer kinetics at an
// electrode for the couple O + n·e⁻ ⇌ R.
type ButlerVolmer struct {
	// E0 is the formal potential of the couple vs the reference.
	E0 phys.Voltage
	// N is the number of electrons transferred.
	N int
	// Alpha is the cathodic transfer coefficient (0 < α < 1, typically 0.5).
	Alpha float64
	// K0 is the standard heterogeneous rate constant in m/s. Large K0
	// (≥1e-4) behaves reversibly at the paper's slow sweep rates; small
	// K0 (≤1e-7) is irreversible.
	K0 float64
}

// Validate checks the kinetic parameters.
func (bv ButlerVolmer) Validate() error {
	if bv.N <= 0 {
		return fmt.Errorf("echem: ButlerVolmer.N must be positive, got %d", bv.N)
	}
	if bv.Alpha <= 0 || bv.Alpha >= 1 {
		return fmt.Errorf("echem: ButlerVolmer.Alpha must be in (0,1), got %g", bv.Alpha)
	}
	if bv.K0 <= 0 {
		return fmt.Errorf("echem: ButlerVolmer.K0 must be positive, got %g", bv.K0)
	}
	return nil
}

// RateConstants returns the forward (reduction, kf) and backward
// (oxidation, kb) rate constants in m/s at electrode potential e.
//
//	kf = k0·exp(-α·n·f·(E-E0))      (reduction of O)
//	kb = k0·exp((1-α)·n·f·(E-E0))   (oxidation of R)
//
// with f = F/RT.
func (bv ButlerVolmer) RateConstants(e phys.Voltage) (kf, kb float64) {
	f := 1.0 / float64(phys.StandardThermalVoltage())
	eta := float64(e - bv.E0)
	x := float64(bv.N) * f * eta
	kf = bv.K0 * math.Exp(-bv.Alpha*x)
	kb = bv.K0 * math.Exp((1-bv.Alpha)*x)
	return kf, kb
}

// FluxDensity returns the net reduction flux density (mol·m⁻²·s⁻¹,
// positive = O consumed at the surface) for surface concentrations cO,
// cR at potential e.
func (bv ButlerVolmer) FluxDensity(e phys.Voltage, cO, cR phys.Concentration) float64 {
	kf, kb := bv.RateConstants(e)
	return kf*float64(cO) - kb*float64(cR)
}

// SigmoidEfficiency is the fraction of the mass-transport-limited current
// obtained at potential e for an oxidation whose half-wave potential is
// eHalf: a Nernstian sigmoid 1/(1+exp(-n(E-E½)/Vt)). The oxidase
// chronoamperometry model uses it to express how the chosen applied
// potential (Table I) sets the plateau fraction of the H₂O₂ oxidation
// current.
func SigmoidEfficiency(e, eHalf phys.Voltage, n int) float64 {
	vt := float64(phys.StandardThermalVoltage())
	x := float64(n) * float64(e-eHalf) / vt
	return 1.0 / (1.0 + math.Exp(-x))
}

// Cottrell returns the diffusion-limited current at time t after a
// potential step, for a planar electrode of area a in a solution of bulk
// concentration c with diffusivity d:
//
//	I(t) = n·F·A·C·sqrt(D/(π·t))
//
// t must be positive.
func Cottrell(n int, a phys.Area, c phys.Concentration, d phys.Diffusivity, t float64) (phys.Current, error) {
	if t <= 0 {
		return 0, fmt.Errorf("echem: Cottrell time must be positive, got %g", t)
	}
	if n <= 0 || a <= 0 || d <= 0 {
		return 0, fmt.Errorf("echem: Cottrell needs positive n, area and diffusivity")
	}
	i := float64(n) * phys.Faraday * float64(a) * float64(c) * math.Sqrt(float64(d)/(math.Pi*t))
	return phys.Current(i), nil
}

// RandlesSevcik returns the reversible CV peak current for a planar
// electrode:
//
//	Ip = 0.4463·n·F·A·C·sqrt(n·F·v·D/(R·T))
//
// where v is the sweep rate. This is the analytic benchmark the finite-
// difference CV solver is validated against.
func RandlesSevcik(n int, a phys.Area, c phys.Concentration, d phys.Diffusivity, v phys.SweepRate) (phys.Current, error) {
	if n <= 0 || a <= 0 || d <= 0 || v <= 0 {
		return 0, fmt.Errorf("echem: RandlesSevcik needs positive n, area, diffusivity and sweep rate")
	}
	arg := float64(n) * phys.Faraday * float64(v) * float64(d) / (phys.GasConstant * phys.StandardTemperature)
	i := 0.4463 * float64(n) * phys.Faraday * float64(a) * float64(c) * math.Sqrt(arg)
	return phys.Current(i), nil
}

// ReversiblePeakShift is the offset of the cathodic peak from the
// half-wave potential for a reversible system: Ep = E½ − 1.109·RT/(nF)
// (≈ −28.5/n mV at 25 °C). The sign is negative because reduction peaks
// appear past the formal potential on the cathodic sweep.
func ReversiblePeakShift(n int) phys.Voltage {
	return phys.Voltage(-1.109 * float64(phys.StandardThermalVoltage()) / float64(n))
}

// DoubleLayer models the electrode/electrolyte interfacial capacitance
// together with the solution resistance feeding it.
type DoubleLayer struct {
	// Capacitance of the interface. Scaling electrodes down shrinks this
	// (paper §III: smaller background current for micro-electrodes).
	C phys.Capacitance
	// Rs is the uncompensated solution resistance.
	Rs phys.Resistance
}

// ChargingCurrent returns the capacitive charging current at time t
// after a potential step of magnitude dE: (dE/Rs)·exp(−t/(Rs·C)).
func (dl DoubleLayer) ChargingCurrent(dE phys.Voltage, t float64) phys.Current {
	if dl.Rs <= 0 || dl.C <= 0 || t < 0 {
		return 0
	}
	tau := float64(dl.Rs) * float64(dl.C)
	return phys.Current(float64(dE) / float64(dl.Rs) * math.Exp(-t/tau))
}

// SweepChargingCurrent returns the steady capacitive current under a
// linear sweep at rate v: I = C·v.
func (dl DoubleLayer) SweepChargingCurrent(v phys.SweepRate) phys.Current {
	return phys.Current(float64(dl.C) * float64(v))
}

// TimeConstant returns Rs·C.
func (dl DoubleLayer) TimeConstant() float64 {
	return float64(dl.Rs) * float64(dl.C)
}

// SpecificCapacitance is a typical double-layer capacitance per area for
// a polished gold electrode in aqueous buffer (F/m²; ≈20 µF/cm²).
const SpecificCapacitance = 0.20

// DoubleLayerFor builds a DoubleLayer for an electrode of area a with an
// area multiplier from nanostructuring (CNTs raise the effective
// microscopic area) and a given solution resistance.
func DoubleLayerFor(a phys.Area, areaGain float64, rs phys.Resistance) DoubleLayer {
	if areaGain < 1 {
		areaGain = 1
	}
	return DoubleLayer{
		C:  phys.Capacitance(SpecificCapacitance * float64(a) * areaGain),
		Rs: rs,
	}
}
