// Package species is the chemical-species registry of the platform: every
// metabolite, drug and redox mediator the paper mentions, together with
// the physical properties the simulator needs (diffusion coefficient,
// electrons transferred, direct-oxidation behaviour).
package species

import (
	"fmt"
	"sort"

	"advdiag/internal/phys"
)

// Class partitions species by their role in the sensing chain.
type Class int

const (
	// Metabolite marks endogenous compounds sensed via oxidases
	// (glucose, lactate, glutamate, cholesterol).
	Metabolite Class = iota
	// Drug marks exogenous compounds sensed via cytochromes P450.
	Drug
	// Mediator marks electroactive intermediates (hydrogen peroxide,
	// oxygen) produced or consumed by the enzymatic reactions.
	Mediator
)

func (c Class) String() string {
	switch c {
	case Metabolite:
		return "metabolite"
	case Drug:
		return "drug"
	case Mediator:
		return "mediator"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Species describes one chemical species.
type Species struct {
	// Name is the canonical lowercase identifier used across the
	// platform ("glucose", "benzphetamine", ...).
	Name string
	// Class is the sensing role.
	Class Class
	// Diffusion is the aqueous diffusion coefficient at 25 °C.
	Diffusion phys.Diffusivity
	// Electrons is the number of electrons transferred in the species'
	// detection reaction (2 for H₂O₂ oxidation, 1 for typical CYP
	// single-electron reductions at the heme).
	Electrons int
	// DirectOxidizer marks species (dopamine, etoposide) that oxidize at
	// a bare electrode without any enzyme. The paper notes these defeat
	// the blank-electrode correlated-double-sampling trick.
	DirectOxidizer bool
	// OxidationPotential is the half-wave potential of the direct
	// (enzyme-free) oxidation for DirectOxidizer species, vs Ag/AgCl.
	OxidationPotential phys.Voltage
	// DirectResponse is the current-density slope of the direct
	// oxidation (A·m/mol, i.e. A/m² per mol/m³) once the potential is
	// past OxidationPotential. Zero for non-direct-oxidizers.
	DirectResponse float64
	// Description is the paper's one-line description of the compound.
	Description string
}

// Validate performs basic sanity checks on the record.
func (s Species) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("species: empty name")
	}
	if s.Diffusion <= 0 {
		return fmt.Errorf("species %s: non-positive diffusion coefficient", s.Name)
	}
	if s.Electrons <= 0 {
		return fmt.Errorf("species %s: non-positive electron count", s.Name)
	}
	return nil
}

// registry holds the built-in species, keyed by Name.
var registry = map[string]Species{}

func register(s Species) {
	if err := s.Validate(); err != nil {
		panic(err) // built-in table must be internally consistent
	}
	if _, dup := registry[s.Name]; dup {
		panic("species: duplicate registration of " + s.Name)
	}
	registry[s.Name] = s
}

// Lookup returns the species with the given name.
func Lookup(name string) (Species, error) {
	s, ok := registry[name]
	if !ok {
		return Species{}, fmt.Errorf("species: unknown species %q", name)
	}
	return s, nil
}

// MustLookup is Lookup for names known to exist (built-in tables).
func MustLookup(name string) Species {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns every registered species sorted by name.
func All() []Species {
	out := make([]Species, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByClass returns every registered species of the given class, sorted by
// name.
func ByClass(c Class) []Species {
	var out []Species
	for _, s := range All() {
		if s.Class == c {
			out = append(out, s)
		}
	}
	return out
}

// Diffusion coefficients are literature aqueous values at 25 °C; the
// exact numbers matter less than their order of magnitude (1e-10..1e-9
// m²/s) because the enzyme kinetics are calibrated to the paper's
// figures of merit. H₂O₂'s relatively low diffusivity in the sensing
// membrane is what the paper invokes to argue negligible cross-talk.
func init() {
	// Endogenous metabolites (paper §I-A, Table I).
	register(Species{Name: "glucose", Class: Metabolite, Diffusion: 6.7e-10, Electrons: 2,
		Description: "Metabolic compound as energy source; marker for diabetes"})
	register(Species{Name: "lactate", Class: Metabolite, Diffusion: 1.0e-9, Electrons: 2,
		Description: "Metabolic compound as marker of cell suffering (lactic acidosis)"})
	register(Species{Name: "glutamate", Class: Metabolite, Diffusion: 7.6e-10, Electrons: 2,
		Description: "Excitatory neurotransmitter; accumulation marks brain injury"})
	register(Species{Name: "cholesterol", Class: Metabolite, Diffusion: 2.5e-10, Electrons: 1,
		Description: "Lipid establishing membrane permeability/fluidity; atherosclerosis marker"})

	// Exogenous drug compounds (paper Table II).
	register(Species{Name: "clozapine", Class: Drug, Diffusion: 5.0e-10, Electrons: 1,
		Description: "Antipsychotic used in the treatment of schizophrenia"})
	register(Species{Name: "erythromycin", Class: Drug, Diffusion: 4.0e-10, Electrons: 1,
		Description: "Broad-spectrum antibiotic"})
	register(Species{Name: "indinavir", Class: Drug, Diffusion: 4.2e-10, Electrons: 1,
		Description: "Used in the treatment of HIV infection and AIDS"})
	register(Species{Name: "benzphetamine", Class: Drug, Diffusion: 5.5e-10, Electrons: 1,
		Description: "Used in the treatment of obesity"})
	register(Species{Name: "aminopyrine", Class: Drug, Diffusion: 5.8e-10, Electrons: 1,
		Description: "Analgesic, anti-inflammatory, and antipyretic drug"})
	register(Species{Name: "bupropion", Class: Drug, Diffusion: 5.6e-10, Electrons: 1,
		Description: "Antidepressant"})
	register(Species{Name: "lidocaine", Class: Drug, Diffusion: 6.0e-10, Electrons: 1,
		Description: "Anesthetic and antiarrhythmic"})
	register(Species{Name: "torsemide", Class: Drug, Diffusion: 4.8e-10, Electrons: 1,
		Description: "Diuretic"})
	register(Species{Name: "diclofenac", Class: Drug, Diffusion: 5.2e-10, Electrons: 1,
		Description: "Anti-inflammatory"})
	register(Species{Name: "p-nitrophenol", Class: Drug, Diffusion: 7.6e-10, Electrons: 1,
		Description: "Intermediate in the synthesis of paracetamol"})
	register(Species{Name: "etoposide", Class: Drug, Diffusion: 3.9e-10, Electrons: 1, DirectOxidizer: true,
		OxidationPotential: phys.MilliVolts(250), DirectResponse: 0.05,
		Description: "Chemotherapy drug; oxidizes directly at a bare working electrode"})
	register(Species{Name: "dopamine", Class: Drug, Diffusion: 6.0e-10, Electrons: 2, DirectOxidizer: true,
		OxidationPotential: phys.MilliVolts(200), DirectResponse: 0.10,
		Description: "Neurotransmitter; oxidizes directly at a bare working electrode"})

	// Electroactive mediators.
	register(Species{Name: "hydrogen-peroxide", Class: Mediator, Diffusion: 1.4e-9, Electrons: 2,
		Description: "Common oxidase product; oxidized at ~+650 mV vs Ag/AgCl (2H₂O₂→2H₂O+O₂+4e⁻)"})
	register(Species{Name: "oxygen", Class: Mediator, Diffusion: 2.0e-9, Electrons: 4,
		Description: "Electron acceptor of the oxidase catalytic cycle"})
}
