package species

import (
	"testing"

	"advdiag/internal/phys"
)

func TestPaperSpeciesRegistered(t *testing.T) {
	// Every molecule named in the paper must resolve.
	names := []string{
		"glucose", "lactate", "glutamate", "cholesterol",
		"clozapine", "erythromycin", "indinavir", "benzphetamine",
		"aminopyrine", "bupropion", "lidocaine", "torsemide",
		"diclofenac", "p-nitrophenol", "etoposide", "dopamine",
		"hydrogen-peroxide", "oxygen",
	}
	for _, n := range names {
		if _, err := Lookup(n); err != nil {
			t.Errorf("missing species %q: %v", n, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("unobtainium"); err == nil {
		t.Fatal("unknown species must fail")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown species must panic")
		}
	}()
	MustLookup("unobtainium")
}

func TestClassPartition(t *testing.T) {
	mets := ByClass(Metabolite)
	drugs := ByClass(Drug)
	meds := ByClass(Mediator)
	if len(mets) != 4 {
		t.Errorf("want 4 metabolites, got %d", len(mets))
	}
	if len(drugs) < 10 {
		t.Errorf("want ≥10 drugs, got %d", len(drugs))
	}
	if len(meds) != 2 {
		t.Errorf("want 2 mediators, got %d", len(meds))
	}
	if len(All()) != len(mets)+len(drugs)+len(meds) {
		t.Error("class partition does not cover All()")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].Name < all[i-1].Name {
			t.Fatalf("All() not sorted at %d: %s < %s", i, all[i].Name, all[i-1].Name)
		}
	}
}

func TestEveryRecordValid(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid record: %v", err)
		}
	}
}

func TestDirectOxidizers(t *testing.T) {
	// The paper singles out dopamine and etoposide (§II-C).
	for _, name := range []string{"dopamine", "etoposide"} {
		s := MustLookup(name)
		if !s.DirectOxidizer {
			t.Errorf("%s must be a direct oxidizer", name)
		}
		if s.OxidationPotential <= 0 || s.DirectResponse <= 0 {
			t.Errorf("%s lacks direct-oxidation parameters", name)
		}
	}
	if MustLookup("glucose").DirectOxidizer {
		t.Error("glucose must not be a direct oxidizer")
	}
}

func TestDiffusionMagnitudes(t *testing.T) {
	// Aqueous small-molecule diffusivities live in 1e-10..2e-9 m²/s.
	for _, s := range All() {
		if s.Diffusion < phys.Diffusivity(1e-10) || s.Diffusion > phys.Diffusivity(2.5e-9) {
			t.Errorf("%s diffusivity %g m²/s outside plausible range", s.Name, float64(s.Diffusion))
		}
	}
}

func TestPeroxideProperties(t *testing.T) {
	h := MustLookup("hydrogen-peroxide")
	if h.Electrons != 2 {
		t.Errorf("H₂O₂ oxidation transfers 2 e⁻ per molecule (eq. 3), got %d", h.Electrons)
	}
	if h.Class != Mediator {
		t.Error("H₂O₂ is a mediator")
	}
}

func TestClassString(t *testing.T) {
	if Metabolite.String() != "metabolite" || Drug.String() != "drug" || Mediator.String() != "mediator" {
		t.Error("class labels wrong")
	}
	if Class(99).String() == "" {
		t.Error("unknown class must still render")
	}
}
