// Package electrode models the physical electrodes of the bio-interface
// (paper §III and Fig. 4): materials, geometry, nanostructuring, and
// enzyme functionalization with its transport membrane.
//
// The reference platform is the paper's demonstrator: gold working and
// counter electrodes and a silver reference, deposited on silicon, each
// working electrode 0.23 mm², passivated with SiO₂, functionalized by
// proteomic spotting.
package electrode

import (
	"fmt"
	"math"

	"advdiag/internal/echem"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

// Material is an electrode metallization.
type Material int

const (
	// Gold thin film (working/counter electrodes of the platform).
	Gold Material = iota
	// Silver / silver-chloride (the reference electrode).
	SilverAgCl
	// Platinum (classic H₂O₂ oxidation electrode).
	Platinum
	// RhodiumGraphite (the cited CYP2B4 drug electrodes [16]).
	RhodiumGraphite
	// ScreenPrintedCarbon (disposable strips, Quicklab-style).
	ScreenPrintedCarbon
)

func (m Material) String() string {
	switch m {
	case Gold:
		return "Au"
	case SilverAgCl:
		return "Ag/AgCl"
	case Platinum:
		return "Pt"
	case RhodiumGraphite:
		return "Rh-graphite"
	case ScreenPrintedCarbon:
		return "SPE-carbon"
	default:
		return fmt.Sprintf("Material(%d)", int(m))
	}
}

// Nanostructure is a working-electrode surface treatment.
type Nanostructure int

const (
	// Bare is an untreated metal surface.
	Bare Nanostructure = iota
	// CNT is a carbon-nanotube coating: larger microscopic area, higher
	// sensitivity (paper §III: "nanostructures, to increase sensitivity").
	CNT
)

// Gain returns the signal gain of the treatment relative to a bare
// electrode. The CNT value is the calibration constant shared with the
// enzyme registry so cited electrode constructions reproduce cited
// figures of merit.
func (n Nanostructure) Gain() float64 {
	switch n {
	case CNT:
		return enzyme.CNTGain
	default:
		return 1
	}
}

func (n Nanostructure) String() string {
	switch n {
	case Bare:
		return "bare"
	case CNT:
		return "CNT"
	default:
		return fmt.Sprintf("Nanostructure(%d)", int(n))
	}
}

// Role is an electrode's function in the three-electrode cell.
type Role int

const (
	// Working is the sensing electrode (WE).
	Working Role = iota
	// Reference sets the potential reference (RE).
	Reference
	// Counter closes the current loop (CE).
	Counter
)

func (r Role) String() string {
	switch r {
	case Working:
		return "WE"
	case Reference:
		return "RE"
	case Counter:
		return "CE"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ReferenceArea is the paper's working-electrode area (0.23 mm²).
var ReferenceArea = phys.SquareMillimetres(0.23)

// DefaultMembraneTau is the first-order time constant of substrate
// transport through the enzyme/membrane stack on a standard-size
// electrode. Calibrated so the 90 % response time matches the paper's
// Fig. 3 glucose transient: t₉₀ = τ·ln(10) ≈ 30 s ⇒ τ ≈ 13 s.
const DefaultMembraneTau = 13.0

// DefaultSolutionResistance is a typical uncompensated solution
// resistance for the platform's electrode geometry.
const DefaultSolutionResistance = phys.Resistance(1000)

// DefaultStabilityTau is the 1/e sensitivity-decay time of an enzyme
// film without stabilization, in seconds (≈5 days: enzyme leaching and
// denaturation cost implantable sensors a few percent per day; the
// paper's §I motivates long-term monitoring, e.g. the 100 h GlucoMen
// Day).
const DefaultStabilityTau = 5 * 24 * 3600.0

// PolymerStabilityGain is the stability-τ multiplier of a polymer
// coating (paper §III: "by polymers, to provide long-term stability",
// ref [3] demonstrates >1 year implants).
const PolymerStabilityGain = 10.0

// Functionalization is what sits on top of a working electrode.
type Functionalization struct {
	// Assay is the probe/substrate pair the electrode senses. A zero
	// Assay (Probe == "") is a bare electrode used as the correlated-
	// double-sampling blank.
	Assay enzyme.Assay
	// MembraneTau is the substrate-transport time constant in seconds;
	// it sets the sensor's steady-state response time (paper Fig. 3).
	MembraneTau float64
	// PolymerStabilized marks a long-term-stability polymer coating
	// (paper §III, ref [3]); it slows the sensitivity decay by
	// PolymerStabilityGain.
	PolymerStabilized bool
	// AgeSeconds is the film age: how long the electrode has been
	// deployed. Sensitivity decays as exp(−age/τ).
	AgeSeconds float64
	// StabilityTau overrides DefaultStabilityTau when positive.
	StabilityTau float64
}

// StabilityFactor returns the fraction of the original sensitivity the
// film retains at its current age.
func (f Functionalization) StabilityFactor() float64 {
	if f.IsBlank() || f.AgeSeconds <= 0 {
		return 1
	}
	tau := f.StabilityTau
	if tau <= 0 {
		tau = DefaultStabilityTau
	}
	if f.PolymerStabilized {
		tau *= PolymerStabilityGain
	}
	return math.Exp(-f.AgeSeconds / tau)
}

// IsBlank reports whether the functionalization is an enzyme-free blank.
func (f Functionalization) IsBlank() bool { return f.Assay.Probe == "" }

// Electrode is one physical electrode.
type Electrode struct {
	// Name identifies the electrode in netlists and schedules ("WE1").
	Name string
	// Role is WE/RE/CE.
	Role Role
	// Material is the metallization.
	Material Material
	// Area is the geometric area.
	Area phys.Area
	// Nano is the surface treatment (working electrodes only).
	Nano Nanostructure
	// Func is the biological functionalization (working electrodes only).
	Func Functionalization
}

// Validate checks the electrode description.
func (e *Electrode) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("electrode: empty name")
	}
	if e.Area <= 0 {
		return fmt.Errorf("electrode %s: non-positive area", e.Name)
	}
	if e.Role != Working {
		if !e.Func.IsBlank() {
			return fmt.Errorf("electrode %s: only working electrodes carry probes", e.Name)
		}
		if e.Nano != Bare {
			return fmt.Errorf("electrode %s: only working electrodes are nanostructured", e.Name)
		}
	}
	if e.Role == Reference && e.Material != SilverAgCl {
		return fmt.Errorf("electrode %s: reference electrodes must be Ag/AgCl, got %s", e.Name, e.Material)
	}
	if !e.Func.IsBlank() && e.Func.MembraneTau <= 0 {
		return fmt.Errorf("electrode %s: functionalized electrode needs a positive membrane tau", e.Name)
	}
	return nil
}

// Gain returns the nanostructure signal gain.
func (e *Electrode) Gain() float64 { return e.Nano.Gain() }

// DoubleLayer returns the interfacial capacitance model for this
// electrode (scales with microscopic area, i.e. geometric area × gain).
func (e *Electrode) DoubleLayer() echem.DoubleLayer {
	return echem.DoubleLayerFor(e.Area, e.Gain(), DefaultSolutionResistance)
}

// NewWorking builds a functionalized working electrode on the platform's
// standard gold/0.23 mm² geometry.
func NewWorking(name string, nano Nanostructure, assay enzyme.Assay) *Electrode {
	return &Electrode{
		Name:     name,
		Role:     Working,
		Material: Gold,
		Area:     ReferenceArea,
		Nano:     nano,
		Func:     Functionalization{Assay: assay, MembraneTau: DefaultMembraneTau},
	}
}

// NewBlankWorking builds an enzyme-free working electrode used as the
// correlated-double-sampling blank (paper §II-C).
func NewBlankWorking(name string) *Electrode {
	return &Electrode{
		Name:     name,
		Role:     Working,
		Material: Gold,
		Area:     ReferenceArea,
		Nano:     Bare,
		Func:     Functionalization{},
	}
}

// NewReference builds the platform's Ag/AgCl reference electrode.
func NewReference(name string) *Electrode {
	return &Electrode{Name: name, Role: Reference, Material: SilverAgCl, Area: ReferenceArea}
}

// NewCounter builds the platform's gold counter electrode.
func NewCounter(name string) *Electrode {
	return &Electrode{Name: name, Role: Counter, Material: Gold, Area: ReferenceArea}
}

// String summarizes the electrode.
func (e *Electrode) String() string {
	if e.Role != Working {
		return fmt.Sprintf("%s[%s %s %.3g mm²]", e.Name, e.Role, e.Material, e.Area.SquareMillimetres())
	}
	probe := "blank"
	if !e.Func.IsBlank() {
		probe = e.Func.Assay.String()
	}
	return fmt.Sprintf("%s[%s %s/%s %.3g mm² %s]", e.Name, e.Role, e.Material, e.Nano, e.Area.SquareMillimetres(), probe)
}
