package electrode

import (
	"math"
	"strings"
	"testing"

	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

func glucoseAssay(t *testing.T) enzyme.Assay {
	t.Helper()
	assays := enzyme.AssaysFor("glucose")
	if len(assays) == 0 {
		t.Fatal("no glucose assay")
	}
	return assays[0]
}

func TestReferenceArea(t *testing.T) {
	// The platform's electrodes are 0.23 mm² (paper §III).
	if math.Abs(ReferenceArea.SquareMillimetres()-0.23) > 1e-12 {
		t.Fatalf("reference area %g mm²", ReferenceArea.SquareMillimetres())
	}
}

func TestNewWorkingValid(t *testing.T) {
	we := NewWorking("WE1", CNT, glucoseAssay(t))
	if err := we.Validate(); err != nil {
		t.Fatal(err)
	}
	if we.Gain() != enzyme.CNTGain {
		t.Fatalf("CNT gain %g", we.Gain())
	}
	if we.Func.IsBlank() {
		t.Fatal("functionalized electrode reported blank")
	}
	if we.Func.MembraneTau != DefaultMembraneTau {
		t.Fatalf("membrane tau %g", we.Func.MembraneTau)
	}
}

func TestBlankWorking(t *testing.T) {
	blank := NewBlankWorking("WEB")
	if err := blank.Validate(); err != nil {
		t.Fatal(err)
	}
	if !blank.Func.IsBlank() {
		t.Fatal("blank electrode must report IsBlank")
	}
	if blank.Gain() != 1 {
		t.Fatal("blank electrode gain must be 1")
	}
}

func TestReferenceMustBeAgAgCl(t *testing.T) {
	re := NewReference("RE1")
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	re.Material = Gold
	if err := re.Validate(); err == nil {
		t.Fatal("gold reference electrode must fail validation")
	}
}

func TestNonWorkingCannotCarryProbes(t *testing.T) {
	ce := NewCounter("CE1")
	ce.Func = Functionalization{Assay: glucoseAssay(t), MembraneTau: 13}
	if err := ce.Validate(); err == nil {
		t.Fatal("counter electrode with a probe must fail")
	}
	ce2 := NewCounter("CE2")
	ce2.Nano = CNT
	if err := ce2.Validate(); err == nil {
		t.Fatal("nanostructured counter electrode must fail")
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	we := NewWorking("WE1", Bare, glucoseAssay(t))
	we.Area = 0
	if err := we.Validate(); err == nil {
		t.Fatal("zero area must fail")
	}
	we2 := NewWorking("", Bare, glucoseAssay(t))
	if err := we2.Validate(); err == nil {
		t.Fatal("empty name must fail")
	}
	we3 := NewWorking("WE3", Bare, glucoseAssay(t))
	we3.Func.MembraneTau = 0
	if err := we3.Validate(); err == nil {
		t.Fatal("functionalized electrode without membrane tau must fail")
	}
}

func TestMembraneTauMatchesFig3(t *testing.T) {
	// t90 = τ·ln(10) must be ≈30 s, the paper's Fig. 3 transient.
	t90 := DefaultMembraneTau * math.Ln10
	if math.Abs(t90-30) > 1 {
		t.Fatalf("default membrane gives t90 = %g s, want ≈30", t90)
	}
}

func TestDoubleLayerScalesWithGain(t *testing.T) {
	bare := NewWorking("a", Bare, glucoseAssay(t))
	cnt := NewWorking("b", CNT, glucoseAssay(t))
	ratio := float64(cnt.DoubleLayer().C) / float64(bare.DoubleLayer().C)
	if math.Abs(ratio-enzyme.CNTGain) > 1e-9 {
		t.Fatalf("double-layer gain ratio %g", ratio)
	}
}

func TestNanostructureGains(t *testing.T) {
	if Bare.Gain() != 1 {
		t.Fatal("bare gain must be 1")
	}
	if CNT.Gain() <= 1 {
		t.Fatal("CNT gain must exceed 1")
	}
}

func TestStrings(t *testing.T) {
	we := NewWorking("WE1", CNT, glucoseAssay(t))
	s := we.String()
	for _, frag := range []string{"WE1", "CNT", "glucose"} {
		if !strings.Contains(s, frag) {
			t.Errorf("%q missing %q", s, frag)
		}
	}
	if !strings.Contains(NewReference("RE").String(), "Ag/AgCl") {
		t.Error("reference string must name Ag/AgCl")
	}
	for _, m := range []Material{Gold, SilverAgCl, Platinum, RhodiumGraphite, ScreenPrintedCarbon} {
		if m.String() == "" || strings.HasPrefix(m.String(), "Material(") {
			t.Errorf("material %d lacks a label", m)
		}
	}
}

var _ = phys.Voltage(0)
