package netlist

import (
	"strings"
	"testing"
)

// fig1 builds the paper's Fig. 1: potentiostat + TIA around one cell.
func fig1(t *testing.T) *Design {
	t.Helper()
	d := New("fig1")
	blocks := []struct {
		name  string
		kind  BlockKind
		label string
	}{
		{"vgen", VoltageGenerator, "fixed/sweep"},
		{"pstat", Potentiostat, ""},
		{"WE", WorkingElectrode, "probe"},
		{"RE", ReferenceElectrode, ""},
		{"CE", CounterElectrode, ""},
		{"tia", Readout, "transimpedance"},
		{"adc", ADC, "12-bit"},
		{"ctrl", Controller, ""},
	}
	for _, b := range blocks {
		if err := d.AddBlock(b.name, b.kind, b.label); err != nil {
			t.Fatal(err)
		}
	}
	conns := [][]string{
		{"n1", "vgen.out", "pstat.set"},
		{"n2", "pstat.re", "RE.pin"},
		{"n3", "pstat.ce", "CE.pin"},
		{"n4", "WE.pin", "tia.in"},
		{"n5", "tia.out", "adc.in"},
		{"n6", "adc.out", "ctrl.data"},
		{"n7", "ctrl.wave", "vgen.prog"},
	}
	for _, c := range conns {
		if err := d.Connect(c[0], c[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestFig1Checks(t *testing.T) {
	if err := fig1(t).Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateBlock(t *testing.T) {
	d := New("x")
	if err := d.AddBlock("a", Readout, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.AddBlock("a", ADC, ""); err == nil {
		t.Fatal("duplicate block must fail")
	}
}

func TestConnectValidation(t *testing.T) {
	d := New("x")
	_ = d.AddBlock("a", Readout, "")
	_ = d.AddBlock("b", ADC, "")
	if err := d.Connect("n", "a.out"); err == nil {
		t.Error("single-pin net must fail")
	}
	if err := d.Connect("n", "a.out", "ghost.in"); err == nil {
		t.Error("unknown block must fail")
	}
	if err := d.Connect("n", "a.out", "badpin"); err == nil {
		t.Error("malformed pin must fail")
	}
	if err := d.Connect("n", "a.out", "b.in"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("n", "a.out", "b.in"); err == nil {
		t.Error("duplicate net must fail")
	}
}

func TestCheckUnconnectedBlock(t *testing.T) {
	d := New("x")
	_ = d.AddBlock("a", Readout, "")
	_ = d.AddBlock("b", ADC, "")
	_ = d.AddBlock("orphan", Controller, "")
	_ = d.Connect("n", "a.out", "b.in")
	if err := d.Check(); err == nil {
		t.Fatal("orphan block must fail checks")
	}
}

func TestCheckWEWithoutReadout(t *testing.T) {
	d := New("x")
	_ = d.AddBlock("WE", WorkingElectrode, "")
	_ = d.AddBlock("ctrl", Controller, "")
	_ = d.Connect("n", "WE.pin", "ctrl.x")
	if err := d.Check(); err == nil {
		t.Fatal("WE without a path to a readout must fail")
	}
}

func TestCheckREWithoutPotentiostat(t *testing.T) {
	d := New("x")
	_ = d.AddBlock("RE", ReferenceElectrode, "")
	_ = d.AddBlock("r", Readout, "")
	_ = d.Connect("n", "RE.pin", "r.in")
	if err := d.Check(); err == nil {
		t.Fatal("RE without a potentiostat must fail")
	}
}

func TestReachabilityThroughMux(t *testing.T) {
	d := New("x")
	_ = d.AddBlock("WE", WorkingElectrode, "")
	_ = d.AddBlock("mux", Multiplexer, "")
	_ = d.AddBlock("r", Readout, "")
	_ = d.Connect("n1", "WE.pin", "mux.in1")
	_ = d.Connect("n2", "mux.out", "r.in")
	if err := d.Check(); err != nil {
		t.Fatalf("WE must reach the readout through the mux: %v", err)
	}
}

func TestBlocksOf(t *testing.T) {
	d := fig1(t)
	if n := len(d.BlocksOf(WorkingElectrode)); n != 1 {
		t.Fatalf("%d WEs", n)
	}
	if n := len(d.BlocksOf(Multiplexer)); n != 0 {
		t.Fatalf("%d muxes", n)
	}
}

func TestDOTOutput(t *testing.T) {
	dot := fig1(t).DOT()
	for _, frag := range []string{"digraph", "\"pstat\"", "\"WE\"", "->"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q", frag)
		}
	}
}

func TestASCIIOutput(t *testing.T) {
	txt := fig1(t).ASCII()
	for _, frag := range []string{"Blocks:", "Nets:", "potentiostat", "WE"} {
		if !strings.Contains(txt, frag) {
			t.Errorf("ASCII missing %q", frag)
		}
	}
}

func TestMultiPinNetDOT(t *testing.T) {
	d := New("x")
	_ = d.AddBlock("a", Readout, "")
	_ = d.AddBlock("b", ADC, "")
	_ = d.AddBlock("c", Controller, "")
	_ = d.Connect("bus", "a.o", "b.i", "c.i")
	dot := d.DOT()
	if !strings.Contains(dot, "junction_bus") {
		t.Fatal("multi-pin nets must render a junction node")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []BlockKind{VoltageGenerator, Potentiostat, WorkingElectrode,
		ReferenceElectrode, CounterElectrode, Multiplexer, Readout, ADC, Controller}
	for _, k := range kinds {
		if s := k.String(); s == "" || strings.HasPrefix(s, "BlockKind(") {
			t.Errorf("kind %d lacks a label", k)
		}
	}
}
