package netlist

import (
	"fmt"
	"strings"
)

// DOT renders the design as a Graphviz digraph with blocks as nodes and
// nets as edges (multi-pin nets become a small junction node).
func (d *Design) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", d.Title)
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, blk := range d.Blocks() {
		label := blk.Name
		if blk.Label != "" {
			label = fmt.Sprintf("%s\\n%s", blk.Name, blk.Label)
		}
		shape := "box"
		switch blk.Kind {
		case WorkingElectrode, ReferenceElectrode, CounterElectrode:
			shape = "circle"
		case Multiplexer:
			shape = "trapezium"
		case Controller:
			shape = "component"
		}
		fmt.Fprintf(&b, "  %q [label=%q, shape=%s];\n", blk.Name, label, shape)
	}
	for _, n := range d.Nets() {
		blocks := pinBlocks(n)
		if len(blocks) == 2 {
			fmt.Fprintf(&b, "  %q -> %q [label=%q, dir=none];\n", blocks[0], blocks[1], n.Name)
			continue
		}
		j := "junction_" + n.Name
		fmt.Fprintf(&b, "  %q [shape=point, label=\"\"];\n", j)
		for _, blk := range blocks {
			fmt.Fprintf(&b, "  %q -> %q [label=%q, dir=none];\n", blk, j, n.Name)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func pinBlocks(n *Net) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range n.Pins {
		blk, _, _ := splitPin(p)
		if !seen[blk] {
			seen[blk] = true
			out = append(out, blk)
		}
	}
	return out
}

// ASCII renders a compact text diagram: the block inventory grouped by
// kind followed by the net wiring — the form the cmd tools print.
func (d *Design) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", d.Title)
	b.WriteString("Blocks:\n")
	for _, blk := range d.Blocks() {
		if blk.Label != "" {
			fmt.Fprintf(&b, "  [%-12s] %-14s %s\n", blk.Kind, blk.Name, blk.Label)
		} else {
			fmt.Fprintf(&b, "  [%-12s] %s\n", blk.Kind, blk.Name)
		}
	}
	b.WriteString("Nets:\n")
	for _, n := range d.Nets() {
		fmt.Fprintf(&b, "  %-14s %s\n", n.Name, strings.Join(n.Pins, " — "))
	}
	return b.String()
}
