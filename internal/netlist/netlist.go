// Package netlist is the structural model of a platform: blocks with
// typed ports wired by nets. The platform explorer synthesizes a
// netlist for every candidate design; the emitters render the building-
// block diagrams of the paper (Figs. 1, 2 and 4) as DOT or ASCII.
package netlist

import (
	"fmt"
	"strings"
)

// BlockKind classifies the platform building blocks (paper Fig. 2).
type BlockKind int

const (
	// VoltageGenerator produces the fixed or sweep potential.
	VoltageGenerator BlockKind = iota
	// Potentiostat is the cell-potential control loop.
	Potentiostat
	// WorkingElectrode is a sensing electrode with its probe.
	WorkingElectrode
	// ReferenceElectrode is the cell reference.
	ReferenceElectrode
	// CounterElectrode closes the current loop.
	CounterElectrode
	// Multiplexer shares a readout among electrodes.
	Multiplexer
	// Readout is a current-to-voltage stage.
	Readout
	// ADC digitizes the readout output.
	ADC
	// Controller is the digital sequencer/processor.
	Controller
)

func (k BlockKind) String() string {
	switch k {
	case VoltageGenerator:
		return "vgen"
	case Potentiostat:
		return "potentiostat"
	case WorkingElectrode:
		return "WE"
	case ReferenceElectrode:
		return "RE"
	case CounterElectrode:
		return "CE"
	case Multiplexer:
		return "mux"
	case Readout:
		return "readout"
	case ADC:
		return "adc"
	case Controller:
		return "controller"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// Block is one platform component instance.
type Block struct {
	// Name is the unique instance name.
	Name string
	// Kind is the component class.
	Kind BlockKind
	// Label is a human-readable annotation for diagrams ("TIA ±10 µA").
	Label string
}

// Net is a named connection between block ports.
type Net struct {
	// Name is the unique net name.
	Name string
	// Pins lists "block.port" endpoints.
	Pins []string
}

// Design is a netlist under construction.
type Design struct {
	// Title names the design (diagram caption).
	Title  string
	blocks map[string]*Block
	order  []string
	nets   map[string]*Net
	netOrd []string
}

// New returns an empty design. Maps are pre-sized for the synthesized
// platforms (a dozen-odd blocks and nets each) so the explorer's
// per-candidate netlists build without rehashing.
func New(title string) *Design {
	return &Design{
		Title:  title,
		blocks: make(map[string]*Block, 16),
		order:  make([]string, 0, 16),
		nets:   make(map[string]*Net, 16),
		netOrd: make([]string, 0, 16),
	}
}

// AddBlock registers a block instance. Duplicate names are an error.
func (d *Design) AddBlock(name string, kind BlockKind, label string) error {
	if name == "" {
		return fmt.Errorf("netlist: empty block name")
	}
	if _, dup := d.blocks[name]; dup {
		return fmt.Errorf("netlist: duplicate block %q", name)
	}
	d.blocks[name] = &Block{Name: name, Kind: kind, Label: label}
	d.order = append(d.order, name)
	return nil
}

// Connect wires the given "block.port" pins with a named net. Every
// referenced block must exist.
func (d *Design) Connect(netName string, pins ...string) error {
	if netName == "" {
		return fmt.Errorf("netlist: empty net name")
	}
	if _, dup := d.nets[netName]; dup {
		return fmt.Errorf("netlist: duplicate net %q", netName)
	}
	if len(pins) < 2 {
		return fmt.Errorf("netlist: net %q needs at least two pins", netName)
	}
	for _, p := range pins {
		blk, _, ok := splitPin(p)
		if !ok {
			return fmt.Errorf("netlist: malformed pin %q (want block.port)", p)
		}
		if _, exists := d.blocks[blk]; !exists {
			return fmt.Errorf("netlist: net %q references unknown block %q", netName, blk)
		}
	}
	// The net keeps the variadic slice directly; callers hand over pin
	// lists they do not mutate afterwards.
	d.nets[netName] = &Net{Name: netName, Pins: pins}
	d.netOrd = append(d.netOrd, netName)
	return nil
}

func splitPin(p string) (block, port string, ok bool) {
	i := strings.LastIndex(p, ".")
	if i <= 0 || i == len(p)-1 {
		return "", "", false
	}
	return p[:i], p[i+1:], true
}

// Blocks returns the blocks in insertion order.
func (d *Design) Blocks() []*Block {
	out := make([]*Block, 0, len(d.order))
	for _, n := range d.order {
		out = append(out, d.blocks[n])
	}
	return out
}

// Nets returns the nets in insertion order.
func (d *Design) Nets() []*Net {
	out := make([]*Net, 0, len(d.netOrd))
	for _, n := range d.netOrd {
		out = append(out, d.nets[n])
	}
	return out
}

// BlocksOf returns blocks of the given kind in insertion order.
func (d *Design) BlocksOf(kind BlockKind) []*Block {
	var out []*Block
	for _, b := range d.Blocks() {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// Check runs design rules: every block wired, every working electrode
// reaches a readout through nets, exactly one potentiostat per
// reference electrode. The explorer synthesizes and checks a netlist
// per platform, so the whole pass runs on block indices over a handful
// of shared buffers rather than string-keyed maps per net.
func (d *Design) Check() error {
	if len(d.blocks) == 0 {
		return fmt.Errorf("netlist: empty design")
	}
	n := len(d.order)
	idx := make(map[string]int, n)
	for i, name := range d.order {
		idx[name] = i
	}
	// All fixed-size integer and boolean work buffers are carved from
	// two backings; only the edge list (sized by the degree sum) needs
	// its own allocation.
	intBack := make([]int, 4*n+1)
	deg := intBack[:n]
	offs := intBack[n : 2*n+1]
	fill := intBack[2*n+1 : 3*n+1]
	queue := intBack[3*n+1 : 3*n+1 : 4*n+1]
	boolBack := make([]bool, 2*n)
	wired := boolBack[:n]
	visited := boolBack[n:]
	blks := make([]int, 0, 8)
	collect := func(net *Net) []int {
		blks = blks[:0]
		for _, p := range net.Pins {
			b, _, _ := splitPin(p)
			i := idx[b]
			wired[i] = true
			dup := false
			for _, j := range blks {
				if j == i {
					dup = true
					break
				}
			}
			if !dup {
				blks = append(blks, i)
			}
		}
		return blks
	}
	for _, name := range d.netOrd {
		bs := collect(d.nets[name])
		for _, a := range bs {
			deg[a] += len(bs) - 1
		}
	}
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + deg[i]
	}
	edges := make([]int, offs[n])
	for _, name := range d.netOrd {
		bs := collect(d.nets[name])
		for _, a := range bs {
			for _, b := range bs {
				if a != b {
					edges[offs[a]+fill[a]] = b
					fill[a]++
				}
			}
		}
	}
	for i, name := range d.order {
		if !wired[i] {
			return fmt.Errorf("netlist: block %q is not connected", name)
		}
	}
	// Reachability: WE → readout via net adjacency (BFS over indices;
	// reachability is order-independent, so neighbours need no sorting).
	for i, name := range d.order {
		b := d.blocks[name]
		switch b.Kind {
		case WorkingElectrode:
			if !d.reaches(offs, edges, visited, queue, i, Readout) {
				return fmt.Errorf("netlist: working electrode %q has no path to a readout", b.Name)
			}
		case ReferenceElectrode:
			if !d.reaches(offs, edges, visited, queue, i, Potentiostat) {
				return fmt.Errorf("netlist: reference electrode %q has no path to a potentiostat", b.Name)
			}
		}
	}
	return nil
}

func (d *Design) reaches(offs, edges []int, visited []bool, queue []int, from int, kind BlockKind) bool {
	for i := range visited {
		visited[i] = false
	}
	visited[from] = true
	queue = append(queue[:0], from)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if d.blocks[d.order[cur]].Kind == kind {
			return true
		}
		for _, nb := range edges[offs[cur]:offs[cur+1]] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return false
}
