// Package trace provides sampled-signal containers for the acquisition
// chain: uniformly sampled time series of voltage or current, plus the
// X/Y series produced by cyclic voltammetry. It also offers CSV
// round-tripping so cmd tools can export data for plotting.
package trace

import (
	"errors"
	"fmt"
)

// Series is a uniformly sampled signal: Values[i] was taken at time
// Start + i·Dt. Unit is a free-form label ("A", "V") used in reports.
type Series struct {
	Start  float64
	Dt     float64
	Unit   string
	Values []float64
}

// ErrBadSeries marks structurally invalid series (non-positive Dt or no
// samples).
var ErrBadSeries = errors.New("trace: invalid series")

// NewSeries allocates a series of n samples with the given start time and
// sample interval.
func NewSeries(start, dt float64, n int, unit string) (*Series, error) {
	if dt <= 0 || n <= 0 {
		return nil, ErrBadSeries
	}
	return &Series{Start: start, Dt: dt, Unit: unit, Values: make([]float64, n)}, nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Time returns the timestamp of sample i.
func (s *Series) Time(i int) float64 { return s.Start + float64(i)*s.Dt }

// Times materializes all timestamps. Useful for fitting routines that
// want parallel slices.
func (s *Series) Times() []float64 {
	ts := make([]float64, len(s.Values))
	for i := range ts {
		ts[i] = s.Time(i)
	}
	return ts
}

// End returns the timestamp of the final sample, or Start when empty.
func (s *Series) End() float64 {
	if len(s.Values) == 0 {
		return s.Start
	}
	return s.Time(len(s.Values) - 1)
}

// At linearly interpolates the signal value at time t. Times outside the
// sampled span clamp to the first/last sample.
func (s *Series) At(t float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	pos := (t - s.Start) / s.Dt
	if pos <= 0 {
		return s.Values[0]
	}
	if pos >= float64(len(s.Values)-1) {
		return s.Values[len(s.Values)-1]
	}
	i := int(pos)
	frac := pos - float64(i)
	return s.Values[i]*(1-frac) + s.Values[i+1]*frac
}

// Slice returns the sub-series covering [t0, t1] (inclusive of the
// samples whose timestamps fall in the window). The result shares no
// storage with s.
func (s *Series) Slice(t0, t1 float64) *Series {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	first := 0
	for first < len(s.Values) && s.Time(first) < t0 {
		first++
	}
	last := len(s.Values) - 1
	for last >= 0 && s.Time(last) > t1 {
		last--
	}
	out := &Series{Start: s.Time(first), Dt: s.Dt, Unit: s.Unit}
	if last >= first {
		out.Values = append([]float64(nil), s.Values[first:last+1]...)
	}
	return out
}

// Window returns the samples whose timestamps fall in [t0, t1] as a
// view into the series' own storage — Slice without the copy, for
// callers that only reduce the window (means, extrema) and never
// retain it.
func (s *Series) Window(t0, t1 float64) []float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	first := 0
	for first < len(s.Values) && s.Time(first) < t0 {
		first++
	}
	last := len(s.Values) - 1
	for last >= 0 && s.Time(last) > t1 {
		last--
	}
	if last < first {
		return nil
	}
	return s.Values[first : last+1]
}

// Map returns a new series with f applied to every sample (e.g. a
// transimpedance conversion). The time base is preserved.
func (s *Series) Map(f func(float64) float64, unit string) *Series {
	out := &Series{Start: s.Start, Dt: s.Dt, Unit: unit, Values: make([]float64, len(s.Values))}
	for i, v := range s.Values {
		out.Values[i] = f(v)
	}
	return out
}

// Tail returns the final fraction of the series (frac in (0,1]); used to
// measure steady-state statistics. frac outside the range returns the
// whole series.
func (s *Series) Tail(frac float64) []float64 {
	if frac <= 0 || frac > 1 || len(s.Values) == 0 {
		return s.Values
	}
	n := int(float64(len(s.Values)) * frac)
	if n < 1 {
		n = 1
	}
	return s.Values[len(s.Values)-n:]
}

// String summarizes the series for logs.
func (s *Series) String() string {
	return fmt.Sprintf("Series[%d samples @ %.4gs, %s]", len(s.Values), s.Dt, s.Unit)
}

// XY is a paired-sample record, e.g. a voltammogram (X = potential,
// Y = current) or a calibration curve (X = concentration, Y = response).
type XY struct {
	XUnit, YUnit string
	X, Y         []float64
}

// NewXY allocates an empty XY with the given axis labels.
func NewXY(xUnit, yUnit string) *XY {
	return &XY{XUnit: xUnit, YUnit: yUnit}
}

// Append adds one point.
func (p *XY) Append(x, y float64) {
	p.X = append(p.X, x)
	p.Y = append(p.Y, y)
}

// Len returns the number of points.
func (p *XY) Len() int { return len(p.X) }

// Validate checks structural consistency.
func (p *XY) Validate() error {
	if len(p.X) != len(p.Y) {
		return fmt.Errorf("trace: XY length mismatch %d vs %d", len(p.X), len(p.Y))
	}
	return nil
}
