package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func mustSeries(t *testing.T, start, dt float64, vals []float64) *Series {
	t.Helper()
	s, err := NewSeries(start, dt, len(vals), "A")
	if err != nil {
		t.Fatal(err)
	}
	copy(s.Values, vals)
	return s
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries(0, 0, 5, "A"); err != ErrBadSeries {
		t.Error("zero dt must fail")
	}
	if _, err := NewSeries(0, 0.1, 0, "A"); err != ErrBadSeries {
		t.Error("zero length must fail")
	}
}

func TestTimeAccessors(t *testing.T) {
	s := mustSeries(t, 10, 0.5, []float64{1, 2, 3})
	if s.Time(0) != 10 || s.Time(2) != 11 {
		t.Fatalf("times wrong: %g %g", s.Time(0), s.Time(2))
	}
	if s.End() != 11 {
		t.Fatalf("end %g", s.End())
	}
	ts := s.Times()
	if len(ts) != 3 || ts[1] != 10.5 {
		t.Fatalf("Times: %v", ts)
	}
}

func TestAtInterpolation(t *testing.T) {
	s := mustSeries(t, 0, 1, []float64{0, 10, 20})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1.5, 15}, {2, 20}, {5, 20},
	}
	for _, c := range cases {
		if got := s.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestSlice(t *testing.T) {
	s := mustSeries(t, 0, 1, []float64{0, 1, 2, 3, 4, 5})
	sub := s.Slice(1.5, 4.2)
	if sub.Len() != 3 || sub.Values[0] != 2 || sub.Values[2] != 4 {
		t.Fatalf("slice: %+v", sub)
	}
	if sub.Start != 2 {
		t.Fatalf("slice start %g", sub.Start)
	}
	// Mutating the slice must not touch the parent.
	sub.Values[0] = 99
	if s.Values[2] == 99 {
		t.Fatal("Slice shares storage with parent")
	}
}

func TestMap(t *testing.T) {
	s := mustSeries(t, 0, 1, []float64{1, 2})
	m := s.Map(func(v float64) float64 { return -v * 2 }, "V")
	if m.Unit != "V" || m.Values[0] != -2 || m.Values[1] != -4 {
		t.Fatalf("map: %+v", m)
	}
}

func TestTail(t *testing.T) {
	s := mustSeries(t, 0, 1, []float64{1, 2, 3, 4, 5})
	tail := s.Tail(0.4)
	if len(tail) != 2 || tail[0] != 4 {
		t.Fatalf("tail: %v", tail)
	}
	if len(s.Tail(0)) != 5 {
		t.Fatal("frac 0 should return all")
	}
	if len(s.Tail(0.01)) != 1 {
		t.Fatal("tiny frac returns at least one sample")
	}
}

func TestXY(t *testing.T) {
	p := NewXY("V", "A")
	p.Append(1, 2)
	p.Append(3, 4)
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.X = append(p.X, 9)
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched XY must fail validation")
	}
}

func TestSeriesCSVRoundTrip(t *testing.T) {
	s := mustSeries(t, 1.5, 0.25, []float64{0.5, -1.25, 3})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Start != s.Start || math.Abs(back.Dt-s.Dt) > 1e-12 || back.Unit != "A" {
		t.Fatalf("metadata: %+v", back)
	}
	for i := range s.Values {
		if back.Values[i] != s.Values[i] {
			t.Fatalf("value %d: %g vs %g", i, back.Values[i], s.Values[i])
		}
	}
}

func TestXYCSVRoundTrip(t *testing.T) {
	p := NewXY("V", "A")
	p.Append(0.1, -2e-9)
	p.Append(0.2, 3e-9)
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadXYCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.XUnit != "V" || back.YUnit != "A" || back.Len() != 2 || back.Y[1] != 3e-9 {
		t.Fatalf("XY round trip: %+v", back)
	}
}

func TestReadSeriesCSVRejectsNonUniform(t *testing.T) {
	csv := "time_s,value_A\n0,1\n1,2\n3,3\n"
	if _, err := ReadSeriesCSV(bytes.NewBufferString(csv)); err == nil {
		t.Fatal("non-uniform sampling must fail")
	}
}

// Property: At() is exact at sample points.
func TestAtExactAtSamplesProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s, err := NewSeries(0, 0.5, len(vals), "x")
		if err != nil {
			return false
		}
		copy(s.Values, vals)
		for i := range vals {
			if s.At(s.Time(i)) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
