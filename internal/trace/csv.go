package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV encodes the series as two columns, time and value, with a
// header row naming the units.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "value_" + s.Unit}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{
			strconv.FormatFloat(s.Time(i), 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV decodes a series written by WriteCSV. The sample interval
// is inferred from the first two rows; the series must be uniformly
// sampled.
func ReadSeriesCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 3 {
		return nil, fmt.Errorf("trace: CSV needs a header and ≥2 samples, got %d rows", len(recs))
	}
	unit := ""
	if len(recs[0]) == 2 {
		const pfx = "value_"
		if len(recs[0][1]) > len(pfx) {
			unit = recs[0][1][len(pfx):]
		}
	}
	times := make([]float64, 0, len(recs)-1)
	vals := make([]float64, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		if len(rec) != 2 {
			return nil, fmt.Errorf("trace: CSV row has %d fields, want 2", len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", rec[0], err)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad value %q: %w", rec[1], err)
		}
		times = append(times, t)
		vals = append(vals, v)
	}
	dt := times[1] - times[0]
	if dt <= 0 {
		return nil, ErrBadSeries
	}
	for i := 2; i < len(times); i++ {
		if d := times[i] - times[i-1]; d < 0.999*dt || d > 1.001*dt {
			return nil, fmt.Errorf("trace: non-uniform sampling at row %d", i)
		}
	}
	return &Series{Start: times[0], Dt: dt, Unit: unit, Values: vals}, nil
}

// WriteCSV encodes the XY as two columns with a unit header.
func (p *XY) WriteCSV(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{p.XUnit, p.YUnit}); err != nil {
		return err
	}
	for i := range p.X {
		rec := []string{
			strconv.FormatFloat(p.X[i], 'g', -1, 64),
			strconv.FormatFloat(p.Y[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadXYCSV decodes an XY written by WriteCSV.
func ReadXYCSV(r io.Reader) (*XY, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 1 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	p := &XY{}
	if len(recs[0]) == 2 {
		p.XUnit, p.YUnit = recs[0][0], recs[0][1]
	}
	for i, rec := range recs[1:] {
		if len(rec) != 2 {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields, want 2", i+1, len(rec))
		}
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, err
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, err
		}
		p.Append(x, y)
	}
	return p, nil
}
