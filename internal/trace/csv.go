package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteCSV encodes the series as two columns, time and value, with a
// header row naming the units. Series shorter than two samples are an
// error: ReadSeriesCSV infers the sample interval from the rows, so a
// 0- or 1-sample file could never be read back — write must imply
// readable.
func (s *Series) WriteCSV(w io.Writer) error {
	if len(s.Values) < 2 {
		return fmt.Errorf("trace: WriteCSV needs ≥2 samples to round-trip (Dt is inferred on read), got %d", len(s.Values))
	}
	// The same write-implies-readable contract covers the grid itself:
	// a non-finite Start/Dt, or a Dt below the float resolution at
	// Start (every timestamp formatting identically), would produce a
	// file ReadSeriesCSV rejects.
	last := s.Time(len(s.Values) - 1)
	if math.IsNaN(s.Start) || math.IsInf(s.Start, 0) ||
		math.IsNaN(s.Dt) || math.IsInf(s.Dt, 0) || s.Dt <= 0 ||
		math.IsInf(last, 0) || !(last > s.Start) {
		return fmt.Errorf("trace: WriteCSV needs a finite, strictly increasing time grid to round-trip (start %g, dt %g, %d samples)", s.Start, s.Dt, len(s.Values))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "value_" + s.Unit}); err != nil {
		return err
	}
	for i, v := range s.Values {
		rec := []string{
			strconv.FormatFloat(s.Time(i), 'g', -1, 64),
			strconv.FormatFloat(v, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV decodes a series written by WriteCSV. The sample interval
// is inferred from the first two rows; the series must be uniformly
// sampled.
func ReadSeriesCSV(r io.Reader) (*Series, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 3 {
		return nil, fmt.Errorf("trace: CSV needs a header and ≥2 samples, got %d rows", len(recs))
	}
	unit := ""
	if len(recs[0]) == 2 {
		const pfx = "value_"
		if len(recs[0][1]) > len(pfx) {
			unit = recs[0][1][len(pfx):]
		}
	}
	times := make([]float64, 0, len(recs)-1)
	vals := make([]float64, 0, len(recs)-1)
	for _, rec := range recs[1:] {
		if len(rec) != 2 {
			return nil, fmt.Errorf("trace: CSV row has %d fields, want 2", len(rec))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad time %q: %w", rec[0], err)
		}
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("trace: non-finite time %q", rec[0])
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad value %q: %w", rec[1], err)
		}
		times = append(times, t)
		vals = append(vals, v)
	}
	// Infer Dt from the endpoints — the exact slope of a uniform grid.
	// The first row pair alone carries the full rounding error of
	// Start+Dt, which matters when Start is large relative to Dt (a
	// day-long drift trace sampled at 1 ms).
	n := len(times)
	dt := (times[n-1] - times[0]) / float64(n-1)
	if dt <= 0 || math.IsInf(dt, 0) {
		// dt can overflow to +Inf for finite-but-extreme endpoints
		// (±1e308); that is no more a grid than a non-positive step.
		return nil, ErrBadSeries
	}
	// Check uniformity against the reconstructed grid times[0]+i·dt
	// with an absolute tolerance. A row-to-row ratio test falsely
	// rejects genuine grids once float rounding of Start+i·Dt
	// approaches 0.1% of Dt; the grid comparison bounds the deviation
	// of every row at once, and the tolerance — 0.1% of Dt plus a few
	// ulps of the timestamp magnitude — covers rounding at any
	// Start/Dt ratio while still rejecting genuinely non-uniform
	// sampling.
	tol := 1e-3*dt + 64*ulp(math.Max(math.Abs(times[0]), math.Abs(times[n-1])))
	for i, ti := range times {
		if math.Abs(ti-(times[0]+float64(i)*dt)) > tol {
			return nil, fmt.Errorf("trace: non-uniform sampling at row %d", i+2)
		}
	}
	return &Series{Start: times[0], Dt: dt, Unit: unit, Values: vals}, nil
}

// ulp returns the distance from |x| to the next larger float64 — the
// unit of rounding error at x's magnitude.
func ulp(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}

// WriteCSV encodes the XY as two columns with a unit header.
func (p *XY) WriteCSV(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{p.XUnit, p.YUnit}); err != nil {
		return err
	}
	for i := range p.X {
		rec := []string{
			strconv.FormatFloat(p.X[i], 'g', -1, 64),
			strconv.FormatFloat(p.Y[i], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadXYCSV decodes an XY written by WriteCSV.
func ReadXYCSV(r io.Reader) (*XY, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < 1 {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	p := &XY{}
	if len(recs[0]) == 2 {
		p.XUnit, p.YUnit = recs[0][0], recs[0][1]
	}
	for i, rec := range recs[1:] {
		// Row numbers are 1-based counting the header, so data row i
		// of recs[1:] is file row i+2.
		if len(rec) != 2 {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields, want 2", i+2, len(rec))
		}
		x, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad x %q: %w", i+2, rec[0], err)
		}
		y, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: bad y %q: %w", i+2, rec[1], err)
		}
		p.Append(x, y)
	}
	return p, nil
}
