package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestSeriesCSVLargeStart is the regression for the float-rounding
// false reject: a day-long monitoring trace sampled at 1 ms has
// Start/Dt ≈ 9e7, so the rounding of Start+i·Dt approaches the old
// 0.1% row-to-row band and long uniform traces were refused as
// "non-uniform sampling". The grid-based check must accept them.
func TestSeriesCSVLargeStart(t *testing.T) {
	cases := []struct {
		name      string
		start, dt float64
		n         int
	}{
		{"day-long drift at 1 ms", 86400, 1e-3, 5000},
		{"week-long at 10 ms", 7 * 86400, 1e-2, 3000},
		{"microsecond steps late in a run", 3600, 1e-6, 2000},
		{"zero start control", 0, 1e-3, 5000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSeries(tc.start, tc.dt, tc.n, "A")
			if err != nil {
				t.Fatal(err)
			}
			for i := range s.Values {
				s.Values[i] = float64(i%7) - 3
			}
			var buf bytes.Buffer
			if err := s.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := ReadSeriesCSV(&buf)
			if err != nil {
				t.Fatalf("uniform series rejected: %v", err)
			}
			if back.Start != s.Start {
				t.Fatalf("Start: %g vs %g", back.Start, s.Start)
			}
			if math.Abs(back.Dt-s.Dt) > 1e-9*s.Dt {
				t.Fatalf("Dt: %g vs %g", back.Dt, s.Dt)
			}
			for i := range s.Values {
				if back.Values[i] != s.Values[i] {
					t.Fatalf("value %d: %g vs %g", i, back.Values[i], s.Values[i])
				}
			}
		})
	}
}

// TestReadSeriesCSVStillRejectsNonUniform pins that the absolute-
// epsilon check keeps rejecting genuinely non-uniform grids, including
// ones the old row-to-row test caught.
func TestReadSeriesCSVStillRejectsNonUniform(t *testing.T) {
	cases := []struct{ name, csv string }{
		{"doubled step", "time_s,value_A\n0,1\n1,2\n3,3\n"},
		{"one percent jitter", "time_s,value_A\n0,1\n1,2\n2.01,3\n3,4\n"},
		{"large start jitter", "time_s,value_A\n86400,1\n86400.001,2\n86400.0021,3\n86400.003,4\n"},
		{"reversed time", "time_s,value_A\n1,1\n0,2\n-1,3\n"},
		{"repeated time", "time_s,value_A\n1,1\n1,2\n1,3\n"},
		// Finite endpoints whose span overflows float64: dt would be
		// +Inf and the tolerance check vacuous without the guard.
		{"dt overflow", "time_s,value_A\n-1e308,1\n1e308,2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadSeriesCSV(strings.NewReader(tc.csv)); err == nil {
				t.Fatal("non-uniform sampling must fail")
			}
		})
	}
}

// TestWriteCSVShortSeries pins the write-implies-readable contract:
// series that ReadSeriesCSV could never decode (fewer than the two
// rows needed to infer Dt) must be refused at write time rather than
// silently producing an unreadable file.
func TestWriteCSVShortSeries(t *testing.T) {
	for _, n := range []int{0, 1} {
		s := &Series{Start: 0, Dt: 0.1, Unit: "A", Values: make([]float64, n)}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err == nil {
			t.Fatalf("%d-sample series must fail WriteCSV", n)
		}
		if buf.Len() != 0 {
			t.Fatalf("%d-sample series wrote %d bytes before failing", n, buf.Len())
		}
	}
	// Two samples is the floor: write then read back.
	s := mustSeries(t, 0, 0.1, []float64{1, 2})
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestWriteCSVBadGrid extends write-implies-readable to the grid
// itself: time bases ReadSeriesCSV could never decode must be refused
// at write time.
func TestWriteCSVBadGrid(t *testing.T) {
	cases := []struct {
		name      string
		start, dt float64
	}{
		{"collapsed grid (dt below float resolution at start)", 1e9, 1e-9},
		{"NaN start", math.NaN(), 0.1},
		{"Inf start", math.Inf(1), 0.1},
		{"Inf dt", 0, math.Inf(1)},
		{"zero dt", 0, 0},
		{"negative dt", 0, -0.1},
		{"grid overflows to Inf", 1e308, 1e308},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Series{Start: tc.start, Dt: tc.dt, Unit: "A", Values: make([]float64, 3)}
			var buf bytes.Buffer
			if err := s.WriteCSV(&buf); err == nil {
				t.Fatalf("unreadable grid (start %g, dt %g) must fail WriteCSV", tc.start, tc.dt)
			}
		})
	}
}

// TestReadSeriesCSVNonFiniteTime: a time column that parses to ±Inf
// cannot define a grid and must error instead of yielding a NaN Dt.
func TestReadSeriesCSVNonFiniteTime(t *testing.T) {
	csv := "time_s,value_A\n0,1\n+Inf,2\n1,3\n"
	if _, err := ReadSeriesCSV(strings.NewReader(csv)); err == nil {
		t.Fatal("non-finite time must fail")
	}
}

// TestReadXYCSVRowErrors pins the row numbering (1-based counting the
// header, so the first data row is row 2) and the wrapped value-parse
// context.
func TestReadXYCSVRowErrors(t *testing.T) {
	cases := []struct{ name, csv, want string }{
		// Rows with a field count differing from the header are caught
		// by csv.Reader itself; our check fires on files that are
		// consistently not two columns wide.
		{"three columns", "V,A,extra\n0.1,1,9\n", "row 2"},
		{"one column", "V\n0.1\n0.2\n", "row 2"},
		{"bad x", "V,A\n0.1,1\nnope,2\n", `row 3: bad x "nope"`},
		{"bad y", "V,A\n0.1,1\n0.2,nope\n", `row 3: bad y "nope"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadXYCSV(strings.NewReader(tc.csv))
			if err == nil {
				t.Fatal("malformed CSV must fail")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

// floatEq compares round-tripped values: exact bits, except NaN (the
// CSV text "NaN" carries no payload or sign, so any NaN matches).
func floatEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// FuzzSeriesCSV: any series WriteCSV accepts must be decodable by
// ReadSeriesCSV with the same start, values, and a Dt within rounding
// of the original — write implies readable at every Start/Dt ratio the
// fuzzer can reach.
func FuzzSeriesCSV(f *testing.F) {
	f.Add(0.0, 0.1, 16, uint8(1), "A")
	f.Add(86400.0, 1e-3, 512, uint8(3), "V")
	f.Add(7*86400.0, 1e-2, 300, uint8(7), "µA")
	f.Add(1.5, 0.25, 3, uint8(0), "unit,with\"quotes")
	f.Add(-10.0, 1e-6, 2, uint8(9), "")

	f.Fuzz(func(t *testing.T, start, dt float64, n int, valSeed uint8, unit string) {
		// Constrain to grids whose timestamps stay finite and whose
		// text form is unambiguous; everything inside the range must
		// round-trip.
		if math.IsNaN(start) || math.IsInf(start, 0) || math.Abs(start) > 1e12 {
			t.Skip()
		}
		if !(dt > 1e-9 && dt < 1e6) {
			t.Skip()
		}
		if n < 2 || n > 2048 {
			t.Skip()
		}
		// The csv reader reduces \r\n to \n inside quoted fields, so a
		// unit containing \r cannot round-trip byte-for-byte.
		if strings.Contains(unit, "\r") {
			t.Skip()
		}
		s, err := NewSeries(start, dt, n, unit)
		if err != nil {
			t.Skip()
		}
		// A Dt below the float resolution at Start collapses the grid
		// (every timestamp rounds to the same float); nothing could
		// represent that series, so it is out of contract.
		if s.Time(n-1) <= s.Time(0) {
			t.Skip()
		}
		for i := range s.Values {
			s.Values[i] = float64(int(valSeed)+i%11) * 0.37
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV(%v): %v", s, err)
		}
		back, err := ReadSeriesCSV(&buf)
		if err != nil {
			t.Fatalf("ReadSeriesCSV rejected its own writer's output (start=%g dt=%g n=%d): %v", start, dt, n, err)
		}
		if back.Start != s.Time(0) {
			t.Fatalf("Start: %g vs %g", back.Start, s.Time(0))
		}
		// Dt is recovered from the endpoints: exact up to the float
		// quantization of the timestamps themselves.
		scale := math.Max(math.Abs(s.Time(0)), math.Abs(s.Time(n-1)))
		ulp := math.Nextafter(scale, math.Inf(1)) - scale
		if math.Abs(back.Dt-dt) > 1e-9*dt+2*ulp {
			t.Fatalf("Dt: %g vs %g", back.Dt, dt)
		}
		if back.Unit != unit {
			t.Fatalf("Unit: %q vs %q", back.Unit, unit)
		}
		if len(back.Values) != n {
			t.Fatalf("len: %d vs %d", len(back.Values), n)
		}
		for i := range s.Values {
			if back.Values[i] != s.Values[i] {
				t.Fatalf("value %d: %g vs %g", i, back.Values[i], s.Values[i])
			}
		}
	})
}

// FuzzXYCSV: WriteCSV ∘ ReadXYCSV is the identity on XY records,
// including non-finite sample values (the CSV text "NaN"/"±Inf" round-
// trips) and units that need CSV quoting.
func FuzzXYCSV(f *testing.F) {
	f.Add("V", "A", 0.1, -2e-9, 0.2, 3e-9, 4)
	f.Add("", "", 0.0, 0.0, 0.0, 0.0, 0)
	f.Add("x,unit", "y\nunit", math.NaN(), math.Inf(1), math.Inf(-1), -0.0, 7)
	f.Add("mM", "µA", 1e308, -1e308, 5e-324, 1.0, 33)

	f.Fuzz(func(t *testing.T, xUnit, yUnit string, x0, y0, dx, dy float64, n int) {
		if n < 0 || n > 2048 {
			t.Skip()
		}
		// \r cannot round-trip through quoted csv fields (the reader
		// folds \r\n to \n).
		if strings.Contains(xUnit, "\r") || strings.Contains(yUnit, "\r") {
			t.Skip()
		}
		p := NewXY(xUnit, yUnit)
		for i := 0; i < n; i++ {
			p.Append(x0+float64(i)*dx, y0+float64(i)*dy)
		}
		var buf bytes.Buffer
		if err := p.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		back, err := ReadXYCSV(&buf)
		if err != nil {
			t.Fatalf("ReadXYCSV rejected its own writer's output: %v", err)
		}
		if back.XUnit != xUnit || back.YUnit != yUnit {
			t.Fatalf("units: %q/%q vs %q/%q", back.XUnit, back.YUnit, xUnit, yUnit)
		}
		if back.Len() != p.Len() {
			t.Fatalf("len: %d vs %d", back.Len(), p.Len())
		}
		for i := 0; i < p.Len(); i++ {
			if !floatEq(back.X[i], p.X[i]) || !floatEq(back.Y[i], p.Y[i]) {
				t.Fatalf("point %d: (%g,%g) vs (%g,%g)", i, back.X[i], back.Y[i], p.X[i], p.Y[i])
			}
		}
	})
}
