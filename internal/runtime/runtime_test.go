package runtime

import (
	"math"
	"strings"
	"testing"

	"advdiag/internal/core"
	"advdiag/internal/enzyme"
)

// TestSampleSeedIndependence: distinct indexes over one base must give
// distinct seeds (the splitmix64 mix is a bijection per base), and the
// same (base, idx) pair must be stable.
func TestSampleSeedIndependence(t *testing.T) {
	seen := map[uint64]int{}
	for idx := 0; idx < 4096; idx++ {
		s := SampleSeed(42, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("indexes %d and %d collide on seed %016x", prev, idx, s)
		}
		seen[s] = idx
	}
	if SampleSeed(42, 7) != SampleSeed(42, 7) {
		t.Fatal("SampleSeed is not a pure function")
	}
	if SampleSeed(42, 7) == SampleSeed(43, 7) {
		t.Fatal("base seed does not reach the mix")
	}
}

// TestValidateSample pins the validation contract the public entry
// points rely on.
func TestValidateSample(t *testing.T) {
	bad := []map[string]float64{
		{"glucose": math.NaN()},
		{"glucose": math.Inf(1)},
		{"glucose": math.Inf(-1)},
		{"glucose": -0.1},
		{"glucose": 2 * MaxSampleConcentrationMM},
		{"unobtainium": 1},
	}
	for i, s := range bad {
		if err := ValidateSample(s); err == nil {
			t.Errorf("case %d (%v) must fail", i, s)
		}
	}
	good := []map[string]float64{
		nil,
		{},
		{"glucose": 0},
		{"glucose": 2, "dopamine": 0.05},
	}
	for i, s := range good {
		if err := ValidateSample(s); err != nil {
			t.Errorf("case %d (%v) must pass: %v", i, s, err)
		}
	}
}

// TestMergeReplicas: single readings pass through untouched, replicate
// readings average with a (×k) electrode label, and order follows first
// appearance.
func TestMergeReplicas(t *testing.T) {
	in := []Reading{
		{Target: "glucose", WE: "WE1", MeasuredMicroAmps: 2, EstimatedMM: 1.0},
		{Target: "lactate", WE: "WE2", MeasuredMicroAmps: 5, EstimatedMM: 0.5},
		{Target: "glucose", WE: "WE3", MeasuredMicroAmps: 4, EstimatedMM: 3.0},
	}
	out := MergeReplicas(in)
	if len(out) != 2 {
		t.Fatalf("got %d readings, want 2", len(out))
	}
	g := out[0]
	if g.Target != "glucose" || g.MeasuredMicroAmps != 3 || g.EstimatedMM != 2 {
		t.Fatalf("merged glucose reading %+v", g)
	}
	if !strings.Contains(g.WE, "(×2)") {
		t.Fatalf("merged WE label %q lacks the replica count", g.WE)
	}
	if out[1].Target != "lactate" || out[1].MeasuredMicroAmps != 5 {
		t.Fatalf("singleton reading changed: %+v", out[1])
	}
	if got := MergeReplicas(nil); got != nil {
		t.Fatalf("empty input must stay empty, got %v", got)
	}
}

// TestInvertEffective covers the saturation inversion's clamps.
func TestInvertEffective(t *testing.T) {
	b := &enzyme.Binding{Km: 2}
	if got := InvertEffective(b, 0); got != 0 {
		t.Fatalf("zero amplitude inverted to %g", got)
	}
	if got := InvertEffective(b, -1); got != 0 {
		t.Fatalf("negative amplitude inverted to %g", got)
	}
	// Within range: C = x·Km/(Km−x).
	if got := float64(InvertEffective(b, 1)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("InvertEffective(1) = %g, want 2", got)
	}
	// At/above saturation the inversion clamps instead of exploding.
	hi := float64(InvertEffective(b, 2))
	if math.IsInf(hi, 0) || math.IsNaN(hi) || hi < 0 {
		t.Fatalf("saturated inversion produced %g", hi)
	}
}

// TestExecutorEndToEnd: an Executor over a designed platform runs a
// panel deterministically and reports its targets and cache counters.
func TestExecutorEndToEnd(t *testing.T) {
	best, err := core.BestWith(core.Requirements{
		Targets: []core.TargetSpec{{Species: "glucose"}, {Species: "benzphetamine"}},
	}, core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := core.Synthesize(best)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(inner, 9)
	targets := e.Targets()
	if len(targets) != 2 || targets[0] != "benzphetamine" || targets[1] != "glucose" {
		t.Fatalf("Targets() = %v", targets)
	}
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	_, misses := e.CacheCounts()
	if misses == 0 {
		t.Fatal("warm-up computed nothing")
	}
	sample := map[string]float64{"glucose": 1.2, "benzphetamine": 0.3}
	a, err := e.Run(sample, SampleSeed(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(sample, SampleSeed(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Readings) == 0 || len(a.Readings) != len(b.Readings) {
		t.Fatalf("panel readings: %d vs %d", len(a.Readings), len(b.Readings))
	}
	for i := range a.Readings {
		if a.Readings[i] != b.Readings[i] {
			t.Fatalf("reading %d not bit-reproducible: %+v vs %+v", i, a.Readings[i], b.Readings[i])
		}
	}
	c, err := e.Run(sample, SampleSeed(9, 1))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Readings {
		if a.Readings[i] != c.Readings[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different sample seeds produced identical noise draws")
	}
	hits, _ := e.CacheCounts()
	if hits == 0 {
		t.Fatal("panel runs never hit the warmed cache")
	}
	if _, err := e.Run(map[string]float64{"glucose": math.NaN()}, 1); err == nil {
		t.Fatal("invalid sample must fail")
	}
}
