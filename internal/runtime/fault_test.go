package runtime

import (
	"math"
	"testing"

	"advdiag/internal/core"
)

// faultExecutor builds a warmed two-target executor for the fouling
// tests.
func faultExecutor(t *testing.T) *Executor {
	t.Helper()
	best, err := core.BestWith(core.Requirements{
		Targets: []core.TargetSpec{{Species: "glucose"}, {Species: "benzphetamine"}},
	}, core.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := core.Synthesize(best)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(inner, 21)
	if err := e.Warm(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFoulingValidate(t *testing.T) {
	for _, sev := range []float64{0, -0.2, 1.001, math.NaN(), math.Inf(1)} {
		f := &Fouling{Severity: sev}
		if err := f.Validate(); err == nil {
			t.Fatalf("severity %g accepted", sev)
		}
	}
	if err := (&Fouling{Severity: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunFouledNilIsRun: the healthy path must be byte-identical to
// Run — fault injection is zero-cost when disabled.
func TestRunFouledNilIsRun(t *testing.T) {
	e := faultExecutor(t)
	sample := map[string]float64{"glucose": 1.1, "benzphetamine": 0.25}
	a, err := e.Run(sample, SampleSeed(21, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunFouled(sample, SampleSeed(21, 4), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Readings {
		if a.Readings[i] != b.Readings[i] {
			t.Fatalf("reading %d: nil fault diverged from Run: %+v vs %+v", i, a.Readings[i], b.Readings[i])
		}
	}
}

// TestRunFouledDeterministicAndTargeted: the same fault over the same
// panel perturbs identically; only the targeted species is touched;
// and the fouled estimate actually drifts from the healthy one.
func TestRunFouledDeterministicAndTargeted(t *testing.T) {
	e := faultExecutor(t)
	sample := map[string]float64{"glucose": 1.1, "benzphetamine": 0.25}
	seed := SampleSeed(21, 7)
	fault := &Fouling{Target: "glucose", Severity: 0.6, Seed: 99}

	healthy, err := e.Run(sample, seed)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := e.RunFouled(sample, seed, fault)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := e.RunFouled(sample, seed, fault)
	if err != nil {
		t.Fatal(err)
	}
	byTarget := func(p Panel, target string) Reading {
		for _, r := range p.Readings {
			if r.Target == target {
				return r
			}
		}
		t.Fatalf("no %s reading", target)
		return Reading{}
	}
	if a, b := byTarget(f1, "glucose"), byTarget(f2, "glucose"); a != b {
		t.Fatalf("fouled run not reproducible: %+v vs %+v", a, b)
	}
	if a, b := byTarget(f1, "benzphetamine"), byTarget(healthy, "benzphetamine"); a != b {
		t.Fatalf("untargeted species perturbed: %+v vs %+v", a, b)
	}
	hg, fg := byTarget(healthy, "glucose"), byTarget(f1, "glucose")
	if hg.EstimatedMM == fg.EstimatedMM {
		t.Fatal("severity-0.6 fouling left the glucose estimate unchanged")
	}
	if fg.EstimatedMM >= hg.EstimatedMM {
		t.Fatalf("fouling must lose sensitivity: fouled %g >= healthy %g", fg.EstimatedMM, hg.EstimatedMM)
	}

	// A different fault seed must draw a different perturbation.
	f3, err := e.RunFouled(sample, seed, &Fouling{Target: "glucose", Severity: 0.6, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if byTarget(f3, "glucose") == byTarget(f1, "glucose") {
		t.Fatal("different fault seeds drew identical perturbations")
	}
}

// TestFoulingEmptyTargetFoulsAll: an empty Target perturbs every
// species on the panel.
func TestFoulingEmptyTargetFoulsAll(t *testing.T) {
	e := faultExecutor(t)
	sample := map[string]float64{"glucose": 1.1, "benzphetamine": 0.25}
	seed := SampleSeed(21, 3)
	healthy, err := e.Run(sample, seed)
	if err != nil {
		t.Fatal(err)
	}
	fouled, err := e.RunFouled(sample, seed, &Fouling{Severity: 0.8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range healthy.Readings {
		if healthy.Readings[i].EstimatedMM == fouled.Readings[i].EstimatedMM {
			t.Fatalf("%s estimate unperturbed by all-target fouling", healthy.Readings[i].Target)
		}
	}
}
