package runtime

import (
	"math"
	"strings"
	"testing"
)

func TestMonitorSpecValidate(t *testing.T) {
	bad := []struct {
		name string
		spec MonitorSpec
	}{
		{"no target", MonitorSpec{ConcentrationMM: 1}},
		{"negative concentration", MonitorSpec{Target: "glucose", ConcentrationMM: -1}},
		{"NaN duration", MonitorSpec{Target: "glucose", ConcentrationMM: 1, DurationSeconds: math.NaN()}},
		{"negative duration", MonitorSpec{Target: "glucose", ConcentrationMM: 1, DurationSeconds: -4}},
		{"NaN baseline", MonitorSpec{Target: "glucose", ConcentrationMM: 1, BaselineSeconds: math.NaN()}},
		{"baseline swallows trace", MonitorSpec{Target: "glucose", ConcentrationMM: 1, DurationSeconds: 10, BaselineSeconds: 10}},
		{"infinite age", MonitorSpec{Target: "glucose", ConcentrationMM: 1, AgeHours: math.Inf(1)}},
		{"negative age", MonitorSpec{Target: "glucose", ConcentrationMM: 1, AgeHours: -1}},
		{"negative injection time", MonitorSpec{Target: "glucose", DurationSeconds: 10,
			Injections: []Injection{{AtSeconds: -1, DeltaMM: 1}}}},
		{"NaN injection delta", MonitorSpec{Target: "glucose", DurationSeconds: 10,
			Injections: []Injection{{AtSeconds: 2, DeltaMM: math.NaN()}}}},
		{"injection past trace end", MonitorSpec{Target: "glucose", DurationSeconds: 10,
			Injections: []Injection{{AtSeconds: 11, DeltaMM: 1}}}},
	}
	for _, tc := range bad {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := MonitorSpec{Target: "glucose", ConcentrationMM: 1, DurationSeconds: 10, BaselineSeconds: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// A zero duration selects the protocol default, so a baseline phase
	// shorter than the default validates and an injection inside the
	// default window validates.
	zero := MonitorSpec{Target: "glucose", ConcentrationMM: 1, BaselineSeconds: 5,
		Injections: []Injection{{AtSeconds: DefaultMonitorDurationSeconds / 2, DeltaMM: 0.5}}}
	if zero.effectiveDuration() != DefaultMonitorDurationSeconds {
		t.Fatalf("zero duration resolved to %g", zero.effectiveDuration())
	}
	if err := zero.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeMonitorTraceFlatBaseline(t *testing.T) {
	a, err := AnalyzeMonitorTrace([]float64{0, 1, 2, 3}, []float64{2, 4, 2, 4}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.BaselineMicroAmps != 3 || a.SteadyMicroAmps != 3 || !a.Settled {
		t.Fatalf("flat run analysis %+v, want mean 3 both levels, settled", a)
	}
}

// TestAnalyzeMonitorTraceTruncatesAtSecondInjection: with two
// injections the step analysis must describe only the first segment —
// a synthetic double step whose second rise would drag the steady
// level if it leaked in.
func TestAnalyzeMonitorTraceTruncatesAtSecondInjection(t *testing.T) {
	var times, amps []float64
	for i := 0; i < 400; i++ {
		tv := float64(i) * 0.1
		v := 1.0
		switch {
		case tv >= 20:
			v = 9 // second step — must be invisible to the analysis
		case tv >= 5:
			v = 3
		}
		times = append(times, tv)
		amps = append(amps, v)
	}
	inj := []Injection{{AtSeconds: 5, DeltaMM: 1}, {AtSeconds: 20, DeltaMM: 2}}
	a, err := AnalyzeMonitorTrace(times, amps, 0, inj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.BaselineMicroAmps-1) > 0.2 {
		t.Fatalf("baseline %g, want ~1", a.BaselineMicroAmps)
	}
	if math.Abs(a.SteadyMicroAmps-3) > 0.3 {
		t.Fatalf("steady %g, want ~3 (second injection leaked into the segment)", a.SteadyMicroAmps)
	}
}

func TestMonitorSeedIdentity(t *testing.T) {
	a := MonitorSeed(21, "campaign-a", 3)
	if b := MonitorSeed(21, "campaign-a", 3); a != b {
		t.Fatal("same identity drew different seeds")
	}
	if MonitorSeed(21, "campaign-b", 3) == a {
		t.Fatal("campaign ID not mixed into the seed")
	}
	if MonitorSeed(21, "campaign-a", 4) == a {
		t.Fatal("tick index not mixed into the seed")
	}
	if MonitorSeed(22, "campaign-a", 3) == a {
		t.Fatal("base seed not mixed into the seed")
	}
}

// TestRunMonitorTwoPhase: the two-phase protocol on a warmed executor
// is deterministic, records a full trace, and inverts the step back to
// a concentration near the presented one.
func TestRunMonitorTwoPhase(t *testing.T) {
	e := faultExecutor(t)
	mt := e.MonitorTargets()
	if len(mt) == 0 {
		t.Fatal("platform has no monitorable target")
	}
	// A minute-scale window: short traces do not settle, and the
	// unsettled step under-reads (the calibration inversion then reads
	// low — the protocol default exists for a reason).
	spec := MonitorSpec{
		Target:          mt[0],
		ConcentrationMM: 1.0,
		DurationSeconds: 60,
		BaselineSeconds: 10,
	}
	seed := MonitorSeed(e.Seed(), "qc", 0)
	a, err := e.RunMonitor(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.TimesSeconds) == 0 || len(a.TimesSeconds) != len(a.CurrentsMicroAmps) {
		t.Fatalf("trace shape %d/%d", len(a.TimesSeconds), len(a.CurrentsMicroAmps))
	}
	if a.StepMicroAmps <= 0 {
		t.Fatalf("two-phase step current %g ≤ 0", a.StepMicroAmps)
	}
	if a.EstimatedMM <= 0 || math.Abs(a.EstimatedMM-spec.ConcentrationMM) > 0.5 {
		t.Fatalf("estimate %g mM far from presented %g mM", a.EstimatedMM, spec.ConcentrationMM)
	}
	b, err := e.RunMonitor(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.CurrentsMicroAmps {
		if a.CurrentsMicroAmps[i] != b.CurrentsMicroAmps[i] {
			t.Fatalf("sample %d: repeat run diverged", i)
		}
	}
	if a.EstimatedMM != b.EstimatedMM {
		t.Fatal("repeat run changed the estimate")
	}
	// Film aging must cost sensitivity: an aged acquisition reads lower
	// than a fresh one, and the polymer film slows that decay.
	aged := spec
	aged.AgeHours = 400
	ar, err := e.RunMonitor(aged, seed)
	if err != nil {
		t.Fatal(err)
	}
	if ar.StepMicroAmps >= a.StepMicroAmps {
		t.Fatalf("aged film step %g ≥ fresh %g", ar.StepMicroAmps, a.StepMicroAmps)
	}
	poly := aged
	poly.Polymer = true
	pr, err := e.RunMonitor(poly, seed)
	if err != nil {
		t.Fatal(err)
	}
	if pr.StepMicroAmps <= ar.StepMicroAmps {
		t.Fatalf("polymer-stabilized aged step %g ≤ bare aged %g", pr.StepMicroAmps, ar.StepMicroAmps)
	}
}

// TestRunMonitorInjection: a Fig. 3 injection run starts from a clean
// chamber and steps when the bolus lands.
func TestRunMonitorInjection(t *testing.T) {
	e := faultExecutor(t)
	mt := e.MonitorTargets()
	if len(mt) == 0 {
		t.Fatal("platform has no monitorable target")
	}
	spec := MonitorSpec{
		Target:          mt[0],
		DurationSeconds: 8,
		Injections:      []Injection{{AtSeconds: 3, DeltaMM: 1}},
	}
	tr, err := e.RunMonitor(spec, MonitorSeed(e.Seed(), "inj", 0))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Analysis.SteadyMicroAmps <= tr.Analysis.BaselineMicroAmps {
		t.Fatalf("injection produced no step: baseline %g, steady %g",
			tr.Analysis.BaselineMicroAmps, tr.Analysis.SteadyMicroAmps)
	}
}

func TestRunMonitorRejects(t *testing.T) {
	e := faultExecutor(t)
	if _, err := e.RunMonitor(MonitorSpec{Target: "glucose", DurationSeconds: -1}, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// benzphetamine is served by cyclic voltammetry on this platform —
	// measurable in a panel, not monitorable.
	_, err := e.RunMonitor(MonitorSpec{Target: "benzphetamine", ConcentrationMM: 1, DurationSeconds: 8}, 1)
	if err == nil || !strings.Contains(err.Error(), "chronoamperometric") {
		t.Fatalf("CV target accepted for monitoring: %v", err)
	}
	if _, err := e.RunMonitor(MonitorSpec{Target: "unobtainium", ConcentrationMM: 1, DurationSeconds: 8}, 1); err == nil {
		t.Fatal("unknown target accepted for monitoring")
	}
}

func TestExecutorAccessors(t *testing.T) {
	e := faultExecutor(t)
	if e.Seed() != 21 {
		t.Fatalf("seed %d", e.Seed())
	}
	if e.Plan() == nil {
		t.Fatal("no acquisition plan")
	}
	tg, mt := e.Targets(), e.MonitorTargets()
	if len(tg) != 2 {
		t.Fatalf("targets %v", tg)
	}
	if len(mt) == 0 || len(mt) >= len(tg) {
		t.Fatalf("monitorable %v of %v: the CV target must not qualify", mt, tg)
	}
}
