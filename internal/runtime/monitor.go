package runtime

import (
	"fmt"
	"hash/fnv"
	"math"

	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
	"advdiag/internal/signalproc"
)

// DefaultMonitorDurationSeconds is the protocol-default monitoring
// duration selected by a zero duration (the paper's Fig. 3 runs are a
// minute-scale window).
const DefaultMonitorDurationSeconds = 60.0

// Injection is one concentration step added to the measurement chamber
// during continuous monitoring. The public advdiag.InjectionEvent
// converts from it field-for-field.
type Injection struct {
	// AtSeconds is the injection time from the start of monitoring.
	AtSeconds float64
	// DeltaMM is the concentration step in mM.
	DeltaMM float64
}

// ValidateInjections rejects injection lists no real protocol could
// execute: non-finite or negative injection times, non-finite
// concentration steps, and injections scheduled past the end of the
// trace. durationSeconds is the effective trace length (callers resolve
// a zero duration to the protocol default before validating).
func ValidateInjections(durationSeconds float64, injections []Injection) error {
	for i, inj := range injections {
		if math.IsNaN(inj.AtSeconds) || math.IsInf(inj.AtSeconds, 0) {
			return fmt.Errorf("advdiag: injection %d at t=%g s is not a finite time", i, inj.AtSeconds)
		}
		if inj.AtSeconds < 0 {
			return fmt.Errorf("advdiag: injection %d at t=%g s is before the trace starts", i, inj.AtSeconds)
		}
		if inj.AtSeconds > durationSeconds {
			return fmt.Errorf("advdiag: injection %d at t=%g s is past the %g s trace end", i, inj.AtSeconds, durationSeconds)
		}
		if math.IsNaN(inj.DeltaMM) || math.IsInf(inj.DeltaMM, 0) {
			return fmt.Errorf("advdiag: injection %d steps by %g mM, not a finite concentration", i, inj.DeltaMM)
		}
	}
	return nil
}

// MonitorAnalysis is the transient analysis of one monitoring trace.
// When the trace holds more than one injection, every field describes
// the FIRST injection's segment only (the trace truncated at the second
// injection time); the recorded series always covers the full run.
type MonitorAnalysis struct {
	// T90Seconds is the 90 % steady-state response time after the first
	// injection; TransientSeconds the time of maximum dV/dt.
	T90Seconds, TransientSeconds float64
	// BaselineMicroAmps and SteadyMicroAmps are the pre-stimulus and
	// settled levels of the analyzed segment.
	BaselineMicroAmps, SteadyMicroAmps float64
	// Settled reports whether the analyzed segment reached a flat
	// steady state.
	Settled bool
}

// stepThreshold is the fraction of the trace tail averaged for the
// steady-state level in AnalyzeStep (the historical Monitor contract).
const stepThreshold = 0.2

// AnalyzeMonitorTrace runs the shared transient analysis every
// monitoring surface (Sensor.Monitor, Executor.RunMonitor) applies to a
// recorded trace:
//
//   - no injection and no stimulus time: a flat baseline run — the
//     trace mean reports as both baseline and steady level, no
//     transient analysis is attempted, Settled is true;
//   - no injection but a positive stimulusSeconds (two-phase protocols:
//     the sample is introduced at the baseline-phase end): step
//     analysis anchored at the stimulus;
//   - one or more injections: step analysis anchored at the first
//     injection, with the analyzed segment truncated at the second
//     injection (the analysis contract of MonitorAnalysis).
func AnalyzeMonitorTrace(times, microAmps []float64, stimulusSeconds float64, injections []Injection) (MonitorAnalysis, error) {
	if len(injections) == 0 && stimulusSeconds <= 0 {
		mean := 0.0
		for _, v := range microAmps {
			mean += v
		}
		if len(microAmps) > 0 {
			mean /= float64(len(microAmps))
		}
		return MonitorAnalysis{
			BaselineMicroAmps: mean,
			SteadyMicroAmps:   mean,
			Settled:           true,
		}, nil
	}
	stim := stimulusSeconds
	aTimes, aCurs := times, microAmps
	if len(injections) > 0 {
		stim = injections[0].AtSeconds
		// The step analysis characterizes the FIRST injection, so
		// truncate the analysed segment at the second injection (if
		// any).
		if len(injections) > 1 {
			cut := len(times)
			for i, tv := range times {
				if tv >= injections[1].AtSeconds {
					cut = i
					break
				}
			}
			aTimes, aCurs = times[:cut], microAmps[:cut]
		}
	}
	step, err := signalproc.AnalyzeStep(aTimes, aCurs, stim, stepThreshold)
	if err != nil {
		return MonitorAnalysis{}, err
	}
	return MonitorAnalysis{
		T90Seconds:        step.T90,
		TransientSeconds:  step.TTransient,
		BaselineMicroAmps: step.Baseline,
		SteadyMicroAmps:   step.Steady,
		Settled:           step.Settled,
	}, nil
}

// MonitorSpec describes one continuous chronoamperometric acquisition
// on a platform electrode — the execution-layer twin of the public
// monitor request.
type MonitorSpec struct {
	// Target is the monitored metabolite; the platform must serve it
	// with a chronoamperometric (oxidase) electrode.
	Target string
	// ConcentrationMM is the concentration presented in the chamber
	// (introduced after the baseline phase under a two-phase protocol).
	// Zero with injections models a Fig. 3 injection experiment.
	ConcentrationMM float64
	// DurationSeconds is the trace length; zero selects the protocol
	// default (DefaultMonitorDurationSeconds).
	DurationSeconds float64
	// BaselineSeconds, when positive, runs the two-phase protocol: the
	// target is withheld until this time, and the baseline-subtracted
	// step current feeds the calibration estimate.
	BaselineSeconds float64
	// Injections are concentration steps during the run.
	Injections []Injection
	// AgeHours is the film age at acquisition time: sensitivity decays
	// as exp(−age/τ) — the drift long-term campaigns track.
	AgeHours float64
	// Polymer applies the paper's §III polymer stabilization (slows the
	// decay by electrode.PolymerStabilityGain).
	Polymer bool
}

// effectiveDuration resolves the zero-duration default.
func (s MonitorSpec) effectiveDuration() float64 {
	if s.DurationSeconds == 0 {
		return DefaultMonitorDurationSeconds
	}
	return s.DurationSeconds
}

// Validate checks the spec against the runtime input contract, so a
// spec that validates is a spec the execution engine will accept.
func (s MonitorSpec) Validate() error {
	if s.Target == "" {
		return fmt.Errorf("advdiag: monitor spec names no target")
	}
	if err := ValidateSample(map[string]float64{s.Target: s.ConcentrationMM}); err != nil {
		return err
	}
	if math.IsNaN(s.DurationSeconds) || math.IsInf(s.DurationSeconds, 0) {
		return fmt.Errorf("advdiag: monitoring duration %g s is not finite", s.DurationSeconds)
	}
	if s.DurationSeconds < 0 {
		return fmt.Errorf("advdiag: negative monitoring duration %g s", s.DurationSeconds)
	}
	dur := s.effectiveDuration()
	if math.IsNaN(s.BaselineSeconds) || math.IsInf(s.BaselineSeconds, 0) || s.BaselineSeconds < 0 {
		return fmt.Errorf("advdiag: baseline phase %g s is not a valid duration", s.BaselineSeconds)
	}
	if s.BaselineSeconds >= dur {
		return fmt.Errorf("advdiag: baseline phase %g s swallows the whole %g s trace", s.BaselineSeconds, dur)
	}
	if math.IsNaN(s.AgeHours) || math.IsInf(s.AgeHours, 0) || s.AgeHours < 0 {
		return fmt.Errorf("advdiag: film age %g h is not a valid age", s.AgeHours)
	}
	return ValidateInjections(dur, s.Injections)
}

// MonitorTrace is one executed monitoring acquisition: the recorded
// series, its transient analysis, and the calibration view of the step.
type MonitorTrace struct {
	// TimesSeconds and CurrentsMicroAmps are the full recorded series.
	TimesSeconds, CurrentsMicroAmps []float64
	// Analysis is the transient analysis (first-injection segment under
	// multiple injections — see MonitorAnalysis).
	Analysis MonitorAnalysis
	// StepMicroAmps is the baseline-subtracted step current: the
	// settled two-phase step under a baseline phase, otherwise the
	// analyzed segment's steady−baseline difference.
	StepMicroAmps float64
	// EstimatedMM inverts StepMicroAmps through the electrode's factory
	// calibration (the platform's cached Michaelis–Menten constants).
	// As the film ages the estimate drifts low — the signal long-term
	// campaigns recalibrate away.
	EstimatedMM float64
}

// RunMonitor executes one continuous monitoring acquisition on the
// platform's chronoamperometric electrode for spec.Target: an isolated
// three-electrode cell is built from the electrode's planned
// construction (the monitored patient occupies one chamber, not the
// whole panel), the film is aged to spec.AgeHours, and the trace is
// recorded and analyzed. Calibration state comes from the shared cache;
// the noise stream is seeded by the caller (schedulers derive it from
// campaign identity via MonitorSeed), so two calls with the same spec
// and seed are byte-identical on any goroutine, worker, or shard.
func (e *Executor) RunMonitor(spec MonitorSpec, seed uint64) (MonitorTrace, error) {
	if err := spec.Validate(); err != nil {
		return MonitorTrace{}, err
	}
	ep, err := e.monitorElectrode(spec.Target)
	if err != nil {
		return MonitorTrace{}, err
	}
	cal, err := e.calib.forElectrode(ep)
	if err != nil {
		return MonitorTrace{}, err
	}

	// A dedicated cell per run: the platform's shared electrode objects
	// must not be mutated (film age is per-acquisition state), so the
	// working electrode is rebuilt from its plan with the requested age.
	we := electrode.NewWorking(ep.Name, ep.Nano, ep.Assays[0])
	we.Func.PolymerStabilized = spec.Polymer
	we.Func.AgeSeconds = spec.AgeHours * 3600
	sol := cell.NewSolution()
	if spec.ConcentrationMM > 0 {
		sol.Set(spec.Target, phys.MilliMolar(spec.ConcentrationMM))
	}
	for _, inj := range spec.Injections {
		sol.Inject(inj.AtSeconds, spec.Target, phys.MilliMolar(inj.DeltaMM))
	}
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := measure.NewEngine(c, seed)
	if err != nil {
		return MonitorTrace{}, err
	}
	chain, err := e.inner.ChainFor(ep.Name, eng.RNG())
	if err != nil {
		return MonitorTrace{}, err
	}
	res, err := eng.RunCA(ep.Name, chain, measure.Chronoamperometry{
		Duration:      spec.DurationSeconds,
		BaselinePhase: spec.BaselineSeconds,
	})
	if err != nil {
		return MonitorTrace{}, err
	}

	out := MonitorTrace{TimesSeconds: res.Current.Times()}
	out.CurrentsMicroAmps = make([]float64, res.Current.Len())
	for i, v := range res.Current.Values {
		out.CurrentsMicroAmps[i] = v * 1e6
	}
	out.Analysis, err = AnalyzeMonitorTrace(out.TimesSeconds, out.CurrentsMicroAmps, spec.BaselineSeconds, spec.Injections)
	if err != nil {
		return MonitorTrace{}, err
	}
	if spec.BaselineSeconds > 0 {
		out.StepMicroAmps = res.StepCurrent().MicroAmps()
	} else {
		out.StepMicroAmps = out.Analysis.SteadyMicroAmps - out.Analysis.BaselineMicroAmps
	}
	out.EstimatedMM = cal.invertCA(phys.Current(out.StepMicroAmps * 1e-6)).MilliMolar()
	return out, nil
}

// monitorElectrode finds the chronoamperometric electrode plan serving
// the target; continuous monitoring is the oxidase use case, so CV
// electrodes never qualify.
func (e *Executor) monitorElectrode(target string) (core.ElectrodePlan, error) {
	for _, ep := range e.inner.Candidate.Electrodes {
		if ep.Blank || ep.Technique != enzyme.Chronoamperometry {
			continue
		}
		for _, a := range ep.Assays {
			if a.Target.Name == target {
				return ep, nil
			}
		}
	}
	return core.ElectrodePlan{}, fmt.Errorf("advdiag: platform has no chronoamperometric electrode monitoring %q", target)
}

// MonitorSeed derives the deterministic noise seed of one campaign
// tick from the base seed and the tick's identity (campaign ID, tick
// index) alone. Scheduler results are therefore byte-identical at any
// worker or shard count and under any submission interleaving: unlike
// panel streams, a campaign tick's noise never depends on the
// fleet-wide acceptance order.
func MonitorSeed(base uint64, campaignID string, tick int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(campaignID))
	return mathx.Mix64((base ^ mathx.Mix64(h.Sum64())) + mathx.SplitmixGamma*(uint64(tick)+1))
}
