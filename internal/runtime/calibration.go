package runtime

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"advdiag/internal/analysis"
	"advdiag/internal/core"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
	"advdiag/internal/species"
)

// PlatformElectrodeArea is the working-electrode area of the
// synthesized platform (m²), shared by every calibration inversion.
const PlatformElectrodeArea = 0.23e-6

// weCalib is the per-electrode calibration state a panel run needs to
// turn raw currents into concentration estimates. All of it is
// deterministic and noise-free, so one copy can serve any number of
// concurrent panel runs read-only:
//
//   - chronoamperometry: the Michaelis–Menten inversion constants of
//     the probe's factory calibration (slope, saturation current, Km);
//   - cyclic voltammetry: the CV window bracketing the electrode's
//     peaks, the unit-concentration voltammetric templates (each one a
//     full diffusion simulation — the expensive part RunPanel used to
//     re-derive on every call), their cathodic unit peak heights, and
//     the film-background nuisance columns on the template grid.
type weCalib struct {
	// Chronoamperometry inversion constants.
	caIMax float64 // saturation current, A
	caKm   float64 // Michaelis constant, mol/m³

	// Cyclic voltammetry calibration.
	proto     measure.CyclicVoltammetry
	templates map[string][]float64
	unitPeak  map[string]float64
	nuisances [][]float64
	// fitPlan prefactors the template decomposition (columns, alias
	// clusters, least-squares elimination) over the calibration grid so
	// the per-sample fit is a single right-hand-side solve — see
	// analysis.FitPlan. Immutable, shared read-only.
	fitPlan *analysis.FitPlan
	// basis holds the full-length unit flux traces behind the
	// templates; Executor.Run feeds it to measure.RunCVWithBasis so the
	// per-sample hot path scales cached traces instead of re-running
	// the diffusion solver. Immutable after warm-up, shared read-only
	// by every concurrent panel run.
	basis *measure.CVBasis
}

// invertCA converts a baseline-subtracted steady current into a bulk
// concentration through the cached Michaelis–Menten inversion
// (C = I·Km/(I_max − I), clamped below saturation).
func (c *weCalib) invertCA(i phys.Current) phys.Concentration {
	x := float64(i)
	if x <= 0 {
		return 0
	}
	if x >= 0.99*c.caIMax {
		x = 0.99 * c.caIMax
	}
	return phys.Concentration(x * c.caKm / (c.caIMax - x))
}

// cache memoizes weCalib entries keyed by sensor construction plus the
// platform noise seed. Replicated electrodes share a construction and
// therefore one entry. The cache belongs to one Executor; it is safe
// for concurrent use and counts hits and misses so the serving layers
// can report its effectiveness.
type cache struct {
	e *Executor

	mu      sync.Mutex
	entries map[string]*weCalib

	// fast maps electrode name → entry. The structural key above dedups
	// computation across replicated constructions; this index makes the
	// steady-state lookup a single lock-free map read instead of a
	// per-call fmt key build (the hot path's last avoidable allocation).
	fast sync.Map

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newCache(e *Executor) *cache {
	return &cache{e: e, entries: map[string]*weCalib{}}
}

// key derives the cache key from everything the calibration state
// depends on: surface treatment, technique, the assay set, and the
// platform seed (part of the platform's identity; entries never leak
// across differently-seeded platforms even if caches were ever shared).
func (cc *cache) key(ep core.ElectrodePlan) string {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(ep.Nano.String())
	b.WriteByte('|')
	b.WriteString(ep.Technique.String())
	b.WriteString("|seed=")
	var tmp [20]byte
	b.Write(strconv.AppendUint(tmp[:0], cc.e.seed, 10))
	for _, a := range ep.Assays {
		b.WriteByte('|')
		b.WriteString(a.Target.Name)
		b.WriteByte(':')
		b.WriteString(a.Probe)
	}
	return b.String()
}

// forElectrode returns the calibration state for one planned electrode,
// computing and caching it on first use. Repeat lookups for a name
// resolve through the lock-free name index.
func (cc *cache) forElectrode(ep core.ElectrodePlan) (*weCalib, error) {
	if c, ok := cc.fast.Load(ep.Name); ok {
		cc.hits.Add(1)
		return c.(*weCalib), nil
	}
	k := cc.key(ep)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c, ok := cc.entries[k]; ok {
		cc.hits.Add(1)
		cc.fast.Store(ep.Name, c)
		return c, nil
	}
	cc.misses.Add(1)
	c, err := cc.compute(ep)
	if err != nil {
		return nil, err
	}
	cc.entries[k] = c
	cc.fast.Store(ep.Name, c)
	return c, nil
}

// compute derives the calibration state from the platform design. For
// voltammetric electrodes this runs the unit-concentration diffusion
// simulations (measure.CVFluxBasis) once, over a throwaway buffer-only
// cell — the templates depend only on the electrode construction, not
// on any sample.
func (cc *cache) compute(ep core.ElectrodePlan) (*weCalib, error) {
	c := &weCalib{}
	switch ep.Technique {
	case enzyme.Chronoamperometry:
		ox := ep.Assays[0].Oxidase
		slope := float64(ox.SensitivityAt(ox.Applied, ep.Nano.Gain())) * PlatformElectrodeArea
		c.caIMax = slope * float64(ox.Km)
		c.caKm = float64(ox.Km)
	case enzyme.CyclicVoltammetry:
		var peaks []phys.Voltage
		for _, a := range ep.Assays {
			peaks = append(peaks, a.Binding.PeakPotential)
		}
		start, vertex := measure.CVWindowFor(peaks...)
		c.proto = measure.CyclicVoltammetry{Start: start, Vertex: vertex}
		blank, err := cc.e.inner.Instantiate(nil)
		if err != nil {
			return nil, err
		}
		eng, err := measure.NewEngine(blank, cc.e.seed)
		if err != nil {
			return nil, err
		}
		// One set of unit diffusion simulations yields both the
		// run-time flux basis and the fitting templates. The basis is
		// driven by the chain-applied (potentiostat-corrected)
		// potential — exactly what a per-sample RunCV would have
		// simulated — so templates and measured traces share one
		// potential axis.
		chain, err := cc.e.inner.ChainFor(ep.Name, eng.RNG())
		if err != nil {
			return nil, err
		}
		basis, err := eng.CVFluxBasis(ep.Name, c.proto, chain)
		if err != nil {
			return nil, err
		}
		grid, templates, err := eng.CVTemplatesFromBasis(basis)
		if err != nil {
			return nil, err
		}
		c.basis = basis
		c.templates = templates
		c.unitPeak = make(map[string]float64, len(templates))
		for name, tpl := range templates {
			c.unitPeak[name] = UnitPeakHeight(tpl)
		}
		c.nuisances = FilmNuisances(grid.X, ep.Assays[0].CYP)
		c.fitPlan, err = analysis.NewFitPlan(grid.X, templates, c.nuisances...)
		if err != nil {
			return nil, fmt.Errorf("advdiag: electrode %s fit plan: %w", ep.Name, err)
		}
	default:
		return nil, fmt.Errorf("advdiag: electrode %s has unsupported technique %v", ep.Name, ep.Technique)
	}
	return c, nil
}

// warm precomputes every electrode's calibration state (the serving
// layers call this once at construction so the hot path only ever
// hits).
func (cc *cache) warm() error {
	for _, ep := range cc.e.inner.Candidate.Electrodes {
		if ep.Blank {
			continue
		}
		if _, err := cc.forElectrode(ep); err != nil {
			return err
		}
	}
	return nil
}

// counts returns the cache hit/miss counters.
func (cc *cache) counts() (hits, misses uint64) {
	return cc.hits.Load(), cc.misses.Load()
}

// UnitPeakHeight returns the cathodic peak magnitude of a unit
// template (templates are IUPAC currents: reduction negative).
func UnitPeakHeight(tpl []float64) float64 {
	peak := 0.0
	for _, v := range tpl {
		if -v > peak {
			peak = -v
		}
	}
	return peak
}

// FilmNuisances builds the known-shape film-background columns for
// every binding of an isoform (see analysis.GaussianColumn and
// measure.FilmBumpWidth).
func FilmNuisances(potentials []float64, cyp *enzyme.CYP) [][]float64 {
	var out [][]float64
	for _, b := range cyp.Bindings {
		out = append(out, analysis.GaussianColumn(potentials, float64(b.PeakPotential), measure.FilmBumpWidth))
	}
	return out
}

// MaxSampleConcentrationMM bounds accepted sample concentrations. Pure
// water is 5.5e4 mM, so no aqueous sample can reach this; the bound
// also keeps extreme float inputs from overflowing the simulation into
// NaN estimates behind a nil error.
const MaxSampleConcentrationMM = 1e5

// ValidateSample rejects sample maps no real fluidics could deliver:
// non-finite, negative, or unphysically large concentrations and
// species the registry does not know. Public panel entry points
// (Platform.RunPanel, the Lab, the Fleet) return these as errors
// rather than feeding them to the simulation.
//
// When several entries are invalid, the error reports the
// lexicographically smallest offending species, so the message (which
// travels in wire Outcomes) does not depend on map iteration order.
func ValidateSample(sample map[string]float64) error {
	worst := ""
	//advdiag:allow det-maprange selects the smallest offending key; which entry wins is order-independent
	for name := range sample {
		if validateEntry(name, sample[name]) != nil && (worst == "" || name < worst) {
			worst = name
		}
	}
	if worst == "" {
		return nil
	}
	return validateEntry(worst, sample[worst])
}

// validateEntry checks one sample entry against the fluidics contract.
func validateEntry(name string, mm float64) error {
	if math.IsNaN(mm) || math.IsInf(mm, 0) {
		return fmt.Errorf("advdiag: sample[%q] = %g is not a finite concentration", name, mm)
	}
	if mm < 0 {
		return fmt.Errorf("advdiag: sample[%q] = %g mM is negative", name, mm)
	}
	if mm > MaxSampleConcentrationMM {
		return fmt.Errorf("advdiag: sample[%q] = %g mM exceeds the %g mM physical bound", name, mm, float64(MaxSampleConcentrationMM))
	}
	if _, err := species.Lookup(name); err != nil {
		return fmt.Errorf("advdiag: sample names unknown species %q", name)
	}
	return nil
}
