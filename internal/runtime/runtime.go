// Package runtime is the shared panel-execution engine behind the
// public serving layers. It owns the four concerns every panel run
// needs, exactly once:
//
//   - sample validation (ValidateSample — finite, non-negative,
//     physically plausible, registered species);
//   - deterministic per-sample seeding (SampleSeed — a splitmix64 mix
//     of a base seed and the sample index);
//   - calibration-cache access (the per-electrode inversion constants,
//     unit CV templates and flux bases, computed once per platform);
//   - panel assembly (Executor.Run — protocol dispatch, template
//     decomposition, replica merging, concentration inversion).
//
// Platform.RunPanel, the Lab and the Fleet are thin adapters over an
// Executor: they add batching, scheduling and statistics but never
// duplicate execution logic. An Executor is safe for any number of
// concurrent Run calls — each run builds its own measurement engine
// and only reads the warmed calibration cache.
package runtime

import (
	"fmt"
	"sort"
	"sync"

	"advdiag/internal/core"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/phys"
	"advdiag/internal/schedule"
)

// Reading is one assay result inside a panel. The public
// advdiag.TargetReading converts from it field-for-field.
type Reading struct {
	// Target is the molecule; WE the electrode; Probe the assay.
	Target, WE, Probe string
	// MeasuredMicroAmps is the raw signal, EstimatedMM the inverted
	// concentration estimate, TrueMM the sample's known value, PeakMV
	// the detected CV peak potential (0 for chronoamperometry).
	MeasuredMicroAmps, EstimatedMM, TrueMM, PeakMV float64
}

// Panel is one full multi-target acquisition, in schedule order.
type Panel struct {
	Readings     []Reading
	PanelSeconds float64
}

// Executor runs panels over one synthesized platform. It pairs the
// design (core.Platform) with the calibration cache and the base noise
// seed that together define the platform's run-time identity.
type Executor struct {
	inner *core.Platform
	seed  uint64
	calib *cache

	// scratch pools panelScratch values (the reusable cell + engine +
	// chain + trace state of a panel run) so sequential runs recycle
	// their allocations. See panelScratch in batch.go.
	scratch sync.Pool
}

// NewExecutor builds the execution engine for a synthesized platform.
// The calibration cache starts cold; Warm precomputes it.
func NewExecutor(inner *core.Platform, seed uint64) *Executor {
	e := &Executor{inner: inner, seed: seed}
	e.calib = newCache(e)
	return e
}

// Plan returns the platform's acquisition schedule.
func (e *Executor) Plan() *schedule.Plan { return e.inner.Plan }

// Seed returns the platform's base noise seed.
func (e *Executor) Seed() uint64 { return e.seed }

// Targets returns the sorted species names the platform's electrodes
// measure (blank electrodes excluded). Routers use it for panel-type
// affinity.
func (e *Executor) Targets() []string {
	seen := map[string]bool{}
	var out []string
	for _, ep := range e.inner.Candidate.Electrodes {
		if ep.Blank {
			continue
		}
		for _, a := range ep.Assays {
			if !seen[a.Target.Name] {
				seen[a.Target.Name] = true
				out = append(out, a.Target.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// MonitorTargets returns the sorted species names the platform can
// continuously monitor — the subset of Targets served by a
// chronoamperometric (oxidase) electrode. A species the design serves
// by cyclic voltammetry is measurable in a panel but not monitorable.
func (e *Executor) MonitorTargets() []string {
	seen := map[string]bool{}
	var out []string
	for _, ep := range e.inner.Candidate.Electrodes {
		if ep.Blank || ep.Technique != enzyme.Chronoamperometry {
			continue
		}
		for _, a := range ep.Assays {
			if !seen[a.Target.Name] {
				seen[a.Target.Name] = true
				out = append(out, a.Target.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Warm precomputes every electrode's calibration state so the serving
// path only ever reads the cache.
func (e *Executor) Warm() error { return e.calib.warm() }

// CacheCounts returns the calibration cache's hit/miss counters.
func (e *Executor) CacheCounts() (hits, misses uint64) { return e.calib.counts() }

// SampleSeed mixes a base seed with a sample index (splitmix64
// finalizer) so every sample owns an independent, deterministic noise
// stream regardless of which worker — or which shard — runs it. This
// is the whole replay-checkable determinism contract of the fleet
// layer: a result can be recomputed bit-identically from (base seed,
// submission index, sample) alone, on any shard of any topology —
// Fleet.ReplayPanel is exactly this call on a healthy executor.
func SampleSeed(base uint64, idx int) uint64 {
	return mathx.Mix64(base + mathx.SplitmixGamma*(uint64(idx)+1))
}

// Run executes one panel: one measurement engine (and so one noise
// stream) per call, all calibration state served from the cache. Two
// calls with the same sample and seed produce byte-identical results
// on any goroutine.
//
//advdiag:hotpath
func (e *Executor) Run(sample map[string]float64, seed uint64) (Panel, error) {
	return e.RunFouled(sample, seed, nil)
}

// RunFouled is Run with an optional injected electrode fault. A nil
// fault is exactly Run — the healthy path pays one nil check. A
// non-nil fault perturbs each matching electrode's measured signal
// (the chronoamperometric step current, the voltammetric fitted
// amplitude) before concentration inversion, deterministically per
// (fault seed, sample seed, target). The Executor itself stays
// stateless: the fault travels with the call, so one Executor can
// serve healthy and fouled shards concurrently.
//
//advdiag:hotpath
func (e *Executor) RunFouled(sample map[string]float64, seed uint64, fault *Fouling) (Panel, error) {
	s := e.getScratch()
	out, err := e.runWith(s, sample, seed, fault)
	e.putScratch(s)
	return out, err
}

// MergeReplicas averages replicate readings of the same target (array
// platforms measure each target on several electrodes). Single readings
// pass through unchanged.
func MergeReplicas(in []Reading) []Reading {
	counts := map[string]int{}
	for _, r := range in {
		counts[r.Target]++
	}
	merged := map[string]*Reading{}
	for _, r := range in {
		if counts[r.Target] == 1 {
			continue
		}
		m, ok := merged[r.Target]
		if !ok {
			cp := r
			cp.WE = r.WE + "+"
			merged[r.Target] = &cp
			continue
		}
		m.MeasuredMicroAmps += r.MeasuredMicroAmps
		m.EstimatedMM += r.EstimatedMM
	}
	var out []Reading
	seen := map[string]bool{}
	for _, r := range in {
		if counts[r.Target] == 1 {
			out = append(out, r)
			continue
		}
		if seen[r.Target] {
			continue
		}
		seen[r.Target] = true
		m := merged[r.Target]
		n := float64(counts[r.Target])
		m.MeasuredMicroAmps /= n
		m.EstimatedMM /= n
		m.WE = fmt.Sprintf("%s(×%d)", m.WE, counts[r.Target])
		out = append(out, *m)
	}
	return out
}

// InvertEffective converts a fitted effective concentration back to a
// bulk concentration (saturation inversion: C = x·Km/(Km−x)).
func InvertEffective(b *enzyme.Binding, x float64) phys.Concentration {
	if x <= 0 {
		return 0
	}
	km := float64(b.Km)
	if x >= 0.99*km {
		x = 0.99 * km
	}
	return phys.Concentration(x * km / (km - x))
}
