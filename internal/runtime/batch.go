package runtime

import (
	"fmt"
	"sort"

	"advdiag/internal/analog"
	"advdiag/internal/analysis"
	"advdiag/internal/cell"
	"advdiag/internal/core"
	"advdiag/internal/enzyme"
	"advdiag/internal/measure"
	"advdiag/internal/phys"
)

// panelScratch is the reusable per-goroutine state of a panel run: the
// instantiated cell with its per-chamber solutions, the measurement
// engine, one acquisition chain per electrode, the trace arena, and
// the fit/peak scratch buffers. Everything in it is rebuilt — not
// carried over — on every run (solutions reset and refilled, the
// engine reseeded, chains rebound with replayed RNG draws, traces
// fully overwritten), so a run on a tenth-hand scratch is bit-identical
// to a run on a fresh one; the scratch only recycles the allocations.
//
// Scratches live in the Executor's sync.Pool: sequential runs on one
// goroutine keep hitting the same warm scratch, and concurrent workers
// each hold their own.
type panelScratch struct {
	names  []string
	solMap map[string]*cell.Solution
	c      *cell.Cell
	eng    *measure.Engine
	chains map[string]*analog.Chain
	arena  measure.Arena

	fit      analysis.FitScratch
	peaks    analysis.PeakScratch
	readings []Reading

	// Per-sample shared faradaic traces, keyed by calibration entry:
	// replicated electrode constructions reuse one flux-basis scaling
	// pass per sample (see measure.CVFaradaicSum).
	farKeys []*weCalib
	farVecs [][]float64
	farN    int
}

// faradaicFor returns the sample's summed faradaic trace for the
// electrode's construction, computing it on first use per sample and
// sharing it across replicas of the same calibration entry.
func (s *panelScratch) faradaicFor(eng *measure.Engine, weName string, cal *weCalib) ([]float64, error) {
	for i := 0; i < s.farN; i++ {
		if s.farKeys[i] == cal {
			return s.farVecs[i], nil
		}
	}
	var buf []float64
	if s.farN < len(s.farVecs) {
		buf = s.farVecs[s.farN]
	}
	vec, err := eng.CVFaradaicSum(weName, cal.proto, cal.basis, buf)
	if err != nil {
		return nil, err
	}
	if s.farN < len(s.farVecs) {
		s.farVecs[s.farN] = vec
		s.farKeys[s.farN] = cal
	} else {
		s.farVecs = append(s.farVecs, vec)
		s.farKeys = append(s.farKeys, cal)
	}
	s.farN++
	return vec, nil
}

// RunBatch executes many panels over one reused scratch: sample i runs
// with seeds[i], and the i-th result lands in the i-th output slot.
// Each panel is bit-identical to a standalone RunFouled(samples[i],
// seeds[i], fault) call — batching amortizes the cell instantiation,
// engine construction, chain assembly and trace allocations, never the
// noise streams. A failed sample yields a zero Panel and its error
// without disturbing its neighbours.
//
//advdiag:hotpath
func (e *Executor) RunBatch(samples []map[string]float64, seeds []uint64, fault *Fouling) ([]Panel, []error) {
	if len(samples) != len(seeds) {
		//advdiag:allow hot-fmt caller-contract panic: unreachable in a correct build, never on the panel path
		panic(fmt.Sprintf("runtime: RunBatch got %d samples but %d seeds", len(samples), len(seeds)))
	}
	panels := make([]Panel, len(samples))
	errs := make([]error, len(samples))
	s := e.getScratch()
	for i := range samples {
		panels[i], errs[i] = e.runWith(s, samples[i], seeds[i], fault)
	}
	e.putScratch(s)
	return panels, errs
}

func (e *Executor) getScratch() *panelScratch {
	if v := e.scratch.Get(); v != nil {
		return v.(*panelScratch)
	}
	return &panelScratch{}
}

func (e *Executor) putScratch(s *panelScratch) { e.scratch.Put(s) }

// runWith is the panel kernel: RunFouled's body over a reusable
// scratch. See RunFouled for the execution contract.
func (e *Executor) runWith(s *panelScratch, sample map[string]float64, seed uint64, fault *Fouling) (Panel, error) {
	if err := ValidateSample(sample); err != nil {
		return Panel{}, err
	}
	cand := e.inner.Candidate

	// Per-chamber solutions holding the full sample. The cell, its
	// solutions and the engine are built once per scratch and rebuilt
	// in place on reuse.
	s.names = s.names[:0]
	for name := range sample {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	if s.c == nil {
		s.solMap = make(map[string]*cell.Solution, len(cand.Chambers))
		for _, ch := range cand.Chambers {
			s.solMap[ch] = cell.NewSolution()
		}
		c, err := e.inner.Instantiate(s.solMap)
		if err != nil {
			return Panel{}, err
		}
		eng, err := measure.NewEngine(c, seed)
		if err != nil {
			return Panel{}, err
		}
		eng.SetArena(&s.arena)
		s.c, s.eng = c, eng
	} else {
		s.eng.Reseed(seed)
	}
	for _, ch := range cand.Chambers {
		sol := s.solMap[ch]
		sol.Reset()
		for _, name := range s.names {
			sol.Set(name, phys.MilliMolar(sample[name]))
		}
	}
	eng := s.eng

	var out Panel
	out.PanelSeconds = cand.PanelTime
	s.readings = s.readings[:0]
	s.farN = 0
	for _, ep := range cand.Electrodes {
		if ep.Blank {
			continue
		}
		cal, err := e.calib.forElectrode(ep)
		if err != nil {
			return Panel{}, err
		}
		chain := s.chains[ep.Name]
		if chain == nil {
			chain, err = e.inner.ChainFor(ep.Name, eng.RNG())
			if err != nil {
				return Panel{}, err
			}
			if s.chains == nil {
				s.chains = make(map[string]*analog.Chain, len(cand.Electrodes))
			}
			s.chains[ep.Name] = chain
		} else {
			// Replays the exact RNG draws chain construction consumes,
			// so the downstream noise streams are unchanged.
			chain.Rebind(eng.RNG())
		}
		// Traces of the previous electrode were reduced to scalars;
		// recycle their buffers.
		s.arena.Reset()
		switch ep.Technique {
		case enzyme.Chronoamperometry:
			// Two-phase protocol: buffer baseline, then the sample. The
			// baseline-subtracted step cancels run offsets and direct-
			// oxidizer interferent currents.
			res, err := eng.RunCA(ep.Name, chain, measure.Chronoamperometry{
				Duration:      ep.ProtocolTime,
				BaselinePhase: core.CABaselinePhase,
			})
			if err != nil {
				return Panel{}, err
			}
			a := ep.Assays[0]
			step := res.StepCurrent()
			if fault != nil && fault.matches(a.Target.Name) {
				step = phys.Current(fault.perturb(float64(step), seed, a.Target.Name))
			}
			est := cal.invertCA(step)
			s.readings = append(s.readings, Reading{
				Target:            a.Target.Name,
				WE:                ep.Name,
				Probe:             a.Probe,
				MeasuredMicroAmps: step.MicroAmps(),
				EstimatedMM:       est.MilliMolar(),
				TrueMM:            sample[a.Target.Name],
			})
		case enzyme.CyclicVoltammetry:
			// The cached basis replaces the per-sample diffusion
			// simulations; the per-sample flux scaling pass is computed
			// once per construction and shared across replicas.
			far, err := s.faradaicFor(eng, ep.Name, cal)
			if err != nil {
				return Panel{}, err
			}
			res, err := eng.RunCVShared(ep.Name, chain, cal.proto, cal.basis, far)
			if err != nil {
				return Panel{}, err
			}
			// Quantify against the prefactored template decomposition
			// (bit-identical to FitCVComponents on the cached
			// templates); scan the voltammogram's reduction peaks once
			// and report per-assay peak potentials from the scan.
			fit, err := cal.fitPlan.Fit(res.Voltammogram, &s.fit)
			if err != nil {
				return Panel{}, fmt.Errorf("advdiag: %s: %w", ep.Name, err)
			}
			scanned := s.peaks.Scan(res.Voltammogram, 0)
			for _, a := range ep.Assays {
				b := a.Binding
				amp := fit.Amplitude(a.Target.Name)
				if fault != nil && fault.matches(a.Target.Name) {
					amp = fault.perturb(amp, seed, a.Target.Name)
				}
				height := amp * cal.unitPeak[a.Target.Name]
				est := InvertEffective(b, amp)
				peakMV := 0.0
				if scanned {
					if pk, ok := s.peaks.Near(b.PeakPotential, phys.MilliVolts(80)); ok {
						peakMV = pk.Potential.MilliVolts()
					}
				}
				s.readings = append(s.readings, Reading{
					Target:            a.Target.Name,
					WE:                ep.Name,
					Probe:             a.Probe,
					MeasuredMicroAmps: height * 1e6,
					EstimatedMM:       est.MilliMolar(),
					TrueMM:            sample[a.Target.Name],
					PeakMV:            peakMV,
				})
			}
		}
	}
	out.Readings = MergeReplicas(s.readings)
	return out, nil
}
