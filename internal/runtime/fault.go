package runtime

import (
	"fmt"
	"hash/fnv"
	"math"

	"advdiag/internal/mathx"
)

// Fouling is an injectable electrode-fouling fault: a deterministic
// perturbation of the analog acquisition chain that models a film
// degraded by adsorbed matrix proteins — the sensitivity drops and the
// signal turns noisy, so concentration estimates drift away from the
// true values while the instrument keeps reporting readings.
//
// Fouling is the execution-layer half of the public fault-injection
// API (advdiag.FaultPlan): the Fleet compiles a FaultFouledElectrode
// fault into a Fouling and hands it to the targeted shard's panel
// runs. It exists so the diagnosis layer has something to detect on
// purpose: every perturbation draw is seeded from the fault seed, the
// panel's sample seed, and the target name alone, so an injected fault
// replays bit-for-bit — the property that makes diagnosis provable in
// ordinary deterministic tests.
//
// A nil *Fouling is the healthy path: RunFouled does no work beyond a
// nil check, which is what keeps fault injection zero-cost when
// disabled.
type Fouling struct {
	// Target restricts the fault to the electrode(s) measuring one
	// species; empty fouls every electrode of the platform.
	Target string
	// Severity scales the perturbation, in (0,1]: the expected
	// sensitivity loss fraction and the relative noise amplitude.
	Severity float64
	// Seed is the fault's own deterministic stream; two injections with
	// equal seeds perturb identically.
	Seed uint64
}

// Validate rejects fouling parameters outside the model: severity must
// be a finite value in (0,1].
func (f *Fouling) Validate() error {
	if math.IsNaN(f.Severity) || math.IsInf(f.Severity, 0) || f.Severity <= 0 || f.Severity > 1 {
		return fmt.Errorf("advdiag: fouling severity %g outside (0,1]", f.Severity)
	}
	return nil
}

// matches reports whether the fault applies to the electrode measuring
// target.
func (f *Fouling) matches(target string) bool {
	return f.Target == "" || f.Target == target
}

// perturb applies the fouling model to one measured signal: a
// multiplicative sensitivity loss of 40–100% of Severity plus additive
// noise proportional to the signal. The draw is seeded from the fault
// seed, the panel's sample seed, and the target name, so the same
// fault over the same panel perturbs identically on any goroutine,
// worker, or shard — replayable by construction.
func (f *Fouling) perturb(signal float64, sampleSeed uint64, target string) float64 {
	h := fnv.New64a()
	h.Write([]byte(target))
	rng := mathx.NewRNG(mathx.Mix64(f.Seed^mathx.Mix64(sampleSeed)) ^ h.Sum64())
	gain := 1 - f.Severity*(0.4+0.6*rng.Float64())
	noise := f.Severity * 0.25 * rng.Norm() * signal
	return signal*gain + noise
}
