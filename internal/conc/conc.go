// Package conc holds the small concurrency primitives shared by the
// evaluation layer's worker pools (the design-space explorer and the
// experiment runner).
package conc

import "sync"

// ForEach runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines and returns once every call has finished.
// workers <= 1 (or n <= 1) runs inline on the caller's goroutine.
// Callers typically have fn write into per-index slots of a pre-sized
// slice, which needs no further synchronization; any other shared
// state is fn's responsibility.
func ForEach(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
