// Package conc holds the small concurrency primitives shared by the
// evaluation layer's worker pools (the design-space explorer and the
// experiment runner) and the run-time panel service (the Lab).
package conc

import "sync"

// ForEach runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines and returns once every call has finished.
// workers <= 1 (or n <= 1) runs inline on the caller's goroutine.
// Callers typically have fn write into per-index slots of a pre-sized
// slice, which needs no further synchronization; any other shared
// state is fn's responsibility.
func ForEach(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Pool is a fixed-size worker pool for streaming workloads where jobs
// arrive over time instead of as a pre-sized batch (ForEach's case).
// Jobs run in submission order on whichever worker frees up first;
// ordering of completions is the jobs' own business.
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

// NewPool starts a pool of `workers` goroutines (at least one).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{jobs: make(chan func())}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// Submit enqueues one job; it blocks while every worker is busy and the
// handoff channel is full. Submit must not be called after Close.
func (p *Pool) Submit(fn func()) { p.jobs <- fn }

// Close stops accepting jobs and blocks until every submitted job has
// finished.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}
