package conc

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n=0")
	}
}
