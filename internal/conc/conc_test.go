package conc

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n=0")
	}
}

func TestPoolRunsEveryJobAndCloseWaits(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		const n = 53
		hits := make([]int32, n)
		p := NewPool(workers)
		for i := 0; i < n; i++ {
			i := i
			p.Submit(func() { atomic.AddInt32(&hits[i], 1) })
		}
		p.Close()
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestPoolCloseWithoutJobs(t *testing.T) {
	NewPool(3).Close()
}
