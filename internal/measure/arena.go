package measure

import (
	"advdiag/internal/trace"
)

// Arena is a reusable pool of trace buffers for the protocol runners.
// The panel hot path discards every per-run trace after extracting a
// handful of scalars (step currents, fitted amplitudes, peak
// potentials), so the Series and XY allocations — the bulk of a run's
// garbage — can be recycled wholesale between runs.
//
// An engine with an arena attached (SetArena) carves its result traces
// out of the arena instead of the heap: results remain structurally
// identical but alias arena memory, valid only until the arena's next
// Reset. Callers that retain traces (experiments, monitors, the CSV
// exporters) simply run without an arena — the default — and get
// heap-allocated results exactly as before. An arena belongs to one
// goroutine.
type Arena struct {
	series []*trace.Series
	nSer   int
	xys    []*trace.XY
	nXY    int
}

// Reset reclaims every outstanding buffer. All traces handed out since
// the previous Reset become invalid.
func (a *Arena) Reset() {
	a.nSer = 0
	a.nXY = 0
}

// newSeries returns a zero-filled-by-assignment series of n samples
// (callers assign every element) with NewSeries's validation.
func (a *Arena) newSeries(start, dt float64, n int, unit string) (*trace.Series, error) {
	if dt <= 0 || n <= 0 {
		return nil, trace.ErrBadSeries
	}
	if a.nSer == len(a.series) {
		a.series = append(a.series, &trace.Series{})
	}
	s := a.series[a.nSer]
	a.nSer++
	s.Start, s.Dt, s.Unit = start, dt, unit
	if cap(s.Values) < n {
		s.Values = make([]float64, n)
	}
	s.Values = s.Values[:n]
	return s, nil
}

// newXY returns an empty XY with the given axis labels.
func (a *Arena) newXY(xUnit, yUnit string) *trace.XY {
	if a.nXY == len(a.xys) {
		a.xys = append(a.xys, &trace.XY{})
	}
	p := a.xys[a.nXY]
	a.nXY++
	p.XUnit, p.YUnit = xUnit, yUnit
	p.X = p.X[:0]
	p.Y = p.Y[:0]
	return p
}

// SetArena attaches (or with nil detaches) an arena to the engine.
// While attached, RunCA/RunCV results alias arena memory — see Arena.
func (e *Engine) SetArena(a *Arena) { e.arena = a }

// Reseed rewinds the engine's random source to the exact state
// NewEngine(cell, seed) would give it, letting batched runners reuse
// one engine (and its validated cell) across many deterministic runs.
func (e *Engine) Reseed(seed uint64) { e.rng.Reset(seed) }

// newSeries dispatches to the arena when one is attached.
func (e *Engine) newSeries(start, dt float64, n int, unit string) (*trace.Series, error) {
	if e.arena != nil {
		return e.arena.newSeries(start, dt, n, unit)
	}
	return trace.NewSeries(start, dt, n, unit)
}

// newXY dispatches to the arena when one is attached.
func (e *Engine) newXY(xUnit, yUnit string) *trace.XY {
	if e.arena != nil {
		return e.arena.newXY(xUnit, yUnit)
	}
	return trace.NewXY(xUnit, yUnit)
}
