package measure

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/diffusion"
	"advdiag/internal/enzyme"
	"advdiag/internal/trace"
)

// finalCycleFirstIndex returns the first sample index of the final full
// sweep cycle. RunCV's voltammogram and the fitting templates must
// agree on this boundary sample-for-sample (analysis.FitCVComponents
// aligns them by position), so both use this one definition.
func finalCycleFirstIndex(n int, dt, cycleStart float64) int {
	for i := 0; i < n; i++ {
		if float64(i)*dt >= cycleStart {
			return i
		}
	}
	return n
}

// CVBasis holds the unit-concentration surface-flux traces of every
// binding of one voltammetric electrode over a full protocol: the
// expensive diffusion simulations, run once. Because the diffusion
// problem is linear in bulk concentration, the faradaic current of a
// binding at effective concentration C_eff is exactly C_eff times its
// unit trace — which is how RunCVWithBasis serves per-sample
// voltammograms without touching the solver.
//
// A basis is immutable after construction and safe for any number of
// concurrent readers; the serving layer computes one per electrode
// construction and shares it across panel workers.
type CVBasis struct {
	we    string
	proto CyclicVoltammetry
	flux  map[string][]float64 // substrate → flux at every sample
}

// check verifies the basis was computed for this electrode and
// protocol (the numeric protocol fields; flag fields like
// NoFilmBackground do not change the flux).
func (b *CVBasis) check(weName string, proto CyclicVoltammetry) error {
	if b.we != weName {
		return fmt.Errorf("measure: basis computed for %s, used on %s", b.we, weName)
	}
	p := b.proto
	if p.Start != proto.Start || p.Vertex != proto.Vertex || p.Rate != proto.Rate ||
		p.Cycles != proto.Cycles || p.SampleInterval != proto.SampleInterval {
		return fmt.Errorf("measure: basis protocol %+v does not match run protocol %+v", p, proto)
	}
	return nil
}

// CVFluxBasis runs the unit-concentration diffusion simulation of every
// binding of the named electrode's CYP isoform over the full protocol
// and records the surface-flux traces. When chain is non-nil the
// electrode potential driving the simulations is the chain-applied
// (potentiostat-corrected) potential — pass the electrode's chain to
// make RunCVWithBasis reproduce what RunCV would have simulated; pass
// nil to drive with the programmed sweep (the convention of the
// template fitting side).
func (e *Engine) CVFluxBasis(weName string, proto CyclicVoltammetry, chain *analog.Chain) (*CVBasis, error) {
	proto = proto.WithDefaults()
	if err := proto.Validate(); err != nil {
		return nil, err
	}
	we, err := e.Cell.FindWE(weName)
	if err != nil {
		return nil, err
	}
	if we.Func.IsBlank() || we.Func.Assay.Technique != enzyme.CyclicVoltammetry {
		return nil, fmt.Errorf("measure: %s is not a voltammetric electrode", weName)
	}
	cyp := we.Func.Assay.CYP

	sweep := analog.TriangleSweep{Start: proto.Start, Vertex: proto.Vertex, Rate: proto.Rate, Cycles: proto.Cycles}
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	dt := proto.SampleInterval
	total := sweep.Duration()
	n := int(total/dt) + 1

	basis := &CVBasis{we: weName, proto: proto, flux: make(map[string][]float64, len(cyp.Bindings))}
	for _, b := range cyp.Bindings {
		sim, err := diffusion.New(diffusion.Config{
			Kinetics:  b.Kinetics(),
			Diffusion: b.Substrate.Diffusion,
			BulkO:     1, // unit concentration
			TotalTime: total,
			Dt:        dt,
		})
		if err != nil {
			return nil, fmt.Errorf("measure: basis for %s: %w", b.Substrate.Name, err)
		}
		tr := make([]float64, n)
		for i := 0; i < n; i++ {
			eDrive := sweep.VoltageAt(float64(i) * dt)
			if chain != nil {
				eDrive = chain.ApplyPotential(eDrive)
			}
			tr[i] = sim.Step(eDrive)
		}
		basis.flux[b.Substrate.Name] = tr
	}
	return basis, nil
}

// CVTemplates computes noise-free unit-concentration voltammetric
// responses for every binding of the named electrode's CYP isoform,
// over the same final-cycle grid RunCV's Voltammogram uses.
//
// Because the diffusion problem is linear in the bulk concentration,
// the faradaic current of binding b at effective concentration C_eff is
// exactly C_eff times its unit template. Least-squares fitting of the
// templates (analysis.FitCVComponents) therefore recovers each
// substrate's effective concentration even when a small peak rides on a
// larger neighbouring wave as a mere shoulder — the situation of the
// CYP2B4 benzphetamine + aminopyrine electrode.
func (e *Engine) CVTemplates(weName string, proto CyclicVoltammetry) (*trace.XY, map[string][]float64, error) {
	basis, err := e.CVFluxBasis(weName, proto, nil)
	if err != nil {
		return nil, nil, err
	}
	return e.CVTemplatesFromBasis(basis)
}

// CVTemplatesFromBasis derives the final-cycle fitting templates from
// an existing basis without re-running any diffusion simulation. The
// serving layer uses this to get both the run-time basis and the
// fitting templates from one set of simulations.
func (e *Engine) CVTemplatesFromBasis(basis *CVBasis) (*trace.XY, map[string][]float64, error) {
	we, err := e.Cell.FindWE(basis.we)
	if err != nil {
		return nil, nil, err
	}
	if we.Func.IsBlank() || we.Func.Assay.Technique != enzyme.CyclicVoltammetry {
		return nil, nil, fmt.Errorf("measure: %s is not a voltammetric electrode", basis.we)
	}
	cyp := we.Func.Assay.CYP
	proto := basis.proto

	sweep := analog.TriangleSweep{Start: proto.Start, Vertex: proto.Vertex, Rate: proto.Rate, Cycles: proto.Cycles}
	if err := sweep.Validate(); err != nil {
		return nil, nil, err
	}
	dt := proto.SampleInterval
	total := sweep.Duration()
	n := int(total/dt) + 1
	first := finalCycleFirstIndex(n, dt, total-2*sweep.HalfPeriod())
	gain := we.Gain()

	grid := trace.NewXY("V", "A")
	grid.X = make([]float64, 0, n-first)
	grid.Y = make([]float64, 0, n-first)
	for i := first; i < n; i++ {
		grid.Append(float64(sweep.VoltageAt(float64(i)*dt)), 0)
	}
	templates := make(map[string][]float64, len(cyp.Bindings))
	for _, b := range cyp.Bindings {
		tr, ok := basis.flux[b.Substrate.Name]
		if !ok || len(tr) < n {
			return nil, nil, fmt.Errorf("measure: basis for %s lacks a %s trace", basis.we, b.Substrate.Name)
		}
		vals := make([]float64, 0, n-first)
		for i := first; i < n; i++ {
			vals = append(vals, b.Theta*gain*float64(diffusion.Current(b.N, we.Area, tr[i])))
		}
		templates[b.Substrate.Name] = vals
	}
	return grid, templates, nil
}
