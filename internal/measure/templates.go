package measure

import (
	"fmt"

	"advdiag/internal/analog"
	"advdiag/internal/diffusion"
	"advdiag/internal/enzyme"
	"advdiag/internal/trace"
)

// CVTemplates computes noise-free unit-concentration voltammetric
// responses for every binding of the named electrode's CYP isoform,
// over the same final-cycle grid RunCV's Voltammogram uses.
//
// Because the diffusion problem is linear in the bulk concentration,
// the faradaic current of binding b at effective concentration C_eff is
// exactly C_eff times its unit template. Least-squares fitting of the
// templates (analysis.FitCVComponents) therefore recovers each
// substrate's effective concentration even when a small peak rides on a
// larger neighbouring wave as a mere shoulder — the situation of the
// CYP2B4 benzphetamine + aminopyrine electrode.
func (e *Engine) CVTemplates(weName string, proto CyclicVoltammetry) (*trace.XY, map[string][]float64, error) {
	proto = proto.WithDefaults()
	if err := proto.Validate(); err != nil {
		return nil, nil, err
	}
	we, err := e.Cell.FindWE(weName)
	if err != nil {
		return nil, nil, err
	}
	if we.Func.IsBlank() || we.Func.Assay.Technique != enzyme.CyclicVoltammetry {
		return nil, nil, fmt.Errorf("measure: %s is not a voltammetric electrode", weName)
	}
	cyp := we.Func.Assay.CYP

	sweep := analog.TriangleSweep{Start: proto.Start, Vertex: proto.Vertex, Rate: proto.Rate, Cycles: proto.Cycles}
	if err := sweep.Validate(); err != nil {
		return nil, nil, err
	}
	dt := proto.SampleInterval
	total := sweep.Duration()
	n := int(total/dt) + 1
	cycleStart := total - 2*sweep.HalfPeriod()
	gain := we.Gain()

	grid := trace.NewXY("V", "A")
	templates := make(map[string][]float64, len(cyp.Bindings))
	for _, b := range cyp.Bindings {
		sim, err := diffusion.New(diffusion.Config{
			Kinetics:  b.Kinetics(),
			Diffusion: b.Substrate.Diffusion,
			BulkO:     1, // unit concentration
			TotalTime: total,
			Dt:        dt,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("measure: template for %s: %w", b.Substrate.Name, err)
		}
		var vals []float64
		first := len(grid.X) == 0
		for i := 0; i < nSteps(n); i++ {
			t := float64(i) * dt
			eProg := sweep.VoltageAt(t)
			flux := sim.Step(eProg)
			if t >= cycleStart {
				iF := b.Theta * gain * float64(diffusion.Current(b.N, we.Area, flux))
				vals = append(vals, iF)
				if first {
					grid.Append(float64(eProg), 0)
				}
			}
		}
		templates[b.Substrate.Name] = vals
	}
	return grid, templates, nil
}

func nSteps(n int) int { return n }
