package measure

import (
	"testing"

	"advdiag/internal/analog"
)

// TestEngineSingleGoroutineGuard pins the ownership contract: a second
// protocol entered while one is in flight means two goroutines share
// the engine, and the guard must fail loudly instead of interleaving
// the RNG stream.
func TestEngineSingleGoroutineGuard(t *testing.T) {
	eng, err := NewEngine(glucoseCell(t, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	release := eng.acquire()
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping acquire must panic")
		}
	}()
	defer release()
	eng.acquire()
}

// TestEngineGuardReleases verifies sequential runs keep working: the
// guard releases at the end of each protocol.
func TestEngineGuardReleases(t *testing.T) {
	eng, err := NewEngine(glucoseCell(t, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		eng.acquire()()
	}
	release := eng.acquire()
	release()
}

// TestEnginesSameSeedIdenticalStreams pins what makes one-engine-per-
// goroutine cheap to adopt: two engines over equivalent cells with the
// same seed yield bit-identical measurements, so parallel callers lose
// nothing by not sharing.
func TestEnginesSameSeedIdenticalStreams(t *testing.T) {
	run := func() float64 {
		eng, err := NewEngine(glucoseCell(t, 2), 42)
		if err != nil {
			t.Fatal(err)
		}
		chain := analog.NewNanoChain(nil, eng.RNG())
		r, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 10})
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.SteadyCurrent())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %g vs %g", a, b)
	}
}
