package measure

import (
	"math"
	"testing"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

func benzCell(t *testing.T, concMM float64) *cell.Cell {
	t.Helper()
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution().Set("benzphetamine", phys.MilliMolar(concMM))
	return cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
}

func TestRunCVMultiCycle(t *testing.T) {
	eng, _ := NewEngine(benzCell(t, 1), 3)
	chain := analog.NewPicoChain(nil, eng.RNG())
	start, vertex := CVWindowFor(phys.MilliVolts(-250))
	res, err := eng.RunCV("WE1", chain, CyclicVoltammetry{
		Start: start, Vertex: vertex, Cycles: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The voltammogram covers one (the final) cycle even with two swept.
	proto := CyclicVoltammetry{Start: start, Vertex: vertex, Cycles: 1}.WithDefaults()
	wantSamples := int(2*math.Abs(float64(start-vertex))/float64(proto.Rate)/proto.SampleInterval) + 1
	if math.Abs(float64(res.Voltammogram.Len()-wantSamples)) > 3 {
		t.Fatalf("voltammogram %d samples, want ≈%d (one cycle)", res.Voltammogram.Len(), wantSamples)
	}
	// Total recorded trace covers both cycles.
	if res.Potential.Len() < 2*wantSamples-4 {
		t.Fatalf("potential trace %d samples for two cycles", res.Potential.Len())
	}
}

func TestRunCVBlankElectrodeBackgroundOnly(t *testing.T) {
	blank := electrode.NewBlankWorking("WEB")
	sol := cell.NewSolution()
	c := cell.NewSingleChamber(sol, blank, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 5)
	chain := analog.NewPicoChain(nil, eng.RNG())
	res, err := eng.RunCV("WEB", chain, CyclicVoltammetry{Start: 0, Vertex: phys.MilliVolts(-500)})
	if err != nil {
		t.Fatal(err)
	}
	// No faradaic peaks: the current is capacitive + noise, well below
	// a nanoampere everywhere.
	for i, y := range res.Voltammogram.Y {
		if math.Abs(y) > 3e-9 {
			t.Fatalf("blank CV sample %d carries %.3g A", i, y)
		}
	}
}

func TestRunCVRejectsOxidaseElectrode(t *testing.T) {
	eng, _ := NewEngine(glucoseCell(t, 1), 1)
	chain := analog.NewPicoChain(nil, eng.RNG())
	if _, err := eng.RunCV("WE1", chain, CyclicVoltammetry{Start: 0, Vertex: phys.MilliVolts(-500)}); err == nil {
		t.Fatal("cyclic voltammetry on an oxidase electrode must fail")
	}
}

func TestCVTemplatesRejectsBlankAndOxidase(t *testing.T) {
	eng, _ := NewEngine(glucoseCell(t, 1), 1)
	if _, _, err := eng.CVTemplates("WE1", CyclicVoltammetry{Start: 0, Vertex: phys.MilliVolts(-500)}); err == nil {
		t.Fatal("templates for an oxidase electrode must fail")
	}
}

func TestRunCVAbsentSubstrateGivesNoTemplatePeak(t *testing.T) {
	// Benzphetamine electrode with NOTHING in solution: the fitted
	// amplitudes on a later decomposition would be ≈0; here we check the
	// raw faradaic signal is flat.
	eng, _ := NewEngine(benzCell(t, 0), 9)
	chain := analog.NewPicoChain(nil, eng.RNG())
	chain.Noise = nil
	start, vertex := CVWindowFor(phys.MilliVolts(-250))
	res, err := eng.RunCV("WE1", chain, CyclicVoltammetry{Start: start, Vertex: vertex, NoFilmBackground: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only the flat capacitive background remains on the forward branch.
	half := res.Voltammogram.Len() / 2
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 10; i < half; i++ {
		y := res.Voltammogram.Y[i]
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi-lo > 0.3e-9 {
		t.Fatalf("no-substrate forward branch varies by %.3g A", hi-lo)
	}
}

func TestAgedElectrodeLosesSignal(t *testing.T) {
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	run := func(ageDays float64) float64 {
		we := electrode.NewWorking("WE1", electrode.CNT, a)
		we.Func.AgeSeconds = ageDays * 24 * 3600
		sol := cell.NewSolution().Set("glucose", phys.MilliMolar(2))
		c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		eng, err := NewEngine(c, 7)
		if err != nil {
			t.Fatal(err)
		}
		chain := analog.NewNanoChain(nil, eng.RNG())
		chain.Noise = nil
		res, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 60})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SteadyCurrent())
	}
	fresh := run(0)
	aged := run(5) // one stability τ
	ratio := aged / fresh
	if math.Abs(ratio-math.Exp(-1)) > 0.08 {
		t.Fatalf("5-day-aged signal ratio %.3f, want ≈1/e", ratio)
	}
}
