package measure

import (
	"fmt"
	"math"
	"sync/atomic"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/diffusion"
	"advdiag/internal/echem"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/phys"
	"advdiag/internal/species"
	"advdiag/internal/trace"
)

// Engine executes measurement protocols on one cell. It owns the random
// source so repeated runs draw fresh but reproducible noise.
//
// Concurrency contract: an Engine (and the *mathx.RNG it owns) belongs
// to exactly one goroutine. Concurrent runners — the parallel
// design-space explorer, the experiments.RunAll pool — must build one
// Engine per goroutine, each with its own seed, rather than share one;
// NewEngine is cheap. Driving the same Engine from two goroutines
// would interleave the RNG stream (destroying reproducibility even
// where it doesn't corrupt state), so the protocol entry points detect
// concurrent misuse and panic.
type Engine struct {
	Cell *cell.Cell
	rng  *mathx.RNG
	// busy flags an in-flight protocol run; see acquire.
	busy atomic.Bool
	// arena, when set, supplies the per-run trace buffers (see Arena).
	arena *Arena

	// Engine-owned scratch reused across protocol runs (an engine is
	// single-goroutine, so no locking): the precomputed per-run source
	// tables the measurement loops iterate. Nothing here survives a run
	// — results never alias these slices.
	crosstalks   []caCrosstalk
	interferents []caInterferent
}

// caCrosstalk is one precomputed co-chambered oxidase source: the
// classification, efficiency sigmoid and constant factors that the old
// RunCA loop re-derived on every timestep.
type caCrosstalk struct {
	ox      *enzyme.Oxidase
	sampler *cell.Sampler
	gain    float64
	// factor folds crosstalk coefficient × n × F × the receiving
	// electrode's potential efficiency (constant at fixed potential).
	factor float64
}

// caInterferent is one precomputed direct-oxidizer source present in
// the chamber solution.
type caInterferent struct {
	sampler *cell.Sampler
	// coeff folds the direct-response slope × the potential efficiency
	// sigmoid at the run's fixed applied potential.
	coeff float64
}

// NewEngine builds an engine over c with a deterministic seed. Two
// engines over the same cell with the same seed produce bit-identical
// measurement streams.
func NewEngine(c *cell.Cell, seed uint64) (*Engine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Engine{Cell: c, rng: mathx.NewRNG(seed)}, nil
}

// RNG exposes the engine's random source (for chains that need split
// noise streams). The returned RNG is part of the engine's
// single-goroutine state — do not hand it to another goroutine.
func (e *Engine) RNG() *mathx.RNG { return e.rng }

// acquire marks one protocol run in flight and returns its release. It
// enforces the single-goroutine ownership contract: two overlapping
// runs mean two goroutines share this engine, which silently
// interleaves the noise stream, so fail loudly instead.
func (e *Engine) acquire() func() {
	if !e.busy.CompareAndSwap(false, true) {
		panic("measure: Engine driven from two goroutines at once; build one Engine per goroutine (NewEngine is cheap)")
	}
	return func() { e.busy.Store(false) }
}

// CAResult is the outcome of one chronoamperometric run.
type CAResult struct {
	// WE names the measured electrode.
	WE string
	// Applied is the actual cell potential established.
	Applied phys.Voltage
	// Baseline is the two-phase protocol's baseline duration (0 for
	// single-phase runs).
	Baseline float64
	// Raw is the true faradaic+background current at the electrode (A).
	Raw *trace.Series
	// Recorded is the digitized readout voltage (V).
	Recorded *trace.Series
	// Current is the current estimate recovered from Recorded through
	// the nominal transimpedance (A) — what the digital side sees.
	Current *trace.Series
}

// SteadyCurrent returns the mean recovered current over the final fifth
// of the run.
func (r *CAResult) SteadyCurrent() phys.Current {
	return phys.Current(mathx.Mean(r.Current.Tail(0.2)))
}

// SteadyVoltage returns the mean recorded voltage over the final fifth
// of the run.
func (r *CAResult) SteadyVoltage() phys.Voltage {
	return phys.Voltage(mathx.Mean(r.Recorded.Tail(0.2)))
}

// StepCurrent returns the baseline-subtracted response of a two-phase
// (BaselinePhase > 0) run: the mean recovered current over the final
// fifth minus the mean over the settled part of the baseline phase.
// For single-phase runs it equals SteadyCurrent.
func (r *CAResult) StepCurrent() phys.Current {
	if r.Baseline <= 0 {
		return r.SteadyCurrent()
	}
	// Skip the double-layer charging spike at the start of the baseline.
	base := r.Current.Window(r.Baseline*0.3, r.Baseline*0.95)
	return phys.Current(mathx.Mean(r.Current.Tail(0.2)) - mathx.Mean(base))
}

// RunCA performs chronoamperometry on the named working electrode
// through the given chain.
//
// The physical model: the probe's applied potential is established by
// the potentiostat; substrate reaches the enzyme layer through the
// membrane with a first-order lag; Michaelis–Menten turnover produces
// H₂O₂ oxidized with the probe's potential efficiency; co-chambered
// oxidase electrodes leak a small cross-talk current; the double layer
// adds a decaying charging spike after the initial potential step;
// blank noise and direct-oxidizer interferents add to the current; the
// chain multiplexes, amplifies, band-limits and quantizes the result.
//
//advdiag:hotpath
func (e *Engine) RunCA(weName string, chain *analog.Chain, proto Chronoamperometry) (*CAResult, error) {
	defer e.acquire()()
	proto = proto.WithDefaults()
	if err := proto.Validate(); err != nil {
		return nil, err
	}
	if err := chain.Validate(); err != nil {
		return nil, err
	}
	we, err := e.Cell.FindWE(weName)
	if err != nil {
		return nil, err
	}
	ch, err := e.Cell.ChamberOf(weName)
	if err != nil {
		return nil, err
	}
	var ox *enzyme.Oxidase
	if !we.Func.IsBlank() {
		if we.Func.Assay.Technique != enzyme.Chronoamperometry {
			//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
			return nil, fmt.Errorf("measure: %s carries a %s assay; chronoamperometry needs an oxidase", weName, we.Func.Assay.Technique)
		}
		ox = we.Func.Assay.Oxidase
	}

	target := proto.Potential
	if target == 0 {
		if ox == nil {
			//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
			return nil, fmt.Errorf("measure: blank electrode %s needs an explicit CA potential", weName)
		}
		target = ox.Applied
	}
	// The fixed-potential generator of the paper's Fig. 2 feeds the
	// potentiostat, which establishes the actual cell potential.
	wave := analog.DCSource{Level: target, Hold: proto.Duration}
	actual := chain.ApplyPotential(wave.VoltageAt(0))

	dt := proto.SampleInterval
	n := int(proto.Duration/dt) + 1
	raw, err := e.newSeries(0, dt, n, "A")
	if err != nil {
		return nil, err
	}
	rec, err := e.newSeries(0, dt, n, "V")
	if err != nil {
		return nil, err
	}
	cur, err := e.newSeries(0, dt, n, "A")
	if err != nil {
		return nil, err
	}

	chain.Reset(dt)
	dl := we.DoubleLayer()
	// Nanostructure gain degraded by film aging (enzyme leaching /
	// denaturation — paper §I long-term monitoring, §III polymers).
	gain := we.Gain() * we.Func.StabilityFactor()
	area := float64(we.Area)
	sigma := 0.0
	if ox != nil {
		sigma = ox.BlankSigmaAt(gain)
	} else {
		// A bare blank still shows background fluctuation; use the
		// smallest oxidase blank density as representative.
		sigma = blankFloorSigma() * gain
	}
	noise := e.rng.Split()
	// The blank background has two parts: a run-to-run offset (electrode
	// state, residual surface species — it does NOT average away within
	// a run and sets the eq. 5 blank scatter) and per-sample
	// fluctuation. Both carry the calibrated σ.
	runOffset := noise.NormScaled(sigma)

	// Precompute every per-step source once: the target's membrane
	// relaxation constants, the cross-talk neighbours (co-chambered
	// oxidase electrodes), and the direct-oxidizer interferents. The
	// potential is fixed for the whole run, so each source's efficiency
	// sigmoid collapses to a constant, and each concentration timeline
	// becomes an O(1) sampler — the per-timestep loop below touches no
	// map and allocates nothing. An unknown species in the chamber
	// solution fails here, before the instrument is touched, instead of
	// being silently skipped on every timestep.
	var targetSampler *cell.Sampler
	etaOx, membStep := 0.0, 0.0
	if ox != nil {
		targetSampler = ch.Solution.Sampler(ox.Target.Name)
		etaOx = echem.SigmoidEfficiency(actual, ox.EHalf, ox.N)
		// Exact first-order membrane relaxation over dt.
		membStep = 1 - math.Exp(-dt/we.Func.MembraneTau)
	}
	// Cross-talk: a fixed fraction of each co-chambered oxidase
	// neighbour's H₂O₂ production appears here. The leaked H₂O₂
	// oxidizes with the *receiving* electrode's half-wave (it is a
	// surface property of the electrode that collects it).
	rxHalf := hydrogenPeroxideHalfWave
	if ox != nil {
		rxHalf = ox.EHalf
	}
	// Iterate the chamber's own electrode list (declaration order, like
	// Cell.Neighbours) instead of materializing a neighbour slice per
	// run.
	e.crosstalks = e.crosstalks[:0]
	for _, nb := range ch.Electrodes {
		if nb.Role != electrode.Working || nb.Name == weName {
			continue
		}
		if nb.Func.IsBlank() || nb.Func.Assay.Technique != enzyme.Chronoamperometry {
			continue
		}
		nox := nb.Func.Assay.Oxidase
		e.crosstalks = append(e.crosstalks, caCrosstalk{
			ox:      nox,
			sampler: ch.Solution.Sampler(nox.Target.Name),
			gain:    nb.Gain(),
			factor: e.Cell.Crosstalk * float64(nox.N) * phys.Faraday *
				echem.SigmoidEfficiency(actual, rxHalf, nox.N),
		})
	}
	// Direct-oxidizer interferents react at any electrode.
	e.interferents = e.interferents[:0]
	for _, name := range ch.Solution.Species() {
		sp, err := species.Lookup(name)
		if err != nil {
			//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
			return nil, fmt.Errorf("measure: chamber %s solution: %w", ch.Name, err)
		}
		if !sp.DirectOxidizer {
			continue
		}
		e.interferents = append(e.interferents, caInterferent{
			sampler: ch.Solution.Sampler(name),
			coeff:   sp.DirectResponse * echem.SigmoidEfficiency(actual, sp.OxidationPotential, sp.Electrons),
		})
	}

	// Surface concentration state behind the membrane: equilibrated
	// with the sample for single-phase runs, buffer-clean for two-phase
	// runs.
	cs := 0.0
	if ox != nil && proto.BaselinePhase <= 0 {
		cs = float64(targetSampler.At(0))
	}

	for i := 0; i < n; i++ {
		t := float64(i) * dt
		j := 0.0 // current density, A/m²
		if ox != nil {
			cb := float64(targetSampler.At(t))
			if t < proto.BaselinePhase {
				cb = 0 // buffer-only phase of the two-phase protocol
			}
			cs += (cb - cs) * membStep
			j += float64(ox.N) * phys.Faraday * ox.TurnoverRate(phys.Concentration(cs), gain) * etaOx
		}
		for k := range e.crosstalks {
			x := &e.crosstalks[k]
			j += x.factor * x.ox.TurnoverRate(x.sampler.At(t), x.gain)
		}
		for k := range e.interferents {
			in := &e.interferents[k]
			j += in.coeff * float64(in.sampler.At(t))
		}
		// Stochastic blank background: run offset plus sample noise.
		j += runOffset + noise.NormScaled(sigma)

		i0 := phys.Current(j * area)
		// Double-layer charging from the initial potential step.
		i0 += dl.ChargingCurrent(actual, t+dt/2)

		raw.Values[i] = float64(i0)
		rv := chain.Digitize(i0)
		rec.Values[i] = float64(rv)
		// Recover the current estimate inline (the nominal
		// transimpedance inversion is pure) instead of a second full
		// pass over the recorded trace.
		cur.Values[i] = float64(chain.CurrentFromVoltage(rv))
	}

	return &CAResult{WE: weName, Applied: actual, Baseline: proto.BaselinePhase,
		Raw: raw, Recorded: rec, Current: cur}, nil
}

// hydrogenPeroxideHalfWave is the H₂O₂ oxidation half-wave at a bare
// gold electrode (the paper's +650 mV working point minus the plateau
// margin).
var hydrogenPeroxideHalfWave = phys.MilliVolts(612)

// blankFloorSigma returns the smallest registered oxidase blank noise
// density, used for bare blank electrodes.
func blankFloorSigma() float64 {
	sigma := math.Inf(1)
	for _, o := range enzyme.Oxidases() {
		if o.BlankSigma > 0 && o.BlankSigma < sigma {
			sigma = o.BlankSigma
		}
	}
	if math.IsInf(sigma, 1) {
		return 0
	}
	return sigma
}

// CVResult is the outcome of one cyclic-voltammetry run.
type CVResult struct {
	// WE names the measured electrode.
	WE string
	// Rate is the sweep rate used.
	Rate phys.SweepRate
	// Potential is the programmed potential vs time (V).
	Potential *trace.Series
	// Raw is the true cell current vs time (A).
	Raw *trace.Series
	// Recorded is the digitized readout voltage vs time (V).
	Recorded *trace.Series
	// Current is the recovered current vs time (A).
	Current *trace.Series
	// Voltammogram is the recovered current vs potential for the final
	// full cycle (the curve the paper's Fig. for CV would plot).
	Voltammogram *trace.XY
}

// RunCV performs cyclic voltammetry on the named working electrode.
//
// Every binding of the electrode's CYP isoform whose substrate is
// present in the chamber contributes a diffusion-limited faradaic
// current scaled by the binding's catalytic efficiency; the double
// layer contributes C·dE/dt; blank noise adds on top; the chain
// digitizes the sum.
//
// RunCV simulates the diffusion field of every active binding from
// scratch. Serving paths that execute the same electrode protocol for
// many samples should precompute a CVBasis once and use RunCVWithBasis:
// the diffusion problem is linear in bulk concentration, so the basis'
// unit flux traces scaled by each sample's effective concentration
// reproduce the simulation at a fraction of the cost.
//
//advdiag:hotpath
func (e *Engine) RunCV(weName string, chain *analog.Chain, proto CyclicVoltammetry) (*CVResult, error) {
	return e.runCV(weName, chain, proto, nil, nil)
}

// RunCVWithBasis is RunCV with the per-binding diffusion simulations
// replaced by the precomputed unit flux traces of basis (see
// CVFluxBasis). The basis must have been computed for the same
// electrode and protocol. Noise, film background, double layer and
// digitization are identical to RunCV; only the faradaic term comes
// from the basis.
//
//advdiag:hotpath
func (e *Engine) RunCVWithBasis(weName string, chain *analog.Chain, proto CyclicVoltammetry, basis *CVBasis) (*CVResult, error) {
	if basis == nil {
		//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
		return nil, fmt.Errorf("measure: RunCVWithBasis needs a basis (use RunCV to simulate)")
	}
	return e.runCV(weName, chain, proto, basis, nil)
}

// RunCVShared is RunCVWithBasis with the per-binding flux scaling
// replaced by a precomputed summed faradaic trace (see CVFaradaicSum).
// Replicated electrodes of one sample share the same active bindings,
// concentrations and factors, so the scaling pass — the only
// per-binding work of the basis mode — is computed once per
// construction and reused across the replicas. The result is
// bit-identical to RunCVWithBasis: the shared trace carries the exact
// per-step sums the inner loop would have accumulated.
//
//advdiag:hotpath
func (e *Engine) RunCVShared(weName string, chain *analog.Chain, proto CyclicVoltammetry, basis *CVBasis, faradaic []float64) (*CVResult, error) {
	if basis == nil {
		//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
		return nil, fmt.Errorf("measure: RunCVShared needs a basis")
	}
	if faradaic == nil {
		//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
		return nil, fmt.Errorf("measure: RunCVShared needs a faradaic trace (use CVFaradaicSum)")
	}
	return e.runCV(weName, chain, proto, basis, faradaic)
}

// CVFaradaicSum precomputes the summed basis-mode faradaic current
// trace for one electrode and sample: dst[i] = Σ_active factor_b ·
// flux_b[i], accumulated in exactly the binding order and arithmetic of
// the RunCVWithBasis inner loop. dst is reused when large enough. The
// engine's RNG is untouched — the active-binding set is a pure function
// of the solution and the basis.
//
//advdiag:hotpath
func (e *Engine) CVFaradaicSum(weName string, proto CyclicVoltammetry, basis *CVBasis, dst []float64) ([]float64, error) {
	if basis == nil {
		//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
		return nil, fmt.Errorf("measure: CVFaradaicSum needs a basis")
	}
	proto = proto.WithDefaults()
	we, err := e.Cell.FindWE(weName)
	if err != nil {
		return nil, err
	}
	ch, err := e.Cell.ChamberOf(weName)
	if err != nil {
		return nil, err
	}
	var cyp *enzyme.CYP
	if !we.Func.IsBlank() {
		if we.Func.Assay.Technique != enzyme.CyclicVoltammetry {
			//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
			return nil, fmt.Errorf("measure: %s carries a %s assay; cyclic voltammetry needs a CYP", weName, we.Func.Assay.Technique)
		}
		cyp = we.Func.Assay.CYP
	}
	if err := basis.check(weName, proto); err != nil {
		return nil, err
	}
	sweep := analog.TriangleSweep{Start: proto.Start, Vertex: proto.Vertex, Rate: proto.Rate, Cycles: proto.Cycles}
	dt := proto.SampleInterval
	n := int(sweep.Duration()/dt) + 1
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	if cyp == nil {
		return dst, nil
	}
	gain := we.Gain() * we.Func.StabilityFactor()
	for _, b := range cyp.Bindings {
		conc := ch.Solution.At(b.Substrate.Name, 0)
		if conc <= 0 {
			continue
		}
		tr := basis.flux[b.Substrate.Name]
		if len(tr) < n {
			//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
			return nil, fmt.Errorf("measure: basis for %s lacks a %s trace", weName, b.Substrate.Name)
		}
		ceff := b.EffectiveConcentration(conc)
		factor := b.Theta * gain * float64(diffusion.Current(b.N, we.Area, float64(ceff)))
		for i := 0; i < n; i++ {
			dst[i] += factor * tr[i]
		}
	}
	return dst, nil
}

//advdiag:hotpath
func (e *Engine) runCV(weName string, chain *analog.Chain, proto CyclicVoltammetry, basis *CVBasis, faradaic []float64) (*CVResult, error) {
	defer e.acquire()()
	proto = proto.WithDefaults()
	if err := proto.Validate(); err != nil {
		return nil, err
	}
	if err := chain.Validate(); err != nil {
		return nil, err
	}
	if !proto.AllowFastSweep {
		if err := analog.CheckSweepRate(proto.Rate); err != nil {
			return nil, err
		}
	}
	we, err := e.Cell.FindWE(weName)
	if err != nil {
		return nil, err
	}
	ch, err := e.Cell.ChamberOf(weName)
	if err != nil {
		return nil, err
	}
	var cyp *enzyme.CYP
	if !we.Func.IsBlank() {
		if we.Func.Assay.Technique != enzyme.CyclicVoltammetry {
			//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
			return nil, fmt.Errorf("measure: %s carries a %s assay; cyclic voltammetry needs a CYP", weName, we.Func.Assay.Technique)
		}
		cyp = we.Func.Assay.CYP
	}

	sweep := analog.TriangleSweep{Start: proto.Start, Vertex: proto.Vertex, Rate: proto.Rate, Cycles: proto.Cycles}
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	dt := proto.SampleInterval
	total := sweep.Duration()
	n := int(total/dt) + 1

	// One diffusion solver — or one scaled basis trace — per active
	// binding.
	type activeBinding struct {
		b      *enzyme.Binding
		sim    *diffusion.CoupleSim
		flux   []float64 // unit flux trace (basis mode)
		factor float64   // Θ·gain·Current(n, A, C_eff) scale (basis mode)
	}
	// Nanostructure gain degraded by film aging — used by both the
	// faradaic scaling below and the basis factors here; one site so
	// the two modes can never diverge.
	gain := we.Gain() * we.Func.StabilityFactor()

	var active []activeBinding
	if basis != nil {
		if err := basis.check(weName, proto); err != nil {
			return nil, err
		}
	}
	if faradaic != nil && len(faradaic) < n {
		//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
		return nil, fmt.Errorf("measure: faradaic trace for %s has %d samples, run needs %d", weName, len(faradaic), n)
	}
	if cyp != nil && faradaic == nil {
		active = make([]activeBinding, 0, len(cyp.Bindings))
		for _, b := range cyp.Bindings {
			conc := ch.Solution.At(b.Substrate.Name, 0)
			if conc <= 0 {
				continue
			}
			if basis != nil {
				tr := basis.flux[b.Substrate.Name]
				if len(tr) < n {
					//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
					return nil, fmt.Errorf("measure: basis for %s lacks a %s trace", weName, b.Substrate.Name)
				}
				ceff := b.EffectiveConcentration(conc)
				active = append(active, activeBinding{
					b:      b,
					flux:   tr,
					factor: b.Theta * gain * float64(diffusion.Current(b.N, we.Area, float64(ceff))),
				})
				continue
			}
			sim, err := diffusion.New(diffusion.Config{
				Kinetics:  b.Kinetics(),
				Diffusion: b.Substrate.Diffusion,
				BulkO:     b.EffectiveConcentration(conc),
				TotalTime: total,
				Dt:        dt,
			})
			if err != nil {
				//advdiag:allow hot-fmt cold validation path: fires once per rejected call, never per timestep
				return nil, fmt.Errorf("measure: CV solver for %s: %w", b.Substrate.Name, err)
			}
			active = append(active, activeBinding{b: b, sim: sim})
		}
	}

	pot, err := e.newSeries(0, dt, n, "V")
	if err != nil {
		return nil, err
	}
	raw, err := e.newSeries(0, dt, n, "A")
	if err != nil {
		return nil, err
	}
	rec, err := e.newSeries(0, dt, n, "V")
	if err != nil {
		return nil, err
	}
	cur, err := e.newSeries(0, dt, n, "A")
	if err != nil {
		return nil, err
	}

	chain.Reset(dt)
	dl := we.DoubleLayer()
	area := float64(we.Area)
	// The blank current-density noise is a property of the electrode's
	// enzyme film, present whether or not substrate is in solution.
	sigma := blankFloorSigma() * gain
	if cyp != nil {
		sigma = we.Func.Assay.Binding.BlankSigmaAt(gain)
	}
	noise := e.rng.Split()

	// Run-to-run film background: the immobilized protein film shows a
	// variable pseudo-capacitive redox background centred near each
	// binding's peak potential (surface-adsorbed species, film state).
	// This is what limits the *blank scatter* of voltammetric assays —
	// white per-sample noise alone would average away in the template
	// fit and yield unrealistically low LODs. One random-amplitude
	// Gaussian bump per binding, drawn per run with the binding's
	// calibrated blank σ.
	type bump struct {
		center phys.Voltage
		amp    float64 // A
	}
	var bumps []bump
	if cyp != nil && !proto.NoFilmBackground {
		bumps = make([]bump, 0, len(cyp.Bindings))
		for _, b := range cyp.Bindings {
			bumps = append(bumps, bump{
				center: b.PeakPotential,
				amp:    noise.NormScaled(b.BlankSigmaAt(gain)) * area,
			})
		}
	}

	prevE := chain.ApplyPotential(sweep.VoltageAt(0))
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		eProg := sweep.VoltageAt(t)
		eAct := chain.ApplyPotential(eProg)

		var iF phys.Current
		if faradaic != nil {
			iF = phys.Current(faradaic[i])
		} else {
			for k := range active {
				ab := &active[k]
				if ab.sim != nil {
					flux := ab.sim.Step(eAct)
					iF += phys.Current(ab.b.Theta * gain * float64(diffusion.Current(ab.b.N, we.Area, flux)))
				} else {
					iF += phys.Current(ab.factor * ab.flux[i])
				}
			}
		}
		// Double-layer charging tracks dE/dt.
		dEdt := float64(eAct-prevE) / dt
		iCap := phys.Current(float64(dl.C) * dEdt)
		prevE = eAct

		iN := phys.Current(noise.NormScaled(sigma) * area)
		i0 := iF + iCap + iN
		for _, bp := range bumps {
			x := float64(eAct-bp.center) / FilmBumpWidth
			i0 += phys.Current(bp.amp * math.Exp(-x*x))
		}

		pot.Values[i] = float64(eProg)
		raw.Values[i] = float64(i0)
		rv := chain.Digitize(i0)
		rec.Values[i] = float64(rv)
		cur.Values[i] = float64(chain.CurrentFromVoltage(rv))
	}

	// Voltammogram: the final full cycle.
	first := finalCycleFirstIndex(n, dt, total-2*sweep.HalfPeriod())
	vg := e.newXY("V", "A")
	if cap(vg.X) < n-first {
		vg.X = make([]float64, 0, n-first)
		vg.Y = make([]float64, 0, n-first)
	}
	for i := first; i < n; i++ {
		vg.Append(pot.Values[i], cur.Values[i])
	}
	return &CVResult{
		WE:           weName,
		Rate:         proto.Rate,
		Potential:    pot,
		Raw:          raw,
		Recorded:     rec,
		Current:      cur,
		Voltammogram: vg,
	}, nil
}

// ApplyCDS performs correlated double sampling: it subtracts the blank
// electrode's recorded trace from the sensing electrode's, removing
// correlated offsets and drift (paper §II-C). Both series must share
// the time base.
func ApplyCDS(signal, blank *trace.Series) (*trace.Series, error) {
	if signal.Len() != blank.Len() || signal.Dt != blank.Dt {
		return nil, fmt.Errorf("measure: CDS traces are not aligned (%d@%g vs %d@%g)",
			signal.Len(), signal.Dt, blank.Len(), blank.Dt)
	}
	out := &trace.Series{Start: signal.Start, Dt: signal.Dt, Unit: signal.Unit,
		Values: make([]float64, signal.Len())}
	for i := range out.Values {
		out.Values[i] = signal.Values[i] - blank.Values[i]
	}
	return out, nil
}

// Ensure electrode is referenced (the engine works through cell, but the
// compile-time type assertions below document chain expectations).
var _ = electrode.Working
