package measure

import (
	"testing"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
)

// The allocation-regression suite pins the tentpole property of the
// measurement layer: the per-timestep loops allocate nothing, so a
// run's allocation count is a small constant independent of its
// duration. Rather than asserting a brittle absolute number, each test
// compares a short and a long run of the same protocol — any per-step
// allocation shows up as a difference that scales with the step count.

// crossTalkCell builds a two-electrode shared chamber with a
// direct-oxidizer interferent, exercising every per-step source the CA
// loop has (target membrane lag, neighbour cross-talk, interferents).
func crossTalkCell(t *testing.T) *cell.Cell {
	t.Helper()
	glu := assayFor(t, "glucose", enzyme.Chronoamperometry)
	lac := assayFor(t, "lactate", enzyme.Chronoamperometry)
	sol := cell.NewSolution().
		Set("glucose", phys.MilliMolar(2)).
		Set("lactate", phys.MilliMolar(1)).
		Set("dopamine", phys.MilliMolar(0.05))
	return cell.NewSingleChamber(sol,
		electrode.NewWorking("WE1", electrode.CNT, glu),
		electrode.NewWorking("WE2", electrode.CNT, lac),
		electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
}

func caAllocs(t *testing.T, eng *Engine, duration float64) float64 {
	t.Helper()
	chain := analog.NewNanoChain(nil, eng.RNG())
	return testing.AllocsPerRun(8, func() {
		if _, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: duration}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRunCAAllocsDurationIndependent(t *testing.T) {
	eng, err := NewEngine(crossTalkCell(t), 7)
	if err != nil {
		t.Fatal(err)
	}
	short := caAllocs(t, eng, 30) // 301 steps
	long := caAllocs(t, eng, 120) // 1201 steps
	// 900 extra steps may not add allocations beyond measurement jitter.
	if long-short > 2 {
		t.Fatalf("RunCA allocations scale with duration: %.1f at 30 s vs %.1f at 120 s", short, long)
	}
	// And the constant itself stays small: results (4 trace allocations
	// ×3 series), samplers and the RNG split, not per-step garbage.
	if long > 40 {
		t.Fatalf("RunCA allocates %.1f objects per run, want ≤ 40", long)
	}
}

func cvAllocs(t *testing.T, eng *Engine, proto CyclicVoltammetry, basis *CVBasis) float64 {
	t.Helper()
	chain := analog.NewNanoChain(nil, eng.RNG())
	return testing.AllocsPerRun(5, func() {
		var err error
		if basis != nil {
			_, err = eng.RunCVWithBasis("WE1", chain, proto, basis)
		} else {
			_, err = eng.RunCV("WE1", chain, proto)
		}
		if err != nil {
			t.Fatal(err)
		}
	})
}

func cypCVCell(t *testing.T) *cell.Cell {
	t.Helper()
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	sol := cell.NewSolution().
		Set("benzphetamine", phys.MilliMolar(1)).
		Set("aminopyrine", phys.MilliMolar(4))
	return cell.NewSingleChamber(sol,
		electrode.NewWorking("WE1", electrode.Bare, a),
		electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
}

func TestRunCVAllocsCycleIndependent(t *testing.T) {
	eng, err := NewEngine(cypCVCell(t), 7)
	if err != nil {
		t.Fatal(err)
	}
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	var peaks []phys.Voltage
	for _, b := range a.CYP.Bindings {
		peaks = append(peaks, b.PeakPotential)
	}
	start, vertex := CVWindowFor(peaks...)
	one := CyclicVoltammetry{Start: start, Vertex: vertex, Cycles: 1}
	two := CyclicVoltammetry{Start: start, Vertex: vertex, Cycles: 2}

	short := cvAllocs(t, eng, one, nil)
	long := cvAllocs(t, eng, two, nil)
	// Doubling the sweep doubles the step count; the per-run constant
	// (result series, solvers, film bumps) must not follow it.
	if long-short > 2 {
		t.Fatalf("RunCV allocations scale with cycles: %.1f at 1 cycle vs %.1f at 2", short, long)
	}

	// The basis path must hold the same property while skipping the
	// solver construction entirely.
	basisOne, err := eng.CVFluxBasis("WE1", one, nil)
	if err != nil {
		t.Fatal(err)
	}
	basisTwo, err := eng.CVFluxBasis("WE1", two, nil)
	if err != nil {
		t.Fatal(err)
	}
	shortB := cvAllocs(t, eng, one, basisOne)
	longB := cvAllocs(t, eng, two, basisTwo)
	if longB-shortB > 2 {
		t.Fatalf("RunCVWithBasis allocations scale with cycles: %.1f vs %.1f", shortB, longB)
	}
	if longB >= long {
		t.Fatalf("basis path must allocate less than simulation (%.1f vs %.1f)", longB, long)
	}
}

// TestRunCAUnknownSpeciesError pins the satellite bugfix: an unknown
// species in the chamber solution fails the run up front instead of
// being silently skipped on every timestep.
func TestRunCAUnknownSpeciesError(t *testing.T) {
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	sol := cell.NewSolution().
		Set("glucose", phys.MilliMolar(2)).
		Set("unobtainium", phys.MilliMolar(1))
	c := cell.NewSingleChamber(sol,
		electrode.NewWorking("WE1", electrode.CNT, a),
		electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := NewEngine(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	chain := analog.NewNanoChain(nil, eng.RNG())
	if _, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 10}); err == nil {
		t.Fatal("RunCA accepted a solution with an unknown species")
	}
}

// TestRunCVBasisMatchesSimulation checks the linearity substitution the
// serving layer relies on: a basis-driven run reproduces the simulated
// run to solver tolerance (same noise stream, same protocol).
func TestRunCVBasisMatchesSimulation(t *testing.T) {
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	var peaks []phys.Voltage
	for _, b := range a.CYP.Bindings {
		peaks = append(peaks, b.PeakPotential)
	}
	start, vertex := CVWindowFor(peaks...)
	proto := CyclicVoltammetry{Start: start, Vertex: vertex}

	engSim, err := NewEngine(cypCVCell(t), 99)
	if err != nil {
		t.Fatal(err)
	}
	engBas, err := NewEngine(cypCVCell(t), 99)
	if err != nil {
		t.Fatal(err)
	}
	basis, err := engBas.CVFluxBasis("WE1", proto, nil)
	if err != nil {
		t.Fatal(err)
	}

	simRes, err := engSim.RunCV("WE1", analog.NewNanoChain(nil, engSim.RNG()), proto)
	if err != nil {
		t.Fatal(err)
	}
	basRes, err := engBas.RunCVWithBasis("WE1", analog.NewNanoChain(nil, engBas.RNG()), proto, basis)
	if err != nil {
		t.Fatal(err)
	}

	// Compare raw traces (pre-quantization): the faradaic term differs
	// only by the basis' nil-chain drive (sub-mV potentiostat offset)
	// and float re-association — well under 1% of the cathodic peak.
	peak := 0.0
	for _, v := range simRes.Raw.Values {
		if -v > peak {
			peak = -v
		}
	}
	if peak <= 0 {
		t.Fatal("no cathodic peak in simulated run")
	}
	for i := range simRes.Raw.Values {
		diff := simRes.Raw.Values[i] - basRes.Raw.Values[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01*peak {
			t.Fatalf("sample %d: basis %.4g vs sim %.4g differs by %.2f%% of peak",
				i, basRes.Raw.Values[i], simRes.Raw.Values[i], 100*diff/peak)
		}
	}

	// Mismatched protocol or electrode must be rejected.
	if _, err := engBas.RunCVWithBasis("WE1", analog.NewNanoChain(nil, engBas.RNG()),
		CyclicVoltammetry{Start: start + 0.1, Vertex: vertex}, basis); err == nil {
		t.Fatal("basis accepted for a different protocol")
	}
}
