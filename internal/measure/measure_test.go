package measure

import (
	"math"
	"testing"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/mathx"
	"advdiag/internal/phys"
	"advdiag/internal/trace"
)

func assayFor(t *testing.T, target string, tech enzyme.Technique) enzyme.Assay {
	t.Helper()
	for _, a := range enzyme.AssaysFor(target) {
		if a.Technique == tech {
			return a
		}
	}
	t.Fatalf("no %v assay for %s", tech, target)
	return enzyme.Assay{}
}

func glucoseCell(t *testing.T, concMM float64) *cell.Cell {
	t.Helper()
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	we := electrode.NewWorking("WE1", electrode.CNT, a)
	sol := cell.NewSolution().Set("glucose", phys.MilliMolar(concMM))
	return cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
}

func TestRunCASteadyStateMatchesKinetics(t *testing.T) {
	eng, err := NewEngine(glucoseCell(t, 2), 42)
	if err != nil {
		t.Fatal(err)
	}
	chain := analog.NewNanoChain(nil, eng.RNG())
	res, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 150})
	if err != nil {
		t.Fatal(err)
	}
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	wantJ := a.Oxidase.CurrentDensity(phys.MilliMolar(2), res.Applied, enzyme.CNTGain)
	want := wantJ * float64(electrode.ReferenceArea)
	got := float64(res.SteadyCurrent())
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("steady current %.4g, kinetic prediction %.4g", got, want)
	}
}

func TestRunCAUsesTableIPotential(t *testing.T) {
	eng, _ := NewEngine(glucoseCell(t, 1), 1)
	chain := analog.NewNanoChain(nil, eng.RNG())
	res, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Default potential = glucose oxidase +550 mV (within the
	// potentiostat's sub-mV control error).
	if math.Abs(res.Applied.MilliVolts()-550) > 1 {
		t.Fatalf("applied %g mV, want ≈550", res.Applied.MilliVolts())
	}
}

func TestRunCAMembraneTransient(t *testing.T) {
	// After an injection the surface concentration approaches the bulk
	// with τ ≈ 13 s. Because of the Michaelis–Menten curvature the
	// current fraction at t0+τ is slightly above 1−e⁻¹ in concentration
	// terms; compare against the model's own prediction.
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	we := electrode.NewWorking("WE1", electrode.CNT, a)
	sol := cell.NewSolution().Inject(5, "glucose", phys.MilliMolar(2))
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 7)
	chain := analog.NewNanoChain(nil, eng.RNG())
	chain.Noise = nil
	res, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 150})
	if err != nil {
		t.Fatal(err)
	}
	iss := float64(res.SteadyCurrent())
	atTau := res.Current.At(5 + electrode.DefaultMembraneTau)
	csTau := 2 * (1 - math.Exp(-1)) // surface concentration at τ
	wantFrac := a.Oxidase.CurrentDensity(phys.Concentration(csTau), res.Applied, enzyme.CNTGain) /
		a.Oxidase.CurrentDensity(phys.MilliMolar(2), res.Applied, enzyme.CNTGain)
	frac := atTau / iss
	if math.Abs(frac-wantFrac) > 0.12 {
		t.Fatalf("I(τ)/Iss = %g, want ≈%g", frac, wantFrac)
	}
}

func TestRunCABlankNeedsPotential(t *testing.T) {
	blank := electrode.NewBlankWorking("WEB")
	sol := cell.NewSolution()
	c := cell.NewSingleChamber(sol, blank, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 1)
	chain := analog.NewNanoChain(nil, eng.RNG())
	if _, err := eng.RunCA("WEB", chain, Chronoamperometry{Duration: 5}); err == nil {
		t.Fatal("blank electrode without explicit potential must fail")
	}
	if _, err := eng.RunCA("WEB", chain, Chronoamperometry{Potential: phys.MilliVolts(650), Duration: 5}); err != nil {
		t.Fatalf("blank with potential: %v", err)
	}
}

func TestRunCARejectsCVElectrode(t *testing.T) {
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution().Set("benzphetamine", 1)
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 1)
	chain := analog.NewNanoChain(nil, eng.RNG())
	if _, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 5}); err == nil {
		t.Fatal("chronoamperometry on a CYP electrode must fail")
	}
}

func TestCrosstalkSmallButPresent(t *testing.T) {
	// Two co-chambered oxidase electrodes: the glucose electrode must
	// see a small parasitic current from the lactate electrode's H₂O₂.
	ag := assayFor(t, "glucose", enzyme.Chronoamperometry)
	al := assayFor(t, "lactate", enzyme.Chronoamperometry)
	weG := electrode.NewWorking("WEG", electrode.CNT, ag)
	weL := electrode.NewWorking("WEL", electrode.CNT, al)
	mk := func(lactateMM float64) float64 {
		sol := cell.NewSolution().Set("lactate", phys.MilliMolar(lactateMM))
		c := cell.NewSingleChamber(sol, weG, weL, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		eng, err := NewEngine(c, 5)
		if err != nil {
			t.Fatal(err)
		}
		chain := analog.NewNanoChain(nil, eng.RNG())
		chain.Noise = nil
		res, err := eng.RunCA("WEG", chain, Chronoamperometry{Duration: 60})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SteadyCurrent())
	}
	without := mk(0)
	with := mk(2)
	leak := with - without
	if leak <= 0 {
		t.Fatalf("no cross-talk current detected (%.3g vs %.3g)", with, without)
	}
	// The paper's argument: the leak is small. Compare against the
	// lactate electrode's own signal at 2 mM.
	ownJ := al.Oxidase.CurrentDensity(phys.MilliMolar(2), al.Oxidase.Applied, enzyme.CNTGain)
	own := ownJ * float64(electrode.ReferenceArea)
	if leak/own > 0.05 {
		t.Fatalf("cross-talk %.1f%% of neighbour signal: too large", 100*leak/own)
	}
}

func TestDirectOxidizerInterference(t *testing.T) {
	// Dopamine raises the blank current at an enzyme-free electrode —
	// the paper's caveat about CDS (§II-C).
	mk := func(dopamineMM float64) float64 {
		blank := electrode.NewBlankWorking("WEB")
		sol := cell.NewSolution().Set("dopamine", phys.MilliMolar(dopamineMM))
		c := cell.NewSingleChamber(sol, blank, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
		eng, _ := NewEngine(c, 9)
		chain := analog.NewNanoChain(nil, eng.RNG())
		chain.Noise = nil
		res, err := eng.RunCA("WEB", chain, Chronoamperometry{Potential: phys.MilliVolts(650), Duration: 30})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.SteadyCurrent())
	}
	if raised := mk(0.5) - mk(0); raised <= 0 {
		t.Fatal("dopamine must add current at a bare electrode")
	}
}

func TestApplyCDSRemovesCommonMode(t *testing.T) {
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	we := electrode.NewWorking("WE1", electrode.CNT, a)
	blank := electrode.NewBlankWorking("WEB")
	sol := cell.NewSolution().Set("glucose", phys.MilliMolar(1))
	c := cell.NewSingleChamber(sol, we, blank, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 21)
	chain := analog.NewOxidaseChain(nil, eng.RNG())
	chain.Readout.OutputOffset = phys.MilliVolts(5) // deliberate offset
	sig, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 30})
	if err != nil {
		t.Fatal(err)
	}
	chain2 := analog.NewOxidaseChain(nil, eng.RNG())
	chain2.Readout.OutputOffset = phys.MilliVolts(5)
	bl, err := eng.RunCA("WEB", chain2, Chronoamperometry{Potential: a.Oxidase.Applied, Duration: 30})
	if err != nil {
		t.Fatal(err)
	}
	cds, err := ApplyCDS(sig.Recorded, bl.Recorded)
	if err != nil {
		t.Fatal(err)
	}
	// The 5 mV offset must vanish from the corrected trace: compare the
	// corrected steady level with the raw one.
	rawSteady := mathx.Mean(sig.Recorded.Tail(0.2))
	cdsSteady := mathx.Mean(cds.Tail(0.2))
	if math.Abs(rawSteady-cdsSteady-0) < 0.004 {
		t.Fatalf("CDS did not remove the offset: raw %g, cds %g", rawSteady, cdsSteady)
	}
}

func TestApplyCDSRejectsMisaligned(t *testing.T) {
	s1, _ := trace.NewSeries(0, 0.1, 10, "V")
	s2, _ := trace.NewSeries(0, 0.2, 10, "V")
	if _, err := ApplyCDS(s1, s2); err == nil {
		t.Fatal("misaligned traces must fail")
	}
}

func TestRunCVPeakAtTableIIPotential(t *testing.T) {
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution().Set("benzphetamine", phys.MilliMolar(1))
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 42)
	chain := analog.NewPicoChain(nil, eng.RNG())
	start, vertex := CVWindowFor(a.Binding.PeakPotential)
	res, err := eng.RunCV("WE1", chain, CyclicVoltammetry{Start: start, Vertex: vertex})
	if err != nil {
		t.Fatal(err)
	}
	// Locate the cathodic minimum on the forward (first) branch.
	vg := res.Voltammogram
	minI, minV := 0.0, 0.0
	for i := 0; i < vg.Len(); i++ {
		if i > 0 && vg.X[i] > vg.X[i-1] {
			break // vertex reached
		}
		if vg.Y[i] < minI {
			minI, minV = vg.Y[i], vg.X[i]
		}
	}
	if math.Abs(minV*1e3-(-250)) > 15 {
		t.Fatalf("cathodic peak at %.0f mV (%.3g A), want −250 ± 15", minV*1e3, minI)
	}
}

func TestRunCVSweepRateGuard(t *testing.T) {
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution().Set("benzphetamine", phys.MilliMolar(1))
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 1)
	chain := analog.NewPicoChain(nil, eng.RNG())
	proto := CyclicVoltammetry{Start: 0, Vertex: phys.MilliVolts(-500), Rate: phys.MilliVoltsPerSecond(500)}
	if _, err := eng.RunCV("WE1", chain, proto); err == nil {
		t.Fatal("500 mV/s without AllowFastSweep must fail")
	}
	proto.AllowFastSweep = true
	if _, err := eng.RunCV("WE1", chain, proto); err != nil {
		t.Fatalf("AllowFastSweep run failed: %v", err)
	}
}

func TestCVTemplatesLinearity(t *testing.T) {
	// The voltammogram of a 2 mM sample must equal 2× the unit template
	// (noise-free chain) up to capacitive background.
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution().Set("benzphetamine", phys.MilliMolar(0.2)) // well below Km
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, _ := NewEngine(c, 1)
	start, vertex := CVWindowFor(a.Binding.PeakPotential)
	proto := CyclicVoltammetry{Start: start, Vertex: vertex}
	grid, templates, err := eng.CVTemplates("WE1", proto)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Len() == 0 {
		t.Fatal("empty template grid")
	}
	tpl, ok := templates["benzphetamine"]
	if !ok {
		t.Fatal("missing benzphetamine template")
	}
	if len(tpl) != grid.Len() {
		t.Fatalf("template length %d vs grid %d", len(tpl), grid.Len())
	}
	// Peak of the unit template ≈ θ·RS prediction.
	peak := 0.0
	for _, v := range tpl {
		if -v > peak {
			peak = -v
		}
	}
	want := float64(a.Binding.PeakSensitivityAt(proto.WithDefaults().Rate, 1)) * float64(electrode.ReferenceArea)
	if math.Abs(peak-want)/want > 0.05 {
		t.Fatalf("unit template peak %.4g vs θ·RS %.4g", peak, want)
	}
}

func TestCVWindowFor(t *testing.T) {
	start, vertex := CVWindowFor(phys.MilliVolts(-250), phys.MilliVolts(-400))
	if math.Abs(start.MilliVolts()-0) > 1e-9 {
		t.Fatalf("start %g mV, want 0", start.MilliVolts())
	}
	if math.Abs(vertex.MilliVolts()-(-650)) > 1e-9 {
		t.Fatalf("vertex %g mV, want −650", vertex.MilliVolts())
	}
}

func TestProtocolDefaults(t *testing.T) {
	ca := Chronoamperometry{}.WithDefaults()
	if ca.Duration != 60 || ca.SampleInterval != 0.1 {
		t.Fatalf("CA defaults: %+v", ca)
	}
	cv := CyclicVoltammetry{Start: 0, Vertex: -0.5}.WithDefaults()
	if cv.Rate != phys.MilliVoltsPerSecond(20) || cv.Cycles != 1 {
		t.Fatalf("CV defaults: %+v", cv)
	}
	// One sample per millivolt at the default rate.
	if math.Abs(cv.SampleInterval-0.05) > 1e-12 {
		t.Fatalf("CV sample interval %g", cv.SampleInterval)
	}
}
