package measure

import (
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"advdiag/internal/analog"
	"advdiag/internal/cell"
	"advdiag/internal/electrode"
	"advdiag/internal/enzyme"
	"advdiag/internal/phys"
	"advdiag/internal/trace"
)

// The golden-trace suite pins the diffusion/electrochemistry hot path
// bit-for-bit: each test runs a fixed-seed protocol, hashes every
// float64 of the resulting traces, and compares against a committed
// golden file. Any numerical drift — an reordered floating-point
// reduction, a changed noise draw, a solver tweak — fails loudly here
// instead of silently shifting calibration results.
//
// To regenerate after an INTENTIONAL numerical change:
//
//	go test ./internal/measure -run TestGolden -update
//
// and commit the rewritten testdata/*.golden files with a note on why
// the numbers moved.
var update = flag.Bool("update", false, "rewrite golden trace files")

// hashSeries folds labelled float64 slices into one sha256. The label
// keeps a swap of two same-length traces from cancelling out.
func hashSeries(parts map[string][]float64) string {
	names := make([]string, 0, len(parts))
	for name := range parts {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var buf [8]byte
	for _, name := range names {
		h.Write([]byte(name))
		vals := parts[name]
		binary.LittleEndian.PutUint64(buf[:], uint64(len(vals)))
		h.Write(buf[:])
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// goldenSummary renders the comparison record: the architecture the
// numbers were recorded on (Go permits FMA contraction, so bit
// patterns legitimately differ across architectures), the hash, and a
// few human-readable anchors (exact bit patterns) that make a mismatch
// diagnosable without rerunning old commits.
func goldenSummary(parts map[string][]float64, anchors map[string]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "arch %s\n", runtime.GOARCH)
	fmt.Fprintf(&b, "sha256 %s\n", hashSeries(parts))
	names := make([]string, 0, len(anchors))
	for name := range anchors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := anchors[name]
		fmt.Fprintf(&b, "%s %016x (%g)\n", name, math.Float64bits(v), v)
	}
	return b.String()
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
	}
	// Bit-exact comparison only holds within one architecture: the Go
	// compiler may fuse multiply-adds differently on e.g. arm64 than on
	// the arch that recorded the file.
	if arch, ok := strings.CutPrefix(strings.SplitN(string(want), "\n", 2)[0], "arch "); ok && arch != runtime.GOARCH {
		t.Skipf("golden file %s was recorded on %s, running on %s; regenerate with -update to pin this architecture", path, arch, runtime.GOARCH)
	}
	if string(want) != got {
		t.Errorf("numerical drift in the %s hot path.\n--- recorded (%s):\n%s--- current:\n%s"+
			"If the change is intentional, regenerate with `go test ./internal/measure -run TestGolden -update` and commit.",
			name, path, want, got)
	}
}

func seriesParts(prefix string, s *trace.Series) (string, []float64) {
	return prefix, s.Values
}

// TestGoldenCATrace pins the chronoamperometric hot path: glucose
// oxidase on CNT, two-phase protocol, fixed seed — membrane lag,
// Michaelis–Menten turnover, double-layer charging, blank noise, and
// the full analog chain all feed the hash.
func TestGoldenCATrace(t *testing.T) {
	a := assayFor(t, "glucose", enzyme.Chronoamperometry)
	we := electrode.NewWorking("WE1", electrode.CNT, a)
	sol := cell.NewSolution().Set("glucose", phys.MilliMolar(2))
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := NewEngine(c, 20240901)
	if err != nil {
		t.Fatal(err)
	}
	chain := analog.NewNanoChain(nil, eng.RNG())
	res, err := eng.RunCA("WE1", chain, Chronoamperometry{Duration: 90, BaselinePhase: 15})
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string][]float64{}
	for _, s := range []struct {
		name string
		ser  *trace.Series
	}{{"raw", res.Raw}, {"recorded", res.Recorded}, {"current", res.Current}} {
		k, v := seriesParts(s.name, s.ser)
		parts[k] = v
	}
	checkGolden(t, "ca_glucose", goldenSummary(parts, map[string]float64{
		"steady_A": float64(res.SteadyCurrent()),
		"step_A":   float64(res.StepCurrent()),
		"n":        float64(res.Current.Len()),
	}))
}

// TestGoldenCVTrace pins the voltammetric hot path: the CYP2B4
// dual-drug electrode, fixed seed — the diffusion solver, film
// background bumps, sweep generation, digitization, and the
// final-cycle voltammogram extraction all feed the hash.
func TestGoldenCVTrace(t *testing.T) {
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution().
		Set("benzphetamine", phys.MilliMolar(1)).
		Set("aminopyrine", phys.MilliMolar(4))
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := NewEngine(c, 20240902)
	if err != nil {
		t.Fatal(err)
	}
	chain := analog.NewNanoChain(nil, eng.RNG())
	var peaks []phys.Voltage
	for _, b := range a.CYP.Bindings {
		peaks = append(peaks, b.PeakPotential)
	}
	start, vertex := CVWindowFor(peaks...)
	res, err := eng.RunCV("WE1", chain, CyclicVoltammetry{Start: start, Vertex: vertex})
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string][]float64{
		"potential": res.Potential.Values,
		"raw":       res.Raw.Values,
		"current":   res.Current.Values,
		"vg_x":      res.Voltammogram.X,
		"vg_y":      res.Voltammogram.Y,
	}
	minY := math.Inf(1)
	for _, v := range res.Voltammogram.Y {
		if v < minY {
			minY = v
		}
	}
	checkGolden(t, "cv_cyp2b4", goldenSummary(parts, map[string]float64{
		"vg_points": float64(len(res.Voltammogram.X)),
		"vg_min_A":  minY,
		"n_samples": float64(res.Current.Len()),
		"sweep_Vs":  float64(res.Rate),
	}))
}

// TestGoldenCVTemplates pins the calibration side of the CV path: the
// noise-free unit templates the panel quantification fits against. If
// these drift relative to the measured traces, every concentration
// estimate silently shifts — so they get their own golden file.
func TestGoldenCVTemplates(t *testing.T) {
	a := assayFor(t, "benzphetamine", enzyme.CyclicVoltammetry)
	we := electrode.NewWorking("WE1", electrode.Bare, a)
	sol := cell.NewSolution()
	c := cell.NewSingleChamber(sol, we, electrode.NewReference("RE1"), electrode.NewCounter("CE1"))
	eng, err := NewEngine(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	var peaks []phys.Voltage
	for _, b := range a.CYP.Bindings {
		peaks = append(peaks, b.PeakPotential)
	}
	start, vertex := CVWindowFor(peaks...)
	grid, templates, err := eng.CVTemplates("WE1", CyclicVoltammetry{Start: start, Vertex: vertex})
	if err != nil {
		t.Fatal(err)
	}
	parts := map[string][]float64{"grid_x": grid.X}
	anchors := map[string]float64{"grid_points": float64(len(grid.X))}
	for name, tpl := range templates {
		parts["tpl_"+name] = tpl
		peak := 0.0
		for _, v := range tpl {
			if -v > peak {
				peak = -v
			}
		}
		anchors["peak_"+name] = peak
	}
	checkGolden(t, "cv_templates_cyp2b4", goldenSummary(parts, anchors))
}
