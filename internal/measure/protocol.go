// Package measure runs electrochemical measurements: it couples the
// cell model (enzyme kinetics, diffusion, double layer, cross-talk) to
// one analog acquisition chain and executes chronoamperometry or cyclic
// voltammetry protocols, producing digitized traces.
package measure

import (
	"fmt"

	"advdiag/internal/phys"
)

// Chronoamperometry holds the working electrode at a fixed potential
// and records the current transient (oxidase readout, paper §I-B).
type Chronoamperometry struct {
	// Potential is the applied potential; zero means "use the probe's
	// Table I applied potential".
	Potential phys.Voltage
	// Duration is the total measurement time in seconds.
	Duration float64
	// SampleInterval is the recording interval; zero defaults to 0.1 s.
	SampleInterval float64
	// BaselinePhase, when positive, runs a two-phase protocol: the
	// electrode's own target is withheld (buffer only) until this time,
	// then the sample is introduced. The step between the settled phases
	// (CAResult.StepCurrent) cancels run-to-run baseline offsets and
	// co-present interferent currents — the zeroing procedure real
	// instruments perform before introducing the sample.
	BaselinePhase float64
}

// WithDefaults fills unset fields.
func (p Chronoamperometry) WithDefaults() Chronoamperometry {
	if p.SampleInterval <= 0 {
		p.SampleInterval = 0.1
	}
	if p.Duration <= 0 {
		p.Duration = 60
	}
	return p
}

// Validate checks the protocol.
func (p Chronoamperometry) Validate() error {
	p = p.WithDefaults()
	if p.Duration < p.SampleInterval {
		return fmt.Errorf("measure: CA duration %g s shorter than sample interval %g s", p.Duration, p.SampleInterval)
	}
	return nil
}

// CyclicVoltammetry sweeps the potential linearly between Start and
// Vertex and back, recording current vs potential (CYP readout).
type CyclicVoltammetry struct {
	// Start is the initial potential; for reduction scans it sits above
	// (more positive than) every expected peak.
	Start phys.Voltage
	// Vertex is the turning potential, below every expected peak.
	Vertex phys.Voltage
	// Rate is the sweep rate; zero defaults to the paper's 20 mV/s.
	Rate phys.SweepRate
	// Cycles is the number of full triangles; zero defaults to 1.
	Cycles int
	// SampleInterval is the recording interval; zero defaults to the
	// time of a 1 mV potential step at the chosen rate.
	SampleInterval float64
	// AllowFastSweep skips the cell sweep-rate check (used by the
	// sweep-rate ablation experiment).
	AllowFastSweep bool
	// NoFilmBackground disables the run-to-run film background bumps —
	// for ablation experiments that isolate electrode kinetics.
	NoFilmBackground bool
}

// WithDefaults fills unset fields.
func (p CyclicVoltammetry) WithDefaults() CyclicVoltammetry {
	if p.Rate <= 0 {
		p.Rate = phys.MilliVoltsPerSecond(20)
	}
	if p.Cycles <= 0 {
		p.Cycles = 1
	}
	if p.SampleInterval <= 0 {
		p.SampleInterval = 0.001 / float64(p.Rate) // one sample per mV
	}
	return p
}

// Validate checks the protocol.
func (p CyclicVoltammetry) Validate() error {
	p = p.WithDefaults()
	if p.Start == p.Vertex {
		return fmt.Errorf("measure: degenerate CV window")
	}
	return nil
}

// CVWindowFor returns a CV window bracketing the given peak potentials
// with the standard 250 mV margins on both sides (cathodic-first scan:
// start above the peaks, vertex below).
func CVWindowFor(peaks ...phys.Voltage) (start, vertex phys.Voltage) {
	if len(peaks) == 0 {
		return phys.MilliVolts(100), phys.MilliVolts(-800)
	}
	hi, lo := peaks[0], peaks[0]
	for _, p := range peaks[1:] {
		if p > hi {
			hi = p
		}
		if p < lo {
			lo = p
		}
	}
	return hi + phys.MilliVolts(250), lo - phys.MilliVolts(250)
}

// FilmBumpWidth is the potential width (volts) of the enzyme film's
// variable pseudo-capacitive background bump around each binding's
// formal potential. The quantification side fits nuisance columns of
// the same shape (analysis.GaussianColumn).
const FilmBumpWidth = 0.060
