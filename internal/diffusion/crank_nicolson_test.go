package diffusion

import (
	"math"
	"testing"

	"advdiag/internal/echem"
	"advdiag/internal/phys"
)

// TestCrankNicolsonToleranceTable sweeps the external sample interval
// and pins the solver's accuracy against both analytic references at
// every Dt a caller realistically uses. The bounds are deliberately a
// few times tighter than the explicit scheme's historical 3%/4%
// tolerances — a regression that loosens the implicit scheme back to
// explicit-level error fails here.
func TestCrankNicolsonToleranceTable(t *testing.T) {
	cottrell := []struct {
		dt     float64
		maxRel float64
	}{
		{0.005, 0.005},
		{0.02, 0.005},
		{0.05, 0.015},
	}
	for _, tc := range cottrell {
		d := phys.Diffusivity(1e-9)
		sim, err := New(Config{
			Kinetics:  fastKinetics(0),
			Diffusion: d,
			BulkO:     1,
			TotalTime: 10,
			Dt:        tc.dt,
		})
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for step := 1; float64(step)*tc.dt <= 10; step++ {
			flux := sim.Step(phys.MilliVolts(-400))
			tNow := float64(step) * tc.dt
			if tNow < 0.5 {
				continue
			}
			want, err := echem.Cottrell(1, 1, 1, d, tNow)
			if err != nil {
				t.Fatal(err)
			}
			wantFlux := float64(want) / phys.Faraday
			if rel := math.Abs(flux-wantFlux) / wantFlux; rel > worst {
				worst = rel
			}
		}
		if worst > tc.maxRel {
			t.Errorf("Cottrell Dt=%g s: worst error %.2f%%, want ≤ %.2f%%",
				tc.dt, 100*worst, 100*tc.maxRel)
		}
	}

	// Randles–Ševčík at several potential-step sizes (0.5/1/2 mV per
	// sample at 20 mV/s): peak flux within 1%, peak potential within
	// 1.5 mV of the reversible −28.5/n mV shift.
	for _, mvPerStep := range []float64{0.5, 1, 2} {
		d := phys.Diffusivity(5e-10)
		rate := phys.SweepRate(0.02)
		e0 := phys.MilliVolts(-200)
		start, vertex := phys.MilliVolts(0), phys.MilliVolts(-500)
		dt := mvPerStep * 0.001 / float64(rate)
		total := float64(start-vertex) / float64(rate)
		sim, err := New(Config{
			Kinetics:  fastKinetics(e0),
			Diffusion: d,
			BulkO:     1,
			TotalTime: total,
			Dt:        dt,
		})
		if err != nil {
			t.Fatal(err)
		}
		peakFlux, peakE := 0.0, phys.Voltage(0)
		for i := 0; ; i++ {
			e := start - phys.Voltage(float64(i)*0.001*mvPerStep)
			if e < vertex {
				break
			}
			if flux := sim.Step(e); flux > peakFlux {
				peakFlux, peakE = flux, e
			}
		}
		want, err := echem.RandlesSevcik(1, 1, 1, d, rate)
		if err != nil {
			t.Fatal(err)
		}
		wantFlux := float64(want) / phys.Faraday
		if rel := math.Abs(peakFlux-wantFlux) / wantFlux; rel > 0.01 {
			t.Errorf("RS %.1f mV/step: peak flux %.4g vs %.4g (%.2f%% off, want ≤ 1%%)",
				mvPerStep, peakFlux, wantFlux, 100*rel)
		}
		wantE := e0 + echem.ReversiblePeakShift(1)
		if math.Abs(float64(peakE-wantE)) > 0.0015 {
			t.Errorf("RS %.1f mV/step: peak at %v, want %v ± 1.5 mV", mvPerStep, peakE, wantE)
		}
	}
}

// TestGridBounds checks the graded mesh stays within its clamps across
// extreme (but legal) configurations instead of exploding or
// collapsing.
func TestGridBounds(t *testing.T) {
	// Long experiment, coarse sampling: the mesh bottoms out at the
	// resolution floor.
	coarse, err := New(Config{
		Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1,
		TotalTime: 3600, Dt: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := coarse.Cells(); n < minCells || n > maxCells {
		t.Fatalf("coarse grid has %d cells, want within [%d, %d]", n, minCells, maxCells)
	}
	// Absurdly fine sampling: the ceiling guards the mesh (and the old
	// explicit scheme's n-overflow hazard). The exponential grid covers
	// enormous dynamic ranges cheaply, so only a pathological surface
	// spacing reaches the clamp.
	fine, err := New(Config{
		Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1,
		TotalTime: 3600, Dt: 1e-200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := fine.Cells(); n != maxCells {
		t.Fatalf("degenerately fine sampling must clamp to %d cells, got %d", maxCells, n)
	}
	if got := fine.Substeps(); got != 1 {
		t.Fatalf("implicit solver must report 1 substep, got %d", got)
	}
	// The clamped grids must still produce finite physics.
	for _, sim := range []*CoupleSim{coarse, fine} {
		flux := sim.Step(phys.MilliVolts(-400))
		if math.IsNaN(flux) || math.IsInf(flux, 0) {
			t.Fatalf("clamped grid produced non-finite flux %g", flux)
		}
	}
}

// TestDegenerateConfigs exercises the satellite guard: extreme
// diffusivities and timings must yield a clear construction error, not
// NaN profiles.
func TestDegenerateConfigs(t *testing.T) {
	bad := []Config{
		{Kinetics: fastKinetics(0), Diffusion: phys.Diffusivity(math.Inf(1)), BulkO: 1, TotalTime: 1, Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: phys.Diffusivity(math.NaN()), BulkO: 1, TotalTime: 1, Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1, TotalTime: math.Inf(1), Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1, TotalTime: math.NaN(), Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1, TotalTime: 1, Dt: math.NaN()},
		// Subnormal diffusivity: the surface spacing squared underflows.
		{Kinetics: fastKinetics(0), Diffusion: 1e-320, BulkO: 1, TotalTime: 1, Dt: 0.01},
	}
	for i, cfg := range bad {
		sim, err := New(cfg)
		if err == nil {
			// Construction may only succeed if the physics stays finite.
			if flux := sim.Step(phys.MilliVolts(-400)); math.IsNaN(flux) || math.IsInf(flux, 0) {
				t.Errorf("degenerate config %d accepted and produced non-finite flux %g", i, flux)
			}
		}
	}
	// A plainly huge-but-finite diffusivity must either error or stay
	// finite — never NaN.
	sim, err := New(Config{Kinetics: fastKinetics(0), Diffusion: 1e300, BulkO: 1, TotalTime: 1, Dt: 0.01})
	if err == nil {
		for i := 0; i < 10; i++ {
			if flux := sim.Step(phys.MilliVolts(-400)); math.IsNaN(flux) {
				t.Fatal("extreme diffusivity produced NaN flux")
			}
		}
		if o := float64(sim.SurfaceO()); math.IsNaN(o) {
			t.Fatal("extreme diffusivity produced NaN profile")
		}
	}
}

// TestStepAllocFree pins the tentpole property: the steady-state
// stepping loop performs zero allocations.
func TestStepAllocFree(t *testing.T) {
	sim, err := New(Config{
		Kinetics: fastKinetics(0), Diffusion: 5e-10, BulkO: 1,
		TotalTime: 10, Dt: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(phys.MilliVolts(-100)) // startup smoothing
	if allocs := testing.AllocsPerRun(200, func() {
		sim.Step(phys.MilliVolts(-300))
	}); allocs != 0 {
		t.Fatalf("Step allocates %.0f objects per call, want 0", allocs)
	}
}

// TestGradedMeshExpansion sanity-checks the mesh shape: spacings grow
// by the fixed ratio and cover the 6√(D·T) domain.
func TestGradedMeshExpansion(t *testing.T) {
	d := 1e-9
	total := 10.0
	sim, err := New(Config{
		Kinetics: fastKinetics(0), Diffusion: phys.Diffusivity(d), BulkO: 1,
		TotalTime: total, Dt: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	length := 0.0
	for i, h := range sim.h {
		if h <= 0 {
			t.Fatalf("spacing %d is %g", i, h)
		}
		if i > 0 {
			if ratio := h / sim.h[i-1]; math.Abs(ratio-gridGamma) > 1e-9 {
				t.Fatalf("spacing ratio %d is %g, want %g", i, ratio, gridGamma)
			}
		}
		length += h
	}
	want := 6 * math.Sqrt(d*total)
	if math.Abs(length-want)/want > 1e-9 {
		t.Fatalf("mesh covers %g m, want %g m", length, want)
	}
}
