package diffusion

import (
	"math"
	"testing"

	"advdiag/internal/echem"
	"advdiag/internal/phys"
)

// fastKinetics is a reversible couple (large K0) used to reach the
// mass-transport-limited regimes the analytic benchmarks describe.
func fastKinetics(e0 phys.Voltage) echem.ButlerVolmer {
	return echem.ButlerVolmer{E0: e0, N: 1, Alpha: 0.5, K0: 1e-2}
}

// TestCottrellBenchmark steps the potential far past E0 and compares
// the simulated flux transient against the Cottrell equation — the
// classic validation of a diffusion scheme (Bard & Faulkner App. B).
// The Crank–Nicolson solver holds 1% where the explicit scheme it
// replaced needed 3%.
func TestCottrellBenchmark(t *testing.T) {
	d := phys.Diffusivity(1e-9)
	sim, err := New(Config{
		Kinetics:  fastKinetics(0),
		Diffusion: d,
		BulkO:     1,
		TotalTime: 10,
		Dt:        0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	held := phys.MilliVolts(-400) // deep reduction: diffusion limited
	for step := 1; step <= 500; step++ {
		flux := sim.Step(held)
		tNow := float64(step) * 0.02
		if tNow < 0.5 {
			continue // FD startup transient
		}
		want, err := echem.Cottrell(1, 1, 1, d, tNow)
		if err != nil {
			t.Fatal(err)
		}
		wantFlux := float64(want) / phys.Faraday
		rel := math.Abs(flux-wantFlux) / wantFlux
		if rel > 0.01 {
			t.Fatalf("t=%.2f s: flux %.4g vs Cottrell %.4g (%.1f%% off)", tNow, flux, wantFlux, 100*rel)
		}
	}
}

// TestRandlesSevcikBenchmark sweeps cathodically through E0 and checks
// the peak current against the Randles–Ševčík equation and the peak
// potential against the reversible −28.5/n mV shift.
func TestRandlesSevcikBenchmark(t *testing.T) {
	d := phys.Diffusivity(5e-10)
	rate := phys.SweepRate(0.02)
	e0 := phys.MilliVolts(-200)
	start, vertex := phys.MilliVolts(0), phys.MilliVolts(-500)
	dt := 0.001 / float64(rate) // 1 mV per step
	total := float64(start-vertex) / float64(rate)
	sim, err := New(Config{
		Kinetics:  fastKinetics(e0),
		Diffusion: d,
		BulkO:     1,
		TotalTime: total,
		Dt:        dt,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := int(total / dt)
	peakFlux := 0.0
	peakE := phys.Voltage(0)
	for i := 0; i <= n; i++ {
		e := start - phys.Voltage(float64(i)*0.001)
		if e < vertex {
			break
		}
		flux := sim.Step(e)
		if flux > peakFlux {
			peakFlux = flux
			peakE = e
		}
	}
	want, err := echem.RandlesSevcik(1, 1, 1, d, rate)
	if err != nil {
		t.Fatal(err)
	}
	wantFlux := float64(want) / phys.Faraday
	if rel := math.Abs(peakFlux-wantFlux) / wantFlux; rel > 0.01 {
		t.Fatalf("peak flux %.4g vs RS %.4g (%.1f%% off)", peakFlux, wantFlux, 100*rel)
	}
	wantE := e0 + echem.ReversiblePeakShift(1)
	if math.Abs(float64(peakE-wantE)) > 0.002 {
		t.Fatalf("peak at %v, want %v ± 2 mV", peakE, wantE)
	}
}

// TestQuasiReversibleShift verifies that slower electrode kinetics move
// the cathodic peak negative — the effect behind the paper's sweep-rate
// limit (§II-C).
func TestQuasiReversibleShift(t *testing.T) {
	peakAt := func(k0 float64, rate phys.SweepRate) phys.Voltage {
		dt := 0.001 / float64(rate)
		total := 0.5 / float64(rate)
		sim, err := New(Config{
			Kinetics:  echem.ButlerVolmer{E0: 0, N: 1, Alpha: 0.5, K0: k0},
			Diffusion: 5e-10,
			BulkO:     1,
			TotalTime: total,
			Dt:        dt,
		})
		if err != nil {
			t.Fatal(err)
		}
		peakFlux, peakE := 0.0, phys.Voltage(0)
		for i := 0; ; i++ {
			e := phys.Voltage(0.25 - float64(i)*0.001)
			if e < -0.25 {
				break
			}
			flux := sim.Step(e)
			if flux > peakFlux {
				peakFlux, peakE = flux, e
			}
		}
		return peakE
	}
	fast := peakAt(1e-2, 0.02)
	slow := peakAt(1e-6, 0.02)
	if slow >= fast {
		t.Fatalf("slower kinetics must shift the peak negative: fast %v, slow %v", fast, slow)
	}
	if float64(fast-slow) < 0.05 {
		t.Fatalf("kinetic shift too small: %v vs %v", fast, slow)
	}
}

func TestMassConservation(t *testing.T) {
	// O + R is conserved at every node under the surface boundary.
	sim, err := New(Config{
		Kinetics:  fastKinetics(0),
		Diffusion: 1e-9,
		BulkO:     2,
		TotalTime: 5,
		Dt:        0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sim.Step(phys.MilliVolts(-300))
	}
	sum := float64(sim.SurfaceO() + sim.SurfaceR())
	if math.Abs(sum-2) > 1e-6 {
		t.Fatalf("surface O+R = %g, want 2 (conservation)", sum)
	}
}

func TestSurfaceDepletion(t *testing.T) {
	sim, err := New(Config{
		Kinetics:  fastKinetics(0),
		Diffusion: 1e-9,
		BulkO:     1,
		TotalTime: 5,
		Dt:        0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sim.Step(phys.MilliVolts(-400))
	}
	if o := float64(sim.SurfaceO()); o > 0.05 {
		t.Fatalf("deep reduction must deplete surface O, got %g", o)
	}
	if r := float64(sim.SurfaceR()); r < 0.9 {
		t.Fatalf("R must accumulate at the surface, got %g", r)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1, TotalTime: 1, Dt: 0.01}
	if _, err := New(good); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Kinetics: echem.ButlerVolmer{}, Diffusion: 1e-9, BulkO: 1, TotalTime: 1, Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: 0, BulkO: 1, TotalTime: 1, Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1, TotalTime: 0, Dt: 0.01},
		{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: 1, TotalTime: 1, Dt: 2},
		{Kinetics: fastKinetics(0), Diffusion: 1e-9, BulkO: -1, TotalTime: 1, Dt: 0.01},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCurrentSignConvention(t *testing.T) {
	// Positive reduction flux → negative (cathodic) current.
	i := Current(1, phys.Area(1e-6), 1e-5)
	if i >= 0 {
		t.Fatalf("reduction must be negative current, got %v", i)
	}
	// Linear in n, area and flux.
	i2 := Current(2, phys.Area(2e-6), 1e-5)
	if math.Abs(float64(i2)/float64(i)-4) > 1e-12 {
		t.Fatal("current must scale with n·A")
	}
}

func TestLinearityInConcentration(t *testing.T) {
	// The diffusion problem is linear in bulk concentration — the
	// property the template-fitting quantification rests on.
	run := func(c phys.Concentration) float64 {
		sim, err := New(Config{
			Kinetics:  fastKinetics(0),
			Diffusion: 5e-10,
			BulkO:     c,
			TotalTime: 2,
			Dt:        0.02,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i := 0; i < 100; i++ {
			total += sim.Step(phys.MilliVolts(-300))
		}
		return total
	}
	f1 := run(1)
	f3 := run(3)
	if math.Abs(f3/f1-3) > 1e-6 {
		t.Fatalf("flux not linear in concentration: ratio %g", f3/f1)
	}
}
