// Package diffusion implements the one-dimensional finite-difference
// solution of Fick's second law that underlies the cyclic-voltammetry
// simulator: a planar semi-infinite diffusion field for a redox couple
// O/R with Butler–Volmer kinetics at the electrode boundary.
//
// The solver uses an unconditionally stable Crank–Nicolson scheme on an
// exponentially graded mesh (fine at the electrode where the diffusion
// layer lives, coarse toward the bulk), advanced by ONE implicit step
// per external sample instead of the stack of stability-bound explicit
// substeps the classic Bard & Faulkner appendix-B scheme needs. The
// implicit system is tridiagonal; because its coefficients are fixed at
// construction, the Thomas elimination (see mathx.SolveTridiag for the
// generic form) is prefactored once, leaving each Step a single O(n)
// sweep with zero allocations. The first external step is taken as two
// backward-Euler half-steps (Rannacher smoothing) so the potential
// step's stiff startup transient is damped instead of ringing through
// the Crank–Nicolson weights.
//
// The solver is validated in its tests against the two analytic results
// the textbook provides: the Cottrell transient after a potential step
// and the Randles–Ševčík peak current under a linear sweep.
package diffusion

import (
	"fmt"
	"math"

	"advdiag/internal/echem"
	"advdiag/internal/phys"
)

// gridGamma is the mesh expansion ratio: spacing i is h0·gridGamma^i.
// 1.1 is the customary electrochemical-simulation choice — fine enough
// that the graded mesh matches a uniform mesh several times its size.
const gridGamma = 1.1

// minCells and maxCells bound the spatial resolution. The floor keeps
// coarse long-experiment grids honest; the ceiling guards degenerate
// configurations (e.g. microsecond sampling of hour-long experiments)
// from exploding the mesh.
const (
	minCells = 32
	maxCells = 2048
)

// surfaceCellFraction sets the target surface spacing h0 relative to
// √(D·Dt), the diffusion length of one external step — the sharpest
// feature one sample interval can create.
const surfaceCellFraction = 0.5

// CoupleSim simulates one redox couple O + n·e⁻ ⇌ R in a semi-infinite
// 1-D diffusion field with electrode kinetics at x=0.
type CoupleSim struct {
	bv echem.ButlerVolmer
	d  float64 // diffusion coefficient, m²/s (same for O and R)
	dt float64 // external step, one implicit solve each

	// Graded mesh: spacing i (between nodes i and i+1) is h[i].
	h []float64

	// Crank–Nicolson row coefficients for interior nodes 1..n-2:
	// a·c[i-1] + b·c[i] + u·c[i+1] = d_i (a = sub-, u = super-diagonal).
	a, b, u []float64

	// Prefactored Thomas elimination run from the bulk boundary toward
	// the surface, expressing c[i] = p[i] + q[i]·c[i-1]. q and the
	// reciprocal pivots are constant; only p depends on the RHS.
	q    []float64
	ginv []float64

	// Second-order one-sided surface-gradient weights and the constant
	// part of the gradient closure (see Step).
	alpha0, alpha1, alpha2 float64
	gradB                  float64

	o, r   []float64 // concentration profiles, mol/m³
	po, pr []float64 // per-step elimination scratch
	bulkO  float64
	bulkR  float64

	flux    float64 // last net reduction flux at the surface, mol/(m²·s)
	started bool    // Rannacher startup taken
}

// Config describes a simulation run.
type Config struct {
	// Kinetics is the electrode reaction.
	Kinetics echem.ButlerVolmer
	// Diffusion is the species diffusivity.
	Diffusion phys.Diffusivity
	// BulkO and BulkR are the initial (and far-field) concentrations.
	BulkO, BulkR phys.Concentration
	// TotalTime is the planned experiment duration; it sizes the grid so
	// the diffusion layer never reaches the far boundary.
	TotalTime float64
	// Dt is the external step interval at which the caller will sample.
	Dt float64
}

// New builds a solver for cfg.
func New(cfg Config) (*CoupleSim, error) {
	if err := cfg.Kinetics.Validate(); err != nil {
		return nil, err
	}
	if cfg.Diffusion <= 0 || math.IsInf(float64(cfg.Diffusion), 0) || math.IsNaN(float64(cfg.Diffusion)) {
		return nil, fmt.Errorf("diffusion: bad diffusivity %g", float64(cfg.Diffusion))
	}
	if cfg.TotalTime <= 0 || cfg.Dt <= 0 || cfg.Dt > cfg.TotalTime ||
		math.IsInf(cfg.TotalTime, 0) || math.IsNaN(cfg.TotalTime) || math.IsNaN(cfg.Dt) {
		return nil, fmt.Errorf("diffusion: bad timing (total %g s, dt %g s)", cfg.TotalTime, cfg.Dt)
	}
	if cfg.BulkO < 0 || cfg.BulkR < 0 {
		return nil, fmt.Errorf("diffusion: negative bulk concentration")
	}
	d := float64(cfg.Diffusion)
	// Domain long enough that the diffusion layer (≈6√(D·t)) stays inside.
	length := 6 * math.Sqrt(d*cfg.TotalTime)
	if !(length > 0) || math.IsInf(length, 0) {
		return nil, fmt.Errorf("diffusion: degenerate domain length %g m (D=%g m²/s, total=%g s)",
			length, d, cfg.TotalTime)
	}
	// Surface resolution targets the diffusion length of one sample
	// interval; the cell count follows from the fixed expansion ratio,
	// clamped so extreme configurations degrade resolution instead of
	// exploding (or collapsing) the mesh.
	h0 := surfaceCellFraction * math.Sqrt(d*cfg.Dt)
	cells := float64(minCells)
	if h0 > 0 && h0 < length {
		cells = math.Ceil(math.Log1p(length*(gridGamma-1)/h0)/math.Log(gridGamma)) + 1
	}
	n := minCells
	switch {
	case math.IsNaN(cells):
		return nil, fmt.Errorf("diffusion: degenerate grid (length %g m, surface spacing %g m)", length, h0)
	case cells >= maxCells:
		n = maxCells
	case cells > minCells:
		n = int(cells)
	}
	// Re-derive the surface spacing so the n-cell graded mesh covers the
	// domain exactly.
	h0 = length * (gridGamma - 1) / (math.Pow(gridGamma, float64(n-1)) - 1)
	// Spacing products (the finite-difference weights divide by them)
	// must stay normal floats: a subnormal h0² loses the precision the
	// weights rely on and can round to zero, putting infinities (and
	// then NaNs) into the profiles. √(smallest normal float) ≈ 1.5e-154.
	if !(h0 > 1e-150) || math.IsInf(h0, 0) {
		return nil, fmt.Errorf("diffusion: degenerate surface spacing %g m over %d cells", h0, n)
	}

	s := &CoupleSim{
		bv:    cfg.Kinetics,
		d:     d,
		dt:    cfg.Dt,
		bulkO: float64(cfg.BulkO),
		bulkR: float64(cfg.BulkR),
	}
	// All ten per-node vectors are fixed-length for the life of the
	// solver, so they are views over a single backing array (the
	// calibration layer builds one solver per redox couple per
	// electrode; keeping construction to two allocations matters there).
	back := make([]float64, 10*n-1)
	carve := func(k int) []float64 {
		v := back[:k:k]
		back = back[k:]
		return v
	}
	s.h = carve(n - 1)
	s.a = carve(n)
	s.b = carve(n)
	s.u = carve(n)
	s.q = carve(n)
	s.ginv = carve(n)
	s.o = carve(n)
	s.r = carve(n)
	s.po = carve(n)
	s.pr = carve(n)
	for i := range s.h {
		s.h[i] = h0 * math.Pow(gridGamma, float64(i))
	}
	for i := range s.o {
		s.o[i] = s.bulkO
		s.r[i] = s.bulkR
	}
	s.factor()
	return s, nil
}

// factor builds the Crank–Nicolson rows and runs the constant half of
// the Thomas elimination: starting from the Dirichlet bulk boundary and
// eliminating toward the surface, every interior row is reduced to
//
//	c[i] = p[i] + q[i]·c[i-1]
//
// with q (and the pivot reciprocals) independent of the right-hand
// side. Step then only has to refresh p. Eliminating from the bulk end
// rather than row 0 is what lets the factorization survive the
// time-varying Butler–Volmer surface row.
func (s *CoupleSim) factor() {
	n := len(s.o)
	k := s.d * s.dt / 2
	for i := 1; i < n-1; i++ {
		hm, hp := s.h[i-1], s.h[i]
		wm := 2 / (hm * (hm + hp))
		wp := 2 / (hp * (hm + hp))
		s.a[i] = -k * wm
		s.u[i] = -k * wp
		s.b[i] = 1 + k*(wm+wp)
	}
	// Bulk boundary: Dirichlet (c = bulk), i.e. q = 0 and a unit pivot.
	s.q[n-1] = 0
	s.ginv[n-1] = 1
	for i := n - 2; i >= 1; i-- {
		g := s.b[i] + s.u[i]*s.q[i+1]
		s.ginv[i] = 1 / g
		s.q[i] = -s.a[i] / g
	}
	// Surface gradient: second-order one-sided three-point weights on
	// the graded mesh (exact for quadratics).
	h0, h1 := s.h[0], s.h[1]
	s.alpha1 = (h0 + h1) / (h0 * h1)
	s.alpha2 = -h0 / ((h0 + h1) * h1)
	s.alpha0 = -(s.alpha1 + s.alpha2)
	// With c[1] and c[2] expressed through the elimination, the surface
	// gradient is A + B·c[0]; B is constant.
	s.gradB = s.alpha0 + s.alpha1*s.q[1] + s.alpha2*s.q[2]*s.q[1]
}

// eliminate refreshes the RHS-dependent elimination vector p for one
// species: p[i] = (d_i − u[i]·p[i+1]) / pivot, sweeping from the bulk
// boundary to the surface. For Crank–Nicolson, d_i is the explicit half
// of the scheme; for the backward-Euler startup it is just c.
func (s *CoupleSim) eliminate(c, p []float64, bulk float64, cn bool) {
	n := len(c)
	p[n-1] = bulk
	if cn {
		for i := n - 2; i >= 1; i-- {
			di := -s.a[i]*c[i-1] + (2-s.b[i])*c[i] - s.u[i]*c[i+1]
			p[i] = (di - s.u[i]*p[i+1]) * s.ginv[i]
		}
	} else {
		for i := n - 2; i >= 1; i-- {
			p[i] = (c[i] - s.u[i]*p[i+1]) * s.ginv[i]
		}
	}
}

// advance takes one implicit step at electrode potential e: refresh the
// elimination for both species, close the system with the Butler–Volmer
// surface condition, and back-substitute the new profiles. cn selects
// Crank–Nicolson (steady state) or backward Euler (startup smoothing).
func (s *CoupleSim) advance(e phys.Voltage, cn bool) {
	n := len(s.o)
	s.eliminate(s.o, s.po, s.bulkO, cn)
	s.eliminate(s.r, s.pr, s.bulkR, cn)

	// Surface closure. The flux condition at the new time level reads
	//   D·(A_O + B·cO0) =  kf·cO0 − kb·cR0   (O consumed)
	//   D·(A_R + B·cR0) = −kf·cO0 + kb·cR0   (R produced)
	// with A the RHS-dependent part of the one-sided surface gradient.
	// Summing gives cO0+cR0 directly (the discrete no-net-flux condition
	// that conserves O+R); substituting back yields cO0 in closed form.
	aO := s.alpha1*s.po[1] + s.alpha2*(s.po[2]+s.q[2]*s.po[1])
	aR := s.alpha1*s.pr[1] + s.alpha2*(s.pr[2]+s.q[2]*s.pr[1])
	kf, kb := s.bv.RateConstants(e)
	sum := -(aO + aR) / s.gradB
	cO0 := (s.d*aO + kb*sum) / (kf + kb - s.d*s.gradB)
	if cO0 < 0 {
		cO0 = 0
	}
	cR0 := sum - cO0
	if cR0 < 0 {
		cR0 = 0
	}
	s.o[0] = cO0
	s.r[0] = cR0
	s.flux = kf*cO0 - kb*cR0

	// Back substitution toward the bulk.
	for i := 1; i < n; i++ {
		s.o[i] = s.po[i] + s.q[i]*s.o[i-1]
		s.r[i] = s.pr[i] + s.q[i]*s.r[i-1]
	}
}

// Step advances the field by the external Dt with the electrode at
// potential e and returns the net reduction flux density at the surface
// (mol·m⁻²·s⁻¹, positive when O is being reduced). The very first call
// is taken as two backward-Euler half-steps (same prefactored matrix:
// I − (D·Dt/2)·L) so a hard initial potential step is damped instead of
// exciting the Crank–Nicolson scheme's undamped stiff modes; every
// later call is one Crank–Nicolson step. Step performs no allocations.
func (s *CoupleSim) Step(e phys.Voltage) float64 {
	if !s.started {
		s.started = true
		s.advance(e, false)
		s.advance(e, false)
		return s.flux
	}
	s.advance(e, true)
	return s.flux
}

// SurfaceO returns the current surface concentration of O.
func (s *CoupleSim) SurfaceO() phys.Concentration { return phys.Concentration(s.o[0]) }

// SurfaceR returns the current surface concentration of R.
func (s *CoupleSim) SurfaceR() phys.Concentration { return phys.Concentration(s.r[0]) }

// Cells reports the spatial resolution chosen (for diagnostics/tests).
func (s *CoupleSim) Cells() int { return len(s.o) }

// Substeps reports the internal substepping factor. The implicit scheme
// always takes exactly one step per external Dt; the method remains for
// diagnostic compatibility with the explicit solver it replaced.
func (s *CoupleSim) Substeps() int { return 1 }

// Current converts a flux density to electrode current for area a:
// I = −n·F·A·J, negative for net reduction (IUPAC convention: cathodic
// current negative). Table II reduction peaks therefore appear as minima.
func Current(n int, a phys.Area, fluxDensity float64) phys.Current {
	return phys.Current(-float64(n) * phys.Faraday * float64(a) * fluxDensity)
}
