// Package diffusion implements the one-dimensional finite-difference
// solution of Fick's second law that underlies the cyclic-voltammetry
// simulator: a planar semi-infinite diffusion field for a redox couple
// O/R with Butler–Volmer kinetics at the electrode boundary (the classic
// explicit scheme of Bard & Faulkner, appendix B).
//
// The solver is validated in its tests against the two analytic results
// the textbook provides: the Cottrell transient after a potential step
// and the Randles–Ševčík peak current under a linear sweep.
package diffusion

import (
	"fmt"
	"math"

	"advdiag/internal/echem"
	"advdiag/internal/phys"
)

// lambda is the explicit-scheme stability/accuracy parameter
// D·dt/dx² (< 0.5 for stability; 0.45 is the customary choice).
const lambda = 0.45

// minCells sets the spatial resolution floor.
const minCells = 240

// CoupleSim simulates one redox couple O + n·e⁻ ⇌ R in a semi-infinite
// 1-D diffusion field with electrode kinetics at x=0.
type CoupleSim struct {
	bv echem.ButlerVolmer
	d  float64 // diffusion coefficient, m²/s (same for O and R)

	dx   float64
	dtIn float64 // internal substep
	sub  int     // substeps per external Step

	o, r []float64 // concentration profiles, mol/m³
	oNew []float64
	rNew []float64

	flux  float64 // last net reduction flux at the surface, mol/(m²·s)
	lastE phys.Voltage
	haveE bool
}

// Config describes a simulation run.
type Config struct {
	// Kinetics is the electrode reaction.
	Kinetics echem.ButlerVolmer
	// Diffusion is the species diffusivity.
	Diffusion phys.Diffusivity
	// BulkO and BulkR are the initial (and far-field) concentrations.
	BulkO, BulkR phys.Concentration
	// TotalTime is the planned experiment duration; it sizes the grid so
	// the diffusion layer never reaches the far boundary.
	TotalTime float64
	// Dt is the external step interval at which the caller will sample.
	Dt float64
}

// New builds a solver for cfg.
func New(cfg Config) (*CoupleSim, error) {
	if err := cfg.Kinetics.Validate(); err != nil {
		return nil, err
	}
	if cfg.Diffusion <= 0 {
		return nil, fmt.Errorf("diffusion: non-positive diffusivity %g", float64(cfg.Diffusion))
	}
	if cfg.TotalTime <= 0 || cfg.Dt <= 0 || cfg.Dt > cfg.TotalTime {
		return nil, fmt.Errorf("diffusion: bad timing (total %g s, dt %g s)", cfg.TotalTime, cfg.Dt)
	}
	if cfg.BulkO < 0 || cfg.BulkR < 0 {
		return nil, fmt.Errorf("diffusion: negative bulk concentration")
	}
	d := float64(cfg.Diffusion)
	// Domain long enough that the diffusion layer (≈6√(D·t)) stays inside.
	length := 6 * math.Sqrt(d*cfg.TotalTime)
	// Choose resolution: honor stability at a substep of the external dt.
	n := minCells
	dx := length / float64(n)
	dtStable := lambda * dx * dx / d
	sub := int(math.Ceil(cfg.Dt / dtStable))
	if sub < 1 {
		sub = 1
	}
	dtIn := cfg.Dt / float64(sub)
	s := &CoupleSim{
		bv:   cfg.Kinetics,
		d:    d,
		dx:   dx,
		dtIn: dtIn,
		sub:  sub,
		o:    make([]float64, n),
		r:    make([]float64, n),
		oNew: make([]float64, n),
		rNew: make([]float64, n),
	}
	for i := range s.o {
		s.o[i] = float64(cfg.BulkO)
		s.r[i] = float64(cfg.BulkR)
	}
	return s, nil
}

// Step advances the field by the external Dt, ramping the electrode
// potential linearly from the previous call's value to e (so a sampled
// triangle waveform is treated as a true linear sweep rather than a
// staircase), and returns the net reduction flux density at the surface
// (mol·m⁻²·s⁻¹, positive when O is being reduced).
func (s *CoupleSim) Step(e phys.Voltage) float64 {
	if !s.haveE {
		s.lastE = e
		s.haveE = true
	}
	eFrom := s.lastE
	s.lastE = e
	lam := s.d * s.dtIn / (s.dx * s.dx)
	n := len(s.o)
	for k := 0; k < s.sub; k++ {
		eNow := eFrom + phys.Voltage(float64(k+1)/float64(s.sub))*(e-eFrom)
		// Interior diffusion (FTCS). Index 0 is the surface node, index
		// n-1 the bulk boundary (Dirichlet at initial bulk values).
		for i := 1; i < n-1; i++ {
			s.oNew[i] = s.o[i] + lam*(s.o[i+1]-2*s.o[i]+s.o[i-1])
			s.rNew[i] = s.r[i] + lam*(s.r[i+1]-2*s.r[i]+s.r[i-1])
		}
		s.oNew[n-1] = s.o[n-1]
		s.rNew[n-1] = s.r[n-1]

		// Surface boundary with a second-order (three-point) gradient:
		//   β(−3cO0+4cO1−cO2) =  J = kf·cO0 − kb·cR0
		//   β(−3cR0+4cR1−cR2) = −J
		// with β = D/(2dx). Summing conserves
		//   cO0+cR0 = (4(cO1+cR1) − (cO2+cR2)) / 3.
		kf, kb := s.bv.RateConstants(eNow)
		beta := s.d / (2 * s.dx)
		sum := (4*(s.oNew[1]+s.rNew[1]) - (s.oNew[2] + s.rNew[2])) / 3
		cO0 := (beta*(4*s.oNew[1]-s.oNew[2]) + kb*sum) / (kf + kb + 3*beta)
		if cO0 < 0 {
			cO0 = 0
		}
		cR0 := sum - cO0
		if cR0 < 0 {
			cR0 = 0
		}
		s.oNew[0] = cO0
		s.rNew[0] = cR0
		s.flux = kf*cO0 - kb*cR0

		s.o, s.oNew = s.oNew, s.o
		s.r, s.rNew = s.rNew, s.r
	}
	return s.flux
}

// SurfaceO returns the current surface concentration of O.
func (s *CoupleSim) SurfaceO() phys.Concentration { return phys.Concentration(s.o[0]) }

// SurfaceR returns the current surface concentration of R.
func (s *CoupleSim) SurfaceR() phys.Concentration { return phys.Concentration(s.r[0]) }

// Cells reports the spatial resolution chosen (for diagnostics/tests).
func (s *CoupleSim) Cells() int { return len(s.o) }

// Substeps reports the internal substepping factor (for diagnostics).
func (s *CoupleSim) Substeps() int { return s.sub }

// Current converts a flux density to electrode current for area a:
// I = −n·F·A·J, negative for net reduction (IUPAC convention: cathodic
// current negative). Table II reduction peaks therefore appear as minima.
func Current(n int, a phys.Area, fluxDensity float64) phys.Current {
	return phys.Current(-float64(n) * phys.Faraday * float64(a) * fluxDensity)
}
