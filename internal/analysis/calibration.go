package analysis

import (
	"fmt"
	"math"
	"sort"

	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

// MeasureFunc performs one measurement at the given bulk concentration
// and returns the system response (recovered current in amperes, or
// recorded voltage in volts — any consistent unit works; figures of
// merit scale through ResponseScale).
type MeasureFunc func(c phys.Concentration) (float64, error)

// Calibration is a measured calibration data set: repeated blanks plus
// replicate-averaged responses per concentration.
type Calibration struct {
	// Concs are the measured concentrations, sorted ascending.
	Concs []phys.Concentration
	// Responses are the corresponding system responses (mean over
	// replicates).
	Responses []float64
	// Blanks are repeated zero-concentration responses (individual
	// runs, NOT averaged — eq. 5 needs the single-run blank scatter).
	Blanks []float64
	// Replicates is the number of runs averaged per concentration.
	Replicates int
	// Unit labels the response unit ("A" or "V").
	Unit string
}

// Calibrate runs fn over the blank (nBlanks single runs) and each
// concentration (reps replicate runs, averaged) — the standard wet-lab
// calibration procedure behind a Table III row.
func Calibrate(concs []phys.Concentration, nBlanks, reps int, unit string, fn MeasureFunc) (*Calibration, error) {
	if len(concs) < 4 {
		return nil, ErrInsufficientData
	}
	if nBlanks < 3 {
		nBlanks = 3
	}
	if reps < 1 {
		reps = 1
	}
	cal := &Calibration{Unit: unit, Replicates: reps}
	for i := 0; i < nBlanks; i++ {
		b, err := fn(0)
		if err != nil {
			return nil, fmt.Errorf("analysis: blank %d: %w", i, err)
		}
		cal.Blanks = append(cal.Blanks, b)
	}
	sorted := append([]phys.Concentration(nil), concs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, c := range sorted {
		sum := 0.0
		for r := 0; r < reps; r++ {
			v, err := fn(c)
			if err != nil {
				return nil, fmt.Errorf("analysis: point %v: %w", c, err)
			}
			sum += v
		}
		cal.Concs = append(cal.Concs, c)
		cal.Responses = append(cal.Responses, sum/float64(reps))
	}
	return cal, nil
}

// Report is the full figure-of-merit summary of one calibration — the
// row format of the paper's Table III.
type Report struct {
	// Slope is the calibration slope in response units per mol/m³ over
	// the detected linear range.
	Slope float64
	// Sensitivity is the area-normalized slope (valid when responses
	// are currents); the paper's µA/(mM·cm²) unit.
	Sensitivity phys.Sensitivity
	// LOD is the eq. (5) detection limit.
	LOD phys.Concentration
	// LinearLo and LinearHi bound the detected linear range.
	LinearLo, LinearHi phys.Concentration
	// NLmax is the eq. (7) maximum nonlinearity over the linear range,
	// in response units.
	NLmax float64
	// R2 is the linear-fit quality over the linear range.
	R2 float64
	// BlankMean and BlankStd summarize the blank (V_b and σ_b of eq. 5).
	BlankMean, BlankStd float64
}

// Analyze extracts the report from a calibration. area is the electrode
// area (for the area-normalized sensitivity); responseToCurrent scales
// responses to amperes (1 when responses already are currents).
func (cal *Calibration) Analyze(area phys.Area, responseToCurrent float64) (Report, error) {
	if len(cal.Concs) < 4 || len(cal.Blanks) < 3 {
		return Report{}, ErrInsufficientData
	}
	var rep Report
	rep.BlankMean = mathx.Mean(cal.Blanks)
	rep.BlankStd = mathx.StdDev(cal.Blanks)

	// Preliminary slope from the full data set (blank-anchored) to set
	// the LOD floor for the linear-range search.
	prelim, err := AverageSensitivity(cal.Concs, cal.Responses)
	if err != nil {
		return Report{}, err
	}
	lodPrelim, err := LOD(cal.Blanks, prelim)
	if err != nil {
		return Report{}, err
	}

	pointSigma := 0.0
	if cal.Replicates > 0 {
		pointSigma = rep.BlankStd / math.Sqrt(float64(cal.Replicates))
	}
	lo, hi, fit, err := LinearRange(cal.Concs, cal.Responses, lodPrelim, pointSigma)
	if err != nil {
		return Report{}, err
	}
	// The preliminary slope is biased low by saturation (it spans the
	// whole curve), which overstates the LOD floor. Refine once: redo
	// the window search with the floor from the linear-window slope.
	if lodFinal, err := LOD(cal.Blanks, fit.Slope); err == nil && lodFinal < lodPrelim {
		if lo2, hi2, fit2, err := LinearRange(cal.Concs, cal.Responses, lodFinal, pointSigma); err == nil {
			lo, hi, fit = lo2, hi2, fit2
		}
	}
	rep.LinearLo, rep.LinearHi = lo, hi
	rep.Slope = fit.Slope
	rep.R2 = fit.R2
	if area > 0 {
		rep.Sensitivity = phys.Sensitivity(fit.Slope * responseToCurrent / float64(area))
	}

	// Final LOD from the linear-range slope.
	lod, err := LOD(cal.Blanks, fit.Slope)
	if err != nil {
		return Report{}, err
	}
	rep.LOD = lod

	// NLmax over the linear window (eq. 7).
	var cs []phys.Concentration
	var ys []float64
	for i, c := range cal.Concs {
		if c >= lo && c <= hi {
			cs = append(cs, c)
			ys = append(ys, cal.Responses[i])
		}
	}
	if nl, err := MaxNonlinearity(cs, ys); err == nil {
		rep.NLmax = nl
	}
	return rep, nil
}

// String renders the report like a Table III row.
func (r Report) String() string {
	return fmt.Sprintf("S=%.3g µA/(mM·cm²)  LOD=%.3g µM  linear %.3g–%.3g mM  NLmax=%.2g  R²=%.4f",
		r.Sensitivity.Paper(), r.LOD.MicroMolar(), r.LinearLo.MilliMolar(), r.LinearHi.MilliMolar(), r.NLmax, r.R2)
}
