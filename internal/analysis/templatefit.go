package analysis

import (
	"fmt"
	"math"

	"advdiag/internal/mathx"
	"advdiag/internal/trace"
)

// ComponentFit is the outcome of decomposing a voltammogram into known
// unit templates plus a background model.
type ComponentFit struct {
	// Amplitudes maps substrate name → fitted amplitude. Because the
	// diffusion problem is linear in concentration, the amplitude IS
	// the substrate's effective concentration in mol/m³.
	Amplitudes map[string]float64
	// Aliased maps substrate name → the other substrates whose
	// templates are voltammetrically indistinguishable from it
	// (coincident peak potentials, e.g. CYP2B6's bupropion/lidocaine).
	// Aliased members share one fitted amplitude: the instrument sees a
	// single peak and cannot apportion it.
	Aliased map[string][]string
	// Baseline and Slope describe the fitted affine background
	// (offsets and residual tilt).
	Baseline, Slope float64
	// Charging is the fitted double-layer charging magnitude: the
	// capacitive current C·|dE/dt| flips sign between the cathodic and
	// anodic branches, so it enters as a sweep-direction square wave.
	Charging float64
	// ResidualRMS is the root-mean-square misfit in amperes.
	ResidualRMS float64
}

// GaussianColumn evaluates exp(−((x−center)/width)²) over xs — the
// nuisance-background shape used to absorb the enzyme film's variable
// pseudo-capacitive background near a binding's formal potential.
func GaussianColumn(xs []float64, center, width float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		u := (x - center) / width
		out[i] = math.Exp(-u * u)
	}
	return out
}

// FitCVComponents decomposes a measured voltammogram into the given
// unit-concentration templates plus an affine background, a sweep-
// direction (charging) term, and any number of known-shape nuisance
// columns (film backgrounds), by linear least squares. The voltammogram
// and templates must share the same potential grid (both produced from
// the same protocol — RunCV and CVTemplates guarantee this).
//
// This is the quantification path for multi-target electrodes: simple
// peak detection fails when a small peak rides the foot of a large
// neighbouring wave (it becomes a shoulder), while the template
// decomposition recovers both amplitudes exactly in the noise-free
// limit.
func FitCVComponents(vg *trace.XY, templates map[string][]float64, nuisances ...[]float64) (*ComponentFit, error) {
	if err := vg.Validate(); err != nil {
		return nil, err
	}
	m := vg.Len()
	if m < 8 {
		return nil, ErrInsufficientData
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("analysis: no templates to fit")
	}
	names := make([]string, 0, len(templates))
	skipped := make([]string, 0)
	for name, tpl := range templates {
		if len(tpl) != m {
			return nil, fmt.Errorf("analysis: template %q has %d samples, voltammogram has %d", name, len(tpl), m)
		}
		// Templates whose peak lies outside the scanned window are all
		// but zero; excluding them keeps the normal equations well
		// conditioned. Their amplitude is reported as zero.
		if mathx.MaxAbs(tpl) < 1e-15 {
			skipped = append(skipped, name)
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: every template is zero over the scanned window")
	}
	// Deterministic column order.
	sortStrings(names)

	// Merge voltammetrically indistinguishable templates: near-collinear
	// columns make the normal equations explode into huge cancelling
	// amplitudes. Physically the instrument sees one peak (the paper's
	// peak-separation rule), so indistinguishable substrates share one
	// fitted amplitude.
	aliased := map[string][]string{}
	var reps []string // cluster representatives, in order
	repOf := map[string]string{}
	for _, name := range names {
		assigned := false
		for _, rep := range reps {
			if templateCorrelation(templates[name], templates[rep]) > 0.99 {
				repOf[name] = rep
				aliased[rep] = append(aliased[rep], name)
				aliased[name] = append(aliased[name], rep)
				assigned = true
				break
			}
		}
		if !assigned {
			reps = append(reps, name)
			repOf[name] = name
		}
	}
	names = reps

	cols := make([][]float64, 0, len(names)+3)
	for _, name := range names {
		cols = append(cols, templates[name])
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	// Sweep-direction column: −1 on the cathodic branch, +1 on the
	// anodic one, models the double-layer charging current C·dE/dt.
	dir := make([]float64, m)
	for i := 1; i < m; i++ {
		if vg.X[i] < vg.X[i-1] {
			dir[i] = -1
		} else if vg.X[i] > vg.X[i-1] {
			dir[i] = 1
		} else {
			dir[i] = dir[i-1]
		}
	}
	if m > 1 {
		dir[0] = dir[1]
	}
	cols = append(cols, ones, vg.X, dir)
	for i, nu := range nuisances {
		if len(nu) != m {
			return nil, fmt.Errorf("analysis: nuisance column %d has %d samples, voltammogram has %d", i, len(nu), m)
		}
		cols = append(cols, nu)
	}

	x, err := mathx.LeastSquares(cols, vg.Y)
	if err != nil {
		return nil, err
	}
	fit := &ComponentFit{
		Amplitudes: make(map[string]float64, len(repOf)+len(skipped)),
		Aliased:    aliased,
	}
	repAmp := map[string]float64{}
	for i, name := range names {
		amp := x[i]
		if amp < 0 {
			amp = 0 // concentrations cannot be negative
		}
		repAmp[name] = amp
	}
	for name, rep := range repOf {
		fit.Amplitudes[name] = repAmp[rep]
	}
	for _, name := range skipped {
		fit.Amplitudes[name] = 0
	}
	fit.Baseline = x[len(names)]
	fit.Slope = x[len(names)+1]
	fit.Charging = x[len(names)+2]

	// Residual.
	var ss float64
	for r := 0; r < m; r++ {
		pred := fit.Baseline + fit.Slope*vg.X[r] + fit.Charging*dir[r]
		for i, name := range names {
			pred += x[i] * templates[name][r]
		}
		for i := range nuisances {
			pred += x[len(names)+3+i] * nuisances[i][r]
		}
		d := vg.Y[r] - pred
		ss += d * d
	}
	fit.ResidualRMS = math.Sqrt(ss / float64(m))
	return fit, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// templateCorrelation returns the normalized inner product of two
// template columns (1 = identical shape).
func templateCorrelation(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
