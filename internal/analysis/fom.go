// Package analysis extracts the figures of merit the paper defines for
// a biosensing acquisition chain (§II-B): limit of detection (eq. 5),
// average sensitivity (eq. 6), maximum nonlinearity (eq. 7), linear
// range, response times and sample throughput — all from measured
// (simulated) data, never from the calibration constants.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

// ErrInsufficientData is returned when a figure of merit cannot be
// computed from the provided samples.
var ErrInsufficientData = errors.New("analysis: insufficient data")

// LOD implements the paper's eq. (5): the ACS-recommended detection
// limit V_b + 3σ_b, converted to concentration through the calibration
// slope. blank holds repeated blank responses; slope is the calibration
// slope in response units per mol/m³.
func LOD(blank []float64, slope float64) (phys.Concentration, error) {
	if len(blank) < 3 {
		return 0, ErrInsufficientData
	}
	if slope == 0 {
		return 0, fmt.Errorf("analysis: zero calibration slope")
	}
	sigma := mathx.StdDev(blank)
	return phys.Concentration(3 * sigma / math.Abs(slope)), nil
}

// AverageSensitivity implements eq. (6): S_avg = ΔV/ΔC over the measured
// range, where responses[i] corresponds to concs[i]. Points must span a
// non-zero concentration range.
func AverageSensitivity(concs []phys.Concentration, responses []float64) (float64, error) {
	if len(concs) != len(responses) || len(concs) < 2 {
		return 0, ErrInsufficientData
	}
	loC, hiC := concs[0], concs[0]
	loI, hiI := 0, 0
	for i, c := range concs {
		if c < loC {
			loC, loI = c, i
		}
		if c > hiC {
			hiI = i
			hiC = c
		}
	}
	if hiC == loC {
		return 0, fmt.Errorf("analysis: zero concentration span")
	}
	return (responses[hiI] - responses[loI]) / float64(hiC-loC), nil
}

// MaxNonlinearity implements eq. (7): the largest deviation of the
// response from the straight line through the reference point with the
// average sensitivity, in response units. The first point is used as
// (C₀, V_C₀).
func MaxNonlinearity(concs []phys.Concentration, responses []float64) (float64, error) {
	if len(concs) != len(responses) || len(concs) < 3 {
		return 0, ErrInsufficientData
	}
	savg, err := AverageSensitivity(concs, responses)
	if err != nil {
		return 0, err
	}
	c0 := float64(concs[0])
	v0 := responses[0]
	maxDev := 0.0
	for i := range concs {
		dev := math.Abs(responses[i] - v0 - savg*(float64(concs[i])-c0))
		if dev > maxDev {
			maxDev = dev
		}
	}
	return maxDev, nil
}

// LinearRangeTolerance is the relative residual budget that ends the
// usable linear range: the best-fit line over the accepted window must
// leave no residual larger than this fraction of the window's response
// span.
const LinearRangeTolerance = 0.05

// LinearRange finds the linear calibration window the way a lab does:
// anchored at the lowest prepared standard, extended upward until the
// best-fit residuals exceed the tolerance budget. The budget is the
// larger of LinearRangeTolerance × response span and 3 × pointSigma
// (the residual scatter of the replicate-averaged points — pass 0 for
// noise-free data). At least four points must fit.
//
// The detection floor does not constrain the fit (replicate-averaged
// points below the LOD still inform the slope) but bounds the
// *claimable* range: the reported low end is max(window start, floor),
// and a window entirely below the floor is an error.
func LinearRange(concs []phys.Concentration, responses []float64, floor phys.Concentration, pointSigma float64) (lo, hi phys.Concentration, fit mathx.LinearFit, err error) {
	n := len(concs)
	if n != len(responses) || n < 4 {
		return 0, 0, mathx.LinearFit{}, ErrInsufficientData
	}
	// Points must be sorted by concentration.
	for i := 1; i < n; i++ {
		if concs[i] < concs[i-1] {
			return 0, 0, mathx.LinearFit{}, fmt.Errorf("analysis: concentrations must be sorted")
		}
	}
	found := false
	var bestFit mathx.LinearFit
	bestHi := -1
	for j := n - 1; j >= 3; j-- {
		xs := make([]float64, 0, j+1)
		ys := make([]float64, 0, j+1)
		for k := 0; k <= j; k++ {
			xs = append(xs, float64(concs[k]))
			ys = append(ys, responses[k])
		}
		f, ferr := mathx.FitLinear(xs, ys)
		if ferr != nil {
			continue
		}
		span := spanOf(ys)
		if span == 0 {
			continue
		}
		budget := LinearRangeTolerance * span
		if nb := 3 * pointSigma; nb > budget {
			budget = nb
		}
		if f.MaxAbsResidual <= budget {
			found = true
			bestFit = f
			bestHi = j
			break
		}
	}
	if !found {
		return 0, 0, mathx.LinearFit{}, fmt.Errorf("analysis: no linear window found")
	}
	lo, hi = concs[0], concs[bestHi]
	if hi <= floor {
		return 0, 0, mathx.LinearFit{}, fmt.Errorf("analysis: linear window lies entirely below the detection floor %v", floor)
	}
	if lo < floor {
		lo = floor
	}
	return lo, hi, bestFit, nil
}

func spanOf(ys []float64) float64 {
	lo, hi, err := mathx.MinMax(ys)
	if err != nil {
		return 0
	}
	return hi - lo
}
