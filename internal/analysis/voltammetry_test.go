package analysis

import (
	"math"
	"testing"

	"advdiag/internal/phys"
	"advdiag/internal/trace"
)

// syntheticCV builds a full-cycle voltammogram: a cathodic branch from
// +0.1 V down to −0.6 V and back, with Gaussian reduction peaks (negative
// currents) plus a linear background and a direction-dependent charging
// offset.
func syntheticCV(peaks map[float64]float64, base, slope, charging float64) *trace.XY {
	vg := trace.NewXY("V", "A")
	add := func(e, dir float64) {
		y := base + slope*e + charging*dir
		for center, height := range peaks {
			x := (e - center) / 0.05
			y -= height * math.Exp(-x*x)
		}
		vg.Append(e, y)
	}
	for e := 0.1; e >= -0.6; e -= 0.002 {
		add(e, -1)
	}
	for e := -0.598; e <= 0.1; e += 0.002 {
		add(e, +1)
	}
	return vg
}

func TestForwardBranch(t *testing.T) {
	vg := syntheticCV(map[float64]float64{-0.25: 1e-9}, 0, 0, 0)
	pot, cur, err := ForwardBranch(vg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pot) != len(cur) {
		t.Fatal("length mismatch")
	}
	// Forward branch runs downhill in potential.
	for i := 1; i < len(pot); i++ {
		if pot[i] > pot[i-1] {
			t.Fatal("forward branch must be monotonically decreasing")
		}
	}
	if pot[0] < 0.09 || pot[len(pot)-1] > -0.59 {
		t.Fatalf("branch bounds [%g, %g]", pot[0], pot[len(pot)-1])
	}
}

func TestFindReductionPeaksSingle(t *testing.T) {
	vg := syntheticCV(map[float64]float64{-0.25: 2e-9}, -1e-10, 2e-10, 5e-10)
	peaks, err := FindReductionPeaks(vg, phys.NanoAmps(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 1 {
		t.Fatalf("found %d peaks, want 1", len(peaks))
	}
	if math.Abs(peaks[0].Potential.MilliVolts()-(-250)) > 5 {
		t.Fatalf("peak at %g mV", peaks[0].Potential.MilliVolts())
	}
	if math.Abs(float64(peaks[0].Height)-2e-9)/2e-9 > 0.15 {
		t.Fatalf("height %g, want ≈2 nA", float64(peaks[0].Height))
	}
}

func TestFindReductionPeaksTwo(t *testing.T) {
	vg := syntheticCV(map[float64]float64{-0.25: 1e-9, -0.4: 3e-9}, 0, 1e-10, 2e-10)
	peaks, err := FindReductionPeaks(vg, phys.NanoAmps(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if len(peaks) != 2 {
		t.Fatalf("found %d peaks, want 2", len(peaks))
	}
}

func TestPeakNear(t *testing.T) {
	vg := syntheticCV(map[float64]float64{-0.25: 1e-9, -0.4: 3e-9}, 0, 0, 0)
	pk, err := PeakNear(vg, phys.MilliVolts(-250), phys.MilliVolts(80), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pk.Potential.MilliVolts()-(-250)) > 10 {
		t.Fatalf("nearest peak at %g mV", pk.Potential.MilliVolts())
	}
	if _, err := PeakNear(vg, phys.MilliVolts(-600), phys.MilliVolts(40), 0); err == nil {
		t.Fatal("no peak near −600 mV: must fail")
	}
}

func TestFitCVComponentsRecoversAmplitudes(t *testing.T) {
	// Templates = two unit Gaussians; measured = 2×A + 0.5×B + affine
	// background + charging square wave. The fit must recover 2 and 0.5.
	mkTpl := func(center float64) []float64 {
		var out []float64
		for e := 0.1; e >= -0.6; e -= 0.002 {
			x := (e - center) / 0.05
			out = append(out, -math.Exp(-x*x))
		}
		for e := -0.598; e <= 0.1; e += 0.002 {
			x := (e - center) / 0.05
			out = append(out, -math.Exp(-x*x))
		}
		return out
	}
	tplA := mkTpl(-0.25)
	tplB := mkTpl(-0.45)
	vg := trace.NewXY("V", "A")
	i := 0
	appendPoint := func(e, dir float64) {
		y := 1e-10 + 2e-10*e + 3e-10*dir + 2*tplA[i] + 0.5*tplB[i]
		vg.Append(e, y)
		i++
	}
	for e := 0.1; e >= -0.6; e -= 0.002 {
		appendPoint(e, -1)
	}
	for e := -0.598; e <= 0.1; e += 0.002 {
		appendPoint(e, +1)
	}
	fit, err := FitCVComponents(vg, map[string][]float64{"a": tplA, "b": tplB})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Amplitudes["a"]-2) > 0.01 {
		t.Fatalf("amp a = %g, want 2", fit.Amplitudes["a"])
	}
	if math.Abs(fit.Amplitudes["b"]-0.5) > 0.01 {
		t.Fatalf("amp b = %g, want 0.5", fit.Amplitudes["b"])
	}
	if math.Abs(fit.Charging-3e-10) > 1e-11 {
		t.Fatalf("charging = %g, want 3e-10", fit.Charging)
	}
	if fit.ResidualRMS > 1e-12 {
		t.Fatalf("residual %g on exact synthesis", fit.ResidualRMS)
	}
}

func TestFitCVComponentsShoulder(t *testing.T) {
	// The dual-target scenario: a small peak riding a 40× larger
	// neighbour 150 mV away. Plain peak detection loses it; the
	// template fit must still recover the amplitude within a few %.
	mkTpl := func(center float64) []float64 {
		var out []float64
		for e := 0.1; e >= -0.6; e -= 0.002 {
			x := (e - center) / 0.08
			out = append(out, -math.Exp(-x*x))
		}
		for e := -0.598; e <= 0.1; e += 0.002 {
			out = append(out, 0) // no return-branch response (simplified)
		}
		return out
	}
	small := mkTpl(-0.25)
	big := mkTpl(-0.40)
	vg := trace.NewXY("V", "A")
	i := 0
	for e := 0.1; e >= -0.6; e -= 0.002 {
		vg.Append(e, 0.05*small[i]+2.0*big[i])
		i++
	}
	for e := -0.598; e <= 0.1; e += 0.002 {
		vg.Append(e, 0)
		i++
	}
	fit, err := FitCVComponents(vg, map[string][]float64{"small": small, "big": big})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Amplitudes["small"]-0.05)/0.05 > 0.02 {
		t.Fatalf("small amplitude %g, want 0.05", fit.Amplitudes["small"])
	}
	if math.Abs(fit.Amplitudes["big"]-2)/2 > 0.02 {
		t.Fatalf("big amplitude %g, want 2", fit.Amplitudes["big"])
	}
}

func TestFitCVComponentsClampsNegative(t *testing.T) {
	tpl := make([]float64, 100)
	for i := range tpl {
		x := (float64(i) - 50) / 10
		tpl[i] = -math.Exp(-x * x)
	}
	vg := trace.NewXY("V", "A")
	for i := range tpl {
		vg.Append(float64(i), -0.3*tpl[i]) // negative amplitude scenario
	}
	fit, err := FitCVComponents(vg, map[string][]float64{"x": tpl})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Amplitudes["x"] != 0 {
		t.Fatalf("negative amplitude must clamp to 0, got %g", fit.Amplitudes["x"])
	}
}

func TestFitCVComponentsSkipsZeroTemplates(t *testing.T) {
	tpl := make([]float64, 100)
	zero := make([]float64, 100)
	for i := range tpl {
		x := (float64(i) - 50) / 10
		tpl[i] = -math.Exp(-x * x)
	}
	vg := trace.NewXY("V", "A")
	for i := range tpl {
		vg.Append(float64(i), 1.5*tpl[i])
	}
	fit, err := FitCVComponents(vg, map[string][]float64{"x": tpl, "absent": zero})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Amplitudes["absent"] != 0 {
		t.Fatal("zero template must report zero amplitude")
	}
	if math.Abs(fit.Amplitudes["x"]-1.5) > 0.01 {
		t.Fatalf("amp %g", fit.Amplitudes["x"])
	}
}

func TestGaussianColumn(t *testing.T) {
	xs := []float64{-0.1, 0, 0.1}
	col := GaussianColumn(xs, 0, 0.1)
	if col[1] != 1 {
		t.Fatal("centre must be 1")
	}
	if math.Abs(col[0]-math.Exp(-1)) > 1e-12 || col[0] != col[2] {
		t.Fatalf("wings: %v", col)
	}
}
