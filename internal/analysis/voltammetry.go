package analysis

import (
	"fmt"

	"advdiag/internal/phys"
	"advdiag/internal/signalproc"
	"advdiag/internal/trace"
)

// PeakQuant is one quantified reduction peak in a voltammogram: the
// electrochemical signature of a target (position → identity, height →
// concentration; paper §I-B).
type PeakQuant struct {
	// Potential is the detected peak potential.
	Potential phys.Voltage
	// Height is the baseline-corrected cathodic peak current magnitude
	// (positive number).
	Height phys.Current
	// Prominence is the raw detector prominence.
	Prominence float64
}

// ForwardBranch extracts the cathodic (first, decreasing-potential)
// branch of a voltammogram cycle as parallel slices.
func ForwardBranch(vg *trace.XY) (pot, cur []float64, err error) {
	if err := vg.Validate(); err != nil {
		return nil, nil, err
	}
	if vg.Len() < 8 {
		return nil, nil, ErrInsufficientData
	}
	// The branch runs while X strictly decreases; a repeated or rising
	// potential marks the vertex turnaround (the repeated sample already
	// belongs to the anodic branch, where the charging current has
	// flipped sign).
	pot = append(pot, vg.X[0])
	cur = append(cur, vg.Y[0])
	for i := 1; i < vg.Len(); i++ {
		if vg.X[i] >= vg.X[i-1] {
			break
		}
		pot = append(pot, vg.X[i])
		cur = append(cur, vg.Y[i])
	}
	if len(pot) < 8 {
		return nil, nil, fmt.Errorf("analysis: voltammogram does not start with a cathodic branch")
	}
	return pot, cur, nil
}

// FindReductionPeaks locates cathodic peaks on the forward branch of a
// voltammogram: the current is negated (IUPAC cathodic currents are
// negative), detrended against the linear charging background, smoothed
// lightly, and run through the prominence-based peak detector.
// minHeight filters peaks smaller than the given current magnitude.
func FindReductionPeaks(vg *trace.XY, minHeight phys.Current) ([]PeakQuant, error) {
	pot, cur, err := ForwardBranch(vg)
	if err != nil {
		return nil, err
	}
	// Invert so reduction peaks point up, remove the linear background
	// (double-layer charging plus residual slope), and smooth.
	inv := make([]float64, len(cur))
	for i, y := range cur {
		inv[i] = -y
	}
	base := signalproc.Detrend(inv)
	smooth := signalproc.MovingAverage(base, 5)
	peaks := signalproc.FindPeaks(pot, smooth, float64(minHeight))
	out := make([]PeakQuant, 0, len(peaks))
	for _, p := range peaks {
		if p.Y < float64(minHeight) {
			continue
		}
		out = append(out, PeakQuant{
			Potential:  phys.Voltage(p.X),
			Height:     phys.Current(p.Y),
			Prominence: p.Prominence,
		})
	}
	return out, nil
}

// PeakNear returns the detected reduction peak closest to the expected
// potential within the given window, or an error when none lies inside.
func PeakNear(vg *trace.XY, expected phys.Voltage, window phys.Voltage, minHeight phys.Current) (PeakQuant, error) {
	peaks, err := FindReductionPeaks(vg, minHeight)
	if err != nil {
		return PeakQuant{}, err
	}
	best := -1
	bestDist := float64(window)
	for i, p := range peaks {
		d := float64(p.Potential - expected)
		if d < 0 {
			d = -d
		}
		if d <= bestDist {
			bestDist = d
			best = i
		}
	}
	if best < 0 {
		return PeakQuant{}, fmt.Errorf("analysis: no reduction peak within %v of %v", window, expected)
	}
	return peaks[best], nil
}
