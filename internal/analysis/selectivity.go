package analysis

import (
	"fmt"
	"math"
)

// Selectivity quantifies the paper's §II-B property — "the ability to
// discriminate between different substances" — as the ratio of the
// sensor's response slope to its target over the response slope to an
// interferent presented at the same concentrations:
//
//	Sel = S_target / S_interferent
//
// Large values mean the recognition element (the enzyme) rejects the
// interferent; values near 1 mean the channel cannot tell them apart.
type Selectivity struct {
	// Target and Interferent name the two species.
	Target, Interferent string
	// TargetSlope and InterferentSlope are the measured response slopes
	// (response units per mM).
	TargetSlope, InterferentSlope float64
	// Ratio is TargetSlope/InterferentSlope (+Inf when the interferent
	// produces no measurable response).
	Ratio float64
}

// NewSelectivity computes the metric from two measured slopes.
func NewSelectivity(target, interferent string, targetSlope, interferentSlope float64) (Selectivity, error) {
	if targetSlope == 0 {
		return Selectivity{}, fmt.Errorf("analysis: zero target slope")
	}
	s := Selectivity{
		Target:           target,
		Interferent:      interferent,
		TargetSlope:      targetSlope,
		InterferentSlope: interferentSlope,
	}
	if interferentSlope == 0 {
		s.Ratio = math.Inf(1)
	} else {
		s.Ratio = math.Abs(targetSlope / interferentSlope)
	}
	return s, nil
}

// String renders the metric.
func (s Selectivity) String() string {
	if math.IsInf(s.Ratio, 1) {
		return fmt.Sprintf("%s vs %s: fully selective (no interferent response)", s.Target, s.Interferent)
	}
	return fmt.Sprintf("%s vs %s: selectivity %.3g", s.Target, s.Interferent, s.Ratio)
}

// InterferenceError returns the relative reading error an interferent
// at concentration cInt causes on a target reading at cTarget:
// (S_int·C_int)/(S_tgt·C_tgt).
func (s Selectivity) InterferenceError(cTarget, cInt float64) float64 {
	if s.TargetSlope == 0 || cTarget == 0 {
		return math.Inf(1)
	}
	return math.Abs(s.InterferentSlope*cInt) / math.Abs(s.TargetSlope*cTarget)
}
