package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

func TestLODEquation5(t *testing.T) {
	// LOD = 3σ_b / S, straight from the paper's eq. (5).
	blank := []float64{1.0, 1.2, 0.8, 1.1, 0.9}
	sigma := mathx.StdDev(blank)
	lod, err := LOD(blank, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(lod)-3*sigma/2.0) > 1e-12 {
		t.Fatalf("LOD = %g", float64(lod))
	}
	if _, err := LOD(blank[:2], 1); err != ErrInsufficientData {
		t.Fatal("two blanks must be insufficient")
	}
	if _, err := LOD(blank, 0); err == nil {
		t.Fatal("zero slope must fail")
	}
}

func TestLODNegativeSlope(t *testing.T) {
	blank := []float64{1, 2, 3, 2, 1}
	lod, err := LOD(blank, -4)
	if err != nil {
		t.Fatal(err)
	}
	if lod <= 0 {
		t.Fatal("LOD must be positive for negative slopes too")
	}
}

func TestAverageSensitivityEquation6(t *testing.T) {
	concs := []phys.Concentration{1, 2, 4}
	resp := []float64{10, 19, 42}
	s, err := AverageSensitivity(concs, resp)
	if err != nil {
		t.Fatal(err)
	}
	// ΔV/ΔC over the extremes: (42−10)/(4−1).
	if math.Abs(s-32.0/3.0) > 1e-12 {
		t.Fatalf("Savg = %g", s)
	}
	if _, err := AverageSensitivity(concs[:1], resp[:1]); err != ErrInsufficientData {
		t.Fatal("single point insufficient")
	}
	if _, err := AverageSensitivity([]phys.Concentration{2, 2}, []float64{1, 2}); err == nil {
		t.Fatal("zero span must fail")
	}
}

func TestMaxNonlinearityEquation7(t *testing.T) {
	// A perfectly linear set has zero NLmax.
	concs := []phys.Concentration{0, 1, 2, 3}
	lin := []float64{1, 3, 5, 7}
	nl, err := MaxNonlinearity(concs, lin)
	if err != nil {
		t.Fatal(err)
	}
	if nl > 1e-12 {
		t.Fatalf("NLmax = %g on a line", nl)
	}
	// Bend the middle: NLmax picks up the deviation.
	bent := []float64{1, 3.4, 5, 7}
	nl2, _ := MaxNonlinearity(concs, bent)
	if nl2 < 0.2 {
		t.Fatalf("NLmax = %g, want ≥0.2", nl2)
	}
}

func TestLinearRangeOnMichaelisMenten(t *testing.T) {
	// Noise-free MM curve with Km = 2.81×2 mM: the detector must end
	// the range near 2 mM.
	km := 2.81 * 2.0
	var concs []phys.Concentration
	var resp []float64
	for c := 0.25; c <= 6.0; c += 0.25 {
		concs = append(concs, phys.Concentration(c))
		resp = append(resp, c/(km+c))
	}
	lo, hi, fit, err := LinearRange(concs, resp, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(lo) != 0.25 {
		t.Fatalf("lo = %v, want grid start", lo)
	}
	if float64(hi) < 1.5 || float64(hi) > 3.0 {
		t.Fatalf("hi = %v, want ≈2", hi)
	}
	if fit.Slope <= 0 {
		t.Fatal("slope must be positive")
	}
}

func TestLinearRangeFloor(t *testing.T) {
	var concs []phys.Concentration
	var resp []float64
	for c := 0.25; c <= 4.0; c += 0.25 {
		concs = append(concs, phys.Concentration(c))
		resp = append(resp, c) // perfectly linear
	}
	lo, hi, _, err := LinearRange(concs, resp, phys.Concentration(1.1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if float64(lo) != 1.1 {
		t.Fatalf("floor must bound the reported low end: lo = %v", lo)
	}
	if float64(hi) != 4.0 {
		t.Fatalf("hi = %v", hi)
	}
	// A floor above every point must fail.
	if _, _, _, err := LinearRange(concs, resp, phys.Concentration(10), 0); err == nil {
		t.Fatal("floor above the data must fail")
	}
}

func TestLinearRangeUnsorted(t *testing.T) {
	concs := []phys.Concentration{2, 1, 3, 4}
	resp := []float64{2, 1, 3, 4}
	if _, _, _, err := LinearRange(concs, resp, 0, 0); err == nil {
		t.Fatal("unsorted concentrations must fail")
	}
}

func TestCalibrateAndAnalyze(t *testing.T) {
	// Synthetic instrument: linear response 2 µA/mM with Gaussian blank
	// noise. The report must recover the slope and an eq.-5 LOD.
	rng := mathx.NewRNG(31)
	slope := 2e-6
	sigma := 0.05e-6
	fn := func(c phys.Concentration) (float64, error) {
		return slope*float64(c) + rng.NormScaled(sigma), nil
	}
	var concs []phys.Concentration
	for c := 0.2; c <= 3.0; c += 0.2 {
		concs = append(concs, phys.Concentration(c))
	}
	cal, err := Calibrate(concs, 12, 8, "A", fn)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Replicates != 8 || len(cal.Blanks) != 12 {
		t.Fatalf("calibration bookkeeping: %+v", cal)
	}
	rep, err := cal.Analyze(phys.SquareMillimetres(0.23), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Slope-slope)/slope > 0.05 {
		t.Fatalf("slope %g, want %g", rep.Slope, slope)
	}
	wantLOD := 3 * sigma / slope
	if math.Abs(float64(rep.LOD)-wantLOD)/wantLOD > 0.6 {
		t.Fatalf("LOD %g, want ≈%g (within the σ-estimate scatter)", float64(rep.LOD), wantLOD)
	}
	if rep.R2 < 0.99 {
		t.Fatalf("R² = %g", rep.R2)
	}
}

func TestCalibrateValidation(t *testing.T) {
	fn := func(phys.Concentration) (float64, error) { return 0, nil }
	if _, err := Calibrate([]phys.Concentration{1, 2}, 5, 1, "A", fn); err != ErrInsufficientData {
		t.Fatal("three concentrations must be insufficient")
	}
}

// Property: LOD scales inversely with slope.
func TestLODSlopeScalingProperty(t *testing.T) {
	blank := []float64{0.1, 0.2, 0.15, 0.12, 0.18}
	f := func(mult uint8) bool {
		m := float64(mult%100) + 1
		l1, err1 := LOD(blank, 1)
		l2, err2 := LOD(blank, m)
		if err1 != nil || err2 != nil {
			return false
		}
		return mathx.ApproxEqual(float64(l1)/float64(l2), m, 1e-9, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectivity(t *testing.T) {
	s, err := NewSelectivity("glucose", "lactate", 2.0, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Ratio-200) > 1e-9 {
		t.Fatalf("ratio %g", s.Ratio)
	}
	// Interference error: S_int·C_int / S_tgt·C_tgt.
	if got := s.InterferenceError(1, 0.5); math.Abs(got-0.0025) > 1e-12 {
		t.Fatalf("interference error %g", got)
	}
	// Fully selective.
	full, err := NewSelectivity("a", "b", 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(full.Ratio, 1) {
		t.Fatal("zero interferent slope must be fully selective")
	}
	if _, err := NewSelectivity("a", "b", 0, 1); err == nil {
		t.Fatal("zero target slope must fail")
	}
}
