package analysis

import (
	"fmt"
	"math"

	"advdiag/internal/mathx"
	"advdiag/internal/trace"
)

// FitPlan is a prefactored FitCVComponents: everything in the template
// decomposition that depends only on the potential grid, the unit
// templates and the nuisance columns — the zero-template filtering,
// deterministic name ordering, alias clustering, background columns and
// the least-squares factorization — is computed once per electrode
// calibration, so the per-sample fit costs one right-hand-side solve
// plus the residual pass.
//
// Fit is bit-identical to FitCVComponents on the same voltammogram:
// the plan records the exact columns in the exact order, and
// mathx.LSQPlan replays the exact eliminations of mathx.LeastSquares.
// A plan is immutable after construction and safe for concurrent Fit
// calls when each caller passes its own FitScratch.
type FitPlan struct {
	m     int
	gridX []float64
	// names holds the alias-cluster representatives in fitted order;
	// colOf maps every known template name to its representative's
	// column (−1 for templates skipped as all-zero over the window).
	names   []string
	colOf   map[string]int
	aliased map[string][]string
	// cols are the design-matrix columns in LeastSquares order:
	// representative templates, ones, grid X, sweep direction, then the
	// nuisance columns.
	cols [][]float64
	dir  []float64
	nNui int
	lsq  *mathx.LSQPlan
}

// FitScratch holds the per-caller buffers a Fit call reuses.
type FitScratch struct {
	rhs, coef []float64
}

// PlanFit is the outcome of one planned fit. Amplitude reproduces the
// ComponentFit.Amplitudes lookup (alias sharing, skipped templates,
// the non-negativity clamp) without building a map; the affine
// background and residual match ComponentFit field-for-field. The
// coefficient slice aliases the FitScratch, so a PlanFit is valid only
// until the scratch's next fit.
type PlanFit struct {
	plan *FitPlan
	coef []float64
	// Baseline, Slope and Charging are the fitted background terms.
	Baseline, Slope, Charging float64
	// ResidualRMS is the root-mean-square misfit in amperes.
	ResidualRMS float64
}

// Amplitude returns the fitted amplitude for a template name, exactly
// as ComponentFit.Amplitudes would report it: aliased substrates share
// their representative's amplitude, skipped and unknown templates read
// zero, and negative amplitudes clamp to zero.
func (f *PlanFit) Amplitude(name string) float64 {
	idx, ok := f.plan.colOf[name]
	if !ok || idx < 0 {
		return 0
	}
	amp := f.coef[idx]
	if amp < 0 {
		return 0
	}
	return amp
}

// Aliased returns the alias clusters (see ComponentFit.Aliased). The
// map is shared plan state — read-only.
func (f *PlanFit) Aliased() map[string][]string { return f.plan.aliased }

// NewFitPlan builds the plan for one electrode's calibration grid,
// replicating FitCVComponents's sample-invariant preprocessing exactly.
func NewFitPlan(gridX []float64, templates map[string][]float64, nuisances ...[]float64) (*FitPlan, error) {
	m := len(gridX)
	if m < 8 {
		return nil, ErrInsufficientData
	}
	if len(templates) == 0 {
		return nil, fmt.Errorf("analysis: no templates to fit")
	}
	names := make([]string, 0, len(templates))
	skipped := make([]string, 0)
	for name, tpl := range templates {
		if len(tpl) != m {
			return nil, fmt.Errorf("analysis: template %q has %d samples, voltammogram has %d", name, len(tpl), m)
		}
		if mathx.MaxAbs(tpl) < 1e-15 {
			skipped = append(skipped, name)
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: every template is zero over the scanned window")
	}
	sortStrings(names)

	var aliased map[string][]string // allocated only when aliases exist
	reps := make([]string, 0, len(names))
	repOf := make(map[string]string, len(names))
	for _, name := range names {
		assigned := false
		for _, rep := range reps {
			if templateCorrelation(templates[name], templates[rep]) > 0.99 {
				repOf[name] = rep
				if aliased == nil {
					aliased = map[string][]string{}
				}
				aliased[rep] = append(aliased[rep], name)
				aliased[name] = append(aliased[name], rep)
				assigned = true
				break
			}
		}
		if !assigned {
			reps = append(reps, name)
			repOf[name] = name
		}
	}
	names = reps

	cols := make([][]float64, 0, len(names)+3+len(nuisances))
	for _, name := range names {
		cols = append(cols, templates[name])
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	dir := make([]float64, m)
	for i := 1; i < m; i++ {
		if gridX[i] < gridX[i-1] {
			dir[i] = -1
		} else if gridX[i] > gridX[i-1] {
			dir[i] = 1
		} else {
			dir[i] = dir[i-1]
		}
	}
	if m > 1 {
		dir[0] = dir[1]
	}
	cols = append(cols, ones, gridX, dir)
	for i, nu := range nuisances {
		if len(nu) != m {
			return nil, fmt.Errorf("analysis: nuisance column %d has %d samples, voltammogram has %d", i, len(nu), m)
		}
		cols = append(cols, nu)
	}

	lsq, err := mathx.NewLSQPlan(cols)
	if err != nil {
		return nil, err
	}
	colOf := make(map[string]int, len(repOf)+len(skipped))
	for name, rep := range repOf {
		for i, n := range names {
			if n == rep {
				colOf[name] = i
				break
			}
		}
	}
	for _, name := range skipped {
		colOf[name] = -1
	}
	return &FitPlan{
		m:       m,
		gridX:   gridX,
		names:   names,
		colOf:   colOf,
		aliased: aliased,
		cols:    cols,
		dir:     dir,
		nNui:    len(nuisances),
		lsq:     lsq,
	}, nil
}

// Fit decomposes a voltammogram measured on the plan's grid. The
// voltammogram must share the calibration grid (RunCVWithBasis and
// CVTemplatesFromBasis guarantee this); the endpoints are checked
// bitwise as a cheap guard against mismatched protocols.
func (p *FitPlan) Fit(vg *trace.XY, s *FitScratch) (PlanFit, error) {
	if err := vg.Validate(); err != nil {
		return PlanFit{}, err
	}
	if vg.Len() != p.m || vg.X[0] != p.gridX[0] || vg.X[p.m-1] != p.gridX[p.m-1] {
		return PlanFit{}, fmt.Errorf("analysis: voltammogram grid does not match the fit plan's calibration grid")
	}
	if cap(s.rhs) < p.lsq.K() {
		s.rhs = make([]float64, p.lsq.K())
	}
	if cap(s.coef) < p.lsq.K() {
		s.coef = make([]float64, p.lsq.K())
	}
	x, err := p.lsq.Solve(vg.Y, s.rhs[:p.lsq.K()], s.coef[:p.lsq.K()])
	if err != nil {
		return PlanFit{}, err
	}
	s.coef = x
	k := len(p.names)
	fit := PlanFit{
		plan:     p,
		coef:     x,
		Baseline: x[k],
		Slope:    x[k+1],
		Charging: x[k+2],
	}
	var ss float64
	for r := 0; r < p.m; r++ {
		pred := fit.Baseline + fit.Slope*vg.X[r] + fit.Charging*p.dir[r]
		for i := 0; i < k; i++ {
			pred += x[i] * p.cols[i][r]
		}
		for i := 0; i < p.nNui; i++ {
			pred += x[k+3+i] * p.cols[k+3+i][r]
		}
		d := vg.Y[r] - pred
		ss += d * d
	}
	fit.ResidualRMS = math.Sqrt(ss / float64(p.m))
	return fit, nil
}
