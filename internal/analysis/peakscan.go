package analysis

import (
	"advdiag/internal/phys"
	"advdiag/internal/signalproc"
	"advdiag/internal/trace"
)

// PeakScratch reuses the buffers of a reduction-peak scan across runs.
// One voltammogram is scanned once (Scan) and then queried per assay
// (Near), so multi-target electrodes pay the detector once instead of
// once per target. All results alias scratch memory — valid until the
// next Scan. A scratch belongs to one goroutine.
type PeakScratch struct {
	pot, cur, inv, base, smooth []float64
	peaks                       []signalproc.Peak
	quants                      []PeakQuant
}

// Scan runs FindReductionPeaks over the voltammogram into scratch
// buffers: identical branch extraction, detrending, smoothing and peak
// detection, with every allocation reused. It reports false where
// FindReductionPeaks would return an error (short or malformed
// voltammograms) — the callers that use a scratch treat peak detection
// as best-effort, exactly like the discarded PeakNear errors did.
func (s *PeakScratch) Scan(vg *trace.XY, minHeight phys.Current) bool {
	if vg.Validate() != nil || vg.Len() < 8 {
		return false
	}
	// Forward (cathodic) branch, as ForwardBranch extracts it. The
	// branch can be at most the full trace, so sizing the buffers up
	// front turns the cold first scan's append regrowth into one
	// allocation each.
	if cap(s.pot) < vg.Len() {
		s.pot = make([]float64, 0, vg.Len())
	}
	if cap(s.cur) < vg.Len() {
		s.cur = make([]float64, 0, vg.Len())
	}
	s.pot = append(s.pot[:0], vg.X[0])
	s.cur = append(s.cur[:0], vg.Y[0])
	for i := 1; i < vg.Len(); i++ {
		if vg.X[i] >= vg.X[i-1] {
			break
		}
		s.pot = append(s.pot, vg.X[i])
		s.cur = append(s.cur, vg.Y[i])
	}
	if len(s.pot) < 8 {
		return false
	}
	if cap(s.inv) < len(s.cur) {
		s.inv = make([]float64, len(s.cur))
	}
	s.inv = s.inv[:len(s.cur)]
	for i, y := range s.cur {
		s.inv[i] = -y
	}
	s.base = signalproc.DetrendInto(s.base, s.inv)
	s.smooth = signalproc.MovingAverageInto(s.smooth, s.base, 5)
	s.peaks = signalproc.FindPeaksInto(s.peaks, s.pot, s.smooth, float64(minHeight))
	s.quants = s.quants[:0]
	for _, p := range s.peaks {
		if p.Y < float64(minHeight) {
			continue
		}
		s.quants = append(s.quants, PeakQuant{
			Potential:  phys.Voltage(p.X),
			Height:     phys.Current(p.Y),
			Prominence: p.Prominence,
		})
	}
	return true
}

// Near returns the scanned peak closest to the expected potential
// within the window, replicating PeakNear's selection (the last peak at
// the minimal distance wins, exactly as PeakNear's <= comparison does).
func (s *PeakScratch) Near(expected, window phys.Voltage) (PeakQuant, bool) {
	best := -1
	bestDist := float64(window)
	for i, p := range s.quants {
		d := float64(p.Potential - expected)
		if d < 0 {
			d = -d
		}
		if d <= bestDist {
			bestDist = d
			best = i
		}
	}
	if best < 0 {
		return PeakQuant{}, false
	}
	return s.quants[best], true
}
