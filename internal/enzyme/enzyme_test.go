package enzyme

import (
	"math"
	"testing"
	"testing/quick"

	"advdiag/internal/phys"
	"advdiag/internal/species"
)

func TestRegistryCoversTableI(t *testing.T) {
	// Table I: four oxidases with their applied potentials.
	want := map[string]float64{
		"glucose oxidase":     +550,
		"lactate oxidase":     +650,
		"glutamate oxidase":   +600,
		"cholesterol oxidase": +700,
	}
	oxs := Oxidases()
	if len(oxs) != len(want) {
		t.Fatalf("want %d oxidases, got %d", len(want), len(oxs))
	}
	for _, o := range oxs {
		mv, ok := want[o.Name]
		if !ok {
			t.Errorf("unexpected oxidase %q", o.Name)
			continue
		}
		if math.Abs(o.Applied.MilliVolts()-mv) > 1e-9 {
			t.Errorf("%s applied %g mV, want %g", o.Name, o.Applied.MilliVolts(), mv)
		}
	}
}

func TestRegistryCoversTableII(t *testing.T) {
	// Table II: isoform → substrate → reduction peak potential (mV).
	want := map[string]map[string]float64{
		"CYP1A2":  {"clozapine": -265},
		"CYP3A4":  {"erythromycin": -625, "indinavir": -750},
		"CYP11A1": {"cholesterol": -400},
		"CYP2B4":  {"benzphetamine": -250, "aminopyrine": -400},
		"CYP2B6":  {"bupropion": -450, "lidocaine": -450},
		"CYP2C9":  {"torsemide": -19, "diclofenac": -41},
		"CYP2E1":  {"p-nitrophenol": -300},
	}
	if len(CYPs()) != len(want) {
		t.Fatalf("want %d isoforms, got %d", len(want), len(CYPs()))
	}
	for iso, subs := range want {
		c, err := CYPByIsoform(iso)
		if err != nil {
			t.Errorf("missing isoform %s: %v", iso, err)
			continue
		}
		if len(c.Bindings) != len(subs) {
			t.Errorf("%s: want %d bindings, got %d", iso, len(subs), len(c.Bindings))
		}
		for sub, mv := range subs {
			b, err := c.Find(sub)
			if err != nil {
				t.Errorf("%s misses %s", iso, sub)
				continue
			}
			if math.Abs(b.PeakPotential.MilliVolts()-mv) > 1e-9 {
				t.Errorf("%s/%s peak %g mV, want %g", iso, sub, b.PeakPotential.MilliVolts(), mv)
			}
		}
	}
}

func TestProstheticGroups(t *testing.T) {
	// FMN for lactate oxidase, FAD for the rest (paper §I-B).
	for _, o := range Oxidases() {
		want := "FAD"
		if o.Name == "lactate oxidase" {
			want = "FMN"
		}
		if o.Prosthetic != want {
			t.Errorf("%s prosthetic %s, want %s", o.Name, o.Prosthetic, want)
		}
	}
}

func TestOxidaseSensitivityCalibration(t *testing.T) {
	// The windowed best-fit slope over the published window at the cited
	// electrode must recover the published sensitivity.
	o, err := OxidaseByName("glucose oxidase")
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the windowed slope numerically from the current density.
	g := o.Perf.NanostructureGain
	lo := float64(o.Perf.LinearLo) / 2
	hi := float64(o.Perf.LinearHi)
	var xs, ys []float64
	for i := 0; i < 40; i++ {
		c := lo + (hi-lo)*float64(i)/39
		xs = append(xs, c)
		ys = append(ys, o.CurrentDensity(phys.Concentration(c), o.Applied, g))
	}
	slope := (ys[len(ys)-1] - ys[0]) / (xs[len(xs)-1] - xs[0])
	// Crude two-point slope underestimates a best-fit slope slightly;
	// compare within 10 %.
	pub := float64(o.Perf.Sensitivity)
	if math.Abs(slope-pub)/pub > 0.10 {
		t.Fatalf("windowed slope %.4g vs published %.4g", slope, pub)
	}
}

func TestOxidaseRecommendedPotential(t *testing.T) {
	// The Table I reproduction: the 95 %-plateau scan lands on the
	// published applied potential within one 10 mV step.
	for _, o := range Oxidases() {
		got := o.RecommendedPotential(phys.MilliVolts(10))
		if d := math.Abs(float64(got - o.Applied)); d > 0.0101 {
			t.Errorf("%s recommended %v, want %v ± 10 mV", o.Name, got, o.Applied)
		}
	}
}

func TestOxidaseSaturation(t *testing.T) {
	o, _ := OxidaseByName("glucose oxidase")
	jLow := o.CurrentDensity(o.Km/100, o.Applied, 1)
	jKm := o.CurrentDensity(o.Km, o.Applied, 1)
	jHigh := o.CurrentDensity(o.Km*100, o.Applied, 1)
	if !(jLow < jKm && jKm < jHigh) {
		t.Fatal("current density must increase with concentration")
	}
	// At C = Km the Michaelis–Menten rate is half its maximum.
	if math.Abs(jKm/jHigh-0.5/(100.0/101.0)) > 0.02 {
		t.Fatalf("half-saturation broken: j(Km)/j(100Km) = %g", jKm/jHigh)
	}
	if o.CurrentDensity(0, o.Applied, 1) != 0 {
		t.Fatal("zero concentration must give zero current")
	}
}

func TestOxidaseGainScaling(t *testing.T) {
	o, _ := OxidaseByName("glucose oxidase")
	j1 := o.CurrentDensity(1, o.Applied, 1)
	j5 := o.CurrentDensity(1, o.Applied, 5)
	if math.Abs(j5/j1-5) > 1e-9 {
		t.Fatalf("nanostructure gain must scale current: ratio %g", j5/j1)
	}
	if s5, s1 := o.BlankSigmaAt(5), o.BlankSigmaAt(1); math.Abs(s5/s1-5) > 1e-9 {
		t.Fatal("blank noise must scale with gain")
	}
}

func TestBindingE0Calibration(t *testing.T) {
	// E0 must sit one reversible peak shift above the published peak.
	c, _ := CYPByIsoform("CYP2B4")
	b, _ := c.Find("benzphetamine")
	wantE0 := b.PeakPotential.MilliVolts() + 28.5
	if math.Abs(b.E0.MilliVolts()-wantE0) > 0.5 {
		t.Fatalf("E0 = %g mV, want ≈%g", b.E0.MilliVolts(), wantE0)
	}
}

func TestBindingPeakSensitivity(t *testing.T) {
	c, _ := CYPByIsoform("CYP2B4")
	b, _ := c.Find("aminopyrine")
	// At the reference sweep rate and the cited electrode gain, the
	// windowed peak sensitivity equals the published value. The tangent
	// PeakSensitivityAt is higher by 1/slope-factor; accept 20–60 %.
	tangent := float64(b.PeakSensitivityAt(phys.MilliVoltsPerSecond(20), b.Perf.NanostructureGain))
	pub := float64(b.Perf.Sensitivity)
	if tangent < pub || tangent > 2*pub {
		t.Fatalf("tangent %g vs published %g: implausible calibration", tangent, pub)
	}
	// sqrt(v) scaling.
	s4 := float64(b.PeakSensitivityAt(phys.MilliVoltsPerSecond(80), 1))
	s1 := float64(b.PeakSensitivityAt(phys.MilliVoltsPerSecond(20), 1))
	if math.Abs(s4/s1-2) > 1e-9 {
		t.Fatal("peak sensitivity must scale as sqrt(rate)")
	}
}

func TestEffectiveConcentrationSaturates(t *testing.T) {
	c, _ := CYPByIsoform("CYP2B4")
	b, _ := c.Find("benzphetamine")
	if b.EffectiveConcentration(0) != 0 {
		t.Fatal("zero in, zero out")
	}
	small := float64(b.EffectiveConcentration(b.Km / 1000))
	if math.Abs(small/(float64(b.Km)/1000)-1) > 0.01 {
		t.Fatal("effective concentration must be ≈C at low C")
	}
	big := float64(b.EffectiveConcentration(b.Km * 1000))
	if big > float64(b.Km) {
		t.Fatal("effective concentration must saturate at Km")
	}
}

func TestMinPeakSeparation(t *testing.T) {
	b4, _ := CYPByIsoform("CYP2B4")
	if sep := b4.MinPeakSeparation().MilliVolts(); math.Abs(sep-150) > 1e-9 {
		t.Fatalf("CYP2B4 separation %g mV, want 150", sep)
	}
	b6, _ := CYPByIsoform("CYP2B6")
	if sep := b6.MinPeakSeparation().MilliVolts(); sep != 0 {
		t.Fatalf("CYP2B6 separation %g mV, want 0 (coincident peaks)", sep)
	}
	e1, _ := CYPByIsoform("CYP2E1")
	if !math.IsInf(float64(e1.MinPeakSeparation()), 1) {
		t.Fatal("single binding must report +Inf separation")
	}
}

func TestAssaysForCholesterolHasTwoRoutes(t *testing.T) {
	// Cholesterol can go via cholesterol oxidase (Table I) or CYP11A1
	// (Table II/III) — the design-space choice the paper itself makes.
	assays := AssaysFor("cholesterol")
	if len(assays) != 2 {
		t.Fatalf("want 2 cholesterol assays, got %d", len(assays))
	}
	techniques := map[Technique]bool{}
	for _, a := range assays {
		techniques[a.Technique] = true
	}
	if !techniques[Chronoamperometry] || !techniques[CyclicVoltammetry] {
		t.Fatal("cholesterol must offer both CA and CV routes")
	}
}

func TestAllAssaysConsistency(t *testing.T) {
	for _, a := range AllAssays() {
		switch a.Technique {
		case Chronoamperometry:
			if a.Oxidase == nil || a.CYP != nil {
				t.Errorf("%v: CA assay must carry an oxidase only", a)
			}
			if a.Oxidase.Target.Name != a.Target.Name {
				t.Errorf("%v: target mismatch", a)
			}
		case CyclicVoltammetry:
			if a.CYP == nil || a.Binding == nil || a.Oxidase != nil {
				t.Errorf("%v: CV assay must carry a CYP binding only", a)
			}
			if a.Binding.Substrate.Name != a.Target.Name {
				t.Errorf("%v: substrate mismatch", a)
			}
		}
		if err := a.Perf().Validate(); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
}

func TestBlankSigmaFromLOD(t *testing.T) {
	// σ = S·LOD/3 — eq. (5) inverted.
	s := phys.PaperSensitivity(27.7)
	lod := phys.MicroMolar(575)
	sigma := BlankSigmaFromLOD(s, lod)
	want := 0.277 * 0.575 / 3
	if math.Abs(sigma-want) > 1e-12 {
		t.Fatalf("sigma %g, want %g", sigma, want)
	}
}

func TestKmForWindowProperty(t *testing.T) {
	// For any sane window the solved Km must exceed the window top
	// (otherwise the curve saturates inside the published range) and the
	// windowed slope factor must be in (0, 1].
	f := func(loRaw, spanRaw uint16) bool {
		lo := 0.01 + float64(loRaw%1000)/100   // 0.01..10 mM
		span := 0.05 + float64(spanRaw%500)/50 // 0.05..10 mM
		hi := lo + span
		km, factor := KmForWindow(phys.Concentration(lo), phys.Concentration(hi))
		return float64(km) > hi*0.5 && factor > 0 && factor <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewOxidaseRejectsBadPerf(t *testing.T) {
	bad := PerfSpec{Sensitivity: 0, LinearLo: 0, LinearHi: 1, NanostructureGain: 1}
	if _, err := NewOxidase("x", species.MustLookup("glucose"), "FAD", phys.MilliVolts(600), bad, ""); err == nil {
		t.Fatal("zero sensitivity must be rejected")
	}
	bad2 := PerfSpec{Sensitivity: phys.PaperSensitivity(1), LinearLo: 2, LinearHi: 1, NanostructureGain: 1}
	if _, err := NewOxidase("x", species.MustLookup("glucose"), "FAD", phys.MilliVolts(600), bad2, ""); err == nil {
		t.Fatal("inverted linear range must be rejected")
	}
}
