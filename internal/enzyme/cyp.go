package enzyme

import (
	"fmt"
	"math"

	"advdiag/internal/echem"
	"advdiag/internal/phys"
	"advdiag/internal/species"
)

// CYP models one cytochrome P450 isoform. The heme group exchanges
// electrons directly with the electrode (paper eq. 4):
//
//	substrate + O₂ + 2H⁺ + 2e⁻ → product + H₂O
//
// electrochemically observed as a one-electron heme reduction whose CV
// peak potential identifies the substrate and whose peak height tracks
// its concentration. One isoform can bind several substrates (CYP2B4
// senses both benzphetamine and aminopyrine at distinct potentials).
type CYP struct {
	// Isoform is the protein name ("CYP2B4").
	Isoform string
	// Bindings lists the substrates this isoform senses.
	Bindings []*Binding
	// RefNote cites the Table II sources.
	RefNote string
}

// Binding is one (isoform, substrate) sensing interaction with its
// voltammetric parameters.
type Binding struct {
	// Substrate is the drug (or cholesterol for CYP11A1).
	Substrate species.Species
	// PeakPotential is the published reduction peak potential vs Ag/AgCl
	// (Table II). This is what the CV peak detector should recover.
	PeakPotential phys.Voltage
	// E0 is the formal potential driving the Butler–Volmer kinetics,
	// calibrated as PeakPotential − reversible peak shift so the finite-
	// difference CV solver reproduces the published peak.
	E0 phys.Voltage
	// N is the electrons transferred at the heme (1 for all Table II
	// rows in our model).
	N int
	// Alpha is the cathodic transfer coefficient.
	Alpha float64
	// K0 is the standard heterogeneous rate constant (m/s). The
	// nanostructured electrodes the paper cites give fast, near-
	// reversible electron transfer at ≤50 mV/s sweeps.
	K0 float64
	// Theta is the catalytic efficiency at nanostructure gain 1: the
	// fraction of the diffusion-limited Randles–Ševčík current the
	// enzyme film actually delivers. Derived from the published
	// sensitivity.
	Theta float64
	// Km is the saturation constant bounding the linear range.
	Km phys.Concentration
	// BlankSigma is the blank current-density noise (A/m², 1σ, gain 1).
	BlankSigma float64
	// Perf is the published operating point used for calibration.
	Perf PerfSpec
}

// referenceSweepRate is the sweep rate at which published CYP
// sensitivities are interpreted (the paper's "about 20 mV/s" cell limit).
const referenceSweepRate = phys.SweepRate(0.020)

// NewBinding calibrates one isoform/substrate binding.
//
// The published sensitivity S (peak current per concentration per area)
// relates to the Randles–Ševčík slope at the reference sweep rate:
//
//	S = θ·g·0.4463·n·F·sqrt(n·F·v·D/(R·T))
//
// so θ is solved from S at the cited electrode's gain g.
func NewBinding(sub species.Species, peak phys.Voltage, perf PerfSpec) (*Binding, error) {
	if err := perf.Validate(); err != nil {
		return nil, fmt.Errorf("binding %s: %w", sub.Name, err)
	}
	const n = 1
	rsSlope, err := echem.RandlesSevcik(n, 1, 1, sub.Diffusion, referenceSweepRate)
	if err != nil {
		return nil, fmt.Errorf("binding %s: %w", sub.Name, err)
	}
	// The published sensitivity is the windowed best-fit slope of peak
	// height vs concentration; the saturation model (Effective-
	// Concentration) bends it by the windowed-slope factor relative to
	// the tangent θ·g·RS.
	km, slopeFactor := KmForWindow(perf.LinearLo, perf.LinearHi)
	theta := float64(perf.Sensitivity) / (float64(rsSlope) * perf.NanostructureGain * slopeFactor)
	sigma := 0.0
	if perf.LOD > 0 {
		sigma = BlankSigmaFromLOD(perf.Sensitivity, perf.LOD) / perf.NanostructureGain
	}
	return &Binding{
		Substrate:     sub,
		PeakPotential: peak,
		E0:            peak - echem.ReversiblePeakShift(n),
		N:             n,
		Alpha:         0.5,
		// K0 = 3e-4 m/s makes the heme electron transfer effectively
		// reversible at the paper's ≤20 mV/s sweeps (Matsuda–Ayabe
		// Λ ≈ 15) while degrading into quasi-reversible, shifted peaks
		// at fast sweeps — the behaviour behind the paper's "the cell
		// reacts only to slow potential variations" remark (§II-C).
		K0:         3e-4,
		Theta:      theta,
		Km:         km,
		BlankSigma: sigma,
		Perf:       perf,
	}, nil
}

// Kinetics returns the Butler–Volmer description of the binding.
func (b *Binding) Kinetics() echem.ButlerVolmer {
	return echem.ButlerVolmer{E0: b.E0, N: b.N, Alpha: b.Alpha, K0: b.K0}
}

// EffectiveConcentration applies the enzyme-film saturation to the bulk
// substrate concentration: the voltammetric response tracks
// C·Km/(Km+C) · (1 + 1/headroom) normalization so that the response is
// ≈C in the linear range and saturates at Km beyond it.
func (b *Binding) EffectiveConcentration(c phys.Concentration) phys.Concentration {
	if c <= 0 {
		return 0
	}
	return phys.Concentration(float64(c) * float64(b.Km) / (float64(b.Km) + float64(c)))
}

// PeakSensitivityAt returns the expected peak-current calibration slope
// (A·m/mol) at sweep rate v and electrode gain g.
func (b *Binding) PeakSensitivityAt(v phys.SweepRate, gain float64) phys.Sensitivity {
	if gain < 1 {
		gain = 1
	}
	rs, err := echem.RandlesSevcik(b.N, 1, 1, b.Substrate.Diffusion, v)
	if err != nil {
		return 0
	}
	return phys.Sensitivity(b.Theta * gain * float64(rs))
}

// BlankSigmaAt returns the blank current-density noise (A/m², 1σ) at
// gain g.
func (b *Binding) BlankSigmaAt(gain float64) float64 {
	if gain < 1 {
		gain = 1
	}
	return b.BlankSigma * gain
}

// Find returns the binding for the given substrate name.
func (c *CYP) Find(substrate string) (*Binding, error) {
	for _, b := range c.Bindings {
		if b.Substrate.Name == substrate {
			return b, nil
		}
	}
	return nil, fmt.Errorf("enzyme: %s does not bind %q", c.Isoform, substrate)
}

// MinPeakSeparation returns the smallest |ΔEp| between any two bindings
// of the isoform, or +Inf for a single binding. The platform explorer
// uses it to decide whether multiple targets can share one electrode.
func (c *CYP) MinPeakSeparation() phys.Voltage {
	minSep := math.Inf(1)
	for i := 0; i < len(c.Bindings); i++ {
		for j := i + 1; j < len(c.Bindings); j++ {
			d := math.Abs(float64(c.Bindings[i].PeakPotential - c.Bindings[j].PeakPotential))
			if d < minSep {
				minSep = d
			}
		}
	}
	return phys.Voltage(minSep)
}

// String summarizes the isoform and its substrates.
func (c *CYP) String() string {
	s := c.Isoform + " ["
	for i, b := range c.Bindings {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s @ %+.0f mV", b.Substrate.Name, b.PeakPotential.MilliVolts())
	}
	return s + "]"
}
