package enzyme

import (
	"fmt"
	"math"

	"advdiag/internal/echem"
	"advdiag/internal/phys"
	"advdiag/internal/species"
)

// Oxidase models one FAD/FMN oxidase probe (paper §I-B):
//
//	FAD + substrate → FADH₂ + product        (1)
//	FADH₂ + O₂      → H₂O₂ + FAD             (2)
//	2H₂O₂           → 2H₂O + O₂ + 4e⁻        (3)
//
// The substrate turnover follows Michaelis–Menten kinetics with
// surface-normalized Vmax; the produced H₂O₂ is oxidized at the working
// electrode with a Nernstian potential efficiency, yielding
//
//	j(C, E) = n·F·g·Vmax·C/(Km+C)·η(E−E½)
//
// where g is the electrode's nanostructure gain and n = 2 electrons per
// substrate molecule (one H₂O₂ each, two electrons per H₂O₂ by eq. 3).
type Oxidase struct {
	// Name is the probe name as in Table I ("glucose oxidase", ...).
	Name string
	// Target is the substrate metabolite.
	Target species.Species
	// Prosthetic is the redox-active group: "FAD" (glucose, glutamate,
	// cholesterol oxidase) or "FMN" (lactate oxidase).
	Prosthetic string
	// Applied is the recommended working-electrode potential vs Ag/AgCl
	// from Table I.
	Applied phys.Voltage
	// EHalf is the half-wave potential of the H₂O₂ oxidation sigmoid at
	// this electrode; calibrated so the 95 %-of-plateau criterion lands
	// on Applied (see RecommendedPotential).
	EHalf phys.Voltage
	// N is the electrons transferred per substrate molecule (2).
	N int
	// Km is the Michaelis constant (mol/m³), derived from the published
	// linear-range top.
	Km phys.Concentration
	// Vmax is the surface-normalized maximum turnover (mol·m⁻²·s⁻¹) at
	// nanostructure gain 1; derived from the published sensitivity.
	Vmax float64
	// BlankSigma is the blank current-density noise (A/m², 1σ) at
	// nanostructure gain 1; derived from the published LOD via eq. (5).
	BlankSigma float64
	// Perf is the published operating point used for calibration.
	Perf PerfSpec
	// RefNote cites the Table I source.
	RefNote string
}

// plateauCriterion is the fraction of the mass-transport plateau at
// which a potential is considered "sufficient" when recommending an
// applied potential (Table I reproduction). ln(19)·Vt/n past E½ gives
// exactly 95 %.
const plateauCriterion = 0.95

// NewOxidase calibrates an oxidase probe from its published operating
// point. applied is the Table I potential; perf the Table III (or
// representative) numbers.
func NewOxidase(name string, target species.Species, prosthetic string, applied phys.Voltage, perf PerfSpec, refNote string) (*Oxidase, error) {
	if err := perf.Validate(); err != nil {
		return nil, fmt.Errorf("oxidase %s: %w", name, err)
	}
	const n = 2
	km, slopeFactor := KmForWindow(perf.LinearLo, perf.LinearHi)
	// Place E½ so that the plateau criterion is met exactly at the
	// published applied potential: η(Applied) = plateauCriterion.
	vt := float64(phys.StandardThermalVoltage())
	shift := vt / n * logit(plateauCriterion)
	eHalf := applied - phys.Voltage(shift)
	// The published sensitivity is the best-fit slope over the linear
	// window, a factor slopeFactor below the Michaelis–Menten tangent
	// n·F·g·Vmax/Km·η(Applied):
	// ⇒ Vmax (gain 1) = S·Km / (n·F·g·η·slopeFactor).
	eta := echem.SigmoidEfficiency(applied, eHalf, n)
	vmax := float64(perf.Sensitivity) * float64(km) /
		(n * phys.Faraday * perf.NanostructureGain * eta * slopeFactor)
	sigma := 0.0
	if perf.LOD > 0 {
		// Blank noise at the cited electrode, folded back to gain 1.
		sigma = BlankSigmaFromLOD(perf.Sensitivity, perf.LOD) / perf.NanostructureGain
	}
	return &Oxidase{
		Name:       name,
		Target:     target,
		Prosthetic: prosthetic,
		Applied:    applied,
		EHalf:      eHalf,
		N:          n,
		Km:         km,
		Vmax:       vmax,
		BlankSigma: sigma,
		Perf:       perf,
		RefNote:    refNote,
	}, nil
}

// logit returns ln(p/(1-p)).
func logit(p float64) float64 {
	return math.Log(p / (1 - p))
}

// TurnoverRate returns the substrate turnover (== H₂O₂ production) rate
// in mol·m⁻²·s⁻¹ at substrate concentration c and electrode gain g.
func (o *Oxidase) TurnoverRate(c phys.Concentration, gain float64) float64 {
	if c <= 0 {
		return 0
	}
	if gain < 1 {
		gain = 1
	}
	return gain * o.Vmax * float64(c) / (float64(o.Km) + float64(c))
}

// CurrentDensity returns the faradaic current density (A/m²) at
// substrate concentration c, electrode potential e, and electrode
// nanostructure gain g.
func (o *Oxidase) CurrentDensity(c phys.Concentration, e phys.Voltage, gain float64) float64 {
	eta := echem.SigmoidEfficiency(e, o.EHalf, o.N)
	return float64(o.N) * phys.Faraday * o.TurnoverRate(c, gain) * eta
}

// SensitivityAt returns the low-concentration calibration slope
// (A·m/mol) at potential e and gain g: n·F·g·Vmax/Km·η(e).
func (o *Oxidase) SensitivityAt(e phys.Voltage, gain float64) phys.Sensitivity {
	if gain < 1 {
		gain = 1
	}
	eta := echem.SigmoidEfficiency(e, o.EHalf, o.N)
	return phys.Sensitivity(float64(o.N) * phys.Faraday * gain * o.Vmax / float64(o.Km) * eta)
}

// BlankSigmaAt returns the blank current-density noise (A/m², 1σ) at
// gain g. Background scales with microscopic area, hence with gain.
func (o *Oxidase) BlankSigmaAt(gain float64) float64 {
	if gain < 1 {
		gain = 1
	}
	return o.BlankSigma * gain
}

// RecommendedPotential scans potentials from 0 to 1 V and returns the
// lowest (coarsened to step) at which the current reaches the plateau
// criterion. This is the procedure behind the Table I reproduction: it
// should land on o.Applied.
func (o *Oxidase) RecommendedPotential(step phys.Voltage) phys.Voltage {
	if step <= 0 {
		step = phys.MilliVolts(10)
	}
	// Plateau reference: fully driven oxidation far past E½.
	ref := o.CurrentDensity(o.Km, phys.Voltage(1.0), 1)
	for e := phys.Voltage(0); e <= 1.0; e += step {
		if o.CurrentDensity(o.Km, e, 1) >= plateauCriterion*ref*0.9999 {
			return e
		}
	}
	return phys.Voltage(1.0)
}

// String summarizes the probe.
func (o *Oxidase) String() string {
	return fmt.Sprintf("%s [%s, target %s, %+.0f mV]", o.Name, o.Prosthetic, o.Target.Name, o.Applied.MilliVolts())
}
