package enzyme

import (
	"fmt"
	"sort"
	"sync"

	"advdiag/internal/phys"
	"advdiag/internal/species"
)

// CNTGain is the effective signal gain of the carbon-nanotube
// nanostructured electrodes the paper cites for the oxidase rows of
// Table III and for the CYP11A1 cholesterol sensor (ref [15]). The exact
// multiplier is a calibration constant; 5× is in the range Carrara et
// al. report for CNT vs bare screen-printed electrodes. The electrode
// package uses the same constant so that simulating the cited electrode
// construction reproduces the cited figures of merit.
const CNTGain = 5.0

const cntGain = CNTGain

var (
	oxidases []*Oxidase
	cyps     []*CYP
)

func mustOxidase(name, target, prosthetic string, appliedMV float64, perf PerfSpec, ref string) *Oxidase {
	o, err := NewOxidase(name, species.MustLookup(target), prosthetic, phys.MilliVolts(appliedMV), perf, ref)
	if err != nil {
		panic(err)
	}
	oxidases = append(oxidases, o)
	return o
}

func mustBinding(target string, peakMV float64, perf PerfSpec) *Binding {
	b, err := NewBinding(species.MustLookup(target), phys.MilliVolts(peakMV), perf)
	if err != nil {
		panic(err)
	}
	return b
}

func addCYP(isoform, ref string, bindings ...*Binding) *CYP {
	c := &CYP{Isoform: isoform, Bindings: bindings, RefNote: ref}
	cyps = append(cyps, c)
	return c
}

// The built-in probe registry. Published numbers come from Tables I–III;
// entries marked Representative fill probes the paper lists without
// figures of merit, so the design-space explorer can still cover them.
func init() {
	// ---- Table I oxidases, Table III oxidase figures of merit ----
	mustOxidase("glucose oxidase", "glucose", "FAD", +550, PerfSpec{
		Sensitivity:       phys.PaperSensitivity(27.7),
		LOD:               phys.MicroMolar(575),
		LinearLo:          phys.MilliMolar(0.5),
		LinearHi:          phys.MilliMolar(4),
		NanostructureGain: cntGain,
		ElectrodeNote:     "carbon-nanotube nanostructured working electrode",
	}, "Table I [8]; Table III")

	mustOxidase("lactate oxidase", "lactate", "FMN", +650, PerfSpec{
		Sensitivity:       phys.PaperSensitivity(40.1),
		LOD:               phys.MicroMolar(366),
		LinearLo:          phys.MilliMolar(0.5),
		LinearHi:          phys.MilliMolar(2.5),
		NanostructureGain: cntGain,
		ElectrodeNote:     "carbon-nanotube nanostructured working electrode",
	}, "Table I [9]; Table III")

	mustOxidase("glutamate oxidase", "glutamate", "FAD", +600, PerfSpec{
		Sensitivity:       phys.PaperSensitivity(25.5),
		LOD:               phys.MicroMolar(1574),
		LinearLo:          phys.MilliMolar(0.5),
		LinearHi:          phys.MilliMolar(2),
		NanostructureGain: cntGain,
		ElectrodeNote:     "carbon-nanotube nanostructured working electrode",
	}, "Table I [10]; Table III")

	// Cholesterol oxidase appears in Table I but has no Table III row
	// (the platform example senses cholesterol via CYP11A1 instead).
	// Figures of merit are representative of the cited cobalt-oxide
	// electrode family [11].
	mustOxidase("cholesterol oxidase", "cholesterol", "FAD", +700, PerfSpec{
		Sensitivity:       phys.PaperSensitivity(40.0),
		LOD:               phys.MicroMolar(20),
		LinearLo:          phys.MilliMolar(0.01),
		LinearHi:          phys.MilliMolar(0.3),
		NanostructureGain: cntGain,
		ElectrodeNote:     "representative nanostructured electrode [11]",
		Representative:    true,
	}, "Table I [11]; FOM representative")

	// ---- Table II cytochromes, Table III CYP figures of merit ----
	// Bindings without Table III rows use representative figures of
	// merit (sensitivity 1 µA/(mM·cm²), LOD 300 µM, linear 0.1–1 mM)
	// consistent with the cited bare-electrode CYP literature.
	repCYP := func(lodUM float64) PerfSpec {
		return PerfSpec{
			Sensitivity:       phys.PaperSensitivity(1.0),
			LOD:               phys.MicroMolar(lodUM),
			LinearLo:          phys.MilliMolar(0.1),
			LinearHi:          phys.MilliMolar(1.0),
			NanostructureGain: 1,
			ElectrodeNote:     "representative bare electrode",
			Representative:    true,
		}
	}

	addCYP("CYP1A2", "Table II [12]",
		mustBinding("clozapine", -265, repCYP(300)))

	addCYP("CYP3A4", "Table II [13,14]",
		mustBinding("erythromycin", -625, repCYP(300)),
		mustBinding("indinavir", -750, repCYP(300)))

	addCYP("CYP11A1", "Table II [15]; Table III",
		mustBinding("cholesterol", -400, PerfSpec{
			Sensitivity: phys.PaperSensitivity(112),
			// Paper reports no LOD for cholesterol/CYP11A1; the linear
			// range floor (10 µM) is used as a representative LOD.
			LOD:               phys.MicroMolar(10),
			LinearLo:          phys.MilliMolar(0.01),
			LinearHi:          phys.MilliMolar(0.08),
			NanostructureGain: cntGain,
			ElectrodeNote:     "carbon-nanotube screen-printed electrode [15]",
		}))

	addCYP("CYP2B4", "Table II [16,17]; Table III [16]",
		mustBinding("benzphetamine", -250, PerfSpec{
			Sensitivity:       phys.PaperSensitivity(0.28),
			LOD:               phys.MicroMolar(200),
			LinearLo:          phys.MilliMolar(0.2),
			LinearHi:          phys.MilliMolar(1.2),
			NanostructureGain: 1,
			ElectrodeNote:     "rhodium-graphite electrode [16]",
		}),
		mustBinding("aminopyrine", -400, PerfSpec{
			Sensitivity:       phys.PaperSensitivity(2.8),
			LOD:               phys.MicroMolar(400),
			LinearLo:          phys.MilliMolar(0.8),
			LinearHi:          phys.MilliMolar(8),
			NanostructureGain: 1,
			ElectrodeNote:     "rhodium-graphite electrode [16]",
		}))

	addCYP("CYP2B6", "Table II [18,19]",
		mustBinding("bupropion", -450, repCYP(300)),
		mustBinding("lidocaine", -450, repCYP(300)))

	addCYP("CYP2C9", "Table II [20]",
		mustBinding("torsemide", -19, repCYP(300)),
		mustBinding("diclofenac", -41, repCYP(300)))

	addCYP("CYP2E1", "Table II [21]",
		mustBinding("p-nitrophenol", -300, repCYP(300)))
}

// Oxidases returns the Table I oxidase probes in registration order.
func Oxidases() []*Oxidase {
	return append([]*Oxidase(nil), oxidases...)
}

// CYPs returns the Table II isoforms in registration order.
func CYPs() []*CYP {
	return append([]*CYP(nil), cyps...)
}

// OxidaseByName returns the named oxidase probe.
func OxidaseByName(name string) (*Oxidase, error) {
	for _, o := range oxidases {
		if o.Name == name {
			return o, nil
		}
	}
	return nil, fmt.Errorf("enzyme: unknown oxidase %q", name)
}

// CYPByIsoform returns the named isoform.
func CYPByIsoform(isoform string) (*CYP, error) {
	for _, c := range cyps {
		if c.Isoform == isoform {
			return c, nil
		}
	}
	return nil, fmt.Errorf("enzyme: unknown CYP isoform %q", isoform)
}

// Assay is one concrete (probe, substrate) sensing option: the unit the
// design-space explorer enumerates over.
type Assay struct {
	// Probe is the probe name ("glucose oxidase" or "CYP2B4").
	Probe string
	// Technique is the required readout technique.
	Technique Technique
	// Target is the sensed species.
	Target species.Species
	// Oxidase is set for chronoamperometric assays.
	Oxidase *Oxidase
	// CYP and Binding are set for voltammetric assays.
	CYP     *CYP
	Binding *Binding
}

// Perf returns the assay's published operating point.
func (a Assay) Perf() PerfSpec {
	if a.Oxidase != nil {
		return a.Oxidase.Perf
	}
	return a.Binding.Perf
}

// String renders "target via probe (technique)".
func (a Assay) String() string {
	return fmt.Sprintf("%s via %s (%s)", a.Target.Name, a.Probe, a.Technique)
}

// AllAssays returns every registered (probe, substrate) option sorted by
// target then probe name.
func AllAssays() []Assay {
	cached := allAssays()
	return append([]Assay(nil), cached...)
}

// allAssays builds the sorted registry view once: registration happens
// only at package init (mustOxidase/addCYP), so the list is immutable
// by the time anything can call it.
var allAssays = sync.OnceValue(func() []Assay {
	var out []Assay
	for _, o := range oxidases {
		out = append(out, Assay{Probe: o.Name, Technique: Chronoamperometry, Target: o.Target, Oxidase: o})
	}
	for _, c := range cyps {
		for _, b := range c.Bindings {
			out = append(out, Assay{Probe: c.Isoform, Technique: CyclicVoltammetry, Target: b.Substrate, CYP: c, Binding: b})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target.Name != out[j].Target.Name {
			return out[i].Target.Name < out[j].Target.Name
		}
		return out[i].Probe < out[j].Probe
	})
	return out
})

// assayIndex groups the registry by target name. Entries are clipped to
// their exact capacity so a caller's append reallocates instead of
// clobbering the shared backing.
var assayIndex = sync.OnceValue(func() map[string][]Assay {
	idx := map[string][]Assay{}
	for _, a := range allAssays() {
		idx[a.Target.Name] = append(idx[a.Target.Name], a)
	}
	for k, v := range idx {
		idx[k] = v[:len(v):len(v)]
	}
	return idx
})

// AssaysFor returns the sensing options for one target. The slice is a
// shared registry view; callers must not modify its elements. The
// explorer calls this for every target of every enumerated design
// point, which is why the registry is indexed rather than re-filtered.
func AssaysFor(target string) []Assay {
	return assayIndex()[target]
}
