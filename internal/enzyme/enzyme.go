// Package enzyme models the two probe families of the paper — oxidases
// (FAD/FMN prosthetic groups, read by chronoamperometry through their
// H₂O₂ product) and cytochromes P450 (heme electron transfer, read by
// cyclic voltammetry) — together with the published operating points of
// Tables I–III that calibrate them.
//
// Calibration policy (see DESIGN.md §5): Michaelis constants derive from
// the linear-range upper ends, Vmax from the published sensitivities,
// formal potentials from the Table II peak potentials, catalytic
// efficiencies from the Table III CYP sensitivities, and blank-noise
// densities from the LODs. Everything downstream (peak positions,
// transients, measured LOD and linear range) emerges from simulation.
package enzyme

import (
	"fmt"

	"advdiag/internal/mathx"
	"advdiag/internal/phys"
)

// Technique identifies the electrochemical readout technique a probe
// requires.
type Technique int

const (
	// Chronoamperometry holds the working electrode at a fixed potential
	// and records current vs time (oxidases, paper §I-B).
	Chronoamperometry Technique = iota
	// CyclicVoltammetry sweeps the potential linearly forward and
	// backward and records current vs potential (CYPs, paper §I-B).
	CyclicVoltammetry
)

func (t Technique) String() string {
	switch t {
	case Chronoamperometry:
		return "chronoamperometry"
	case CyclicVoltammetry:
		return "cyclic voltammetry"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// PerfSpec records a published electrode operating point (Table III or
// the cited reference) used for calibration and for paper-vs-measured
// comparison in EXPERIMENTS.md.
type PerfSpec struct {
	// Sensitivity is the published calibration slope.
	Sensitivity phys.Sensitivity
	// LOD is the published limit of detection (0 when the paper reports
	// none, e.g. cholesterol/CYP11A1).
	LOD phys.Concentration
	// LinearLo and LinearHi bound the published linear range.
	LinearLo, LinearHi phys.Concentration
	// NanostructureGain is the effective signal gain of the cited
	// electrode's nanostructuring relative to a bare electrode (1 for
	// plain electrodes, ~5 for the carbon-nanotube electrodes the paper
	// cites for the oxidase rows and cholesterol).
	NanostructureGain float64
	// ElectrodeNote names the cited electrode construction.
	ElectrodeNote string
	// Representative marks values not reported in the paper, filled with
	// documented representative numbers so the platform can still cover
	// the probe.
	Representative bool
}

// Validate checks internal consistency of a PerfSpec.
func (p PerfSpec) Validate() error {
	if p.Sensitivity <= 0 {
		return fmt.Errorf("enzyme: non-positive sensitivity")
	}
	if p.LinearHi <= p.LinearLo || p.LinearLo < 0 {
		return fmt.Errorf("enzyme: bad linear range [%v, %v]", p.LinearLo, p.LinearHi)
	}
	if p.NanostructureGain < 1 {
		return fmt.Errorf("enzyme: nanostructure gain %g < 1", p.NanostructureGain)
	}
	if p.LOD < 0 {
		return fmt.Errorf("enzyme: negative LOD")
	}
	return nil
}

// LinearityTolerance is the best-fit residual budget (as a fraction of
// the response span) that ends a usable linear range. It mirrors
// analysis.LinearRangeTolerance; the two must agree for the calibration
// below to make measured linear ranges land on published ones.
const LinearityTolerance = 0.05

// windowStats evaluates a Michaelis–Menten response y = C/(Km+C) on a
// dense grid over the window [lo, hi] and returns the best-fit line's
// maximum residual as a fraction of the response span, together with
// the fitted slope relative to the tangent 1/Km.
func windowStats(km, lo, hi float64) (resFrac, slopeFactor float64) {
	const n = 40
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		c := lo + (hi-lo)*float64(i)/float64(n-1)
		xs[i] = c
		ys[i] = c / (km + c)
	}
	fit, err := mathx.FitLinear(xs, ys)
	if err != nil {
		return 0, 1
	}
	span := ys[n-1] - ys[0]
	if span <= 0 {
		return 0, 1
	}
	return fit.MaxAbsResidual / span, fit.Slope * km
}

// KmForWindow solves for the Michaelis constant at which the
// linear-range detector's criterion sits exactly at its tolerance over
// the published window [lo, hi]: smaller Km would bend the curve out of
// the published range, larger Km would extend the measured range past
// it. It also returns the windowed-slope factor — the ratio of the
// best-fit slope over the window to the Michaelis–Menten tangent —
// used to convert published (windowed) sensitivities into tangent-
// scale kinetic constants.
//
// Calibration runs anchor at the lowest prepared standard, which sits
// below the published floor, so the solve anchors at lo/2 to mirror
// the detector's actual window.
func KmForWindow(lo, hi phys.Concentration) (phys.Concentration, float64) {
	l, h := float64(lo)/2, float64(hi)
	if h <= l || h <= 0 {
		return phys.Concentration(3 * h), 0.75
	}
	f := func(km float64) float64 {
		res, _ := windowStats(km, l, h)
		return res - LinearityTolerance
	}
	// resFrac decreases with Km; bracket between a strongly curved and
	// an almost linear regime.
	km, err := mathx.Bisect(f, 0.2*h, 100*h, 1e-6*h)
	if err != nil {
		km = 3 * h
	}
	_, factor := windowStats(km, l, h)
	return phys.Concentration(km), factor
}

// BlankSigmaFromLOD inverts the paper's eq. (5): with LOD = 3σ_b/S the
// blank current-density noise (A/m², one standard deviation, at the
// cited electrode) is σ = S·LOD/3. Area cancels, so the value transfers
// across electrode sizes.
func BlankSigmaFromLOD(s phys.Sensitivity, lod phys.Concentration) float64 {
	return float64(s) * float64(lod) / 3
}
