package advdiag_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"advdiag"
)

// newDiagServer stands up a fleet over n shards of the shared test
// platform behind an advdiag.Server and an httptest front end,
// returning the pieces the diagnosis scenarios need (including the
// base URL, which the malformed-wire client targets directly).
func newDiagServer(t *testing.T, shards int, fopts []advdiag.FleetOption, sopts ...advdiag.ServerOption) (*advdiag.Server, *advdiag.Client, string) {
	t.Helper()
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	plats := make([]*advdiag.Platform, shards)
	for i := range plats {
		plats[i] = p
	}
	fleet, err := advdiag.NewFleet(plats, fopts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := advdiag.NewServer(fleet, sopts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil && !errors.Is(err, advdiag.ErrFleetClosed) {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, advdiag.NewClient(ts.URL, advdiag.WithHTTPClient(ts.Client())), ts.URL
}

// glucoseCohort builds n identical glucose samples — a fixed-
// concentration QC stream, the cross-shard comparison the fouling
// detector feeds on.
func glucoseCohort(n int) []advdiag.Sample {
	out := make([]advdiag.Sample, n)
	for i := range out {
		out[i] = advdiag.Sample{ID: fmt.Sprintf("qc-%03d", i), Concentrations: map[string]float64{"glucose": 1.0}}
	}
	return out
}

// findByClass returns the first finding of the class, if any.
func findByClass(d advdiag.Diagnosis, class string) (advdiag.Finding, bool) {
	for _, f := range d.Findings {
		if f.Class == class {
			return f, true
		}
	}
	return advdiag.Finding{}, false
}

// TestDiagnosisHealthyFleet: a fault-free fleet under ordinary mixed
// traffic must diagnose healthy — no findings, nothing quarantined —
// however often the endpoint is polled.
func TestDiagnosisHealthyFleet(t *testing.T) {
	_, client, _ := newDiagServer(t, 2,
		[]advdiag.FleetOption{advdiag.WithFleetWorkers(2), advdiag.WithFleetQueueDepth(32)})
	ctx := context.Background()

	if _, err := client.RunPanels(ctx, mixedCohort(24)); err != nil {
		t.Fatal(err)
	}
	var d advdiag.Diagnosis
	for i := 0; i < 3; i++ {
		var err error
		if d, err = client.Diagnosis(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if d.Status != advdiag.StatusHealthy || len(d.Findings) != 0 {
		t.Fatalf("healthy fleet diagnosed %q with findings %+v", d.Status, d.Findings)
	}
	if d.Snapshots != 3 {
		t.Fatalf("3 polls recorded %d snapshots", d.Snapshots)
	}
	if len(d.QuarantinedShards) != 0 {
		t.Fatalf("healthy fleet quarantined %v", d.QuarantinedShards)
	}
}

// TestDiagnosisFouledElectrode is the sensor-level scenario: one shard
// of two runs with a fouled glucose electrode (injected at fleet
// construction), a fixed-concentration QC cohort flows through the
// wire, and GET /v1/diagnosis must convict exactly that shard for
// exactly that target — and quarantine it.
func TestDiagnosisFouledElectrode(t *testing.T) {
	const sick = 1
	_, client, _ := newDiagServer(t, 2,
		[]advdiag.FleetOption{
			advdiag.WithFleetWorkers(2),
			advdiag.WithFleetQueueDepth(64),
			advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
				{Kind: advdiag.FaultFouledElectrode, Shard: sick, Target: "glucose", Severity: 0.5, Seed: 7},
			}}),
		})
	ctx := context.Background()

	outs, err := client.RunPanels(ctx, glucoseCohort(64))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("sample %d: %v", i, o.Err)
		}
	}
	d, err := client.Diagnosis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.Status != advdiag.StatusDegraded {
		t.Fatalf("fouled fleet diagnosed %q: %+v", d.Status, d)
	}
	f, ok := findByClass(d, advdiag.ClassSensorFouling)
	if !ok {
		t.Fatalf("no sensor_fouling finding: %+v", d.Findings)
	}
	if f.Shard != sick || f.Target != "glucose" {
		t.Fatalf("fouling attributed to shard %d target %q, injected on shard %d target glucose (%s)",
			f.Shard, f.Target, sick, f.Evidence)
	}
	if f.Severity <= 0 || f.Severity > 1 {
		t.Fatalf("fouling severity %g outside (0,1]", f.Severity)
	}
	if !f.Quarantined {
		t.Fatalf("convicted shard not quarantined: %+v", f)
	}
	if len(d.QuarantinedShards) != 1 || d.QuarantinedShards[0] != sick {
		t.Fatalf("quarantine set %v, want [%d]", d.QuarantinedShards, sick)
	}
	// Exactly one shard convicted: the healthy sibling must not be
	// dragged into the disagreement.
	for _, g := range d.Findings {
		if g.Class == advdiag.ClassSensorFouling && g.Shard != sick {
			t.Fatalf("healthy shard %d convicted of fouling: %s", g.Shard, g.Evidence)
		}
	}
	// The fleet keeps serving on the surviving shard, and healthz stays
	// up — quarantine degrades capacity, not availability.
	after, err := client.RunPanels(ctx, glucoseCohort(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range after {
		if o.Err != nil {
			t.Fatalf("post-quarantine sample %d: %v", i, o.Err)
		}
		if o.Shard == sick {
			t.Fatalf("post-quarantine sample %d routed to quarantined shard %d", i, sick)
		}
	}
	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthz after quarantine: %v", err)
	}
}

// TestDiagnosisDeadShardStall is the liveness scenario and the
// zero-loss acceptance check: shard 0 of two is dead (workers park
// their jobs), a batch lands on both shards, and polling
// /v1/diagnosis must (a) classify the stall on shard 0, (b)
// quarantine it, (c) reroute its backlog to shard 1 so the batch
// completes with every panel fingerprint byte-identical to a local
// Lab run — no panel lost, no noise stream moved.
func TestDiagnosisDeadShardStall(t *testing.T) {
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p, p},
		advdiag.WithFleetWorkers(1),
		advdiag.WithFleetQueueDepth(16),
		advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
			{Kind: advdiag.FaultDeadShard, Shard: 0},
		}}))
	if err != nil {
		t.Fatal(err)
	}
	// Three confirmations instead of two: shard 1 is actively chewing
	// through its half of the batch, and the wider window makes a
	// spurious conviction of the live shard impossible even on a slow
	// -race runner.
	srv, err := advdiag.NewServer(fleet,
		advdiag.WithServerDiagnoser(advdiag.NewDiagnoser(fleet, advdiag.WithDiagStallConfirmations(3))))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil && !errors.Is(err, advdiag.ErrFleetClosed) {
			t.Errorf("server close: %v", err)
		}
	})
	client := advdiag.NewClient(ts.URL, advdiag.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	samples := mixedCohort(10)
	type batchResult struct {
		outs []advdiag.PanelOutcome
		err  error
	}
	done := make(chan batchResult, 1)
	go func() {
		outs, err := client.RunPanels(ctx, samples)
		done <- batchResult{outs, err}
	}()

	var conviction advdiag.Finding
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("diagnosis never convicted the dead shard")
		}
		d, err := client.Diagnosis(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if f, ok := findByClass(d, advdiag.ClassShardStall); ok {
			conviction = f
			break
		}
		time.Sleep(30 * time.Millisecond)
	}
	if conviction.Shard != 0 {
		t.Fatalf("stall attributed to shard %d, injected on shard 0 (%s)", conviction.Shard, conviction.Evidence)
	}
	if !conviction.Quarantined {
		t.Fatalf("stalled shard not quarantined: %+v", conviction)
	}

	// The quarantine reroutes shard 0's backlog; the batch must now
	// complete — in order, error-free, and fingerprint-identical to a
	// local Lab run of the same slice. Rerouted panels keep their fleet
	// submission index, so determinism survives the failover.
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	local := localFingerprints(t, samples)
	for i, o := range res.outs {
		if o.Err != nil {
			t.Fatalf("sample %d lost to the dead shard: %v", i, o.Err)
		}
		if o.Index != i {
			t.Fatalf("sample %d: submission index %d (order broken by reroute)", i, o.Index)
		}
		if o.Shard != 1 {
			t.Fatalf("sample %d ran on shard %d; everything must have failed over to shard 1", i, o.Shard)
		}
		if got := o.Result.Fingerprint(); got != local[i] {
			t.Fatalf("sample %d: fingerprint %x != local %x (reroute changed the noise stream)", i, got, local[i])
		}
	}
	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthz with a quarantined shard: %v", err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Shards[0].Quarantined || st.Shards[1].Quarantined {
		t.Fatalf("stats quarantine flags wrong: %+v", st.Shards)
	}
}

// TestDiagnosisQueueSaturation is the capacity scenario: a one-shard,
// depth-1 fleet is hammered with concurrent singles until the server
// sheds load with 429, and the diagnosis must name queue saturation —
// fleet-wide, nothing quarantined (shedding is backpressure working,
// not a shard misbehaving).
func TestDiagnosisQueueSaturation(t *testing.T) {
	// A slow-shard fault keeps the single worker busy long enough that
	// the burst deterministically overruns the depth-1 queue — without
	// it a warm panel can drain faster than concurrent submissions
	// arrive and the test would race the worker.
	srv, client, _ := newDiagServer(t, 1,
		[]advdiag.FleetOption{
			advdiag.WithFleetWorkers(1),
			advdiag.WithFleetQueueDepth(1),
			advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
				{Kind: advdiag.FaultSlowShard, Shard: 0, Delay: 20 * time.Millisecond},
			}}),
		})
	ctx := context.Background()

	if _, err := client.Diagnosis(ctx); err != nil { // baseline snapshot
		t.Fatal(err)
	}
	sample := advdiag.Sample{ID: "surge", Concentrations: map[string]float64{"glucose": 1.0}}
	for round := 0; round < 10 && srv.Stats().Rejected == 0; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 12; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Saturation surfaces as ErrFleetSaturated; successes and
				// shed samples are both fine — the counter is the record.
				client.RunPanel(ctx, sample) //nolint:errcheck
			}()
		}
		wg.Wait()
	}
	if srv.Stats().Rejected == 0 {
		t.Fatal("never saturated a depth-1 queue with 12-way concurrent singles")
	}
	d, err := client.Diagnosis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := findByClass(d, advdiag.ClassQueueSaturation)
	if !ok {
		t.Fatalf("no queue_saturation finding after shedding load: %+v", d.Findings)
	}
	if f.Shard != -1 {
		t.Fatalf("saturation pinned on shard %d; it is a fleet-wide condition", f.Shard)
	}
	if len(d.QuarantinedShards) != 0 {
		t.Fatalf("saturation must not quarantine anything, got %v", d.QuarantinedShards)
	}
}

// TestDiagnosisMalformedClient is the wire-boundary scenario: a
// deliberately broken client throws corrupt payloads at the server;
// every one must be refused with 400 before reaching the fleet, and
// the diagnosis must report the wire-error burst without convicting
// any shard.
func TestDiagnosisMalformedClient(t *testing.T) {
	srv, client, baseURL := newDiagServer(t, 1, nil)
	ctx := context.Background()

	if _, err := client.Diagnosis(ctx); err != nil { // baseline snapshot
		t.Fatal(err)
	}
	mc := advdiag.MalformedClient{BaseURL: baseURL, Seed: 3}
	refused, err := mc.Send(ctx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if refused != 8 {
		t.Fatalf("server refused %d/8 corrupt payloads; the wire layer must reject all of them", refused)
	}
	d, err := client.Diagnosis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := findByClass(d, advdiag.ClassWireErrors)
	if !ok {
		t.Fatalf("no wire_errors finding after 8 refusals: %+v", d.Findings)
	}
	if f.Shard != -1 {
		t.Fatalf("wire errors pinned on shard %d; they never reached any shard", f.Shard)
	}
	if st := srv.Stats(); st.Submitted != 0 {
		t.Fatalf("%d corrupt payloads entered the fleet", st.Submitted)
	}
	if err := client.Health(ctx); err != nil {
		t.Fatalf("healthz under malformed traffic: %v", err)
	}
}

// TestDiagnosisDrain: a draining server reports itself — the drain
// class marks intake refusal as an explained state, not a mystery.
func TestDiagnosisDrain(t *testing.T) {
	srv, client, _ := newDiagServer(t, 1, nil)
	ctx := context.Background()

	if _, err := client.RunPanels(ctx, glucoseCohort(2)); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	d, err := client.Diagnosis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findByClass(d, advdiag.ClassDrain); !ok {
		t.Fatalf("draining server not reported: %+v", d.Findings)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Draining {
		t.Fatal("stats do not report draining")
	}
}

// TestFleetQuarantineAllShards: quarantine is allowed to empty the
// routing view entirely; submissions then fail fast with ErrNoShard
// instead of blocking, stats flag every shard, and a quarantined fleet
// still closes cleanly.
func TestFleetQuarantineAllShards(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2), advdiag.WithFleetWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Quarantine(2); err == nil {
		t.Fatal("out-of-range quarantine accepted")
	}
	if err := fleet.Quarantine(0); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Quarantine(0); err != nil {
		t.Fatalf("re-quarantine must be idempotent: %v", err)
	}
	if err := fleet.Quarantine(1); err != nil {
		t.Fatal(err)
	}
	if got := fleet.Quarantined(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("quarantine set %v, want [0 1]", got)
	}
	s := advdiag.Sample{ID: "orphan", Concentrations: map[string]float64{"glucose": 1.0}}
	if err := fleet.Submit(s); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("Submit with every shard quarantined: %v, want ErrNoShard", err)
	}
	if err := fleet.TrySubmit(s); !errors.Is(err, advdiag.ErrNoShard) {
		t.Fatalf("TrySubmit with every shard quarantined: %v, want ErrNoShard", err)
	}
	st := fleet.Stats()
	for i, sh := range st.Shards {
		if !sh.Quarantined {
			t.Fatalf("shard %d not flagged quarantined in %+v", i, st.Shards)
		}
	}
	if st.RouteErrors != 2 {
		t.Fatalf("2 unroutable submissions counted as %d route errors", st.RouteErrors)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetClearFaultsReleasesParked: work held hostage by a dead
// shard survives the fault being cleared — the parked workers wake,
// run their backlog in place with healthy electrodes, and every
// fingerprint matches a local Lab run.
func TestFleetClearFaultsReleasesParked(t *testing.T) {
	samples := mixedCohort(12)
	lab, err := advdiag.NewLab(fleetPlatforms(t, 1)[0], advdiag.WithLabWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprints(t, lab.RunPanels(samples))

	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetWorkers(1),
		advdiag.WithFleetQueueDepth(16),
		advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
			{Kind: advdiag.FaultDeadShard, Shard: 0},
		}}))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, len(samples))
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for i := 0; i < len(samples); i++ {
			o := <-fleet.Results()
			if o.Err != nil {
				t.Errorf("sample %d: %v", o.Index, o.Err)
				continue
			}
			got[o.Index] = o.Result.Fingerprint()
		}
	}()
	for _, s := range samples {
		if err := fleet.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 0 is now holding at least its first routed sample hostage
	// (least-loaded ties break to the lowest index). Lift the fault:
	// the parked worker must run its backlog in place.
	fleet.ClearFaults()
	<-collected
	fleet.Drain()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: fingerprint %016x after fault lift, want %016x", i, got[i], want[i])
		}
	}
	if st := fleet.Stats(); st.Completed != uint64(len(samples)) {
		t.Fatalf("completed %d of %d after fault lift", st.Completed, len(samples))
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetStatsMidDrain: Stats must be callable concurrently with
// Drain and never report more completions than submissions.
func TestFleetStatsMidDrain(t *testing.T) {
	fleet, err := advdiag.NewFleet(fleetPlatforms(t, 2),
		advdiag.WithFleetWorkers(1), advdiag.WithFleetQueueDepth(32))
	if err != nil {
		t.Fatal(err)
	}
	samples := mixedCohort(24)
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for i := 0; i < len(samples); i++ {
			<-fleet.Results()
		}
	}()
	for _, s := range samples {
		if err := fleet.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	snapped := make(chan struct{})
	go func() {
		defer close(snapped)
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := fleet.Stats()
			if st.Completed > st.Submitted {
				t.Errorf("mid-drain snapshot: completed %d > submitted %d", st.Completed, st.Submitted)
				return
			}
		}
	}()
	fleet.Drain()
	close(stop)
	<-snapped
	<-collected
	if st := fleet.Stats(); st.Submitted != 24 || st.Completed != 24 {
		t.Fatalf("post-drain stats: %+v", st)
	}
	if err := fleet.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiagnoserEdgeCases: the diagnoser must stay sane on degenerate
// input — no fleet, no shards, no traffic.
func TestDiagnoserEdgeCases(t *testing.T) {
	d := advdiag.NewDiagnoser(nil)
	if got := d.Diagnose(); got.Status != advdiag.StatusHealthy || got.Snapshots != 0 {
		t.Fatalf("virgin diagnoser: %+v", got)
	}
	d.Observe(advdiag.ServerStats{}) // zero-shard snapshot
	d.Observe(advdiag.ServerStats{})
	got := d.Diagnose()
	if got.Status != advdiag.StatusHealthy || len(got.Findings) != 0 || got.Snapshots != 2 {
		t.Fatalf("zero-shard snapshots produced %+v", got)
	}

	// A nil-fleet diagnoser still classifies; it just cannot act.
	d2 := advdiag.NewDiagnoser(nil)
	d2.Observe(advdiag.ServerStats{FleetStats: advdiag.FleetStats{}, Draining: true})
	got2 := d2.Diagnose()
	f, ok := findByClass(got2, advdiag.ClassDrain)
	if !ok || f.Quarantined {
		t.Fatalf("nil-fleet drain classification: %+v", got2)
	}
}

// TestDiagnosisRestoreResetsEstimates closes the convicted-then-
// cleared loop at the diagnoser level: a fouling conviction
// quarantines a shard; after the fault is cleared, health probes
// restore it with no manual un-quarantine; and because restore wipes
// the shard's estimate history, fresh healthy traffic must NOT be
// re-convicted off the stale fouled recovery ratios.
func TestDiagnosisRestoreResetsEstimates(t *testing.T) {
	const sick = 1
	p, err := servePlatform()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := advdiag.NewFleet([]*advdiag.Platform{p, p},
		advdiag.WithFleetWorkers(2),
		advdiag.WithFleetQueueDepth(64),
		advdiag.WithFleetProbePolicy(2, 2),
		advdiag.WithFleetFaultPlan(advdiag.FaultPlan{Faults: []advdiag.Fault{
			{Kind: advdiag.FaultFouledElectrode, Shard: sick, Target: "glucose", Severity: 0.5, Seed: 7},
		}}))
	if err != nil {
		t.Fatal(err)
	}
	// An attached scheduler makes the conviction also flag a forced
	// recalibration — the restore below must clear that once-only
	// latch along with the estimates.
	ms, err := advdiag.NewMonitorScheduler(fleet, advdiag.WithSchedulerSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Add(advdiag.MonitorCampaign{
		ID: "reset-000", Target: "glucose", SampleMM: 2,
		DurationHours: 60, IntervalHours: 20, TraceSeconds: 6, BaselineSeconds: 2,
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := advdiag.NewServer(fleet,
		advdiag.WithServerDiagnoser(advdiag.NewDiagnoser(fleet)),
		advdiag.WithServerScheduler(ms))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil && !errors.Is(err, advdiag.ErrFleetClosed) {
			t.Errorf("server close: %v", err)
		}
	})
	client := advdiag.NewClient(ts.URL, advdiag.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	if _, err := client.RunPanels(ctx, glucoseCohort(64)); err != nil {
		t.Fatal(err)
	}
	d, err := client.Diagnosis(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := findByClass(d, advdiag.ClassSensorFouling); !ok || f.Shard != sick || !f.Quarantined {
		t.Fatalf("setup never convicted the fouled shard: %+v", d.Findings)
	}
	if got := ms.Stats().ForcedRecals; got != 1 {
		t.Fatalf("ForcedRecals after conviction = %d, want 1", got)
	}
	// One more poll while the shard is still out: the diagnoser must
	// snapshot the quarantined state, or the restore transition below
	// is invisible to it and the estimate wipe never fires.
	if _, err := client.Diagnosis(ctx); err != nil {
		t.Fatal(err)
	}

	// Heal the electrode; probes must bring the shard back on their own.
	fleet.ClearFaults()
	probeUntil(t, fleet, "restore of the healed shard", func() bool { return !isQuarantined(fleet, sick) })

	// Fresh healthy QC traffic over both shards. Without the estimate
	// reset on restore, the sick shard's old fouled ratios would
	// re-convict it here.
	outs, err := client.RunPanels(ctx, glucoseCohort(64))
	if err != nil {
		t.Fatal(err)
	}
	backOn := false
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("post-restore sample %d: %v", i, o.Err)
		}
		if o.Shard == sick {
			backOn = true
		}
	}
	if !backOn {
		t.Fatal("restored shard served none of the healthy cohort")
	}
	for i := 0; i < 3; i++ {
		if d, err = client.Diagnosis(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if f, ok := findByClass(d, advdiag.ClassSensorFouling); ok {
		t.Fatalf("healed shard re-convicted from stale estimates: %+v", f)
	}
	if len(d.QuarantinedShards) != 0 {
		t.Fatalf("quarantine set %v after restore", d.QuarantinedShards)
	}
	// The diagnosis history narrates the whole episode over the wire.
	kinds := map[string]int{}
	for _, e := range d.History {
		kinds[e.Kind]++
	}
	if kinds[advdiag.EventQuarantined] == 0 || kinds[advdiag.EventRestored] == 0 {
		t.Fatalf("history missing the quarantine/restore episode: %v", kinds)
	}
}
