module advdiag

go 1.24
