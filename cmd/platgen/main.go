// Command platgen runs the platform design-space exploration for a set
// of target molecules and prints the chosen design: block inventory,
// wiring, schedule, and cost — with the scored alternatives and the
// Pareto front on request.
//
// Examples:
//
//	platgen -targets glucose,lactate,cholesterol
//	platgen -targets glucose,benzphetamine,aminopyrine -all -dot
//	platgen -targets glucose -interferents dopamine -cds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"advdiag"
)

func main() {
	var (
		targets      = flag.String("targets", "", "comma-separated target molecules (required)")
		interferents = flag.String("interferents", "", "comma-separated matrix interferents")
		period       = flag.Float64("period", 0, "required sample period in seconds (0 = unconstrained)")
		cds          = flag.Bool("cds", false, "add a blank electrode for correlated double sampling")
		all          = flag.Bool("all", false, "print every scored candidate and the Pareto front")
		dot          = flag.Bool("dot", false, "print the Graphviz netlist instead of ASCII")
	)
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "platgen: -targets is required (e.g. -targets glucose,lactate)")
		fmt.Fprintln(os.Stderr, "registered targets:", strings.Join(advdiag.Targets(), ", "))
		os.Exit(2)
	}
	names := strings.Split(*targets, ",")

	var opts []advdiag.PlatformOption
	if *interferents != "" {
		opts = append(opts, advdiag.WithInterferents(strings.Split(*interferents, ",")...))
	}
	if *period > 0 {
		opts = append(opts, advdiag.WithSamplePeriod(*period))
	}
	if *cds {
		opts = append(opts, advdiag.WithCDSBlank())
	}

	if *all {
		cands, pareto, err := advdiag.ExploreDesigns(names, opts...)
		if err != nil && len(cands) == 0 {
			fatal(err)
		}
		if err != nil {
			// Partial failures: the healthy candidates below still stand.
			fmt.Fprintf(os.Stderr, "platgen: some design points failed to evaluate: %v\n", err)
		}
		fmt.Printf("design space: %d candidates\n", len(cands))
		for _, line := range cands {
			fmt.Println(" ", line)
		}
		fmt.Printf("\nPareto front (area / power / panel time): %d designs\n", len(pareto))
		for _, line := range pareto {
			fmt.Println(" ", line)
		}
		fmt.Println()
	}

	p, err := advdiag.DesignPlatform(names, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Println("selected design:", p.CostSummary())
	for _, w := range p.Violations() {
		fmt.Println(" ", w)
	}
	fmt.Println()
	if *dot {
		fmt.Println(p.DOT())
	} else {
		fmt.Println(p.Describe())
	}
	fmt.Println(p.Schedule())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "platgen: %v\n", err)
	os.Exit(1)
}
