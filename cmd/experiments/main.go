// Command experiments regenerates every table and figure of the paper's
// evaluation (and the DESIGN.md ablations) and prints the paper-vs-
// measured comparison — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"advdiag/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment by id (E1..E16)")
	flag.Parse()

	if *only != "" {
		runners := map[string]func() (*experiments.Result, error){
			"E1": experiments.TableI, "E2": experiments.TableII, "E3": experiments.TableIII,
			"E4": experiments.Fig1, "E5": experiments.Fig2, "E6": experiments.Fig3,
			"E7": experiments.Fig4, "E8": experiments.ReadoutRequirements,
			"E9": experiments.NoiseAblation, "E10": experiments.StructureAblation,
			"E11": experiments.SweepRateLimit, "E12": experiments.MuxSharing,
			"E13": experiments.TimeBasedReadout, "E14": experiments.LongTermDrift,
			"E15": experiments.Interference, "E16": experiments.SensorArrays,
		}
		run, ok := runners[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (want E1..E14)\n", *only)
			os.Exit(2)
		}
		res, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res)
		return
	}

	results, err := experiments.All()
	for _, r := range results {
		fmt.Println(r)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
