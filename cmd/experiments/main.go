// Command experiments regenerates every table and figure of the paper's
// evaluation (and the DESIGN.md ablations) and prints the paper-vs-
// measured comparison — the data behind EXPERIMENTS.md.
//
// Experiments run concurrently on a bounded worker pool; every
// experiment owns its sensors and measurement engines, so the printed
// numbers are identical at any worker count.
//
// Usage:
//
//	experiments [-only E3[,E7,...]] [-workers N] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"advdiag/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a comma-separated subset by id (E1..E16)")
	workers := flag.Int("workers", 0, "experiment concurrency; 0 means one worker per CPU")
	list := flag.Bool("list", false, "list the registered experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var results []*experiments.Result
	var err error
	if *only != "" {
		var ids []string
		for _, id := range strings.Split(*only, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "experiments: -only %q names no experiments (want ids like E3,E7)\n", *only)
			os.Exit(2)
		}
		for _, id := range ids {
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (see -list)\n", id)
				os.Exit(2)
			}
		}
		results, err = experiments.Run(ids, *workers)
	} else {
		results, err = experiments.RunAll(*workers)
	}
	for _, r := range results {
		fmt.Println(r)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
