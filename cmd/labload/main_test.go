package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunLoadSmallPanel drives the full generator — fresh loopback
// servers per codec, stream fingerprint diff against a local Lab,
// concurrent latency probes, and the wire-isolated echo phase — on a
// small two-target platform, covering exactly the path CI runs
// against the Fig. 4 panel.
func TestRunLoadSmallPanel(t *testing.T) {
	var b strings.Builder
	report, err := runLoad(&b, loadConfig{
		targets:    []string{"glucose", "benzphetamine"},
		shards:     2,
		workers:    1,
		conns:      2,
		panels:     8,
		wirePanels: 256,
		seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]codecStats{"json": report.JSON, "binary": report.Binary} {
		if s.P50Ms <= 0 || s.P99Ms < s.P50Ms || s.MaxMs < s.P99Ms {
			t.Errorf("%s percentiles inconsistent: %+v", name, s)
		}
		if s.PanelsPerSec <= 0 || s.StreamPanelsPerSec <= 0 || s.WirePanelsPerSec <= 0 {
			t.Errorf("%s throughput missing: %+v", name, s)
		}
	}
	if report.WireSpeedup <= 0 {
		t.Fatalf("wire speedup not computed: %+v", report)
	}
	out := b.String()
	for _, frag := range []string{"fingerprints checked vs local Lab", "wire codec speedup", "p99"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestPercentileMs(t *testing.T) {
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond // sorted 1..100ms
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 100}} {
		if got := percentileMs(lat, tc.q); got != tc.want {
			t.Errorf("p%.0f = %.1fms, want %.1fms", 100*tc.q, got, tc.want)
		}
	}
	if got := percentileMs(nil, 0.99); got != 0 {
		t.Errorf("empty pool p99 = %g", got)
	}
	// A single observation is every percentile.
	if got := percentileMs([]time.Duration{3 * time.Millisecond}, 0.5); got != 3 {
		t.Errorf("singleton p50 = %g", got)
	}
}

// TestWriteAndCheckLoadBaseline: the labload section merges into an
// existing baseline without touching the labbench half, and the p99 /
// wire-throughput gate passes within tolerance and fails beyond it.
func TestWriteAndCheckLoadBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"single_worker_panels_per_sec": 987.6}`), 0o644); err != nil {
		t.Fatal(err)
	}
	report := &loadReport{
		GeneratedAt: "2026-08-07T00:00:00Z", Host: "test", Conns: 4, Panels: 96,
		JSON:        codecStats{P99Ms: 10, WirePanelsPerSec: 1000},
		Binary:      codecStats{P99Ms: 8, WirePanelsPerSec: 2000},
		WireSpeedup: 2.0,
	}
	var b strings.Builder
	if err := writeLoadReport(&b, path, report); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"single_worker_panels_per_sec": 987.6`) {
		t.Fatalf("labbench half lost in merge:\n%s", data)
	}
	if !strings.Contains(string(data), `"labload"`) {
		t.Fatalf("labload section missing:\n%s", data)
	}

	// Within tolerance on every axis.
	ok := &loadReport{
		JSON:   codecStats{P99Ms: 12, WirePanelsPerSec: 900},
		Binary: codecStats{P99Ms: 9, WirePanelsPerSec: 1800},
	}
	if err := checkLoadBaseline(&b, path, ok, 0.50); err != nil {
		t.Fatalf("within-tolerance run must pass: %v", err)
	}
	// p99 tail blown.
	slow := &loadReport{
		JSON:   codecStats{P99Ms: 20, WirePanelsPerSec: 1000},
		Binary: codecStats{P99Ms: 8, WirePanelsPerSec: 2000},
	}
	if err := checkLoadBaseline(&b, path, slow, 0.50); err == nil {
		t.Fatal("p99 20ms vs 10ms at 50% tolerance must fail")
	}
	// Wire throughput collapsed.
	thin := &loadReport{
		JSON:   codecStats{P99Ms: 10, WirePanelsPerSec: 1000},
		Binary: codecStats{P99Ms: 8, WirePanelsPerSec: 400},
	}
	if err := checkLoadBaseline(&b, path, thin, 0.50); err == nil {
		t.Fatal("binary wire 400 vs 2000 at 50% tolerance must fail")
	}
	if !strings.Contains(b.String(), "p99") || !strings.Contains(b.String(), "wire") {
		t.Fatalf("gate report missing axes:\n%s", b.String())
	}

	// A baseline without a labload section is reported, not fatal —
	// the first PR 9 run bootstraps it.
	bare := filepath.Join(t.TempDir(), "bare.json")
	if err := os.WriteFile(bare, []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkLoadBaseline(&b, bare, report, 0.50); err != nil {
		t.Fatalf("missing labload section must not fail the gate: %v", err)
	}
	if !strings.Contains(b.String(), "no labload section") {
		t.Fatalf("missing bootstrap note:\n%s", b.String())
	}
}

func TestSplitTargets(t *testing.T) {
	got := splitTargets(" glucose, lactate ,,benzphetamine ")
	want := []string{"glucose", "lactate", "benzphetamine"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}
